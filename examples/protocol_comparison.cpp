// Protocol comparison: runs the paper's four protocols (plus the CW-MAC
// substrate baseline and slotted ALOHA floor) on one identical scenario
// and prints a side-by-side metric table — a miniature of the paper's §5.

#include <iostream>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace aquamac;

  ScenarioConfig base = paper_default_scenario();
  base.traffic.offered_load_kbps = 0.6;

  std::cout << "aquamac protocol comparison (offered load "
            << base.traffic.offered_load_kbps << " kbps, " << base.node_count
            << " nodes, 3 seeds)\n\n";

  Table table{{"protocol", "tput kbps", "delivery", "power mW", "latency s", "extra ok",
               "collisions"}};
  for (MacKind kind : {MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac, MacKind::kEwMac,
                       MacKind::kCwMac, MacKind::kSlottedAloha}) {
    ScenarioConfig config = base;
    config.mac = kind;
    const MeanStats mean = mean_of(run_replicated(config, 3));
    table.add_row({std::string{to_string(kind)}, format_double(mean.throughput_kbps, 4),
                   format_double(mean.delivery_ratio, 3), format_double(mean.mean_power_mw, 1),
                   format_double(mean.mean_latency_s, 2),
                   format_double(mean.extra_successes, 1),
                   format_double(mean.rx_collisions, 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected ordering at this load (paper Fig. 6): EW-MAC and CS-MAC above\n"
               "ROPA above S-FAMA; the reuse protocols deliver their gains via the\n"
               "'extra ok' column.\n";
  return 0;
}

// Dense monitoring: the pollution-monitoring workload the paper's
// introduction motivates — a dense sensor field collecting large readings
// (UASN guidance: batch data into large packets, Basagni et al. [19]).
// Shows how EW-MAC behaves as packet size grows from 1024 to 4096 bits
// (Table 2's range) in a dense deployment.

#include <iostream>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace aquamac;

  ScenarioConfig base = paper_default_scenario();
  base.node_count = 120;  // dense field
  base.traffic.offered_load_kbps = 0.6;

  std::cout << "aquamac dense monitoring example: 120 nodes, packet-size sweep\n\n";

  Table table{{"packet bits", "EW-MAC tput", "S-FAMA tput", "EW-MAC mW", "S-FAMA mW"}};
  for (std::uint32_t bits : {1'024u, 2'048u, 3'072u, 4'096u}) {
    base.traffic.packet_bits_min = bits;
    base.traffic.packet_bits_max = bits;

    ScenarioConfig ew = base;
    ew.mac = MacKind::kEwMac;
    const MeanStats ew_stats = mean_of(run_replicated(ew, 3));

    ScenarioConfig sf = base;
    sf.mac = MacKind::kSFama;
    const MeanStats sf_stats = mean_of(run_replicated(sf, 3));

    table.add_row({std::to_string(bits), format_double(ew_stats.throughput_kbps, 4),
                   format_double(sf_stats.throughput_kbps, 4),
                   format_double(ew_stats.mean_power_mw, 1),
                   format_double(sf_stats.mean_power_mw, 1)});
  }
  table.print(std::cout);

  std::cout << "\nPaper's conclusion: the EW-MAC advantage is largest when packets are\n"
               "large or deployment is dense (§6).\n";
  return 0;
}

// Mobile column: a Fig.-1-style layered column of sensors drifting with
// currents (the paper's three mobility models assigned at random), with
// data flowing upward toward the surface. Demonstrates the timestamp-
// based neighbor-delay maintenance of §4.3 under motion: delays are
// re-learned from every packet, so EW-MAC keeps working while positions
// change.

#include <iostream>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace aquamac;

  ScenarioConfig base = paper_default_scenario();
  base.deployment.kind = DeploymentKind::kLayeredColumn;
  base.deployment.width_m = 2'500.0;
  base.deployment.length_m = 2'500.0;
  base.deployment.depth_m = 5'000.0;
  base.deployment.layer_spacing_m = 1'000.0;
  base.node_count = 80;
  base.traffic.offered_load_kbps = 0.5;

  std::cout << "aquamac mobile column example: 80 nodes in a drifting Fig.-1 column\n\n";

  Table table{{"drift m/s", "EW-MAC tput", "delivery", "extra ok", "collisions"}};
  for (double speed : {0.0, 0.3, 0.6, 1.0}) {
    ScenarioConfig config = base;
    config.mac = MacKind::kEwMac;
    config.enable_mobility = speed > 0.0;
    config.mobility.speed_mps = speed;
    const MeanStats mean = mean_of(run_replicated(config, 3));
    table.add_row({format_double(speed, 1), format_double(mean.throughput_kbps, 4),
                   format_double(mean.delivery_ratio, 3),
                   format_double(mean.extra_successes, 1),
                   format_double(mean.rx_collisions, 1)});
  }
  table.print(std::cout);

  std::cout << "\nThe paper's §5 closing caveat: the protocol tolerates slow relative\n"
               "motion (delays are re-learned per packet) but degrades if pairwise\n"
               "delays change faster than they are refreshed.\n";
  return 0;
}

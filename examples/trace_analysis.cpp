// Trace analysis: run one scenario with the structured PHY trace enabled
// and post-process it — channel utilization, airtime shares, loss
// anatomy, handshake reconstruction — the forensic view of *why* a MAC
// protocol performs the way it does. Contrast EW-MAC against S-FAMA to
// see where the reclaimed waiting time shows up.

#include <iostream>

#include "harness/scenario.hpp"
#include "net/network.hpp"
#include "stats/analysis.hpp"

int main(int argc, char** argv) {
  using namespace aquamac;

  ScenarioConfig config = paper_default_scenario();
  config.traffic.offered_load_kbps = 0.7;
  if (argc > 1) config.mac = mac_kind_from_string(argv[1]);

  for (MacKind kind :
       argc > 1 ? std::vector<MacKind>{config.mac}
                : std::vector<MacKind>{MacKind::kSFama, MacKind::kEwMac}) {
    MemoryTrace trace;
    ScenarioConfig run_config = config;
    run_config.mac = kind;
    run_config.trace = &trace;

    Simulator sim;
    Network network{sim, run_config};
    const RunStats stats = network.run();

    std::cout << "================ " << to_string(kind) << " ================\n"
              << "throughput " << stats.throughput_kbps << " kbps, delivery "
              << stats.delivery_ratio << ", extras " << stats.extra_successes << "\n\n"
              << analysis_report(trace, TimeInterval{Time::zero(), sim.now()},
                                 run_config.bit_rate_bps)
              << "\n";
  }

  std::cout << "Reading: EW-MAC converts idle waiting into extra data airtime — higher\n"
               "busy fraction and data share, more completed deliveries per RTS — while\n"
               "the loss anatomy shows its extra packets do not inflate collisions.\n";
  return 0;
}

// Multi-hop to sink: the full Fig.-1 system — deep sensors originate
// readings that are relayed hop-by-hop toward surface sinks, with the MAC
// protocols below doing the per-hop work. Compares end-to-end delivery,
// hop counts and latency across the paper's protocols.

#include <iostream>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace aquamac;

  ScenarioConfig base = paper_default_scenario();
  base.multi_hop = true;
  base.sink_fraction = 0.08;
  base.deployment.kind = DeploymentKind::kLayeredColumn;
  base.deployment.width_m = 2'000.0;
  base.deployment.length_m = 2'000.0;
  base.deployment.depth_m = 5'000.0;
  base.deployment.layer_spacing_m = 1'000.0;
  base.node_count = 60;
  base.traffic.offered_load_kbps = 0.3;

  std::cout << "aquamac multi-hop example: 60-node column, data relayed to surface sinks\n"
            << "(offered " << base.traffic.offered_load_kbps << " kbps at the origins, "
            << "3 seeds)\n\n";

  Table table{{"protocol", "e2e delivery", "mean hops", "e2e latency s", "MAC tput kbps"}};
  for (MacKind kind : {MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac, MacKind::kEwMac,
                       MacKind::kDots}) {
    double delivery = 0.0;
    double hops = 0.0;
    double latency = 0.0;
    double tput = 0.0;
    constexpr unsigned kReps = 3;
    for (unsigned rep = 0; rep < kReps; ++rep) {
      ScenarioConfig config = base;
      config.mac = kind;
      config.seed = 1 + rep;
      const RunStats stats = run_scenario(config);
      delivery += stats.e2e_delivery_ratio;
      hops += stats.mean_hops;
      latency += stats.mean_e2e_latency_s;
      tput += stats.throughput_kbps;
    }
    table.add_row({std::string{to_string(kind)}, format_double(delivery / kReps, 3),
                   format_double(hops / kReps, 2), format_double(latency / kReps, 1),
                   format_double(tput / kReps, 4)});
  }
  table.print(std::cout);

  std::cout << "\nEvery hop of the relay path is one MAC-level exchange: protocols that\n"
               "win the paper's one-hop comparison carry that advantage to end-to-end\n"
               "delivery, and each extra hop adds several slot times of latency.\n";
  return 0;
}

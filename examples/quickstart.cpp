// Quickstart: build a 60-node underwater network, run EW-MAC for 300
// simulated seconds of Poisson traffic, and print the headline metrics.
//
//   ./quickstart [protocol]       (default EW-MAC; try S-FAMA, ROPA, ...)

#include <iostream>
#include <string>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"

int main(int argc, char** argv) {
  using namespace aquamac;

  ScenarioConfig config = paper_default_scenario();
  if (argc > 1) config.mac = mac_kind_from_string(argv[1]);

  std::cout << "aquamac quickstart\n==================\n\n"
            << describe_scenario(config) << "\n";

  const RunStats stats = run_scenario(config);

  std::cout << "Results (" << to_string(config.mac) << ", seed " << config.seed << ")\n"
            << "  offered load      " << stats.offered_load_kbps << " kbps\n"
            << "  throughput        " << stats.throughput_kbps << " kbps (Eq. 3)\n"
            << "  delivery ratio    " << stats.delivery_ratio << "\n"
            << "  packets           " << stats.packets_delivered << " delivered / "
            << stats.packets_offered << " offered\n"
            << "  mean power        " << stats.mean_power_mw << " mW per node\n"
            << "  mean latency      " << stats.mean_latency_s << " s\n"
            << "  handshakes        " << stats.handshake_successes << " ok / "
            << stats.handshake_attempts << " attempts\n"
            << "  extra comms       " << stats.extra_successes << " ok / "
            << stats.extra_attempts << " attempts\n"
            << "  collisions seen   " << stats.rx_collisions << "\n"
            << "  efficiency (E)    " << stats.efficiency_raw() << " kbps/mW (Eq. 4)\n";
  return 0;
}

// Table 2: the simulation parameter sheet, as configured in this
// reproduction, for both the figure-default scaled region and the
// paper-literal 1000 km^3 box (with its connectivity diagnostic).

#include <iostream>

#include "bench_util.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

int main() {
  using namespace aquamac;
  bench::print_header("Table 2 — simulation parameters", "Hung & Luo, Table 2");

  std::cout << "Figure-default scenario (scaled region, DESIGN.md §5):\n\n"
            << describe_scenario(paper_default_scenario()) << "\n";

  const ScenarioConfig literal = table2_literal_scenario();
  std::cout << "Paper-literal Table 2 region:\n\n" << describe_scenario(literal) << "\n";

  // Connectivity diagnostic justifying the scaled default.
  // aquamac-lint: allow(rng-root) -- one-shot deployment diagnostic, not a run.
  Rng rng{42};
  const DeploymentConfig scaled_box = paper_default_scenario().deployment;
  const auto scaled = generate_deployment(scaled_box, 60, rng);
  const auto paper_box = generate_deployment(literal.deployment, 60, rng);
  std::cout << "Connectivity at 1.5 km range (60 nodes, seed 42):\n"
            << "  scaled " << scaled_box.width_m / 1'000.0 << " km box:      mean degree "
            << mean_degree(scaled, 1'500.0) << ", uphill coverage "
            << uphill_coverage(scaled, 1'500.0) << "\n"
            << "  literal 10x10x10 km box: mean degree " << mean_degree(paper_box, 1'500.0)
            << ", uphill coverage " << uphill_coverage(paper_box, 1'500.0) << "\n";
  return 0;
}

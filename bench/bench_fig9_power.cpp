// Figure 9: power consumption.
//  (a) mean per-node power vs offered load (0.1-0.8 kbps) at 80 sensors;
//  (b) mean per-node power vs sensor count (60-120) at 0.3 kbps.
// Paper's shape: ROPA > CS-MAC > S-FAMA > EW-MAC (EW-MAC lowest: no
// two-hop maintenance and faster completion); in (b) the two-hop
// protocols' power grows with node count while S-FAMA and EW-MAC stay
// roughly flat.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace aquamac;
  bench::print_header("Figure 9 — power consumption", "Hung & Luo, Fig. 9a/9b");

  // §5.2 compares "the power consumption of algorithms when they
  // transmit varied amounts of information": each point offers a fixed
  // workload (batch), the run stops when every packet is resolved, and
  // the energy spent is expressed as mean per-node power over the
  // Table-2 300 s window (EXPERIMENTS.md).
  auto batch_base = [](std::size_t nodes, double load_kbps) {
    ScenarioConfig config = paper_default_scenario();
    config.node_count = nodes;
    config.traffic.mode = TrafficMode::kBatch;
    config.traffic.batch_packets =
        static_cast<std::uint32_t>(load_kbps * 1'000.0 * 300.0 / 2'048.0);
    config.sim_time = Duration::seconds(2'000);  // completion bound
    return config;
  };

  {
    std::cout << "(a) energy per workload as mean per-node power [mW] vs offered load, "
                 "80 sensors\n\n";
    const double xs[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
    const SweepResult sweep = run_sweep(
        batch_base(80, 0.1), paper_comparison_set(), xs,
        [](ScenarioConfig& config, double load) {
          config.traffic.batch_packets =
              static_cast<std::uint32_t>(load * 1'000.0 * 300.0 / 2'048.0);
        },
        bench::replications());
    sweep_table(sweep, "offered kbps",
                [](const MeanStats& m) { return m.workload_power_mw(); }, 2)
        .print(std::cout);

    std::cout << "\n(a') same sweep normalized per information actually moved "
                 "[mJ per delivered kbit]\n    (the strict 'same amount of information' "
                 "reading of §5.2; full paper ordering holds here)\n\n";
    sweep_table(sweep, "offered kbps",
                [](const MeanStats& m) {
                  return m.bits_delivered > 0.0 ? m.total_energy_j / m.bits_delivered * 1e6
                                                : 0.0;
                },
                1)
        .print(std::cout);

    bench::emit_bench_json(
        "fig9a_power_vs_load", sweep,
        {{"workload_power_mw", [](const MeanStats& m) { return m.workload_power_mw(); }},
         {"energy_mj_per_kbit", [](const MeanStats& m) {
            return m.bits_delivered > 0.0 ? m.total_energy_j / m.bits_delivered * 1e6 : 0.0;
          }}});
  }

  {
    std::cout << "\n(b) energy per workload as mean per-node power [mW] vs sensor count, "
                 "offered load 0.3 kbps\n\n";
    const double xs[] = {60, 80, 100, 120};
    const SweepResult sweep = run_sweep(
        batch_base(60, 0.3), paper_comparison_set(), xs,
        [](ScenarioConfig& config, double nodes) {
          config.node_count = static_cast<std::size_t>(nodes);
        },
        bench::replications());
    sweep_table(sweep, "nodes", [](const MeanStats& m) { return m.workload_power_mw(); }, 2)
        .print(std::cout);

    bench::emit_bench_json(
        "fig9b_power_vs_density", sweep,
        {{"workload_power_mw", [](const MeanStats& m) { return m.workload_power_mw(); }}});
  }

  std::cout << "\nShape checks (paper Fig. 9): EW-MAC lowest power in both sweeps; the\n"
               "two-hop-maintaining protocols (ROPA, CS-MAC) cost the most and their\n"
               "cost grows with node count.\n";
  return 0;
}

// Figure 10: overhead, normalized to S-FAMA = 1. Overhead = control bits
// + neighbor-maintenance bits + retransmitted bits (§5.3).
//  (a) overhead ratio vs sensor count (60-140) at 0.5 kbps;
//  (b) overhead ratio vs offered load (0.4-0.8 kbps) at 200 sensors.
// Paper's shape: ROPA ~1.5x S-FAMA; CS-MAC and EW-MAC 2-3x; with node
// count, ROPA/CS-MAC grow faster than EW-MAC (one-hop info only).

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace aquamac;
  bench::print_header("Figure 10 — overhead vs S-FAMA baseline", "Hung & Luo, Fig. 10a/10b");

  {
    std::cout << "(a) overhead ratio vs sensor count, offered load 0.5 kbps\n\n";
    ScenarioConfig base = paper_default_scenario();
    base.traffic.offered_load_kbps = 0.5;
    const double xs[] = {60, 80, 100, 120, 140};
    const SweepResult sweep = run_sweep(
        base, paper_comparison_set(), xs,
        [](ScenarioConfig& config, double nodes) {
          config.node_count = static_cast<std::size_t>(nodes);
        },
        bench::replications());
    sweep_table_normalized(sweep, "nodes",
                           [](const MeanStats& m) { return m.overhead_bits; }, 3)
        .print(std::cout);

    bench::emit_bench_json(
        "fig10a_overhead_vs_density", sweep,
        {{"overhead_bits", [](const MeanStats& m) { return m.overhead_bits; }}});
  }

  {
    std::cout << "\n(b) overhead ratio vs offered load, 200 sensors\n\n";
    ScenarioConfig base = paper_default_scenario();
    base.node_count = 200;
    const double xs[] = {0.4, 0.5, 0.6, 0.7, 0.8};
    const SweepResult sweep = run_sweep(
        base, paper_comparison_set(), xs,
        [](ScenarioConfig& config, double load) { config.traffic.offered_load_kbps = load; },
        bench::replications());
    sweep_table_normalized(sweep, "offered kbps",
                           [](const MeanStats& m) { return m.overhead_bits; }, 3)
        .print(std::cout);

    bench::emit_bench_json(
        "fig10b_overhead_vs_load", sweep,
        {{"overhead_bits", [](const MeanStats& m) { return m.overhead_bits; }}});
  }

  {
    // (c) Multi-hop DV overhead (ROADMAP 2a): the piggybacked route
    // advertisement (kRouteAdBits per carrying frame) is charged to the
    // same §5.3 overhead ledger, so the DV column shows routing's real
    // control cost on top of each MAC's own overhead.
    std::cout << "\n(c) overhead ratio vs sensor count, multi-hop DV routing\n\n";
    ScenarioConfig base = paper_default_scenario();
    base.traffic.offered_load_kbps = 0.5;
    base.multi_hop = true;
    base.routing = RoutingKind::kDv;
    const double xs[] = {60, 100, 140};
    const SweepResult sweep = run_sweep(
        base, paper_comparison_set(), xs,
        [](ScenarioConfig& config, double nodes) {
          config.node_count = static_cast<std::size_t>(nodes);
        },
        bench::replications());
    sweep_table_normalized(sweep, "nodes",
                           [](const MeanStats& m) { return m.overhead_bits; }, 3)
        .print(std::cout);

    bench::emit_bench_json(
        "fig10c_overhead_dv_routing", sweep,
        {{"overhead_bits", [](const MeanStats& m) { return m.overhead_bits; }}});
  }

  std::cout << "\nShape checks (paper Fig. 10): S-FAMA = 1 by construction; ROPA around\n"
               "1.5x; CS-MAC/EW-MAC in the 2-3x band, with EW-MAC growing slower in\n"
               "node count than the two-hop protocols. The DV experiment adds the\n"
               "route-ad piggyback (104 bits per carrying frame) to every column.\n";
  return 0;
}

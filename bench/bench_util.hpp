#pragma once
// Shared helpers for the figure benches.

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"

namespace aquamac::bench {

/// Seed replications per sweep point; override with AQUAMAC_REPLICATIONS
/// (AQUAMAC_FAST=1 forces 1, for smoke runs).
inline unsigned replications(unsigned def = 3) {
  if (const char* fast = std::getenv("AQUAMAC_FAST"); fast != nullptr && fast[0] == '1') {
    return 1;
  }
  if (const char* env = std::getenv("AQUAMAC_REPLICATIONS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return def;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << title << "\n";
  for (std::size_t i = 0; i < title.size(); ++i) std::cout << '=';
  std::cout << "\nReproduces: " << paper_ref << "\n\n";
}

}  // namespace aquamac::bench

#pragma once
// Shared helpers for the figure benches.
//
// aquamac-lint: allow-file(wall-clock) -- benches measure real elapsed
// time by design; nothing here feeds the deterministic event stream.

#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "util/json_writer.hpp"
#include "util/phase_hook.hpp"

namespace aquamac::bench {

/// Wall-clock implementation of the src-side PhaseHook seam: accumulates
/// steady_clock time per SimPhase so benches can split a run's cost into
/// channel delivery vs MAC processing. Serial runs only — begin/end pairs
/// from concurrent shards would interleave (see util/phase_hook.hpp).
/// Phases may nest (a MAC handler transmitting from inside
/// finish_arrival); nested time counts toward both phases.
class PhaseProfiler final : public PhaseHook {
 public:
  void begin(SimPhase phase) override { starts_[index(phase)] = Clock::now(); }
  void end(SimPhase phase) override {
    const std::size_t i = index(phase);
    totals_[i] += std::chrono::duration<double>(Clock::now() - starts_[i]).count();
  }

  /// Accumulated seconds spent in `phase` so far.
  [[nodiscard]] double seconds(SimPhase phase) const { return totals_[index(phase)]; }

  void reset() { totals_.fill(0.0); }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kPhases = 2;
  static std::size_t index(SimPhase phase) { return static_cast<std::size_t>(phase); }

  std::array<Clock::time_point, kPhases> starts_{};
  std::array<double, kPhases> totals_{};
};

/// Seed replications per sweep point; override with AQUAMAC_REPLICATIONS
/// (AQUAMAC_FAST=1 forces 1, for smoke runs).
inline unsigned replications(unsigned def = 3) {
  if (const char* fast = std::getenv("AQUAMAC_FAST"); fast != nullptr && fast[0] == '1') {
    return 1;
  }
  if (const char* env = std::getenv("AQUAMAC_REPLICATIONS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return def;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << title << "\n";
  for (std::size_t i = 0; i < title.size(); ++i) std::cout << '=';
  std::cout << "\nReproduces: " << paper_ref << "\n\n";
}

/// One named metric column to serialize into the JSON `series` block.
using NamedMetric = std::pair<std::string, MetricFn>;

/// Extra top-level numbers a bench wants recorded (e.g. measured
/// serial-vs-parallel speedup).
using ExtraField = std::pair<std::string, double>;

/// Directory BENCH_*.json files land in; override with AQUAMAC_BENCH_DIR.
inline std::string bench_output_dir() {
  if (const char* dir = std::getenv("AQUAMAC_BENCH_DIR")) return dir;
  return ".";
}

/// Serializes a sweep into `os` as the BENCH JSON schema: timing (total
/// wall seconds, per-cell summed run seconds, runs/sec, worker count)
/// plus the selected metric series per protocol.
inline void write_bench_json(std::ostream& os, const std::string& name,
                             const SweepResult& sweep,
                             const std::vector<NamedMetric>& metrics,
                             const std::vector<ExtraField>& extras = {}) {
  JsonWriter json{os};
  json.begin_object();
  json.key("bench").value(name);
  json.key("schema").value("aquamac-bench-v1");
  json.key("jobs").value(sweep.jobs_used);
  json.key("replications").value(sweep.replications);
  json.key("total_runs").value(sweep.total_runs());
  json.key("wall_s").value(sweep.wall_s);
  json.key("runs_per_sec")
      .value(sweep.wall_s > 0.0 ? static_cast<double>(sweep.total_runs()) / sweep.wall_s
                                : 0.0);
  for (const auto& [key, value] : extras) json.key(key).value(value);

  json.key("xs").begin_array();
  for (const double x : sweep.xs) json.value(x);
  json.end_array();

  json.key("protocols").begin_array();
  for (const MacKind kind : sweep.protocols) json.value(to_string(kind));
  json.end_array();

  // Summed per-run wall seconds per (protocol, x) cell — compute cost,
  // which under parallel execution is not elapsed time.
  json.key("cell_run_s").begin_object();
  for (const MacKind kind : sweep.protocols) {
    json.key(to_string(kind)).begin_array();
    for (const double s : sweep.cell_wall_s.at(kind)) json.value(s);
    json.end_array();
  }
  json.end_object();

  json.key("series").begin_object();
  for (const auto& [metric_name, metric] : metrics) {
    json.key(metric_name).begin_object();
    for (const MacKind kind : sweep.protocols) {
      json.key(to_string(kind)).begin_array();
      for (std::size_t i = 0; i < sweep.xs.size(); ++i) json.value(metric(sweep.at(kind, i)));
      json.end_array();
    }
    json.end_object();
  }
  json.end_object();

  json.end_object();
  os << "\n";
}

/// Writes BENCH_<name>.json into bench_output_dir() and announces the
/// path on stdout. Set AQUAMAC_NO_BENCH_JSON=1 to suppress (tests that
/// exercise bench binaries without wanting artifacts).
inline void emit_bench_json(const std::string& name, const SweepResult& sweep,
                            const std::vector<NamedMetric>& metrics,
                            const std::vector<ExtraField>& extras = {}) {
  if (const char* off = std::getenv("AQUAMAC_NO_BENCH_JSON");
      off != nullptr && off[0] == '1') {
    return;
  }
  const std::string path = bench_output_dir() + "/BENCH_" + name + ".json";
  std::ofstream os{path};
  if (!os) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return;
  }
  write_bench_json(os, name, sweep, metrics, extras);
  std::cout << "\n[bench json] wrote " << path << " (wall " << sweep.wall_s << " s, jobs "
            << sweep.jobs_used << ")\n";
}

}  // namespace aquamac::bench

// Figure 11: efficiency index E = TPT / PC (Eq. 4), normalized to
// S-FAMA = 1, vs offered load. Paper's shape: the reuse protocols sit
// above 1 thanks to higher throughput; ROPA dips below S-FAMA once
// interference at load > 0.8 erodes its throughput.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace aquamac;
  bench::print_header("Figure 11 — efficiency index vs offered load", "Hung & Luo, Fig. 11");

  const ScenarioConfig base = paper_default_scenario();
  const double xs[] = {0.2, 0.4, 0.6, 0.8, 1.0};

  const SweepResult sweep = run_sweep(
      base, paper_comparison_set(), xs,
      [](ScenarioConfig& config, double load) { config.traffic.offered_load_kbps = load; },
      bench::replications());

  sweep_table_normalized(sweep, "offered kbps",
                         [](const MeanStats& m) { return m.efficiency_raw; }, 3)
      .print(std::cout);

  bench::emit_bench_json(
      "fig11_efficiency", sweep,
      {{"efficiency_raw", [](const MeanStats& m) { return m.efficiency_raw; }},
       {"throughput_kbps", [](const MeanStats& m) { return m.throughput_kbps; }}});

  std::cout << "\nShape checks (paper Fig. 11): EW-MAC's index is highest at high load;\n"
               "ROPA approaches/falls below 1 at the top of the load range.\n";
  return 0;
}

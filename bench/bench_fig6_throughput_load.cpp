// Figure 6: throughput (kbps) vs offered load (0.1 - 1.0 kbps), 60
// sensors. Paper's shape: all protocols rise together at low load;
// CS-MAC leads below ~0.6 thanks to negotiation-free stealing, then its
// interference self-destructs and EW-MAC leads; ROPA sits between the
// reuse protocols and S-FAMA; S-FAMA saturates lowest.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace aquamac;
  bench::print_header("Figure 6 — throughput vs offered load", "Hung & Luo, Fig. 6");

  const ScenarioConfig base = paper_default_scenario();
  const double xs[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  const SweepResult sweep = run_sweep(
      base, paper_comparison_set(), xs,
      [](ScenarioConfig& config, double load) { config.traffic.offered_load_kbps = load; },
      bench::replications());

  sweep_table(sweep, "offered kbps",
              [](const MeanStats& m) { return m.throughput_kbps; })
      .print(std::cout);

  std::cout << "\nSeed spread (mean +- stddev over replications):\n\n";
  sweep_table_with_spread(sweep, "offered kbps",
                          [](const RunStats& r) { return r.throughput_kbps; }, 3)
      .print(std::cout);

  bench::emit_bench_json(
      "fig6_throughput_load", sweep,
      {{"throughput_kbps", [](const MeanStats& m) { return m.throughput_kbps; }},
       {"delivery_ratio", [](const MeanStats& m) { return m.delivery_ratio; }}});

  std::cout << "\nShape checks (paper Fig. 6): EW-MAC > ROPA > S-FAMA at load >= 0.8;\n"
               "CS-MAC peaks in the mid-load range and falls behind EW-MAC at high load.\n";
  return 0;
}

// Fault-injection degradation curves: sweeps clock-drift rate, outage
// rate and Gilbert-Elliott burst-loss severity per protocol (EW-MAC,
// S-FAMA, MACA-U) on the small connected scenario, with the
// InvariantAuditor attached in hard-fail mode to every run — a violation
// inside a healthy interval aborts the bench. Guard slack is sized per
// cell from the exact realized clock uncertainty, so EW-MAC's extra
// windows shrink instead of breaking the overlap theorem.
//
// The oracle: mean delivery ratio must be monotone non-increasing along
// the drift and outage axes for every protocol (exit 1 otherwise).
// Emits BENCH_fault.json (schema aquamac-bench-fault-v1; render with
// scripts/plot_results.py --axis <name>).
//
//   AQUAMAC_FAST=1 ./bench_fault      # 1 replication, short axes

#include <cstdlib>
#include <exception>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "stats/invariant_auditor.hpp"

namespace {

using namespace aquamac;

const std::vector<MacKind> kProtocols{MacKind::kEwMac, MacKind::kSFama, MacKind::kMacaU};

struct Axis {
  std::string name;                         ///< JSON key and x-axis label
  std::vector<double> xs;
  bool require_monotone{false};             ///< delivery ratio non-increasing
  void (*apply)(ScenarioConfig&, double){}; ///< sets the swept fault knob
};

[[nodiscard]] ScenarioConfig base_scenario() {
  ScenarioConfig config = small_test_scenario();
  // Long runs + 10 replications: delivery under mid-range drift trades
  // extra-window capacity against collision risk, and short runs leave
  // enough variance to wiggle the curve; 600 s x 10 seeds settles it.
  config.sim_time = Duration::seconds(600);
  config.traffic.offered_load_kbps = 0.3;
  return config;
}

/// Mean delivery ratio over `replications` seeded runs, each with a
/// hard-fail auditor scoped to healthy intervals. Throws on violation.
double cell_delivery(ScenarioConfig config, unsigned replications) {
  double sum = 0.0;
  const std::uint64_t base_seed = config.seed;
  for (unsigned k = 0; k < replications; ++k) {
    config.seed = base_seed + k;
    // Shrink EW-MAC's extra windows by exactly the clock spread this
    // (seed, plan) realizes; zero when the cell injects no drift.
    config.mac_config.guard_slack = realized_clock_uncertainty(config);
    InvariantAuditor::Config audit = auditor_config_for(config);
    audit.hard_fail = true;
    InvariantAuditor auditor{audit};
    config.trace = &auditor;
    sum += run_scenario(config).delivery_ratio;
  }
  return sum / static_cast<double>(replications);
}

}  // namespace

int main() {
  using namespace aquamac;
  bench::print_header("Fault-injection degradation",
                      "robustness under drift / outages / burst loss (not a paper figure)");

  const bool fast = [] {
    const char* env = std::getenv("AQUAMAC_FAST");
    return env != nullptr && env[0] == '1';
  }();
  const unsigned reps = bench::replications(10);

  std::vector<Axis> axes{
      Axis{"drift_ppm",
           fast ? std::vector<double>{0.0, 4'000.0}
                : std::vector<double>{0.0, 500.0, 1'000.0, 2'000.0, 4'000.0},
           true,
           [](ScenarioConfig& c, double x) { c.fault.drift_ppm_stddev = x; }},
      Axis{"outage_per_hour",
           fast ? std::vector<double>{0.0, 240.0}
                : std::vector<double>{0.0, 60.0, 180.0, 480.0},
           true,
           [](ScenarioConfig& c, double x) {
             c.fault.outage_rate_per_hour = x;
             c.fault.outage_mean_duration = Duration::seconds(10);
           }},
      Axis{"ge_p_bad",
           fast ? std::vector<double>{0.0, 0.15}
                : std::vector<double>{0.0, 0.05, 0.15, 0.4},
           false,  // reported, not gated: burst loss also suppresses *offers*
           [](ScenarioConfig& c, double x) {
             c.fault.ge_p_bad = x;
             c.fault.ge_p_good = 0.3;
             c.fault.ge_loss_bad = 0.9;
           }},
  };

  // axis -> protocol -> delivery ratio per x.
  std::map<std::string, std::map<std::string, std::vector<double>>> results;
  bool monotone_ok = true;

  for (const Axis& axis : axes) {
    std::cout << axis.name << " (replications " << reps << ")\n";
    std::cout << "      x";
    for (const MacKind mac : kProtocols) std::cout << "   " << to_string(mac);
    std::cout << "\n";
    for (const double x : axis.xs) {
      std::cout.width(7);
      std::cout << x;
      for (const MacKind mac : kProtocols) {
        ScenarioConfig config = base_scenario();
        config.mac = mac;
        axis.apply(config, x);
        double ratio = 0.0;
        try {
          ratio = cell_delivery(config, reps);
        } catch (const std::exception& e) {
          std::cerr << "\nERROR: auditor violation at " << axis.name << "=" << x << " ("
                    << to_string(mac) << "): " << e.what() << "\n";
          return 1;
        }
        results[axis.name][std::string{to_string(mac)}].push_back(ratio);
        std::cout << "   " << ratio;
      }
      std::cout << "\n";
    }
    if (axis.require_monotone) {
      for (const MacKind mac : kProtocols) {
        const auto& ys = results[axis.name][std::string{to_string(mac)}];
        for (std::size_t i = 1; i < ys.size(); ++i) {
          if (ys[i] > ys[i - 1] + 1e-9) {
            std::cerr << "ERROR: " << to_string(mac) << " delivery ratio rose along "
                      << axis.name << " (" << ys[i - 1] << " -> " << ys[i] << " at x="
                      << axis.xs[i] << ")\n";
            monotone_ok = false;
          }
        }
      }
    }
    std::cout << "\n";
  }

  std::cout << "degradation monotone on gated axes: " << (monotone_ok ? "yes" : "NO") << "\n";

  if (const char* off = std::getenv("AQUAMAC_NO_BENCH_JSON");
      off == nullptr || off[0] != '1') {
    const std::string path = bench::bench_output_dir() + "/BENCH_fault.json";
    std::ofstream os{path};
    if (!os) {
      std::cerr << "warning: cannot open " << path << " for writing\n";
    } else {
      JsonWriter json{os};
      json.begin_object();
      json.key("bench").value("fault");
      json.key("schema").value("aquamac-bench-fault-v1");
      json.key("replications").value(static_cast<double>(reps));
      json.key("monotone_ok").value(monotone_ok ? 1.0 : 0.0);
      json.key("protocols").begin_array();
      for (const MacKind mac : kProtocols) json.value(to_string(mac));
      json.end_array();
      json.key("axes").begin_object();
      for (const Axis& axis : axes) {
        json.key(axis.name).begin_object();
        json.key("xs").begin_array();
        for (const double x : axis.xs) json.value(x);
        json.end_array();
        json.key("series").begin_object();
        json.key("delivery_ratio").begin_object();
        for (const MacKind mac : kProtocols) {
          json.key(to_string(mac)).begin_array();
          for (const double y : results[axis.name][std::string{to_string(mac)}]) json.value(y);
          json.end_array();
        }
        json.end_object();
        json.end_object();
        json.end_object();
      }
      json.end_object();
      json.end_object();
      os << "\n";
      std::cout << "[bench json] wrote " << path << "\n";
    }
  }

  return monotone_ok ? 0 : 1;
}

// End-to-end multi-hop routing comparison (docs/routing.md): greedy
// depth rule vs static shortest-delay tree vs distance-vector, with the
// InvariantAuditor attached in hard-fail mode to every run (including
// the new packet-revisit / hop-count routing invariants).
//
// Two experiments:
//  - grid: fault-free static N=200 jittered grid. Reports delivery
//    ratio, hop stretch vs the tree, mean hops, end-to-end and per-hop
//    latency, and the routing-layer drop breakdown per routing kind.
//    Gate: DV delivery ratio >= 0.95 (exit 1 otherwise).
//  - outage: a sparse two-wide relay corridor under a Poisson relay
//    outage plan. The greedy rule forwards to a statically chosen
//    shallowest neighbor and keeps feeding it through its outages; DV
//    declares the relay dead and reroutes through the layer sibling.
//    Gate: DV delivery ratio strictly above greedy (exit 1 otherwise).
//
// Emits BENCH_multihop.json (schema aquamac-bench-multihop-v1; render
// with scripts/plot_results.py).
//
//   AQUAMAC_FAST=1 ./bench_multihop   # 1 replication, smaller grid

#include <cstdlib>
#include <exception>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "stats/invariant_auditor.hpp"

namespace {

using namespace aquamac;

const std::vector<RoutingKind> kRoutings{RoutingKind::kGreedy, RoutingKind::kTree,
                                         RoutingKind::kDv};

/// The per-kind numbers one experiment reports (means over replications).
struct Series {
  double delivery{0.0};
  double hop_stretch{0.0};
  double mean_hops{0.0};
  double e2e_latency_s{0.0};
  double per_hop_latency_s{0.0};
  double dropped_no_route{0.0};
  double dropped_mac{0.0};
};

/// Fault-free static grid: the paper's Fig. 1 convergecast shape at
/// scale. Mobility is off — the delivery gate reflects routing quality,
/// not staleness churn — and the per-node load is kept light so MAC
/// saturation does not mask routing differences.
[[nodiscard]] ScenarioConfig grid_scenario(std::size_t nodes, std::uint64_t seed,
                                           bool fast) {
  ScenarioConfig config = grid3d_scenario(nodes, seed);
  config.enable_mobility = false;
  config.multi_hop = true;
  // Long horizon: per-hop MAC latency is tens of seconds (slotted
  // handshakes over ~1 s propagation), so a short run censors every
  // packet originated near the end and caps the measurable delivery
  // ratio well below the routing layer's true performance.
  config.sim_time = Duration::seconds(fast ? 1'200 : 3'600);
  // ~0.1 pkt/s network-wide: the slotted handshake spends several
  // multi-second slots per 2 kbit payload, so nominal capacity is a few
  // hundred bit/s — anything heavier builds unbounded queues.
  config.traffic.offered_load_kbps = 0.2;
  return config;
}

/// Sparse corridor: five layers of two siblings each, one sink layer on
/// top. Every relay layer is redundant, so a single relay outage leaves
/// an alternate path for a router willing to re-converge.
[[nodiscard]] ScenarioConfig corridor_scenario(std::uint64_t seed) {
  ScenarioConfig config = small_test_scenario();
  config.seed = seed;
  config.node_count = 10;
  config.deployment.kind = DeploymentKind::kLayeredColumn;
  config.deployment.width_m = 400.0;
  config.deployment.length_m = 400.0;
  config.deployment.depth_m = 5'000.0;
  config.deployment.layer_spacing_m = 1'000.0;
  config.deployment.jitter_m = 50.0;
  config.enable_mobility = false;
  config.multi_hop = true;
  config.sim_time = Duration::seconds(1'200);
  config.traffic.offered_load_kbps = 0.3;
  // Enough relay outages per run that every routing kind meets several,
  // long enough that a static route pays for the whole window.
  config.fault.outage_rate_per_hour = 30.0;
  config.fault.outage_mean_duration = Duration::seconds(45);
  config.mac_config.dead_neighbor_threshold = 3;
  config.mac_config.max_retries = 2;
  // Pin the naive depth-greedy baseline: without this the dead-neighbor
  // blacklist (ROADMAP 2c) lets greedy route around outages too, which
  // is exactly the behavior the dv>greedy gate uses greedy to contrast.
  config.greedy_blacklist = false;
  return config;
}

/// Mean multi-hop series over `replications` seeded runs with a
/// hard-fail auditor on each. Throws on an invariant violation.
Series mean_series(ScenarioConfig config, unsigned replications) {
  Series s;
  const std::uint64_t base_seed = config.seed;
  for (unsigned k = 0; k < replications; ++k) {
    config.seed = base_seed + k;
    InvariantAuditor::Config audit = auditor_config_for(config);
    audit.hard_fail = true;
    InvariantAuditor auditor{audit};
    config.trace = &auditor;
    const RunStats stats = run_scenario(config);
    s.delivery += stats.e2e_delivery_ratio;
    s.hop_stretch += stats.hop_stretch;
    s.mean_hops += stats.mean_hops;
    s.e2e_latency_s += stats.mean_e2e_latency_s;
    s.per_hop_latency_s += stats.mean_per_hop_latency_s;
    s.dropped_no_route += static_cast<double>(stats.e2e_dropped_no_route);
    s.dropped_mac += static_cast<double>(stats.e2e_dropped_mac);
  }
  const auto n = static_cast<double>(replications);
  s.delivery /= n;
  s.hop_stretch /= n;
  s.mean_hops /= n;
  s.e2e_latency_s /= n;
  s.per_hop_latency_s /= n;
  s.dropped_no_route /= n;
  s.dropped_mac /= n;
  return s;
}

void print_table(const std::map<std::string, Series>& rows) {
  std::cout << "  routing   delivery   stretch   hops   e2e_s   perhop_s   no_route   mac\n";
  for (const auto& [name, s] : rows) {
    std::cout << "  " << name << "\t" << s.delivery << "\t" << s.hop_stretch << "\t"
              << s.mean_hops << "\t" << s.e2e_latency_s << "\t" << s.per_hop_latency_s
              << "\t" << s.dropped_no_route << "\t" << s.dropped_mac << "\n";
  }
  std::cout << "\n";
}

void write_experiment(JsonWriter& json, const std::map<std::string, Series>& rows) {
  const std::vector<std::pair<std::string, double Series::*>> metrics{
      {"delivery_ratio", &Series::delivery},
      {"hop_stretch", &Series::hop_stretch},
      {"mean_hops", &Series::mean_hops},
      {"mean_e2e_latency_s", &Series::e2e_latency_s},
      {"mean_per_hop_latency_s", &Series::per_hop_latency_s},
      {"dropped_no_route", &Series::dropped_no_route},
      {"dropped_mac", &Series::dropped_mac},
  };
  json.key("series").begin_object();
  for (const auto& [metric, member] : metrics) {
    json.key(metric).begin_object();
    for (const auto& [name, s] : rows) json.key(name).value(s.*member);
    json.end_object();
  }
  json.end_object();
}

}  // namespace

int main() {
  using namespace aquamac;
  bench::print_header("Multi-hop routing end-to-end",
                      "delivery / stretch / latency per routing kind (not a paper figure)");

  const bool fast = [] {
    const char* env = std::getenv("AQUAMAC_FAST");
    return env != nullptr && env[0] == '1';
  }();
  const unsigned reps = bench::replications(3);
  const std::size_t grid_nodes = fast ? 64 : 200;
  const unsigned corridor_reps = fast ? 2 : std::max(4u, reps);

  std::map<std::string, Series> grid_rows;
  std::map<std::string, Series> outage_rows;
  try {
    std::cout << "fault-free grid, N=" << grid_nodes << " (replications " << reps << ")\n";
    for (const RoutingKind routing : kRoutings) {
      ScenarioConfig config = grid_scenario(grid_nodes, 11, fast);
      config.routing = routing;
      grid_rows[std::string{to_string(routing)}] = mean_series(config, reps);
    }
    print_table(grid_rows);

    std::cout << "relay-outage corridor, N=10 (replications " << corridor_reps << ")\n";
    for (const RoutingKind routing : {RoutingKind::kGreedy, RoutingKind::kDv}) {
      ScenarioConfig config = corridor_scenario(3);
      config.routing = routing;
      outage_rows[std::string{to_string(routing)}] = mean_series(config, corridor_reps);
    }
    print_table(outage_rows);
  } catch (const std::exception& e) {
    std::cerr << "ERROR: auditor violation: " << e.what() << "\n";
    return 1;
  }

  // The gates the roadmap promises for this bench.
  const double dv_grid_delivery = grid_rows.at("dv").delivery;
  const bool grid_ok = dv_grid_delivery >= 0.95;
  if (!grid_ok) {
    std::cerr << "ERROR: DV delivery " << dv_grid_delivery
              << " below 0.95 on the fault-free grid\n";
  }
  const double dv_outage = outage_rows.at("dv").delivery;
  const double greedy_outage = outage_rows.at("greedy").delivery;
  const bool outage_ok = dv_outage > greedy_outage;
  if (!outage_ok) {
    std::cerr << "ERROR: DV delivery " << dv_outage << " not above greedy "
              << greedy_outage << " under relay outages\n";
  }
  std::cout << "gates: grid dv>=0.95 " << (grid_ok ? "ok" : "FAIL")
            << ", outage dv>greedy " << (outage_ok ? "ok" : "FAIL") << "\n";

  if (const char* off = std::getenv("AQUAMAC_NO_BENCH_JSON");
      off == nullptr || off[0] != '1') {
    const std::string path = bench::bench_output_dir() + "/BENCH_multihop.json";
    std::ofstream os{path};
    if (!os) {
      std::cerr << "warning: cannot open " << path << " for writing\n";
    } else {
      JsonWriter json{os};
      json.begin_object();
      json.key("bench").value("multihop");
      json.key("schema").value("aquamac-bench-multihop-v1");
      json.key("replications").value(static_cast<double>(reps));
      json.key("grid").begin_object();
      json.key("nodes").value(static_cast<double>(grid_nodes));
      json.key("dv_delivery_gate").value(0.95);
      json.key("dv_delivery_ok").value(grid_ok ? 1.0 : 0.0);
      write_experiment(json, grid_rows);
      json.end_object();
      json.key("outage").begin_object();
      json.key("nodes").value(10.0);
      json.key("replications").value(static_cast<double>(corridor_reps));
      json.key("dv_beats_greedy").value(outage_ok ? 1.0 : 0.0);
      write_experiment(json, outage_rows);
      json.end_object();
      json.end_object();
      os << "\n";
      std::cout << "[bench json] wrote " << path << "\n";
    }
  }

  return grid_ok && outage_ok ? 0 : 1;
}

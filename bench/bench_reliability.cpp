// Hop-by-hop reliability degradation curves (docs/reliability.md): the
// custody/ARQ relay layer vs the plain drop-on-MAC-failure relay on the
// redundant-sibling corridor, swept across Gilbert-Elliott channel loss
// and (separately) a combined outage + interference-storm fault plan.
//
// Two experiments:
//  - loss: GE burst loss swept by P(good->bad); both modes run the same
//    seeds with the InvariantAuditor attached in hard-fail mode (the
//    custody invariants: no duplicate sink delivery, retries bounded).
//    Gates (exit 1 otherwise):
//      * ARQ delivery is monotone non-increasing in the loss rate
//        (within a small replication-noise epsilon);
//      * ARQ delivery strictly exceeds the no-ARQ baseline at every
//        nonzero loss point;
//      * the ARQ run's HashTrace digest is identical for shards 1 and 2
//        at a representative loss point (reliability timers are
//        lane-local, so sharding must not perturb the schedule).
//  - storm: relay outages + interference storms, reported (no gate —
//    outage survival is bench_multihop's DV-vs-greedy gate; here the
//    comparison isolates what custody adds on top).
//
// Emits BENCH_reliability.json (schema aquamac-bench-reliability-v1;
// render with scripts/plot_results.py).
//
//   AQUAMAC_FAST=1 ./bench_reliability   # 2 replications

#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "stats/invariant_auditor.hpp"
#include "stats/trace.hpp"

namespace {

using namespace aquamac;

/// Loss-sweep axis: P(good -> bad) per 100 ms GE step. With the default
/// P(bad -> good) = 0.3 and loss-in-bad 0.9, the stationary frame-loss
/// rates are about 0 / 0.13 / 0.30 / 0.45.
const std::vector<double> kGeSweep{0.0, 0.05, 0.15, 0.3};

/// Mean per-cell numbers over the seed replications.
struct Series {
  double delivery{0.0};
  double e2e_latency_s{0.0};
  double retransmissions{0.0};
  double failovers{0.0};
  double dead_letters{0.0};
  double duplicates_suppressed{0.0};
  double queue_highwater{0.0};
};

/// The bench_multihop redundant-sibling corridor (five relay layers of
/// two siblings each under one sink layer) with DV routing, so the ARQ's
/// failover always has a genuine alternate hop to consult.
[[nodiscard]] ScenarioConfig corridor_scenario(std::uint64_t seed) {
  ScenarioConfig config = small_test_scenario();
  config.seed = seed;
  config.node_count = 10;
  config.deployment.kind = DeploymentKind::kLayeredColumn;
  config.deployment.width_m = 400.0;
  config.deployment.length_m = 400.0;
  config.deployment.depth_m = 5'000.0;
  config.deployment.layer_spacing_m = 1'000.0;
  config.deployment.jitter_m = 50.0;
  config.enable_mobility = false;
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.sim_time = Duration::seconds(1'200);
  config.traffic.offered_load_kbps = 0.3;
  config.mac_config.max_retries = 2;
  config.mac_config.dead_neighbor_threshold = 3;
  return config;
}

[[nodiscard]] ScenarioConfig with_arq(ScenarioConfig config) {
  config.reliability.max_retries = 3;
  config.reliability.queue_limit = 16;
  return config;
}

/// Mean series over `replications` seeded runs, each with a hard-fail
/// auditor attached (custody_retry_bound comes from the scenario, so the
/// duplicate-delivery / retry-bound checks arm exactly when the ARQ is
/// on). Throws on an invariant violation.
Series mean_series(ScenarioConfig config, unsigned replications) {
  Series s;
  const std::uint64_t base_seed = config.seed;
  for (unsigned k = 0; k < replications; ++k) {
    config.seed = base_seed + k;
    InvariantAuditor::Config audit = auditor_config_for(config);
    audit.hard_fail = true;
    InvariantAuditor auditor{audit};
    config.trace = &auditor;
    const RunStats stats = run_scenario(config);
    s.delivery += stats.e2e_delivery_ratio;
    s.e2e_latency_s += stats.mean_e2e_latency_s;
    s.retransmissions += static_cast<double>(stats.e2e_retransmissions);
    s.failovers += static_cast<double>(stats.e2e_failovers);
    s.dead_letters += static_cast<double>(stats.e2e_dead_letter_exhausted +
                                          stats.e2e_dead_letter_overflow +
                                          stats.e2e_dead_letter_no_route);
    s.duplicates_suppressed += static_cast<double>(stats.e2e_duplicates_suppressed);
    s.queue_highwater += static_cast<double>(stats.relay_queue_highwater);
  }
  const auto n = static_cast<double>(replications);
  s.delivery /= n;
  s.e2e_latency_s /= n;
  s.retransmissions /= n;
  s.failovers /= n;
  s.dead_letters /= n;
  s.duplicates_suppressed /= n;
  s.queue_highwater /= n;
  return s;
}

[[nodiscard]] std::uint64_t digest_with_shards(ScenarioConfig config, unsigned shards) {
  HashTrace trace;
  config.trace = &trace;
  config.shards = shards;
  (void)run_scenario(config);
  return trace.digest();
}

void print_rows(const std::string& label, const std::vector<double>& xs,
                const std::vector<Series>& arq, const std::vector<Series>& noarq) {
  std::cout << label << "\n  x        arq_dlv  noarq_dlv  rtx     fover   deadltr  dup  qhw\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::cout << "  " << xs[i] << "\t" << arq[i].delivery << "\t" << noarq[i].delivery
              << "\t" << arq[i].retransmissions << "\t" << arq[i].failovers << "\t"
              << arq[i].dead_letters << "\t" << arq[i].duplicates_suppressed << "\t"
              << arq[i].queue_highwater << "\n";
  }
  std::cout << "\n";
}

void write_series(JsonWriter& json, const std::string& key, const std::vector<Series>& rows) {
  const std::vector<std::pair<std::string, double Series::*>> metrics{
      {"delivery_ratio", &Series::delivery},
      {"mean_e2e_latency_s", &Series::e2e_latency_s},
      {"retransmissions", &Series::retransmissions},
      {"failovers", &Series::failovers},
      {"dead_letters", &Series::dead_letters},
      {"duplicates_suppressed", &Series::duplicates_suppressed},
      {"queue_highwater", &Series::queue_highwater},
  };
  json.key(key).begin_object();
  for (const auto& [metric, member] : metrics) {
    json.key(metric).begin_array();
    for (const Series& s : rows) json.value(s.*member);
    json.end_array();
  }
  json.end_object();
}

}  // namespace

int main() {
  using namespace aquamac;
  bench::print_header("Hop-by-hop reliability degradation",
                      "custody ARQ vs plain relay under burst loss (not a paper figure)");

  const bool fast = [] {
    const char* env = std::getenv("AQUAMAC_FAST");
    return env != nullptr && env[0] == '1';
  }();
  const unsigned reps = fast ? 2 : std::max(4u, bench::replications(3));

  // Monotonicity tolerance: adjacent sweep points may invert by up to
  // this much from replication noise without failing the gate.
  const double kEps = 0.02;

  std::vector<Series> loss_arq, loss_noarq;
  std::vector<Series> storm_arq, storm_noarq;
  std::uint64_t digest1 = 0, digest2 = 0;
  try {
    std::cout << "GE loss sweep, corridor N=10 (replications " << reps << ")\n";
    for (const double p_bad : kGeSweep) {
      ScenarioConfig base = corridor_scenario(7);
      base.fault.ge_p_bad = p_bad;
      base.fault.ge_loss_bad = 0.9;
      loss_arq.push_back(mean_series(with_arq(base), reps));
      loss_noarq.push_back(mean_series(base, reps));
    }
    print_rows("loss sweep", kGeSweep, loss_arq, loss_noarq);

    std::cout << "outage + storm plan, corridor N=10 (replications " << reps << ")\n";
    {
      ScenarioConfig base = corridor_scenario(13);
      base.fault.outage_rate_per_hour = 30.0;
      base.fault.outage_mean_duration = Duration::seconds(45);
      base.fault.storm_rate_per_hour = 6.0;
      base.fault.storm_mean_duration = Duration::seconds(60);
      base.fault.storm_loss_prob = 0.8;
      storm_arq.push_back(mean_series(with_arq(base), reps));
      storm_noarq.push_back(mean_series(base, reps));
    }
    print_rows("outage+storm", {0.0}, storm_arq, storm_noarq);

    // Shard invariance at a representative lossy point: backoff timers
    // live on the node's own lane, so the digest must not move.
    ScenarioConfig rep_point = with_arq(corridor_scenario(7));
    rep_point.fault.ge_p_bad = 0.15;
    rep_point.fault.ge_loss_bad = 0.9;
    digest1 = digest_with_shards(rep_point, 1);
    digest2 = digest_with_shards(rep_point, 2);
  } catch (const std::exception& e) {
    std::cerr << "ERROR: auditor violation: " << e.what() << "\n";
    return 1;
  }

  bool monotone_ok = true;
  for (std::size_t i = 1; i < loss_arq.size(); ++i) {
    if (loss_arq[i].delivery > loss_arq[i - 1].delivery + kEps) {
      monotone_ok = false;
      std::cerr << "ERROR: ARQ delivery rises " << loss_arq[i - 1].delivery << " -> "
                << loss_arq[i].delivery << " between loss points " << kGeSweep[i - 1]
                << " and " << kGeSweep[i] << "\n";
    }
  }
  bool beats_baseline = true;
  for (std::size_t i = 0; i < kGeSweep.size(); ++i) {
    if (kGeSweep[i] == 0.0) continue;
    if (loss_arq[i].delivery <= loss_noarq[i].delivery) {
      beats_baseline = false;
      std::cerr << "ERROR: ARQ delivery " << loss_arq[i].delivery << " not above no-ARQ "
                << loss_noarq[i].delivery << " at loss point " << kGeSweep[i] << "\n";
    }
  }
  const bool shard_ok = digest1 == digest2 && digest1 != HashTrace{}.digest();
  if (!shard_ok) {
    std::cerr << "ERROR: ARQ trace digest differs across shard counts (" << digest1
              << " vs " << digest2 << ")\n";
  }
  std::cout << "gates: monotone " << (monotone_ok ? "ok" : "FAIL") << ", arq>noarq "
            << (beats_baseline ? "ok" : "FAIL") << ", shard-invariant "
            << (shard_ok ? "ok" : "FAIL") << "\n";

  if (const char* off = std::getenv("AQUAMAC_NO_BENCH_JSON");
      off == nullptr || off[0] != '1') {
    const std::string path = bench::bench_output_dir() + "/BENCH_reliability.json";
    std::ofstream os{path};
    if (!os) {
      std::cerr << "warning: cannot open " << path << " for writing\n";
    } else {
      JsonWriter json{os};
      json.begin_object();
      json.key("bench").value("reliability");
      json.key("schema").value("aquamac-bench-reliability-v1");
      json.key("replications").value(static_cast<double>(reps));
      json.key("loss").begin_object();
      json.key("xs").begin_array();
      for (const double x : kGeSweep) json.value(x);
      json.end_array();
      json.key("monotone_ok").value(monotone_ok ? 1.0 : 0.0);
      json.key("beats_baseline_ok").value(beats_baseline ? 1.0 : 0.0);
      write_series(json, "arq", loss_arq);
      write_series(json, "noarq", loss_noarq);
      json.end_object();
      json.key("storm").begin_object();
      write_series(json, "arq", storm_arq);
      write_series(json, "noarq", storm_noarq);
      json.end_object();
      json.key("shard_invariant").value(shard_ok ? 1.0 : 0.0);
      json.end_object();
      os << "\n";
      std::cout << "[bench json] wrote " << path << "\n";
    }
  }

  return monotone_ok && beats_baseline && shard_ok ? 0 : 1;
}

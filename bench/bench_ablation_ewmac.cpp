// Ablation bench for EW-MAC's design choices (DESIGN.md §3):
//  1. enable_extra off  -> EW-MAC degenerates to a per-pair-delay slotted
//     handshake; quantifies how much the extra phase buys.
//  2. enable_priority off -> pure-random rp; quantifies the fairness
//     mechanism's effect on throughput/latency.
//  3. Reception model: deterministic Eq.-1 vs SINR/PER physics — the
//     ordering among protocols should be shape-invariant.
//  4. Propagation: straight-line vs BellhopLite ray bending.

#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

using namespace aquamac;

MeanStats run_variant(ScenarioConfig config) {
  return mean_of(run_replicated(config, bench::replications()));
}

void add_row(Table& table, const std::string& label, const MeanStats& m) {
  table.add_row({label, format_double(m.throughput_kbps, 4), format_double(m.delivery_ratio, 3),
                 format_double(m.mean_power_mw, 2), format_double(m.mean_latency_s, 2),
                 format_double(m.extra_successes, 1)});
}

}  // namespace

int main() {
  using namespace aquamac;
  bench::print_header("EW-MAC ablations", "design-choice sensitivity (not a paper figure)");

  ScenarioConfig base = paper_default_scenario();
  base.traffic.offered_load_kbps = 0.8;

  Table table{{"variant", "tput kbps", "delivery", "power mW", "latency s", "extra ok"}};

  add_row(table, "EW-MAC (full)", run_variant(base));

  {
    ScenarioConfig config = base;
    config.mac_config.enable_extra = false;
    add_row(table, "no extra phase", run_variant(config));
  }
  {
    ScenarioConfig config = base;
    config.mac_config.enable_priority = false;
    add_row(table, "no wait priority", run_variant(config));
  }
  {
    ScenarioConfig config = base;
    config.reception = ReceptionKind::kSinrPer;
    add_row(table, "SINR/PER physics", run_variant(config));
  }
  {
    ScenarioConfig config = base;
    config.propagation = PropagationKind::kBellhopLite;
    add_row(table, "BellhopLite rays", run_variant(config));
  }
  {
    ScenarioConfig config = base;
    config.clock_offset_stddev_s = 0.05;  // 50 ms skew on ~1 s slots
    add_row(table, "50 ms clock skew", run_variant(config));
  }
  {
    ScenarioConfig config = base;
    config.reception = ReceptionKind::kSinrPer;
    config.channel.mode = DeliveryMode::kLevelBased;
    config.channel.enable_surface_echo = true;
    add_row(table, "SINR + surface echo", run_variant(config));
  }
  {
    ScenarioConfig config = base;
    config.mac = MacKind::kSFama;
    add_row(table, "S-FAMA reference", run_variant(config));
  }

  table.print(std::cout);

  std::cout << "\nReading: the extra phase is the throughput lever; disabling it pulls\n"
               "EW-MAC toward the S-FAMA reference. The physics variants (SINR/PER,\n"
               "ray-bent propagation) preserve the EW-MAC > S-FAMA ordering — the\n"
               "result does not depend on the abstracted physics. The failure knobs\n"
               "show the §5 caveats concretely: 50 ms clock skew (5% of a slot)\n"
               "erodes but does not break the protocol, while a strong surface echo\n"
               "under full SINR physics (Lloyd-mirror self-interference) is harsher\n"
               "than any MAC can fix — the regime where slotted protocols need\n"
               "physical-layer help.\n";
  return 0;
}

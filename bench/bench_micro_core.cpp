// Micro-benchmarks of the simulator substrate (google-benchmark):
// event-queue throughput, channel math, full-stack simulated-seconds/s.

#include <benchmark/benchmark.h>

#include "channel/absorption.hpp"
#include "channel/noise.hpp"
#include "channel/propagation.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace aquamac;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // aquamac-lint: allow(rng-root) -- bench-local stream; feeds no simulation run.
  Rng rng{7};
  for (auto _ : state) {
    EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      queue.push(Time::from_ns(static_cast<std::int64_t>(rng.below(1'000'000'000))), [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(10'000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    std::vector<EventHandle> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(queue.push(Time::from_ns(static_cast<std::int64_t>(i)), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) queue.cancel(handles[i]);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(10'000);

void BM_ThorpAbsorption(benchmark::State& state) {
  double f = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(thorp_absorption_db_per_km(f));
    f = f < 50.0 ? f + 0.01 : 0.5;
  }
}
BENCHMARK(BM_ThorpAbsorption);

void BM_NoisePsd(benchmark::State& state) {
  const NoiseParams params{.shipping = 0.5, .wind_mps = 5.0};
  double f = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ambient_noise_psd_db(f, params));
    f = f < 50.0 ? f + 0.01 : 1.0;
  }
}
BENCHMARK(BM_NoisePsd);

void BM_BellhopLiteEigenray(benchmark::State& state) {
  const BellhopLitePropagation prop{std::make_shared<LinearProfile>(1'500.0, 0.017)};
  // aquamac-lint: allow(rng-root) -- bench-local stream; feeds no simulation run.
  Rng rng{11};
  for (auto _ : state) {
    const Vec3 a{rng.uniform(0, 4'000), rng.uniform(0, 4'000), rng.uniform(0, 4'000)};
    const Vec3 b{rng.uniform(0, 4'000), rng.uniform(0, 4'000), rng.uniform(0, 4'000)};
    benchmark::DoNotOptimize(prop.compute(a, b, 10.0));
  }
}
BENCHMARK(BM_BellhopLiteEigenray);

void BM_FullStackSimulation(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig config = small_test_scenario();
    config.mac = MacKind::kEwMac;
    benchmark::DoNotOptimize(run_scenario(config));
  }
  // 65 simulated seconds per iteration (60 s traffic + 5 s hello).
  state.counters["sim_s_per_s"] =
      benchmark::Counter(65.0 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullStackSimulation)->Unit(benchmark::kMillisecond);

// A/B for the pairwise propagation cache on a static deployment: range(0)
// toggles ChannelConfig::cache_paths. Results are bit-identical either
// way; only the per-run wall time should differ.
void BM_FullStackPathCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  for (auto _ : state) {
    ScenarioConfig config = small_test_scenario();
    config.mac = MacKind::kEwMac;
    config.channel.cache_paths = cached;
    benchmark::DoNotOptimize(run_scenario(config));
  }
  state.counters["sim_s_per_s"] =
      benchmark::Counter(65.0 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullStackPathCache)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cache")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

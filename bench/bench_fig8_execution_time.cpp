// Figure 8: execution time (s) vs offered load — the time needed to
// deliver a fixed batch of packets whose size corresponds to the offered
// load over the 300 s window. Paper's shape: indistinguishable below ~20
// packets/300 s (load ~0.136), then S-FAMA > ROPA > CS-MAC > EW-MAC
// (larger = slower).

#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace aquamac;
  bench::print_header("Figure 8 — execution time vs offered load", "Hung & Luo, Fig. 8");

  ScenarioConfig base = paper_default_scenario();
  base.traffic.mode = TrafficMode::kBatch;
  // Batch runs are open-ended: allow plenty of horizon so slow protocols
  // still finish and report their true completion time.
  base.sim_time = Duration::seconds(1'200);

  const double xs[] = {0.01, 0.2, 0.4, 0.6, 0.8, 1.0};

  const SweepResult sweep = run_sweep(
      base, paper_comparison_set(), xs,
      [](ScenarioConfig& config, double load) {
        // Offered load in kbps over the 300 s window at 2048-bit packets:
        // load * 1000 * 300 / 2048 packets (paper: 20 packets ~ 0.136).
        const double packets = std::max(1.0, std::round(load * 1'000.0 * 300.0 / 2'048.0));
        config.traffic.batch_packets = static_cast<std::uint32_t>(packets);
      },
      bench::replications());

  sweep_table(sweep, "offered kbps",
              [](const MeanStats& m) { return m.execution_time_s; }, 1)
      .print(std::cout);

  bench::emit_bench_json(
      "fig8_execution_time", sweep,
      {{"execution_time_s", [](const MeanStats& m) { return m.execution_time_s; }}});

  std::cout << "\nShape checks (paper Fig. 8): negligible differences at the lowest load;\n"
               "EW-MAC completes fastest and S-FAMA slowest as load grows.\n";
  return 0;
}

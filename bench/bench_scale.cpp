// Spatial-index scaling: runs the density-preserving grid3d scale
// scenario at N in {50, 200, 1000, 2000} with the channel's spatial
// receiver index on and off, asserts the two event streams are
// bit-identical (HashTrace digest), and records the wall-clock speedup
// in BENCH_scale.json. This is the perf ledger for the channel's
// receiver lookup: track speedup_n2000 across commits.
//
//   AQUAMAC_FAST=1 ./bench_scale      # N <= 200 only (smoke)
//   AQUAMAC_SCALE_MAC=sfama ./bench_scale

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "stats/trace.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace aquamac;

struct Cell {
  std::size_t nodes{0};
  double indexed_wall_s{0.0};
  double brute_wall_s{0.0};
  std::uint64_t indexed_digest{0};
  std::uint64_t brute_digest{0};
  [[nodiscard]] double speedup() const {
    return indexed_wall_s > 0.0 ? brute_wall_s / indexed_wall_s : 0.0;
  }
  [[nodiscard]] bool identical() const { return indexed_digest == brute_digest; }
};

/// One full simulation with the trace digested; returns (wall_s, digest).
std::pair<double, std::uint64_t> timed_run(ScenarioConfig config) {
  HashTrace hash;
  config.trace = &hash;
  const auto begin = std::chrono::steady_clock::now();
  (void)run_scenario(config);
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - begin;
  return {wall.count(), hash.digest()};
}

}  // namespace

int main() {
  using namespace aquamac;
  bench::print_header("Spatial-index scaling",
                      "channel receiver lookup at scale (not a paper figure)");

  MacKind mac = MacKind::kEwMac;
  if (const char* env = std::getenv("AQUAMAC_SCALE_MAC")) {
    if (std::string{env} == "sfama") mac = MacKind::kSFama;
    if (std::string{env} == "macau") mac = MacKind::kMacaU;
  }

  std::vector<std::size_t> sizes{50, 200, 1000, 2000};
  if (const char* fast = std::getenv("AQUAMAC_FAST"); fast != nullptr && fast[0] == '1') {
    sizes = {50, 200};
  }

  std::cout << "mac " << to_string(mac) << ", grid3d, 60 s horizon, mobility on\n";
  std::cout << "     N   index-on s  index-off s   speedup  bit-identical\n";

  std::vector<Cell> cells;
  bool all_identical = true;
  for (const std::size_t n : sizes) {
    ScenarioConfig config = grid3d_scenario(n, /*seed=*/7);
    config.mac = mac;

    Cell cell;
    cell.nodes = n;
    config.channel.use_spatial_index = true;
    std::tie(cell.indexed_wall_s, cell.indexed_digest) = timed_run(config);
    config.channel.use_spatial_index = false;
    std::tie(cell.brute_wall_s, cell.brute_digest) = timed_run(config);

    all_identical = all_identical && cell.identical();
    std::cout.width(6);
    std::cout << n << "   " << cell.indexed_wall_s << "      " << cell.brute_wall_s
              << "      " << cell.speedup() << "x      "
              << (cell.identical() ? "yes" : "NO") << "\n";
    cells.push_back(cell);
  }

  const Cell& largest = cells.back();
  std::cout << "\nspeedup at N=" << largest.nodes << ": " << largest.speedup()
            << "x    all digests identical: " << (all_identical ? "yes" : "NO") << "\n";

  if (const char* off = std::getenv("AQUAMAC_NO_BENCH_JSON");
      off == nullptr || off[0] != '1') {
    const std::string path = bench::bench_output_dir() + "/BENCH_scale.json";
    std::ofstream os{path};
    if (!os) {
      std::cerr << "warning: cannot open " << path << " for writing\n";
    } else {
      JsonWriter json{os};
      json.begin_object();
      json.key("bench").value("scale");
      json.key("schema").value("aquamac-bench-v1");
      json.key("mac").value(to_string(mac));
      json.key("bit_identical").value(all_identical ? 1.0 : 0.0);
      json.key("speedup_largest_n").value(largest.speedup());
      json.key("xs").begin_array();
      for (const Cell& cell : cells) json.value(static_cast<double>(cell.nodes));
      json.end_array();
      // Series nest metric -> protocol -> values like every other bench,
      // so scripts/plot_results.py can plot them unchanged.
      const std::string mac_name{to_string(mac)};
      json.key("series").begin_object();
      json.key("indexed_wall_s").begin_object();
      json.key(mac_name).begin_array();
      for (const Cell& cell : cells) json.value(cell.indexed_wall_s);
      json.end_array();
      json.end_object();
      json.key("brute_wall_s").begin_object();
      json.key(mac_name).begin_array();
      for (const Cell& cell : cells) json.value(cell.brute_wall_s);
      json.end_array();
      json.end_object();
      json.key("speedup").begin_object();
      json.key(mac_name).begin_array();
      for (const Cell& cell : cells) json.value(cell.speedup());
      json.end_array();
      json.end_object();
      json.end_object();
      json.end_object();
      os << "\n";
      std::cout << "[bench json] wrote " << path << "\n";
    }
  }

  if (!all_identical) {
    std::cerr << "ERROR: spatial index changed the event stream\n";
    return 1;
  }
  return 0;
}

// aquamac-lint: allow-file(wall-clock) -- this bench's deliverable IS
// wall-clock speedup; determinism is separately digest-checked.
//
// Scaling ledger: runs the density-preserving grid3d scale scenario at
// N in {50, 200, 1000, 2000, 5000, 20000} and records, per N:
//
//   - spatial receiver index on vs off (brute force), with a HashTrace
//     digest oracle asserting the index never changes the event stream
//     (the brute run is skipped at N >= 5000, where it is pure O(N^2)
//     overhead — the skip is reported, not silent);
//   - serial vs sharded conservative-PDES execution (--shards 8), with
//     the same digest oracle asserting bit-identity, plus the wall-clock
//     speedup (`sharded_speedup`). The JSON carries a `cores` field:
//     on a single-core host the speedup is purely algorithmic (K-times
//     smaller heaps), not parallel, and should be read against it;
//   - a per-phase breakdown of the serial run (channel delivery vs MAC
//     processing) via the PhaseHook seam (bench_util.hpp PhaseProfiler).
//
// Track speedup_largest_n / sharded_speedup_largest_n across commits.
//
//   AQUAMAC_FAST=1 ./bench_scale      # N <= 200 only (smoke)
//   AQUAMAC_SCALE_MAC=sfama ./bench_scale

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "net/network.hpp"
#include "stats/trace.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace aquamac;

constexpr unsigned kShards = 8;
constexpr std::size_t kBruteMaxNodes = 2'000;  ///< brute force skipped above

struct Cell {
  std::size_t nodes{0};
  double indexed_wall_s{0.0};
  double brute_wall_s{0.0};
  double sharded_wall_s{0.0};
  std::uint64_t indexed_digest{0};
  std::uint64_t brute_digest{0};
  std::uint64_t sharded_digest{0};
  double channel_phase_s{0.0};
  double mac_phase_s{0.0};
  bool brute_run{false};

  [[nodiscard]] double index_speedup() const {
    return brute_run && indexed_wall_s > 0.0 ? brute_wall_s / indexed_wall_s : 0.0;
  }
  [[nodiscard]] double sharded_speedup() const {
    return sharded_wall_s > 0.0 ? indexed_wall_s / sharded_wall_s : 0.0;
  }
  [[nodiscard]] bool index_identical() const {
    return !brute_run || indexed_digest == brute_digest;
  }
  [[nodiscard]] bool sharded_identical() const { return sharded_digest == indexed_digest; }
};

struct RunResult {
  double wall_s{0.0};
  std::uint64_t digest{0};
};

/// One full simulation with the trace digested; an optional profiler
/// (serial runs only) is installed on the channel and every modem.
RunResult timed_run(ScenarioConfig config, unsigned shards, bench::PhaseProfiler* profiler) {
  HashTrace hash;
  config.trace = &hash;
  config.shards = shards;
  const auto begin = std::chrono::steady_clock::now();
  Simulator sim{config.logger};
  Network network{sim, config};
  if (profiler != nullptr) {
    network.channel().set_phase_hook(profiler);
    for (std::size_t i = 0; i < config.node_count; ++i) {
      network.node(static_cast<NodeId>(i)).modem().set_phase_hook(profiler);
    }
  }
  (void)network.run();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - begin;
  return {wall.count(), hash.digest()};
}

}  // namespace

int main() {
  using namespace aquamac;
  bench::print_header("Scaling ledger: spatial index + sharded PDES",
                      "channel lookup and event-loop scaling (not a paper figure)");

  MacKind mac = MacKind::kEwMac;
  if (const char* env = std::getenv("AQUAMAC_SCALE_MAC")) {
    if (std::string{env} == "sfama") mac = MacKind::kSFama;
    if (std::string{env} == "macau") mac = MacKind::kMacaU;
  }

  std::vector<std::size_t> sizes{50, 200, 1000, 2000, 5'000, 20'000};
  if (const char* fast = std::getenv("AQUAMAC_FAST"); fast != nullptr && fast[0] == '1') {
    sizes = {50, 200};
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "mac " << to_string(mac) << ", grid3d, 60 s horizon, mobility on, "
            << cores << " core(s)\n";
  std::cout << "     N     serial s  shards" << kShards << " s   shard-x   index-off s   index-x"
            << "   chan s    mac s   identical\n";

  std::vector<Cell> cells;
  bool all_identical = true;
  for (const std::size_t n : sizes) {
    ScenarioConfig config = grid3d_scenario(n, /*seed=*/7);
    config.mac = mac;
    config.channel.use_spatial_index = true;

    Cell cell;
    cell.nodes = n;

    bench::PhaseProfiler profiler;
    const RunResult serial = timed_run(config, /*shards=*/1, &profiler);
    cell.indexed_wall_s = serial.wall_s;
    cell.indexed_digest = serial.digest;
    cell.channel_phase_s = profiler.seconds(SimPhase::kChannelDelivery);
    cell.mac_phase_s = profiler.seconds(SimPhase::kMacProcessing);

    const RunResult sharded = timed_run(config, kShards, nullptr);
    cell.sharded_wall_s = sharded.wall_s;
    cell.sharded_digest = sharded.digest;

    cell.brute_run = n <= kBruteMaxNodes;
    if (cell.brute_run) {
      ScenarioConfig brute = config;
      brute.channel.use_spatial_index = false;
      const RunResult result = timed_run(brute, /*shards=*/1, nullptr);
      cell.brute_wall_s = result.wall_s;
      cell.brute_digest = result.digest;
    }

    const bool identical = cell.index_identical() && cell.sharded_identical();
    all_identical = all_identical && identical;
    std::cout.width(6);
    std::cout << n << "   " << cell.indexed_wall_s << "   " << cell.sharded_wall_s << "   "
              << cell.sharded_speedup() << "x   ";
    if (cell.brute_run) {
      std::cout << cell.brute_wall_s << "   " << cell.index_speedup() << "x   ";
    } else {
      std::cout << "(skipped: O(N^2) above N=" << kBruteMaxNodes << ")   ";
    }
    std::cout << cell.channel_phase_s << "   " << cell.mac_phase_s << "   "
              << (identical ? "yes" : "NO") << "\n";
    cells.push_back(cell);
  }

  const Cell& largest = cells.back();
  // Index speedup is reported at the largest N whose brute run existed.
  double index_speedup_largest = 0.0;
  for (const Cell& cell : cells) {
    if (cell.brute_run) index_speedup_largest = cell.index_speedup();
  }
  std::cout << "\nindex speedup at largest brute N: " << index_speedup_largest
            << "x    sharded speedup at N=" << largest.nodes << ": "
            << largest.sharded_speedup() << "x    all digests identical: "
            << (all_identical ? "yes" : "NO") << "\n";

  if (const char* off = std::getenv("AQUAMAC_NO_BENCH_JSON");
      off == nullptr || off[0] != '1') {
    const std::string path = bench::bench_output_dir() + "/BENCH_scale.json";
    std::ofstream os{path};
    if (!os) {
      std::cerr << "warning: cannot open " << path << " for writing\n";
    } else {
      JsonWriter json{os};
      json.begin_object();
      json.key("bench").value("scale");
      json.key("schema").value("aquamac-bench-v1");
      json.key("mac").value(to_string(mac));
      json.key("cores").value(static_cast<double>(cores));
      json.key("shards").value(static_cast<double>(kShards));
      json.key("bit_identical").value(all_identical ? 1.0 : 0.0);
      json.key("speedup_largest_n").value(index_speedup_largest);
      json.key("sharded_speedup_largest_n").value(largest.sharded_speedup());
      json.key("xs").begin_array();
      for (const Cell& cell : cells) json.value(static_cast<double>(cell.nodes));
      json.end_array();
      // Series nest metric -> protocol -> values like every other bench,
      // so scripts/plot_results.py can plot them unchanged. Skipped brute
      // cells serialize as 0.0 (see brute_run/kBruteMaxNodes above).
      const std::string mac_name{to_string(mac)};
      const auto series = [&json, &cells, &mac_name](const std::string& name, auto value) {
        json.key(name).begin_object();
        json.key(mac_name).begin_array();
        for (const Cell& cell : cells) json.value(value(cell));
        json.end_array();
        json.end_object();
      };
      json.key("series").begin_object();
      series("indexed_wall_s", [](const Cell& c) { return c.indexed_wall_s; });
      series("brute_wall_s", [](const Cell& c) { return c.brute_wall_s; });
      series("speedup", [](const Cell& c) { return c.index_speedup(); });
      series("sharded_wall_s", [](const Cell& c) { return c.sharded_wall_s; });
      series("sharded_speedup", [](const Cell& c) { return c.sharded_speedup(); });
      series("channel_phase_s", [](const Cell& c) { return c.channel_phase_s; });
      series("mac_phase_s", [](const Cell& c) { return c.mac_phase_s; });
      json.end_object();
      json.end_object();
      os << "\n";
      std::cout << "[bench json] wrote " << path << "\n";
    }
  }

  if (!all_identical) {
    std::cerr << "ERROR: an execution mode changed the event stream\n";
    return 1;
  }
  return 0;
}

// Figure 7: throughput vs number of sensors (60-140) at 0.8 kbps offered
// load, fixed region. Paper's shape: S-FAMA is flat (it always reserves
// tau_max, so density does not matter); the reuse protocols lose their
// advantage as density rises, because shorter neighbor delays shrink the
// exploitable waiting windows — in the limit they converge toward S-FAMA.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace aquamac;
  bench::print_header("Figure 7 — throughput vs sensor density", "Hung & Luo, Fig. 7");

  ScenarioConfig base = paper_default_scenario();
  base.traffic.offered_load_kbps = 0.8;
  const double xs[] = {60, 80, 100, 120, 140};

  const SweepResult sweep = run_sweep(
      base, paper_comparison_set(), xs,
      [](ScenarioConfig& config, double nodes) {
        config.node_count = static_cast<std::size_t>(nodes);
      },
      bench::replications());

  sweep_table(sweep, "nodes", [](const MeanStats& m) { return m.throughput_kbps; })
      .print(std::cout);

  bench::emit_bench_json(
      "fig7_throughput_density", sweep,
      {{"throughput_kbps", [](const MeanStats& m) { return m.throughput_kbps; }}});

  std::cout << "\nShape checks (paper Fig. 7): S-FAMA roughly flat across density; the\n"
               "gap between the reuse protocols and S-FAMA narrows as density grows.\n";
  return 0;
}

// aquamac-lint: allow-file(wall-clock) -- this bench's deliverable IS
// wall-clock speedup; determinism is separately digest-checked.
//
// Parallel harness scaling: runs the same 3-protocol x 4-load x 5-seed
// sweep with jobs=1 (the serial code path) and jobs=N (default: all
// cores), verifies the results are bit-identical, and records the
// wall-clock speedup in BENCH_parallel_scaling.json. A second section
// scales the *intra-run* axis instead: one grid3d run at shards K in
// {1, 2, 4, 8} (conservative PDES), digest-checked against serial.
// This is the perf ledger for both parallelism layers: track
// runs_per_sec, speedup_vs_jobs1 and shard_speedup_k8 across commits.
//
//   AQUAMAC_JOBS=4 ./bench_parallel_scaling      # pin the worker count
//   AQUAMAC_SCALE=paper ./bench_parallel_scaling # full-size scenario

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "stats/trace.hpp"

namespace {

using namespace aquamac;

bool identical(const RunStats& a, const RunStats& b) {
  return a.elapsed_s == b.elapsed_s && a.traffic_duration_s == b.traffic_duration_s &&
         a.node_count == b.node_count && a.packets_offered == b.packets_offered &&
         a.packets_delivered == b.packets_delivered &&
         a.packets_dropped == b.packets_dropped && a.bits_offered == b.bits_offered &&
         a.bits_delivered == b.bits_delivered && a.throughput_kbps == b.throughput_kbps &&
         a.offered_load_kbps == b.offered_load_kbps &&
         a.delivery_ratio == b.delivery_ratio && a.total_energy_j == b.total_energy_j &&
         a.mean_power_mw == b.mean_power_mw && a.control_bits == b.control_bits &&
         a.maintenance_bits == b.maintenance_bits &&
         a.retransmitted_bits == b.retransmitted_bits &&
         a.piggyback_bits == b.piggyback_bits && a.total_bits_sent == b.total_bits_sent &&
         a.mean_latency_s == b.mean_latency_s && a.execution_time_s == b.execution_time_s &&
         a.handshake_attempts == b.handshake_attempts &&
         a.handshake_successes == b.handshake_successes &&
         a.contention_losses == b.contention_losses && a.extra_attempts == b.extra_attempts &&
         a.extra_successes == b.extra_successes && a.rx_collisions == b.rx_collisions &&
         a.fairness_index == b.fairness_index && a.e2e_originated == b.e2e_originated &&
         a.e2e_arrived_at_sink == b.e2e_arrived_at_sink &&
         a.e2e_delivery_ratio == b.e2e_delivery_ratio && a.mean_hops == b.mean_hops &&
         a.mean_e2e_latency_s == b.mean_e2e_latency_s;
}

}  // namespace

int main() {
  using namespace aquamac;
  bench::print_header("Parallel sweep scaling",
                      "harness throughput (not a paper figure)");

  ScenarioConfig base = small_test_scenario();
  if (const char* scale = std::getenv("AQUAMAC_SCALE");
      scale != nullptr && std::string{scale} == "paper") {
    base = paper_default_scenario();
  }

  const MacKind protocols[] = {MacKind::kEwMac, MacKind::kSFama, MacKind::kCsMac};
  const double xs[] = {0.2, 0.4, 0.6, 0.8};
  const unsigned reps = bench::replications(5);
  const auto setter = [](ScenarioConfig& config, double load) {
    config.traffic.offered_load_kbps = load;
  };

  std::cout << "sweep: 3 protocols x " << std::size(xs) << " loads x " << reps
            << " seeds = " << 3 * std::size(xs) * reps << " runs\n\n";

  base.jobs = 1;
  const SweepResult serial = run_sweep(base, protocols, xs, setter, reps);
  std::cout << "jobs=1 : " << serial.wall_s << " s  ("
            << static_cast<double>(serial.total_runs()) / serial.wall_s << " runs/s)\n";

  base.jobs = 0;  // auto: AQUAMAC_JOBS or hardware_concurrency
  const SweepResult parallel = run_sweep(base, protocols, xs, setter, reps);
  std::cout << "jobs=" << parallel.jobs_used << " : " << parallel.wall_s << " s  ("
            << static_cast<double>(parallel.total_runs()) / parallel.wall_s
            << " runs/s)\n";

  // The determinism contract, checked on every raw run of every cell.
  std::size_t mismatches = 0;
  for (MacKind kind : serial.protocols) {
    for (std::size_t i = 0; i < serial.xs.size(); ++i) {
      for (std::size_t k = 0; k < reps; ++k) {
        if (!identical(serial.runs_at(kind, i)[k], parallel.runs_at(kind, i)[k])) {
          ++mismatches;
        }
      }
    }
  }
  const double speedup = parallel.wall_s > 0.0 ? serial.wall_s / parallel.wall_s : 0.0;
  std::cout << "speedup: " << speedup << "x    bit-identical: "
            << (mismatches == 0 ? "yes" : "NO") << "\n";

  // --- intra-run shard scaling (conservative PDES) --------------------
  // One large run, same scenario at every K; every sharded digest must
  // equal the K=1 digest (the engine's bit-identity contract).
  const bool fast = [] {
    const char* env = std::getenv("AQUAMAC_FAST");
    return env != nullptr && env[0] == '1';
  }();
  ScenarioConfig shard_base = grid3d_scenario(fast ? 200 : 2'000, /*seed=*/3);
  shard_base.sim_time = Duration::seconds(fast ? 10 : 30);
  std::cout << "\nintra-run sharding: grid3d N=" << shard_base.node_count << ", "
            << shard_base.sim_time.to_seconds() << " s horizon\n";

  const unsigned shard_counts[] = {1, 2, 4, 8};
  std::vector<double> shard_wall_s;
  std::uint64_t serial_digest = 0;
  std::size_t shard_mismatches = 0;
  for (const unsigned shards : shard_counts) {
    ScenarioConfig config = shard_base;
    config.shards = shards;
    HashTrace hash;
    config.trace = &hash;
    const auto begin = std::chrono::steady_clock::now();
    (void)run_scenario(config);
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - begin;
    shard_wall_s.push_back(wall.count());
    if (shards == 1) {
      serial_digest = hash.digest();
    } else if (hash.digest() != serial_digest) {
      ++shard_mismatches;
    }
    std::cout << "shards=" << shards << " : " << wall.count() << " s  (digest "
              << (shards == 1 || hash.digest() == serial_digest ? "ok" : "MISMATCH")
              << ")\n";
  }
  const double shard_speedup =
      shard_wall_s.back() > 0.0 ? shard_wall_s.front() / shard_wall_s.back() : 0.0;
  std::cout << "shard speedup (K=8 vs serial): " << shard_speedup << "x    bit-identical: "
            << (shard_mismatches == 0 ? "yes" : "NO") << "\n";

  bench::emit_bench_json(
      "parallel_scaling", parallel,
      {{"throughput_kbps", [](const MeanStats& m) { return m.throughput_kbps; }}},
      {{"serial_wall_s", serial.wall_s},
       {"speedup_vs_jobs1", speedup},
       {"bit_identical", mismatches == 0 ? 1.0 : 0.0},
       {"shard_nodes", static_cast<double>(shard_base.node_count)},
       {"shard_wall_k1", shard_wall_s[0]},
       {"shard_wall_k2", shard_wall_s[1]},
       {"shard_wall_k4", shard_wall_s[2]},
       {"shard_wall_k8", shard_wall_s[3]},
       {"shard_speedup_k8", shard_speedup},
       {"shard_bit_identical", shard_mismatches == 0 ? 1.0 : 0.0}});

  if (mismatches != 0) {
    std::cerr << "ERROR: " << mismatches << " runs differ between jobs=1 and jobs="
              << parallel.jobs_used << "\n";
    return 1;
  }
  if (shard_mismatches != 0) {
    std::cerr << "ERROR: " << shard_mismatches
              << " sharded runs differ from the serial event stream\n";
    return 1;
  }
  return 0;
}

// aquamac-lint: repo-specific determinism & protocol-safety static analysis.
//
// The simulator's headline guarantees — bit-identical serial-vs-parallel
// traces, digest-equal spatial-index A/B, strict-no-op FaultPlan — are
// otherwise enforced only dynamically (TSan, digest oracles, the
// InvariantAuditor). A single stray std::random_device, wall-clock read,
// or hash-order-dependent unordered_map iteration can silently break
// reproducibility until a soak happens to catch it. This tool moves those
// guarantees left: it scans src/ at the lexical level (comments, strings
// and raw strings stripped; token positions preserved) and fails the
// build on any construct that can leak nondeterminism into the event
// stream.
//
// It is deliberately a dependency-free lexer pass rather than a libclang
// plugin: the CI container guarantees only a C++ toolchain, and every
// rule below is expressible over the token stream plus a tiny
// cross-file symbol table (names of unordered members / accessors). When
// a full LibTooling build of these rules lands, this file remains the
// portable fallback (the rule set and allowlist grammar are the contract;
// the engine is an implementation detail).
//
// Rules (ids are what allow() annotations name):
//   wall-clock      Nondeterminism sources banned in simulation code:
//                   std::rand/srand, std::random_device, the <chrono>
//                   clocks' now(), gettimeofday, clock_gettime, std::time,
//                   localtime/gmtime/mktime, timespec_get.
//   unordered-iter  Range-for iteration over std::unordered_map/set (or
//                   over any variable/accessor the symbol pass knows has
//                   such a type): iteration order is implementation-
//                   defined and leaks into schedules, traces and RNG
//                   draw order.
//   rng-discipline  Standard-library random engines/distributions (and
//                   #include <random>) banned: draws must go through the
//                   forked named-stream aquamac::Rng API, whose streams
//                   are specified exactly (see util/rng.hpp).
//   rng-root        A local `Rng x{...}` / `Rng x(...)` / `Rng x = ...`
//                   whose initializer does not go through .fork(...):
//                   only a run's designated root stream may be built from
//                   a raw seed; everything else must fork, so adding a
//                   consumer never perturbs existing draws.
//   raw-ns          In src/mac/ and src/sim/: integer-nanosecond
//                   arithmetic outside the Duration/Time types —
//                   arithmetic on .count_ns() results, or integer
//                   variables named *_ns. The strong time types are the
//                   single FP->integer boundary (util/time.hpp); raw ns
//                   math reintroduces silent unit and rounding bugs.
//
// Allowlist grammar (the ONLY sanctioned suppression mechanism; every
// use must carry a reason after `--`):
//   // aquamac-lint: allow(rule[,rule...]) -- reason
//       suppresses those rules on this line and the next code line.
//   // aquamac-lint: allow-file(rule[,rule...]) -- reason
//       suppresses those rules for the whole file.
// `aquamac_lint --list-allows` prints every active annotation so the
// allowlist is auditable in one command.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t line{0};  ///< 1-based
  std::size_t col{0};   ///< 1-based
  bool is_ident{false};
};

struct Allow {
  std::size_t line{0};      ///< annotation line (applies there + next code line)
  bool whole_file{false};
  std::vector<std::string> rules;
  std::string reason;
};

struct SourceFile {
  fs::path path;
  std::vector<std::string> raw_lines;
  std::vector<Token> tokens;          ///< comments/strings stripped
  std::vector<Allow> allows;
  bool in_time_domain{false};         ///< under a mac/ or sim/ directory
};

struct Finding {
  fs::path path;
  std::size_t line{0};
  std::size_t col{0};
  std::string rule;
  std::string message;
};

// Splits "a, b ,c" into trimmed names.
std::vector<std::string> split_rules(std::string_view list) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : list) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Parses `aquamac-lint: allow(...)` / `allow-file(...)` out of a comment.
void parse_allow(std::string_view comment, std::size_t line, std::vector<Allow>& allows) {
  const std::string_view kTag = "aquamac-lint:";
  const std::size_t tag = comment.find(kTag);
  if (tag == std::string_view::npos) return;
  std::string_view rest = comment.substr(tag + kTag.size());
  const bool whole_file = rest.find("allow-file(") != std::string_view::npos;
  const std::string_view kw = whole_file ? "allow-file(" : "allow(";
  const std::size_t open = rest.find(kw);
  if (open == std::string_view::npos) return;
  const std::size_t start = open + kw.size();
  const std::size_t close = rest.find(')', start);
  if (close == std::string_view::npos) return;
  Allow allow;
  allow.line = line;
  allow.whole_file = whole_file;
  allow.rules = split_rules(rest.substr(start, close - start));
  const std::size_t dash = rest.find("--", close);
  if (dash != std::string_view::npos) {
    std::string_view reason = rest.substr(dash + 2);
    while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.front()))) {
      reason.remove_prefix(1);
    }
    allow.reason = std::string(reason);
  }
  if (!allow.rules.empty()) allows.push_back(allow);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Lexes one translation unit: tokens with positions, comments routed to
// the allow parser, string/char literals reduced to a placeholder token.
void lex(SourceFile& file) {
  const std::vector<std::string>& lines = file.raw_lines;
  bool in_block_comment = false;
  std::string block_comment;  // accumulated for allow parsing
  std::size_t block_comment_line = 0;
  bool in_raw_string = false;
  std::string raw_delim;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    std::size_t i = 0;
    if (in_raw_string) {
      const std::size_t end = line.find(raw_delim);
      if (end == std::string::npos) continue;
      in_raw_string = false;
      i = end + raw_delim.size();
    }
    if (in_block_comment) {
      const std::size_t end = line.find("*/");
      if (end == std::string::npos) {
        block_comment += line;
        continue;
      }
      block_comment += line.substr(0, end);
      parse_allow(block_comment, block_comment_line, file.allows);
      in_block_comment = false;
      i = end + 2;
    }
    while (i < line.size()) {
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        parse_allow(line.substr(i + 2), li + 1, file.allows);
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        const std::size_t end = line.find("*/", i + 2);
        if (end == std::string::npos) {
          in_block_comment = true;
          block_comment = line.substr(i + 2);
          block_comment_line = li + 1;
          i = line.size();
        } else {
          parse_allow(line.substr(i + 2, end - i - 2), li + 1, file.allows);
          i = end + 2;
        }
        continue;
      }
      if (c == '"' || c == '\'') {
        // Raw string literal? R"delim( ... )delim" — may span lines.
        if (c == '"' && i > 0 && line[i - 1] == 'R') {
          const std::size_t open = line.find('(', i);
          if (open != std::string::npos) {
            std::string delim(1, ')');
            delim.append(line, i + 1, open - i - 1);
            delim.push_back('"');
            const std::size_t end = line.find(delim, open + 1);
            if (end != std::string::npos) {
              i = end + delim.size();
            } else {
              in_raw_string = true;
              raw_delim = delim;
              i = line.size();
            }
            continue;
          }
        }
        // Ordinary string/char literal: skip to unescaped close quote.
        std::size_t j = i + 1;
        while (j < line.size()) {
          if (line[j] == '\\') {
            j += 2;
            continue;
          }
          if (line[j] == c) break;
          ++j;
        }
        i = std::min(j + 1, line.size() + 1);
        continue;
      }
      if (ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
        std::size_t j = i;
        while (j < line.size() && ident_char(line[j])) ++j;
        file.tokens.push_back(Token{line.substr(i, j - i), li + 1, i + 1, true});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i;
        while (j < line.size() && (ident_char(line[j]) || line[j] == '\'' || line[j] == '.')) ++j;
        file.tokens.push_back(Token{line.substr(i, j - i), li + 1, i + 1, false});
        i = j;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        file.tokens.push_back(Token{std::string(1, c), li + 1, i + 1, false});
      }
      ++i;
    }
  }
}

// ---------------------------------------------------------------------
// Symbol table: names whose type involves an unordered container
// ---------------------------------------------------------------------

struct UnorderedSymbols {
  std::set<std::string> variables;   ///< members/locals of unordered type
  std::set<std::string> accessors;   ///< functions returning unordered refs
};

// Skips a balanced <...> starting at tokens[i] == "<"; returns the index
// one past the matching ">". Tolerates ">>" being two tokens.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "<") ++depth;
    else if (toks[i].text == ">") {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

void collect_unordered_symbols(const SourceFile& file, UnorderedSymbols& syms) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set" &&
        toks[i].text != "unordered_multimap" && toks[i].text != "unordered_multiset") {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") j = skip_template_args(toks, j);
    // Reference/const qualifiers between type and name.
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "const" ||
                               toks[j].text == "*")) {
      ++j;
    }
    if (j >= toks.size() || !toks[j].is_ident) continue;
    const std::string& name = toks[j].text;
    const std::string next = j + 1 < toks.size() ? toks[j + 1].text : "";
    if (next == "(") {
      syms.accessors.insert(name);      // accessor returning unordered ref
    } else if (next == ";" || next == "{" || next == "=" || next == ",") {
      syms.variables.insert(name);      // member / local / param of unordered type
    }
  }
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

class Linter {
 public:
  explicit Linter(const UnorderedSymbols& syms) : syms_{syms} {}

  void run(const SourceFile& file, std::vector<Finding>& out) {
    file_ = &file;
    findings_ = &out;
    rule_wall_clock();
    rule_unordered_iteration();
    rule_rng_discipline();
    rule_rng_root();
    if (file.in_time_domain) rule_raw_ns();
  }

 private:
  void add(std::size_t tok, const std::string& rule, std::string message) {
    const Token& t = file_->tokens[tok];
    if (suppressed(rule, t.line)) return;
    findings_->push_back(Finding{file_->path, t.line, t.col, rule, std::move(message)});
  }

  [[nodiscard]] bool suppressed(const std::string& rule, std::size_t line) const {
    for (const Allow& a : file_->allows) {
      const bool names_rule = std::find(a.rules.begin(), a.rules.end(), rule) != a.rules.end();
      if (!names_rule) continue;
      if (a.whole_file) return true;
      // Same line, or the annotation sits on the immediately preceding line.
      if (line == a.line || line == a.line + 1) return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<Token>& toks() const { return file_->tokens; }

  [[nodiscard]] bool prev_is_scope(std::size_t i, std::string_view ns) const {
    // Matches `ns :: <tok i>`; tolerates `std :: chrono :: ...` chains.
    return i >= 2 && toks()[i - 1].text == ":" && i >= 3 && toks()[i - 2].text == ":" &&
           toks()[i - 3].text == ns;
  }

  // ----- wall-clock ---------------------------------------------------
  void rule_wall_clock() {
    static const std::set<std::string> kBannedIdents = {
        "random_device",   "system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday",    "clock_gettime", "timespec_get", "localtime",
        "gmtime",          "mktime",        "srand",
    };
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (!t.is_ident) continue;
      if (kBannedIdents.contains(t.text)) {
        add(i, "wall-clock",
            "'" + t.text +
                "' is a nondeterminism source; simulation code must derive all timing from "
                "the simulated clock (Time/Duration) and all randomness from forked Rng "
                "streams");
        continue;
      }
      // std::rand / std::time need the scope check: bare `rand`/`time`
      // collide with legitimate local names.
      if ((t.text == "rand" || t.text == "time") && prev_is_scope(i, "std") &&
          i + 1 < toks().size() && toks()[i + 1].text == "(") {
        add(i, "wall-clock",
            "'std::" + t.text + "' reads ambient state; banned in simulation code");
      }
    }
  }

  // ----- unordered-iter -----------------------------------------------
  void rule_unordered_iteration() {
    const std::vector<Token>& t = toks();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!(t[i].text == "for" && t[i + 1].text == "(")) continue;
      // Find the `:` of a range-for at paren depth 1 (skipping `::`).
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& s = t[j].text;
        if (s == "(") ++depth;
        else if (s == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (s == ";" && depth == 1) {
          break;  // classic for, not range-for
        } else if (s == ":" && depth == 1 && colon == 0) {
          const bool scope = (j > 0 && t[j - 1].text == ":") ||
                             (j + 1 < t.size() && t[j + 1].text == ":");
          if (!scope) colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (!t[j].is_ident) continue;
        const std::string& name = t[j].text;
        const bool direct = name.rfind("unordered_", 0) == 0;
        const bool known_var = syms_.variables.contains(name);
        const bool known_fn = syms_.accessors.contains(name) && j + 1 < close &&
                              t[j + 1].text == "(";
        if (direct || known_var || known_fn) {
          add(j, "unordered-iter",
              "range-for over unordered container '" + name +
                  "': iteration order is implementation-defined and leaks into event "
                  "scheduling/traces; iterate a sorted copy or use an ordered container");
          break;  // one finding per loop
        }
      }
    }
  }

  // ----- rng-discipline -----------------------------------------------
  void rule_rng_discipline() {
    static const std::set<std::string> kBannedEngines = {
        "mt19937",        "mt19937_64",     "minstd_rand",  "minstd_rand0",
        "default_random_engine", "ranlux24", "ranlux48",    "knuth_b",
        "mersenne_twister_engine", "linear_congruential_engine",
        "subtract_with_carry_engine", "shuffle_order_engine", "random_shuffle",
    };
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (!t.is_ident) continue;
      const bool is_distribution =
          t.text.size() > 13 &&
          t.text.compare(t.text.size() - 13, 13, "_distribution") == 0;
      if (kBannedEngines.contains(t.text) || is_distribution) {
        add(i, "rng-discipline",
            "'" + t.text +
                "' bypasses the forked named-stream Rng API; standard engines and "
                "distributions are implementation-defined across stdlibs and break "
                "portable trace digests (use aquamac::Rng, util/rng.hpp)");
        continue;
      }
      // `# include < random >` — the include is the tell even before use.
      if (t.text == "random" && i >= 2 && toks()[i - 1].text == "<" &&
          toks()[i - 2].text == "include" && i + 1 < toks().size() &&
          toks()[i + 1].text == ">") {
        add(i, "rng-discipline",
            "#include <random>: simulation code must draw through aquamac::Rng "
            "(util/rng.hpp), never the standard engines/distributions");
      }
    }
  }

  // ----- rng-root -----------------------------------------------------
  void rule_rng_root() {
    const std::vector<Token>& t = toks();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!(t[i].is_ident && t[i].text == "Rng")) continue;
      if (i >= 2 && t[i - 1].text == ":" && t[i - 2].text == ":") continue;  // qualified use
      std::size_t j = i + 1;
      while (j < t.size() && t[j].text == "const") ++j;
      if (j >= t.size() || !t[j].is_ident) continue;  // e.g. `Rng{...}` rvalue, `Rng&`
      const std::size_t name = j;
      ++j;
      if (j >= t.size()) continue;
      const std::string& open = t[j].text;
      if (open != "{" && open != "(" && open != "=") continue;  // param / member decl
      // Scan the initializer to the terminating `;` at depth 0. Two
      // adjacent identifiers inside the parens mean a parameter
      // declaration (`Rng fork(std::uint64_t stream_id)`) — a function
      // returning Rng, not a construction; empty parens likewise.
      bool has_fork = false;
      bool looks_like_fn_decl = open == "(" && j + 1 < t.size() && t[j + 1].text == ")";
      int depth = 0;
      std::size_t k = j;
      for (; k < t.size(); ++k) {
        const std::string& s = t[k].text;
        if (s == "(" || s == "{") ++depth;
        else if (s == ")" || s == "}") --depth;
        else if (s == ";" && depth == 0) break;
        else if (s == "," && depth == 0) break;  // parameter list, not a decl
        if (t[k].is_ident && s == "fork") has_fork = true;
        if (open == "(" && depth >= 1 && t[k].is_ident && k + 1 < t.size() &&
            t[k + 1].is_ident && s != "const") {
          looks_like_fn_decl = true;
        }
      }
      if (k >= t.size() || t[k].text != ";") continue;
      if (looks_like_fn_decl) continue;
      if (!has_fork) {
        add(name, "rng-root",
            "Rng '" + t[name].text +
                "' constructed without .fork(): only a run's designated root stream may "
                "be seeded directly; fork a named sub-stream so adding a consumer never "
                "perturbs existing draws");
      }
    }
  }

  // ----- raw-ns -------------------------------------------------------
  void rule_raw_ns() {
    static const std::set<std::string> kIntTypes = {
        "int", "long", "unsigned", "int32_t", "uint32_t", "int64_t", "uint64_t",
        "size_t", "auto",
    };
    static const std::set<std::string> kArith = {"+", "-", "*", "/", "%"};
    const std::vector<Token>& t = toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
      // (a) arithmetic directly on a raw count_ns() value.
      if (t[i].is_ident && t[i].text == "count_ns" && i + 2 < t.size() &&
          t[i + 1].text == "(" && t[i + 2].text == ")") {
        const std::size_t after = i + 3;
        if (after < t.size() && kArith.contains(t[after].text)) {
          add(i, "raw-ns",
              "arithmetic on raw count_ns(): keep sim-time math inside "
              "Duration/Time (util/time.hpp) so units and rounding stay checked");
        }
      }
      // (b) integer variables named *_ns.
      if (t[i].is_ident && t[i].text.size() > 3 &&
          t[i].text.compare(t[i].text.size() - 3, 3, "_ns") == 0 && i >= 1 &&
          kIntTypes.contains(t[i - 1].text) && i + 1 < t.size() &&
          (t[i + 1].text == "=" || t[i + 1].text == "{" || t[i + 1].text == ";")) {
        add(i, "raw-ns",
            "integer nanosecond variable '" + t[i].text +
                "': use Duration/Time instead of raw ns integers in MAC/sim code");
      }
    }
  }

  const UnorderedSymbols& syms_;
  const SourceFile* file_{nullptr};
  std::vector<Finding>* findings_{nullptr};
};

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool load(const fs::path& path, SourceFile& file) {
  std::ifstream in(path);
  if (!in) return false;
  file.path = path;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw_lines.push_back(line);
  }
  for (const fs::path& part : path) {
    if (part == "mac" || part == "sim") file.in_time_domain = true;
  }
  lex(file);
  return true;
}

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

int usage() {
  std::cerr << "usage: aquamac_lint [--root DIR] [--list-allows] [files...]\n"
            << "  With no files, scans DIR/src (default DIR: cwd) recursively.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool list_allows = false;
  std::vector<fs::path> inputs;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--root") {
      if (a + 1 >= argc) return usage();
      root = argv[++a];
    } else if (arg == "--list-allows") {
      list_allows = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      inputs.emplace_back(arg);
    }
  }

  if (inputs.empty()) {
    const fs::path src = root / "src";
    if (!fs::exists(src)) {
      std::cerr << "aquamac-lint: no such directory: " << src << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (entry.is_regular_file() && has_source_extension(entry.path())) {
        inputs.push_back(entry.path());
      }
    }
  }
  std::sort(inputs.begin(), inputs.end());  // deterministic report order

  std::vector<SourceFile> files;
  files.reserve(inputs.size());
  for (const fs::path& path : inputs) {
    SourceFile file;
    if (!load(path, file)) {
      std::cerr << "aquamac-lint: cannot read " << path << "\n";
      return 2;
    }
    files.push_back(std::move(file));
  }

  // Cross-file symbol pass first: a header's unordered member names must
  // be known before linting the .cpp files that iterate them.
  UnorderedSymbols syms;
  for (const SourceFile& file : files) collect_unordered_symbols(file, syms);

  if (list_allows) {
    std::size_t n = 0;
    for (const SourceFile& file : files) {
      for (const Allow& a : file.allows) {
        std::cout << file.path.string() << ":" << a.line << ": "
                  << (a.whole_file ? "allow-file(" : "allow(");
        for (std::size_t i = 0; i < a.rules.size(); ++i) {
          std::cout << (i ? "," : "") << a.rules[i];
        }
        std::cout << ")" << (a.reason.empty() ? " [MISSING REASON]" : " -- " + a.reason)
                  << "\n";
        ++n;
      }
    }
    std::cout << "aquamac-lint: " << n << " allowlist annotation(s)\n";
    return 0;
  }

  std::vector<Finding> findings;
  Linter linter{syms};
  for (const SourceFile& file : files) linter.run(file, findings);

  for (const Finding& f : findings) {
    std::cout << f.path.string() << ":" << f.line << ":" << f.col << ": error: [" << f.rule
              << "] " << f.message << "\n";
  }
  std::cout << "aquamac-lint: " << findings.size() << " finding(s) in " << files.size()
            << " file(s) scanned\n";
  return findings.empty() ? 0 : 1;
}

// aquamac-lint driver: repo-specific determinism & state-coverage static
// analysis.
//
// aquamac-lint: allow-file(lint-directive) -- the grammar examples in
// this file's documentation parse as live directives.
//
// The simulator's headline guarantees — bit-identical serial-vs-parallel
// traces, digest-verified checkpoint resume, exhaustive trace/stat
// accounting — are otherwise enforced only dynamically (TSan, digest
// oracles, the InvariantAuditor). This tool moves them left: a
// dependency-free lexer pass plus two cross-file symbol passes fail the
// build on constructs that can leak nondeterminism or let state silently
// drop out of a completeness contract.
//
// Rule passes (see docs/static-analysis.md for the full semantics):
//   rules_lexical  wall-clock, unordered-iter, rng-discipline, rng-root,
//                  raw-ns (PR 5).
//   rules_state    ckpt-coverage, trace-kind-exhaustive, stats-symmetric,
//                  shard-shared-mutable, plus the lint-directive meta
//                  rule over the `// lint: ...` directive grammar.
//
// Suppression / registration grammar:
//   // aquamac-lint: allow(rule[,rule...]) -- reason        (line + next)
//   // aquamac-lint: allow-file(rule[,rule...]) -- reason   (whole file)
//   // lint: ckpt-skip(reason)            exempt one member from ckpt
//   // lint: stats-skip(reason)           exempt one field from stats
//   // lint: stats-class(...)             register the class that follows
//   // lint: stats-site(Class)            register the function that follows
//   // lint: trace-dispatch(Enum)         register an exhaustive dispatch
//   // lint: trace-skip(kA,kB -- reason)  exempt kinds at a dispatch site
// `aquamac_lint --list-allows` prints every allow AND directive so the
// whole exemption surface is auditable in one command.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <iostream>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

namespace {

using namespace aquamac_lint;

int usage() {
  std::cerr << "usage: aquamac_lint [--root DIR] [--list-allows] [--dump-structure] "
               "[files-or-dirs...]\n"
            << "  With no inputs, scans DIR/src (default DIR: cwd) recursively.\n"
            << "  Directory inputs are scanned recursively; paths containing a\n"
            << "  'testdata' component are skipped (the self-test corpus is\n"
            << "  deliberately dirty).\n";
  return 2;
}

bool in_testdata(const fs::path& p) {
  for (const fs::path& part : p) {
    if (part == "testdata") return true;
  }
  return false;
}

void expand_input(const fs::path& input, std::vector<fs::path>& out) {
  if (fs::is_directory(input)) {
    for (const auto& entry : fs::recursive_directory_iterator(input)) {
      if (entry.is_regular_file() && has_source_extension(entry.path()) &&
          !in_testdata(entry.path())) {
        out.push_back(entry.path());
      }
    }
  } else {
    out.push_back(input);
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool list_allows = false;
  bool dump_structure = false;
  std::vector<fs::path> raw_inputs;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--root") {
      if (a + 1 >= argc) return usage();
      root = argv[++a];
    } else if (arg == "--list-allows") {
      list_allows = true;
    } else if (arg == "--dump-structure") {
      dump_structure = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      raw_inputs.emplace_back(arg);
    }
  }

  std::vector<fs::path> inputs;
  if (raw_inputs.empty()) {
    const fs::path src = root / "src";
    if (!fs::exists(src)) {
      std::cerr << "aquamac-lint: no such directory: " << src << "\n";
      return 2;
    }
    expand_input(src, inputs);
  } else {
    for (const fs::path& input : raw_inputs) {
      if (!fs::exists(input)) {
        std::cerr << "aquamac-lint: no such file or directory: " << input << "\n";
        return 2;
      }
      expand_input(input, inputs);
    }
  }
  std::sort(inputs.begin(), inputs.end());  // deterministic report order

  std::vector<SourceFile> files;
  files.reserve(inputs.size());
  for (const fs::path& path : inputs) {
    SourceFile file;
    if (!load(path, file)) {
      std::cerr << "aquamac-lint: cannot read " << path << "\n";
      return 2;
    }
    files.push_back(std::move(file));
  }

  // Cross-file symbol passes first: a header's unordered member names and
  // class inventories must be known before linting the .cpp files that
  // iterate/serialize them.
  UnorderedSymbols syms;
  Structure structure;
  for (std::size_t i = 0; i < files.size(); ++i) {
    collect_unordered_symbols(files[i], syms);
    collect_structure(files[i], i, structure);
  }

  if (dump_structure) {
    // Debug view of the structural symbol pass (not part of any gate).
    for (const ClassInfo& c : structure.classes) {
      std::cout << "class " << c.name << " (" << files[c.file_index].path.string() << ":"
                << c.line << ") members:";
      for (const MemberInfo& m : c.members) {
        std::cout << " " << m.name << (m.is_reference ? "&" : "")
                  << (m.is_pointer ? "*" : "") << (m.is_const ? "#" : "");
      }
      std::cout << " | statics:";
      for (const StaticMember& sm : c.static_members) std::cout << " " << sm.name;
      std::cout << " | methods:";
      for (const std::string& m : c.declared_methods) std::cout << " " << m;
      std::cout << "\n";
    }
    for (const EnumInfo& e : structure.enums) {
      std::cout << "enum " << e.name << " (" << e.enumerators.size() << " enumerators)\n";
    }
    for (const FunctionDef& fn : structure.functions) {
      std::cout << "fn " << fn.display() << " (" << files[fn.file_index].path.string()
                << ":" << fn.line << ")\n";
    }
    for (const GlobalVar& g : structure.globals) {
      std::cout << "global " << g.name << " (" << files[g.file_index].path.string() << ":"
                << g.line << ")\n";
    }
    return 0;
  }

  if (list_allows) {
    std::size_t n = 0;
    for (const SourceFile& file : files) {
      for (const Allow& a : file.allows) {
        std::cout << file.path.string() << ":" << a.line << ": "
                  << (a.whole_file ? "allow-file(" : "allow(");
        for (std::size_t i = 0; i < a.rules.size(); ++i) {
          std::cout << (i ? "," : "") << a.rules[i];
        }
        std::cout << ")" << (a.reason.empty() ? " [MISSING REASON]" : " -- " + a.reason)
                  << "\n";
        ++n;
      }
      for (const Directive& d : file.directives) {
        std::cout << file.path.string() << ":" << d.line << ": " << d.name << "("
                  << d.payload << ")";
        if (!d.reason.empty()) {
          std::cout << " -- " << d.reason;
        } else if (d.name == "trace-skip" ||
                   ((d.name == "ckpt-skip" || d.name == "stats-skip") &&
                    d.payload.empty())) {
          std::cout << " [MISSING REASON]";
        }
        std::cout << "\n";
        ++n;
      }
    }
    std::cout << "aquamac-lint: " << n << " allowlist annotation(s)\n";
    return 0;
  }

  std::vector<Finding> findings;
  for (const SourceFile& file : files) run_lexical_rules(file, syms, findings);
  run_state_rules(files, structure, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  for (const Finding& f : findings) {
    std::cout << f.path.string() << ":" << f.line << ":" << f.col << ": error: [" << f.rule
              << "] " << f.message << "\n";
  }
  std::cout << "aquamac-lint: " << findings.size() << " finding(s) in " << files.size()
            << " file(s) scanned\n";
  return findings.empty() ? 0 : 1;
}

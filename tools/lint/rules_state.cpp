// aquamac-lint state-coverage rules: completeness contracts over the
// structural inventory (see lint_core.hpp / docs/static-analysis.md).
//
// aquamac-lint: allow-file(lint-directive) -- the grammar examples in
// this file's documentation parse as live directives.
//
//   ckpt-coverage          every non-static data member of a class that
//                          declares save_state/restore_state must be
//                          referenced in both bodies (nested state
//                          structs included), or carry
//                          `// lint: ckpt-skip(reason)`.
//   trace-kind-exhaustive  every enumerator of an enum registered with
//                          `// lint: trace-dispatch(Enum)` must appear in
//                          the dispatch body or be trace-skip'd; losing
//                          the TraceEventKind registration itself is a
//                          finding.
//   stats-symmetric        every field of a `// lint: stats-class` class
//                          must appear in >= 2 registered
//                          `// lint: stats-site` bodies (emission AND
//                          merge), or carry stats-skip.
//   shard-shared-mutable   mutable statics/globals that are not atomic,
//                          const or thread_local are shared across PDES
//                          shards and banned.
//   lint-directive         meta-rule: unknown directive names, dangling
//                          attachments, skip-exemptions without a reason.

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

namespace aquamac_lint {

namespace {

const std::set<std::string>& known_directives() {
  static const std::set<std::string> kNames = {
      "ckpt-skip", "stats-class", "stats-site", "stats-skip", "trace-dispatch",
      "trace-skip",
  };
  return kNames;
}

// Splits a comma-separated payload into trimmed names.
std::vector<std::string> split_payload(std::string_view payload) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : payload) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// True when an out-of-line qualifier names class `cls` ("RelayAgent"
/// matches qualifier "RelayAgent"; "EwMac::ExtraPlan" matches "ExtraPlan").
bool qualifier_matches(const std::string& qualifier, const std::string& cls) {
  if (qualifier.empty()) return false;
  if (qualifier == cls) return true;
  if (cls.size() > qualifier.size() &&
      cls.compare(cls.size() - qualifier.size(), qualifier.size(), qualifier) == 0 &&
      cls.compare(cls.size() - qualifier.size() - 2, 2, "::") == 0) {
    return true;
  }
  if (qualifier.size() > cls.size() &&
      qualifier.compare(qualifier.size() - cls.size(), cls.size(), cls) == 0 &&
      qualifier.compare(qualifier.size() - cls.size() - 2, 2, "::") == 0) {
    return true;
  }
  return false;
}

class StateLinter {
 public:
  StateLinter(const std::vector<SourceFile>& files, const Structure& structure,
              std::vector<Finding>& out)
      : files_{files}, structure_{structure}, findings_{out} {}

  void run() {
    check_directives();
    rule_ckpt_coverage();
    rule_trace_kind_exhaustive();
    rule_stats_symmetric();
    rule_shard_shared_mutable();
  }

 private:
  void add(std::size_t file_index, std::size_t line, std::size_t col,
           const std::string& rule, std::string message) {
    const SourceFile& file = files_[file_index];
    if (suppressed(file, rule, line)) return;
    findings_.push_back(Finding{file.path, line, col == 0 ? 1 : col, rule,
                                std::move(message)});
  }

  /// Nearest function definition at or below `line` in `file_index`
  /// (directives annotate the signature they precede); falls back to the
  /// function whose body encloses `line`.
  [[nodiscard]] const FunctionDef* attached_function(std::size_t file_index,
                                                     std::size_t line) const {
    const FunctionDef* best = nullptr;
    for (const FunctionDef& fn : structure_.functions) {
      if (fn.file_index != file_index) continue;
      if (fn.line >= line && (best == nullptr || fn.line < best->line)) best = &fn;
    }
    if (best != nullptr) return best;
    for (const FunctionDef& fn : structure_.functions) {
      if (fn.file_index == file_index && fn.line <= line && line <= fn.body_end_line) {
        return &fn;
      }
    }
    return nullptr;
  }

  /// Nearest class definition at or below `line` in `file_index`.
  [[nodiscard]] const ClassInfo* attached_class(std::size_t file_index,
                                                std::size_t line) const {
    const ClassInfo* best = nullptr;
    for (const ClassInfo& c : structure_.classes) {
      if (c.file_index != file_index) continue;
      if (c.line >= line && (best == nullptr || c.line < best->line)) best = &c;
    }
    return best;
  }

  /// The skip directive (of `name`) attached to a member declared at
  /// `line` in `file_index`: same line (trailing comment) or the line
  /// immediately above.
  [[nodiscard]] const Directive* member_skip(const std::string& name,
                                             std::size_t file_index,
                                             std::size_t line) const {
    for (const Directive& d : files_[file_index].directives) {
      if (d.name != name) continue;
      if (d.line == line || d.line + 1 == line) return &d;
    }
    return nullptr;
  }

  /// Identifiers in the bodies of every definition of `method` on `cls`.
  [[nodiscard]] std::set<std::string> method_body_identifiers(
      const ClassInfo& cls, const std::string& method, bool& found_def) const {
    std::set<std::string> ids;
    found_def = false;
    for (const FunctionDef& fn : structure_.functions) {
      if (fn.name != method) continue;
      if (!qualifier_matches(fn.qualifier, cls.name)) continue;
      found_def = true;
      const std::set<std::string> body =
          identifiers_in_range(files_[fn.file_index], fn.body_begin, fn.body_end);
      ids.insert(body.begin(), body.end());
    }
    return ids;
  }

  // ----- lint-directive (meta) ----------------------------------------
  void check_directives() {
    for (std::size_t fi = 0; fi < files_.size(); ++fi) {
      for (const Directive& d : files_[fi].directives) {
        if (!known_directives().contains(d.name)) {
          add(fi, d.line, 1, "lint-directive",
              "unknown lint directive '" + d.name +
                  "' (known: ckpt-skip, stats-class, stats-site, stats-skip, "
                  "trace-dispatch, trace-skip)");
          continue;
        }
        const bool is_skip = d.name == "ckpt-skip" || d.name == "stats-skip" ||
                             d.name == "trace-skip";
        // ckpt-skip/stats-skip carry the reason as the payload itself when
        // no `--` is present; either field may satisfy the requirement.
        if (is_skip && d.reason.empty() && d.payload.empty()) {
          add(fi, d.line, 1, "lint-directive",
              "'" + d.name + "' exemption without a reason: every skip must say why "
              "the member/kind is safe to leave out");
        }
        if ((d.name == "stats-class" || d.name == "stats-site") &&
            attached_class_or_function_missing(fi, d)) {
          // finding emitted inside the helper
        }
      }
    }
  }

  bool attached_class_or_function_missing(std::size_t fi, const Directive& d) {
    if (d.name == "stats-class") {
      if (attached_class(fi, d.line) == nullptr) {
        add(fi, d.line, 1, "lint-directive",
            "dangling stats-class directive: no class definition follows it in this file");
        return true;
      }
    } else if (attached_function(fi, d.line) == nullptr) {
      add(fi, d.line, 1, "lint-directive",
          "dangling stats-site directive: no function definition follows it in this file");
      return true;
    }
    return false;
  }

  /// Expands `ids` with the bodies of serialization helpers it names: a
  /// function is a helper when it takes a `marker` parameter
  /// (StateWriter/StateReader) and its name already appears in the
  /// calling body. Transitive, so helpers may call helpers.
  void expand_serialization_helpers(std::set<std::string>& ids,
                                    const std::string& marker) const {
    std::set<const FunctionDef*> used;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const FunctionDef& fn : structure_.functions) {
        if (used.contains(&fn) || !ids.contains(fn.name)) continue;
        const bool takes_marker =
            std::find(fn.param_tokens.begin(), fn.param_tokens.end(), marker) !=
            fn.param_tokens.end();
        if (!takes_marker) continue;
        used.insert(&fn);
        grew = true;
        const std::set<std::string> body =
            identifiers_in_range(files_[fn.file_index], fn.body_begin, fn.body_end);
        ids.insert(body.begin(), body.end());
      }
    }
  }

  // ----- ckpt-coverage ------------------------------------------------
  void rule_ckpt_coverage() {
    for (const ClassInfo& cls : structure_.classes) {
      if (!cls.declared_methods.contains("save_state") ||
          !cls.declared_methods.contains("restore_state")) {
        continue;
      }
      bool have_save = false;
      bool have_restore = false;
      std::set<std::string> save_ids = method_body_identifiers(cls, "save_state", have_save);
      std::set<std::string> restore_ids =
          method_body_identifiers(cls, "restore_state", have_restore);
      if (!have_save || !have_restore) continue;  // defs outside the scan set
      expand_serialization_helpers(save_ids, "StateWriter");
      expand_serialization_helpers(restore_ids, "StateReader");

      // The members under contract: the class's own, plus members of
      // nested state structs reachable through non-exempt member types.
      struct Checked {
        const MemberInfo* member;
        std::string owner;  ///< the class the member belongs to
      };
      std::vector<Checked> to_check;
      std::set<std::string> frontier;  // unqualified nested-type names in use
      for (const MemberInfo& m : cls.members) {
        to_check.push_back(Checked{&m, cls.name});
        frontier.insert(m.type_tokens.begin(), m.type_tokens.end());
      }
      // Fixpoint over nested structs held by value in checked members.
      bool grew = true;
      std::set<std::string> included;
      while (grew) {
        grew = false;
        for (const ClassInfo& nested : structure_.classes) {
          if (nested.enclosing != cls.name &&
              nested.enclosing.rfind(cls.name + "::", 0) != 0) {
            continue;
          }
          if (included.contains(nested.name)) continue;
          if (nested.declared_methods.contains("save_state") &&
              nested.declared_methods.contains("restore_state")) {
            continue;  // checked as its own contract
          }
          if (!frontier.contains(std::string(nested.unqualified()))) continue;
          included.insert(nested.name);
          grew = true;
          for (const MemberInfo& m : nested.members) {
            to_check.push_back(Checked{&m, nested.name});
            frontier.insert(m.type_tokens.begin(), m.type_tokens.end());
          }
        }
      }

      for (const Checked& c : to_check) {
        const MemberInfo& m = *c.member;
        if (m.is_reference || m.is_pointer || m.is_const) continue;  // wiring/config
        if (member_skip("ckpt-skip", m.file_index, m.line) != nullptr) continue;
        const bool in_save = save_ids.contains(m.name);
        const bool in_restore = restore_ids.contains(m.name);
        if (in_save && in_restore) continue;
        std::string where = !in_save && !in_restore ? "save_state or restore_state"
                            : !in_save             ? "save_state"
                                                   : "restore_state";
        add(m.file_index, m.line, 1, "ckpt-coverage",
            "member '" + m.name + "' of '" + c.owner + "' is not referenced in " + where +
                "; serialize it or annotate `// lint: ckpt-skip(reason)` "
                "(forgotten members silently break resume bit-identity)");
      }
    }
  }

  // ----- trace-kind-exhaustive ----------------------------------------
  void rule_trace_kind_exhaustive() {
    bool trace_event_kind_registered = false;
    for (std::size_t fi = 0; fi < files_.size(); ++fi) {
      for (const Directive& d : files_[fi].directives) {
        if (d.name != "trace-dispatch") continue;
        const FunctionDef* fn = attached_function(fi, d.line);
        if (fn == nullptr) {
          add(fi, d.line, 1, "lint-directive",
              "dangling trace-dispatch directive: no function definition follows it");
          continue;
        }
        const EnumInfo* en = structure_.find_enum(d.payload);
        if (en == nullptr) {
          add(fi, d.line, 1, "lint-directive",
              "trace-dispatch names unknown enum '" + d.payload + "'");
          continue;
        }
        if (en->unqualified() == "TraceEventKind") trace_event_kind_registered = true;

        // trace-skip directives attached to this dispatch site: inside
        // the body, or in the run-up between the directive and the
        // signature.
        std::set<std::string> skipped;
        for (const Directive& s : files_[fi].directives) {
          if (s.name != "trace-skip") continue;
          const bool above = s.line >= d.line && s.line <= fn->line;
          const bool inside = s.line >= fn->line && s.line <= fn->body_end_line;
          if (!above && !inside) continue;
          for (const std::string& kind : split_payload(s.payload)) skipped.insert(kind);
        }
        const std::set<std::string> body =
            identifiers_in_range(files_[fn->file_index], fn->body_begin, fn->body_end);
        for (const std::string& e : en->enumerators) {
          if (body.contains(e) || skipped.contains(e)) continue;
          add(fn->file_index, fn->line, 1, "trace-kind-exhaustive",
              "dispatch '" + fn->display() + "' does not handle " +
                  std::string(en->unqualified()) + "::" + e +
                  "; add a case or annotate `// lint: trace-skip(" + e +
                  " -- reason)` so new event kinds cannot be silently dropped");
        }
      }
    }
    // Anti-rot: the trace enum exists but no dispatch site registers it —
    // the exhaustiveness contract has been lost, which is itself a miss.
    const EnumInfo* kind = structure_.find_enum("TraceEventKind");
    if (kind != nullptr && !trace_event_kind_registered) {
      add(kind->file_index, kind->line, 1, "trace-kind-exhaustive",
          "enum 'TraceEventKind' has no registered `// lint: trace-dispatch` site; "
          "annotate the auditor dispatch and the trace serialization so "
          "exhaustiveness stays machine-checked");
    }
  }

  // ----- stats-symmetric ----------------------------------------------
  void rule_stats_symmetric() {
    // Registered sites, keyed by the class name they claim to cover.
    std::map<std::string, std::vector<const FunctionDef*>> sites;
    for (std::size_t fi = 0; fi < files_.size(); ++fi) {
      for (const Directive& d : files_[fi].directives) {
        if (d.name != "stats-site") continue;
        const FunctionDef* fn = attached_function(fi, d.line);
        if (fn == nullptr) continue;  // reported by check_directives
        for (const std::string& cls : split_payload(d.payload)) {
          sites[cls].push_back(fn);
        }
      }
    }
    for (std::size_t fi = 0; fi < files_.size(); ++fi) {
      for (const Directive& d : files_[fi].directives) {
        if (d.name != "stats-class") continue;
        const ClassInfo* cls = attached_class(fi, d.line);
        if (cls == nullptr) continue;  // reported by check_directives
        const std::string key{cls->unqualified()};
        const std::vector<const FunctionDef*>& fns = sites[key];
        if (fns.size() < 2) {
          add(fi, cls->line, 1, "stats-symmetric",
              "stats class '" + key + "' has " + std::to_string(fns.size()) +
                  " registered stats-site(s); it needs at least two (an emission "
                  "site and a merge/accumulate site) so fields cannot drop out of "
                  "either path");
          continue;
        }
        for (const FunctionDef* fn : fns) {
          const std::set<std::string> body =
              identifiers_in_range(files_[fn->file_index], fn->body_begin, fn->body_end);
          for (const MemberInfo& m : cls->members) {
            if (m.is_reference || m.is_pointer || m.is_const) continue;
            if (member_skip("stats-skip", m.file_index, m.line) != nullptr) continue;
            if (body.contains(m.name)) continue;
            add(fn->file_index, fn->line, 1, "stats-symmetric",
                "field '" + m.name + "' of stats class '" + key +
                    "' is not referenced in registered site '" + fn->display() +
                    "'; emit/merge it or annotate `// lint: stats-skip(reason)` on "
                    "the field");
          }
        }
      }
    }
  }

  // ----- shard-shared-mutable -----------------------------------------
  void rule_shard_shared_mutable() {
    for (const GlobalVar& g : structure_.globals) {
      if (g.is_const || g.type_is_atomic || g.is_thread_local) continue;
      add(g.file_index, g.line, g.col, "shard-shared-mutable",
          "mutable namespace-scope variable '" + g.name +
              "' is shared across PDES shards; make it const, std::atomic, or "
              "thread_local (the sanctioned per-shard seam is "
              "Simulator::ExecContext)");
    }
    for (const ClassInfo& cls : structure_.classes) {
      for (const StaticMember& sm : cls.static_members) {
        if (sm.is_const || sm.type_is_atomic) continue;
        add(sm.file_index, sm.line, sm.col, "shard-shared-mutable",
            "mutable static data member '" + cls.name + "::" + sm.name +
                "' is shared across PDES shards; make it const/atomic or move it "
                "into per-run state");
      }
    }
    // Function-local statics: a token scan inside each body.
    static const std::set<std::string> kSafeQualifiers = {
        "const", "constexpr", "constinit", "atomic", "thread_local",
    };
    for (const FunctionDef& fn : structure_.functions) {
      const SourceFile& file = files_[fn.file_index];
      for (std::size_t i = fn.body_begin; i < fn.body_end && i < file.tokens.size();
           ++i) {
        if (!file.tokens[i].is_ident || file.tokens[i].text != "static") continue;
        // Scan the declaration statement for a safety qualifier; the
        // declared name is the last identifier before the initializer.
        bool safe = false;
        std::string var_name;
        bool before_init = true;
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < fn.body_end; ++j) {
          const std::string& s = file.tokens[j].text;
          if (s == "(" || s == "{" || s == "[") {
            if (depth == 0 && s == "{") before_init = false;
            ++depth;
          } else if (s == ")" || s == "}" || s == "]") {
            --depth;
          } else if (s == ";" && depth == 0) {
            break;
          } else if (s == "=" && depth == 0) {
            before_init = false;
          }
          if (depth == 0 && file.tokens[j].is_ident) {
            if (kSafeQualifiers.contains(s)) safe = true;
            else if (before_init) var_name = s;
          }
        }
        if (safe) continue;
        add(fn.file_index, file.tokens[i].line, file.tokens[i].col,
            "shard-shared-mutable",
            "mutable function-local static '" + var_name + "' in '" + fn.display() +
                "' is shared across PDES shards; make it const/constexpr/atomic/"
                "thread_local or hoist it into per-run state");
      }
    }
  }

  const std::vector<SourceFile>& files_;
  const Structure& structure_;
  std::vector<Finding>& findings_;
};

}  // namespace

void run_state_rules(const std::vector<SourceFile>& files, const Structure& structure,
                     std::vector<Finding>& out) {
  StateLinter{files, structure, out}.run();
}

}  // namespace aquamac_lint

// aquamac-lint core: lexer, annotation/directive parsing and the two
// symbol passes (unordered-container names; structural inventory of
// classes/members/enums/functions/globals). See lint_core.hpp.

#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

namespace aquamac_lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Splits "a, b ,c" into trimmed names.
std::vector<std::string> split_names(std::string_view list) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : list) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

// Parses `aquamac-lint: allow(...)` / `allow-file(...)` out of a comment.
void parse_allow(std::string_view comment, std::size_t line, std::vector<Allow>& allows) {
  const std::string_view kTag = "aquamac-lint:";
  const std::size_t tag = comment.find(kTag);
  if (tag == std::string_view::npos) return;
  std::string_view rest = comment.substr(tag + kTag.size());
  const bool whole_file = rest.find("allow-file(") != std::string_view::npos;
  const std::string_view kw = whole_file ? "allow-file(" : "allow(";
  const std::size_t open = rest.find(kw);
  if (open == std::string_view::npos) return;
  const std::size_t start = open + kw.size();
  const std::size_t close = rest.find(')', start);
  if (close == std::string_view::npos) return;
  Allow allow;
  allow.line = line;
  allow.whole_file = whole_file;
  allow.rules = split_names(rest.substr(start, close - start));
  const std::size_t dash = rest.find("--", close);
  if (dash != std::string_view::npos) {
    allow.reason = std::string(trimmed(rest.substr(dash + 2)));
  }
  if (!allow.rules.empty()) allows.push_back(allow);
}

// Parses `lint: <name>(payload [-- reason])` state-coverage directives.
// The tag must not be the tail of "aquamac-lint:" (that grammar is the
// Allow one, parsed above).
void parse_directive(std::string_view comment, std::size_t line,
                     std::vector<Directive>& directives) {
  std::size_t from = 0;
  while (true) {
    const std::size_t tag = comment.find("lint:", from);
    if (tag == std::string_view::npos) return;
    from = tag + 5;
    if (tag > 0 && (ident_char(comment[tag - 1]) || comment[tag - 1] == '-')) {
      continue;  // "aquamac-lint:" or similar — not this grammar
    }
    std::string_view rest = comment.substr(tag + 5);
    rest = trimmed(rest);
    std::size_t n = 0;
    while (n < rest.size() && (ident_char(rest[n]) || rest[n] == '-')) ++n;
    if (n == 0) continue;
    Directive d;
    d.name = std::string(rest.substr(0, n));
    d.line = line;
    std::string_view after = rest.substr(n);
    if (after.empty() || after.front() != '(') continue;
    const std::size_t close = after.find(')');
    if (close == std::string_view::npos) continue;
    std::string_view inside = after.substr(1, close - 1);
    const std::size_t dash = inside.find("--");
    if (dash != std::string_view::npos) {
      d.payload = std::string(trimmed(inside.substr(0, dash)));
      d.reason = std::string(trimmed(inside.substr(dash + 2)));
    } else {
      d.payload = std::string(trimmed(inside));
    }
    directives.push_back(d);
    return;
  }
}

void parse_comment(std::string_view comment, std::size_t line, SourceFile& file) {
  parse_allow(comment, line, file.allows);
  parse_directive(comment, line, file.directives);
}

// Lexes one translation unit: tokens with positions, comments routed to
// the annotation parsers, string/char literals skipped.
void lex(SourceFile& file) {
  const std::vector<std::string>& lines = file.raw_lines;
  bool in_block_comment = false;
  std::string block_comment;  // accumulated for annotation parsing
  std::size_t block_comment_line = 0;
  bool in_raw_string = false;
  std::string raw_delim;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    std::size_t i = 0;
    if (in_raw_string) {
      const std::size_t end = line.find(raw_delim);
      if (end == std::string::npos) continue;
      in_raw_string = false;
      i = end + raw_delim.size();
    }
    if (in_block_comment) {
      const std::size_t end = line.find("*/");
      if (end == std::string::npos) {
        block_comment += line;
        continue;
      }
      block_comment += line.substr(0, end);
      parse_comment(block_comment, block_comment_line, file);
      in_block_comment = false;
      i = end + 2;
    }
    while (i < line.size()) {
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        parse_comment(line.substr(i + 2), li + 1, file);
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        const std::size_t end = line.find("*/", i + 2);
        if (end == std::string::npos) {
          in_block_comment = true;
          block_comment = line.substr(i + 2);
          block_comment_line = li + 1;
          i = line.size();
        } else {
          parse_comment(line.substr(i + 2, end - i - 2), li + 1, file);
          i = end + 2;
        }
        continue;
      }
      if (c == '"' || c == '\'') {
        // Raw string literal? R"delim( ... )delim" — may span lines.
        if (c == '"' && i > 0 && line[i - 1] == 'R') {
          const std::size_t open = line.find('(', i);
          if (open != std::string::npos) {
            std::string delim(1, ')');
            delim.append(line, i + 1, open - i - 1);
            delim.push_back('"');
            const std::size_t end = line.find(delim, open + 1);
            if (end != std::string::npos) {
              i = end + delim.size();
            } else {
              in_raw_string = true;
              raw_delim = delim;
              i = line.size();
            }
            continue;
          }
        }
        // Ordinary string/char literal: skip to unescaped close quote.
        std::size_t j = i + 1;
        while (j < line.size()) {
          if (line[j] == '\\') {
            j += 2;
            continue;
          }
          if (line[j] == c) break;
          ++j;
        }
        i = std::min(j + 1, line.size() + 1);
        continue;
      }
      if (ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
        std::size_t j = i;
        while (j < line.size() && ident_char(line[j])) ++j;
        file.tokens.push_back(Token{line.substr(i, j - i), li + 1, i + 1, true});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i;
        while (j < line.size() && (ident_char(line[j]) || line[j] == '\'' || line[j] == '.')) ++j;
        file.tokens.push_back(Token{line.substr(i, j - i), li + 1, i + 1, false});
        i = j;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        file.tokens.push_back(Token{std::string(1, c), li + 1, i + 1, false});
      }
      ++i;
    }
  }
}

}  // namespace

bool load(const fs::path& path, SourceFile& file) {
  std::ifstream in(path);
  if (!in) return false;
  file.path = path;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw_lines.push_back(line);
  }
  for (const fs::path& part : path) {
    if (part == "mac" || part == "sim") file.in_time_domain = true;
  }
  lex(file);
  return true;
}

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool suppressed(const SourceFile& file, const std::string& rule, std::size_t line) {
  for (const Allow& a : file.allows) {
    const bool names_rule = std::find(a.rules.begin(), a.rules.end(), rule) != a.rules.end();
    if (!names_rule) continue;
    if (a.whole_file) return true;
    // Same line, or the annotation sits on the immediately preceding line.
    if (line == a.line || line == a.line + 1) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Symbol pass 1: names whose type involves an unordered container
// ---------------------------------------------------------------------

// Skips a balanced <...> starting at tokens[i] == "<"; returns the index
// one past the matching ">". Tolerates ">>" being two tokens.
static std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "<") ++depth;
    else if (toks[i].text == ">") {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

void collect_unordered_symbols(const SourceFile& file, UnorderedSymbols& syms) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set" &&
        toks[i].text != "unordered_multimap" && toks[i].text != "unordered_multiset") {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") j = skip_template_args(toks, j);
    // Reference/const qualifiers between type and name.
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "const" ||
                               toks[j].text == "*")) {
      ++j;
    }
    if (j >= toks.size() || !toks[j].is_ident) continue;
    const std::string& name = toks[j].text;
    const std::string next = j + 1 < toks.size() ? toks[j + 1].text : "";
    if (next == "(") {
      syms.accessors.insert(name);      // accessor returning unordered ref
    } else if (next == ";" || next == "{" || next == "=" || next == ",") {
      syms.variables.insert(name);      // member / local / param of unordered type
    }
  }
}

// ---------------------------------------------------------------------
// Symbol pass 2: structural inventory
// ---------------------------------------------------------------------

namespace {

const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kw = {
      "const",    "constexpr", "constinit", "static",  "inline",   "mutable",
      "extern",   "thread_local", "unsigned", "signed", "long",    "short",
      "int",      "char",      "bool",      "float",   "double",   "auto",
      "void",     "volatile",  "struct",    "class",   "enum",     "union",
      "typename", "virtual",   "explicit",  "final",   "override", "noexcept",
      "operator", "register",  "wchar_t",   "char8_t", "char16_t", "char32_t",
  };
  return kw;
}

/// Walks one file's token stream, recording declarations into Structure.
class StructureParser {
 public:
  StructureParser(const SourceFile& file, std::size_t file_index, Structure& out)
      : file_{file}, file_index_{file_index}, out_{out}, t_{file.tokens} {}

  void parse() { parse_scope(0, t_.size(), "", false); }

 private:
  [[nodiscard]] const std::string& text(std::size_t i) const { return t_[i].text; }

  /// Index of the matching close brace for the open brace at `open`.
  [[nodiscard]] std::size_t match_brace(std::size_t open, std::size_t end) const {
    int depth = 0;
    for (std::size_t i = open; i < end; ++i) {
      if (text(i) == "{") ++depth;
      else if (text(i) == "}") {
        if (--depth == 0) return i;
      }
    }
    return end;
  }

  /// First index in [i, end) whose token is `what` at brace/paren depth 0
  /// relative to `i`; returns `end` if absent.
  [[nodiscard]] std::size_t find_at_depth0(std::size_t i, std::size_t end,
                                           std::string_view what) const {
    int depth = 0;
    for (; i < end; ++i) {
      const std::string& s = text(i);
      // Test before updating depth: an opening brace/paren sits at the
      // depth of its enclosing scope.
      if (depth == 0 && s == what) return i;
      if (s == "{" || s == "(") ++depth;
      else if (s == "}" || s == ")") {
        if (--depth < 0) return end;
      }
    }
    return end;
  }

  ClassInfo* find_class_mut(const std::string& qualified) {
    for (ClassInfo& c : out_.classes) {
      if (c.name == qualified && c.file_index == file_index_) return &c;
    }
    return nullptr;
  }

  void parse_enum(std::size_t& i, std::size_t end, const std::string& encl) {
    std::size_t j = i + 1;
    while (j < end && (text(j) == "class" || text(j) == "struct")) ++j;
    std::string name;
    std::size_t name_line = t_[i].line;
    if (j < end && t_[j].is_ident) {
      name = text(j);
      name_line = t_[j].line;
      ++j;
    }
    // Optional underlying type: `: std::uint8_t`.
    std::size_t open = j;
    while (open < end && text(open) != "{" && text(open) != ";") ++open;
    if (open >= end || text(open) == ";") {
      i = open;  // opaque declaration
      return;
    }
    const std::size_t close = match_brace(open, end);
    EnumInfo info;
    info.name = encl.empty() ? name : encl + "::" + name;
    info.line = name_line;
    info.file_index = file_index_;
    bool expect_name = true;
    int depth = 0;
    for (std::size_t k = open + 1; k < close; ++k) {
      const std::string& s = text(k);
      if (s == "(" || s == "{" || s == "[") ++depth;
      else if (s == ")" || s == "}" || s == "]") --depth;
      if (depth != 0) continue;
      if (s == ",") {
        expect_name = true;
      } else if (expect_name && t_[k].is_ident) {
        info.enumerators.push_back(s);
        expect_name = false;
      }
    }
    if (!info.name.empty()) out_.enums.push_back(std::move(info));
    i = close;  // caller advances past the `}`; trailing `;` skipped as stray
  }

  void parse_class(std::size_t& i, std::size_t end, const std::string& encl) {
    // Scan the class head: forward declaration (`;` first) vs definition.
    std::size_t j = i + 1;
    std::string name;
    std::size_t name_line = t_[i].line;
    std::size_t open = end;
    for (std::size_t k = j; k < end; ++k) {
      const std::string& s = text(k);
      if (s == ";") {
        i = k;  // forward declaration / elaborated type
        return;
      }
      if (s == "{") {
        open = k;
        break;
      }
      if (s == ":" && !(k + 1 < end && text(k + 1) == ":") &&
          !(k > 0 && text(k - 1) == ":")) {
        break;  // base clause: the name is already behind us
      }
      if (t_[k].is_ident && s != "final" && s != "alignas") {
        name = s;
        name_line = t_[k].line;
      }
    }
    if (open == end) {
      // Base clause seen before `{`: find the opening brace.
      open = find_at_depth0(i, end, "{");
      if (open == end) {
        i = end;
        return;
      }
    }
    const std::size_t close = match_brace(open, end);
    if (name.empty()) {  // anonymous struct/union: skip the body
      i = close;
      return;
    }
    const std::string qualified = encl.empty() ? name : encl + "::" + name;
    ClassInfo info;
    info.name = qualified;
    info.enclosing = encl;
    info.line = name_line;
    info.file_index = file_index_;
    out_.classes.push_back(std::move(info));
    parse_scope(open + 1, close, qualified, true);
    i = close;
  }

  /// Parses a function head at whose `(` we stand. Returns true if the
  /// construct was consumed (declaration or definition), advancing `i`.
  bool parse_function(std::size_t& i, std::size_t stmt_begin, std::size_t paren,
                      std::size_t end, const std::string& encl, bool in_class) {
    // Name: identifier (or operator-...) immediately before the paren.
    std::size_t name_tok = paren == 0 ? 0 : paren - 1;
    std::string name;
    if (t_[name_tok].is_ident) {
      name = text(name_tok);
      if (name_tok > 0 && text(name_tok - 1) == "~") name = "~" + name;
      // Conversion operator: `operator bool (`.
      if (name_tok > 0 && text(name_tok - 1) == "operator") {
        name = "operator " + name;
        --name_tok;
      }
    } else {
      // `operator+= (` and friends: walk back over punctuation.
      std::size_t k = name_tok;
      std::string punct;
      while (k > stmt_begin && !t_[k].is_ident && text(k) != ";" && text(k) != "}") {
        punct = text(k) + punct;
        --k;
      }
      if (k >= stmt_begin && t_[k].is_ident && text(k) == "operator") {
        name = "operator" + punct;
        name_tok = k;
      } else {
        return false;
      }
    }
    if (name.empty()) return false;
    // Qualifier: `A :: B ::` chain immediately before the name.
    std::string qualifier;
    std::size_t q = name_tok;
    while (q >= stmt_begin + 3 && text(q - 1) == ":" && text(q - 2) == ":" &&
           t_[q - 3].is_ident) {
      qualifier = qualifier.empty() ? text(q - 3) : text(q - 3) + "::" + qualifier;
      q -= 3;
    }
    if (qualifier.empty() && in_class) qualifier = encl;

    // Find the matching `)` of the parameter list.
    int depth = 0;
    std::size_t close_paren = end;
    for (std::size_t k = paren; k < end; ++k) {
      if (text(k) == "(") ++depth;
      else if (text(k) == ")") {
        if (--depth == 0) {
          close_paren = k;
          break;
        }
      }
    }
    if (close_paren == end) {
      i = end;
      return true;
    }

    // After the params: qualifiers, trailing return, `= default/delete/0`,
    // a constructor init list, then `{` (definition) or `;` (declaration).
    std::size_t k = close_paren + 1;
    bool is_definition = false;
    while (k < end) {
      const std::string& s = text(k);
      if (s == ";") break;
      if (s == "{") {
        is_definition = true;
        break;
      }
      if (s == ":" && !(k + 1 < end && text(k + 1) == ":") &&
          !(text(k - 1) == ":")) {
        // Constructor init list: `: a_{x}, b_(y) {` — skip the groups.
        ++k;
        int gdepth = 0;
        while (k < end) {
          const std::string& g = text(k);
          if (g == "(" || g == "{") {
            if (gdepth == 0 && g == "{" && (text(k - 1) == ")" || text(k - 1) == "}")) {
              break;  // the body brace after the last init group
            }
            ++gdepth;
          } else if (g == ")" || g == "}") {
            --gdepth;
          } else if (g == ";" && gdepth == 0) {
            break;
          }
          ++k;
          if (gdepth == 0 && k < end && text(k) == "{" &&
              (text(k - 1) == ")" || text(k - 1) == "}" || text(k - 1) == ",")) {
            // `a_{x} {` — body brace directly after a closed group.
            if (text(k - 1) != ",") break;
          }
        }
        if (k < end && text(k) == "{") is_definition = true;
        break;
      }
      if (s == "(" || s == "[" || s == "<") {
        // noexcept(...) / attributes / trailing-return templates: skip group.
        int gdepth = 0;
        const std::string open_s = s;
        const std::string close_s = s == "(" ? ")" : (s == "[" ? "]" : ">");
        for (; k < end; ++k) {
          if (text(k) == open_s) ++gdepth;
          else if (text(k) == close_s) {
            if (--gdepth == 0) break;
          }
        }
      }
      ++k;
    }

    if (in_class && !name.empty()) {
      if (ClassInfo* cls = find_class_mut(encl)) cls->declared_methods.insert(name);
    }
    if (!is_definition) {
      i = k;  // at the `;` (or end)
      return true;
    }
    const std::size_t body_open = k;
    const std::size_t body_close = match_brace(body_open, end);
    FunctionDef fn;
    fn.name = name;
    fn.qualifier = qualifier;
    for (std::size_t p = paren + 1; p < close_paren; ++p) fn.param_tokens.push_back(text(p));
    fn.line = t_[name_tok].line;
    fn.body_begin = body_open + 1;
    fn.body_end = body_close;
    fn.body_end_line = body_close < end ? t_[body_close].line : t_.empty() ? 0 : t_.back().line;
    fn.file_index = file_index_;
    out_.functions.push_back(std::move(fn));
    i = body_close;
    return true;
  }

  /// Parses one variable declaration statement `[stmt_begin, semi)`.
  void parse_variable(std::size_t stmt_begin, std::size_t semi, const std::string& encl,
                      bool in_class) {
    // Head: tokens before the initializer / bitfield width.
    std::size_t head_end = semi;
    int depth = 0;
    int angle = 0;
    for (std::size_t k = stmt_begin; k < semi; ++k) {
      const std::string& s = text(k);
      if (s == "(" || s == "[") ++depth;
      else if (s == ")" || s == "]") --depth;
      else if (s == "<") ++angle;
      else if (s == ">") angle = std::max(0, angle - 1);
      if (depth == 0 && angle == 0 &&
          (s == "=" || s == "{" ||
           (s == ":" && !(k + 1 < semi && text(k + 1) == ":") &&
            !(k > stmt_begin && text(k - 1) == ":")))) {
        head_end = k;
        break;
      }
    }
    // Declarator name: last depth-0 identifier in the head that is not a
    // type keyword.
    std::size_t name_tok = semi;
    depth = 0;
    angle = 0;
    for (std::size_t k = stmt_begin; k < head_end; ++k) {
      const std::string& s = text(k);
      if (s == "(" || s == "[") ++depth;
      else if (s == ")" || s == "]") --depth;
      else if (s == "<") ++angle;
      else if (s == ">") angle = std::max(0, angle - 1);
      else if (depth == 0 && angle == 0 && t_[k].is_ident &&
               !type_keywords().contains(s)) {
        // Skip `A` of a qualified type `A::B`.
        if (k + 1 < head_end && text(k + 1) == ":") continue;
        name_tok = k;
      }
    }
    if (name_tok == semi) return;

    bool is_const = false, is_static = false, is_extern = false, is_tls = false;
    bool is_ref = false, is_ptr = false, is_atomic = false;
    std::set<std::string> type_tokens;
    depth = 0;
    for (std::size_t k = stmt_begin; k < head_end; ++k) {
      const std::string& s = text(k);
      if (s == "(" || s == "[") ++depth;
      else if (s == ")" || s == "]") --depth;
      if (k == name_tok) continue;
      if (t_[k].is_ident) {
        if (s == "const" || s == "constexpr" || s == "constinit") is_const = true;
        else if (s == "static") is_static = true;
        else if (s == "extern") is_extern = true;
        else if (s == "thread_local") is_tls = true;
        else if (s == "constexpr") is_const = true;
        if (s == "atomic") is_atomic = true;
        if (!type_keywords().contains(s)) type_tokens.insert(s);
      } else if (depth == 0 && k < name_tok) {
        if (s == "&") is_ref = true;
        if (s == "*") is_ptr = true;
      }
    }
    // constexpr class members are implicitly static.
    const bool effectively_static =
        is_static || (in_class && is_const &&
                      std::any_of(t_.begin() + static_cast<std::ptrdiff_t>(stmt_begin),
                                  t_.begin() + static_cast<std::ptrdiff_t>(head_end),
                                  [](const Token& tok) { return tok.text == "constexpr"; }));

    if (in_class) {
      ClassInfo* cls = find_class_mut(encl);
      if (cls == nullptr) return;
      if (effectively_static) {
        cls->static_members.push_back(StaticMember{text(name_tok), t_[name_tok].line,
                                                   t_[name_tok].col, file_index_, is_const,
                                                   is_atomic});
      } else {
        MemberInfo m;
        m.name = text(name_tok);
        m.line = t_[name_tok].line;
        m.file_index = file_index_;
        m.is_reference = is_ref;
        m.is_pointer = is_ptr;
        m.is_const = is_const;
        m.type_is_atomic = is_atomic;
        m.type_tokens = std::move(type_tokens);
        cls->members.push_back(std::move(m));
      }
    } else {
      // Skip out-of-line definitions of class statics (`Foo::bar = ...`).
      if (name_tok >= stmt_begin + 2 && text(name_tok - 1) == ":" &&
          text(name_tok - 2) == ":") {
        return;
      }
      out_.globals.push_back(GlobalVar{text(name_tok), t_[name_tok].line, t_[name_tok].col,
                                       file_index_, is_const, is_static, is_extern, is_tls,
                                       is_atomic});
    }
  }

  void parse_scope(std::size_t begin, std::size_t end, const std::string& encl,
                   bool in_class) {
    std::size_t i = begin;
    while (i < end) {
      const std::string& s = text(i);
      if (s == ";" || s == "}" || s == "{") {
        ++i;
        continue;
      }
      if (s == "#") {
        // Preprocessor directive: consume the line, honoring `\` splices.
        std::size_t ln = t_[i].line;
        bool spliced = false;
        while (i < end) {
          if (t_[i].line != ln) {
            if (!spliced) break;
            ln = t_[i].line;
          }
          spliced = text(i) == "\\";
          ++i;
        }
        continue;
      }
      if (t_[i].is_ident &&
          (s == "public" || s == "private" || s == "protected") && i + 1 < end &&
          text(i + 1) == ":") {
        i += 2;
        continue;
      }
      if (s == "namespace") {
        std::size_t open = i + 1;
        while (open < end && text(open) != "{" && text(open) != ";") ++open;
        if (open >= end || text(open) == ";") {
          i = open + 1;
          continue;
        }
        const std::size_t close = match_brace(open, end);
        parse_scope(open + 1, close, encl, false);
        i = close + 1;
        continue;
      }
      if (s == "template") {
        // Skip the parameter list `<...>`; the templated entity follows.
        std::size_t j = i + 1;
        if (j < end && text(j) == "<") j = skip_template_args(t_, j);
        i = j;
        continue;
      }
      if (s == "using" || s == "typedef" || s == "friend" || s == "static_assert" ||
          s == "extern") {
        // `extern "C" {` has its string stripped: `extern {`.
        if (s == "extern" && i + 1 < end && text(i + 1) == "{") {
          const std::size_t close = match_brace(i + 1, end);
          parse_scope(i + 2, close, encl, in_class);
          i = close + 1;
          continue;
        }
        std::size_t semi = find_at_depth0(i, end, ";");
        i = semi + 1;
        continue;
      }
      if (s == "enum") {
        parse_enum(i, end, encl);
        ++i;
        continue;
      }
      if (s == "class" || s == "struct" || s == "union") {
        // `struct Foo x;` (elaborated declarator) is rare here; treat a
        // head with a `{` as a definition, anything else falls through to
        // the declaration parser below via parse_class's `;` path.
        parse_class(i, end, encl);
        ++i;
        continue;
      }
      // Generic statement: find its extent and classify.
      int depth = 0;
      bool saw_assign = false;
      std::size_t paren = end;
      std::size_t k = i;
      for (; k < end; ++k) {
        const std::string& w = text(k);
        if (w == "(" ) {
          if (depth == 0 && paren == end && !saw_assign) {
            // A `(` directly after an identifier/operator begins a
            // parameter list (function) — unless an `=` already ran.
            if (k > i && (t_[k - 1].is_ident || !t_[k - 1].is_ident)) paren = k;
          }
          ++depth;
        } else if (w == "[" || w == "{") {
          ++depth;
        } else if (w == ")" || w == "]" || w == "}") {
          --depth;
          if (depth < 0) break;
        } else if (depth == 0 && w == "=") {
          // `=` is an initializer marker — but not inside `operator=` /
          // `operator+=` tokens, where it is part of the function name.
          static const std::set<std::string> kOpChars = {
              "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "!", "=",
          };
          const std::string prev = k > i ? text(k - 1) : std::string{};
          if (prev != "operator" && !kOpChars.contains(prev)) saw_assign = true;
        } else if (depth == 0 && w == ";") {
          break;
        }
        if (paren != end && !saw_assign) break;  // classify at the first paren
      }
      if (paren != end && !saw_assign) {
        std::size_t adv = i;
        if (parse_function(adv, i, paren, end, encl, in_class)) {
          i = adv + 1;
          continue;
        }
      }
      // Variable declaration (or expression statement — no declarator).
      std::size_t semi = i;
      depth = 0;
      for (; semi < end; ++semi) {
        const std::string& w = text(semi);
        if (w == "(" || w == "[" || w == "{") ++depth;
        else if (w == ")" || w == "]" || w == "}") {
          if (depth == 0) break;
          --depth;
        } else if (w == ";" && depth == 0) {
          break;
        }
      }
      parse_variable(i, semi, encl, in_class);
      i = semi + 1;
    }
  }

  const SourceFile& file_;
  std::size_t file_index_;
  Structure& out_;
  const std::vector<Token>& t_;
};

}  // namespace

const ClassInfo* Structure::find_class(std::string_view qualified) const {
  for (const ClassInfo& c : classes) {
    if (c.name == qualified) return &c;
  }
  for (const ClassInfo& c : classes) {
    if (c.unqualified() == qualified) return &c;
  }
  return nullptr;
}

const EnumInfo* Structure::find_enum(std::string_view name) const {
  for (const EnumInfo& e : enums) {
    if (e.name == name) return &e;
  }
  for (const EnumInfo& e : enums) {
    if (e.unqualified() == name) return &e;
  }
  return nullptr;
}

void collect_structure(const SourceFile& file, std::size_t file_index, Structure& out) {
  StructureParser parser{file, file_index, out};
  parser.parse();
}

std::set<std::string> identifiers_in_range(const SourceFile& file, std::size_t begin,
                                           std::size_t end) {
  std::set<std::string> out;
  end = std::min(end, file.tokens.size());
  for (std::size_t i = begin; i < end; ++i) {
    if (file.tokens[i].is_ident) out.insert(file.tokens[i].text);
  }
  return out;
}

}  // namespace aquamac_lint

#!/usr/bin/env python3
"""aquamac-lint self-test: every rule fires on its known-bad snippet and
stays quiet on the known-good one, with exit codes and messages asserted.

Each corpus file is linted in its OWN invocation: the analyzer's
unordered-symbol table is global across the files of one run (that is
what lets it catch accessor iteration across header/impl pairs), so
bad-file symbols must not leak into good-file checks here.

Usage: selftest.py <aquamac_lint binary> <testdata dir>
"""

import subprocess
import sys
from pathlib import Path

# (file, expected exit, substrings that MUST appear, substrings that MUST NOT)
CASES = [
    # wall-clock
    ("wall_clock_bad.cpp", 1,
     ["[wall-clock]", "steady_clock", "system_clock", "srand", "std::rand", "std::time"], []),
    ("wall_clock_good.cpp", 0, ["0 finding(s)"], ["[wall-clock]"]),
    ("wall_clock_allowed.cpp", 0, ["0 finding(s)"], ["[wall-clock]"]),
    ("allow_mismatch.cpp", 1, ["[wall-clock]", "steady_clock"], []),
    # unordered-iter
    ("unordered_iter_bad.cpp", 1,
     ["[unordered-iter]", "delays_", "entries", "peers_"], []),
    ("unordered_iter_good.cpp", 0, ["0 finding(s)"], ["[unordered-iter]"]),
    # rng-discipline
    ("rng_discipline_bad.cpp", 1,
     ["[rng-discipline]", "mt19937", "uniform_real_distribution",
      "uniform_int_distribution", "#include <random>"], []),
    ("rng_discipline_good.cpp", 0, ["0 finding(s)"], ["[rng-discipline]"]),
    # rng-root
    ("rng_root_bad.cpp", 1, ["[rng-root]", "'a'", "'b'", "'c'"], []),
    ("rng_root_good.cpp", 0, ["0 finding(s)"], ["[rng-root]"]),
    ("rng_root_allowed.cpp", 0, ["0 finding(s)"], ["[rng-root]"]),
    # raw-ns (path-scoped to mac/ and sim/ directories)
    ("mac/raw_ns_bad.cpp", 1, ["[raw-ns]", "count_ns", "guard_ns"], []),
    ("mac/raw_ns_good.cpp", 0, ["0 finding(s)"], ["[raw-ns]"]),
    ("raw_ns_outside_scope.cpp", 0, ["0 finding(s)"], ["[raw-ns]"]),
    # ckpt-coverage
    ("ckpt_coverage_bad.cpp", 1,
     ["[ckpt-coverage]",
      "member 'head_' of 'Queue' is not referenced in restore_state",
      "member 'tail_' of 'Queue' is not referenced in save_state",
      "member 'highwater_' of 'Queue' is not referenced in save_state or restore_state",
      "member 'deadline' of 'Queue::Slot'"], []),
    ("ckpt_coverage_good.cpp", 0, ["0 finding(s)"], ["[ckpt-coverage]"]),
    # Mutation self-test: the good corpus with one save-side reference
    # deleted must fire on exactly that member.
    ("ckpt_coverage_mutation.cpp", 1,
     ["[ckpt-coverage]",
      "member 'depth_' of 'Channel' is not referenced in save_state"],
     ["clock_", "ticks", "skew", "epoch_", "scratch_", "limit_"]),
    # trace-kind-exhaustive
    ("trace_exhaustive_bad.cpp", 1,
     ["[trace-kind-exhaustive]", "TraceEventKind::kRxLost",
      "TraceEventKind::kNeighborDead"], ["kTxStart", "kRxOk"]),
    ("trace_exhaustive_good.cpp", 0,
     ["0 finding(s)"], ["[trace-kind-exhaustive]"]),
    ("trace_unregistered_bad.cpp", 1,
     ["[trace-kind-exhaustive]", "no registered"], []),
    # stats-symmetric
    ("stats_symmetric_bad.cpp", 1,
     ["[stats-symmetric]", "'Lonely' has 1 registered stats-site(s)",
      "field 'received' of stats class 'Skewed'", "write_skewed_json"],
     ["'sent'"]),
    ("stats_symmetric_good.cpp", 0, ["0 finding(s)"], ["[stats-symmetric]"]),
    # shard-shared-mutable
    ("shard_shared_bad.cpp", 1,
     ["[shard-shared-mutable]", "event_budget", "Dispatcher::sequence_",
      "fallback_seq"], []),
    ("shard_shared_good.cpp", 0, ["0 finding(s)"], ["[shard-shared-mutable]"]),
    # lint-directive meta-rule
    ("directive_bad.cpp", 1,
     ["[lint-directive]", "unknown lint directive 'frobnicate'",
      "'ckpt-skip' exemption without a reason",
      "dangling stats-class", "dangling stats-site"], []),
]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    binary, testdata = sys.argv[1], Path(sys.argv[2])

    failures = []
    for name, want_exit, must, must_not in CASES:
        path = testdata / name
        if not path.exists():
            failures.append(f"{name}: corpus file missing")
            continue
        proc = subprocess.run([binary, str(path)], capture_output=True, text=True)
        out = proc.stdout + proc.stderr
        if proc.returncode != want_exit:
            failures.append(
                f"{name}: exit {proc.returncode}, want {want_exit}\n{out}")
            continue
        for s in must:
            if s not in out:
                failures.append(f"{name}: missing expected output {s!r}\n{out}")
        for s in must_not:
            if s in out:
                failures.append(f"{name}: unexpected output {s!r}\n{out}")

    # The allowlist audit must list annotations with their reasons.
    proc = subprocess.run(
        [binary, str(testdata / "wall_clock_allowed.cpp"), "--list-allows"],
        capture_output=True, text=True)
    if proc.returncode != 0 or "allow(wall-clock)" not in proc.stdout \
            or "harness wall-timing" not in proc.stdout:
        failures.append(f"--list-allows audit failed\n{proc.stdout}{proc.stderr}")

    if failures:
        print(f"lint selftest: {len(failures)} FAILURE(S)")
        for f in failures:
            print("  FAIL", f)
        return 1
    print(f"lint selftest: all {len(CASES)} corpus cases + allowlist audit passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

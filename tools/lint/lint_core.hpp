#pragma once
// aquamac-lint core: source model, lexer, annotation grammar and the
// cross-file symbol passes shared by every rule pass (see
// docs/static-analysis.md).
//
// PR 5 shipped the tool as one file; the state-coverage rules needed a
// second, structural symbol pass (per-class member inventories, enum
// enumerator inventories, function-definition body ranges), so the tool
// is now a small pipeline:
//
//   lint_core      lexer + allow/directive parsing + symbol passes
//   rules_lexical  the five PR 5 token-pattern rules
//   rules_state    the four state-coverage rules (ckpt-coverage,
//                  trace-kind-exhaustive, stats-symmetric,
//                  shard-shared-mutable)
//   aquamac_lint   driver (file set, report, --list-allows audit)
//
// Everything stays dependency-free C++20: the CI container guarantees
// only a toolchain, and each pass is expressible over the token stream
// plus these symbol tables.

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace aquamac_lint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t line{0};  ///< 1-based
  std::size_t col{0};   ///< 1-based
  bool is_ident{false};
};

/// `// aquamac-lint: allow(rule...)` / `allow-file(rule...)` suppression.
struct Allow {
  std::size_t line{0};  ///< annotation line (applies there + next code line)
  bool whole_file{false};
  std::vector<std::string> rules;
  std::string reason;
};

/// `// lint: <name>(payload -- reason)` state-coverage directive. Unlike
/// an Allow (which silences findings at a site), a directive changes what
/// a rule *requires*: ckpt-skip / stats-skip exempt one member from a
/// completeness contract, stats-class / stats-site / trace-dispatch /
/// trace-skip register classes and dispatch sites for cross-checking.
/// All of them print under --list-allows so the audit stays one command.
struct Directive {
  std::string name;     ///< ckpt-skip, stats-class, stats-site, ...
  std::string payload;  ///< text inside the parens, before any `--`
  std::string reason;   ///< text after `--` (exemptions must carry one)
  std::size_t line{0};
};

struct SourceFile {
  fs::path path;
  std::vector<std::string> raw_lines;
  std::vector<Token> tokens;  ///< comments/strings stripped
  std::vector<Allow> allows;
  std::vector<Directive> directives;
  bool in_time_domain{false};  ///< under a mac/ or sim/ directory
};

struct Finding {
  fs::path path;
  std::size_t line{0};
  std::size_t col{0};
  std::string rule;
  std::string message;
};

/// Reads and lexes one file; routes comments to the annotation parsers.
bool load(const fs::path& path, SourceFile& file);

/// True for the suffixes the tool scans.
bool has_source_extension(const fs::path& p);

/// True when `rule` is suppressed at `line` by the file's allowlist.
bool suppressed(const SourceFile& file, const std::string& rule, std::size_t line);

// ---------------------------------------------------------------------
// Symbol pass 1: names whose type involves an unordered container
// ---------------------------------------------------------------------

struct UnorderedSymbols {
  std::set<std::string> variables;  ///< members/locals of unordered type
  std::set<std::string> accessors;  ///< functions returning unordered refs
};

void collect_unordered_symbols(const SourceFile& file, UnorderedSymbols& syms);

// ---------------------------------------------------------------------
// Symbol pass 2: structural inventory (classes, enums, functions,
// namespace-scope variables)
// ---------------------------------------------------------------------

/// One non-static data member of a class/struct.
struct MemberInfo {
  std::string name;
  std::size_t line{0};       ///< declaration line (where the name sits)
  std::size_t file_index{0};
  bool is_reference{false};  ///< wiring, not state: auto-exempt from ckpt
  bool is_pointer{false};    ///< likewise wiring (raw pointer member)
  bool is_const{false};      ///< config, rebuilt from the scenario
  bool type_is_atomic{false};
  /// Every identifier in the declaration before the name (including
  /// template arguments): links members to the nested structs they hold.
  std::set<std::string> type_tokens;
};

/// A static data member (shard-shared unless const/atomic).
struct StaticMember {
  std::string name;
  std::size_t line{0};
  std::size_t col{0};
  std::size_t file_index{0};
  bool is_const{false};  ///< const / constexpr / constinit
  bool type_is_atomic{false};
};

/// One class/struct definition. Nested types are separate entries with
/// `::`-qualified names ("EwMac::ExtraPlan"); `enclosing` links back.
struct ClassInfo {
  std::string name;       ///< qualified within the translation unit
  std::string enclosing;  ///< qualified name of the enclosing class ("" = top level)
  std::size_t line{0};    ///< line of the class-name token
  std::size_t file_index{0};
  std::vector<MemberInfo> members;        ///< non-static data members
  std::vector<StaticMember> static_members;
  std::set<std::string> declared_methods; ///< method names declared in the body

  [[nodiscard]] std::string_view unqualified() const {
    const std::size_t sep = name.rfind("::");
    return sep == std::string::npos ? std::string_view{name}
                                    : std::string_view{name}.substr(sep + 2);
  }
};

/// One function definition with a body. `qualifier` is the `A::B` prefix
/// of an out-of-line member definition (empty for free functions);
/// inline member definitions get the enclosing class as qualifier.
struct FunctionDef {
  std::string name;
  std::string qualifier;
  std::vector<std::string> param_tokens;  ///< token texts between the parens
  std::size_t line{0};        ///< line of the name token
  std::size_t body_begin{0};  ///< token index just past the opening `{`
  std::size_t body_end{0};    ///< token index of the matching `}`
  std::size_t body_end_line{0};
  std::size_t file_index{0};

  [[nodiscard]] std::string display() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

struct EnumInfo {
  std::string name;  ///< qualified like classes ("TraceEventKind")
  std::size_t line{0};
  std::size_t file_index{0};
  std::vector<std::string> enumerators;

  [[nodiscard]] std::string_view unqualified() const {
    const std::size_t sep = name.rfind("::");
    return sep == std::string::npos ? std::string_view{name}
                                    : std::string_view{name}.substr(sep + 2);
  }
};

/// Namespace-scope variable (global); function/class statics are found
/// separately by the shard-shared-mutable token scan.
struct GlobalVar {
  std::string name;
  std::size_t line{0};
  std::size_t col{0};
  std::size_t file_index{0};
  bool is_const{false};      ///< const / constexpr / constinit
  bool is_static{false};
  bool is_extern{false};
  bool is_thread_local{false};
  bool type_is_atomic{false};
};

/// The structural inventory of the whole scanned file set, merged so
/// header declarations pair with out-of-line definitions in other files.
struct Structure {
  std::vector<ClassInfo> classes;
  std::vector<FunctionDef> functions;
  std::vector<EnumInfo> enums;
  std::vector<GlobalVar> globals;

  [[nodiscard]] const ClassInfo* find_class(std::string_view qualified) const;
  [[nodiscard]] const EnumInfo* find_enum(std::string_view name) const;
};

/// Parses one file's declarations into `out`. `file_index` is the file's
/// position in the driver's scan set (used to map symbols back to files
/// for findings and annotation attachment).
void collect_structure(const SourceFile& file, std::size_t file_index, Structure& out);

/// All identifier token texts in `[begin, end)` of `file.tokens`.
std::set<std::string> identifiers_in_range(const SourceFile& file, std::size_t begin,
                                           std::size_t end);

// ---------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------

/// The five PR 5 token-pattern rules: wall-clock, unordered-iter,
/// rng-discipline, rng-root, raw-ns.
void run_lexical_rules(const SourceFile& file, const UnorderedSymbols& syms,
                       std::vector<Finding>& out);

/// The four state-coverage rules (cross-file: needs every scanned file
/// plus the merged structural inventory).
void run_state_rules(const std::vector<SourceFile>& files, const Structure& structure,
                     std::vector<Finding>& out);

}  // namespace aquamac_lint

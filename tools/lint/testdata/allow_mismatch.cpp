// An allow() naming the WRONG rule must not suppress the finding.
#include <chrono>

double still_flagged() {
  // aquamac-lint: allow(raw-ns) -- wrong rule id on purpose
  const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(start.time_since_epoch()).count();
}

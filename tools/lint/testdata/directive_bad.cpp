// Known-bad lint-directive corpus: an unknown directive name, a skip
// exemption without a reason, and dangling stats-class / stats-site
// registrations with nothing to attach to. Four findings expected.
namespace aquamac {

// lint: frobnicate(everything)
// lint: ckpt-skip()
long configure();

// lint: stats-class(no class follows this)
long configure() { return 0; }

}  // namespace aquamac

// lint: stats-site(Nothing)

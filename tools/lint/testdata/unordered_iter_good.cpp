// Known-good: ordered iteration and lookup-only unordered use.
#include <map>
#include <unordered_map>
#include <vector>

struct Table {
  std::map<int, double> delays_;                  // ordered: iteration is fine
  std::unordered_map<int, double> cache_;         // lookup-only: fine

  double lookup(int id) const {
    const auto it = cache_.find(id);
    return it == cache_.end() ? 0.0 : it->second;
  }

  std::vector<int> ids() const {
    std::vector<int> out;
    for (const auto& [id, delay] : delays_) out.push_back(id);  // std::map
    return out;
  }
};

// A classic indexed for over a vector must not confuse the range-for scan.
double sum(const std::vector<double>& xs) {
  double s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) s += xs[i];
  for (const double x : xs) s += x;
  return s;
}

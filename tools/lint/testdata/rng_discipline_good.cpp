// Known-good: all draws through the forked named-stream Rng API.
#include <cstdint>

struct Rng {
  std::uint64_t s{0};
  Rng fork(std::uint64_t stream_id) const { return Rng{s ^ stream_id}; }
  double uniform01() { return 0.5; }
};

double good_draw(const Rng& parent) {
  Rng stream = parent.fork(0xBEEF);
  return stream.uniform01();
}

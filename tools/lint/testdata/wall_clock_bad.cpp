// Known-bad: every ambient-state read the wall-clock rule must catch.
#include <chrono>
#include <cstdlib>
#include <ctime>

double bad_wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::system_clock::now();
  (void)t1;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

int bad_rand() {
  std::srand(42);
  return std::rand();
}

long bad_time() { return std::time(nullptr); }

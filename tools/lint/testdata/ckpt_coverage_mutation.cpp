// Mutation self-test for ckpt-coverage: this file is
// ckpt_coverage_good.cpp with the `write_long(writer, depth_)` reference
// deleted from save_state. The rule must fire on exactly that member —
// proving a dropped field reference cannot pass the wall silently.
namespace aquamac {

class StateWriter;
class StateReader;

void write_long(StateWriter& writer, long v);
long read_long(StateReader& reader);

class Channel {
 public:
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  struct Clock {
    long ticks{0};
    double skew{0.0};
  };

  long depth_{0};
  Clock clock_{};
  double* scratch_{nullptr};
  const long limit_{8};
  StateWriter& sink_;
  long epoch_{0};  // lint: ckpt-skip(derived from config at construction)
};

void write_clock(StateWriter& writer, const Channel::Clock& clock);
Channel::Clock read_clock(StateReader& reader);

void Channel::save_state(StateWriter& writer) const {
  write_clock(writer, clock_);
}

void Channel::restore_state(StateReader& reader) {
  depth_ = read_long(reader);
  clock_ = read_clock(reader);
}

void write_clock(StateWriter& writer, const Channel::Clock& clock) {
  write_long(writer, clock.ticks);
  write_long(writer, static_cast<long>(clock.skew));
}

Channel::Clock read_clock(StateReader& reader) {
  Channel::Clock clock;
  clock.ticks = read_long(reader);
  clock.skew = static_cast<double>(read_long(reader));
  return clock;
}

}  // namespace aquamac

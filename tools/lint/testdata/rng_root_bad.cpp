// Known-bad: locally constructed engines bypassing fork() — each one
// would perturb (or be perturbed by) every other consumer of the seed.
#include <cstdint>

struct Rng {
  std::uint64_t s{0};
  explicit Rng(std::uint64_t seed) : s{seed} {}
  Rng fork(std::uint64_t stream_id) const { return Rng{s ^ stream_id}; }
};

double three_bad_roots(std::uint64_t seed) {
  Rng a{seed};                 // brace init, no fork
  Rng b(seed + 1);             // paren init, no fork
  Rng c = Rng{seed + 2};       // copy init, no fork
  return static_cast<double>(a.s + b.s + c.s);
}

// Known-good stats-symmetric corpus: the registered class has two sites
// (merge and emission) that each reference every field; one field is
// exempted with a reasoned stats-skip.
namespace aquamac {

class JsonWriter {
 public:
  JsonWriter& key(const char* name);
  JsonWriter& value(double v);
};

// lint: stats-class(merged by operator+=, emitted by write_counters_json)
struct Counters {
  double sent{0.0};
  double received{0.0};
  double scratch{0.0};  // lint: stats-skip(transient workspace, never reported)

  Counters& operator+=(const Counters& o);
};

// lint: stats-site(Counters)
Counters& Counters::operator+=(const Counters& o) {
  sent += o.sent;
  received += o.received;
  return *this;
}

// lint: stats-site(Counters)
void write_counters_json(JsonWriter& json, const Counters& counters) {
  json.key("sent").value(counters.sent);
  json.key("received").value(counters.received);
}

}  // namespace aquamac

// Scope check: the raw-ns rule applies only under mac/ and sim/ paths.
// This file performs raw-ns arithmetic but is OUTSIDE those directories,
// so the lint must stay quiet (harness/stats code reports raw ns freely).
#include <cstdint>

struct Duration {
  std::int64_t count_ns() const { return ns_; }
  std::int64_t ns_{0};
};

double mean_ns(Duration a, Duration b) {
  return static_cast<double>(a.count_ns() + b.count_ns()) / 2.0;
}

// Known-bad shard-shared-mutable corpus: a mutable namespace-scope
// global, a mutable static data member, and a mutable function-local
// static. Three findings expected.
namespace aquamac {

long event_budget = 1'000;

class Dispatcher {
 public:
  long next();

 private:
  static long sequence_;
};

long Dispatcher::next() {
  static long fallback_seq = 0;
  fallback_seq += 1;
  return fallback_seq;
}

}  // namespace aquamac

// Known-good trace-kind-exhaustive corpus: the registered dispatch
// handles every enumerator, with one reasoned trace-skip.
namespace aquamac {

enum class TraceEventKind {
  kTxStart,
  kRxOk,
  kRxLost,
  kDebugProbe,
};

// lint: trace-dispatch(TraceEventKind)
// lint: trace-skip(kDebugProbe -- debug-only kind, no dispatch obligation)
const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTxStart: return "TX";
    case TraceEventKind::kRxOk: return "RX";
    case TraceEventKind::kRxLost: return "LOST";
    default: break;
  }
  return "?";
}

}  // namespace aquamac

// Known-good: sim-time math stays inside the strong types; count_ns()
// only crosses the boundary for storage/serialization, never arithmetic.
#include <cstdint>

struct Duration {
  std::int64_t count_ns() const { return ns_; }
  Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  std::int64_t ns_{0};
};

Duration good_scaled_backoff(Duration bound, std::int64_t step) {
  return bound * step / 4;  // Duration arithmetic end to end
}

std::int64_t good_trace_field(Duration age) {
  return age.count_ns();  // plain conversion for a trace field: fine
}

// Known-bad (lives under a mac/ path, so the raw-ns rule is in scope):
// integer-nanosecond arithmetic outside the Duration/Time types.
#include <cstdint>

struct Duration {
  std::int64_t count_ns() const { return ns_; }
  std::int64_t ns_{0};
};

std::int64_t bad_scaled_backoff(Duration bound, std::int64_t step) {
  return bound.count_ns() * step / 4;  // arithmetic on raw count_ns()
}

std::int64_t bad_raw_variable(Duration slot) {
  const std::int64_t guard_ns = 5'000'000;  // *_ns integer variable
  return slot.count_ns() + guard_ns;        // and more raw-ns arithmetic
}

// Known-good shard-shared-mutable corpus: every namespace/static datum
// is const, constexpr, atomic or thread_local, so nothing is mutable
// shared state across PDES shards.
#include <atomic>

namespace aquamac {

constexpr long kEventBudget = 1'000;
const double kDrainFactor = 0.5;
std::atomic<long> live_shards{0};
thread_local long shard_scratch = 0;

class Dispatcher {
 public:
  long next();

 private:
  static constexpr long kStride = 16;
  static const long kBase;
  static std::atomic<long> sequence_;
};

long Dispatcher::next() {
  static const long offset = 3;
  static thread_local long local_seq = 0;
  local_seq += 1;
  return local_seq + offset + kStride;
}

}  // namespace aquamac

// Known-good: forked streams, Rng-typed parameters/members, and
// functions returning Rng — none of these are local root constructions.
#include <cstdint>

struct Rng {
  std::uint64_t s{0};
  Rng fork(std::uint64_t stream_id) const { return Rng{s ^ stream_id}; }
};

// Function declarations returning Rng are not constructions.
Rng make_stream(std::uint64_t stream_id);
Rng make_default();

struct Node {
  Rng rng_;  // member declaration: seeded by whoever constructs Node
  explicit Node(Rng rng) : rng_{rng} {}
};

double good(const Rng& parent) {
  Rng stream = parent.fork(42);
  const Rng other{parent.fork(43)};
  return static_cast<double>(stream.s + other.s);
}

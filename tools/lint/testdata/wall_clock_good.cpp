// Known-good: simulated-clock code that must NOT trip the wall-clock
// rule — including identifiers that merely contain clock-ish substrings.
struct Duration {
  long long ns{0};
};
struct Time {
  long long ns{0};
};

Duration sim_elapsed(Time start, Time now) { return Duration{now.ns - start.ns}; }

// A local named `time` and a member function `rand` are legal names; only
// the std:: qualified calls are ambient state.
struct Widget {
  int rand_state{0};
  int rand_next() { return ++rand_state; }
};

int use(Widget& w, Time time) { return w.rand_next() + static_cast<int>(time.ns); }

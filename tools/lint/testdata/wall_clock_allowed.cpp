// Allowlist behavior: an annotated wall-clock read is sanctioned.
#include <chrono>

double harness_wall_seconds() {
  // aquamac-lint: allow(wall-clock) -- harness wall-timing only; never feeds simulation state
  const auto start = std::chrono::steady_clock::now();
  // aquamac-lint: allow(wall-clock) -- harness wall-timing only; never feeds simulation state
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

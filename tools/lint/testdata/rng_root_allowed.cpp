// Allowlist behavior: a run's designated root stream is sanctioned.
#include <cstdint>

struct Rng {
  std::uint64_t s{0};
  explicit Rng(std::uint64_t seed) : s{seed} {}
  Rng fork(std::uint64_t stream_id) const { return Rng{s ^ stream_id}; }
};

double run(std::uint64_t seed) {
  // aquamac-lint: allow(rng-root) -- the per-run root stream; everything else forks from it
  const Rng root{seed};
  return static_cast<double>(root.fork(1).s);
}

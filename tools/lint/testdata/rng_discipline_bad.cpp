// Known-bad: standard-library engines/distributions (implementation-
// defined streams) instead of the repo's exactly-specified Rng.
#include <random>

double bad_draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

int bad_draw_int(unsigned seed) {
  std::mt19937_64 gen(seed);
  std::uniform_int_distribution<int> dist(0, 10);
  return dist(gen);
}

// Anti-rot corpus: the trace enum exists but no dispatch registers it —
// the exhaustiveness contract has been lost, which is itself a finding.
namespace aquamac {

enum class TraceEventKind {
  kTxStart,
  kRxOk,
};

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTxStart: return "TX";
    case TraceEventKind::kRxOk: return "RX";
  }
  return "?";
}

}  // namespace aquamac

// Known-bad trace-kind-exhaustive corpus: the dispatch neither handles
// nor skips kRxLost and kNeighborDead. Two findings expected.
namespace aquamac {

enum class TraceEventKind {
  kTxStart,
  kRxOk,
  kRxLost,
  kNeighborDead,
};

// lint: trace-dispatch(TraceEventKind)
const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTxStart: return "TX";
    case TraceEventKind::kRxOk: return "RX";
    default: break;
  }
  return "?";
}

}  // namespace aquamac

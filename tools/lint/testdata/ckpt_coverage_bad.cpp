// Known-bad ckpt-coverage corpus: one member missing from save_state,
// one from restore_state, one from both, and a nested state struct with
// an uncovered field. Four findings expected.
namespace aquamac {

class StateWriter;
class StateReader;

void write_long(StateWriter& writer, long v);
long read_long(StateReader& reader);

class Queue {
 public:
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  struct Slot {
    long seq{0};
    long deadline{0};
  };

  long head_{0};      // referenced in save only
  long tail_{0};      // referenced in restore only
  long highwater_{0}; // referenced in neither
  Slot slot_{};
};

void Queue::save_state(StateWriter& writer) const {
  write_long(writer, head_);
  write_long(writer, slot_.seq);
}

void Queue::restore_state(StateReader& reader) {
  tail_ = read_long(reader);
  slot_.seq = read_long(reader);
}

}  // namespace aquamac

// Known-bad: hash-order iteration leaking into observable results —
// both direct member iteration and iteration through an accessor whose
// return type the symbol pass resolves to an unordered container.
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Table {
  std::unordered_map<int, double> delays_;
  std::unordered_set<int> peers_;

  const std::unordered_map<int, double>& entries() const { return delays_; }

  std::vector<int> ship_first_two() const {
    std::vector<int> out;
    for (const auto& [id, delay] : delays_) {  // direct member iteration
      if (out.size() >= 2) break;
      out.push_back(id);
    }
    return out;
  }
};

double sum_via_accessor(const Table& t) {
  double s = 0.0;
  for (const auto& [id, delay] : t.entries()) s += delay;  // accessor iteration
  return s;
}

int count_peers(const Table& t) {
  int n = 0;
  for (const int p : t.peers_) n += p;  // unordered_set iteration
  return n;
}

// Known-bad stats-symmetric corpus: Lonely has a single registered site
// (the rule demands an emission AND a merge path), and Skewed's emission
// site drops the `received` field. Two findings expected.
namespace aquamac {

class JsonWriter {
 public:
  JsonWriter& key(const char* name);
  JsonWriter& value(double v);
};

// lint: stats-class(merge-only registration, needs an emission site too)
struct Lonely {
  double sent{0.0};

  Lonely& operator+=(const Lonely& o);
};

// lint: stats-site(Lonely)
Lonely& Lonely::operator+=(const Lonely& o) {
  sent += o.sent;
  return *this;
}

// lint: stats-class(merged by operator+=, emitted by write_skewed_json)
struct Skewed {
  double sent{0.0};
  double received{0.0};

  Skewed& operator+=(const Skewed& o);
};

// lint: stats-site(Skewed)
Skewed& Skewed::operator+=(const Skewed& o) {
  sent += o.sent;
  received += o.received;
  return *this;
}

// lint: stats-site(Skewed)
void write_skewed_json(JsonWriter& json, const Skewed& counters) {
  json.key("sent").value(counters.sent);
}

}  // namespace aquamac

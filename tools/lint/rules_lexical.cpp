// aquamac-lint lexical rules: the five PR 5 token-pattern rules
// (wall-clock, unordered-iter, rng-discipline, rng-root, raw-ns).
// Each is a scan over one file's token stream plus the cross-file
// unordered-symbol table. See docs/static-analysis.md for semantics.

#include <algorithm>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

namespace aquamac_lint {

namespace {

class LexicalLinter {
 public:
  LexicalLinter(const SourceFile& file, const UnorderedSymbols& syms,
                std::vector<Finding>& out)
      : file_{file}, syms_{syms}, findings_{out} {}

  void run() {
    rule_wall_clock();
    rule_unordered_iteration();
    rule_rng_discipline();
    rule_rng_root();
    if (file_.in_time_domain) rule_raw_ns();
  }

 private:
  void add(std::size_t tok, const std::string& rule, std::string message) {
    const Token& t = file_.tokens[tok];
    if (suppressed(file_, rule, t.line)) return;
    findings_.push_back(Finding{file_.path, t.line, t.col, rule, std::move(message)});
  }

  [[nodiscard]] const std::vector<Token>& toks() const { return file_.tokens; }

  [[nodiscard]] bool prev_is_scope(std::size_t i, std::string_view ns) const {
    // Matches `ns :: <tok i>`; tolerates `std :: chrono :: ...` chains.
    return i >= 2 && toks()[i - 1].text == ":" && i >= 3 && toks()[i - 2].text == ":" &&
           toks()[i - 3].text == ns;
  }

  // ----- wall-clock ---------------------------------------------------
  void rule_wall_clock() {
    static const std::set<std::string> kBannedIdents = {
        "random_device",   "system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday",    "clock_gettime", "timespec_get", "localtime",
        "gmtime",          "mktime",        "srand",
    };
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (!t.is_ident) continue;
      if (kBannedIdents.contains(t.text)) {
        add(i, "wall-clock",
            "'" + t.text +
                "' is a nondeterminism source; simulation code must derive all timing from "
                "the simulated clock (Time/Duration) and all randomness from forked Rng "
                "streams");
        continue;
      }
      // std::rand / std::time need the scope check: bare `rand`/`time`
      // collide with legitimate local names.
      if ((t.text == "rand" || t.text == "time") && prev_is_scope(i, "std") &&
          i + 1 < toks().size() && toks()[i + 1].text == "(") {
        add(i, "wall-clock",
            "'std::" + t.text + "' reads ambient state; banned in simulation code");
      }
    }
  }

  // ----- unordered-iter -----------------------------------------------
  void rule_unordered_iteration() {
    const std::vector<Token>& t = toks();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!(t[i].text == "for" && t[i + 1].text == "(")) continue;
      // Find the `:` of a range-for at paren depth 1 (skipping `::`).
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& s = t[j].text;
        if (s == "(") ++depth;
        else if (s == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (s == ";" && depth == 1) {
          break;  // classic for, not range-for
        } else if (s == ":" && depth == 1 && colon == 0) {
          const bool scope = (j > 0 && t[j - 1].text == ":") ||
                             (j + 1 < t.size() && t[j + 1].text == ":");
          if (!scope) colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (!t[j].is_ident) continue;
        const std::string& name = t[j].text;
        const bool direct = name.rfind("unordered_", 0) == 0;
        const bool known_var = syms_.variables.contains(name);
        const bool known_fn = syms_.accessors.contains(name) && j + 1 < close &&
                              t[j + 1].text == "(";
        if (direct || known_var || known_fn) {
          add(j, "unordered-iter",
              "range-for over unordered container '" + name +
                  "': iteration order is implementation-defined and leaks into event "
                  "scheduling/traces; iterate a sorted copy or use an ordered container");
          break;  // one finding per loop
        }
      }
    }
  }

  // ----- rng-discipline -----------------------------------------------
  void rule_rng_discipline() {
    static const std::set<std::string> kBannedEngines = {
        "mt19937",        "mt19937_64",     "minstd_rand",  "minstd_rand0",
        "default_random_engine", "ranlux24", "ranlux48",    "knuth_b",
        "mersenne_twister_engine", "linear_congruential_engine",
        "subtract_with_carry_engine", "shuffle_order_engine", "random_shuffle",
    };
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (!t.is_ident) continue;
      const bool has_distribution_suffix =
          t.text.size() > 13 &&
          t.text.compare(t.text.size() - 13, 13, "_distribution") == 0;
      if (kBannedEngines.contains(t.text) || has_distribution_suffix) {
        add(i, "rng-discipline",
            "'" + t.text +
                "' bypasses the forked named-stream Rng API; standard engines and "
                "distributions are implementation-defined across stdlibs and break "
                "portable trace digests (use aquamac::Rng, util/rng.hpp)");
        continue;
      }
      // `# include < random >` — the include is the tell even before use.
      if (t.text == "random" && i >= 2 && toks()[i - 1].text == "<" &&
          toks()[i - 2].text == "include" && i + 1 < toks().size() &&
          toks()[i + 1].text == ">") {
        add(i, "rng-discipline",
            "#include <random>: simulation code must draw through aquamac::Rng "
            "(util/rng.hpp), never the standard engines/distributions");
      }
    }
  }

  // ----- rng-root -----------------------------------------------------
  void rule_rng_root() {
    const std::vector<Token>& t = toks();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!(t[i].is_ident && t[i].text == "Rng")) continue;
      if (i >= 2 && t[i - 1].text == ":" && t[i - 2].text == ":") continue;  // qualified use
      std::size_t j = i + 1;
      while (j < t.size() && t[j].text == "const") ++j;
      if (j >= t.size() || !t[j].is_ident) continue;  // e.g. `Rng{...}` rvalue, `Rng&`
      const std::size_t name = j;
      ++j;
      if (j >= t.size()) continue;
      const std::string& open = t[j].text;
      if (open != "{" && open != "(" && open != "=") continue;  // param / member decl
      // Scan the initializer to the terminating `;` at depth 0. Two
      // adjacent identifiers inside the parens mean a parameter
      // declaration (`Rng fork(std::uint64_t stream_id)`) — a function
      // returning Rng, not a construction; empty parens likewise.
      bool has_fork = false;
      bool looks_like_fn_decl = open == "(" && j + 1 < t.size() && t[j + 1].text == ")";
      int depth = 0;
      std::size_t k = j;
      for (; k < t.size(); ++k) {
        const std::string& s = t[k].text;
        if (s == "(" || s == "{") ++depth;
        else if (s == ")" || s == "}") --depth;
        else if (s == ";" && depth == 0) break;
        else if (s == "," && depth == 0) break;  // parameter list, not a decl
        if (t[k].is_ident && s == "fork") has_fork = true;
        if (open == "(" && depth >= 1 && t[k].is_ident && k + 1 < t.size() &&
            t[k + 1].is_ident && s != "const") {
          looks_like_fn_decl = true;
        }
      }
      if (k >= t.size() || t[k].text != ";") continue;
      if (looks_like_fn_decl) continue;
      if (!has_fork) {
        add(name, "rng-root",
            "Rng '" + t[name].text +
                "' constructed without .fork(): only a run's designated root stream may "
                "be seeded directly; fork a named sub-stream so adding a consumer never "
                "perturbs existing draws");
      }
    }
  }

  // ----- raw-ns -------------------------------------------------------
  void rule_raw_ns() {
    static const std::set<std::string> kIntTypes = {
        "int", "long", "unsigned", "int32_t", "uint32_t", "int64_t", "uint64_t",
        "size_t", "auto",
    };
    static const std::set<std::string> kArith = {"+", "-", "*", "/", "%"};
    const std::vector<Token>& t = toks();
    for (std::size_t i = 0; i < t.size(); ++i) {
      // (a) arithmetic directly on a raw count_ns() value.
      if (t[i].is_ident && t[i].text == "count_ns" && i + 2 < t.size() &&
          t[i + 1].text == "(" && t[i + 2].text == ")") {
        const std::size_t after = i + 3;
        if (after < t.size() && kArith.contains(t[after].text)) {
          add(i, "raw-ns",
              "arithmetic on raw count_ns(): keep sim-time math inside "
              "Duration/Time (util/time.hpp) so units and rounding stay checked");
        }
      }
      // (b) integer variables named *_ns.
      if (t[i].is_ident && t[i].text.size() > 3 &&
          t[i].text.compare(t[i].text.size() - 3, 3, "_ns") == 0 && i >= 1 &&
          kIntTypes.contains(t[i - 1].text) && i + 1 < t.size() &&
          (t[i + 1].text == "=" || t[i + 1].text == "{" || t[i + 1].text == ";")) {
        add(i, "raw-ns",
            "integer nanosecond variable '" + t[i].text +
                "': use Duration/Time instead of raw ns integers in MAC/sim code");
      }
    }
  }

  const SourceFile& file_;
  const UnorderedSymbols& syms_;
  std::vector<Finding>& findings_;
};

}  // namespace

void run_lexical_rules(const SourceFile& file, const UnorderedSymbols& syms,
                       std::vector<Finding>& out) {
  LexicalLinter{file, syms, out}.run();
}

}  // namespace aquamac_lint

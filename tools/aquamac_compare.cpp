// aquamac_compare — sweep one parameter across protocols and print (or
// CSV-dump) any metric: the generic version of the per-figure benches.
//
//   aquamac_compare --x load --values 0.2,0.4,0.6,0.8 --metric throughput
//   aquamac_compare --x nodes --values 60,100,140 --metric power --reps 5
//   aquamac_compare --metric overhead --normalize --csv out.csv

#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "util/cli.hpp"

namespace {

using namespace aquamac;

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> values;
  std::stringstream ss{csv};
  std::string token;
  while (std::getline(ss, token, ',')) values.push_back(std::stod(token));
  if (values.empty()) throw std::invalid_argument("--values is empty");
  return values;
}

std::vector<MacKind> parse_protocols(const std::string& csv) {
  if (csv == "paper") {
    const auto& set = paper_comparison_set();
    return {set.begin(), set.end()};
  }
  std::vector<MacKind> kinds;
  std::stringstream ss{csv};
  std::string token;
  while (std::getline(ss, token, ',')) kinds.push_back(mac_kind_from_string(token));
  return kinds;
}

MetricFn metric_by_name(const std::string& name) {
  if (name == "throughput") return [](const MeanStats& m) { return m.throughput_kbps; };
  if (name == "delivery") return [](const MeanStats& m) { return m.delivery_ratio; };
  if (name == "power") return [](const MeanStats& m) { return m.mean_power_mw; };
  if (name == "energy") return [](const MeanStats& m) { return m.total_energy_j; };
  if (name == "overhead") return [](const MeanStats& m) { return m.overhead_bits; };
  if (name == "efficiency") return [](const MeanStats& m) { return m.efficiency_raw; };
  if (name == "latency") return [](const MeanStats& m) { return m.mean_latency_s; };
  if (name == "exectime") return [](const MeanStats& m) { return m.execution_time_s; };
  if (name == "collisions") return [](const MeanStats& m) { return m.rx_collisions; };
  if (name == "extras") return [](const MeanStats& m) { return m.extra_successes; };
  if (name == "fairness") return [](const MeanStats& m) { return m.fairness_index; };
  if (name == "e2e-delivery") return [](const MeanStats& m) { return m.e2e_delivery_ratio; };
  if (name == "hops") return [](const MeanStats& m) { return m.mean_hops; };
  if (name == "e2e-latency") return [](const MeanStats& m) { return m.mean_e2e_latency_s; };
  throw std::invalid_argument("unknown --metric " + name);
}

int run(const CliParser& cli) {
  ScenarioConfig base = paper_default_scenario();
  base.node_count = static_cast<std::size_t>(cli.get_int("nodes"));
  base.traffic.offered_load_kbps = cli.get_double("load");
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  base.jobs = static_cast<unsigned>(cli.get_int("jobs"));
  base.multi_hop = cli.get_bool("multi-hop");

  const std::vector<double> xs = parse_values(cli.get("values"));
  const std::vector<MacKind> protocols = parse_protocols(cli.get("protocols"));

  const std::string axis = cli.get("x");
  ConfigSetter setter;
  if (axis == "load") {
    setter = [](ScenarioConfig& c, double x) { c.traffic.offered_load_kbps = x; };
  } else if (axis == "nodes") {
    setter = [](ScenarioConfig& c, double x) { c.node_count = static_cast<std::size_t>(x); };
  } else if (axis == "packet-bits") {
    setter = [](ScenarioConfig& c, double x) {
      c.traffic.packet_bits_min = static_cast<std::uint32_t>(x);
      c.traffic.packet_bits_max = static_cast<std::uint32_t>(x);
    };
  } else if (axis == "range") {
    setter = [](ScenarioConfig& c, double x) {
      c.channel.comm_range_m = x;
      c.channel.interference_range_m = x;
    };
  } else {
    throw std::invalid_argument("--x must be load, nodes, packet-bits, or range");
  }

  const auto reps = static_cast<unsigned>(cli.get_int("reps"));
  const SweepResult sweep = run_sweep(base, protocols, xs, setter, reps);

  const MetricFn metric = metric_by_name(cli.get("metric"));
  const Table table = cli.get_bool("normalize")
                          ? sweep_table_normalized(sweep, axis, metric)
                          : sweep_table(sweep, axis, metric);

  if (cli.has("csv")) {
    std::ofstream out{cli.get("csv")};
    if (!out) throw std::invalid_argument("cannot open " + cli.get("csv"));
    table.print_csv(out);
    std::cout << "wrote " << cli.get("csv") << "\n";
  } else {
    table.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using aquamac::CliParser;
  CliParser cli{"aquamac_compare",
                {
                    {"x", "load", "swept axis: load, nodes, packet-bits, range"},
                    {"values", "0.2,0.4,0.6,0.8,1.0", "comma-separated x values"},
                    {"protocols", "paper", "comma-separated protocol names, or 'paper' for "
                                           "S-FAMA,ROPA,CS-MAC,EW-MAC"},
                    {"metric", "throughput", "throughput, delivery, power, energy, overhead, "
                                             "efficiency, latency, exectime, collisions, "
                                             "extras, fairness, e2e-delivery, hops, "
                                             "e2e-latency"},
                    {"normalize", "false", "divide each cell by the S-FAMA value (Figs. "
                                           "10/11 style)"},
                    {"reps", "3", "seed replications per point"},
                    {"nodes", "60", "node count when not the swept axis"},
                    {"load", "0.5", "offered load when not the swept axis"},
                    {"seed", "1", "base seed"},
                    {"jobs", "0", "worker threads for the sweep (0 = all cores, "
                                  "1 = serial; results are identical either way)"},
                    {"multi-hop", "false", "relay traffic to surface sinks (Fig.-1 mode)"},
                    {"csv", "", "write CSV here instead of printing a table"},
                }};
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    return run(cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}

// aquamac_sim — run one UASN MAC scenario from the command line.
//
//   aquamac_sim --mac EW-MAC --nodes 80 --load 0.6 --seed 3
//   aquamac_sim --mac CS-MAC --reception sinr --trace run.csv
//   aquamac_sim --help
//
// Prints the full metric block; optionally writes a per-event PHY + MAC
// trace (transmissions, receptions, FSM transitions, contention
// outcomes, extra-phase windows, neighbor updates) in CSV for external
// analysis/plotting.

#include <algorithm>
#include <fstream>
#include <iostream>

#include "harness/checkpoint_run.hpp"
#include "harness/config_io.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace aquamac;

int run(const CliParser& cli) {
  ScenarioConfig config = paper_default_scenario();
  if (cli.has("config")) config = load_scenario_file(cli.get("config"), config);
  config.mac = mac_kind_from_string(cli.get("mac"));
  config.node_count = static_cast<std::size_t>(cli.get_int("nodes"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.sim_time = Duration::from_seconds(cli.get_double("time"));
  config.traffic.offered_load_kbps = cli.get_double("load");
  config.traffic.packet_bits_min = static_cast<std::uint32_t>(cli.get_int("packet-bits"));
  config.traffic.packet_bits_max = config.traffic.packet_bits_min;
  config.enable_mobility = cli.get_bool("mobility");
  config.clock_offset_stddev_s = cli.get_double("clock-skew");
  config.multi_hop = cli.get_bool("multi-hop");
  config.routing = routing_kind_from_string(cli.get("routing"));
  config.routing_beacon = Duration::from_seconds(cli.get_double("routing-beacon-s"));
  config.reliability.max_retries = static_cast<std::uint32_t>(cli.get_int("relay-retries"));
  config.reliability.queue_limit = static_cast<std::uint32_t>(cli.get_int("relay-queue"));
  config.node_failure_fraction = cli.get_double("kill-fraction");
  config.shards = static_cast<unsigned>(std::max<std::int64_t>(1, cli.get_int("shards")));

  const std::string region = cli.get("region");
  if (region == "table2") {
    config.deployment = table2_deployment();
  } else if (region != "scaled") {
    throw std::invalid_argument("--region must be 'scaled' or 'table2'");
  }

  const std::string reception = cli.get("reception");
  if (reception == "sinr") {
    config.reception = ReceptionKind::kSinrPer;
  } else if (reception != "deterministic") {
    throw std::invalid_argument("--reception must be 'deterministic' or 'sinr'");
  }
  const std::string propagation = cli.get("propagation");
  if (propagation == "bellhop") {
    config.propagation = PropagationKind::kBellhopLite;
  } else if (propagation != "straight") {
    throw std::invalid_argument("--propagation must be 'straight' or 'bellhop'");
  }
  if (cli.get_bool("batch")) {
    config.traffic.mode = TrafficMode::kBatch;
    config.traffic.batch_packets = static_cast<std::uint32_t>(cli.get_int("batch-packets"));
  }

  std::ofstream trace_file;
  std::unique_ptr<CsvTrace> trace;
  if (cli.has("trace")) {
    trace_file.open(cli.get("trace"));
    if (!trace_file) throw std::invalid_argument("cannot open trace file " + cli.get("trace"));
    trace = std::make_unique<CsvTrace>(trace_file);
    config.trace = trace.get();
  }

  if (cli.get_bool("verbose")) config.logger = Logger::to_stderr(LogLevel::kDebug);

  if (cli.has("save-config")) {
    save_scenario_file(config, cli.get("save-config"));
    std::cout << "wrote scenario to " << cli.get("save-config") << "\n";
  }

  RunStats stats;
  if (cli.has("resume-from")) {
    // The snapshot embeds the exact capture scenario; the command line
    // contributes only execution-surface state (trace/log sinks, shards).
    const Checkpoint ckpt = read_checkpoint_file(cli.get("resume-from"));
    std::cout << "resuming from " << cli.get("resume-from") << " at " << ckpt.at.to_string()
              << " (digest-verified replay)\n\n";
    stats = resume_scenario(ckpt, config);
  } else {
    config.checkpoint_every = Duration::from_seconds(cli.get_double("checkpoint-every-s"));
    config.checkpoint_path = cli.get("checkpoint-out");
    std::cout << describe_scenario(config) << "\n";
    stats = run_scenario_checkpointing(config);
  }

  std::cout << "Results\n-------\n"
            << "throughput        " << stats.throughput_kbps << " kbps\n"
            << "offered load      " << stats.offered_load_kbps << " kbps\n"
            << "delivery ratio    " << stats.delivery_ratio << "\n"
            << "packets           " << stats.packets_delivered << " delivered, "
            << stats.packets_dropped << " dropped, " << stats.packets_offered << " offered\n"
            << "mean power        " << stats.mean_power_mw << " mW/node\n"
            << "total energy      " << stats.total_energy_j << " J\n"
            << "mean latency      " << stats.mean_latency_s << " s\n"
            << "execution time    " << stats.execution_time_s << " s\n"
            << "overhead bits     " << stats.overhead_bits() << "\n"
            << "fairness (Jain)   " << stats.fairness_index << "\n"
            << "handshakes        " << stats.handshake_successes << "/"
            << stats.handshake_attempts << "\n"
            << "extra comms       " << stats.extra_successes << "/" << stats.extra_attempts
            << "\n"
            << "collisions        " << stats.rx_collisions << "\n";
  if (config.multi_hop) {
    std::cout << "e2e delivery      " << stats.e2e_delivery_ratio << " ("
              << stats.e2e_arrived_at_sink << "/" << stats.e2e_originated << ")\n"
              << "mean hops         " << stats.mean_hops << "\n"
              << "e2e latency       " << stats.mean_e2e_latency_s << " s\n"
              << "hop stretch       " << stats.hop_stretch << "\n"
              << "per-hop latency   " << stats.mean_per_hop_latency_s << " s\n"
              << "routing drops     " << stats.e2e_dropped_no_route << " no-route, "
              << stats.e2e_dropped_hop_limit << " hop-limit, " << stats.e2e_dropped_mac
              << " mac\n";
    if (config.reliability.enabled()) {
      std::cout << "relay ARQ         " << stats.e2e_retransmissions << " retransmissions, "
                << stats.e2e_failovers << " failovers, " << stats.e2e_duplicates_suppressed
                << " dups suppressed\n"
                << "dead letters      " << stats.e2e_dead_letter_exhausted << " exhausted, "
                << stats.e2e_dead_letter_overflow << " overflow, "
                << stats.e2e_dead_letter_no_route << " no-route\n"
                << "relay queue hw    " << stats.relay_queue_highwater << "\n";
    }
  }
  if (cli.has("stats-json")) {
    std::ofstream json_os{cli.get("stats-json")};
    if (!json_os) {
      std::cerr << "cannot open " << cli.get("stats-json") << " for writing\n";
      return 1;
    }
    JsonWriter json{json_os};
    write_run_stats_json(json, stats);
    json_os << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using aquamac::CliParser;
  CliParser cli{"aquamac_sim",
                {
                    {"mac", "EW-MAC", "protocol: EW-MAC, S-FAMA, ROPA, CS-MAC, CW-MAC, "
                                      "S-ALOHA, DOTS"},
                    {"nodes", "60", "number of sensors"},
                    {"load", "0.5", "network-aggregate offered load in kbps"},
                    {"packet-bits", "2048", "data payload size in bits (Table 2: 1024-4096)"},
                    {"time", "300", "traffic duration in seconds"},
                    {"seed", "1", "random seed (runs are reproducible per seed)"},
                    {"region", "scaled", "deployment region: scaled (figure default) or "
                                         "table2 (paper-literal 1000 km^3)"},
                    {"reception", "deterministic", "reception model: deterministic (Eq. 1) or "
                                                   "sinr"},
                    {"propagation", "straight", "propagation: straight (1.5 km/s) or bellhop "
                                                "(ray-bent)"},
                    {"mobility", "true", "drift nodes with the paper's three mobility models"},
                    {"clock-skew", "0", "per-node clock offset stddev in seconds (sync "
                                        "imperfection)"},
                    {"multi-hop", "false", "relay traffic to surface sinks (Fig.-1 mode)"},
                    {"routing", "tree", "multi-hop next-hop source: greedy (depth rule), "
                                        "tree (static shortest-delay) or dv "
                                        "(distance-vector; docs/routing.md)"},
                    {"routing-beacon-s", "10", "DV beacon period in seconds; beacons carry "
                                               "the sinks' sequence waves but contend like "
                                               "any other frame, so dense single-cluster "
                                               "deployments want this larger"},
                    {"relay-retries", "0", "hop-by-hop custody retransmission budget per "
                                           "node (0 = ARQ off; docs/reliability.md)"},
                    {"relay-queue", "32", "bound on packets in relay custody per node"},
                    {"kill-fraction", "0", "fraction of nodes that die 60 s into traffic"},
                    {"shards", "1", "conservative-PDES shards for intra-run parallelism "
                                    "(results are bit-identical for every value)"},
                    {"batch", "false", "batch workload instead of Poisson (Figs. 8/9 mode)"},
                    {"batch-packets", "40", "packets injected at start in batch mode"},
                    {"trace", "", "write a per-event PHY + MAC trace CSV to this path"},
                    {"stats-json", "", "write the full RunStats metric block as one JSON "
                                       "object to this path"},
                    {"checkpoint-every-s", "0", "snapshot the run to --checkpoint-out every N "
                                                "sim seconds (0 = off)"},
                    {"checkpoint-out", "", "checkpoint file path (overwritten each snapshot)"},
                    {"resume-from", "", "resume from this checkpoint file (digest-verified "
                                        "replay; the scenario comes from the snapshot)"},
                    {"config", "", "load scenario defaults from a key=value file first"},
                    {"save-config", "", "write the effective scenario to this path"},
                    {"verbose", "false", "per-node debug logging to stderr"},
                }};
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    return run(cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}

#include "channel/propagation.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace aquamac {
namespace {

TEST(StraightLine, PaperDelayScale) {
  // §1: sound speed 1.5 km/s => 0.67 s/km; 1.5 km max range ~ 1 s.
  const StraightLinePropagation prop{1'500.0};
  const auto path = prop.compute(Vec3{0, 0, 100}, Vec3{1'500, 0, 100}, 10.0);
  EXPECT_NEAR(path.delay.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(path.length_m, 1'500.0, 1e-9);
  const auto km = prop.compute(Vec3{0, 0, 0}, Vec3{1'000, 0, 0}, 10.0);
  EXPECT_NEAR(km.delay.to_seconds(), 0.6667, 5e-4);
}

TEST(StraightLine, DelayProportionalToDistance) {
  const StraightLinePropagation prop{1'500.0};
  const auto half = prop.compute(Vec3{0, 0, 0}, Vec3{750, 0, 0}, 10.0);
  const auto full = prop.compute(Vec3{0, 0, 0}, Vec3{1'500, 0, 0}, 10.0);
  EXPECT_EQ(full.delay.count_ns(), 2 * half.delay.count_ns());
}

TEST(StraightLine, SymmetricPaths) {
  const StraightLinePropagation prop{1'500.0};
  const Vec3 a{100, 2'000, 300};
  const Vec3 b{900, 500, 2'500};
  const auto ab = prop.compute(a, b, 10.0);
  const auto ba = prop.compute(b, a, 10.0);
  EXPECT_EQ(ab.delay, ba.delay);
  EXPECT_DOUBLE_EQ(ab.loss_db, ba.loss_db);
}

TEST(StraightLine, ZeroDistance) {
  const StraightLinePropagation prop{1'500.0};
  const auto path = prop.compute(Vec3{5, 5, 5}, Vec3{5, 5, 5}, 10.0);
  EXPECT_EQ(path.delay, Duration::zero());
  EXPECT_GE(path.loss_db, 0.0);
}

TEST(BellhopLite, MatchesStraightLineWhenGradientVanishes) {
  const BellhopLitePropagation bent{std::make_shared<ConstantProfile>(1'500.0)};
  const StraightLinePropagation straight{1'500.0};
  const Vec3 a{0, 0, 500};
  const Vec3 b{1'200, 300, 1'500};
  const auto pb = bent.compute(a, b, 10.0);
  const auto ps = straight.compute(a, b, 10.0);
  EXPECT_NEAR(pb.delay.to_seconds(), ps.delay.to_seconds(), 1e-9);
  EXPECT_NEAR(pb.length_m, ps.length_m, 1e-6);
}

TEST(BellhopLite, VerticalPathUsesExactLogFormula) {
  const double c0 = 1'480.0;
  const double g = 0.017;
  const BellhopLitePropagation prop{std::make_shared<LinearProfile>(c0, g)};
  const double za = 100.0;
  const double zb = 3'100.0;
  const auto path = prop.compute(Vec3{0, 0, za}, Vec3{0, 0, zb}, 10.0);
  const double expected = std::log((c0 + g * zb) / (c0 + g * za)) / g;
  EXPECT_NEAR(path.delay.to_seconds(), expected, 1e-9);
  EXPECT_NEAR(path.length_m, zb - za, 1e-9);
}

TEST(BellhopLite, BentPathIsAtLeastChordLengthAndFaster) {
  // Fermat: the eigenray minimizes travel time, so its delay must not
  // exceed the straight-chord travel time through the same medium; its
  // geometric length must be >= the chord.
  const auto profile = std::make_shared<LinearProfile>(1'480.0, 0.017);
  const BellhopLitePropagation prop{profile};
  const Vec3 a{0, 0, 200};
  const Vec3 b{4'000, 0, 3'800};
  const auto bent = prop.compute(a, b, 10.0);

  const double chord = a.distance_to(b);
  const double chord_time = chord * profile->mean_slowness(a.z, b.z);
  EXPECT_GE(bent.length_m, chord - 1e-6);
  EXPECT_LE(bent.delay.to_seconds(), chord_time + 1e-9);
  // The bend is small but real for this gradient/geometry.
  EXPECT_GT(bent.length_m, chord * (1.0 + 1e-7));
}

TEST(BellhopLite, SymmetricPaths) {
  const BellhopLitePropagation prop{std::make_shared<LinearProfile>(1'480.0, 0.017)};
  const Vec3 a{0, 0, 300};
  const Vec3 b{2'500, 1'000, 3'500};
  const auto ab = prop.compute(a, b, 10.0);
  const auto ba = prop.compute(b, a, 10.0);
  EXPECT_NEAR(ab.delay.to_seconds(), ba.delay.to_seconds(), 1e-9);
  EXPECT_NEAR(ab.length_m, ba.length_m, 1e-6);
}

TEST(BellhopLite, HorizontalPathInGradient) {
  // Equal depths in a gradient: the ray arcs above/below the chord but
  // remains finite and sane.
  const BellhopLitePropagation prop{std::make_shared<LinearProfile>(1'480.0, 0.017)};
  const Vec3 a{0, 0, 1'000};
  const Vec3 b{1'400, 0, 1'000};
  const auto path = prop.compute(a, b, 10.0);
  EXPECT_GT(path.delay.to_seconds(), 0.8);
  EXPECT_LT(path.delay.to_seconds(), 1.1);
  EXPECT_GE(path.length_m, 1'400.0 - 1e-6);
}

TEST(BellhopLite, DelayDiffersFromConstantSpeedModel) {
  // The substitution's purpose: depth-dependent speed shifts delays
  // relative to the 1.5 km/s straight-line model.
  const BellhopLitePropagation bent{std::make_shared<LinearProfile>(1'470.0, 0.017)};
  const StraightLinePropagation straight{1'500.0};
  const Vec3 a{0, 0, 200};
  const Vec3 b{1'000, 0, 600};
  EXPECT_NE(bent.compute(a, b, 10.0).delay.count_ns(),
            straight.compute(a, b, 10.0).delay.count_ns());
}

TEST(BellhopLite, MunkProfileDeepChannel) {
  const BellhopLitePropagation prop{std::make_shared<MunkProfile>()};
  const auto path = prop.compute(Vec3{0, 0, 1'000}, Vec3{1'500, 0, 1'600}, 10.0);
  EXPECT_GT(path.delay.to_seconds(), 0.9);
  EXPECT_LT(path.delay.to_seconds(), 1.2);
}

}  // namespace
}  // namespace aquamac

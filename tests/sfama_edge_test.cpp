// S-FAMA edges: timeout paths, duplicate suppression after lost Acks,
// receiver-busy refusals, and hidden-terminal recovery.

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(SFamaEdge, ReceiverBusyIgnoresSecondRts) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  const NodeId a = bed.add_node(MacKind::kSFama, Vec3{0, 0, 900});
  const NodeId b = bed.add_node(MacKind::kSFama, Vec3{600, 0, 900});
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(r, 12'000);  // long exchange
  // b tries mid-exchange; r must not CTS it until a's exchange ends.
  bed.sim().at(Time::from_seconds(8.0), [&] { bed.mac(b).enqueue_packet(r, 2'048); });
  bed.sim().run_until(Time::from_seconds(120.0));

  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
  EXPECT_EQ(bed.counters(a).packets_dropped + bed.counters(b).packets_dropped, 0u);
}

TEST(SFamaEdge, HiddenTerminalResolvedByRetries) {
  // a and b cannot hear each other (2.4 km apart) but share receiver r:
  // the classic hidden-terminal topology. RTS/CTS plus retries must get
  // both packets through.
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  const NodeId a = bed.add_node(MacKind::kSFama, Vec3{1'200, 0, 0});
  const NodeId b = bed.add_node(MacKind::kSFama, Vec3{-1'200, 0, 0});
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(r, 2'048);
  bed.mac(b).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
}

TEST(SFamaEdge, DuplicateDataAfterLostAckIsSuppressed) {
  // Force an Ack loss with a jammer timed at the Ack slot; the sender
  // retries the full handshake and the receiver recognizes the duplicate:
  // delivered counts once, duplicates counts the rest.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 900});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  const NodeId jam = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 600, 900});
  const NodeId jam_sink = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 2'000, 900});
  bed.hello_and_settle();
  for (int i = 0; i < 6; ++i) bed.mac(jam).enqueue_packet(jam_sink, 12'000);
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));

  const auto& rc = bed.counters(r);
  const auto& sc = bed.counters(s);
  EXPECT_LE(rc.packets_delivered, 1u);
  if (rc.duplicate_deliveries > 0) {
    EXPECT_EQ(rc.packets_delivered, 1u)
        << "duplicates imply the original was delivered once";
  }
  EXPECT_EQ(sc.packets_sent_ok + sc.packets_dropped, 1u);
}

TEST(SFamaEdge, BackoffWindowGrowsUnderRepeatedFailure) {
  // Unreachable destination: consecutive RTS attempts must spread out
  // (binary exponential backoff), i.e. gaps are non-decreasing on average
  // and eventually exceed the initial window.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  bed.add_node(MacKind::kSFama, Vec3{0, 0, 4'000});
  std::vector<Time> rts_times;
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kRts) rts_times.push_back(audit.tx_window.begin);
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(1, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));

  MacConfig config{};
  ASSERT_EQ(rts_times.size(), static_cast<std::size_t>(config.max_retries) + 1);
  // The last gap must exceed the first (cw doubled several times).
  const auto first_gap = rts_times[1] - rts_times[0];
  const auto last_gap = rts_times.back() - rts_times[rts_times.size() - 2];
  EXPECT_GT(last_gap.count_ns(), first_gap.count_ns());
}

TEST(SFamaEdge, CtsTimeoutCountsContentionLoss) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  bed.add_node(MacKind::kSFama, Vec3{0, 0, 4'000});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(1, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));
  MacConfig config{};
  EXPECT_EQ(bed.counters(s).contention_losses, config.max_retries + 1u);
}

TEST(SFamaEdge, SimultaneousMutualRtsDeadlockResolves) {
  // a wants to send to b while b wants to send to a: both transmit RTS in
  // the same slot, both are busy when the peer's RTS arrives, both time
  // out — desynchronized backoff must break the symmetry.
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  const NodeId b = bed.add_node(MacKind::kSFama, Vec3{0, 0, 900});
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(b, 2'048);
  bed.mac(b).enqueue_packet(a, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));
  EXPECT_EQ(bed.counters(a).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(b).packets_delivered, 1u);
}

TEST(SFamaEdge, LargePacketSpansManySlots) {
  // 24 kb data = 2 s airtime: occupies 3 slots with a 0.6 s pair delay;
  // the exchange must still complete and honour Eq. 5.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 900});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  Time data_tx{};
  Time ack_tx{};
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kData) data_tx = audit.tx_window.begin;
    if (audit.frame.type == FrameType::kAck) ack_tx = audit.tx_window.begin;
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 24'000);
  bed.sim().run_until(Time::from_seconds(60.0));

  EXPECT_EQ(bed.counters(r).bits_delivered, 24'000u);
  const Duration slot = testbed::default_slot();
  const Duration airtime = Duration::from_seconds(2.0);
  const Duration tau = Duration::from_seconds(0.6);
  EXPECT_EQ((ack_tx - data_tx).count_ns(),
            (slot * (airtime + tau).divide_ceil(slot)).count_ns());
}

}  // namespace
}  // namespace aquamac

// Runtime companion to aquamac-lint's ckpt-coverage rule: after
// exercising each subsystem to a mid-run state (queues populated,
// handshakes pending, routes learned, custody in flight), the
// save -> restore -> save round trip must be byte-identical and leave no
// trailing payload. The static rule proves every member is *referenced*
// in both codec directions; this test proves the references actually
// encode and decode symmetrically. Targeted regressions at the bottom
// pin the misses the rule surfaced: DvRouter's explicit last_best_
// serialization, the relay reliability-config cross-check, and the MAC
// event-handle armed-bit cross-check.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "harness/scenario.hpp"
#include "mac/mac_factory.hpp"
#include "net/dv_router.hpp"
#include "net/network.hpp"
#include "net/relay.hpp"
#include "sim/checkpoint.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

/// Runs `config` to `capture_s`, snapshots the live network there, and
/// byte-compares the restore round trip (Network::verify_restore throws
/// CheckpointError naming the first diverging section on any drift).
void expect_roundtrip_clean(ScenarioConfig config, double capture_s) {
  Simulator sim{config.logger};
  Network network{sim, config};
  bool captured = false;
  RunBoundaryHooks hooks;
  hooks.boundaries = {Time::from_seconds(capture_s)};
  hooks.on_boundary = [&](Time) {
    StateWriter writer;
    network.save_state(writer);
    EXPECT_GT(writer.bytes().size(), 0u);
    EXPECT_NO_THROW(network.verify_restore(writer.bytes()));
    captured = true;
    return false;  // mid-run state is the interesting capture; stop here
  };
  network.run(hooks);
  EXPECT_TRUE(captured) << "boundary hook never fired";
}

TEST(CkptFieldCoverage, EveryMacRoundTripsMidRun) {
  for (const MacKind kind :
       {MacKind::kEwMac, MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac, MacKind::kCwMac,
        MacKind::kSlottedAloha, MacKind::kDots, MacKind::kMacaU}) {
    SCOPED_TRACE(std::string{to_string(kind)});
    ScenarioConfig config = small_test_scenario();
    config.mac = kind;
    expect_roundtrip_clean(config, 30.0);
  }
}

TEST(CkptFieldCoverage, MobilityStateRoundTrips) {
  ScenarioConfig config = small_test_scenario();
  config.enable_mobility = true;
  expect_roundtrip_clean(config, 30.0);
}

TEST(CkptFieldCoverage, MultiHopTreeRoutingRoundTrips) {
  ScenarioConfig config = small_test_scenario();
  config.multi_hop = true;
  config.routing = RoutingKind::kTree;
  expect_roundtrip_clean(config, 30.0);
}

TEST(CkptFieldCoverage, MultiHopDvWithReliabilityRoundTrips) {
  ScenarioConfig config = small_test_scenario();
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.reliability.max_retries = 2;
  config.reliability.queue_limit = 8;
  expect_roundtrip_clean(config, 30.0);
}

TEST(CkptFieldCoverage, FaultPlanAndClockSkewRoundTrip) {
  ScenarioConfig config = small_test_scenario();
  config.clock_offset_stddev_s = 0.01;
  config.node_failure_fraction = 0.2;
  config.node_failure_time = Duration::seconds(10);
  config.fault.drift_ppm_stddev = 5.0;
  config.fault.drift_jitter_stddev_s = 0.001;
  config.fault.outage_rate_per_hour = 20.0;
  config.fault.ge_p_bad = 0.05;
  expect_roundtrip_clean(config, 35.0);
}

// --- DvRouter: last_best_ travels in the payload -----------------------
//
// Restoring into a default-constructed router must reproduce the exact
// bytes, including the change-detection baseline. A restore that derived
// last_best_ from the entries instead of decoding it would desynchronize
// change suppression after resume (regression for the omission the
// ckpt-coverage rule surfaced).
TEST(CkptFieldCoverage, DvRouterRoundTripsIntoFreshRouter) {
  DvRouter source{/*self=*/3, /*is_sink=*/false};
  Frame ad{};
  ad.src = 1;
  ad.route_valid = true;
  ad.route_sink = 0;
  ad.route_seq = 4;
  ad.route_cost = Duration::seconds(2);
  ad.route_hops = 1;
  source.observe(ad, Duration::seconds(1), Time::from_seconds(5.0));
  ASSERT_NE(source.best(), nullptr);

  // A second, worse route that then gets invalidated: the payload must
  // carry invalid entries too, not just the winners.
  Frame worse{};
  worse.src = 2;
  worse.route_valid = true;
  worse.route_sink = 5;
  worse.route_seq = 2;
  worse.route_cost = Duration::seconds(9);
  worse.route_hops = 3;
  source.observe(worse, Duration::seconds(2), Time::from_seconds(6.0));
  source.neighbor_down(2);

  StateWriter writer;
  source.save_state(writer);

  DvRouter fresh{/*self=*/3, /*is_sink=*/false};
  StateReader reader{writer.bytes()};
  fresh.restore_state(reader);
  EXPECT_EQ(reader.remaining(), 0u);

  StateWriter round_trip;
  fresh.save_state(round_trip);
  EXPECT_EQ(round_trip.bytes(), writer.bytes());
  ASSERT_NE(fresh.best(), nullptr);
  EXPECT_EQ(fresh.best()->via, 1u);
  EXPECT_EQ(fresh.entries().size(), source.entries().size());
}

// --- RelayAgent: the payload layout branches on the ARQ config ---------
TEST(CkptFieldCoverage, RelayRestoreRejectsReliabilityConfigMismatch) {
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const auto next_hop = [](NodeId) -> std::optional<NodeId> { return std::nullopt; };

  ReliabilityConfig arq;
  arq.max_retries = 2;
  RelayAgent with_arq{bed.sim(), bed.mac(a), a, /*is_sink=*/false, next_hop,
                      /*hop_limit=*/16, arq};
  StateWriter writer;
  with_arq.save_state(writer);

  RelayAgent without_arq{bed.sim(), bed.mac(a), a, /*is_sink=*/false, next_hop,
                         /*hop_limit=*/16, ReliabilityConfig{}};
  StateReader reader{writer.bytes()};
  EXPECT_THROW(without_arq.restore_state(reader), CheckpointError);

  // And the converse: an ARQ-off payload into an ARQ-on agent.
  StateWriter off_writer;
  without_arq.save_state(off_writer);
  StateReader off_reader{off_writer.bytes()};
  EXPECT_THROW(with_arq.restore_state(off_reader), CheckpointError);
}

// --- MAC event handles: the armed bit is cross-checked on restore ------
//
// A payload captured while an attempt event was armed must be rejected
// when restored onto a MAC whose replayed schedule has no such event
// (read_handle's divergence check). The same payload restores cleanly
// onto the MAC that produced it.
TEST(CkptFieldCoverage, MacRestoreRejectsHandleArmedBitDivergence) {
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 0, 1'000});
  const NodeId b = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 0, 1'500});
  bed.hello_and_settle();

  bed.mac(a).enqueue_packet(b, 1'024);  // arms the attempt event
  StateWriter armed;
  bed.mac(a).save_state(armed);

  StateReader self_reader{armed.bytes()};
  EXPECT_NO_THROW(bed.mac(a).restore_state(self_reader));

  // The idle node never armed an attempt: restoring the armed payload
  // onto it must fail the cross-check instead of silently desyncing.
  StateReader cross_reader{armed.bytes()};
  EXPECT_THROW(bed.mac(b).restore_state(cross_reader), CheckpointError);
}

}  // namespace
}  // namespace aquamac

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(SlottedAloha, SinglePairDelivery) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(s).frames_sent[frame_type_index(FrameType::kRts)], 0u)
      << "ALOHA never negotiates";
  EXPECT_EQ(bed.counters(s).packets_sent_ok, 1u);
}

TEST(SlottedAloha, CollidingSendersRecoverViaBackoff) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 0, 0});
  // Equidistant senders: same-slot DATA frames collide at r.
  const NodeId a = bed.add_node(MacKind::kSlottedAloha, Vec3{700, 0, 0});
  const NodeId b = bed.add_node(MacKind::kSlottedAloha, Vec3{-700, 0, 0});
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(r, 2'048);
  bed.mac(b).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));

  EXPECT_EQ(bed.counters(r).packets_delivered, 2u) << "backoff desynchronizes retries";
  EXPECT_GT(bed.counters(r).rx_collisions, 0u) << "the first attempt really collided";
  EXPECT_GT(bed.counters(a).retransmitted_frames + bed.counters(b).retransmitted_frames, 0u);
}

TEST(SlottedAloha, DropsAfterRetryBudget) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 0, 0});
  bed.add_node(MacKind::kSlottedAloha, Vec3{0, 0, 4'000});  // unreachable
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(1, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));
  EXPECT_EQ(bed.counters(s).packets_dropped, 1u);
  EXPECT_EQ(bed.mac(s).queue_depth(), 0u);
}

TEST(CwMac, SinglePairDelivery) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kCwMac, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kCwMac, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(60.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(s).packets_sent_ok, 1u);
}

TEST(CwMac, DefersWhileNeighborTransmits) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kCwMac, Vec3{0, 0, 0});
  const NodeId a = bed.add_node(MacKind::kCwMac, Vec3{600, 0, 0});
  const NodeId b = bed.add_node(MacKind::kCwMac, Vec3{300, 0, 0});  // hears a
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(r, 8'192);  // long frame
  bed.sim().at(Time::from_seconds(7.0), [&] { bed.mac(b).enqueue_packet(r, 2'048); });
  bed.sim().run_until(Time::from_seconds(200.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
}

TEST(CwMac, ManySendersEventuallyDrain) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kCwMac, Vec3{0, 0, 0});
  std::vector<NodeId> senders;
  for (int i = 0; i < 4; ++i) {
    senders.push_back(bed.add_node(
        MacKind::kCwMac, Vec3{500.0 * std::cos(i * 1.5), 500.0 * std::sin(i * 1.5), 0}));
  }
  bed.hello_and_settle();
  for (const NodeId s : senders) bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 4u);
}

}  // namespace
}  // namespace aquamac

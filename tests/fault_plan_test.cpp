#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "stats/trace.hpp"

namespace aquamac {
namespace {

[[nodiscard]] Duration total_covered(const std::vector<TimeInterval>& intervals) {
  Duration sum = Duration::zero();
  for (const TimeInterval& iv : intervals) sum += iv.end - iv.begin;
  return sum;
}

TEST(FaultPlan, DefaultConfigIsDisabled) {
  // The strict no-op guarantee hinges on this: a default-constructed
  // FaultConfig must never cause a FaultPlan to be built.
  const FaultConfig config{};
  EXPECT_FALSE(config.drift_enabled());
  EXPECT_FALSE(config.outages_enabled());
  EXPECT_FALSE(config.channel_enabled());
  EXPECT_FALSE(config.enabled());
  EXPECT_FALSE(ScenarioConfig{}.fault.enabled());
}

TEST(FaultPlan, EnabledPredicatesTrackTheirKnobs) {
  FaultConfig config{};
  config.drift_ppm_stddev = 100.0;
  EXPECT_TRUE(config.drift_enabled());
  EXPECT_FALSE(config.outages_enabled());

  config = FaultConfig{};
  config.duty_cycle = 0.5;
  EXPECT_TRUE(config.outages_enabled());
  EXPECT_FALSE(config.channel_enabled());

  config = FaultConfig{};
  config.ge_p_bad = 0.1;
  EXPECT_TRUE(config.channel_enabled());

  config = FaultConfig{};
  config.storm_rate_per_hour = 1.0;
  EXPECT_TRUE(config.channel_enabled());
}

TEST(FaultPlan, DeterministicRealization) {
  FaultConfig config{};
  config.drift_ppm_stddev = 500.0;
  config.drift_jitter_stddev_s = 0.001;
  config.outage_rate_per_hour = 30.0;
  config.ge_p_bad = 0.05;
  config.storm_rate_per_hour = 4.0;
  const Time horizon = Time::from_seconds(600.0);

  const FaultPlan a{config, 8, horizon, Rng{42}};
  const FaultPlan b{config, 8, horizon, Rng{42}};
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_EQ(a.drift_ppm(i), b.drift_ppm(i));
    EXPECT_EQ(a.jitter_steps(i), b.jitter_steps(i));
    ASSERT_EQ(a.down_intervals(i).size(), b.down_intervals(i).size());
    for (std::size_t k = 0; k < a.down_intervals(i).size(); ++k) {
      EXPECT_EQ(a.down_intervals(i)[k].begin, b.down_intervals(i)[k].begin);
      EXPECT_EQ(a.down_intervals(i)[k].end, b.down_intervals(i)[k].end);
    }
    EXPECT_EQ(a.ge_bad_intervals(i).size(), b.ge_bad_intervals(i).size());
  }
  ASSERT_EQ(a.storms().size(), b.storms().size());

  // A different seed realizes a different timeline (drift alone suffices).
  const FaultPlan c{config, 8, horizon, Rng{43}};
  bool any_differs = false;
  for (NodeId i = 0; i < 8; ++i) any_differs = any_differs || a.drift_ppm(i) != c.drift_ppm(i);
  EXPECT_TRUE(any_differs);
}

TEST(FaultPlan, RealizationDoesNotPerturbTheRootStream) {
  // fork() is const: building a plan must not advance the run's root RNG.
  FaultConfig config{};
  config.drift_ppm_stddev = 500.0;
  config.outage_rate_per_hour = 60.0;
  config.ge_p_bad = 0.1;
  config.storm_rate_per_hour = 4.0;

  Rng probe_a{7};
  Rng probe_b{7};
  const FaultPlan plan{config, 4, Time::from_seconds(300.0), probe_a};
  (void)plan;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(probe_a(), probe_b());
  }
}

TEST(FaultPlan, IntervalSetContains) {
  const std::vector<TimeInterval> set{
      TimeInterval{Time::from_seconds(1.0), Time::from_seconds(2.0)},
      TimeInterval{Time::from_seconds(5.0), Time::from_seconds(6.0)},
  };
  EXPECT_FALSE(interval_set_contains(set, Time::from_seconds(0.5)));
  EXPECT_TRUE(interval_set_contains(set, Time::from_seconds(1.0)));
  EXPECT_TRUE(interval_set_contains(set, Time::from_seconds(1.999)));
  EXPECT_FALSE(interval_set_contains(set, Time::from_seconds(2.0))) << "closed-open";
  EXPECT_FALSE(interval_set_contains(set, Time::from_seconds(3.0)));
  EXPECT_TRUE(interval_set_contains(set, Time::from_seconds(5.5)));
  EXPECT_FALSE(interval_set_contains(set, Time::from_seconds(7.0)));
  EXPECT_FALSE(interval_set_contains({}, Time::zero()));
}

TEST(FaultPlan, DownIntervalsAreSortedDisjointAndClipped) {
  FaultConfig config{};
  config.outage_rate_per_hour = 240.0;  // dense, to force merges
  config.outage_mean_duration = Duration::seconds(30);
  config.duty_cycle = 0.8;
  config.duty_period = Duration::seconds(50);
  const Time horizon = Time::from_seconds(1'000.0);
  const FaultPlan plan{config, 6, horizon, Rng{11}};

  for (NodeId i = 0; i < 6; ++i) {
    const auto& down = plan.down_intervals(i);
    ASSERT_FALSE(down.empty()) << "duty cycling alone guarantees sleep windows";
    for (std::size_t k = 0; k < down.size(); ++k) {
      EXPECT_TRUE(down[k].begin < down[k].end);
      EXPECT_TRUE(down[k].end <= horizon);
      if (k > 0) {
        EXPECT_TRUE(down[k - 1].end < down[k].begin) << "sorted and disjoint";
      }
    }
  }
}

TEST(FaultPlan, DutyCycleSleepFractionMatches) {
  FaultConfig config{};
  config.duty_cycle = 0.75;
  config.duty_period = Duration::seconds(40);
  const Time horizon = Time::from_seconds(4'000.0);
  const FaultPlan plan{config, 3, horizon, Rng{5}};
  for (NodeId i = 0; i < 3; ++i) {
    const double asleep = total_covered(plan.down_intervals(i)).to_seconds() /
                          (horizon - Time::zero()).to_seconds();
    EXPECT_NEAR(asleep, 0.25, 0.02) << "node " << i;
  }
}

TEST(FaultPlan, GilbertElliottStationaryDistribution) {
  // pi_bad = p_bad / (p_bad + p_good) = 0.075 / 0.375 = 0.2. With a
  // 100 ms step over 4000 s the chain takes 40k transitions per node, so
  // the occupied-time fraction concentrates tightly around pi_bad.
  FaultConfig config{};
  config.ge_p_bad = 0.075;
  config.ge_p_good = 0.3;
  config.ge_loss_bad = 1.0;
  const Time horizon = Time::from_seconds(4'000.0);
  const FaultPlan plan{config, 4, horizon, Rng{17}};

  const double span_s = (horizon - Time::zero()).to_seconds();
  double mean_bad = 0.0;
  for (NodeId i = 0; i < 4; ++i) {
    const double bad = total_covered(plan.ge_bad_intervals(i)).to_seconds() / span_s;
    EXPECT_NEAR(bad, 0.2, 0.05) << "node " << i;
    mean_bad += bad / 4.0;
  }
  EXPECT_NEAR(mean_bad, 0.2, 0.025);
}

TEST(FaultPlan, ArrivalLostIsCertainInBadStateWithUnitLoss) {
  // With loss_bad = 1 and loss_good = 0 the Bernoulli draws are
  // degenerate, so arrival_lost must equal bad-interval membership.
  FaultConfig config{};
  config.ge_p_bad = 0.1;
  config.ge_p_good = 0.2;
  config.ge_loss_bad = 1.0;
  config.ge_loss_good = 0.0;
  const Time horizon = Time::from_seconds(200.0);
  FaultPlan plan{config, 2, horizon, Rng{23}};

  for (NodeId node = 0; node < 2; ++node) {
    ASSERT_FALSE(plan.ge_bad_intervals(node).empty());
    for (int k = 0; k < 400; ++k) {
      const Time at = Time::from_seconds(0.5 * k);
      EXPECT_EQ(plan.arrival_lost(node, at),
                interval_set_contains(plan.ge_bad_intervals(node), at));
    }
  }
}

TEST(FaultPlan, StormLossAppliesToEveryReceiver) {
  FaultConfig config{};
  config.storm_rate_per_hour = 60.0;
  config.storm_mean_duration = Duration::seconds(10);
  config.storm_loss_prob = 1.0;
  const Time horizon = Time::from_seconds(1'000.0);
  FaultPlan plan{config, 3, horizon, Rng{31}};

  ASSERT_FALSE(plan.storms().empty());
  const TimeInterval storm = plan.storms().front();
  const Time inside =
      storm.begin + Duration::nanoseconds((storm.end - storm.begin).count_ns() / 2);
  for (NodeId node = 0; node < 3; ++node) {
    EXPECT_TRUE(plan.arrival_lost(node, inside));
  }
  // Clearly outside every storm: just before the first one.
  if (storm.begin > Time::zero()) {
    for (NodeId node = 0; node < 3; ++node) {
      EXPECT_FALSE(plan.arrival_lost(node, storm.begin - Duration::nanoseconds(1)));
    }
  }
}

TEST(FaultPlan, ClockErrorRangeBoundsRealizedError) {
  FaultConfig config{};
  config.drift_ppm_stddev = 2'000.0;
  config.drift_jitter_stddev_s = 0.002;
  config.drift_jitter_interval = Duration::seconds(10);
  const Time horizon = Time::from_seconds(120.0);
  const FaultPlan plan{config, 5, horizon, Rng{3}};

  for (NodeId node = 0; node < 5; ++node) {
    const auto [lo, hi] = plan.clock_error_range(node);
    EXPECT_TRUE(lo <= hi);
    // Reconstruct the error trajectory exactly as the modem realizes it:
    // drift is linear in time, each jitter step k lands at (k+1)*interval.
    const auto& steps = plan.jitter_steps(node);
    Duration jitter = Duration::zero();
    for (int s = 0; s <= 120; ++s) {
      const Time t = Time::from_seconds(static_cast<double>(s));
      std::size_t applied = 0;
      jitter = Duration::zero();
      for (const Duration step : steps) {
        const Time step_at = Time::zero() + config.drift_jitter_interval * static_cast<std::int64_t>(applied + 1);
        if (step_at > t) break;
        jitter += step;
        applied += 1;
      }
      const Duration error =
          jitter + Duration::from_seconds(plan.drift_ppm(node) * 1e-6 * t.to_seconds());
      EXPECT_TRUE(lo <= error && error <= hi)
          << "node " << node << " at t=" << s << "s: error " << error.to_string()
          << " outside [" << lo.to_string() << ", " << hi.to_string() << "]";
    }
  }
}

TEST(FaultPlan, RealizedClockUncertaintyCoversStaticOffsetAndDrift) {
  ScenarioConfig config = small_test_scenario();
  EXPECT_TRUE(realized_clock_uncertainty(config).is_zero()) << "perfect sync";

  config.clock_offset_stddev_s = 0.01;
  const Duration offset_only = realized_clock_uncertainty(config);
  EXPECT_TRUE(offset_only > Duration::zero());

  config.fault.drift_ppm_stddev = 5'000.0;
  const Duration with_drift = realized_clock_uncertainty(config);
  EXPECT_TRUE(with_drift > offset_only) << "drift can only widen the spread";
}

TEST(FaultPlanParallel, ReplicatedStatsIdenticalAcrossJobCounts) {
  // The FaultPlan realizes per-run from (config, seed) and owns no shared
  // state, so fault-injected replications must stay bit-identical between
  // the serial and threaded harness paths (CI replays this under TSan).
  ScenarioConfig base = small_test_scenario();
  base.sim_time = Duration::seconds(30);
  base.fault.drift_ppm_stddev = 1'000.0;
  base.fault.outage_rate_per_hour = 60.0;
  base.fault.outage_mean_duration = Duration::seconds(5);
  base.fault.ge_p_bad = 0.05;

  const std::vector<RunStats> serial = run_replicated_parallel(base, 4, 1);
  const std::vector<RunStats> threaded = run_replicated_parallel(base, 4, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].packets_offered, threaded[k].packets_offered);
    EXPECT_EQ(serial[k].packets_delivered, threaded[k].packets_delivered);
    EXPECT_EQ(serial[k].bits_delivered, threaded[k].bits_delivered);
    EXPECT_DOUBLE_EQ(serial[k].total_energy_j, threaded[k].total_energy_j);
  }
}

TEST(FaultPlanParallel, FaultRunsDigestDeterministically) {
  ScenarioConfig config = small_test_scenario();
  config.sim_time = Duration::seconds(30);
  config.fault.drift_ppm_stddev = 1'000.0;
  config.fault.outage_rate_per_hour = 120.0;
  config.fault.outage_mean_duration = Duration::seconds(5);

  HashTrace a;
  HashTrace b;
  config.trace = &a;
  (void)run_scenario(config);
  config.trace = &b;
  (void)run_scenario(config);
  EXPECT_EQ(a.digest(), b.digest());
}

}  // namespace
}  // namespace aquamac

#include "channel/sound_speed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aquamac {
namespace {

TEST(ConstantProfile, IsConstant) {
  const ConstantProfile profile{1'500.0};
  EXPECT_DOUBLE_EQ(profile.speed_at(0.0), 1'500.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(10'000.0), 1'500.0);
  EXPECT_DOUBLE_EQ(profile.gradient_at(500.0), 0.0);
  EXPECT_DOUBLE_EQ(profile.mean_slowness(0.0, 5'000.0), 1.0 / 1'500.0);
}

TEST(LinearProfile, SpeedAndGradient) {
  const LinearProfile profile{1'480.0, 0.017};
  EXPECT_DOUBLE_EQ(profile.speed_at(0.0), 1'480.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(1'000.0), 1'497.0);
  EXPECT_NEAR(profile.gradient_at(500.0), 0.017, 1e-9);
}

TEST(LinearProfile, MeanSlownessMatchesAnalyticIntegral) {
  // For c(z) = c0 + g z, the exact mean slowness between za and zb is
  // ln(c(zb)/c(za)) / (g (zb - za)); the 16-point trapezoid must be close.
  const double c0 = 1'480.0;
  const double g = 0.017;
  const LinearProfile profile{c0, g};
  const double za = 100.0;
  const double zb = 4'000.0;
  const double exact = std::log(profile.speed_at(zb) / profile.speed_at(za)) / (g * (zb - za));
  EXPECT_NEAR(profile.mean_slowness(za, zb), exact, exact * 1e-6);
}

TEST(MunkProfile, MinimumAtAxis) {
  const MunkProfile profile{};
  const double at_axis = profile.speed_at(1'300.0);
  EXPECT_DOUBLE_EQ(at_axis, 1'500.0);
  EXPECT_GT(profile.speed_at(0.0), at_axis);
  EXPECT_GT(profile.speed_at(5'000.0), at_axis);
  // Canonical Munk surface speed: c(0) = 1500 (1 + eps (e^2 - 3)) ~ 1548.5.
  EXPECT_NEAR(profile.speed_at(0.0), 1'548.5, 0.5);
}

TEST(TabulatedProfile, InterpolatesAndClamps) {
  const TabulatedProfile profile{{{0.0, 1'500.0}, {1'000.0, 1'480.0}, {3'000.0, 1'520.0}}};
  EXPECT_DOUBLE_EQ(profile.speed_at(0.0), 1'500.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(500.0), 1'490.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(2'000.0), 1'500.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(-10.0), 1'500.0) << "clamps above the first sample";
  EXPECT_DOUBLE_EQ(profile.speed_at(9'000.0), 1'520.0) << "clamps below the last sample";
}

TEST(TabulatedProfile, RejectsBadInput) {
  EXPECT_THROW((TabulatedProfile{{{0.0, 1'500.0}}}), std::invalid_argument);
  EXPECT_THROW((TabulatedProfile{{{0.0, 1'500.0}, {0.0, 1'501.0}}}), std::invalid_argument);
  EXPECT_THROW((TabulatedProfile{{{10.0, 1'500.0}, {5.0, 1'501.0}}}), std::invalid_argument);
}

TEST(Mackenzie, ReferenceValues) {
  // Mackenzie 1981: c(10 C, 35 ppt, 0 m) = 1489.8 m/s; speed grows with
  // temperature, salinity and depth.
  EXPECT_NEAR(mackenzie_sound_speed(10.0, 35.0, 0.0), 1'489.8, 0.5);
  EXPECT_GT(mackenzie_sound_speed(20.0, 35.0, 0.0), mackenzie_sound_speed(10.0, 35.0, 0.0));
  EXPECT_GT(mackenzie_sound_speed(10.0, 38.0, 0.0), mackenzie_sound_speed(10.0, 35.0, 0.0));
  EXPECT_GT(mackenzie_sound_speed(10.0, 35.0, 2'000.0), mackenzie_sound_speed(10.0, 35.0, 0.0));
  // The paper's 1.5 km/s figure corresponds to typical shallow conditions.
  EXPECT_NEAR(mackenzie_sound_speed(16.0, 35.0, 100.0), 1'511.0, 3.0);
}

TEST(Mackenzie, FeedsTabulatedProfile) {
  std::vector<TabulatedProfile::Sample> samples;
  for (double z = 0.0; z <= 4'000.0; z += 500.0) {
    samples.push_back({z, mackenzie_sound_speed(10.0, 35.0, z)});
  }
  const TabulatedProfile profile{samples};
  EXPECT_GT(profile.speed_at(4'000.0), profile.speed_at(0.0))
      << "pressure term dominates at constant temperature";
}

}  // namespace
}  // namespace aquamac

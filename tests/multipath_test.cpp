// Surface-echo multipath: image-source geometry and its interference
// effect under the SINR physical layer.

#include <gtest/gtest.h>

#include <memory>

#include "channel/acoustic_channel.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "phy/modem.hpp"

namespace aquamac {
namespace {

TEST(SurfaceEcho, ImageSourceGeometry) {
  const StraightLinePropagation straight{1'500.0};
  const Vec3 a{0, 0, 100};
  const Vec3 b{1'000, 0, 100};
  const auto direct = straight.compute(a, b, 10.0);
  const auto echo = surface_echo_path(straight, a, b, 10.0, 6.0);

  // Image source at (0, 0, -100): path length sqrt(1000^2 + 200^2).
  EXPECT_NEAR(echo.length_m, std::sqrt(1'000.0 * 1'000.0 + 200.0 * 200.0), 1e-9);
  EXPECT_GT(echo.delay, direct.delay);
  EXPECT_GT(echo.loss_db, direct.loss_db + 6.0 - 1e-9) << "longer path + reflection loss";
}

TEST(SurfaceEcho, ShallowNodesHaveNearCoincidentEcho) {
  // Nodes just below the surface: the echo is barely longer than the
  // direct path (classic Lloyd-mirror regime).
  const StraightLinePropagation straight{1'500.0};
  const Vec3 a{0, 0, 2};
  const Vec3 b{1'000, 0, 2};
  const auto direct = straight.compute(a, b, 10.0);
  const auto echo = surface_echo_path(straight, a, b, 10.0, 6.0);
  EXPECT_LT((echo.delay - direct.delay).to_seconds(), 1e-4);
}

TEST(SurfaceEcho, DeepNodesSeparateClearly) {
  const StraightLinePropagation straight{1'500.0};
  const Vec3 a{0, 0, 1'000};
  const Vec3 b{500, 0, 1'000};
  const auto direct = straight.compute(a, b, 10.0);
  const auto echo = surface_echo_path(straight, a, b, 10.0, 6.0);
  // Image path sqrt(500^2 + 2000^2) ~ 2061 m vs 500 m direct.
  EXPECT_GT((echo.delay - direct.delay).to_seconds(), 1.0);
}

TEST(SurfaceEcho, EchoArrivalsInterfereUnderSinr) {
  // A deep pair whose echo lands on the tail of a long frame: with the
  // echo enabled, its arrival overlaps the direct arrival and the SINR
  // model sees interference; disabled, the frame sails through.
  auto run_with_echo = [](bool echo_enabled) {
    Simulator sim;
    StraightLinePropagation propagation{1'500.0};
    SinrPerModel reception{Modulation::kFskNoncoherent};
    ChannelConfig config{};
    config.mode = DeliveryMode::kLevelBased;
    config.enable_surface_echo = echo_enabled;
    config.surface_reflection_loss_db = 0.1;  // glassy sea: strong echo
    AcousticChannel channel{sim, propagation, config};

    struct Listener final : ModemListener {
      int ok = 0;
      int lost = 0;
      void on_frame_received(const Frame&, const RxInfo&) override { ++ok; }
      void on_rx_failure(const Frame&, RxOutcome, const RxInfo&) override { ++lost; }
      void on_tx_done(const Frame&) override {}
    };

    DeterministicCollisionModel unused{};
    (void)unused;
    AcousticModem a{sim, 0, ModemConfig{}, reception, Rng{1}};
    AcousticModem b{sim, 1, ModemConfig{}, reception, Rng{2}};
    a.set_position(Vec3{0, 0, 800});
    b.set_position(Vec3{400, 0, 800});
    Listener la{};
    Listener lb{};
    a.set_listener(&la);
    b.set_listener(&lb);
    channel.attach(a);
    channel.attach(b);

    // 2 s frame: the echo (~ +1.3 s) lands inside the direct window.
    Frame frame{};
    frame.type = FrameType::kData;
    frame.dst = 1;
    frame.size_bits = 24'000;
    frame.data_bits = 24'000;
    a.transmit(frame);
    sim.run();
    return std::pair{lb.ok, lb.lost};
  };

  const auto [ok_clean, lost_clean] = run_with_echo(false);
  EXPECT_EQ(ok_clean, 1);
  EXPECT_EQ(lost_clean, 0);

  const auto [ok_echo, lost_echo] = run_with_echo(true);
  EXPECT_EQ(ok_echo + lost_echo, 1) << "the direct arrival is judged exactly once";
  EXPECT_EQ(lost_echo, 1) << "a near-unit-strength echo overlapping most of the frame "
                             "destroys it at 2048+ bits";
}

TEST(SurfaceEcho, FullScenarioStillDeliversWithWeakEchoes) {
  ScenarioConfig config = small_test_scenario();
  config.reception = ReceptionKind::kSinrPer;
  config.channel.mode = DeliveryMode::kLevelBased;
  config.channel.enable_surface_echo = true;
  config.channel.surface_reflection_loss_db = 12.0;  // rough sea: weak echo
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.packets_delivered, 0u);
  EXPECT_LE(stats.packets_delivered, stats.packets_offered);
}

TEST(SurfaceEcho, IgnoredInRangeBasedMode) {
  ScenarioConfig config = small_test_scenario();
  config.channel.enable_surface_echo = true;  // mode stays kRangeBased
  const RunStats with_flag = run_scenario(config);
  config.channel.enable_surface_echo = false;
  const RunStats without_flag = run_scenario(config);
  EXPECT_EQ(with_flag.bits_delivered, without_flag.bits_delivered)
      << "deterministic Eq.-1 mode is echo-free by definition";
}

}  // namespace
}  // namespace aquamac

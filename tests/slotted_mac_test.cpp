#include "mac/slotted_mac.hpp"

#include <gtest/gtest.h>

#include "channel/reception.hpp"

namespace aquamac {
namespace {

class ProbeMac final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;
  [[nodiscard]] std::string_view name() const override { return "probe"; }

  // Expose protected helpers for testing.
  using SlottedMac::backoff_slots;
  using SlottedMac::quiet_now;
  using SlottedMac::quiet_until;
  using SlottedMac::set_quiet_until;

  Duration omega_public() const { return omega(); }

 protected:
  void handle_frame(const Frame&, const RxInfo&) override {}
};

class SlottedMacTest : public ::testing::Test {
 protected:
  SlottedMacTest()
      : modem_{sim_, 0, ModemConfig{}, reception_, Rng{1}},
        mac_{sim_, modem_, neighbors_, MacConfig{}, Rng{2}, Logger::off()} {}

  Simulator sim_;
  DeterministicCollisionModel reception_;
  AcousticModem modem_;
  NeighborTable neighbors_;
  ProbeMac mac_;
};

TEST_F(SlottedMacTest, SlotLengthIsOmegaPlusTauMax) {
  // §4.1: |ts| = omega + tau_max. 64 bits at 12 kbps = 5.333 ms.
  EXPECT_EQ(mac_.omega_public(), Duration::from_seconds(64.0 / 12'000.0));
  EXPECT_EQ(mac_.slot_length(), mac_.omega_public() + Duration::seconds(1));
}

TEST_F(SlottedMacTest, SlotIndexAndStartRoundTrip) {
  for (std::int64_t i : {0, 1, 5, 100, 297}) {
    const Time start = mac_.slot_start(i);
    EXPECT_EQ(mac_.slot_index(start), i);
    EXPECT_EQ(mac_.slot_index(start + Duration::nanoseconds(1)), i);
    EXPECT_EQ(mac_.slot_index(start - Duration::nanoseconds(1)), i - 1);
  }
}

TEST_F(SlottedMacTest, NextSlotBoundary) {
  const Time boundary = mac_.slot_start(7);
  EXPECT_EQ(mac_.next_slot_boundary(boundary), boundary)
      << "a time exactly on a boundary is its own 'next boundary'";
  EXPECT_EQ(mac_.next_slot_boundary(boundary + Duration::nanoseconds(1)), mac_.slot_start(8));
  EXPECT_EQ(mac_.next_slot_boundary(boundary - Duration::nanoseconds(1)), boundary);
}

TEST_F(SlottedMacTest, DataSlotsMatchesEq5) {
  const Duration data_2048 = Duration::from_seconds(2'048.0 / 12'000.0);
  // ceil((0.1707 + 1.0) / 1.00533) = 2
  EXPECT_EQ(mac_.data_slots(data_2048, Duration::seconds(1)), 2);
  // Short delay: ceil((0.1707 + 0.1) / 1.00533) = 1
  EXPECT_EQ(mac_.data_slots(data_2048, Duration::milliseconds(100)), 1);
  // Huge data packet: 12 kb = 1 s airtime + 1 s delay -> 2 slots.
  const Duration data_12k = Duration::from_seconds(1.0);
  EXPECT_EQ(mac_.data_slots(data_12k, Duration::seconds(1)), 2);
  // 4x: 48 kb = 4 s airtime + 1 s -> 5 slots.
  EXPECT_EQ(mac_.data_slots(Duration::from_seconds(4.0), Duration::seconds(1)), 5);
}

TEST_F(SlottedMacTest, QuietIsMonotoneMax) {
  EXPECT_FALSE(mac_.quiet_now());
  mac_.set_quiet_until(Time::from_seconds(10.0));
  mac_.set_quiet_until(Time::from_seconds(5.0));  // must not shorten
  EXPECT_EQ(mac_.quiet_until(), Time::from_seconds(10.0));
  EXPECT_TRUE(mac_.quiet_now());
}

TEST_F(SlottedMacTest, BackoffWithinWindowAndGrowing) {
  MacConfig config{};
  std::int64_t max_seen_r0 = 0;
  std::int64_t max_seen_r3 = 0;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t b0 = mac_.backoff_slots(0);
    const std::int64_t b3 = mac_.backoff_slots(3);
    EXPECT_GE(b0, 1);
    EXPECT_LE(b0, static_cast<std::int64_t>(config.cw_min_slots));
    EXPECT_GE(b3, 1);
    EXPECT_LE(b3, static_cast<std::int64_t>(config.cw_min_slots) << 3);
    max_seen_r0 = std::max(max_seen_r0, b0);
    max_seen_r3 = std::max(max_seen_r3, b3);
  }
  EXPECT_GT(max_seen_r3, max_seen_r0) << "window grows with retries";
}

TEST_F(SlottedMacTest, BackoffCapsAtCwMax) {
  MacConfig config{};
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(mac_.backoff_slots(30), static_cast<std::int64_t>(config.cw_max_slots));
  }
}

TEST_F(SlottedMacTest, EnqueueTracksOfferedAndQueueLimit) {
  MacConfig config{};
  for (std::size_t i = 0; i < config.queue_limit + 10; ++i) {
    mac_.enqueue_packet(1, 2'048);
  }
  EXPECT_EQ(mac_.counters().packets_offered, config.queue_limit + 10);
  EXPECT_EQ(mac_.queue_depth(), config.queue_limit);
  EXPECT_EQ(mac_.counters().packets_dropped, 10u);
  EXPECT_EQ(mac_.counters().bits_offered, (config.queue_limit + 10) * 2'048);
}

TEST_F(SlottedMacTest, PiggybackGrowsControlFrameAndSlot) {
  MacConfig config{};
  config.piggyback_bits = 384;
  ProbeMac fat{sim_, modem_, neighbors_, config, Rng{3}, Logger::off()};
  EXPECT_EQ(fat.omega_public(), Duration::from_seconds((64.0 + 384.0) / 12'000.0));
  EXPECT_GT(fat.slot_length(), mac_.slot_length())
      << "CS-MAC's in-band two-hop info lengthens its slot";
}

}  // namespace
}  // namespace aquamac

// The parallel harness contract: parallel_for covers every index exactly
// once and transports exceptions, and run_replicated / run_sweep produce
// bit-identical results for any jobs value. The latter is the invariant
// the whole executor rests on — every run owns its Simulator, Network
// and RNG, so thread scheduling must not be observable in the stats.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "mac/mac_factory.hpp"

namespace aquamac {
namespace {

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
  EXPECT_EQ(a.traffic_duration_s, b.traffic_duration_s);
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.bits_offered, b.bits_offered);
  EXPECT_EQ(a.bits_delivered, b.bits_delivered);
  EXPECT_EQ(a.throughput_kbps, b.throughput_kbps);
  EXPECT_EQ(a.offered_load_kbps, b.offered_load_kbps);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_EQ(a.control_bits, b.control_bits);
  EXPECT_EQ(a.maintenance_bits, b.maintenance_bits);
  EXPECT_EQ(a.retransmitted_bits, b.retransmitted_bits);
  EXPECT_EQ(a.piggyback_bits, b.piggyback_bits);
  EXPECT_EQ(a.total_bits_sent, b.total_bits_sent);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.execution_time_s, b.execution_time_s);
  EXPECT_EQ(a.handshake_attempts, b.handshake_attempts);
  EXPECT_EQ(a.handshake_successes, b.handshake_successes);
  EXPECT_EQ(a.contention_losses, b.contention_losses);
  EXPECT_EQ(a.extra_attempts, b.extra_attempts);
  EXPECT_EQ(a.extra_successes, b.extra_successes);
  EXPECT_EQ(a.rx_collisions, b.rx_collisions);
  EXPECT_EQ(a.fairness_index, b.fairness_index);
  EXPECT_EQ(a.e2e_originated, b.e2e_originated);
  EXPECT_EQ(a.e2e_arrived_at_sink, b.e2e_arrived_at_sink);
  EXPECT_EQ(a.e2e_delivery_ratio, b.e2e_delivery_ratio);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.mean_e2e_latency_s, b.mean_e2e_latency_s);
}

/// small_test_scenario shrunk further so the determinism sweeps finish in
/// well under a second even under TSan.
ScenarioConfig tiny_scenario() {
  ScenarioConfig config = small_test_scenario();
  config.node_count = 8;
  config.sim_time = Duration::seconds(20);
  return config;
}

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReentrant) {
  ThreadPool pool{2};
  pool.wait_idle();  // nothing submitted
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1'000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for(4, kCount, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialPathCoversEveryIndexInOrder) {
  std::vector<std::size_t> order;
  parallel_for(1, 10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  parallel_for(4, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(4, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // Serial path too.
  EXPECT_THROW(parallel_for(1, 10,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, KeepsRunningAfterAnException) {
  std::atomic<int> visited{0};
  try {
    parallel_for(4, 50, [&](std::size_t) {
      visited.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("every task throws");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(visited.load(), 50);  // no index abandoned
}

TEST(ResolveJobs, ZeroMeansAutoAndNonZeroPassesThrough) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(ParallelHarness, ReplicatedRunsAreBitIdenticalAcrossJobCounts) {
  const ScenarioConfig base = tiny_scenario();
  const std::vector<RunStats> serial = run_replicated_parallel(base, 5, 1);
  const std::vector<RunStats> parallel = run_replicated_parallel(base, 5, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    SCOPED_TRACE("replication " + std::to_string(k));
    expect_identical(serial[k], parallel[k]);
  }
}

TEST(ParallelHarness, SweepIsBitIdenticalAcrossJobCounts) {
  // Mixed EW-MAC / S-FAMA sweep: the two protocols exercise different
  // MAC machinery (and different RNG consumption) per run.
  const MacKind protocols[] = {MacKind::kEwMac, MacKind::kSFama};
  const double xs[] = {0.2, 0.5};
  constexpr unsigned kReps = 3;

  ScenarioConfig base = tiny_scenario();
  base.jobs = 1;
  const SweepResult serial = run_sweep(base, protocols, xs, [](ScenarioConfig& c, double x) {
    c.traffic.offered_load_kbps = x;
  }, kReps);
  base.jobs = 4;
  const SweepResult parallel = run_sweep(base, protocols, xs, [](ScenarioConfig& c, double x) {
    c.traffic.offered_load_kbps = x;
  }, kReps);

  EXPECT_EQ(serial.jobs_used, 1u);
  EXPECT_EQ(parallel.jobs_used, 4u);
  ASSERT_EQ(serial.protocols, parallel.protocols);
  ASSERT_EQ(serial.xs, parallel.xs);
  for (MacKind kind : serial.protocols) {
    for (std::size_t i = 0; i < serial.xs.size(); ++i) {
      const auto& a = serial.runs_at(kind, i);
      const auto& b = parallel.runs_at(kind, i);
      ASSERT_EQ(a.size(), kReps);
      ASSERT_EQ(b.size(), kReps);
      for (std::size_t k = 0; k < kReps; ++k) {
        SCOPED_TRACE("protocol " + std::string{to_string(kind)} + " x=" +
                     std::to_string(serial.xs[i]) + " rep=" + std::to_string(k));
        expect_identical(a[k], b[k]);
      }
    }
  }
}

TEST(ParallelHarness, SweepRecordsWallClockAccounting) {
  const MacKind protocols[] = {MacKind::kEwMac};
  const double xs[] = {0.3};
  ScenarioConfig base = tiny_scenario();
  base.jobs = 1;
  const SweepResult sweep = run_sweep(base, protocols, xs, [](ScenarioConfig& c, double x) {
    c.traffic.offered_load_kbps = x;
  }, 2);
  EXPECT_EQ(sweep.replications, 2u);
  EXPECT_EQ(sweep.total_runs(), 2u);
  EXPECT_GT(sweep.wall_s, 0.0);
  ASSERT_EQ(sweep.cell_wall_s.at(MacKind::kEwMac).size(), 1u);
  EXPECT_GT(sweep.cell_wall_s.at(MacKind::kEwMac)[0], 0.0);
  // Per-cell compute time cannot exceed end-to-end wall time when serial.
  EXPECT_LE(sweep.cell_wall_s.at(MacKind::kEwMac)[0], sweep.wall_s);
}

TEST(ParallelHarness, NormalizedTableRequiresSFamaBaseline) {
  const MacKind protocols[] = {MacKind::kEwMac};  // no S-FAMA
  const double xs[] = {0.3};
  ScenarioConfig base = tiny_scenario();
  const SweepResult sweep = run_sweep(base, protocols, xs, [](ScenarioConfig& c, double x) {
    c.traffic.offered_load_kbps = x;
  }, 1);
  EXPECT_THROW(sweep_table_normalized(
                   sweep, "x", [](const MeanStats& m) { return m.throughput_kbps; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace aquamac

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(SFama, FourWayHandshakeDeliversOnePacket) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 500});  // 500 m, tau = 1/3 s
  bed.hello_and_settle();

  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));

  const auto& sc = bed.counters(s);
  const auto& rc = bed.counters(r);
  EXPECT_EQ(sc.frames_sent[frame_type_index(FrameType::kRts)], 1u);
  EXPECT_EQ(rc.frames_sent[frame_type_index(FrameType::kCts)], 1u);
  EXPECT_EQ(sc.frames_sent[frame_type_index(FrameType::kData)], 1u);
  EXPECT_EQ(rc.frames_sent[frame_type_index(FrameType::kAck)], 1u);
  EXPECT_EQ(rc.packets_delivered, 1u);
  EXPECT_EQ(rc.bits_delivered, 2'048u);
  EXPECT_EQ(sc.packets_sent_ok, 1u);
  EXPECT_EQ(sc.handshake_successes, 1u);
  EXPECT_EQ(sc.packets_dropped, 0u);
}

TEST(SFama, PacketsAreSlotAligned) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 500});
  std::vector<Time> tx_starts;
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type != FrameType::kHello) tx_starts.push_back(audit.tx_window.begin);
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));

  ASSERT_GE(tx_starts.size(), 4u);
  const Duration slot = testbed::default_slot();
  for (const Time t : tx_starts) {
    EXPECT_EQ((t - Time::zero()).count_ns() % slot.count_ns(), 0)
        << "S-FAMA packet off slot boundary at " << t.to_string();
  }
}

TEST(SFama, AckSlotFollowsEq5) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 1'400});  // tau ~ 0.933 s
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  Time data_tx{};
  Time ack_tx{};
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kData) data_tx = audit.tx_window.begin;
    if (audit.frame.type == FrameType::kAck) ack_tx = audit.tx_window.begin;
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));

  ASSERT_NE(data_tx, Time{});
  ASSERT_NE(ack_tx, Time{});
  // Eq. (5): ack slot = data slot + ceil((TD + tau)/|ts|)
  //        = data slot + ceil((0.1707 + 0.9333)/1.00533) = data slot + 2.
  EXPECT_EQ((ack_tx - data_tx).count_ns(), (testbed::default_slot() * 2).count_ns());
}

TEST(SFama, OverhearerDefersDuringExchange) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 200});
  const NodeId o = bed.add_node(MacKind::kSFama, Vec3{300, 0, 1'000});  // hears s
  std::vector<std::pair<NodeId, Time>> rts_times;
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kRts) {
      rts_times.emplace_back(audit.sender, audit.tx_window.begin);
    }
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  // o wants to talk to s while s is mid-exchange: it must defer.
  bed.sim().at(Time::from_seconds(6.5), [&] { bed.mac(o).enqueue_packet(s, 2'048); });
  bed.sim().run_until(Time::from_seconds(40.0));

  ASSERT_GE(rts_times.size(), 2u);
  Time s_rts{};
  Time o_rts{};
  for (const auto& [sender, t] : rts_times) {
    if (sender == s && s_rts == Time{}) s_rts = t;
    if (sender == o && o_rts == Time{}) o_rts = t;
  }
  ASSERT_NE(o_rts, Time{});
  // s's exchange spans RTS + CTS + 2 data slots + ACK ~ 5 slots; o's RTS
  // must come after the exchange finished.
  EXPECT_GE((o_rts - s_rts).count_ns(), (testbed::default_slot() * 4).count_ns());
  EXPECT_EQ(bed.total_delivered(), 2u) << "both packets eventually delivered";
}

TEST(SFama, ContentionLoserRetriesAndBothDeliver) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  const NodeId a = bed.add_node(MacKind::kSFama, Vec3{0, 0, 600});
  const NodeId b = bed.add_node(MacKind::kSFama, Vec3{0, 0, 1'200});  // a-b in range: 600 m
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(r, 2'048);
  bed.mac(b).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(120.0));

  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
  EXPECT_EQ(bed.counters(a).packets_dropped + bed.counters(b).packets_dropped, 0u);
}

TEST(SFama, UnreachableDestinationDropsAfterRetries) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  bed.add_node(MacKind::kSFama, Vec3{0, 0, 5'000});  // out of range
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(1, 2'048);
  bed.sim().run_until(Time::from_seconds(400.0));

  const auto& sc = bed.counters(s);
  MacConfig config{};
  EXPECT_EQ(sc.packets_dropped, 1u);
  EXPECT_EQ(sc.frames_sent[frame_type_index(FrameType::kRts)], config.max_retries + 1);
  EXPECT_EQ(sc.retransmitted_frames, config.max_retries);
  EXPECT_EQ(bed.total_delivered(), 0u);
}

TEST(SFama, QueueDrainsInOrder) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 800});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  bed.hello_and_settle();
  for (int i = 0; i < 5; ++i) bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(200.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 5u);
  EXPECT_EQ(bed.mac(s).queue_depth(), 0u);
}

TEST(SFama, VariableDataSizesHonored) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 800});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 1'024);
  bed.mac(s).enqueue_packet(r, 4'096);
  bed.sim().run_until(Time::from_seconds(120.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
  EXPECT_EQ(bed.counters(r).bits_delivered, 1'024u + 4'096u);
}

}  // namespace
}  // namespace aquamac

// Differential oracle for the spatial receiver index: the index is a
// pure lookup optimization, so every observable — the merged trace
// digest, the TransmissionAudit ground truth, the run statistics — must
// be bit-identical with the index on or off, for every audited MAC,
// under mobility, and across parallel replication (the TSan target).

#include <gtest/gtest.h>

#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "net/network.hpp"
#include "stats/invariant_auditor.hpp"
#include "stats/trace.hpp"

namespace aquamac {
namespace {

ScenarioConfig oracle_scenario(MacKind mac) {
  ScenarioConfig config = small_test_scenario();
  config.mac = mac;
  config.sim_time = Duration::seconds(40);
  return config;
}

std::uint64_t digest_of(ScenarioConfig config, bool use_index) {
  config.channel.use_spatial_index = use_index;
  HashTrace hash;
  config.trace = &hash;
  (void)run_scenario(config);
  return hash.digest();
}

/// Full-run audit capture: one Network, every TransmissionAudit recorded.
std::vector<TransmissionAudit> audits_of(ScenarioConfig config, bool use_index) {
  config.channel.use_spatial_index = use_index;
  std::vector<TransmissionAudit> audits;
  Simulator sim;
  Network network{sim, config};
  network.channel().set_audit([&audits](const TransmissionAudit& audit) {
    audits.push_back(audit);
  });
  (void)network.run();
  return audits;
}

void expect_audits_equal(const std::vector<TransmissionAudit>& indexed,
                         const std::vector<TransmissionAudit>& brute) {
  ASSERT_EQ(indexed.size(), brute.size());
  for (std::size_t i = 0; i < indexed.size(); ++i) {
    const TransmissionAudit& a = indexed[i];
    const TransmissionAudit& b = brute[i];
    ASSERT_EQ(a.sender, b.sender) << "audit " << i;
    ASSERT_EQ(a.frame.seq, b.frame.seq) << "audit " << i;
    ASSERT_EQ(a.frame.type, b.frame.type) << "audit " << i;
    ASSERT_EQ(a.tx_window.begin, b.tx_window.begin) << "audit " << i;
    ASSERT_EQ(a.reaches.size(), b.reaches.size())
        << "audit " << i << ": receiver sets differ";
    for (std::size_t r = 0; r < a.reaches.size(); ++r) {
      EXPECT_EQ(a.reaches[r].receiver, b.reaches[r].receiver) << "audit " << i;
      EXPECT_EQ(a.reaches[r].window.begin, b.reaches[r].window.begin) << "audit " << i;
      EXPECT_EQ(a.reaches[r].window.end, b.reaches[r].window.end) << "audit " << i;
      EXPECT_EQ(a.reaches[r].rx_level_db, b.reaches[r].rx_level_db) << "audit " << i;
      EXPECT_EQ(a.reaches[r].decodable, b.reaches[r].decodable) << "audit " << i;
    }
  }
}

TEST(SpatialOracle, TraceDigestsMatchAcrossMacs) {
  for (const MacKind mac : {MacKind::kEwMac, MacKind::kSFama, MacKind::kMacaU}) {
    const ScenarioConfig config = oracle_scenario(mac);
    const std::uint64_t indexed = digest_of(config, /*use_index=*/true);
    const std::uint64_t brute = digest_of(config, /*use_index=*/false);
    EXPECT_NE(indexed, 0u);
    EXPECT_EQ(indexed, brute) << to_string(mac) << ": index changed the event stream";
  }
}

TEST(SpatialOracle, TransmissionAuditsMatchAcrossMacs) {
  for (const MacKind mac : {MacKind::kEwMac, MacKind::kSFama, MacKind::kMacaU}) {
    SCOPED_TRACE(to_string(mac));
    const ScenarioConfig config = oracle_scenario(mac);
    expect_audits_equal(audits_of(config, /*use_index=*/true),
                        audits_of(config, /*use_index=*/false));
  }
}

TEST(SpatialOracle, DigestsMatchUnderMobilityAndIndexActuallyRebins) {
  ScenarioConfig config = oracle_scenario(MacKind::kEwMac);
  config.enable_mobility = true;
  // Unphysically fast drifters: cells are 1.5 km, so nodes must cover
  // hundreds of metres within the horizon to guarantee cell crossings.
  config.mobility.speed_mps = 40.0;

  EXPECT_EQ(digest_of(config, true), digest_of(config, false));

  // The equality above is only meaningful if the index really had to
  // follow movers: assert cell crossings happened.
  config.channel.use_spatial_index = true;
  Simulator sim;
  Network network{sim, config};
  (void)network.run();
  EXPECT_GT(network.channel().spatial_rebins(), 0u);
}

TEST(SpatialOracle, LevelBasedWithEchoesMatches) {
  // The SINR-physics path, including surface-bounce echoes, must also be
  // reproduced exactly from the pruned candidate set.
  ScenarioConfig config = oracle_scenario(MacKind::kSFama);
  config.channel.mode = DeliveryMode::kLevelBased;
  config.channel.enable_surface_echo = true;
  config.reception = ReceptionKind::kSinrPer;
  EXPECT_EQ(digest_of(config, true), digest_of(config, false));
  SCOPED_TRACE("level-based audits");
  expect_audits_equal(audits_of(config, true), audits_of(config, false));
}

TEST(SpatialOracle, AuditorSoakStaysCleanWithIndexOnUnderMobility) {
  ScenarioConfig config = oracle_scenario(MacKind::kEwMac);
  config.enable_mobility = true;
  config.channel.use_spatial_index = true;
  InvariantAuditor::Config audit = auditor_config_for(config);
  audit.hard_fail = true;
  InvariantAuditor auditor{audit};
  config.trace = &auditor;
  try {
    (void)run_scenario(config);
  } catch (const std::runtime_error& e) {
    FAIL() << "auditor violation with spatial index on: " << e.what();
  }
  EXPECT_GT(auditor.checks(), 0u);
}

// Runs under TSan in CI: parallel replication with the index on must be
// race-free and produce the same merged digest as with the index off.
TEST(SpatialOracle, ParallelReplicationDigestsMatchAcrossIndexSettings) {
  ScenarioConfig base = oracle_scenario(MacKind::kEwMac);
  base.enable_mobility = true;

  base.channel.use_spatial_index = true;
  HashTrace indexed_hash;
  base.trace = &indexed_hash;
  (void)run_replicated_parallel(base, 4, 4);

  base.channel.use_spatial_index = false;
  HashTrace brute_hash;
  base.trace = &brute_hash;
  (void)run_replicated_parallel(base, 4, 4);

  EXPECT_NE(indexed_hash.digest(), 0u);
  EXPECT_EQ(indexed_hash.digest(), brute_hash.digest());
}

}  // namespace
}  // namespace aquamac

// Regression tests for the ordering hazards the aquamac-lint sweep fixed
// (PR 5): NeighborTable moved from unordered_map to std::map because its
// iteration feeds frames and traces — CS-MAC ships a *prefix* of the
// table in every RTS/CTS (attach_neighbor_info), so with hash-ordered
// iteration WHICH entries rode along depended on bucket layout: a silent,
// stdlib-specific leak into the event stream. These tests pin the new
// contract: iteration is ascending NodeId, independent of insertion
// order, and a CS-MAC run (shipping enabled) is digest-stable and
// bit-identical across worker counts.

#include "net/neighbor_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "mac/mac_factory.hpp"
#include "stats/trace.hpp"

namespace aquamac {
namespace {

TEST(NeighborTableOrdering, EntriesIterateInAscendingIdOrder) {
  NeighborTable table;
  const Time now = Time::from_seconds(1.0);
  // Scrambled insertion order, including ids that straddle typical
  // hash-bucket boundaries.
  for (const NodeId id : {7u, 1u, 40u, 3u, 19u, 2u, 33u, 0u, 8u}) {
    table.update(id, Duration::milliseconds(id + 1), now);
  }
  std::vector<NodeId> seen;
  for (const auto& [id, entry] : table.entries()) seen.push_back(id);
  const std::vector<NodeId> expected{0, 1, 2, 3, 7, 8, 19, 33, 40};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(table.neighbor_ids(), expected);
}

TEST(NeighborTableOrdering, IterationOrderIndependentOfInsertionOrder) {
  const Time now = Time::from_seconds(2.0);
  NeighborTable forward;
  NeighborTable backward;
  for (NodeId id = 0; id < 20; ++id) {
    forward.update(id, Duration::milliseconds(id), now);
  }
  for (NodeId id = 20; id-- > 0;) {
    backward.update(id, Duration::milliseconds(id), now);
  }
  // The sequences a prefix-consumer (CS-MAC shipping) sees must match.
  auto first_four = [](const NeighborTable& t) {
    std::vector<NodeId> out;
    for (const auto& [id, entry] : t.entries()) {
      if (out.size() >= 4) break;
      out.push_back(id);
    }
    return out;
  };
  EXPECT_EQ(first_four(forward), first_four(backward));
  EXPECT_EQ(first_four(forward), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(NeighborTableOrdering, EvictionReportIsAscendingWithoutASortPass) {
  NeighborTable table;
  for (const NodeId id : {11u, 4u, 29u, 6u}) {
    table.update(id, Duration::milliseconds(1), Time::from_seconds(1.0));
  }
  table.update(2, Duration::milliseconds(1), Time::from_seconds(50.0));
  const std::vector<NodeId> evicted =
      table.evict_older_than(Duration::seconds(10), Time::from_seconds(60.0));
  EXPECT_EQ(evicted, (std::vector<NodeId>{4, 6, 11, 29}));
  EXPECT_TRUE(table.knows(2));
  EXPECT_EQ(table.size(), 1u);
}

/// CS-MAC with neighbor-info shipping active (the factory defaults
/// two_hop_entries_shipped to 4): the run that exercised the old
/// hash-order prefix bug end to end.
ScenarioConfig csmac_scenario() {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kCsMac;
  config.node_count = 8;
  config.sim_time = Duration::seconds(20);
  return config;
}

TEST(OrderingDeterminism, CsMacShippingRunIsDigestStable) {
  ScenarioConfig config = csmac_scenario();
  HashTrace first;
  HashTrace second;
  config.trace = &first;
  const RunStats stats_a = run_scenario(config);
  config.trace = &second;
  const RunStats stats_b = run_scenario(config);
  EXPECT_EQ(first.digest(), second.digest());
  EXPECT_EQ(stats_a.packets_delivered, stats_b.packets_delivered);
  EXPECT_EQ(stats_a.maintenance_bits, stats_b.maintenance_bits);
  // The run must actually exercise the trace (digest of nothing proves
  // nothing).
  EXPECT_NE(first.digest(), HashTrace{}.digest());
}

TEST(OrderingDeterminism, CsMacReplicationsBitIdenticalAcrossJobCounts) {
  const ScenarioConfig base = csmac_scenario();
  const std::vector<RunStats> serial = run_replicated_parallel(base, 3, 1);
  const std::vector<RunStats> parallel = run_replicated_parallel(base, 3, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    SCOPED_TRACE("replication " + std::to_string(k));
    EXPECT_EQ(serial[k].packets_offered, parallel[k].packets_offered);
    EXPECT_EQ(serial[k].packets_delivered, parallel[k].packets_delivered);
    EXPECT_EQ(serial[k].throughput_kbps, parallel[k].throughput_kbps);
    EXPECT_EQ(serial[k].mean_latency_s, parallel[k].mean_latency_s);
    EXPECT_EQ(serial[k].control_bits, parallel[k].control_bits);
    EXPECT_EQ(serial[k].maintenance_bits, parallel[k].maintenance_bits);
    EXPECT_EQ(serial[k].total_energy_j, parallel[k].total_energy_j);
    EXPECT_EQ(serial[k].fairness_index, parallel[k].fairness_index);
  }
}

}  // namespace
}  // namespace aquamac

// Figure 2 operationalized: the computed wait periods, and the assertion
// that EW-MAC's extra packets really fly inside the periods the paper
// names (EXR in period V of the receiver, EXDATA beginning in period VI).

#include "mac/ewmac/wait_periods.hpp"

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

WaitPeriodInputs table2_inputs(std::int64_t rts_slot, double pair_distance_m,
                               std::uint32_t data_bits) {
  WaitPeriodInputs in{};
  in.rts_slot = rts_slot;
  in.omega = Duration::from_seconds(64.0 / 12'000.0);
  in.slot_length = in.omega + Duration::seconds(1);
  in.tau_pair = Duration::from_seconds(pair_distance_m / 1'500.0);
  in.data_airtime = Duration::from_seconds(data_bits / 12'000.0);
  return in;
}

TEST(WaitPeriodsTest, Table2ExampleGeometry) {
  // 1.4 km pair, 2048-bit data, RTS in slot 5.
  const WaitPeriods p = compute_wait_periods(table2_inputs(5, 1'400.0, 2'048));

  // Eq. 5: ack slot = 7 + ceil((0.1707 + 0.9333)/1.00533) = 9.
  EXPECT_EQ(p.ack_slot, 9);

  // Period III: from RTS end (S(5)+omega) to CTS arrival (S(6)+tau).
  EXPECT_NEAR(p.sender_rts_to_cts.length().to_seconds(),
              1.00533 + 0.93333 - 64.0 / 12'000.0, 1e-3);
  // Period V: from CTS end to DATA arrival at the receiver: tau + slot -
  // omega... CTS ends S(6)+omega, data arrives S(7)+tau.
  EXPECT_NEAR(p.receiver_cts_to_data.length().to_seconds(),
              1.00533 + 0.93333 - 64.0 / 12'000.0, 1e-3);
  // Every period is non-degenerate at this geometry.
  EXPECT_GT(p.sender_cts_to_data.length().to_seconds(), 0.0);
  EXPECT_GT(p.sender_post_data.length().to_seconds(), 0.0);
  EXPECT_GT(p.receiver_free_from.to_seconds(), p.ack_tx_begin.to_seconds());
}

TEST(WaitPeriodsTest, PeriodsShrinkWithDensity) {
  // The Fig.-7 mechanism: closer pairs leave smaller exploitable windows.
  const WaitPeriods far = compute_wait_periods(table2_inputs(0, 1'400.0, 2'048));
  const WaitPeriods near = compute_wait_periods(table2_inputs(0, 300.0, 2'048));
  EXPECT_LT(near.receiver_cts_to_data.length().to_seconds(),
            far.receiver_cts_to_data.length().to_seconds());
  EXPECT_LT(near.sender_rts_to_cts.length().to_seconds(),
            far.sender_rts_to_cts.length().to_seconds());
}

TEST(WaitPeriodsTest, Eq5AckSlotMatchesCeilFormula) {
  // Eq. (5) across a geometry/payload sweep: the Ack slot is always the
  // DATA slot (RTS slot + 2) advanced by ceil((TD + tau) / |ts|).
  for (const double distance_m : {150.0, 300.0, 750.0, 1'400.0, 1'499.0}) {
    for (const std::uint32_t data_bits : {256u, 1'024u, 2'048u, 8'192u}) {
      const WaitPeriodInputs in = table2_inputs(3, distance_m, data_bits);
      const WaitPeriods p = compute_wait_periods(in);
      EXPECT_EQ(p.ack_slot,
                3 + 2 + (in.data_airtime + in.tau_pair).divide_ceil(in.slot_length))
          << distance_m << " m, " << data_bits << " bits";
    }
  }
}

TEST(WaitPeriodsTest, Eq5ExactMultipleDoesNotOvershoot) {
  // When TD + tau lands exactly on a slot boundary, the ceil must not
  // round up an extra slot.
  WaitPeriodInputs in = table2_inputs(0, 1'400.0, 2'048);
  in.tau_pair = in.slot_length * 2 - in.data_airtime;
  const WaitPeriods p = compute_wait_periods(in);
  EXPECT_EQ(p.ack_slot, 0 + 2 + 2);
}

TEST(WaitPeriodsTest, BigDataPushesAckSlot) {
  const WaitPeriods small = compute_wait_periods(table2_inputs(0, 1'000.0, 1'024));
  const WaitPeriods large = compute_wait_periods(table2_inputs(0, 1'000.0, 24'000));
  EXPECT_GT(large.ack_slot, small.ack_slot);
}

// The live protocol, checked against the computed periods: in the Fig.-4
// scenario, the EXR must arrive at j strictly inside period V, and the
// EXDATA's arrival must begin in period VI (at or after j finishes its
// Ack, Eq. 6).
TEST(WaitPeriodsTest, LiveExtraPacketsLandInTheNamedPeriods) {
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});
  (void)k;
  (void)i;

  std::int64_t rts_slot = -1;
  TimeInterval exr_at_j{};
  TimeInterval exdata_at_j{};
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kRts && audit.frame.dst == j && rts_slot < 0) {
      rts_slot = (audit.tx_window.begin - Time::zero())
                     .divide_floor(testbed::default_slot());
    }
    for (const auto& reach : audit.reaches) {
      if (reach.receiver != j) continue;
      if (audit.frame.type == FrameType::kExr) exr_at_j = reach.window;
      if (audit.frame.type == FrameType::kExData) exdata_at_j = reach.window;
    }
  });

  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(5.5), [&] { bed.mac(i).enqueue_packet(j, 2'048); });
  bed.sim().run_until(Time::from_seconds(40.0));

  ASSERT_GE(rts_slot, 0);
  ASSERT_NE(exr_at_j.end, Time{});
  ASSERT_NE(exdata_at_j.end, Time{});

  const WaitPeriods periods = compute_wait_periods(table2_inputs(rts_slot, 1'400.0, 2'048));

  // EXR fully inside period V of j.
  EXPECT_GE(exr_at_j.begin.count_ns(), periods.receiver_cts_to_data.begin.count_ns());
  EXPECT_LE(exr_at_j.end.count_ns(), periods.receiver_cts_to_data.end.count_ns());

  // EXDATA begins exactly when period VI opens (Eq. 6: as the Ack ends).
  EXPECT_EQ(exdata_at_j.begin.count_ns(), periods.receiver_free_from.count_ns());
}

}  // namespace
}  // namespace aquamac

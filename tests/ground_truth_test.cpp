// Ground-truth invariants, checked from the channel's audit stream (the
// omniscient view) rather than any protocol's own bookkeeping:
//   * an overhearer's ScheduleBook predictions coincide with the real
//     arrival windows of the negotiated exchange;
//   * EW-MAC's extra packets never overlap a negotiated packet at any
//     receiver that could decode either;
//   * the deterministic and SINR reception models agree exactly in
//     collision-free scenarios (differential test);
//   * a long, dense soak run holds every conservation invariant.

#include <gtest/gtest.h>

#include <map>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "mac/ewmac/ew_mac.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(GroundTruth, ScheduleBookPredictionsMatchAuditWindows) {
  // Fig. 4 geometry; the pure overhearer o's predictions for the
  // DATA and ACK receptions must match the audit's actual windows.
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});
  const NodeId o = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});

  std::map<FrameType, TimeInterval> actual_rx_at_j;
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    for (const auto& reach : audit.reaches) {
      if (reach.receiver == j && audit.frame.dst == j) {
        actual_rx_at_j[audit.frame.type] = reach.window;
      }
    }
  });

  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  // Inspect just after o overheard the CTS (its book prunes expired
  // windows on later overhears, so look before the DATA window passes).
  bed.sim().run_until(Time::from_seconds(7.0));

  // Copy the predictions now; later overhears prune expired windows.
  const ScheduleBook book = dynamic_cast<const EwMac&>(bed.mac(o)).schedule_book();
  bed.sim().run_until(Time::from_seconds(12.0));  // let the DATA actually fly
  ASSERT_TRUE(actual_rx_at_j.contains(FrameType::kData));
  const TimeInterval actual_data = actual_rx_at_j[FrameType::kData];

  bool found_exact_prediction = false;
  for (const auto& w : book.windows()) {
    if (w.neighbor == j && w.kind == BusyKind::kReceiving &&
        w.interval.begin == actual_data.begin && w.interval.end == actual_data.end) {
      found_exact_prediction = true;
    }
  }
  EXPECT_TRUE(found_exact_prediction)
      << "o's predicted DATA-reception window at j must equal the channel ground truth";
}

TEST(GroundTruth, ExtraPacketsNeverOverlapNegotiatedAtAnyReceiver) {
  // Record every reach window from the audit; assert that no extra-class
  // frame's window overlaps a negotiated frame's window at any common
  // receiver where both were decodable. Run across several seeds and a
  // contention-heavy layout.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig config = small_test_scenario();
    config.mac = MacKind::kEwMac;
    config.seed = seed;
    config.traffic.offered_load_kbps = 0.8;
    config.sim_time = Duration::seconds(150);

    struct Reach {
      bool extra;
      bool addressed_here;
      TimeInterval window;
    };
    std::map<NodeId, std::vector<Reach>> reaches;

    Simulator sim;
    Network network{sim, config};
    network.channel().set_audit([&](const TransmissionAudit& audit) {
      const bool extra = audit.frame.extra();
      if (audit.frame.type == FrameType::kHello) return;
      for (const auto& reach : audit.reaches) {
        if (reach.decodable) {
          reaches[reach.receiver].push_back(
              {extra, audit.frame.dst == reach.receiver, reach.window});
        }
      }
    });
    network.run();

    std::uint64_t garbled_intended_receptions = 0;
    for (const auto& [receiver, windows] : reaches) {
      for (std::size_t a = 0; a < windows.size(); ++a) {
        for (std::size_t b = a + 1; b < windows.size(); ++b) {
          if (windows[a].extra == windows[b].extra) continue;
          if (!windows[a].window.overlaps(windows[b].window)) continue;
          // Only overlaps that garble an *intended* reception matter —
          // a clash between two overheard frames at a bystander costs
          // nothing (§4.2 protects negotiated receptions, not gossip).
          if (windows[a].addressed_here || windows[b].addressed_here) {
            ++garbled_intended_receptions;
          }
        }
      }
    }
    // §4.2's design goal. Imperfect knowledge (a neighbor whose delay is
    // unknown) can cause rare clashes; they must stay truly rare.
    EXPECT_LE(garbled_intended_receptions, 1u) << "seed " << seed;
  }
}

TEST(GroundTruth, DeterministicAndSinrAgreeWhenCollisionFree) {
  // A single pair, far above the noise floor, no contention: both
  // reception models must produce identical delivery counts and byte
  // totals for the same seed.
  for (ReceptionKind reception : {ReceptionKind::kDeterministic, ReceptionKind::kSinrPer}) {
    SCOPED_TRACE(static_cast<int>(reception));
  }
  auto run_with = [](ReceptionKind reception) {
    ScenarioConfig config = small_test_scenario();
    config.mac = MacKind::kSFama;
    config.node_count = 4;
    config.deployment.width_m = 800.0;
    config.deployment.length_m = 800.0;
    config.deployment.depth_m = 800.0;
    config.traffic.offered_load_kbps = 0.05;  // almost no contention
    config.reception = reception;
    config.sim_time = Duration::seconds(150);
    return run_scenario(config);
  };
  const RunStats det = run_with(ReceptionKind::kDeterministic);
  const RunStats sinr = run_with(ReceptionKind::kSinrPer);
  EXPECT_EQ(det.packets_offered, sinr.packets_offered) << "same arrival process";
  EXPECT_EQ(det.bits_delivered, sinr.bits_delivered)
      << "at ~40 dB SNR the SINR model never errors, so the runs coincide";
}

TEST(GroundTruth, DenseSoakHoldsAllInvariants) {
  // 150 nodes, heavy load, mobility, 300 s: the modem throws on any
  // half-duplex violation, and sender-side conservation must hold on
  // every node at the end.
  ScenarioConfig config = paper_default_scenario();
  config.mac = MacKind::kEwMac;
  config.node_count = 150;
  config.traffic.offered_load_kbps = 1.5;
  config.seed = 1234;

  Simulator sim;
  Network network{sim, config};
  const RunStats stats = network.run();

  for (NodeId i = 0; i < network.node_count(); ++i) {
    const auto& mac = network.node(i).mac();
    const auto& c = mac.counters();
    ASSERT_EQ(c.packets_offered, c.packets_sent_ok + c.packets_dropped + mac.queue_depth())
        << "node " << i;
  }
  EXPECT_GT(stats.packets_delivered, 0u);
  EXPECT_GT(stats.extra_successes, 0u) << "dense contention must trigger the extra phase";
}

}  // namespace
}  // namespace aquamac

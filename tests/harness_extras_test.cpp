// Spread statistics, Jain fairness, workload power normalization, and
// dedup accounting at the harness level.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "stats/metrics.hpp"

namespace aquamac {
namespace {

TEST(Spread, ComputesMoments) {
  std::vector<RunStats> runs(4);
  runs[0].throughput_kbps = 1.0;
  runs[1].throughput_kbps = 2.0;
  runs[2].throughput_kbps = 3.0;
  runs[3].throughput_kbps = 4.0;
  const Spread spread =
      spread_of(runs, [](const RunStats& r) { return r.throughput_kbps; });
  EXPECT_DOUBLE_EQ(spread.mean, 2.5);
  EXPECT_DOUBLE_EQ(spread.min, 1.0);
  EXPECT_DOUBLE_EQ(spread.max, 4.0);
  EXPECT_NEAR(spread.stddev, std::sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3.0), 1e-12);
}

TEST(Spread, SingleRunHasZeroStddev) {
  std::vector<RunStats> runs(1);
  runs[0].throughput_kbps = 5.0;
  const Spread spread =
      spread_of(runs, [](const RunStats& r) { return r.throughput_kbps; });
  EXPECT_DOUBLE_EQ(spread.mean, 5.0);
  EXPECT_DOUBLE_EQ(spread.stddev, 0.0);
}

TEST(Spread, EmptyIsZero) {
  const Spread spread = spread_of({}, [](const RunStats&) { return 1.0; });
  EXPECT_DOUBLE_EQ(spread.mean, 0.0);
}

TEST(Jain, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({3.0, 3.0, 3.0, 3.0}), 1.0);
}

TEST(Jain, TotalCaptureIsOneOverN) {
  EXPECT_NEAR(jain_fairness({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(Jain, DegenerateInputs) {
  // An idle scenario (everyone delivered the same amount: zero) is
  // perfectly fair, not maximally unfair — returning 0 would drag sweep
  // means down at loads where no protocol delivers anything.
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({7.0}), 1.0);
}

TEST(Jain, MonotoneInEquality) {
  EXPECT_GT(jain_fairness({5.0, 5.0, 5.0}), jain_fairness({9.0, 5.0, 1.0}));
  EXPECT_GT(jain_fairness({9.0, 5.0, 1.0}), jain_fairness({14.0, 1.0, 0.0}));
}

TEST(Fairness, RunStatsReportsReasonableIndex) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.sim_time = Duration::seconds(120);
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.fairness_index, 0.0);
  EXPECT_LE(stats.fairness_index, 1.0 + 1e-12);
}

TEST(Fairness, PriorityImprovesOrMaintainsFairnessUnderContention) {
  // The §3.1 wait-time priority exists for fairness. Averaged over seeds,
  // disabling it must not make the network fairer.
  auto fairness_with = [](bool priority) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ScenarioConfig config = small_test_scenario();
      config.mac = MacKind::kEwMac;
      config.seed = seed;
      config.traffic.offered_load_kbps = 0.8;  // heavy contention
      config.sim_time = Duration::seconds(200);
      config.mac_config.enable_priority = priority;
      total += run_scenario(config).fairness_index;
    }
    return total / 5.0;
  };
  EXPECT_GE(fairness_with(true) + 0.05, fairness_with(false))
      << "allowing a small noise margin";
}

TEST(WorkloadPower, NormalizesOverReferenceWindow) {
  MeanStats mean{};
  mean.total_energy_j = 600.0;
  mean.node_count = 80.0;
  // 600 J over 80 nodes over the 300 s reference window = 25 mW.
  EXPECT_NEAR(mean.workload_power_mw(), 25.0, 1e-12);
  mean.node_count = 0.0;
  EXPECT_DOUBLE_EQ(mean.workload_power_mw(), 0.0);
}

TEST(Dedup, DuplicateDeliveriesExcludedFromThroughput) {
  // Synthetic counters: 5 packets delivered + 2 duplicates; only the 5
  // count toward Eq. 2/3.
  MacCounters counters{};
  counters.packets_delivered = 5;
  counters.bits_delivered = 5 * 2'048;
  counters.duplicate_deliveries = 2;
  const RunStats stats = compute_run_stats(counters, 10.0, 4, Duration::seconds(100),
                                           Duration::seconds(100), Time::zero());
  EXPECT_NEAR(stats.throughput_kbps, 5.0 * 2'048.0 / 100.0 / 1'000.0, 1e-12);
}

TEST(BatchCompletion, RunStopsEarlyWhenWorkloadResolves) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.traffic.mode = TrafficMode::kBatch;
  config.traffic.batch_packets = 5;
  config.sim_time = Duration::seconds(3'000);  // generous bound
  Simulator sim;
  Network network{sim, config};
  const RunStats stats = network.run();
  EXPECT_TRUE(network.workload_complete());
  EXPECT_LT(sim.now().to_seconds(), 2'900.0) << "stopped well before the horizon";
  EXPECT_EQ(stats.packets_offered, 5u);
}

}  // namespace
}  // namespace aquamac

// Multi-hop relay layer (§3.1/Fig. 1): hop-by-hop forwarding toward
// surface sinks on top of the unmodified one-hop MAC.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "net/relay.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(RelayCountersTest, Additive) {
  RelayCounters a{};
  a.originated = 3;
  a.arrived_at_sink = 2;
  a.total_hops = 5;
  a.total_e2e_latency = Duration::seconds(10);
  RelayCounters b = a;
  a += b;
  EXPECT_EQ(a.originated, 6u);
  EXPECT_EQ(a.arrived_at_sink, 4u);
  EXPECT_EQ(a.total_hops, 10u);
  EXPECT_EQ(a.total_e2e_latency, Duration::seconds(20));
}

class RelayChain : public ::testing::Test {
 protected:
  // Vertical chain: a (3 km deep) -> b (1.5 km) -> c (surface sink).
  // a cannot reach c directly (3 km > range).
  RelayChain() {
    a_ = bed_.add_node(MacKind::kEwMac, Vec3{0, 0, 3'000});
    b_ = bed_.add_node(MacKind::kEwMac, Vec3{0, 0, 1'500});
    c_ = bed_.add_node(MacKind::kEwMac, Vec3{0, 0, 100});
    auto next_hop = [this](NodeId self) -> std::optional<NodeId> {
      if (self == a_) return b_;
      if (self == b_) return c_;
      return std::nullopt;
    };
    for (NodeId n : {a_, b_, c_}) {
      relays_.push_back(std::make_unique<RelayAgent>(bed_.sim(), bed_.mac(n), n,
                                                     /*is_sink=*/n == c_, next_hop));
    }
  }

  TestBed bed_;
  NodeId a_{}, b_{}, c_{};
  std::vector<std::unique_ptr<RelayAgent>> relays_;
};

TEST_F(RelayChain, TwoHopDeliveryToSink) {
  bed_.hello_and_settle();
  const Time origin_time = bed_.sim().now();
  relays_[0]->originate(2'048);
  bed_.sim().run_until(Time::from_seconds(120.0));

  EXPECT_EQ(relays_[0]->counters().originated, 1u);
  EXPECT_EQ(relays_[1]->counters().forwarded, 1u) << "b relayed";
  EXPECT_EQ(relays_[2]->counters().arrived_at_sink, 1u);
  EXPECT_EQ(relays_[2]->counters().total_hops, 2u);
  EXPECT_GT(relays_[2]->counters().total_e2e_latency.to_seconds(), 4.0)
      << "two slotted handshakes take several slots";
  (void)origin_time;
}

TEST_F(RelayChain, MacLevelCountersSeeBothHops) {
  bed_.hello_and_settle();
  relays_[0]->originate(2'048);
  bed_.sim().run_until(Time::from_seconds(120.0));
  // One MAC-level delivery at b and one at c.
  EXPECT_EQ(bed_.counters(b_).packets_delivered, 1u);
  EXPECT_EQ(bed_.counters(c_).packets_delivered, 1u);
}

TEST_F(RelayChain, BurstOfPacketsAllArrive) {
  bed_.hello_and_settle();
  for (int i = 0; i < 4; ++i) relays_[0]->originate(2'048);
  bed_.sim().run_until(Time::from_seconds(600.0));
  EXPECT_EQ(relays_[2]->counters().arrived_at_sink, 4u);
}

TEST(Relay, NoRouteCountsDrop) {
  TestBed bed;
  const NodeId lone = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  RelayAgent relay{bed.sim(), bed.mac(lone), lone, /*is_sink=*/false,
                   [](NodeId) { return std::nullopt; }};
  relay.originate(2'048);
  EXPECT_EQ(relay.counters().dropped_no_route, 1u);
  EXPECT_EQ(relay.counters().originated, 0u);
}

TEST(Relay, HopLimitBreaksForwardingLoops) {
  // Adversarial next-hop map: a and b bounce the packet between each
  // other. The hop limit must stop the ping-pong.
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 500});
  const NodeId b = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'200});
  auto bounce = [a, b](NodeId self) -> std::optional<NodeId> {
    return self == a ? b : a;
  };
  RelayAgent relay_a{bed.sim(), bed.mac(a), a, false, bounce, /*hop_limit=*/4};
  RelayAgent relay_b{bed.sim(), bed.mac(b), b, false, bounce, /*hop_limit=*/4};
  bed.hello_and_settle();
  relay_a.originate(1'024);
  bed.sim().run_until(Time::from_seconds(400.0));

  EXPECT_EQ(relay_a.counters().dropped_hop_limit + relay_b.counters().dropped_hop_limit, 1u);
  const std::uint64_t total_forwards =
      relay_a.counters().forwarded + relay_b.counters().forwarded;
  EXPECT_LE(total_forwards, 3u) << "hop 1 is the origination; forwards stop at the limit";
}

class MultiHopNetwork : public ::testing::TestWithParam<MacKind> {};

TEST_P(MultiHopNetwork, EndToEndStatsAreConsistent) {
  ScenarioConfig config = small_test_scenario();
  config.mac = GetParam();
  config.multi_hop = true;
  config.sim_time = Duration::seconds(200);
  config.traffic.offered_load_kbps = 0.2;
  const RunStats stats = run_scenario(config);

  EXPECT_GT(stats.e2e_originated, 0u);
  EXPECT_GT(stats.e2e_arrived_at_sink, 0u) << to_string(GetParam());
  EXPECT_LE(stats.e2e_delivery_ratio, 1.0 + 1e-12);
  EXPECT_GE(stats.mean_hops, 1.0);
  EXPECT_GT(stats.mean_e2e_latency_s, 0.0);
  // Sink arrivals cannot exceed MAC-level deliveries.
  EXPECT_LE(stats.e2e_arrived_at_sink, stats.packets_delivered);
}

INSTANTIATE_TEST_SUITE_P(Protocols, MultiHopNetwork,
                         ::testing::Values(MacKind::kEwMac, MacKind::kSFama, MacKind::kDots),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MultiHopNetworkStats, DisabledModeReportsZeros) {
  ScenarioConfig config = small_test_scenario();
  const RunStats stats = run_scenario(config);
  EXPECT_EQ(stats.e2e_originated, 0u);
  EXPECT_EQ(stats.e2e_arrived_at_sink, 0u);
  EXPECT_DOUBLE_EQ(stats.e2e_delivery_ratio, 0.0);
}

TEST(MultiHopNetworkStats, DeeperNodesTakeMoreHops) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.multi_hop = true;
  config.deployment.kind = DeploymentKind::kLayeredColumn;
  config.deployment.width_m = 1'000.0;
  config.deployment.length_m = 1'000.0;
  config.deployment.depth_m = 4'000.0;
  config.deployment.layer_spacing_m = 1'000.0;
  config.node_count = 16;
  config.sim_time = Duration::seconds(300);
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.mean_hops, 1.2) << "a 4-layer column needs multi-hop paths";
}

}  // namespace
}  // namespace aquamac

// Property-style sweeps over the channel physics: reciprocity, Fermat
// bounds, monotonicities, and cross-model consistency across randomized
// geometries.

#include <gtest/gtest.h>

#include <memory>

#include "channel/propagation.hpp"
#include "util/rng.hpp"

namespace aquamac {
namespace {

struct Geometry {
  Vec3 a;
  Vec3 b;
};

Geometry random_geometry(Rng& rng, double span_m, double depth_m) {
  return Geometry{
      Vec3{rng.uniform(0, span_m), rng.uniform(0, span_m), rng.uniform(10.0, depth_m)},
      Vec3{rng.uniform(0, span_m), rng.uniform(0, span_m), rng.uniform(10.0, depth_m)},
  };
}

class PropagationProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropagationProperties, StraightLineInvariants) {
  Rng rng{GetParam()};
  const StraightLinePropagation prop{1'500.0};
  for (int trial = 0; trial < 200; ++trial) {
    const Geometry g = random_geometry(rng, 5'000.0, 4'000.0);
    const auto ab = prop.compute(g.a, g.b, 10.0);
    const auto ba = prop.compute(g.b, g.a, 10.0);
    ASSERT_EQ(ab.delay, ba.delay) << "reciprocity";
    ASSERT_DOUBLE_EQ(ab.loss_db, ba.loss_db);
    ASSERT_NEAR(ab.delay.to_seconds() * 1'500.0, ab.length_m, 1e-6)
        << "delay is distance over c";
    ASSERT_GE(ab.loss_db, 0.0);
  }
}

TEST_P(PropagationProperties, BellhopLiteInvariants) {
  Rng rng{GetParam() + 1'000};
  const auto profile = std::make_shared<LinearProfile>(1'480.0, 0.017);
  const BellhopLitePropagation prop{profile};
  for (int trial = 0; trial < 200; ++trial) {
    const Geometry g = random_geometry(rng, 5'000.0, 4'000.0);
    const auto ab = prop.compute(g.a, g.b, 10.0);
    const auto ba = prop.compute(g.b, g.a, 10.0);
    ASSERT_NEAR(ab.delay.to_seconds(), ba.delay.to_seconds(), 1e-9) << "reciprocity";
    ASSERT_NEAR(ab.length_m, ba.length_m, 1e-6);

    const double chord = g.a.distance_to(g.b);
    ASSERT_GE(ab.length_m, chord - 1e-6) << "arc at least the chord";

    // Fermat: eigenray time <= straight-chord time through the medium.
    const double chord_time = chord * profile->mean_slowness(g.a.z, g.b.z);
    ASSERT_LE(ab.delay.to_seconds(), chord_time + 1e-9);

    // Physical speed bound: effective speed within the profile's range
    // over the water column.
    if (chord > 1.0) {
      const double eff_speed = ab.length_m / ab.delay.to_seconds();
      ASSERT_GT(eff_speed, profile->speed_at(0.0) - 1.0);
      ASSERT_LT(eff_speed, profile->speed_at(4'100.0) + 1.0);
    }
  }
}

TEST_P(PropagationProperties, ModelsAgreeAtShortRange) {
  // Over short distances the ray bend is negligible: both models must be
  // within a microsecond on delay.
  Rng rng{GetParam() + 2'000};
  const auto profile = std::make_shared<LinearProfile>(1'500.0, 0.017);
  const BellhopLitePropagation bent{profile};
  for (int trial = 0; trial < 100; ++trial) {
    const Vec3 a{rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(500, 600)};
    const Vec3 b = a + Vec3{rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const auto path = bent.compute(a, b, 10.0);
    const double local_speed = profile->speed_at((a.z + b.z) / 2.0);
    const double straight_time = a.distance_to(b) / local_speed;
    ASSERT_NEAR(path.delay.to_seconds(), straight_time, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationProperties, ::testing::Values(1u, 2u, 3u),
                         [](const auto& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

TEST(PropagationMonotonicity, LossGrowsWithRangeUnderBothModels) {
  const StraightLinePropagation straight{1'500.0};
  const BellhopLitePropagation bent{std::make_shared<LinearProfile>(1'480.0, 0.017)};
  double prev_straight = -1.0;
  double prev_bent = -1.0;
  for (double x = 100.0; x <= 5'000.0; x += 100.0) {
    const auto ps = straight.compute(Vec3{0, 0, 1'000}, Vec3{x, 0, 1'000}, 10.0);
    const auto pb = bent.compute(Vec3{0, 0, 1'000}, Vec3{x, 0, 1'000}, 10.0);
    ASSERT_GT(ps.loss_db, prev_straight);
    ASSERT_GT(pb.loss_db, prev_bent);
    prev_straight = ps.loss_db;
    prev_bent = pb.loss_db;
  }
}

TEST(PropagationMonotonicity, DelayGrowsWithRange) {
  const BellhopLitePropagation bent{std::make_shared<LinearProfile>(1'480.0, 0.017)};
  Duration prev{};
  for (double x = 100.0; x <= 5'000.0; x += 100.0) {
    const auto path = bent.compute(Vec3{0, 0, 800}, Vec3{x, 0, 1'900}, 10.0);
    ASSERT_GT(path.delay, prev) << "at " << x;
    prev = path.delay;
  }
}

TEST(PropagationGradients, StrongerGradientBendsMore) {
  // Same endpoints, increasing gradient: the eigenray's extra length over
  // the chord must not shrink.
  const Vec3 a{0, 0, 500};
  const Vec3 b{4'000, 0, 700};
  const double chord = a.distance_to(b);
  double prev_excess = -1.0;
  for (double g : {0.002, 0.01, 0.017, 0.05}) {
    const BellhopLitePropagation prop{std::make_shared<LinearProfile>(1'480.0, g)};
    const double excess = prop.compute(a, b, 10.0).length_m - chord;
    ASSERT_GE(excess, prev_excess - 1e-9) << "gradient " << g;
    prev_excess = excess;
  }
}

}  // namespace
}  // namespace aquamac

// JsonWriter: comma placement, escaping, number formatting. BENCH_*.json
// files are consumed by scripts/plot_results.py and external tooling, so
// the output must be strictly valid JSON with round-trippable doubles.

#include "util/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

namespace aquamac {
namespace {

std::string emit(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter writer{os};
  body(writer);
  return os.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(emit([](JsonWriter& j) { j.begin_object().end_object(); }), "{}");
  EXPECT_EQ(emit([](JsonWriter& j) { j.begin_array().end_array(); }), "[]");
}

TEST(JsonWriter, CommasBetweenMembersAndElements) {
  EXPECT_EQ(emit([](JsonWriter& j) {
              j.begin_object();
              j.key("a").value(1);
              j.key("b").value(2);
              j.end_object();
            }),
            "{\"a\":1,\"b\":2}");
  EXPECT_EQ(emit([](JsonWriter& j) {
              j.begin_array().value(1).value(2).value(3).end_array();
            }),
            "[1,2,3]");
}

TEST(JsonWriter, NestedContainers) {
  EXPECT_EQ(emit([](JsonWriter& j) {
              j.begin_object();
              j.key("xs").begin_array().value(0.5).value(1.5).end_array();
              j.key("inner").begin_object().key("n").value(7u).end_object();
              j.end_object();
            }),
            "{\"xs\":[0.5,1.5],\"inner\":{\"n\":7}}");
}

TEST(JsonWriter, StringEscaping) {
  EXPECT_EQ(emit([](JsonWriter& j) { j.begin_array().value("a\"b\\c").end_array(); }),
            "[\"a\\\"b\\\\c\"]");
  EXPECT_EQ(emit([](JsonWriter& j) { j.begin_array().value("tab\there\nline").end_array(); }),
            "[\"tab\\there\\nline\"]");
  // Control characters below 0x20 use \u escapes.
  EXPECT_EQ(emit([](JsonWriter& j) { j.begin_array().value(std::string{'\x01'}).end_array(); }),
            "[\"\\u0001\"]");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  EXPECT_EQ(emit([](JsonWriter& j) {
              j.begin_object().key("we\"ird").value(true).end_object();
            }),
            "{\"we\\\"ird\":true}");
}

TEST(JsonWriter, BoolAndNull) {
  EXPECT_EQ(emit([](JsonWriter& j) {
              j.begin_array().value(true).value(false).null().end_array();
            }),
            "[true,false,null]");
}

TEST(JsonWriter, IntegerWidths) {
  EXPECT_EQ(emit([](JsonWriter& j) {
              j.begin_array()
                  .value(std::int64_t{-9'007'199'254'740'991})
                  .value(std::uint64_t{18'446'744'073'709'551'615u})
                  .end_array();
            }),
            "[-9007199254740991,18446744073709551615]");
}

TEST(JsonWriter, DoublesRoundTripExactly) {
  const double values[] = {0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-8, 0.0};
  for (const double v : values) {
    const std::string out =
        emit([v](JsonWriter& j) { j.begin_array().value(v).end_array(); });
    const double parsed = std::stod(out.substr(1, out.size() - 2));
    EXPECT_EQ(parsed, v) << out;
  }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(emit([](JsonWriter& j) {
              j.begin_array()
                  .value(std::numeric_limits<double>::quiet_NaN())
                  .value(std::numeric_limits<double>::infinity())
                  .value(-std::numeric_limits<double>::infinity())
                  .end_array();
            }),
            "[null,null,null]");
}

TEST(JsonWriter, TopLevelScalar) {
  EXPECT_EQ(emit([](JsonWriter& j) { j.value(42); }), "42");
}

}  // namespace
}  // namespace aquamac

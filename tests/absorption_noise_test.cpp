#include "channel/absorption.hpp"
#include "channel/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aquamac {
namespace {

TEST(Thorp, ReferenceValues) {
  // Published Thorp values: ~1.1 dB/km near 10 kHz, ~0.08 dB/km at 1 kHz.
  EXPECT_NEAR(thorp_absorption_db_per_km(10.0), 1.1, 0.15);
  EXPECT_NEAR(thorp_absorption_db_per_km(1.0), 0.08, 0.03);
  EXPECT_GT(thorp_absorption_db_per_km(50.0), thorp_absorption_db_per_km(10.0));
}

TEST(Thorp, MonotoneAboveCrossover) {
  double prev = thorp_absorption_db_per_km(0.5);
  for (double f = 1.0; f <= 100.0; f += 1.0) {
    const double cur = thorp_absorption_db_per_km(f);
    EXPECT_GT(cur, prev) << "at " << f << " kHz";
    prev = cur;
  }
}

TEST(FisherSimmons, SameOrderAsThorpInBand) {
  for (double f : {5.0, 10.0, 20.0}) {
    const double fs = fisher_simmons_absorption_db_per_km(f, 10.0);
    const double th = thorp_absorption_db_per_km(f);
    EXPECT_GT(fs, 0.2 * th);
    EXPECT_LT(fs, 5.0 * th);
  }
}

TEST(FisherSimmons, TemperatureShiftsAbsorption) {
  // Warmer water moves the MgSO4 relaxation up in frequency; at 10 kHz
  // this reduces absorption.
  EXPECT_NE(fisher_simmons_absorption_db_per_km(10.0, 4.0),
            fisher_simmons_absorption_db_per_km(10.0, 25.0));
}

TEST(TransmissionLoss, SpreadingComponents) {
  // Pure geometry at short range (absorption negligible): TL(1 km)
  // ~ k * 30 dB.
  EXPECT_NEAR(transmission_loss_db(1'000.0, 0.1, Spreading::kSpherical), 60.0, 1.0);
  EXPECT_NEAR(transmission_loss_db(1'000.0, 0.1, Spreading::kCylindrical), 30.0, 1.0);
  EXPECT_NEAR(transmission_loss_db(1'000.0, 0.1, Spreading::kPractical), 45.0, 1.0);
}

TEST(TransmissionLoss, MonotoneInDistanceAndFrequency) {
  EXPECT_LT(transmission_loss_db(100.0, 10.0), transmission_loss_db(1'000.0, 10.0));
  EXPECT_LT(transmission_loss_db(1'500.0, 5.0), transmission_loss_db(1'500.0, 30.0));
}

TEST(TransmissionLoss, ClampsBelowOneMetre) {
  EXPECT_DOUBLE_EQ(transmission_loss_db(0.0, 10.0), transmission_loss_db(1.0, 10.0));
  EXPECT_GE(transmission_loss_db(0.5, 10.0), 0.0);
}

TEST(TransmissionLoss, Table2RangeBudget) {
  // At the paper's operating point (1.5 km, 10 kHz) the loss is ~49-50 dB
  // with practical spreading — the basis for the default source level.
  const double tl = transmission_loss_db(1'500.0, 10.0);
  EXPECT_NEAR(tl, 49.4, 1.0);
}

TEST(Noise, ComponentsDominateInTheirBands) {
  const NoiseParams calm{.shipping = 0.5, .wind_mps = 0.0};
  // Turbulence dominates at very low f, thermal at very high f.
  EXPECT_GT(turbulence_noise_db(0.01), shipping_noise_db(0.01, 0.5));
  EXPECT_GT(thermal_noise_db(500.0), wind_noise_db(500.0, 0.0));
  // Total PSD decreases through the 1-50 kHz UASN band.
  EXPECT_GT(ambient_noise_psd_db(1.0, calm), ambient_noise_psd_db(20.0, calm));
}

TEST(Noise, ShippingAndWindRaiseNoise) {
  const NoiseParams quiet{.shipping = 0.0, .wind_mps = 0.0};
  const NoiseParams busy{.shipping = 1.0, .wind_mps = 10.0};
  for (double f : {0.5, 1.0, 10.0}) {
    EXPECT_GT(ambient_noise_psd_db(f, busy), ambient_noise_psd_db(f, quiet)) << f << " kHz";
  }
}

TEST(Noise, BandLevelAddsBandwidth) {
  const NoiseParams params{};
  const double psd = ambient_noise_psd_db(10.0, params);
  EXPECT_NEAR(noise_level_db(10.0, 12'000.0, params), psd + 10.0 * std::log10(12'000.0), 1e-9);
  EXPECT_NEAR(noise_level_db(10.0, 1.0, params), psd, 1e-9);
}

TEST(MaxRange, InvertsTransmissionLossExactly) {
  // Round trip against the forward model: for a spread of distances,
  // budgets set to TL(d) must invert back to d (bisection tolerance 1e-3
  // m, conservative side).
  for (const Spreading spreading :
       {Spreading::kCylindrical, Spreading::kPractical, Spreading::kSpherical}) {
    for (const double d : {10.0, 150.0, 1'500.0, 12'000.0, 80'000.0}) {
      for (const double f : {1.0, 10.0, 25.0}) {
        const double budget = transmission_loss_db(d, f, spreading);
        const double r = max_range_for_loss_db(budget, f, spreading);
        EXPECT_NEAR(r, d, 2e-3) << "d=" << d << " f=" << f;
        EXPECT_GE(r, d - 1e-9) << "cutoff must err outward, never inward";
      }
    }
  }
}

TEST(MaxRange, ClampsDegenerateBudgets) {
  // A budget smaller than TL at the 1 m reference clamps to 1 m; an
  // unspendable budget clamps to the 10^7 m ceiling.
  EXPECT_DOUBLE_EQ(max_range_for_loss_db(-50.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(max_range_for_loss_db(1e9, 10.0), 1e7);
}

TEST(MaxRange, MonotoneInBudgetAndSpreading) {
  EXPECT_LT(max_range_for_loss_db(60.0, 10.0), max_range_for_loss_db(80.0, 10.0));
  // Spherical spreading loses energy fastest, so it reaches least far.
  const double budget = 90.0;
  EXPECT_LT(max_range_for_loss_db(budget, 10.0, Spreading::kSpherical),
            max_range_for_loss_db(budget, 10.0, Spreading::kPractical));
  EXPECT_LT(max_range_for_loss_db(budget, 10.0, Spreading::kPractical),
            max_range_for_loss_db(budget, 10.0, Spreading::kCylindrical));
}

TEST(Noise, WenzBallparkAt10kHz) {
  // Wenz curves: moderate shipping, calm sea at 10 kHz is in the vicinity
  // of 30 dB re uPa^2/Hz.
  const NoiseParams params{.shipping = 0.5, .wind_mps = 0.0};
  EXPECT_NEAR(ambient_noise_psd_db(10.0, params), 30.0, 6.0);
}

}  // namespace
}  // namespace aquamac

// Vec3, Logger, Table and Frame coverage.

#include <gtest/gtest.h>

#include <sstream>

#include "phy/frame.hpp"
#include "stats/counters.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"

namespace aquamac {
namespace {

TEST(Vec3, ArithmeticAndNorms) {
  const Vec3 a{3, 4, 0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  const Vec3 b = a + Vec3{1, 1, 1};
  EXPECT_EQ(b, (Vec3{4, 5, 1}));
  EXPECT_EQ(b - a, (Vec3{1, 1, 1}));
  EXPECT_EQ(a * 2.0, (Vec3{6, 8, 0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  Vec3 c{0, 0, 0};
  c += a;
  EXPECT_EQ(c, a);
}

TEST(Vec3, Distances) {
  const Vec3 a{0, 0, 100};
  const Vec3 b{300, 400, 100};
  EXPECT_DOUBLE_EQ(a.distance_to(b), 500.0);
  EXPECT_DOUBLE_EQ(a.horizontal_distance_to(b), 500.0);
  const Vec3 deep{300, 400, 1'300};
  EXPECT_DOUBLE_EQ(a.horizontal_distance_to(deep), 500.0)
      << "horizontal distance ignores depth";
  EXPECT_GT(a.distance_to(deep), 500.0);
}

TEST(Vec3, DotProduct) {
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 3}).dot(Vec3{4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ((Vec3{1, 0, 0}).dot(Vec3{0, 1, 0}), 0.0);
}

TEST(Logger, OffLoggerLogsNothing) {
  const Logger logger = Logger::off();
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  // The macro body must not be evaluated when disabled.
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return "x";
  };
  AQUAMAC_LOG(logger, LogLevel::kError) << touch();
  EXPECT_EQ(evaluations, 0);
}

TEST(Logger, CapturesAtOrAboveLevel) {
  std::vector<std::string> lines;
  const Logger logger{LogLevel::kInfo, [&](LogLevel, std::string_view msg) {
                        lines.emplace_back(msg);
                      }};
  AQUAMAC_LOG(logger, LogLevel::kDebug) << "hidden";
  AQUAMAC_LOG(logger, LogLevel::kInfo) << "shown " << 42;
  AQUAMAC_LOG(logger, LogLevel::kError) << "also shown";
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "shown 42");
  EXPECT_EQ(lines[1], "also shown");
}

TEST(Logger, TagsPrefixMessages) {
  std::vector<std::string> lines;
  const Logger base{LogLevel::kInfo, [&](LogLevel, std::string_view msg) {
                      lines.emplace_back(msg);
                    }};
  const Logger tagged = base.with_tag("n7");
  AQUAMAC_LOG(tagged, LogLevel::kInfo) << "hello";
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[n7] hello");
}

TEST(Logger, StreamsTimeTypes) {
  std::vector<std::string> lines;
  const Logger logger{LogLevel::kInfo, [&](LogLevel, std::string_view msg) {
                        lines.emplace_back(msg);
                      }};
  AQUAMAC_LOG(logger, LogLevel::kInfo) << Time::from_seconds(1.5) << " "
                                       << Duration::milliseconds(250);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "t=1.500000s 0.250000s");
}

TEST(LogLevelNames, AllDistinct) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Table, AlignsColumns) {
  Table table{{"protocol", "x"}};
  table.add_row({"EW-MAC", "1"});
  table.add_row({"S", "22"});
  std::ostringstream os;
  table.print(os);
  std::istringstream is{os.str()};
  std::string header;
  std::string separator;
  std::string row1;
  std::getline(is, header);
  std::getline(is, separator);
  std::getline(is, row1);
  EXPECT_EQ(header.find('x'), row1.find('1')) << "columns line up";
  EXPECT_EQ(separator.find_first_not_of('-'), std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Frame, Classification) {
  EXPECT_TRUE(is_control(FrameType::kRts));
  EXPECT_TRUE(is_control(FrameType::kAck));
  EXPECT_TRUE(is_control(FrameType::kExr));
  EXPECT_FALSE(is_control(FrameType::kData));
  EXPECT_FALSE(is_control(FrameType::kExData));
  EXPECT_TRUE(is_extra(FrameType::kExr));
  EXPECT_TRUE(is_extra(FrameType::kExAck));
  EXPECT_FALSE(is_extra(FrameType::kRts));
  EXPECT_FALSE(is_extra(FrameType::kRta)) << "ROPA's RTA is its own class";
}

TEST(Frame, ToStringMentionsKeyFields) {
  Frame frame{};
  frame.type = FrameType::kCts;
  frame.src = 3;
  frame.dst = 9;
  frame.seq = 17;
  frame.size_bits = 64;
  const std::string s = frame.to_string();
  EXPECT_NE(s.find("CTS"), std::string::npos);
  EXPECT_NE(s.find("3->9"), std::string::npos);
  EXPECT_NE(s.find("seq=17"), std::string::npos);

  frame.dst = kBroadcast;
  EXPECT_NE(frame.to_string().find("->*"), std::string::npos);
}

TEST(FrameTypeNames, RoundTripAllEnumerators) {
  for (std::size_t i = 0; i < kFrameTypeCount; ++i) {
    EXPECT_NE(to_string(static_cast<FrameType>(i)), "?") << i;
  }
}

}  // namespace
}  // namespace aquamac

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(MacaU, FourWayHandshakeDelivers) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kMacaU, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kMacaU, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(s).handshake_successes, 1u);
}

TEST(MacaU, UnslottedLatencyBeatsSlotted) {
  // One round trip + data + ack over a 1 km pair: well under the ~4
  // slot-times S-FAMA needs; latency is dominated by real propagation.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kMacaU, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kMacaU, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  ASSERT_EQ(bed.counters(s).packets_sent_ok, 1u);
  EXPECT_LT(bed.counters(s).total_delivery_latency.to_seconds(), 3.5);
}

TEST(MacaU, PacketsAreNotSlotAligned) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kMacaU, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kMacaU, Vec3{0, 0, 0});
  int off_boundary = 0;
  int total = 0;
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kHello) return;
    ++total;
    if ((audit.tx_window.begin - Time::zero()).count_ns() %
            testbed::default_slot().count_ns() !=
        0) {
      ++off_boundary;
    }
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  ASSERT_GE(total, 4);
  EXPECT_GE(off_boundary, 3) << "MACA-U has no slot grid";
}

TEST(MacaU, ContendersResolveViaBackoff) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kMacaU, Vec3{0, 0, 0});
  const NodeId a = bed.add_node(MacKind::kMacaU, Vec3{700, 0, 0});
  const NodeId b = bed.add_node(MacKind::kMacaU, Vec3{-700, 0, 0});
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(r, 2'048);
  bed.mac(b).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
}

TEST(MacaU, FullScenarioAndOrderingSanity) {
  // MACA-U should land between slotted ALOHA and the slotted handshake
  // protocols in delivery terms at moderate load — and must never crash.
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kMacaU;
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.packets_delivered, 0u);
  EXPECT_LE(stats.packets_delivered, stats.packets_offered);
}

TEST(MacaU, RoundTripsThroughFactoryName) {
  EXPECT_EQ(mac_kind_from_string("MACA-U"), MacKind::kMacaU);
  EXPECT_EQ(to_string(MacKind::kMacaU), "MACA-U");
}

}  // namespace
}  // namespace aquamac

// Correctness wall for checkpoint/resume (docs/checkpoint.md). The
// contract: a run checkpointed at T and resumed must be bit-identical —
// trace digests and every stat — to the run that never stopped, for
// serial and sharded engines, including capturing at one shard count and
// resuming at another (the engine capture is K-invariant). The container
// must reject truncation, corruption, version skew and trailing bytes
// with distinct errors, and a tampered payload must fail the replay
// verification instead of silently skewing results. Warm-started sweeps
// must reproduce cold sweeps exactly for every jobs value. The suite
// name is matched by the CI ThreadSanitizer job and the checkpoint-soak
// step.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/checkpoint_run.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "mac/mac_factory.hpp"
#include "sim/checkpoint.hpp"
#include "stats/trace.hpp"

namespace aquamac {
namespace {

// --- the byte codec ----------------------------------------------------

TEST(CheckpointDeterminism, StateCodecRoundTripsEveryPrimitive) {
  StateWriter w;
  w.write_u8(7);
  w.write_u32(0xDEADBEEFu);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i64(-42);
  w.write_f64(-0.1);  // exact bit pattern, not formatted text
  w.write_bool(true);
  w.write_string("aquamac");
  w.write_time(Time::from_ns(123'456'789));
  w.write_duration(Duration::nanoseconds(-5));
  w.section("outer", [](StateWriter& s) {
    s.write_u32(1);
    s.section("inner", [](StateWriter& nested) { nested.write_bool(false); });
  });

  StateReader r{w.bytes()};
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f64(), -0.1);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read_string(), "aquamac");
  EXPECT_EQ(r.read_time(), Time::from_ns(123'456'789));
  EXPECT_EQ(r.read_duration(), Duration::nanoseconds(-5));
  r.section("outer", [](StateReader& s) {
    EXPECT_EQ(s.read_u32(), 1u);
    s.section("inner", [](StateReader& nested) { EXPECT_FALSE(nested.read_bool()); });
  });
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CheckpointDeterminism, StateReaderRejectsLayoutSkew) {
  StateWriter w;
  w.section("engine", [](StateWriter& s) {
    s.write_u32(1);
    s.write_u32(2);
  });

  // Wrong section name.
  StateReader wrong_name{w.bytes()};
  EXPECT_THROW(wrong_name.section("nodes", [](StateReader&) {}), CheckpointError);

  // Under-consumed section body.
  StateReader partial{w.bytes()};
  EXPECT_THROW(
      partial.section("engine", [](StateReader& s) { static_cast<void>(s.read_u32()); }),
      CheckpointError);

  // Reading past the end.
  StateReader empty{std::string_view{}};
  EXPECT_THROW(static_cast<void>(empty.read_u64()), CheckpointError);
}

// --- the container -----------------------------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint ckpt;
  ckpt.scenario_text = "nodes = 4\nseed = 9\n";
  ckpt.at = Time::from_seconds(1.5);
  ckpt.payload = std::string{"binary\0payload", 14};
  return ckpt;
}

std::string container_bytes(const Checkpoint& ckpt) {
  std::ostringstream os;
  write_checkpoint(os, ckpt);
  return os.str();
}

std::string error_of(const std::string& bytes) {
  std::istringstream is{bytes};
  try {
    static_cast<void>(read_checkpoint(is));
  } catch (const CheckpointError& e) {
    return e.what();
  }
  return {};
}

TEST(CheckpointDeterminism, ContainerRoundTrips) {
  const Checkpoint ckpt = sample_checkpoint();
  std::istringstream is{container_bytes(ckpt)};
  const Checkpoint back = read_checkpoint(is);
  EXPECT_EQ(back.scenario_text, ckpt.scenario_text);
  EXPECT_EQ(back.at, ckpt.at);
  EXPECT_EQ(back.payload, ckpt.payload);
}

TEST(CheckpointDeterminism, ContainerRejectsTruncation) {
  const std::string bytes = container_bytes(sample_checkpoint());
  EXPECT_NE(error_of(bytes.substr(0, 4)), "");
  EXPECT_NE(error_of(bytes.substr(0, bytes.size() - 9)), "");
}

TEST(CheckpointDeterminism, ContainerRejectsBitFlip) {
  std::string bytes = container_bytes(sample_checkpoint());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  EXPECT_NE(error_of(bytes).find("digest mismatch"), std::string::npos) << error_of(bytes);
}

TEST(CheckpointDeterminism, ContainerRejectsVersionSkewBeforeDigest) {
  // Damage only the version character: both the magic and the digest are
  // now wrong, and the version error must win (a future-format file
  // should be reported as such, not as corruption).
  std::string bytes = container_bytes(sample_checkpoint());
  const std::size_t magic_at = bytes.find(kCheckpointMagic);
  ASSERT_NE(magic_at, std::string::npos);
  bytes[magic_at + kCheckpointMagic.size() - 1] = '7';
  EXPECT_NE(error_of(bytes).find("unsupported checkpoint format"), std::string::npos)
      << error_of(bytes);
}

TEST(CheckpointDeterminism, ContainerRejectsTrailingBytes) {
  // Hand-build a container with one stray byte between the fields and
  // the (self-consistent) digest trailer.
  const Checkpoint ckpt = sample_checkpoint();
  StateWriter body;
  body.write_string(kCheckpointMagic);
  body.write_string(ckpt.scenario_text);
  body.write_time(ckpt.at);
  body.write_string(ckpt.payload);
  body.write_u8(0);
  StateWriter tail;
  tail.write_u64(fnv1a(body.bytes()));
  EXPECT_NE(error_of(body.bytes() + tail.bytes()).find("trailing bytes"), std::string::npos);
}

// --- whole runs: resume must be bit-identical --------------------------

struct RunOutput {
  std::uint64_t digest{0};
  RunStats stats{};
};

ScenarioConfig test_scenario(MacKind mac, std::uint64_t seed = 5) {
  ScenarioConfig config = grid3d_scenario(96, seed);
  config.mac = mac;
  config.sim_time = Duration::seconds(10);  // horizon 20 s, traffic from 10 s
  return config;
}

void expect_same_run(const RunOutput& full, const RunOutput& resumed) {
  EXPECT_EQ(full.digest, resumed.digest);
  EXPECT_NE(full.digest, HashTrace{}.digest()) << "trace never exercised";
  EXPECT_GT(full.stats.packets_offered, 0u) << "idle run proves nothing";
  EXPECT_EQ(full.stats.packets_offered, resumed.stats.packets_offered);
  EXPECT_EQ(full.stats.packets_delivered, resumed.stats.packets_delivered);
  EXPECT_EQ(full.stats.packets_dropped, resumed.stats.packets_dropped);
  EXPECT_EQ(full.stats.throughput_kbps, resumed.stats.throughput_kbps);
  EXPECT_EQ(full.stats.mean_latency_s, resumed.stats.mean_latency_s);
  EXPECT_EQ(full.stats.control_bits, resumed.stats.control_bits);
  EXPECT_EQ(full.stats.maintenance_bits, resumed.stats.maintenance_bits);
  EXPECT_EQ(full.stats.total_energy_j, resumed.stats.total_energy_j);
  EXPECT_EQ(full.stats.rx_collisions, resumed.stats.rx_collisions);
  EXPECT_EQ(full.stats.fairness_index, resumed.stats.fairness_index);
}

/// Runs `config` to the horizon capturing a checkpoint at `at`; returns
/// the uninterrupted output plus the snapshot.
std::pair<RunOutput, Checkpoint> capture(ScenarioConfig config, Time at) {
  HashTrace trace;
  config.trace = &trace;
  const CheckpointedRun run = run_scenario_with_checkpoint(config, at);
  return {RunOutput{trace.digest(), run.stats}, run.checkpoint};
}

/// Resumes `ckpt` over `base` (digest-verified replay) under `shards`.
RunOutput resume(const Checkpoint& ckpt, ScenarioConfig base, unsigned shards = 1) {
  HashTrace trace;
  base.trace = &trace;
  base.shards = shards;
  RunOutput out;
  out.stats = resume_scenario(ckpt, base);
  out.digest = trace.digest();
  return out;
}

TEST(CheckpointDeterminism, ResumeMatchesUninterruptedAcrossMacs) {
  for (const MacKind mac : {MacKind::kEwMac, MacKind::kCsMac, MacKind::kSFama}) {
    SCOPED_TRACE(to_string(mac));
    const ScenarioConfig config = test_scenario(mac);
    const auto [full, ckpt] = capture(config, Time::from_seconds(15));
    EXPECT_EQ(ckpt.at, Time::from_seconds(15));
    EXPECT_FALSE(ckpt.payload.empty());
    expect_same_run(full, resume(ckpt, test_scenario(mac)));
  }
}

TEST(CheckpointDeterminism, ResumeSurvivesContainerSerialization) {
  // Through the binary container, not just the in-memory struct.
  const ScenarioConfig config = test_scenario(MacKind::kEwMac, 3);
  const auto [full, ckpt] = capture(config, Time::from_seconds(14));
  std::ostringstream os;
  write_checkpoint(os, ckpt);
  std::istringstream is{os.str()};
  expect_same_run(full, resume(read_checkpoint(is), test_scenario(MacKind::kEwMac, 3)));
}

TEST(CheckpointDeterminism, ResumeAcrossShardCounts) {
  // Capture serially, resume sharded — and the reverse. The embedded
  // scenario carries the capture-time shard count; resume_scenario must
  // honor the caller's instead (the payload is K-invariant).
  const ScenarioConfig config = test_scenario(MacKind::kEwMac, 7);
  const auto [serial_full, serial_ckpt] = capture(config, Time::from_seconds(15));
  for (const unsigned shards : {2u, 4u}) {
    SCOPED_TRACE("resume shards = " + std::to_string(shards));
    expect_same_run(serial_full, resume(serial_ckpt, config, shards));
  }

  ScenarioConfig sharded = config;
  sharded.shards = 4;
  const auto [sharded_full, sharded_ckpt] = capture(sharded, Time::from_seconds(15));
  EXPECT_EQ(sharded_full.digest, serial_full.digest);
  expect_same_run(sharded_full, resume(sharded_ckpt, config, 1));
}

TEST(CheckpointDeterminism, CapturedPayloadIsShardInvariant) {
  // Not just the resumed results: the snapshot bytes themselves must be
  // identical whatever engine captured them.
  const ScenarioConfig config = test_scenario(MacKind::kCsMac, 11);
  const auto [full1, ckpt1] = capture(config, Time::from_seconds(15));
  for (const unsigned shards : {2u, 4u}) {
    SCOPED_TRACE("capture shards = " + std::to_string(shards));
    ScenarioConfig sharded = config;
    sharded.shards = shards;
    const auto [fullk, ckptk] = capture(sharded, Time::from_seconds(15));
    EXPECT_EQ(fullk.digest, full1.digest);
    EXPECT_EQ(ckptk.at, ckpt1.at);
    EXPECT_EQ(describe_payload_difference(ckpt1.payload, ckptk.payload), "");
  }
}

TEST(CheckpointDeterminism, TamperedPayloadFailsReplayVerification) {
  const ScenarioConfig config = test_scenario(MacKind::kEwMac, 13);
  auto [full, ckpt] = capture(config, Time::from_seconds(13));
  static_cast<void>(full);
  Checkpoint bad = ckpt;
  const std::size_t flip = bad.payload.size() / 2;
  bad.payload[flip] = static_cast<char>(bad.payload[flip] ^ 0x01);
  try {
    static_cast<void>(resume(bad, config));
    FAIL() << "tampered payload was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string{e.what()}.find("checkpoint"), std::string::npos) << e.what();
  }
}

TEST(CheckpointDeterminism, EveryProtocolResumes) {
  for (const MacKind mac :
       {MacKind::kEwMac, MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac, MacKind::kCwMac,
        MacKind::kSlottedAloha, MacKind::kDots, MacKind::kMacaU}) {
    SCOPED_TRACE(to_string(mac));
    ScenarioConfig config = grid3d_scenario(64, 3);
    config.mac = mac;
    config.sim_time = Duration::seconds(8);
    config.traffic.offered_load_kbps = 2.0;  // enough offered packets in 8 s
    const auto [full, ckpt] = capture(config, Time::from_seconds(14));
    expect_same_run(full, resume(ckpt, config));
  }
}

TEST(CheckpointDeterminism, BatchWorkloadResumes) {
  // Batch staggers are drawn at construction; the replayed construction
  // must reproduce them exactly.
  ScenarioConfig config = test_scenario(MacKind::kEwMac, 17);
  config.traffic.mode = TrafficMode::kBatch;
  config.traffic.batch_packets = 24;
  const auto [full, ckpt] = capture(config, Time::from_seconds(13));
  expect_same_run(full, resume(ckpt, config));
}

TEST(CheckpointDeterminism, MobilityAndFaultScenarioResumes) {
  // The hard case: drifting nodes, a realized fault timeline with live
  // Gilbert-Elliott loss streams, and mid-run node deaths.
  ScenarioConfig config = random_volume_scenario(96, 11);
  config.mac = MacKind::kEwMac;
  config.sim_time = Duration::seconds(10);
  config.enable_mobility = true;
  config.fault.drift_ppm_stddev = 20.0;
  config.fault.outage_rate_per_hour = 12.0;
  config.fault.ge_p_bad = 0.05;
  config.fault.ge_loss_bad = 0.5;
  config.fault.storm_rate_per_hour = 4.0;
  config.node_failure_fraction = 0.1;
  const auto [full, ckpt] = capture(config, Time::from_seconds(16));
  expect_same_run(full, resume(ckpt, config));
}

// --- warm-started sweeps ------------------------------------------------

TEST(CheckpointDeterminism, WarmSweepMatchesColdSweepAcrossJobs) {
  ScenarioConfig base = grid3d_scenario(64, 9);
  base.sim_time = Duration::seconds(8);
  const std::vector<MacKind> protocols{MacKind::kEwMac, MacKind::kSFama};
  const std::vector<double> xs{0.3, 0.9};
  const ConfigSetter setter = [](ScenarioConfig& config, double x) {
    config.traffic.offered_load_kbps = x;
  };
  constexpr unsigned kReps = 2;

  const auto run = [&](bool warm, unsigned jobs) {
    ScenarioConfig b = base;
    b.jobs = jobs;
    HashTrace trace;
    b.trace = &trace;
    SweepResult sweep = warm ? run_sweep_warm(b, protocols, xs, setter, kReps)
                             : run_sweep(b, protocols, xs, setter, kReps);
    return std::pair<std::uint64_t, SweepResult>{trace.digest(), std::move(sweep)};
  };

  const auto [cold_digest, cold] = run(false, 1);
  for (const auto& [warm_mode, jobs] : std::vector<std::pair<bool, unsigned>>{
           {true, 1}, {true, 4}, {false, 4}}) {
    SCOPED_TRACE(std::string{warm_mode ? "warm" : "cold"} + " jobs=" + std::to_string(jobs));
    const auto [digest, sweep] = run(warm_mode, jobs);
    EXPECT_EQ(digest, cold_digest);
    for (const MacKind kind : protocols) {
      for (std::size_t i = 0; i < xs.size(); ++i) {
        for (unsigned k = 0; k < kReps; ++k) {
          SCOPED_TRACE(std::string{to_string(kind)} + " x=" + std::to_string(xs[i]) +
                       " rep=" + std::to_string(k));
          const RunStats& a = cold.raw.at(kind)[i][k];
          const RunStats& b = sweep.raw.at(kind)[i][k];
          EXPECT_EQ(a.packets_offered, b.packets_offered);
          EXPECT_EQ(a.packets_delivered, b.packets_delivered);
          EXPECT_EQ(a.throughput_kbps, b.throughput_kbps);
          EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
          EXPECT_EQ(a.total_energy_j, b.total_energy_j);
          EXPECT_EQ(a.fairness_index, b.fairness_index);
        }
      }
    }
  }
}

}  // namespace
}  // namespace aquamac

// Scale smoke: the N=1000 density-preserving scenario must build, run a
// short horizon with the spatial index on and the invariant auditor in
// hard-fail mode, and stay clean. This is the CI guard that large-N
// machinery (scenario generators, index, auditor) keeps working without
// paying full bench cost.

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "net/network.hpp"
#include "stats/invariant_auditor.hpp"

namespace aquamac {
namespace {

TEST(ScaleSmoke, Grid3dThousandNodesAuditsCleanWithIndexOn) {
  ScenarioConfig config = grid3d_scenario(1'000, /*seed=*/3);
  config.sim_time = Duration::seconds(15);
  ASSERT_TRUE(config.channel.use_spatial_index);

  InvariantAuditor::Config audit = auditor_config_for(config);
  audit.hard_fail = true;
  InvariantAuditor auditor{audit};
  config.trace = &auditor;

  RunStats stats{};
  try {
    stats = run_scenario(config);
  } catch (const std::runtime_error& e) {
    FAIL() << "auditor violation at N=1000: " << e.what();
  }
  EXPECT_EQ(stats.node_count, 1'000u);
  EXPECT_GT(stats.packets_offered, 0u);
  EXPECT_GT(auditor.checks(), 0u);
}

TEST(ScaleSmoke, Grid3dThousandNodesShardedMatchesSerialUnderAudit) {
  // The sharded engine at N=1000 with the auditor in hard-fail mode: the
  // run must stay invariant-clean AND produce the serial run's exact
  // statistics (bit-identity contract, see docs/parallel-des.md). This
  // doubles as the CI ThreadSanitizer smoke for the sharded data paths.
  ScenarioConfig config = grid3d_scenario(1'000, /*seed=*/3);
  config.sim_time = Duration::seconds(15);

  auto run_audited = [](ScenarioConfig run_config) {
    InvariantAuditor::Config audit = auditor_config_for(run_config);
    audit.hard_fail = true;
    InvariantAuditor auditor{audit};
    run_config.trace = &auditor;
    const RunStats stats = run_scenario(run_config);
    EXPECT_GT(auditor.checks(), 0u);
    return stats;
  };

  ScenarioConfig sharded = config;
  sharded.shards = 4;
  RunStats serial_stats{};
  RunStats sharded_stats{};
  try {
    serial_stats = run_audited(config);
    sharded_stats = run_audited(sharded);
  } catch (const std::runtime_error& e) {
    FAIL() << "auditor violation at N=1000: " << e.what();
  }
  EXPECT_EQ(serial_stats.packets_offered, sharded_stats.packets_offered);
  EXPECT_EQ(serial_stats.packets_delivered, sharded_stats.packets_delivered);
  EXPECT_EQ(serial_stats.throughput_kbps, sharded_stats.throughput_kbps);
  EXPECT_EQ(serial_stats.mean_latency_s, sharded_stats.mean_latency_s);
  EXPECT_EQ(serial_stats.total_energy_j, sharded_stats.total_energy_j);
  EXPECT_EQ(serial_stats.rx_collisions, sharded_stats.rx_collisions);
}

TEST(ScaleSmoke, ScaleScenariosPreserveDensity) {
  // The point of the generators: density (hence local contention) must
  // not change with N, only the region and aggregate load.
  const ScenarioConfig small = grid3d_scenario(200, 1);
  const ScenarioConfig large = grid3d_scenario(1'600, 1);
  const double density_small = 200.0 / (small.deployment.width_m * small.deployment.length_m *
                                        small.deployment.depth_m);
  const double density_large = 1'600.0 / (large.deployment.width_m *
                                          large.deployment.length_m *
                                          large.deployment.depth_m);
  EXPECT_NEAR(density_small, density_large, density_small * 1e-9);
  // 8x the nodes -> 2x the side.
  EXPECT_NEAR(large.deployment.width_m, 2.0 * small.deployment.width_m,
              small.deployment.width_m * 1e-9);
  EXPECT_DOUBLE_EQ(large.traffic.offered_load_kbps / 1'600.0,
                   small.traffic.offered_load_kbps / 200.0);
}

TEST(ScaleSmoke, RandomVolumeScenarioIsSeedDeterministic) {
  ScenarioConfig a = random_volume_scenario(120, 5);
  ScenarioConfig b = random_volume_scenario(120, 5);
  a.sim_time = Duration::seconds(10);
  b.sim_time = Duration::seconds(10);
  Simulator sim_a;
  Network net_a{sim_a, a};
  Simulator sim_b;
  Network net_b{sim_b, b};
  for (std::size_t i = 0; i < 120; ++i) {
    EXPECT_EQ(net_a.node(static_cast<NodeId>(i)).modem().position(),
              net_b.node(static_cast<NodeId>(i)).modem().position());
  }
}

}  // namespace
}  // namespace aquamac

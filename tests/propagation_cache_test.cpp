// PropagationCache correctness: cached paths are the bit-identical
// doubles the model computes, position changes invalidate, and enabling
// the cache never changes simulation results — static or mobile.

#include "channel/propagation_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "channel/reception.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "sim/simulator.hpp"

namespace aquamac {
namespace {

constexpr double kFreqKhz = 10.0;

void expect_same_path(const PropagationModel::Path& a, const PropagationModel::Path& b) {
  EXPECT_EQ(a.delay, b.delay);
  EXPECT_EQ(a.loss_db, b.loss_db);
  EXPECT_EQ(a.length_m, b.length_m);
}

class PropagationCacheTest : public ::testing::Test {
 protected:
  AcousticModem& add_modem(NodeId id, Vec3 position) {
    auto modem =
        std::make_unique<AcousticModem>(sim_, id, ModemConfig{}, reception_, Rng{100 + id});
    modem->set_position(position);
    modems_.push_back(std::move(modem));
    return *modems_.back();
  }

  Simulator sim_;
  StraightLinePropagation model_{1'500.0};
  DeterministicCollisionModel reception_;
  std::vector<std::unique_ptr<AcousticModem>> modems_;
};

TEST_F(PropagationCacheTest, CachedPathEqualsFreshCompute) {
  PropagationCache cache{model_, kFreqKhz};
  AcousticModem& a = add_modem(0, {0.0, 0.0, 100.0});
  AcousticModem& b = add_modem(1, {1'000.0, 500.0, 300.0});
  cache.ensure_capacity(1);

  const auto expected = model_.compute(a.position(), b.position(), kFreqKhz);
  expect_same_path(cache.direct(a, b), expected);  // miss: computes
  expect_same_path(cache.direct(a, b), expected);  // hit: replays
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(PropagationCacheTest, DirectionsAreCachedIndependently) {
  PropagationCache cache{model_, kFreqKhz};
  AcousticModem& a = add_modem(0, {0.0, 0.0, 100.0});
  AcousticModem& b = add_modem(1, {2'000.0, 0.0, 400.0});
  cache.ensure_capacity(1);

  expect_same_path(cache.direct(a, b), model_.compute(a.position(), b.position(), kFreqKhz));
  expect_same_path(cache.direct(b, a), model_.compute(b.position(), a.position(), kFreqKhz));
  EXPECT_EQ(cache.misses(), 2u);  // (a,b) and (b,a) are distinct keys
  expect_same_path(cache.direct(b, a), model_.compute(b.position(), a.position(), kFreqKhz));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(PropagationCacheTest, MovingAnEndpointInvalidates) {
  PropagationCache cache{model_, kFreqKhz};
  AcousticModem& a = add_modem(0, {0.0, 0.0, 100.0});
  AcousticModem& b = add_modem(1, {1'000.0, 0.0, 100.0});
  cache.ensure_capacity(1);

  (void)cache.direct(a, b);
  EXPECT_EQ(cache.misses(), 1u);

  b.set_position({1'500.0, 200.0, 150.0});  // mobility update
  const auto expected = model_.compute(a.position(), b.position(), kFreqKhz);
  expect_same_path(cache.direct(a, b), expected);  // recomputed, not stale
  EXPECT_EQ(cache.misses(), 2u);
  expect_same_path(cache.direct(a, b), expected);  // fresh entry now hits
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(PropagationCacheTest, SettingTheSamePositionDoesNotInvalidate) {
  PropagationCache cache{model_, kFreqKhz};
  AcousticModem& a = add_modem(0, {0.0, 0.0, 100.0});
  AcousticModem& b = add_modem(1, {1'000.0, 0.0, 100.0});
  cache.ensure_capacity(1);

  (void)cache.direct(a, b);
  const auto epoch = b.position_epoch();
  b.set_position(b.position());  // no actual movement
  EXPECT_EQ(b.position_epoch(), epoch);
  (void)cache.direct(a, b);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(PropagationCacheTest, SurfaceEchoMatchesImageSourcePath) {
  PropagationCache cache{model_, kFreqKhz, /*cache_echo=*/true};
  AcousticModem& a = add_modem(0, {0.0, 0.0, 200.0});
  AcousticModem& b = add_modem(1, {1'200.0, 300.0, 350.0});
  cache.ensure_capacity(1);

  constexpr double kReflectionLossDb = 6.0;
  const auto expected =
      surface_echo_path(model_, a.position(), b.position(), kFreqKhz, kReflectionLossDb);
  expect_same_path(cache.surface_echo(a, b, kReflectionLossDb), expected);
  expect_same_path(cache.surface_echo(a, b, kReflectionLossDb), expected);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(PropagationCacheTest, IdsBeyondTheTableAreServedUncached) {
  PropagationCache cache{model_, kFreqKhz};
  AcousticModem& a = add_modem(0, {0.0, 0.0, 100.0});
  // An id past the current table dimension (ensure_capacity(1) sizes the
  // table for a handful of ids) — the same fallback serves ids past the
  // kMaxCachedId hard ceiling.
  AcousticModem& far = add_modem(1'000, {900.0, 0.0, 100.0});
  cache.ensure_capacity(1);

  const auto expected = model_.compute(a.position(), far.position(), kFreqKhz);
  expect_same_path(cache.direct(a, far), expected);
  expect_same_path(cache.direct(a, far), expected);
  EXPECT_EQ(cache.hits(), 0u);  // never cached, always recomputed
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(PropagationCacheTest, WorksBeforeEnsureCapacity) {
  PropagationCache cache{model_, kFreqKhz};
  AcousticModem& a = add_modem(0, {0.0, 0.0, 100.0});
  AcousticModem& b = add_modem(1, {700.0, 0.0, 100.0});
  // No ensure_capacity: table is empty, everything falls through.
  expect_same_path(cache.direct(a, b), model_.compute(a.position(), b.position(), kFreqKhz));
  EXPECT_EQ(cache.hits(), 0u);
}

// --- network level: the cache must be invisible in the results ---------

void expect_identical_runs(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.bits_delivered, b.bits_delivered);
  EXPECT_EQ(a.throughput_kbps, b.throughput_kbps);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_EQ(a.total_bits_sent, b.total_bits_sent);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.handshake_attempts, b.handshake_attempts);
  EXPECT_EQ(a.handshake_successes, b.handshake_successes);
  EXPECT_EQ(a.rx_collisions, b.rx_collisions);
  EXPECT_EQ(a.fairness_index, b.fairness_index);
}

RunStats run_with_cache(ScenarioConfig config, bool cache_paths) {
  config.channel.cache_paths = cache_paths;
  return run_scenario(config);
}

TEST(PropagationCacheNetwork, StaticScenarioIsBitIdenticalWithAndWithoutCache) {
  ScenarioConfig config = small_test_scenario();
  config.sim_time = Duration::seconds(30);
  ASSERT_FALSE(config.enable_mobility);
  expect_identical_runs(run_with_cache(config, true), run_with_cache(config, false));
}

TEST(PropagationCacheNetwork, MobileScenarioIsBitIdenticalWithAndWithoutCache) {
  ScenarioConfig config = small_test_scenario();
  config.sim_time = Duration::seconds(30);
  config.enable_mobility = true;
  config.mobility.speed_mps = 1.0;
  expect_identical_runs(run_with_cache(config, true), run_with_cache(config, false));
}

}  // namespace
}  // namespace aquamac

// Property test for the static shortest-delay tree (docs/routing.md):
// on randomized topologies — sparse, dense, disconnected, zero-delay and
// asymmetric links — every RouteTable must be loop-free (walking next
// hops from any node terminates at a sink within node_count steps) and
// cost-monotone toward the sink (each hop strictly decreases the
// remaining path cost, the floor in route_link_cost making "strictly"
// achievable even across zero-delay links). Seeded like
// event_queue_property_test: every topology derives from one aquamac::Rng
// stream, so failures replay exactly.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/route_table.hpp"
#include "util/rng.hpp"

namespace aquamac {
namespace {

struct Topology {
  std::vector<std::map<NodeId, Duration>> delays;
  std::vector<bool> is_sink;
};

/// One random topology: n in [4, 44), sink count in [1, n/4], directed
/// link probability p in {sparse, medium, dense}, delays in [0, 2 s]
/// with a slug of exact zeros (co-located nodes / clamped clock skew).
Topology random_topology(Rng& rng) {
  Topology topo;
  const std::size_t n = 4 + static_cast<std::size_t>(rng.below(40));
  topo.delays.resize(n);
  topo.is_sink.assign(n, false);
  const std::size_t sink_count = 1 + static_cast<std::size_t>(rng.below(std::max<std::uint64_t>(1, n / 4)));
  for (std::size_t s = 0; s < sink_count; ++s) {
    topo.is_sink[static_cast<std::size_t>(rng.below(n))] = true;
  }
  const double link_prob = 0.05 + 0.25 * static_cast<double>(rng.below(3));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.uniform(0.0, 1.0) >= link_prob) continue;
      // One link in eight is exactly zero delay — the degenerate case the
      // route_link_cost floor exists for.
      const Duration delay = rng.below(8) == 0
                                 ? Duration::zero()
                                 : Duration::from_seconds(rng.uniform(0.0, 2.0));
      topo.delays[i][static_cast<NodeId>(j)] = delay;
    }
  }
  return topo;
}

/// Walks the next-hop chain from `start`; fails the test on a loop (more
/// than n steps), a hop into an unreachable node, or a cost that fails to
/// strictly decrease. Returns the number of hops walked.
std::uint32_t walk_to_sink(const RouteTable& table, const Topology& topo, NodeId start) {
  NodeId at = start;
  std::uint32_t steps = 0;
  Duration remaining = table.cost(start);
  while (!topo.is_sink[at]) {
    const auto hop = table.next_hop(at);
    EXPECT_TRUE(hop.has_value()) << "reachable node " << at << " names no next hop";
    if (!hop) return steps;
    EXPECT_TRUE(topo.is_sink[*hop] || table.reachable(*hop))
        << "node " << at << " routes into unreachable node " << *hop;
    // The hop must be a real link this node measured.
    EXPECT_TRUE(topo.delays[at].contains(*hop))
        << "node " << at << " routes to " << *hop << " without a link";
    const Duration next_cost = table.cost(*hop);
    EXPECT_LT(next_cost, remaining)
        << "cost not strictly decreasing at " << at << " -> " << *hop;
    remaining = next_cost;
    at = *hop;
    steps += 1;
    EXPECT_LE(steps, topo.delays.size()) << "next-hop chain from " << start << " loops";
    if (steps > topo.delays.size()) return steps;
  }
  return steps;
}

TEST(RouteTableProperty, LoopFreeAndCostMonotoneOnRandomTopologies) {
  Rng root{0x20ACE5};
  for (int round = 0; round < 200; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Rng rng = root.fork(static_cast<std::uint64_t>(round));
    const Topology topo = random_topology(rng);
    const RouteTable table = RouteTable::build(topo.delays, topo.is_sink);
    ASSERT_EQ(table.size(), topo.delays.size());

    for (std::size_t i = 0; i < topo.delays.size(); ++i) {
      const auto id = static_cast<NodeId>(i);
      if (topo.is_sink[i]) {
        // Sinks are roots: no next hop, zero cost, zero hops.
        EXPECT_FALSE(table.next_hop(id).has_value());
        EXPECT_EQ(table.cost(id), Duration::zero());
        EXPECT_EQ(table.hops(id), 0u);
        EXPECT_TRUE(table.is_sink(id));
        continue;
      }
      if (!table.reachable(id)) {
        EXPECT_FALSE(table.next_hop(id).has_value());
        continue;
      }
      // Loop freedom + strict cost monotonicity, and the advertised hop
      // count equals the realized walk length.
      const std::uint32_t steps = walk_to_sink(table, topo, id);
      EXPECT_EQ(steps, table.hops(id)) << "hop count disagrees with the walk";
      EXPECT_GE(table.cost(id), Duration::nanoseconds(static_cast<std::int64_t>(steps)))
          << "cost below the per-link floor times path length";
    }
  }
}

TEST(RouteTableProperty, RebuildIsDeterministic) {
  Rng root{0x20ACE6};
  for (int round = 0; round < 50; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Rng rng = root.fork(static_cast<std::uint64_t>(round));
    const Topology topo = random_topology(rng);
    const RouteTable a = RouteTable::build(topo.delays, topo.is_sink);
    const RouteTable b = RouteTable::build(topo.delays, topo.is_sink);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto id = static_cast<NodeId>(i);
      EXPECT_EQ(a.entry(id).next_hop, b.entry(id).next_hop);
      EXPECT_EQ(a.entry(id).cost, b.entry(id).cost);
      EXPECT_EQ(a.entry(id).hops, b.entry(id).hops);
      EXPECT_EQ(a.entry(id).reachable, b.entry(id).reachable);
    }
  }
}

TEST(RouteTableProperty, DisconnectedComponentIsUnreachableNotLooping) {
  // Two components; sinks only in the first. The second must come back
  // unreachable — never routed into a loop or across the gap.
  std::vector<std::map<NodeId, Duration>> delays(6);
  const Duration d = Duration::milliseconds(100);
  delays[1][0] = d;  // component A: 1 -> 0 (sink)
  delays[2][1] = d;  //              2 -> 1
  delays[4][3] = d;  // component B: 4 -> 3, 3 -> 4 (mutual, sinkless)
  delays[3][4] = d;
  delays[5][4] = d;  //              5 -> 4
  const RouteTable table = RouteTable::build(delays, {true, false, false, false, false, false});
  EXPECT_TRUE(table.reachable(1));
  EXPECT_TRUE(table.reachable(2));
  EXPECT_EQ(table.hops(2), 2u);
  for (const NodeId id : {NodeId{3}, NodeId{4}, NodeId{5}}) {
    EXPECT_FALSE(table.reachable(id)) << "node " << id;
    EXPECT_FALSE(table.next_hop(id).has_value()) << "node " << id;
  }
}

TEST(RouteTableProperty, EqualCostTieBreaksTowardLowerParentId) {
  // Node 3 reaches sinks 0 and 1 through parents 1 and 2 at identical
  // cost; the tie must deterministically pick the lower parent id.
  std::vector<std::map<NodeId, Duration>> delays(4);
  const Duration d = Duration::milliseconds(200);
  delays[2][0] = d;  // 2 -> sink 0
  delays[1][0] = d;  // 1 -> sink 0
  delays[3][1] = d;
  delays[3][2] = d;
  const RouteTable table = RouteTable::build(delays, {true, false, false, false});
  ASSERT_TRUE(table.reachable(3));
  EXPECT_EQ(table.next_hop(3), std::optional<NodeId>{1});
  EXPECT_EQ(table.hops(3), 2u);
}

}  // namespace
}  // namespace aquamac

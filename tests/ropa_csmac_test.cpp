#include <gtest/gtest.h>

#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

// ---------------------------------------------------------------------
// ROPA: reverse opportunistic packet appending
// ---------------------------------------------------------------------

class RopaAppendCase : public ::testing::Test {
 protected:
  RopaAppendCase() {
    s_ = bed_.add_node(MacKind::kRopa, Vec3{0, 0, 1'000});
    r_ = bed_.add_node(MacKind::kRopa, Vec3{0, 0, 0});      // 1 km from s
    a_ = bed_.add_node(MacKind::kRopa, Vec3{600, 0, 1'000});  // 600 m from s
  }

  void run() {
    bed_.hello_and_settle();                                    // ends t = 5 s
    bed_.mac(s_).enqueue_packet(r_, 2'048);                     // s RTS at slot 5
    // a's packet (destined to s) arrives after s's attempt is already
    // committed but before a hears the RTS: a stays Idle and appends.
    bed_.sim().at(Time::from_seconds(5.1), [&] { bed_.mac(a_).enqueue_packet(s_, 2'048); });
    bed_.sim().run_until(Time::from_seconds(60.0));
  }

  TestBed bed_;
  NodeId s_{}, r_{}, a_{};
};

TEST_F(RopaAppendCase, AppenderRidesTheSendersWait) {
  run();
  const auto& ac = bed_.counters(a_);
  const auto& sc = bed_.counters(s_);
  EXPECT_EQ(sc.handshake_successes, 1u) << "s's own exchange completes";
  EXPECT_EQ(bed_.counters(r_).packets_delivered, 1u);
  EXPECT_EQ(ac.extra_attempts, 1u) << "one RTA";
  EXPECT_EQ(ac.extra_successes, 1u) << "appended delivery";
  EXPECT_EQ(ac.frames_sent[frame_type_index(FrameType::kRta)], 1u);
  EXPECT_EQ(ac.frames_sent[frame_type_index(FrameType::kExData)], 1u);
  EXPECT_EQ(ac.frames_sent[frame_type_index(FrameType::kRts)], 0u)
      << "the appender never contended";
  EXPECT_EQ(sc.frames_sent[frame_type_index(FrameType::kExc)], 1u) << "grant";
  EXPECT_EQ(sc.packets_delivered, 1u) << "s received a's appended data";
}

TEST_F(RopaAppendCase, RtaArrivesInsideTheRtsCtsGap) {
  Time rts_tx{};
  Time rta_arrival_at_s{};
  Time cts_arrival_at_s{};
  bed_.channel().set_audit([&](const TransmissionAudit& audit) {
    for (const auto& reach : audit.reaches) {
      if (reach.receiver != s_) continue;
      if (audit.frame.type == FrameType::kRta) rta_arrival_at_s = reach.window.end;
      if (audit.frame.type == FrameType::kCts) cts_arrival_at_s = reach.window.begin;
    }
    if (audit.frame.type == FrameType::kRts && audit.sender == s_) {
      rts_tx = audit.tx_window.end;
    }
  });
  run();
  ASSERT_NE(rta_arrival_at_s, Time{});
  ASSERT_NE(cts_arrival_at_s, Time{});
  EXPECT_GT(rta_arrival_at_s, rts_tx) << "after the sender finished its RTS";
  EXPECT_LT(rta_arrival_at_s, cts_arrival_at_s)
      << "fully received before the CTS reaches the sender (the idle gap)";
}

TEST(Ropa, NoAppenderMeansPlainHandshake) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kRopa, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kRopa, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(s).frames_sent[frame_type_index(FrameType::kExc)], 0u);
}

TEST(Ropa, ControlPacketsChargedInformationSurcharge) {
  // §5.3 cost model: ROPA's control packets carry timestamp + pair-delay
  // info (48 bits each, factory default), charged to overhead accounting.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kRopa, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kRopa, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));

  // Exactly RTS + DATA from s, CTS + ACK from r => 1 control surcharge on
  // each side's control packet (DATA and HELLO are not charged).
  EXPECT_EQ(bed.counters(s).piggyback_info_bits, 48u);
  EXPECT_EQ(bed.counters(r).piggyback_info_bits, 2u * 48u) << "CTS and ACK";
}

TEST(CsMac, TwoHopTablePopulatedFromNegotiationPackets) {
  // CS-MAC ships (id, delay) entries on its RTS/CTS; a chain a - b - c
  // lets a learn its two-hop delay to c from b's negotiation packets.
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kCsMac, Vec3{0, 0, 0});
  const NodeId b = bed.add_node(MacKind::kCsMac, Vec3{0, 0, 1'200});
  const NodeId c = bed.add_node(MacKind::kCsMac, Vec3{0, 0, 2'400});
  bed.hello_and_settle();
  bed.mac(b).enqueue_packet(c, 2'048);  // b's RTS announces its table
  bed.sim().run_until(Time::from_seconds(60.0));

  EXPECT_FALSE(bed.node(a).neighbors().knows(c)) << "c is two hops away";
  const auto via_b = bed.node(a).neighbors().two_hop_delay(b, c);
  ASSERT_TRUE(via_b.has_value()) << "learned from b's overheard RTS";
  EXPECT_NEAR(via_b->to_seconds(), 1'200.0 / 1'500.0, 0.01);
}

TEST(Ropa, AppenderCapBoundsTheTrain) {
  // Three neighbors all want to append to the same sender; kMaxAppenders
  // = 2 bounds the grant train, the third falls back to contention.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kRopa, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kRopa, Vec3{0, 0, 0});
  const NodeId a1 = bed.add_node(MacKind::kRopa, Vec3{600, 0, 1'000});
  const NodeId a2 = bed.add_node(MacKind::kRopa, Vec3{-600, 0, 1'000});
  const NodeId a3 = bed.add_node(MacKind::kRopa, Vec3{0, 600, 1'000});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().at(Time::from_seconds(5.1), [&] {
    bed.mac(a1).enqueue_packet(s, 2'048);
    bed.mac(a2).enqueue_packet(s, 2'048);
    bed.mac(a3).enqueue_packet(s, 2'048);
  });
  bed.sim().run_until(Time::from_seconds(400.0));

  const std::uint64_t grants = bed.counters(s).frames_sent[frame_type_index(FrameType::kExc)];
  EXPECT_LE(grants, 2u) << "kMaxAppenders";
  // Everything still arrives eventually (appended or via normal retry).
  EXPECT_EQ(bed.counters(s).packets_delivered, 3u);
  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
}

TEST(Ropa, GrantNeverComesWhenSendersExchangeFails) {
  // S's receiver is unreachable, so S's handshake never completes and no
  // grant is issued; the appender times out and delivers via its own
  // normal contention instead.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kRopa, Vec3{0, 0, 1'000});
  bed.add_node(MacKind::kRopa, Vec3{0, 0, 5'000});  // r: out of range
  const NodeId a = bed.add_node(MacKind::kRopa, Vec3{600, 0, 1'000});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(1, 2'048);
  bed.sim().at(Time::from_seconds(5.1), [&] { bed.mac(a).enqueue_packet(s, 2'048); });
  bed.sim().run_until(Time::from_seconds(900.0));

  EXPECT_EQ(bed.counters(a).extra_successes, 0u);
  EXPECT_EQ(bed.counters(a).packets_sent_ok, 1u) << "delivered by normal handshake";
  EXPECT_EQ(bed.counters(s).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(s).packets_dropped, 1u) << "s's own packet dies of retries";
}

// ---------------------------------------------------------------------
// CS-MAC: channel stealing
// ---------------------------------------------------------------------

class CsMacStealCase : public ::testing::Test {
 protected:
  CsMacStealCase() {
    j_ = bed_.add_node(MacKind::kCsMac, Vec3{0, 0, 0});
    k_ = bed_.add_node(MacKind::kCsMac, Vec3{1'400, 0, 0});    // tau_jk = 0.9333 s
    i_ = bed_.add_node(MacKind::kCsMac, Vec3{-400, 0, 0});     // hears j's CTS
    m_ = bed_.add_node(MacKind::kCsMac, Vec3{-400, 400, 0});   // i's target
  }

  void run() {
    bed_.hello_and_settle();
    bed_.mac(k_).enqueue_packet(j_, 2'048);  // k RTS slot 5, j CTS slot 6
    // i's packet arrives just after the slot-6 boundary (CS-MAC slots are
    // 1.0373 s: S(6) = 6.224), so i's own RTS attempt is pending for slot
    // 7 and i is still Idle when j's CTS reaches it at ~6.49 s.
    bed_.sim().at(Time::from_seconds(6.3), [&] { bed_.mac(i_).enqueue_packet(m_, 2'048); });
    bed_.sim().run_until(Time::from_seconds(60.0));
  }

  TestBed bed_;
  NodeId j_{}, k_{}, i_{}, m_{};
};

TEST_F(CsMacStealCase, DirectDataInsideTheStolenGap) {
  run();
  const auto& ic = bed_.counters(i_);
  EXPECT_EQ(ic.extra_attempts, 1u) << "one steal";
  EXPECT_EQ(ic.extra_successes, 1u);
  EXPECT_EQ(ic.frames_sent[frame_type_index(FrameType::kExData)], 1u);
  EXPECT_EQ(ic.frames_sent[frame_type_index(FrameType::kRts)], 0u)
      << "CS-MAC steals with no negotiation at all";
  EXPECT_EQ(bed_.counters(m_).packets_delivered, 1u);
  EXPECT_EQ(bed_.counters(j_).packets_delivered, 1u) << "the negotiated exchange survived";
  EXPECT_EQ(bed_.counters(k_).handshake_successes, 1u);
}

TEST_F(CsMacStealCase, StolenDataClearsBeforeNegotiatedData) {
  Time exdata_end_at_m{};
  Time neg_data_tx{};
  bed_.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kExData) exdata_end_at_m = audit.tx_window.end;
    if (audit.frame.type == FrameType::kData) neg_data_tx = audit.tx_window.begin;
  });
  run();
  ASSERT_NE(exdata_end_at_m, Time{});
  ASSERT_NE(neg_data_tx, Time{});
  EXPECT_LT(exdata_end_at_m, neg_data_tx)
      << "the thief finishes radiating before the negotiated DATA slot";
}

TEST(CsMac, NoStealWhenGapTooSmall) {
  // Dense pair: tau_jk = 0.133 s < data airtime 0.171 s, the paper's
  // CS-MAC feasibility premise fails and no steal may be attempted —
  // the Fig. 7 density mechanism.
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kCsMac, Vec3{0, 0, 0});
  const NodeId k = bed.add_node(MacKind::kCsMac, Vec3{200, 0, 0});
  const NodeId i = bed.add_node(MacKind::kCsMac, Vec3{-400, 0, 0});
  const NodeId m = bed.add_node(MacKind::kCsMac, Vec3{-400, 400, 0});
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(6.3), [&] { bed.mac(i).enqueue_packet(m, 2'048); });
  bed.sim().run_until(Time::from_seconds(120.0));

  EXPECT_EQ(bed.counters(i).extra_attempts, 0u);
  EXPECT_EQ(bed.counters(m).packets_delivered, 1u) << "delivered via normal contention later";
}

TEST(CsMac, ControlPacketsCarryTwoHopPiggyback) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kCsMac, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kCsMac, Vec3{0, 0, 0});
  bool rts_had_info = false;
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kRts) {
      rts_had_info = audit.frame.neighbor_info != nullptr;
    }
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));

  EXPECT_TRUE(rts_had_info) << "negotiation packets announce the one-hop table";
  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
  // §5.3 cost model: per-control surcharge grows with local degree
  // (24 base + 24 per known neighbor; s knows 1 neighbor and sends one
  // control frame, its RTS — DATA is not charged).
  EXPECT_EQ(bed.counters(s).piggyback_info_bits, 24u + 24u);
}

TEST(CsMac, FailedStealFallsBackToContention) {
  // The steal's target is within the thief's range but the ExAck path is
  // jammed by making the target non-operational right before the steal:
  // the thief must time out and deliver via normal contention later (to a
  // different, live target it cannot - so it drops after retries; the
  // point is clean fallback, not delivery).
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kCsMac, Vec3{0, 0, 0});
  const NodeId k = bed.add_node(MacKind::kCsMac, Vec3{1'400, 0, 0});
  const NodeId i = bed.add_node(MacKind::kCsMac, Vec3{-400, 0, 0});
  const NodeId m = bed.add_node(MacKind::kCsMac, Vec3{-400, 400, 0});
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(6.25), [&] {
    bed.node(m).modem().set_operational(false);  // target dies
    bed.mac(i).enqueue_packet(m, 2'048);
  });
  bed.sim().run_until(Time::from_seconds(900.0));

  EXPECT_EQ(bed.counters(i).extra_attempts, 1u) << "the steal was tried";
  EXPECT_EQ(bed.counters(i).extra_successes, 0u);
  EXPECT_EQ(bed.counters(i).packets_sent_ok, 0u);
  EXPECT_EQ(bed.counters(i).packets_dropped, 1u) << "clean retry-exhaustion fallback";
  EXPECT_EQ(bed.counters(j).packets_delivered, 1u) << "the negotiated exchange survived";
}

}  // namespace
}  // namespace aquamac

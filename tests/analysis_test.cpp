#include "stats/analysis.hpp"

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "net/network.hpp"

namespace aquamac {
namespace {

TraceEvent tx(double at_s, NodeId node, FrameType type, std::uint32_t bits, NodeId dst = 1,
              std::uint64_t seq = 1) {
  TraceEvent e{};
  e.kind = TraceEventKind::kTxStart;
  e.at = Time::from_seconds(at_s);
  e.node = node;
  e.src = node;
  e.dst = dst;
  e.frame_type = type;
  e.bits = bits;
  e.seq = seq;
  return e;
}

TraceEvent rx(double at_s, NodeId node, FrameType type, NodeId src, NodeId dst,
              std::uint64_t seq, bool ok = true,
              RxOutcome outcome = RxOutcome::kCollision) {
  TraceEvent e{};
  e.kind = ok ? TraceEventKind::kRxOk : TraceEventKind::kRxLost;
  e.at = Time::from_seconds(at_s);
  e.node = node;
  e.src = src;
  e.dst = dst;
  e.frame_type = type;
  e.bits = 64;
  e.seq = seq;
  e.outcome = ok ? RxOutcome::kSuccess : outcome;
  return e;
}

TimeInterval span(double a, double b) {
  return TimeInterval{Time::from_seconds(a), Time::from_seconds(b)};
}

TEST(Utilization, DisjointWindowsSum) {
  MemoryTrace trace;
  trace.record(tx(0.0, 1, FrameType::kData, 12'000));  // 1 s
  trace.record(tx(5.0, 2, FrameType::kData, 12'000));  // 1 s
  const UtilizationReport report = channel_utilization(trace, span(0, 10));
  EXPECT_EQ(report.transmissions, 2u);
  EXPECT_NEAR(report.busy_time.to_seconds(), 2.0, 1e-9);
  EXPECT_NEAR(report.busy_fraction, 0.2, 1e-9);
}

TEST(Utilization, OverlappingWindowsUnion) {
  MemoryTrace trace;
  trace.record(tx(0.0, 1, FrameType::kData, 12'000));   // [0, 1)
  trace.record(tx(0.5, 2, FrameType::kData, 12'000));   // [0.5, 1.5)
  const UtilizationReport report = channel_utilization(trace, span(0, 10));
  EXPECT_NEAR(report.busy_time.to_seconds(), 1.5, 1e-9);
  EXPECT_NEAR(report.total_airtime.to_seconds(), 2.0, 1e-9) << "sum, not union";
}

TEST(Utilization, ClipsToSpan) {
  MemoryTrace trace;
  trace.record(tx(9.5, 1, FrameType::kData, 12'000));  // extends past span end
  const UtilizationReport report = channel_utilization(trace, span(0, 10));
  EXPECT_NEAR(report.busy_time.to_seconds(), 0.5, 1e-9);
}

TEST(Airtime, SharesSumToOne) {
  MemoryTrace trace;
  trace.record(tx(0.0, 1, FrameType::kData, 2'048));
  trace.record(tx(1.0, 2, FrameType::kRts, 64));
  trace.record(tx(2.0, 3, FrameType::kHello, 64));
  const AirtimeBreakdown breakdown = airtime_breakdown(trace);
  EXPECT_NEAR(breakdown.data + breakdown.control + breakdown.discovery, 1.0, 1e-12);
  EXPECT_GT(breakdown.data, breakdown.control) << "2048 bits vs 64";
  EXPECT_NEAR(breakdown.control, breakdown.discovery, 1e-12);
}

TEST(Airtime, EmptyTraceIsZero) {
  const AirtimeBreakdown breakdown = airtime_breakdown(MemoryTrace{});
  EXPECT_EQ(breakdown.data, 0.0);
}

TEST(Losses, ClassifiedByOutcome) {
  MemoryTrace trace;
  trace.record(rx(1.0, 2, FrameType::kData, 1, 2, 1, true));
  trace.record(rx(2.0, 2, FrameType::kData, 1, 2, 2, false, RxOutcome::kCollision));
  trace.record(rx(3.0, 2, FrameType::kData, 1, 2, 3, false, RxOutcome::kHalfDuplexLoss));
  trace.record(rx(4.0, 2, FrameType::kData, 1, 2, 4, false, RxOutcome::kChannelError));
  const LossReport report = loss_report(trace);
  EXPECT_EQ(report.receptions_ok, 1u);
  EXPECT_EQ(report.collisions, 1u);
  EXPECT_EQ(report.half_duplex, 1u);
  EXPECT_EQ(report.channel_errors, 1u);
  EXPECT_NEAR(report.loss_ratio(), 0.75, 1e-12);
}

TEST(Handshakes, ReconstructsCompleteChain) {
  MemoryTrace trace;
  // s=1 -> r=2, seq 5: RTS tx, CTS rx at 1, DATA rx at 2, ACK rx at 1.
  trace.record(tx(0.0, 1, FrameType::kRts, 64, 2, 5));
  trace.record(rx(1.2, 1, FrameType::kCts, 2, 1, 5));
  trace.record(rx(2.5, 2, FrameType::kData, 1, 2, 5));
  trace.record(rx(3.8, 1, FrameType::kAck, 2, 1, 5));
  const HandshakeReport report = reconstruct_handshakes(trace);
  EXPECT_EQ(report.rts_sent, 1u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_NEAR(report.completion_ratio, 1.0, 1e-12);
  EXPECT_NEAR(report.mean_duration.to_seconds(), 3.8, 1e-9);
}

TEST(Handshakes, IncompleteChainsDoNotCount) {
  MemoryTrace trace;
  trace.record(tx(0.0, 1, FrameType::kRts, 64, 2, 5));
  trace.record(rx(1.2, 1, FrameType::kCts, 2, 1, 5));
  // no DATA/ACK
  trace.record(tx(10.0, 3, FrameType::kRts, 64, 4, 9));  // never answered
  const HandshakeReport report = reconstruct_handshakes(trace);
  EXPECT_EQ(report.rts_sent, 2u);
  EXPECT_EQ(report.completed, 0u);
}

TEST(Analysis, FullRunCrossChecksCounters) {
  MemoryTrace trace;
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kSFama;
  config.trace = &trace;
  Simulator sim;
  Network network{sim, config};
  const RunStats stats = network.run();

  const LossReport losses = loss_report(trace);
  EXPECT_EQ(losses.total_lost(), stats.rx_collisions)
      << "trace-side loss count equals the MACs' aggregated counter";

  const HandshakeReport handshakes = reconstruct_handshakes(trace);
  EXPECT_EQ(handshakes.rts_sent, stats.handshake_attempts);
  EXPECT_EQ(handshakes.completed, stats.handshake_successes);

  const UtilizationReport util = channel_utilization(
      trace, TimeInterval{Time::zero(), sim.now()}, config.bit_rate_bps);
  EXPECT_GT(util.busy_fraction, 0.0);
  EXPECT_LT(util.busy_fraction, 1.0);

  const std::string report = analysis_report(
      trace, TimeInterval{Time::zero(), sim.now()}, config.bit_rate_bps);
  EXPECT_NE(report.find("Channel utilization"), std::string::npos);
  EXPECT_NE(report.find("Handshakes"), std::string::npos);
}

TEST(NodeActivityReport, CountsPerNode) {
  MemoryTrace trace;
  trace.record(tx(0.0, 1, FrameType::kRts, 64, 2, 1));
  trace.record(rx(1.0, 2, FrameType::kRts, 1, 2, 1));
  trace.record(rx(2.0, 2, FrameType::kData, 3, 2, 1, false));
  const auto activity = node_activity(trace);
  EXPECT_EQ(activity.at(1).frames_sent, 1u);
  EXPECT_EQ(activity.at(2).frames_received, 1u);
  EXPECT_EQ(activity.at(2).losses_seen, 1u);
}

}  // namespace
}  // namespace aquamac

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace aquamac {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(Time::from_seconds(1.0), [&] { seen.push_back(sim.now().to_seconds()); });
  sim.at(Time::from_seconds(2.5), [&] { seen.push_back(sim.now().to_seconds()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(sim.now(), Time::from_seconds(2.5));
}

TEST(Simulator, InSchedulesRelative) {
  Simulator sim;
  Time fired{};
  sim.at(Time::from_seconds(1.0), [&] {
    sim.in(Duration::milliseconds(500), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time::from_seconds(1.5));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.at(Time::from_seconds(2.0), [&] {
    EXPECT_THROW(sim.at(Time::from_seconds(1.0), [] {}), std::logic_error);
  });
  sim.run();
}

TEST(Simulator, SchedulingAtNowIsAllowedAndRunsSameInstant) {
  Simulator sim;
  bool nested = false;
  sim.at(Time::from_seconds(1.0), [&] {
    sim.at(sim.now(), [&] { nested = true; });
  });
  sim.run();
  EXPECT_TRUE(nested);
  EXPECT_EQ(sim.now(), Time::from_seconds(1.0));
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(Time::from_seconds(1.0), [&] { ++fired; });
  sim.at(Time::from_seconds(10.0), [&] { ++fired; });
  const auto count = sim.run_until(Time::from_seconds(5.0));
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::from_seconds(5.0)) << "clock parks at the horizon";
  EXPECT_TRUE(sim.has_pending());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle handle = sim.at(Time::from_seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.at(Time::from_seconds(1.0), [&] {
    ++fired;
    sim.stop();
  });
  sim.at(Time::from_seconds(2.0), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsExecutedAccumulates) {
  Simulator sim;
  for (int i = 1; i <= 5; ++i) sim.at(Time::from_seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CascadedSchedulingRunsToCompletion) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.in(Duration::milliseconds(1), recurse);
  };
  sim.in(Duration::milliseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), Time::zero() + Duration::milliseconds(100));
}

}  // namespace
}  // namespace aquamac

// SpatialReceiverIndex unit and property tests: the 27-cell candidate
// query must be a superset of the true in-range receiver set for any
// cloud and any query point (including nodes exactly on range and cell
// boundaries), must preserve attach order, and must follow movers
// through epoch-gated refresh. Plus the channel-level cutoff wiring:
// kLevelBased derives its interference cutoff by inverting the link
// budget at the effective floor.

#include "channel/spatial_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

#include "channel/absorption.hpp"
#include "channel/acoustic_channel.hpp"
#include "channel/noise.hpp"
#include "channel/reception.hpp"
#include "phy/modem.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace aquamac {
namespace {

/// Owns the Simulator/reception plumbing AcousticModem construction needs.
class SpatialIndexTest : public ::testing::Test {
 protected:
  AcousticModem& make_modem(NodeId id, Vec3 position) {
    auto modem =
        std::make_unique<AcousticModem>(sim_, id, ModemConfig{}, reception_, Rng{900 + id});
    modem->set_position(position);
    modems_.push_back(std::move(modem));
    return *modems_.back();
  }

  Simulator sim_;
  DeterministicCollisionModel reception_;
  std::vector<std::unique_ptr<AcousticModem>> modems_;
};

TEST_F(SpatialIndexTest, CandidatesCoverInRangeSetOnRandomClouds) {
  Rng rng{42};
  for (int trial = 0; trial < 20; ++trial) {
    const double range = rng.uniform(50.0, 3'000.0);
    SpatialReceiverIndex index{range};
    modems_.clear();
    const std::size_t n = 5 + rng.below(60);
    for (std::size_t i = 0; i < n; ++i) {
      AcousticModem& modem = make_modem(static_cast<NodeId>(i),
                                        Vec3{rng.uniform(-5'000.0, 5'000.0),
                                             rng.uniform(-5'000.0, 5'000.0),
                                             rng.uniform(-5'000.0, 5'000.0)});
      index.insert(modem);
    }
    for (int query = 0; query < 10; ++query) {
      const Vec3 center{rng.uniform(-5'000.0, 5'000.0), rng.uniform(-5'000.0, 5'000.0),
                        rng.uniform(-5'000.0, 5'000.0)};
      std::vector<AcousticModem*> candidates;
      std::vector<std::size_t> scratch;
      index.candidates(center, candidates, scratch);

      std::unordered_set<const AcousticModem*> candidate_set(candidates.begin(),
                                                             candidates.end());
      EXPECT_EQ(candidate_set.size(), candidates.size()) << "duplicate candidates";
      for (const auto& modem : modems_) {
        if (center.distance_to(modem->position()) <= range) {
          EXPECT_TRUE(candidate_set.contains(modem.get()))
              << "trial " << trial << ": in-range modem " << modem->id()
              << " missing from candidates";
        }
      }
      // Attach-order contract: candidate ids ascend because insertion
      // order here is id order.
      EXPECT_TRUE(std::is_sorted(
          candidates.begin(), candidates.end(),
          [](const AcousticModem* a, const AcousticModem* b) { return a->id() < b->id(); }));
    }
  }
}

TEST_F(SpatialIndexTest, ExactBoundaryNodesAreCandidates) {
  const double range = 1'500.0;
  SpatialReceiverIndex index{range};
  // Exactly on the range sphere, exactly on cell boundaries (coordinates
  // at integer multiples of the cell size), and at the query point itself.
  index.insert(make_modem(0, Vec3{range, 0, 0}));
  index.insert(make_modem(1, Vec3{0, range, 0}));
  index.insert(make_modem(2, Vec3{range, range, range}));
  index.insert(make_modem(3, Vec3{0, 0, 0}));
  index.insert(make_modem(4, Vec3{-range, 0, 0}));

  std::vector<AcousticModem*> candidates;
  std::vector<std::size_t> scratch;
  index.candidates(Vec3{0, 0, 0}, candidates, scratch);
  EXPECT_EQ(candidates.size(), 5u);

  // A query centered just inside a cell boundary still sees neighbours a
  // full range away on the other side.
  index.candidates(Vec3{range - 1e-9, 0, 0}, candidates, scratch);
  std::unordered_set<const AcousticModem*> set(candidates.begin(), candidates.end());
  EXPECT_TRUE(set.contains(modems_[3].get()));
  EXPECT_TRUE(set.contains(modems_[0].get()));
}

TEST_F(SpatialIndexTest, RefreshRebinsOnlyOnRealCellCrossings) {
  SpatialReceiverIndex index{100.0};
  AcousticModem& mover = make_modem(0, Vec3{50, 50, 50});
  index.insert(mover);
  EXPECT_EQ(index.rebins(), 0u);

  // Move within the same cell: epoch advances, binning does not.
  mover.set_position(Vec3{60, 50, 50});
  index.refresh(mover);
  EXPECT_EQ(index.rebins(), 0u);

  // Cross a cell boundary: one re-bin, and queries follow the move.
  mover.set_position(Vec3{260, 50, 50});
  index.refresh(mover);
  EXPECT_EQ(index.rebins(), 1u);
  std::vector<AcousticModem*> candidates;
  std::vector<std::size_t> scratch;
  index.candidates(Vec3{50, 50, 50}, candidates, scratch);
  EXPECT_TRUE(candidates.empty()) << "stale binning: mover left this neighbourhood";
  index.candidates(Vec3{250, 50, 50}, candidates, scratch);
  ASSERT_EQ(candidates.size(), 1u);

  // Same epoch again: refresh is a no-op.
  index.refresh(mover);
  EXPECT_EQ(index.rebins(), 1u);

  // Unknown modems are ignored (moves before attach).
  AcousticModem& stranger = make_modem(1, Vec3{0, 0, 0});
  index.refresh(stranger);
  EXPECT_EQ(index.size(), 1u);
}

TEST_F(SpatialIndexTest, InsertTwiceThrows) {
  SpatialReceiverIndex index{100.0};
  AcousticModem& modem = make_modem(0, Vec3{});
  index.insert(modem);
  EXPECT_THROW(index.insert(modem), std::logic_error);
}

TEST_F(SpatialIndexTest, DegenerateCellSizeIsClamped) {
  SpatialReceiverIndex index{0.0};
  EXPECT_EQ(index.cell_size_m(), 1.0);
}

// --- channel-level cutoff wiring ------------------------------------

TEST(ChannelCutoff, RangeBasedCutoffIsInterferenceRange) {
  Simulator sim;
  StraightLinePropagation propagation{1'500.0};
  ChannelConfig config{};
  config.interference_range_m = 2'000.0;
  config.comm_range_m = 1'500.0;
  AcousticChannel channel{sim, propagation, config};
  EXPECT_DOUBLE_EQ(channel.interference_cutoff_m(), 2'000.0);
}

TEST(ChannelCutoff, LevelBasedCutoffInvertsLinkBudgetAtEffectiveFloor) {
  Simulator sim;
  StraightLinePropagation propagation{1'500.0};
  ChannelConfig config{};
  config.mode = DeliveryMode::kLevelBased;
  AcousticChannel channel{sim, propagation, config};

  const double noise = noise_level_db(config.freq_khz, config.bandwidth_hz, config.noise);
  const double expected_floor =
      std::max(config.interference_floor_db, noise - kNegligibleInterferenceMarginDb);
  EXPECT_DOUBLE_EQ(channel.effective_interference_floor_db(), expected_floor);

  // At the cutoff the link budget is exactly spent (up to the bisection
  // tolerance); a metre farther it is overspent.
  const double cutoff = channel.interference_cutoff_m();
  const double budget = config.source_level_db - expected_floor;
  EXPECT_GE(transmission_loss_db(cutoff + 1.0, config.freq_khz, config.spreading), budget);
  EXPECT_LE(transmission_loss_db(cutoff - 1.0, config.freq_khz, config.spreading), budget);

  // Every reachable receiver (rx level >= floor) lies inside the cutoff:
  // the predicate the spatial cells are sized for.
  const double rx_at_cutoff =
      config.source_level_db - transmission_loss_db(cutoff, config.freq_khz, config.spreading);
  EXPECT_NEAR(rx_at_cutoff, expected_floor, 1e-2);
}

TEST(ChannelCutoff, RaisedFloorWinsWhenConfiguredFloorIsBelowNoise) {
  // Default numbers: band noise ~70 dB, configured floor 40 dB -> the
  // effective floor is noise - 30, not the configured value.
  Simulator sim;
  StraightLinePropagation propagation{1'500.0};
  ChannelConfig config{};
  config.mode = DeliveryMode::kLevelBased;
  config.interference_floor_db = 0.0;
  AcousticChannel channel{sim, propagation, config};
  const double noise = noise_level_db(config.freq_khz, config.bandwidth_hz, config.noise);
  EXPECT_DOUBLE_EQ(channel.effective_interference_floor_db(),
                   noise - kNegligibleInterferenceMarginDb);
  EXPECT_LT(channel.interference_cutoff_m(), 1e7);
}

}  // namespace
}  // namespace aquamac

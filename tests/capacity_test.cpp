// The analytic capacity model, and the simulator validated against it:
// in a single collision domain, measured saturation throughput must stay
// below the closed-form bound and approach it within a contention factor.

#include "stats/capacity.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "util/samples.hpp"

namespace aquamac {
namespace {

TEST(Capacity, Table2Numbers) {
  const CapacityParams params{};  // Table 2 defaults
  // omega = 64/12000 = 5.33 ms; |ts| = 1.00533 s.
  EXPECT_NEAR(capacity_slot_length(params).to_seconds(), 1.005333, 1e-5);
  // Data occupancy: ceil((0.17067 + 1)/1.00533) = 2; cycle = 5 slots.
  EXPECT_EQ(exchange_slots(params), 5);
  // 2048 bits per 5.0267 s = 0.4074 kbps.
  EXPECT_NEAR(single_domain_handshake_capacity_kbps(params), 0.4074, 1e-3);
  EXPECT_NEAR(ewmac_capacity_upper_bound_kbps(params, 1), 0.8148, 2e-3);
  EXPECT_NEAR(raw_channel_capacity_kbps(params), 12.0, 1e-12);
}

TEST(Capacity, LargerPacketsAmortizeBetter) {
  CapacityParams small{};
  small.data_bits = 1'024;
  CapacityParams large{};
  large.data_bits = 4'096;
  EXPECT_GT(single_domain_handshake_capacity_kbps(large),
            single_domain_handshake_capacity_kbps(small))
      << "the paper's §2 argument for large packets";
}

TEST(Capacity, ShorterRangeShortensSlots) {
  CapacityParams near{};
  near.tau_max = Duration::milliseconds(200);
  CapacityParams far{};
  far.tau_max = Duration::seconds(1);
  EXPECT_GT(single_domain_handshake_capacity_kbps(near),
            single_domain_handshake_capacity_kbps(far));
}

class SingleDomainValidation : public ::testing::Test {
 protected:
  // All nodes inside a 500 m ball: everyone hears everyone — exactly the
  // single-collision-domain regime of the analytic model.
  static ScenarioConfig config_for(MacKind kind) {
    ScenarioConfig config = paper_default_scenario();
    config.mac = kind;
    config.node_count = 12;
    config.deployment.kind = DeploymentKind::kGrid;
    config.deployment.width_m = 500.0;
    config.deployment.length_m = 500.0;
    config.deployment.depth_m = 500.0;
    config.deployment.jitter_m = 30.0;
    config.enable_mobility = false;
    config.traffic.offered_load_kbps = 1.2;  // deep saturation
    config.sim_time = Duration::seconds(400);
    return config;
  }
};

TEST_F(SingleDomainValidation, SFamaStaysBelowAnalyticBound) {
  const CapacityParams params{};
  const double bound = single_domain_handshake_capacity_kbps(params);
  Samples measured;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ScenarioConfig config = config_for(MacKind::kSFama);
    config.seed = seed;
    measured.add(run_scenario(config).throughput_kbps);
  }
  EXPECT_LT(measured.max(), bound * 1.02) << "bound is strict (2% numeric slack)";
  EXPECT_GT(measured.mean(), bound * 0.25)
      << "contention costs something, but the channel is not idle";
}

TEST_F(SingleDomainValidation, EwMacStaysBelowItsBound) {
  const CapacityParams params{};
  const double bound = ewmac_capacity_upper_bound_kbps(params, 1);
  Samples measured;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ScenarioConfig config = config_for(MacKind::kEwMac);
    config.seed = seed;
    measured.add(run_scenario(config).throughput_kbps);
  }
  EXPECT_LT(measured.max(), bound * 1.02);
}

TEST_F(SingleDomainValidation, EwMacBeatsSFamaInTheDomain) {
  double sfama = 0.0;
  double ewmac = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ScenarioConfig sf = config_for(MacKind::kSFama);
    sf.seed = seed;
    sfama += run_scenario(sf).throughput_kbps;
    ScenarioConfig ew = config_for(MacKind::kEwMac);
    ew.seed = seed;
    ewmac += run_scenario(ew).throughput_kbps;
  }
  EXPECT_GT(ewmac, sfama);
}

TEST(SamplesTest, Percentiles) {
  Samples samples;
  for (int i = 1; i <= 100; ++i) samples.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(samples.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100.0), 100.0);
  EXPECT_NEAR(samples.percentile(50.0), 50.5, 1e-9);
  EXPECT_NEAR(samples.percentile(95.0), 95.05, 1e-9);
  EXPECT_THROW((void)samples.percentile(101.0), std::invalid_argument);
}

TEST(SamplesTest, Moments) {
  Samples samples;
  samples.add(2.0);
  samples.add(4.0);
  samples.add(6.0);
  EXPECT_DOUBLE_EQ(samples.mean(), 4.0);
  EXPECT_DOUBLE_EQ(samples.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(samples.min(), 2.0);
  EXPECT_DOUBLE_EQ(samples.max(), 6.0);
}

TEST(SamplesTest, EmptyAndSingle) {
  Samples samples;
  EXPECT_TRUE(samples.empty());
  EXPECT_DOUBLE_EQ(samples.mean(), 0.0);
  EXPECT_DOUBLE_EQ(samples.percentile(50.0), 0.0);
  samples.add(7.0);
  EXPECT_DOUBLE_EQ(samples.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(samples.percentile(50.0), 7.0);
}

TEST(SamplesTest, AddAfterPercentileResorts) {
  Samples samples;
  samples.add(10.0);
  EXPECT_DOUBLE_EQ(samples.percentile(50.0), 10.0);
  samples.add(0.0);
  EXPECT_DOUBLE_EQ(samples.min(), 0.0);
}

TEST(SamplesTest, OrderStatisticsPreserveInsertionOrder) {
  // percentile() used to sort values_ in place behind const, silently
  // reordering the insertion-order sequence values() documents (the
  // trace analysis pairs it with event order) — and racing when sweep
  // workers shared one const Samples. Order statistics must sort a
  // separate cache.
  Samples samples;
  const std::vector<double> inserted{5.0, 1.0, 4.0, 2.0, 3.0};
  for (double v : inserted) samples.add(v);
  EXPECT_DOUBLE_EQ(samples.percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(samples.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_EQ(samples.values(), inserted) << "const query reordered the samples";
  samples.add(0.5);
  EXPECT_DOUBLE_EQ(samples.percentile(0.0), 0.5) << "cache not refreshed after add";
  EXPECT_EQ(samples.values().back(), 0.5);
}

TEST(SamplesParallel, ConcurrentConstReadersAreRaceFree) {
  // The regression the ThreadSanitizer job pins: many threads reading
  // percentiles from one shared const Samples, as sweep workers do.
  Samples samples;
  for (int i = 999; i >= 0; --i) samples.add(static_cast<double>(i));
  const Samples& shared = samples;
  std::vector<std::thread> readers;
  readers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&shared] {
      for (int k = 0; k <= 100; ++k) {
        EXPECT_NEAR(shared.percentile(static_cast<double>(k)),
                    static_cast<double>(k) / 100.0 * 999.0, 1e-9);
      }
      EXPECT_DOUBLE_EQ(shared.min(), 0.0);
      EXPECT_DOUBLE_EQ(shared.max(), 999.0);
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(shared.values().front(), 999.0) << "insertion order disturbed";
}

}  // namespace
}  // namespace aquamac

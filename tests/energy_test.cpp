#include "phy/energy.hpp"

#include <gtest/gtest.h>

namespace aquamac {
namespace {

TEST(EnergyMeter, IdleOnlyBaseline) {
  const EnergyMeter meter{};  // defaults: tx 2 W, rx 0.75 W, idle 50 mW
  const double joules = meter.energy_joules(Duration::seconds(100));
  EXPECT_NEAR(joules, 0.05 * 100.0, 1e-12);
  EXPECT_NEAR(meter.mean_power_w(Duration::seconds(100)), 0.05, 1e-12);
}

TEST(EnergyMeter, MixedStatesSumExactly) {
  EnergyMeter meter{};
  meter.add_tx_time(Duration::seconds(10));
  meter.add_rx_time(Duration::seconds(20));
  const double joules = meter.energy_joules(Duration::seconds(100));
  EXPECT_NEAR(joules, 2.0 * 10.0 + 0.75 * 20.0 + 0.05 * 70.0, 1e-9);
}

TEST(EnergyMeter, CustomProfile) {
  const PowerProfile profile{.tx_w = 5.0, .rx_w = 1.0, .idle_w = 0.0};
  EnergyMeter meter{profile};
  meter.add_tx_time(Duration::seconds(2));
  EXPECT_NEAR(meter.energy_joules(Duration::seconds(10)), 10.0, 1e-12);
}

TEST(EnergyMeter, ActiveTimeBeyondElapsedNeverGoesNegativeIdle) {
  EnergyMeter meter{};
  meter.add_tx_time(Duration::seconds(10));
  // Elapsed shorter than accounted activity: idle clamps to zero.
  EXPECT_NEAR(meter.energy_joules(Duration::seconds(5)), 20.0, 1e-12);
}

TEST(EnergyMeter, ZeroElapsed) {
  const EnergyMeter meter{};
  EXPECT_DOUBLE_EQ(meter.mean_power_w(Duration::zero()), 0.0);
}

TEST(EnergyMeter, AccumulationIsAdditive) {
  EnergyMeter meter{};
  for (int i = 0; i < 100; ++i) meter.add_tx_time(Duration::milliseconds(10));
  EXPECT_EQ(meter.tx_time(), Duration::seconds(1));
}

TEST(EnergyMeter, TxDominatesRxDominatesIdle) {
  // The modeled ordering that drives Fig. 9: transmitting costs more than
  // receiving costs more than waiting.
  const PowerProfile profile{};
  EXPECT_GT(profile.tx_w, profile.rx_w);
  EXPECT_GT(profile.rx_w, profile.idle_w);
}

}  // namespace
}  // namespace aquamac

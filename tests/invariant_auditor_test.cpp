// The InvariantAuditor against both synthetic event streams (each
// invariant must trip on a deliberately broken fixture and stay quiet on
// the matching healthy one) and live simulations (the default EW-MAC
// scenario must audit clean; a hard-fail grid soaks EW-MAC, S-FAMA and
// MACA-U).

#include "stats/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace aquamac {
namespace {

/// Whole-second slots (omega 100 ms + tau_max 900 ms), exact checks.
InvariantAuditor::Config synthetic_config() {
  InvariantAuditor::Config config{};
  config.slotted = true;
  config.omega = Duration::milliseconds(100);
  config.tau_max = Duration::milliseconds(900);
  config.slot_length = config.omega + config.tau_max;
  config.sync_tolerance = Duration::zero();
  return config;
}

TraceEvent tx(double t_s, NodeId node, FrameType type, NodeId dst, std::uint64_t seq,
              double airtime_s) {
  TraceEvent event{};
  event.kind = TraceEventKind::kTxStart;
  event.at = Time::from_seconds(t_s);
  event.node = node;
  event.frame_type = type;
  event.src = node;
  event.dst = dst;
  event.seq = seq;
  event.window_begin = event.at;
  event.window_end = event.at + Duration::from_seconds(airtime_s);
  return event;
}

TraceEvent rx(TraceEventKind kind, double begin_s, double end_s, NodeId node, FrameType type,
              NodeId src, NodeId dst, std::uint64_t seq) {
  TraceEvent event{};
  event.kind = kind;
  event.at = Time::from_seconds(end_s);
  event.node = node;
  event.frame_type = type;
  event.src = src;
  event.dst = dst;
  event.seq = seq;
  event.window_begin = Time::from_seconds(begin_s);
  event.window_end = Time::from_seconds(end_s);
  return event;
}

TraceEvent neighbor_update(double t_s, NodeId node, FrameType type, NodeId src, NodeId dst,
                           std::uint64_t seq, Duration recorded) {
  TraceEvent event{};
  event.kind = TraceEventKind::kNeighborUpdate;
  event.at = Time::from_seconds(t_s);
  event.node = node;
  event.frame_type = type;
  event.src = src;
  event.dst = dst;
  event.seq = seq;
  event.a = recorded.count_ns();
  return event;
}

TEST(InvariantAuditor, OffSlotStartFlagged) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(tx(2.0, 1, FrameType::kRts, 2, 5, 0.005));  // on the boundary
  EXPECT_TRUE(auditor.violations().empty());
  auditor.record(tx(3.25, 1, FrameType::kRts, 2, 6, 0.005));  // 250 ms late
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kOffSlotStart);
  EXPECT_GE(auditor.checks(), 2u);
}

TEST(InvariantAuditor, UnslottedProtocolsSkipSlotChecks) {
  InvariantAuditor::Config config = synthetic_config();
  config.slotted = false;
  InvariantAuditor auditor{config};
  auditor.record(tx(3.25, 1, FrameType::kRts, 2, 6, 0.005));
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, AckSlotMatchingEq5Passes) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(tx(0.0, 1, FrameType::kData, 2, 5, 0.1));
  auditor.record(rx(TraceEventKind::kRxOk, 0.5, 0.6, 2, FrameType::kData, 1, 2, 5));
  // Eq. (5): slot(tx) + ceil((0.1 + 0.5) / 1.0) = 0 + 1.
  auditor.record(tx(1.0, 2, FrameType::kAck, 1, 5, 0.005));
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_GE(auditor.checks(), 3u);
}

TEST(InvariantAuditor, AckInWrongSlotFlagged) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(tx(0.0, 1, FrameType::kData, 2, 5, 0.1));
  auditor.record(rx(TraceEventKind::kRxOk, 0.5, 0.6, 2, FrameType::kData, 1, 2, 5));
  auditor.record(tx(2.0, 2, FrameType::kAck, 1, 5, 0.005));  // one slot late
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kAckSlotMismatch);
}

// The acceptance fixture: a deliberately mis-scheduled extra packet whose
// sender knew the negotiation and the receiver, landing on a negotiated
// DATA window at that receiver.
TEST(InvariantAuditor, MisScheduledExtraPacketFlagged) {
  InvariantAuditor auditor{synthetic_config()};
  // Node 3 decodes the exchange (1 -> 2, seq 7) and hears node 2 itself.
  auditor.record(rx(TraceEventKind::kRxOk, 0.1, 0.2, 3, FrameType::kRts, 1, 2, 7));
  auditor.record(rx(TraceEventKind::kRxOk, 0.3, 0.4, 3, FrameType::kCts, 2, 1, 7));
  // Node 3's EXDATA garbles the negotiated DATA at receiver 2.
  auditor.record(rx(TraceEventKind::kRxLost, 1.1, 1.2, 2, FrameType::kExData, 3, 1, 9));
  auditor.record(rx(TraceEventKind::kRxOk, 1.0, 1.3, 2, FrameType::kData, 1, 2, 7));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kExtraOverlap);
  EXPECT_EQ(auditor.violations()[0].src, 3u);
  EXPECT_EQ(auditor.violations()[0].node, 2u);
}

TEST(InvariantAuditor, HiddenTerminalClashIsExempt) {
  // Same clash, but node 3 never decoded the negotiation: the theorem
  // does not cover what the sender could not predict.
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(rx(TraceEventKind::kRxLost, 1.1, 1.2, 2, FrameType::kExData, 3, 1, 9));
  auditor.record(rx(TraceEventKind::kRxOk, 1.0, 1.3, 2, FrameType::kData, 1, 2, 7));
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, StaleAttemptDecodeIsExempt) {
  // Node 3 decoded only the *first* attempt of exchange (1 -> 2, seq 7);
  // that attempt died (node 1 never got the CTS) and node 1 retried. The
  // retry restarts the schedule, node 3 misses every retry frame, so its
  // clash with the retried DATA is hidden-terminal noise, not a theorem
  // violation.
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(tx(0.0, 1, FrameType::kRts, 2, 7, 0.005));
  auditor.record(rx(TraceEventKind::kRxOk, 0.1, 0.2, 3, FrameType::kRts, 1, 2, 7));
  auditor.record(rx(TraceEventKind::kRxOk, 0.3, 0.4, 3, FrameType::kCts, 2, 1, 7));
  auditor.record(tx(5.0, 1, FrameType::kRts, 2, 7, 0.005));  // the retry
  auditor.record(rx(TraceEventKind::kRxLost, 6.1, 6.2, 2, FrameType::kExData, 3, 1, 9));
  auditor.record(rx(TraceEventKind::kRxOk, 6.0, 6.3, 2, FrameType::kData, 1, 2, 7));
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, CurrentAttemptDecodeStillFlagged) {
  // Same retry, but node 3 also decodes the retry's CTS: its knowledge is
  // of the current attempt, so the clash is a genuine violation.
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(tx(0.0, 1, FrameType::kRts, 2, 7, 0.005));
  auditor.record(rx(TraceEventKind::kRxOk, 0.1, 0.2, 3, FrameType::kRts, 1, 2, 7));
  auditor.record(rx(TraceEventKind::kRxOk, 0.3, 0.4, 3, FrameType::kCts, 2, 1, 7));
  auditor.record(tx(5.0, 1, FrameType::kRts, 2, 7, 0.005));  // the retry
  auditor.record(rx(TraceEventKind::kRxOk, 5.3, 5.4, 3, FrameType::kCts, 2, 1, 7));
  auditor.record(rx(TraceEventKind::kRxLost, 6.1, 6.2, 2, FrameType::kExData, 3, 1, 9));
  auditor.record(rx(TraceEventKind::kRxOk, 6.0, 6.3, 2, FrameType::kData, 1, 2, 7));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kExtraOverlap);
  EXPECT_EQ(auditor.violations()[0].src, 3u);
}

TEST(InvariantAuditor, NeighborDelayDriftFlagged) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(tx(1.0, 1, FrameType::kCts, 2, 3, 0.1));
  auditor.record(rx(TraceEventKind::kRxOk, 1.4, 1.5, 2, FrameType::kCts, 1, 2, 3));
  // True propagation delay is 400 ms; an exact record passes...
  auditor.record(
      neighbor_update(1.5, 2, FrameType::kCts, 1, 2, 3, Duration::milliseconds(400)));
  EXPECT_TRUE(auditor.violations().empty());
  // ...a drifted one does not.
  auditor.record(
      neighbor_update(1.5, 2, FrameType::kCts, 1, 2, 3, Duration::milliseconds(700)));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kNeighborDelayDrift);
}

// --- routing invariants (e)/(f): synthetic relay streams ---------------

TraceEvent relay_event(TraceEventKind kind, double t_s, NodeId node, NodeId origin,
                       std::uint64_t e2e, std::int64_t a, std::int64_t b) {
  TraceEvent event{};
  event.kind = kind;
  event.at = Time::from_seconds(t_s);
  event.node = node;
  event.src = origin;
  event.seq = e2e;
  event.a = a;
  event.b = b;
  return event;
}

TraceEvent route_update(double t_s, NodeId node) {
  TraceEvent event{};
  event.kind = TraceEventKind::kRouteUpdate;
  event.at = Time::from_seconds(t_s);
  event.node = node;
  return event;
}

TEST(InvariantAuditor, PacketRevisitFlagged) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(relay_event(TraceEventKind::kRelayOriginate, 0.0, 5, 5, 42, 1, 3));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 1.0, 4, 5, 42, 2, 2));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 2.0, 3, 5, 42, 3, 1));
  EXPECT_TRUE(auditor.violations().empty());
  // The packet comes back through node 4: a routing loop.
  auditor.record(relay_event(TraceEventKind::kRelayForward, 3.0, 4, 5, 42, 4, 2));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kPacketRevisit);
  EXPECT_EQ(auditor.violations()[0].node, 4u);
  EXPECT_EQ(auditor.violations()[0].seq, 42u);
}

TEST(InvariantAuditor, RevisitDuringRouteChurnIsExempt) {
  InvariantAuditor::Config config = synthetic_config();
  config.route_grace = Duration::seconds(10);
  InvariantAuditor auditor{config};
  auditor.record(relay_event(TraceEventKind::kRelayOriginate, 0.0, 5, 5, 42, 1, 3));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 1.0, 4, 5, 42, 2, 2));
  // A route changed somewhere: the next ten seconds are re-convergence.
  auditor.record(route_update(1.5, 3));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 2.0, 3, 5, 42, 3, 1));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 3.0, 4, 5, 42, 4, 2));
  EXPECT_TRUE(auditor.violations().empty()) << "loop during churn must be exempt";
  // Once the grace window passes, a fresh loop is a violation again.
  auditor.record(relay_event(TraceEventKind::kRelayOriginate, 20.0, 5, 5, 43, 1, 3));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 21.0, 4, 5, 43, 2, 2));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 22.0, 4, 5, 43, 3, 2));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kPacketRevisit);
}

TEST(InvariantAuditor, HopCountWithinAdvertisedRoutePasses) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(relay_event(TraceEventKind::kRelayOriginate, 0.0, 5, 5, 42, 1, 2));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 1.0, 4, 5, 42, 2, 1));
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 2.0, 0, 5, 42, 2, 0));
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_GE(auditor.checks(), 1u);
}

TEST(InvariantAuditor, HopCountExceedingAdvertisedRouteFlagged) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(relay_event(TraceEventKind::kRelayOriginate, 0.0, 5, 5, 42, 1, 2));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 1.0, 4, 5, 42, 2, 1));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 2.0, 3, 5, 42, 3, 1));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 3.0, 2, 5, 42, 4, 1));
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 4.0, 0, 5, 42, 4, 0));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kHopCountExceedsRoute);
  EXPECT_EQ(auditor.violations()[0].seq, 42u);
}

TEST(InvariantAuditor, HopCountAfterMidFlightRerouteIsExempt) {
  InvariantAuditor auditor{synthetic_config()};
  auditor.record(relay_event(TraceEventKind::kRelayOriginate, 0.0, 5, 5, 42, 1, 2));
  // The network re-routed while the packet was in flight: a longer
  // realized path is legitimate.
  auditor.record(route_update(1.5, 3));
  auditor.record(relay_event(TraceEventKind::kRelayForward, 2.0, 3, 5, 42, 3, 1));
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 4.0, 0, 5, 42, 4, 0));
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, HardFailThrowsOnFirstViolation) {
  InvariantAuditor::Config config = synthetic_config();
  config.hard_fail = true;
  InvariantAuditor auditor{config};
  EXPECT_THROW(auditor.record(tx(3.25, 1, FrameType::kRts, 2, 6, 0.005)),
               std::runtime_error);
}

// Acceptance: the default EW-MAC test scenario audits clean while the
// auditor demonstrably evaluates a nontrivial number of checks.
TEST(InvariantAuditor, CleanOnDefaultEwMacScenario) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  InvariantAuditor auditor{auditor_config_for(config)};
  config.trace = &auditor;
  (void)run_scenario(config);
  for (const auto& v : auditor.violations()) {
    ADD_FAILURE() << "[" << to_string(v.kind) << "] node " << v.node << " at "
                  << v.at.to_string() << ": " << v.detail;
  }
  EXPECT_GT(auditor.checks(), 100u);
}

// The CI soak: every audited protocol across light and saturating loads,
// hard-fail mode — any violation aborts the run with the full violation
// context in what(). The heavy loads drive EW-MAC's extra phase, so the
// overlap theorem (invariant (a)) is genuinely exercised, not vacuous.
TEST(AuditorSoak, HardFailGridEwMacSFamaMacaU) {
  for (const MacKind kind : {MacKind::kEwMac, MacKind::kSFama, MacKind::kMacaU}) {
    for (const double load : {0.2, 0.5, 1.5}) {
      ScenarioConfig config = small_test_scenario();
      config.mac = kind;
      config.sim_time = Duration::seconds(150);
      config.traffic.offered_load_kbps = load;
      InvariantAuditor::Config audit = auditor_config_for(config);
      audit.hard_fail = true;
      InvariantAuditor auditor{audit};
      config.trace = &auditor;
      RunStats stats{};
      try {
        stats = run_scenario(config);
      } catch (const std::runtime_error& e) {
        FAIL() << to_string(kind) << " at " << load << " kbps: " << e.what();
      }
      EXPECT_GT(auditor.checks(), 0u) << to_string(kind) << " at " << load << " kbps";
      if (kind == MacKind::kEwMac && load >= 0.5) {
        EXPECT_GT(stats.extra_attempts, 0u)
            << "the soak must drive the extra phase to audit the theorem";
      }
    }
  }
}

// The multi-hop CI soak (matched by the same "AuditorSoak" regex): relay
// traffic across all three routing layers with a hard-fail auditor, so
// the routing invariants (e)/(f) run against live simulations, not just
// the synthetic fixtures above.
TEST(AuditorSoakMultiHop, HardFailAllRoutingKindsClean) {
  for (const RoutingKind routing :
       {RoutingKind::kGreedy, RoutingKind::kTree, RoutingKind::kDv}) {
    ScenarioConfig config = small_test_scenario();
    config.mac = MacKind::kEwMac;
    config.multi_hop = true;
    config.routing = routing;
    config.sim_time = Duration::seconds(150);
    config.traffic.offered_load_kbps = 0.5;
    InvariantAuditor::Config audit = auditor_config_for(config);
    audit.hard_fail = true;
    InvariantAuditor auditor{audit};
    config.trace = &auditor;
    RunStats stats{};
    try {
      stats = run_scenario(config);
    } catch (const std::runtime_error& e) {
      FAIL() << to_string(routing) << ": " << e.what();
    }
    EXPECT_GT(stats.e2e_originated, 0u) << to_string(routing);
    EXPECT_GT(stats.e2e_arrived_at_sink, 0u) << to_string(routing);
    EXPECT_GT(auditor.checks(), 0u) << to_string(routing);
  }
}

TEST(AuditorSoakMultiHop, HardFailDvUnderOutagesClean) {
  // Route maintenance under fire: outages kill relays, DV invalidates and
  // re-converges, and every transient loop must fall inside the
  // route_grace churn windows the auditor scopes itself to.
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.seed = 5;
  config.sim_time = Duration::seconds(200);
  config.traffic.offered_load_kbps = 0.5;
  config.fault.outage_rate_per_hour = 40.0;
  config.fault.outage_mean_duration = Duration::seconds(10);
  config.mac_config.neighbor_max_age = Duration::seconds(45);
  config.mac_config.dead_neighbor_threshold = 3;
  InvariantAuditor::Config audit = auditor_config_for(config);
  audit.hard_fail = true;
  InvariantAuditor auditor{audit};
  config.trace = &auditor;
  RunStats stats{};
  ASSERT_NO_THROW(stats = run_scenario(config));
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_GT(stats.e2e_arrived_at_sink, 0u) << "the faulted relay mesh still delivers";
  EXPECT_GT(auditor.checks(), 0u);
}

}  // namespace
}  // namespace aquamac

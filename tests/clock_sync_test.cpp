// The paper assumes network-wide synchronization (§3.1) and warns that
// its slotted design depends on stable delay knowledge (§5 closing).
// These tests exercise the clock-offset failure knob: skewed timestamps
// corrupt measured delays by the *difference* of the two clocks, and the
// protocols must degrade gracefully, not wedge.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(ClockSync, OffsetSkewsMeasuredDelayByDifference) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 900});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  bed.node(s).modem().set_clock_offset(Duration::milliseconds(40));
  bed.node(r).modem().set_clock_offset(Duration::milliseconds(-10));
  bed.hello_and_settle();

  // True delay 0.6 s; r measures 0.6 + (-0.01 - 0.04) = 0.55 s.
  const auto measured_at_r = bed.node(r).neighbors().delay_to(s);
  ASSERT_TRUE(measured_at_r.has_value());
  EXPECT_NEAR(measured_at_r->to_seconds(), 0.6 - 0.05, 1e-6);
  // And s measures 0.6 + (0.04 - (-0.01)) = 0.65 s: asymmetric, as in a
  // real desynchronized pair.
  const auto measured_at_s = bed.node(s).neighbors().delay_to(r);
  ASSERT_TRUE(measured_at_s.has_value());
  EXPECT_NEAR(measured_at_s->to_seconds(), 0.6 + 0.05, 1e-6);
}

TEST(ClockSync, ZeroOffsetMeansExactDelays) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 900});
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  bed.hello_and_settle();
  EXPECT_NEAR(bed.node(r).neighbors().delay_to(s)->to_seconds(), 0.6, 1e-9);
}

class ClockSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClockSkewSweep, EwMacSurvivesSkew) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.clock_offset_stddev_s = GetParam();
  const RunStats stats = run_scenario(config);
  // Conservation always holds; delivery may degrade but must not vanish
  // for modest skew (slots are ~1 s, so millisecond-scale skew is benign).
  EXPECT_LE(stats.packets_delivered, stats.packets_offered);
  if (GetParam() <= 0.01) {
    EXPECT_GT(stats.packets_delivered, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(SkewLevels, ClockSkewSweep,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.2),
                         [](const auto& param_info) {
                           return "sigma_us_" +
                                  std::to_string(static_cast<int>(param_info.param * 1e6));
                         });

TEST(ClockSync, MildSkewBarelyHurtsThroughput) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.sim_time = Duration::seconds(120);
  const RunStats clean = run_scenario(config);
  config.clock_offset_stddev_s = 0.001;  // 1 ms across ~1 s slots
  const RunStats skewed = run_scenario(config);
  EXPECT_GT(static_cast<double>(skewed.bits_delivered),
            0.5 * static_cast<double>(clean.bits_delivered));
}

TEST(ClockSync, SevereSkewDegradesExtraPhase) {
  // Extra-communication scheduling (Eq. 6) depends on accurate delays; a
  // badly skewed network should not complete more extras than a clean one.
  auto extras_with = [](double sigma) {
    ScenarioConfig config = small_test_scenario();
    config.mac = MacKind::kEwMac;
    config.traffic.offered_load_kbps = 0.8;
    config.sim_time = Duration::seconds(200);
    config.clock_offset_stddev_s = sigma;
    std::uint64_t extras = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      config.seed = seed;
      extras += run_scenario(config).extra_successes;
    }
    return extras;
  };
  EXPECT_GE(extras_with(0.0), extras_with(0.5));
}

}  // namespace
}  // namespace aquamac

#include "channel/acoustic_channel.hpp"
#include "phy/modem.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace aquamac {
namespace {

struct RecordingListener final : ModemListener {
  struct Rx {
    Frame frame;
    RxInfo info;
  };
  std::vector<Rx> received;
  std::vector<std::pair<Frame, RxOutcome>> failures;
  std::vector<Frame> completed_tx;

  void on_frame_received(const Frame& frame, const RxInfo& info) override {
    received.push_back({frame, info});
  }
  void on_rx_failure(const Frame& frame, RxOutcome outcome, const RxInfo&) override {
    failures.emplace_back(frame, outcome);
  }
  void on_tx_done(const Frame& frame) override { completed_tx.push_back(frame); }
};

class ChannelModemTest : public ::testing::Test {
 protected:
  ChannelModemTest()
      : propagation_{1'500.0}, channel_{sim_, propagation_, ChannelConfig{}} {}

  AcousticModem& add_modem(NodeId id, Vec3 position) {
    auto modem = std::make_unique<AcousticModem>(sim_, id, ModemConfig{}, reception_,
                                                 Rng{1'000 + id});
    modem->set_position(position);
    auto listener = std::make_unique<RecordingListener>();
    modem->set_listener(listener.get());
    channel_.attach(*modem);
    listeners_.push_back(std::move(listener));
    modems_.push_back(std::move(modem));
    return *modems_.back();
  }

  RecordingListener& listener(std::size_t i) { return *listeners_[i]; }

  static Frame control_frame(NodeId dst) {
    Frame frame{};
    frame.type = FrameType::kRts;
    frame.dst = dst;
    frame.size_bits = 64;
    return frame;
  }

  Simulator sim_;
  StraightLinePropagation propagation_;
  DeterministicCollisionModel reception_;
  AcousticChannel channel_;
  std::vector<std::unique_ptr<AcousticModem>> modems_;
  std::vector<std::unique_ptr<RecordingListener>> listeners_;
};

TEST_F(ChannelModemTest, DeliversWithExactPropagationDelay) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  add_modem(1, Vec3{1'500, 0, 0});
  a.transmit(control_frame(1));
  sim_.run();

  ASSERT_EQ(listener(1).received.size(), 1u);
  const auto& rx = listener(1).received[0];
  // 1.5 km at 1.5 km/s = 1 s propagation; 64 bits at 12 kbps = 5.33 ms.
  EXPECT_NEAR(rx.info.arrival_begin.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(rx.info.measured_delay.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR((rx.info.arrival_end - rx.info.arrival_begin).to_seconds(), 64.0 / 12'000.0,
              1e-9);
  EXPECT_EQ(rx.frame.src, 0u);
}

TEST_F(ChannelModemTest, TxDoneFiresAtAirtimeEnd) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  add_modem(1, Vec3{100, 0, 0});
  Frame data{};
  data.type = FrameType::kData;
  data.dst = 1;
  data.size_bits = 2'048;
  data.data_bits = 2'048;
  a.transmit(data);
  EXPECT_TRUE(a.transmitting());
  sim_.run();
  ASSERT_EQ(listener(0).completed_tx.size(), 1u);
  EXPECT_FALSE(a.transmitting());
  EXPECT_NEAR(sim_.now().to_seconds(), 2'048.0 / 12'000.0 + 100.0 / 1'500.0, 1e-9);
}

TEST_F(ChannelModemTest, OverlappingArrivalsCollideAtReceiver) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  auto& b = add_modem(1, Vec3{200, 0, 0});
  add_modem(2, Vec3{100, 0, 0});  // equidistant-ish receiver
  // Both transmit simultaneously; both arrivals overlap at node 2.
  a.transmit(control_frame(2));
  b.transmit(control_frame(2));
  sim_.run();

  EXPECT_TRUE(listener(2).received.empty());
  EXPECT_EQ(listener(2).failures.size(), 2u);
  EXPECT_EQ(listener(2).failures[0].second, RxOutcome::kCollision);
}

TEST_F(ChannelModemTest, StaggeredSameSlotArrivalsBothSucceed) {
  // The EW-MAC §3.1 premise: two RTSs sent in the same slot usually do
  // NOT overlap at the receiver because propagation delays differ.
  auto& a = add_modem(0, Vec3{0, 0, 0});       // 1.0 km -> 0.667 s
  auto& b = add_modem(1, Vec3{2'000, 0, 0});   // 1.0 km from receiver
  add_modem(2, Vec3{1'000, 0, 0});
  a.transmit(control_frame(2));
  // b transmits 100 ms later: arrivals are disjoint (airtime 5.3 ms).
  sim_.at(Time::from_seconds(0.1), [&] { b.transmit(control_frame(2)); });
  sim_.run();
  EXPECT_EQ(listener(2).received.size(), 2u);
  EXPECT_TRUE(listener(2).failures.empty());
}

TEST_F(ChannelModemTest, HalfDuplexTransmitterCannotReceive) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  auto& b = add_modem(1, Vec3{750, 0, 0});
  // a sends a long data frame; b sends a control packet that arrives at a
  // while a is still radiating (data airtime 170 ms > 2*prop 1 s? no —
  // use a longer frame: 12000 bits = 1 s airtime, prop 0.5 s).
  Frame data{};
  data.type = FrameType::kData;
  data.dst = 1;
  data.size_bits = 12'000;
  data.data_bits = 12'000;
  a.transmit(data);
  b.transmit(control_frame(0));  // arrives at a at t=0.5s < 1s tx end
  sim_.run();
  ASSERT_EQ(listener(0).failures.size(), 1u);
  EXPECT_EQ(listener(0).failures[0].second, RxOutcome::kHalfDuplexLoss);
  EXPECT_TRUE(listener(0).received.empty());
}

TEST_F(ChannelModemTest, TransmitWhileTransmittingThrows) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  add_modem(1, Vec3{100, 0, 0});
  a.transmit(control_frame(1));
  EXPECT_THROW(a.transmit(control_frame(1)), std::logic_error);
}

TEST_F(ChannelModemTest, ZeroSizeFrameRejected) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  Frame frame = control_frame(1);
  frame.size_bits = 0;
  EXPECT_THROW(a.transmit(frame), std::logic_error);
}

TEST_F(ChannelModemTest, UnattachedModemRejectsTransmit) {
  AcousticModem lone{sim_, 99, ModemConfig{}, reception_, Rng{9}};
  EXPECT_THROW(lone.transmit(control_frame(0)), std::logic_error);
}

TEST_F(ChannelModemTest, OutOfRangeNodesHearNothing) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  add_modem(1, Vec3{1'600, 0, 0});  // beyond the 1.5 km comm range
  a.transmit(control_frame(1));
  sim_.run();
  EXPECT_TRUE(listener(1).received.empty());
  EXPECT_TRUE(listener(1).failures.empty());
}

TEST_F(ChannelModemTest, DuplicateAttachRejected) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  EXPECT_THROW(channel_.attach(a), std::logic_error);
}

TEST_F(ChannelModemTest, AuditSeesEveryReach) {
  std::vector<TransmissionAudit> audits;
  channel_.set_audit([&](const TransmissionAudit& audit) { audits.push_back(audit); });
  auto& a = add_modem(0, Vec3{0, 0, 0});
  add_modem(1, Vec3{700, 0, 0});
  add_modem(2, Vec3{1'400, 0, 0});
  add_modem(3, Vec3{5'000, 0, 0});  // unreachable
  a.transmit(control_frame(1));
  sim_.run();

  ASSERT_EQ(audits.size(), 1u);
  EXPECT_EQ(audits[0].sender, 0u);
  ASSERT_EQ(audits[0].reaches.size(), 2u) << "only in-range modems are reached";
  for (const auto& reach : audits[0].reaches) {
    EXPECT_TRUE(reach.decodable);
    EXPECT_GT(reach.window.begin, audits[0].tx_window.begin);
  }
}

TEST_F(ChannelModemTest, EnergyMeterTracksTxAndRxTime) {
  auto& a = add_modem(0, Vec3{0, 0, 0});
  add_modem(1, Vec3{300, 0, 0});
  Frame data{};
  data.type = FrameType::kData;
  data.dst = 1;
  data.size_bits = 12'000;  // exactly 1 s of airtime
  data.data_bits = 12'000;
  a.transmit(data);
  sim_.run();
  EXPECT_NEAR(a.energy().tx_time().to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(modems_[1]->energy().rx_time().to_seconds(), 1.0, 1e-9);
  EXPECT_EQ(a.energy().rx_time(), Duration::zero());
}

TEST_F(ChannelModemTest, InterferenceBeyondCommRange) {
  // With interference_range > comm_range, a distant transmitter cannot be
  // decoded but still destroys concurrent receptions (hidden terminal).
  ChannelConfig config{};
  config.comm_range_m = 1'500.0;
  config.interference_range_m = 3'000.0;
  AcousticChannel channel{sim_, propagation_, config};

  auto make = [&](NodeId id, Vec3 pos) {
    auto modem =
        std::make_unique<AcousticModem>(sim_, id, ModemConfig{}, reception_, Rng{id});
    modem->set_position(pos);
    auto listener = std::make_unique<RecordingListener>();
    modem->set_listener(listener.get());
    channel.attach(*modem);
    listeners_.push_back(std::move(listener));
    modems_.push_back(std::move(modem));
    return modems_.size() - 1;
  };
  const auto a = make(10, Vec3{0, 0, 0});
  const auto r = make(11, Vec3{1'000, 0, 0});
  const auto far = make(12, Vec3{3'000, 0, 0});  // 2 km from r: jams, undecodable

  Frame data{};
  data.type = FrameType::kData;
  data.dst = 11;
  data.size_bits = 12'000;
  data.data_bits = 12'000;
  modems_[a]->transmit(data);
  modems_[far]->transmit(control_frame(11));
  sim_.run();

  EXPECT_TRUE(listeners_[r]->received.empty()) << "jammed by out-of-range interferer";
  ASSERT_FALSE(listeners_[r]->failures.empty());
  EXPECT_EQ(listeners_[r]->failures[0].second, RxOutcome::kCollision);
}

TEST_F(ChannelModemTest, BadChannelConfigRejected) {
  ChannelConfig config{};
  config.comm_range_m = 2'000.0;
  config.interference_range_m = 1'000.0;
  EXPECT_THROW((AcousticChannel{sim_, propagation_, config}), std::invalid_argument);
}

}  // namespace
}  // namespace aquamac

#include "harness/config_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace aquamac {
namespace {

TEST(ConfigIo, RoundTripPreservesEveryScalar) {
  ScenarioConfig original = paper_default_scenario();
  original.mac = MacKind::kCsMac;
  original.node_count = 123;
  original.seed = 99;
  original.sim_time = Duration::from_seconds(123.5);
  original.channel.comm_range_m = 1'234.0;
  original.propagation = PropagationKind::kBellhopLite;
  original.reception = ReceptionKind::kSinrPer;
  original.deployment.kind = DeploymentKind::kLayeredColumn;
  original.deployment.depth_m = 5'432.0;
  original.enable_mobility = false;
  original.clock_offset_stddev_s = 0.25;
  original.mac_config.max_retries = 9;
  original.mac_config.enable_extra = false;
  original.traffic.mode = TrafficMode::kBatch;
  original.traffic.offered_load_kbps = 0.77;
  original.traffic.batch_packets = 55;
  original.multi_hop = true;
  original.sink_fraction = 0.2;
  original.hop_limit = 7;

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, paper_default_scenario());

  EXPECT_EQ(loaded.mac, original.mac);
  EXPECT_EQ(loaded.node_count, original.node_count);
  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.sim_time, original.sim_time);
  EXPECT_DOUBLE_EQ(loaded.channel.comm_range_m, original.channel.comm_range_m);
  EXPECT_EQ(loaded.propagation, original.propagation);
  EXPECT_EQ(loaded.reception, original.reception);
  EXPECT_EQ(loaded.deployment.kind, original.deployment.kind);
  EXPECT_DOUBLE_EQ(loaded.deployment.depth_m, original.deployment.depth_m);
  EXPECT_EQ(loaded.enable_mobility, original.enable_mobility);
  EXPECT_DOUBLE_EQ(loaded.clock_offset_stddev_s, original.clock_offset_stddev_s);
  EXPECT_EQ(loaded.mac_config.max_retries, original.mac_config.max_retries);
  EXPECT_EQ(loaded.mac_config.enable_extra, original.mac_config.enable_extra);
  EXPECT_EQ(loaded.traffic.mode, original.traffic.mode);
  EXPECT_DOUBLE_EQ(loaded.traffic.offered_load_kbps, original.traffic.offered_load_kbps);
  EXPECT_EQ(loaded.traffic.batch_packets, original.traffic.batch_packets);
  EXPECT_EQ(loaded.multi_hop, original.multi_hop);
  EXPECT_DOUBLE_EQ(loaded.sink_fraction, original.sink_fraction);
  EXPECT_EQ(loaded.hop_limit, original.hop_limit);
}

TEST(ConfigIo, LoadedScenarioRunsIdenticallyToOriginal) {
  ScenarioConfig original = small_test_scenario();
  original.mac = MacKind::kEwMac;
  original.seed = 5;

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());

  const RunStats a = run_scenario(original);
  const RunStats b = run_scenario(loaded);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.bits_delivered, b.bits_delivered);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
}

TEST(ConfigIo, PartialFileKeepsBaseDefaults) {
  std::stringstream buffer{"mac = S-FAMA\nnode-count = 7\n"};
  ScenarioConfig base = small_test_scenario();
  base.traffic.offered_load_kbps = 0.42;
  const ScenarioConfig loaded = load_scenario(buffer, base);
  EXPECT_EQ(loaded.mac, MacKind::kSFama);
  EXPECT_EQ(loaded.node_count, 7u);
  EXPECT_DOUBLE_EQ(loaded.traffic.offered_load_kbps, 0.42) << "untouched";
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer{
      "# a comment\n"
      "\n"
      "seed = 11   # trailing comment\n"
      "   mobility = false   \n"};
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());
  EXPECT_EQ(loaded.seed, 11u);
  EXPECT_FALSE(loaded.enable_mobility);
}

TEST(ConfigIo, UnknownKeyThrows) {
  std::stringstream buffer{"nodes = 60\n"};  // correct key is node-count
  EXPECT_THROW((void)load_scenario(buffer, small_test_scenario()), std::invalid_argument);
}

TEST(ConfigIo, MalformedValueThrowsWithLineNumber) {
  std::stringstream buffer{"seed = eleven\n"};
  try {
    (void)load_scenario(buffer, small_test_scenario());
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("seed"), std::string::npos);
  }
}

TEST(ConfigIo, MissingEqualsThrows) {
  std::stringstream buffer{"just some words\n"};
  EXPECT_THROW((void)load_scenario(buffer, small_test_scenario()), std::invalid_argument);
}

TEST(ConfigIo, FaultAndHardeningKeysRoundTrip) {
  ScenarioConfig original = small_test_scenario();
  original.fault.drift_ppm_stddev = 1'234.0;
  original.fault.drift_jitter_stddev_s = 0.0025;
  original.fault.drift_jitter_interval = Duration::from_seconds(7.5);
  original.fault.outage_rate_per_hour = 42.0;
  original.fault.outage_mean_duration = Duration::from_seconds(12.5);
  original.fault.duty_cycle = 0.85;
  original.fault.duty_period = Duration::from_seconds(45.0);
  original.fault.ge_p_bad = 0.07;
  original.fault.ge_p_good = 0.21;
  original.fault.ge_loss_bad = 0.88;
  original.fault.ge_loss_good = 0.02;
  original.fault.ge_step = Duration::from_seconds(0.25);
  original.fault.storm_rate_per_hour = 3.5;
  original.fault.storm_mean_duration = Duration::from_seconds(8.0);
  original.fault.storm_loss_prob = 0.95;
  original.mac_config.neighbor_max_age = Duration::from_seconds(60.0);
  original.mac_config.dead_neighbor_threshold = 5;
  original.mac_config.dead_probe_interval = Duration::from_seconds(25.0);
  original.mac_config.guard_slack = Duration::from_seconds(0.015);

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());

  EXPECT_DOUBLE_EQ(loaded.fault.drift_ppm_stddev, original.fault.drift_ppm_stddev);
  EXPECT_DOUBLE_EQ(loaded.fault.drift_jitter_stddev_s, original.fault.drift_jitter_stddev_s);
  EXPECT_EQ(loaded.fault.drift_jitter_interval, original.fault.drift_jitter_interval);
  EXPECT_DOUBLE_EQ(loaded.fault.outage_rate_per_hour, original.fault.outage_rate_per_hour);
  EXPECT_EQ(loaded.fault.outage_mean_duration, original.fault.outage_mean_duration);
  EXPECT_DOUBLE_EQ(loaded.fault.duty_cycle, original.fault.duty_cycle);
  EXPECT_EQ(loaded.fault.duty_period, original.fault.duty_period);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_p_bad, original.fault.ge_p_bad);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_p_good, original.fault.ge_p_good);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_loss_bad, original.fault.ge_loss_bad);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_loss_good, original.fault.ge_loss_good);
  EXPECT_EQ(loaded.fault.ge_step, original.fault.ge_step);
  EXPECT_DOUBLE_EQ(loaded.fault.storm_rate_per_hour, original.fault.storm_rate_per_hour);
  EXPECT_EQ(loaded.fault.storm_mean_duration, original.fault.storm_mean_duration);
  EXPECT_DOUBLE_EQ(loaded.fault.storm_loss_prob, original.fault.storm_loss_prob);
  EXPECT_EQ(loaded.mac_config.neighbor_max_age, original.mac_config.neighbor_max_age);
  EXPECT_EQ(loaded.mac_config.dead_neighbor_threshold,
            original.mac_config.dead_neighbor_threshold);
  EXPECT_EQ(loaded.mac_config.dead_probe_interval, original.mac_config.dead_probe_interval);
  EXPECT_EQ(loaded.mac_config.guard_slack, original.mac_config.guard_slack);
  EXPECT_TRUE(loaded.fault.enabled());
}

TEST(ConfigIo, DefaultSaveKeepsFaultsDisabled) {
  // A default round-trip must not accidentally enable fault injection —
  // the strict no-op guarantee has to survive save/load.
  std::stringstream buffer;
  save_scenario(small_test_scenario(), buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());
  EXPECT_FALSE(loaded.fault.enabled());
  EXPECT_TRUE(loaded.mac_config.guard_slack.is_zero());
  EXPECT_EQ(loaded.mac_config.dead_neighbor_threshold, 0u);
}

TEST(ConfigIo, UnknownFaultKeyThrows) {
  std::stringstream buffer{"fault-drip-ppm = 100\n"};  // typo for fault-drift-ppm
  EXPECT_THROW((void)load_scenario(buffer, small_test_scenario()), std::invalid_argument);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/aquamac_scenario_test.cfg";
  ScenarioConfig original = small_test_scenario();
  original.seed = 321;
  save_scenario_file(original, path);
  const ScenarioConfig loaded = load_scenario_file(path, small_test_scenario());
  EXPECT_EQ(loaded.seed, 321u);
  EXPECT_THROW((void)load_scenario_file("/nonexistent/path.cfg", small_test_scenario()),
               std::invalid_argument);
}

}  // namespace
}  // namespace aquamac

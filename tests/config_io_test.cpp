#include "harness/config_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace aquamac {
namespace {

TEST(ConfigIo, RoundTripPreservesEveryScalar) {
  ScenarioConfig original = paper_default_scenario();
  original.mac = MacKind::kCsMac;
  original.node_count = 123;
  original.seed = 99;
  original.sim_time = Duration::from_seconds(123.5);
  original.channel.comm_range_m = 1'234.0;
  original.propagation = PropagationKind::kBellhopLite;
  original.reception = ReceptionKind::kSinrPer;
  original.deployment.kind = DeploymentKind::kLayeredColumn;
  original.deployment.depth_m = 5'432.0;
  original.enable_mobility = false;
  original.clock_offset_stddev_s = 0.25;
  original.mac_config.max_retries = 9;
  original.mac_config.enable_extra = false;
  original.traffic.mode = TrafficMode::kBatch;
  original.traffic.offered_load_kbps = 0.77;
  original.traffic.batch_packets = 55;
  original.multi_hop = true;
  original.sink_fraction = 0.2;
  original.hop_limit = 7;
  original.routing = RoutingKind::kDv;
  original.routing_beacon = Duration::from_seconds(17.5);

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, paper_default_scenario());

  EXPECT_EQ(loaded.mac, original.mac);
  EXPECT_EQ(loaded.node_count, original.node_count);
  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.sim_time, original.sim_time);
  EXPECT_DOUBLE_EQ(loaded.channel.comm_range_m, original.channel.comm_range_m);
  EXPECT_EQ(loaded.propagation, original.propagation);
  EXPECT_EQ(loaded.reception, original.reception);
  EXPECT_EQ(loaded.deployment.kind, original.deployment.kind);
  EXPECT_DOUBLE_EQ(loaded.deployment.depth_m, original.deployment.depth_m);
  EXPECT_EQ(loaded.enable_mobility, original.enable_mobility);
  EXPECT_DOUBLE_EQ(loaded.clock_offset_stddev_s, original.clock_offset_stddev_s);
  EXPECT_EQ(loaded.mac_config.max_retries, original.mac_config.max_retries);
  EXPECT_EQ(loaded.mac_config.enable_extra, original.mac_config.enable_extra);
  EXPECT_EQ(loaded.traffic.mode, original.traffic.mode);
  EXPECT_DOUBLE_EQ(loaded.traffic.offered_load_kbps, original.traffic.offered_load_kbps);
  EXPECT_EQ(loaded.traffic.batch_packets, original.traffic.batch_packets);
  EXPECT_EQ(loaded.multi_hop, original.multi_hop);
  EXPECT_DOUBLE_EQ(loaded.sink_fraction, original.sink_fraction);
  EXPECT_EQ(loaded.hop_limit, original.hop_limit);
  EXPECT_EQ(loaded.routing, original.routing);
  EXPECT_EQ(loaded.routing_beacon, original.routing_beacon);
}

TEST(ConfigIo, LoadedScenarioRunsIdenticallyToOriginal) {
  ScenarioConfig original = small_test_scenario();
  original.mac = MacKind::kEwMac;
  original.seed = 5;

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());

  const RunStats a = run_scenario(original);
  const RunStats b = run_scenario(loaded);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.bits_delivered, b.bits_delivered);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
}

TEST(ConfigIo, PartialFileKeepsBaseDefaults) {
  std::stringstream buffer{"mac = S-FAMA\nnode-count = 7\n"};
  ScenarioConfig base = small_test_scenario();
  base.traffic.offered_load_kbps = 0.42;
  const ScenarioConfig loaded = load_scenario(buffer, base);
  EXPECT_EQ(loaded.mac, MacKind::kSFama);
  EXPECT_EQ(loaded.node_count, 7u);
  EXPECT_DOUBLE_EQ(loaded.traffic.offered_load_kbps, 0.42) << "untouched";
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer{
      "# a comment\n"
      "\n"
      "seed = 11   # trailing comment\n"
      "   mobility = false   \n"};
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());
  EXPECT_EQ(loaded.seed, 11u);
  EXPECT_FALSE(loaded.enable_mobility);
}

TEST(ConfigIo, UnknownKeyThrows) {
  std::stringstream buffer{"nodes = 60\n"};  // correct key is node-count
  EXPECT_THROW((void)load_scenario(buffer, small_test_scenario()), std::invalid_argument);
}

TEST(ConfigIo, MalformedValueThrowsWithLineNumber) {
  std::stringstream buffer{"seed = eleven\n"};
  try {
    (void)load_scenario(buffer, small_test_scenario());
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("seed"), std::string::npos);
  }
}

TEST(ConfigIo, MissingEqualsThrows) {
  std::stringstream buffer{"just some words\n"};
  EXPECT_THROW((void)load_scenario(buffer, small_test_scenario()), std::invalid_argument);
}

TEST(ConfigIo, FaultAndHardeningKeysRoundTrip) {
  ScenarioConfig original = small_test_scenario();
  original.fault.drift_ppm_stddev = 1'234.0;
  original.fault.drift_jitter_stddev_s = 0.0025;
  original.fault.drift_jitter_interval = Duration::from_seconds(7.5);
  original.fault.outage_rate_per_hour = 42.0;
  original.fault.outage_mean_duration = Duration::from_seconds(12.5);
  original.fault.duty_cycle = 0.85;
  original.fault.duty_period = Duration::from_seconds(45.0);
  original.fault.ge_p_bad = 0.07;
  original.fault.ge_p_good = 0.21;
  original.fault.ge_loss_bad = 0.88;
  original.fault.ge_loss_good = 0.02;
  original.fault.ge_step = Duration::from_seconds(0.25);
  original.fault.storm_rate_per_hour = 3.5;
  original.fault.storm_mean_duration = Duration::from_seconds(8.0);
  original.fault.storm_loss_prob = 0.95;
  original.mac_config.neighbor_max_age = Duration::from_seconds(60.0);
  original.mac_config.dead_neighbor_threshold = 5;
  original.mac_config.dead_probe_interval = Duration::from_seconds(25.0);
  original.mac_config.guard_slack = Duration::from_seconds(0.015);

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());

  EXPECT_DOUBLE_EQ(loaded.fault.drift_ppm_stddev, original.fault.drift_ppm_stddev);
  EXPECT_DOUBLE_EQ(loaded.fault.drift_jitter_stddev_s, original.fault.drift_jitter_stddev_s);
  EXPECT_EQ(loaded.fault.drift_jitter_interval, original.fault.drift_jitter_interval);
  EXPECT_DOUBLE_EQ(loaded.fault.outage_rate_per_hour, original.fault.outage_rate_per_hour);
  EXPECT_EQ(loaded.fault.outage_mean_duration, original.fault.outage_mean_duration);
  EXPECT_DOUBLE_EQ(loaded.fault.duty_cycle, original.fault.duty_cycle);
  EXPECT_EQ(loaded.fault.duty_period, original.fault.duty_period);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_p_bad, original.fault.ge_p_bad);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_p_good, original.fault.ge_p_good);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_loss_bad, original.fault.ge_loss_bad);
  EXPECT_DOUBLE_EQ(loaded.fault.ge_loss_good, original.fault.ge_loss_good);
  EXPECT_EQ(loaded.fault.ge_step, original.fault.ge_step);
  EXPECT_DOUBLE_EQ(loaded.fault.storm_rate_per_hour, original.fault.storm_rate_per_hour);
  EXPECT_EQ(loaded.fault.storm_mean_duration, original.fault.storm_mean_duration);
  EXPECT_DOUBLE_EQ(loaded.fault.storm_loss_prob, original.fault.storm_loss_prob);
  EXPECT_EQ(loaded.mac_config.neighbor_max_age, original.mac_config.neighbor_max_age);
  EXPECT_EQ(loaded.mac_config.dead_neighbor_threshold,
            original.mac_config.dead_neighbor_threshold);
  EXPECT_EQ(loaded.mac_config.dead_probe_interval, original.mac_config.dead_probe_interval);
  EXPECT_EQ(loaded.mac_config.guard_slack, original.mac_config.guard_slack);
  EXPECT_TRUE(loaded.fault.enabled());
}

TEST(ConfigIo, ReliabilityKeysRoundTrip) {
  ScenarioConfig original = small_test_scenario();
  original.reliability.max_retries = 4;
  original.reliability.queue_limit = 12;
  original.reliability.drop_policy = RelayDropPolicy::kOldestFirst;
  original.reliability.backoff_base = Duration::from_seconds(7.5);
  original.reliability.backoff_max = Duration::from_seconds(95.0);
  original.reliability.failover = false;
  original.greedy_blacklist = false;
  original.mac_config.neighbor_ewma = 0.25;

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());

  EXPECT_EQ(loaded.reliability.max_retries, original.reliability.max_retries);
  EXPECT_EQ(loaded.reliability.queue_limit, original.reliability.queue_limit);
  EXPECT_EQ(loaded.reliability.drop_policy, original.reliability.drop_policy);
  EXPECT_EQ(loaded.reliability.backoff_base, original.reliability.backoff_base);
  EXPECT_EQ(loaded.reliability.backoff_max, original.reliability.backoff_max);
  EXPECT_EQ(loaded.reliability.failover, original.reliability.failover);
  EXPECT_FALSE(loaded.greedy_blacklist);
  EXPECT_DOUBLE_EQ(loaded.mac_config.neighbor_ewma, original.mac_config.neighbor_ewma);
  EXPECT_TRUE(loaded.reliability.enabled());
}

TEST(ConfigIo, DefaultSaveKeepsFaultsDisabled) {
  // A default round-trip must not accidentally enable fault injection —
  // the strict no-op guarantee has to survive save/load.
  std::stringstream buffer;
  save_scenario(small_test_scenario(), buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());
  EXPECT_FALSE(loaded.fault.enabled());
  EXPECT_TRUE(loaded.mac_config.guard_slack.is_zero());
  EXPECT_EQ(loaded.mac_config.dead_neighbor_threshold, 0u);
}

TEST(ConfigIo, UnknownFaultKeyThrows) {
  std::stringstream buffer{"fault-drip-ppm = 100\n"};  // typo for fault-drift-ppm
  EXPECT_THROW((void)load_scenario(buffer, small_test_scenario()), std::invalid_argument);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/aquamac_scenario_test.cfg";
  ScenarioConfig original = small_test_scenario();
  original.seed = 321;
  save_scenario_file(original, path);
  const ScenarioConfig loaded = load_scenario_file(path, small_test_scenario());
  EXPECT_EQ(loaded.seed, 321u);
  EXPECT_THROW((void)load_scenario_file("/nonexistent/path.cfg", small_test_scenario()),
               std::invalid_argument);
}

TEST(ConfigIo, DoublesRoundTripExactly) {
  // save_scenario must emit max_digits10 significant digits: the stream
  // default of 6 silently perturbed every non-round double (sim-time-s,
  // freq-khz, fault rates) on save -> load, so a "replayed" scenario was
  // not the scenario that ran.
  ScenarioConfig original = small_test_scenario();
  original.sim_time = Duration::from_seconds(123.456789012345);
  original.channel.freq_khz = 10.123456789012345;
  original.traffic.offered_load_kbps = 1.0 / 3.0;
  original.fault.storm_loss_prob = 0.123456789012345;

  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());

  EXPECT_EQ(loaded.sim_time, original.sim_time) << "lost nanoseconds";
  EXPECT_EQ(loaded.channel.freq_khz, original.channel.freq_khz) << "bit-exact, not approx";
  EXPECT_EQ(loaded.traffic.offered_load_kbps, original.traffic.offered_load_kbps);
  EXPECT_EQ(loaded.fault.storm_loss_prob, original.fault.storm_loss_prob);
}

TEST(ConfigIo, NegativeIntegerRejected) {
  // std::stoull accepts a leading '-' by wrapping modulo 2^64; the parser
  // must reject it before "node-count = -1" becomes 2^64 - 1 nodes.
  for (const std::string line : {"node-count = -1\n", "seed = -3\n", "batch-packets = -7\n"}) {
    SCOPED_TRACE(line);
    std::stringstream buffer{line};
    try {
      (void)load_scenario(buffer, small_test_scenario());
      FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("expected an integer"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ConfigIo, SavedKeysAndAcceptedKeysMatchExactly) {
  // Two-way exhaustiveness: every key save_scenario emits must be
  // loadable, and every key load_scenario accepts must be emitted —
  // otherwise a knob silently fails to survive the round trip.
  std::stringstream buffer;
  save_scenario(small_test_scenario(), buffer);

  std::vector<std::string> written;
  std::string line;
  while (std::getline(buffer, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t", eq - 1);
    const auto begin = line.find_first_not_of(" \t");
    written.push_back(line.substr(begin, end - begin + 1));
  }
  std::sort(written.begin(), written.end());
  EXPECT_EQ(written.size(), std::set<std::string>(written.begin(), written.end()).size())
      << "duplicate keys written";

  const std::vector<std::string> accepted = scenario_keys();  // sorted
  EXPECT_EQ(written, accepted);

  // The checkpoint knobs are part of the contract.
  EXPECT_NE(std::find(accepted.begin(), accepted.end(), "checkpoint-every-s"), accepted.end());
  EXPECT_NE(std::find(accepted.begin(), accepted.end(), "checkpoint-path"), accepted.end());
}

TEST(ConfigIo, CheckpointKnobsRoundTrip) {
  ScenarioConfig original = small_test_scenario();
  original.checkpoint_every = Duration::from_seconds(2.5);
  original.checkpoint_path = "/tmp/run.ckpt";
  std::stringstream buffer;
  save_scenario(original, buffer);
  const ScenarioConfig loaded = load_scenario(buffer, small_test_scenario());
  EXPECT_EQ(loaded.checkpoint_every, original.checkpoint_every);
  EXPECT_EQ(loaded.checkpoint_path, original.checkpoint_path);
}

}  // namespace
}  // namespace aquamac

// Bit-identity wall for the sharded conservative-PDES engine (see
// docs/parallel-des.md): sharded execution must replay the *exact* serial
// event order — not merely equivalent aggregate statistics. The tests pin
// that contract at three levels: (1) the Simulator itself, comparing the
// execution order of a hand-built lane workload across the serial loop,
// the windowed engine run serially (shards = 1) and genuinely concurrent
// shards; (2) whole scenarios, comparing HashTrace digests and stats for
// EW-MAC, CS-MAC and S-FAMA (including mobility + fault injection) at
// several shard counts; (3) the channel audit stream, whose deferred
// replay must reproduce the serial sequence of TransmissionAudits
// verbatim. The suite name is matched by the CI ThreadSanitizer job.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "channel/acoustic_channel.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "mac/mac_factory.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace aquamac {
namespace {

// --- level 1: the engine itself --------------------------------------

/// Runs a fixed four-lane workload — same-time key ties, own-lane
/// follow-ups inside the lookahead window, cross-lane (cross-shard)
/// pushes beyond it, a lane-0 "mobility tick", and a cancelled timer —
/// and returns the observed execution order. `shards` = 0 uses the plain
/// serial loop; otherwise the windowed engine with that many shards.
std::vector<int> run_engine_workload(unsigned shards) {
  Simulator sim;
  std::vector<int> order;
  // Shard workers may not touch `order` directly; defer_ordered replays
  // the writes at the barrier in exact serial order.
  auto record = [&sim, &order](int tag) {
    if (sim.in_parallel_region()) {
      sim.defer_ordered([&order, tag] { order.push_back(tag); });
    } else {
      order.push_back(tag);
    }
  };

  constexpr std::uint32_t kNodes = 4;
  sim.set_lane_count(kNodes + 1);
  if (shards > 0) {
    ShardingOptions options;
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      options.shard_of_node.push_back(node % shards);
    }
    options.shards = shards;
    options.lookahead = [] { return Duration::milliseconds(10); };
    options.threads = shards;
    sim.enable_sharding(std::move(options));
  }

  for (std::uint32_t node = 0; node < kNodes; ++node) {
    const Simulator::LaneGuard lane{sim, node + 1};
    for (int k = 0; k < 5; ++k) {
      // Identical times on every lane: ties must break by (lane, seq).
      const Time when = Time::from_ns(1'000'000 + k * 2'000'000);
      sim.at(when, [&sim, record, node, k] {
        record(static_cast<int>(node) * 100 + k);
        if (k == 0) {
          // Own-lane follow-up well inside the conservative window.
          sim.in(Duration::microseconds(50),
                 [record, node] { record(static_cast<int>(node) * 100 + 90); });
        }
        if (k == 1) {
          // Cross-lane push to a lane of a *different* shard, landing
          // beyond the lookahead horizon as the channel's deliveries do.
          const std::uint32_t peer = ((node + 1) % kNodes) + 1;
          sim.at_lane(peer, sim.now() + Duration::milliseconds(25),
                      [record, node] { record(static_cast<int>(node) * 100 + 95); });
        }
        if (k == 2) {
          // A MAC-timer shape: schedule on the own lane, then cancel from
          // a later own-lane event before it can fire.
          const EventHandle timer =
              sim.in(Duration::seconds(5), [record, node] { record(-(static_cast<int>(node))); });
          sim.in(Duration::milliseconds(1), [&sim, record, node, timer]() mutable {
            record(static_cast<int>(node) * 100 + (sim.cancel(timer) ? 97 : 98));
          });
        }
      });
    }
  }
  {
    // Lane-0 events (mobility ticks, harness probes) run at barriers and
    // sort before equal-time node-lane events.
    sim.at(Time::from_ns(3'000'000), [record] { record(9'000); });
    sim.at(Time::from_seconds(1.0), [record] { record(9'001); });
  }

  sim.run();
  return order;
}

TEST(PdesDeterminism, WindowedEngineReplaysSerialEventOrder) {
  const std::vector<int> serial = run_engine_workload(0);
  ASSERT_FALSE(serial.empty());
  // 4 lanes x (5 base + follow-up + cross-lane + cancel-ack) + 2 global.
  EXPECT_EQ(serial.size(), 4u * 8u + 2u);
  // No cancelled timer fired (their tags are the only negative ones).
  for (const int tag : serial) EXPECT_GE(tag, 0);

  EXPECT_EQ(run_engine_workload(1), serial) << "windowed engine, single shard";
  EXPECT_EQ(run_engine_workload(2), serial) << "two concurrent shards";
  EXPECT_EQ(run_engine_workload(4), serial) << "one shard per lane";
}

// --- level 2: whole scenarios ----------------------------------------

struct RunOutput {
  std::uint64_t digest{0};
  RunStats stats{};
};

RunOutput run_with_shards(ScenarioConfig config, unsigned shards) {
  HashTrace trace;
  config.trace = &trace;
  config.shards = shards;
  RunOutput out;
  out.stats = run_scenario(config);
  out.digest = trace.digest();
  return out;
}

void expect_same_run(const RunOutput& serial, const RunOutput& sharded) {
  EXPECT_EQ(serial.digest, sharded.digest);
  EXPECT_NE(serial.digest, HashTrace{}.digest()) << "trace never exercised";
  EXPECT_GT(serial.stats.packets_offered, 0u) << "idle run proves nothing";
  EXPECT_EQ(serial.stats.packets_offered, sharded.stats.packets_offered);
  EXPECT_EQ(serial.stats.packets_delivered, sharded.stats.packets_delivered);
  EXPECT_EQ(serial.stats.packets_dropped, sharded.stats.packets_dropped);
  EXPECT_EQ(serial.stats.throughput_kbps, sharded.stats.throughput_kbps);
  EXPECT_EQ(serial.stats.mean_latency_s, sharded.stats.mean_latency_s);
  EXPECT_EQ(serial.stats.control_bits, sharded.stats.control_bits);
  EXPECT_EQ(serial.stats.maintenance_bits, sharded.stats.maintenance_bits);
  EXPECT_EQ(serial.stats.total_energy_j, sharded.stats.total_energy_j);
  EXPECT_EQ(serial.stats.rx_collisions, sharded.stats.rx_collisions);
  EXPECT_EQ(serial.stats.fairness_index, sharded.stats.fairness_index);
}

TEST(PdesDeterminism, ScenarioDigestsMatchSerialAcrossMacs) {
  for (const MacKind mac : {MacKind::kEwMac, MacKind::kCsMac, MacKind::kSFama}) {
    SCOPED_TRACE(to_string(mac));
    ScenarioConfig config = grid3d_scenario(96, 5);
    config.mac = mac;
    config.sim_time = Duration::seconds(10);
    expect_same_run(run_with_shards(config, 1), run_with_shards(config, 4));
  }
}

TEST(PdesDeterminism, MobilityAndFaultScenarioBitIdentical) {
  // The hard case: mobility re-positions nodes (lookahead re-derivation
  // at barriers), the fault plan schedules per-node timelines, and 10% of
  // the nodes die mid-run.
  ScenarioConfig config = random_volume_scenario(96, 11);
  config.mac = MacKind::kEwMac;
  config.sim_time = Duration::seconds(10);
  config.enable_mobility = true;
  config.fault.drift_ppm_stddev = 20.0;
  config.fault.outage_rate_per_hour = 12.0;
  config.fault.ge_p_bad = 0.05;
  config.fault.ge_loss_bad = 0.5;
  config.fault.storm_rate_per_hour = 4.0;
  config.node_failure_fraction = 0.1;
  expect_same_run(run_with_shards(config, 1), run_with_shards(config, 4));
}

TEST(PdesDeterminism, DigestInvariantAcrossShardCounts) {
  ScenarioConfig config = grid3d_scenario(96, 7);
  config.mac = MacKind::kCsMac;
  config.sim_time = Duration::seconds(10);
  const RunOutput serial = run_with_shards(config, 1);
  for (const unsigned shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards = " + std::to_string(shards));
    expect_same_run(serial, run_with_shards(config, shards));
  }
}

// --- multi-hop DV routing across the sharded engine --------------------

void expect_same_multihop_run(const RunOutput& serial, const RunOutput& sharded) {
  expect_same_run(serial, sharded);
  EXPECT_GT(serial.stats.e2e_originated, 0u) << "no multi-hop traffic proves nothing";
  EXPECT_EQ(serial.stats.e2e_originated, sharded.stats.e2e_originated);
  EXPECT_EQ(serial.stats.e2e_arrived_at_sink, sharded.stats.e2e_arrived_at_sink);
  EXPECT_EQ(serial.stats.e2e_forwarded, sharded.stats.e2e_forwarded);
  EXPECT_EQ(serial.stats.e2e_dropped_no_route, sharded.stats.e2e_dropped_no_route);
  EXPECT_EQ(serial.stats.e2e_dropped_mac, sharded.stats.e2e_dropped_mac);
  EXPECT_EQ(serial.stats.mean_e2e_latency_s, sharded.stats.mean_e2e_latency_s);
  EXPECT_EQ(serial.stats.hop_stretch, sharded.stats.hop_stretch);
}

TEST(PdesDeterminism, DvRoutingDigestInvariantAcrossShardCounts) {
  // The routing layer adds cross-node state flow (piggybacked ads ingested
  // at reception, beacon timers per lane, triggered updates): all of it
  // must replay identically under the windowed engine.
  ScenarioConfig config = grid3d_scenario(96, 23);
  config.mac = MacKind::kEwMac;
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.sim_time = Duration::seconds(12);
  const RunOutput serial = run_with_shards(config, 1);
  for (const unsigned shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards = " + std::to_string(shards));
    expect_same_multihop_run(serial, run_with_shards(config, shards));
  }
}

TEST(PdesDeterminism, DvRoutingUnderFaultPlanBitIdentical) {
  // Route maintenance in anger: outages kill relays (neighbor_down,
  // invalidations, triggered updates, sequence waves on rejoin) while the
  // sharded engine runs the event loop concurrently.
  ScenarioConfig config = grid3d_scenario(96, 29);
  config.mac = MacKind::kCsMac;
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.sim_time = Duration::seconds(12);
  config.fault.outage_rate_per_hour = 40.0;
  config.fault.outage_mean_duration = Duration::seconds(4);
  config.fault.ge_p_bad = 0.05;
  config.fault.ge_loss_bad = 0.5;
  expect_same_multihop_run(run_with_shards(config, 1), run_with_shards(config, 4));
}

TEST(PdesDeterminism, DvRoutingBitIdenticalAcrossJobs) {
  ScenarioConfig base = grid3d_scenario(64, 37);
  base.mac = MacKind::kSFama;
  base.multi_hop = true;
  base.routing = RoutingKind::kDv;
  base.sim_time = Duration::seconds(10);
  const std::vector<RunStats> serial = run_replicated_parallel(base, 2, 1);
  const std::vector<RunStats> parallel = run_replicated_parallel(base, 2, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    SCOPED_TRACE("replication " + std::to_string(k));
    EXPECT_EQ(serial[k].e2e_originated, parallel[k].e2e_originated);
    EXPECT_EQ(serial[k].e2e_arrived_at_sink, parallel[k].e2e_arrived_at_sink);
    EXPECT_EQ(serial[k].e2e_forwarded, parallel[k].e2e_forwarded);
    EXPECT_EQ(serial[k].mean_e2e_latency_s, parallel[k].mean_e2e_latency_s);
    EXPECT_EQ(serial[k].total_energy_j, parallel[k].total_energy_j);
  }
}

// --- level 3: the audit stream ----------------------------------------

/// Flattens a TransmissionAudit into integers so whole sequences compare
/// with one EXPECT: sender, exact tx window, then every reach with its
/// receive window and decodability. Receiver *sets and order* must match.
void flatten_audit(const TransmissionAudit& audit, std::vector<std::int64_t>& out) {
  out.push_back(static_cast<std::int64_t>(audit.sender));
  out.push_back(audit.tx_window.begin.count_ns());
  out.push_back(audit.tx_window.end.count_ns());
  out.push_back(static_cast<std::int64_t>(audit.reaches.size()));
  for (const TransmissionAudit::Reach& reach : audit.reaches) {
    out.push_back(static_cast<std::int64_t>(reach.receiver));
    out.push_back(reach.window.begin.count_ns());
    out.push_back(reach.window.end.count_ns());
    out.push_back(reach.decodable ? 1 : 0);
  }
}

std::vector<std::int64_t> run_audited(ScenarioConfig config, unsigned shards) {
  config.shards = shards;
  Simulator sim{config.logger};
  Network network{sim, config};
  std::vector<std::int64_t> stream;
  network.channel().set_audit(
      [&stream](const TransmissionAudit& audit) { flatten_audit(audit, stream); });
  (void)network.run();
  return stream;
}

TEST(PdesDeterminism, AuditStreamsMatchSerialVerbatim) {
  ScenarioConfig config = grid3d_scenario(64, 9);
  config.mac = MacKind::kSFama;
  config.sim_time = Duration::seconds(10);
  const std::vector<std::int64_t> serial = run_audited(config, 1);
  ASSERT_FALSE(serial.empty()) << "scenario produced no transmissions";
  EXPECT_EQ(run_audited(config, 4), serial);
}

// --- jobs x shards: both parallelism layers at once --------------------

TEST(PdesDeterminism, ReplicationsBitIdenticalAcrossJobsTimesShards) {
  ScenarioConfig base = grid3d_scenario(64, 13);
  base.mac = MacKind::kEwMac;
  base.sim_time = Duration::seconds(8);
  base.shards = 2;  // every replication runs its own sharded engine
  const std::vector<RunStats> serial = run_replicated_parallel(base, 3, 1);
  const std::vector<RunStats> parallel = run_replicated_parallel(base, 3, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    SCOPED_TRACE("replication " + std::to_string(k));
    EXPECT_EQ(serial[k].packets_offered, parallel[k].packets_offered);
    EXPECT_EQ(serial[k].packets_delivered, parallel[k].packets_delivered);
    EXPECT_EQ(serial[k].throughput_kbps, parallel[k].throughput_kbps);
    EXPECT_EQ(serial[k].mean_latency_s, parallel[k].mean_latency_s);
    EXPECT_EQ(serial[k].control_bits, parallel[k].control_bits);
    EXPECT_EQ(serial[k].maintenance_bits, parallel[k].maintenance_bits);
    EXPECT_EQ(serial[k].total_energy_j, parallel[k].total_energy_j);
    EXPECT_EQ(serial[k].fairness_index, parallel[k].fairness_index);
  }
}

}  // namespace
}  // namespace aquamac

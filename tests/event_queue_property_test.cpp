// Randomized differential test: EventQueue against a trivially correct
// reference model (sorted vector with stable ordering), across mixed
// push/cancel/pop workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace aquamac {
namespace {

struct RefEntry {
  Time when;
  std::uint64_t seq;
  int payload;
  bool cancelled{false};
};

class ReferenceQueue {
 public:
  std::uint64_t push(Time when, int payload) {
    entries_.push_back(RefEntry{when, next_seq_, payload, false});
    return next_seq_++;
  }
  bool cancel(std::uint64_t seq) {
    for (RefEntry& e : entries_) {
      if (e.seq == seq && !e.cancelled) {
        e.cancelled = true;
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] bool empty() const {
    return std::none_of(entries_.begin(), entries_.end(),
                        [](const RefEntry& e) { return !e.cancelled; });
  }
  /// Earliest live entry; (time, seq) lexicographic — the contract.
  RefEntry pop() {
    auto best = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->cancelled) continue;
      if (best == entries_.end() || it->when < best->when ||
          (it->when == best->when && it->seq < best->seq)) {
        best = it;
      }
    }
    RefEntry result = *best;
    entries_.erase(best);
    return result;
  }

 private:
  std::vector<RefEntry> entries_;
  std::uint64_t next_seq_{0};
};

class EventQueueDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueDifferential, MatchesReferenceModel) {
  Rng rng{GetParam()};
  EventQueue queue;
  ReferenceQueue reference;

  // Handle mapping: reference seq -> (EventHandle, payload sink).
  std::vector<std::pair<std::uint64_t, EventHandle>> live;
  std::vector<int> popped_real;

  for (int op = 0; op < 5'000; ++op) {
    const std::uint64_t choice = rng.below(100);
    if (choice < 55 || live.empty()) {
      // push
      const Time when = Time::from_ns(static_cast<std::int64_t>(rng.below(10'000)));
      const int payload = op;
      const std::uint64_t ref_seq = reference.push(when, payload);
      const EventHandle handle =
          queue.push(when, [payload, &popped_real] { popped_real.push_back(payload); });
      live.emplace_back(ref_seq, handle);
    } else if (choice < 75) {
      // cancel a random live entry (might already have been popped)
      const std::size_t pick = rng.below(live.size());
      const bool ref_ok = reference.cancel(live[pick].first);
      const bool real_ok = queue.cancel(live[pick].second);
      ASSERT_EQ(ref_ok, real_ok) << "cancel outcome diverged at op " << op;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      // pop
      ASSERT_EQ(queue.empty(), reference.empty());
      if (!reference.empty()) {
        const RefEntry expected = reference.pop();
        const auto event = queue.pop();
        ASSERT_EQ(event.when, expected.when) << "op " << op;
        event.fn();
        ASSERT_EQ(popped_real.back(), expected.payload) << "op " << op;
        std::erase_if(live, [&](const auto& kv) { return kv.first == expected.seq; });
      }
    }
    ASSERT_EQ(queue.size(), [&] {
      std::size_t n = 0;
      for (const auto& kv : live) {
        (void)kv;
        ++n;
      }
      return n;
    }()) << "live-count bookkeeping";
  }

  // Drain both and compare the full remaining order.
  while (!reference.empty()) {
    ASSERT_FALSE(queue.empty());
    const RefEntry expected = reference.pop();
    const auto event = queue.pop();
    ASSERT_EQ(event.when, expected.when);
    event.fn();
    ASSERT_EQ(popped_real.back(), expected.payload);
  }
  EXPECT_TRUE(queue.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const auto& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace aquamac

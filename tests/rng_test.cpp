#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace aquamac {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent{99};
  Rng fork_before = parent.fork(7);
  (void)parent();
  (void)parent();
  // fork() must depend only on seed-derived state captured at fork time,
  // not on how much the parent was consumed afterwards.
  Rng parent2{99};
  Rng fork_after = parent2.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fork_before(), fork_after());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent{99};
  Rng s1 = parent.fork(1);
  Rng s2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1() == s2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRangeAndCentered) {
  Rng rng{5};
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Rng rng{17};
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kDraws = 70'000;
  for (int i = 0; i < kDraws; ++i) counts[rng.below(kBuckets)] += 1;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / static_cast<int>(kBuckets), 600) << "bucket " << b;
  }
}

TEST(Rng, BelowEdgeCases) {
  Rng rng{3};
  EXPECT_EQ(rng.below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{23};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{31};
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(2.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 2.5, 0.05);
}

TEST(Rng, ExponentialDegenerateMean) {
  Rng rng{1};
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng{41};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng{53};
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

}  // namespace
}  // namespace aquamac

#include "mac/handshake.hpp"

#include <gtest/gtest.h>

namespace aquamac {
namespace {

TimeInterval interval(double begin_s, double end_s) {
  return TimeInterval{Time::from_seconds(begin_s), Time::from_seconds(end_s)};
}

TEST(ScheduleBook, ConflictDetection) {
  ScheduleBook book;
  book.add(3, interval(10.0, 12.0), BusyKind::kReceiving);
  EXPECT_TRUE(book.conflicts(3, interval(11.0, 11.5)));
  EXPECT_TRUE(book.conflicts(3, interval(9.0, 10.5)));
  EXPECT_FALSE(book.conflicts(3, interval(12.0, 13.0))) << "half-open windows";
  EXPECT_FALSE(book.conflicts(4, interval(11.0, 11.5))) << "per-neighbor";
}

TEST(ScheduleBook, TransmitWindowsIgnoredByDefault) {
  // A neighbor that is transmitting cannot be harmed by our arrival — it
  // will not hear it anyway — so kTransmitting does not conflict unless
  // explicitly requested.
  ScheduleBook book;
  book.add(3, interval(10.0, 12.0), BusyKind::kTransmitting);
  EXPECT_FALSE(book.conflicts(3, interval(11.0, 11.5)));
  EXPECT_TRUE(book.conflicts(3, interval(11.0, 11.5), /*include_tx_windows=*/true));
}

TEST(ScheduleBook, PruneDropsPastWindows) {
  ScheduleBook book;
  book.add(1, interval(1.0, 2.0), BusyKind::kReceiving);
  book.add(1, interval(3.0, 4.0), BusyKind::kReceiving);
  book.add(2, interval(5.0, 6.0), BusyKind::kTransmitting);
  book.prune(Time::from_seconds(2.5));
  EXPECT_EQ(book.size(), 2u);
  book.prune(Time::from_seconds(4.0));
  EXPECT_EQ(book.size(), 1u) << "windows ending exactly at now are pruned";
}

TEST(ScheduleBook, BusyUntil) {
  ScheduleBook book;
  EXPECT_FALSE(book.busy_until(1).has_value());
  book.add(1, interval(1.0, 2.0), BusyKind::kReceiving);
  book.add(1, interval(5.0, 8.0), BusyKind::kTransmitting);
  book.add(2, interval(20.0, 30.0), BusyKind::kReceiving);
  ASSERT_TRUE(book.busy_until(1).has_value());
  EXPECT_EQ(*book.busy_until(1), Time::from_seconds(8.0));
}

TEST(ScheduleBook, ClearAndEmpty) {
  ScheduleBook book;
  EXPECT_TRUE(book.empty());
  book.add(1, interval(0.0, 1.0), BusyKind::kReceiving);
  EXPECT_FALSE(book.empty());
  book.clear();
  EXPECT_TRUE(book.empty());
}

TEST(ScheduleBook, ManyWindowsStressPrune) {
  ScheduleBook book;
  for (int i = 0; i < 1'000; ++i) {
    book.add(static_cast<NodeId>(i % 10), interval(i, i + 1), BusyKind::kReceiving);
  }
  book.prune(Time::from_seconds(500.0));
  EXPECT_EQ(book.size(), 500u);
  EXPECT_FALSE(book.conflicts(3, interval(100.0, 200.0)))
      << "neighbor 3's windows below 500 s were pruned";
  EXPECT_TRUE(book.conflicts(3, interval(703.2, 703.5)))
      << "window [703, 704) belongs to neighbor 3 (703 % 10 == 3)";
}

}  // namespace
}  // namespace aquamac

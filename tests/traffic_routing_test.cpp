#include "net/routing.hpp"
#include "net/traffic.hpp"

#include <gtest/gtest.h>

namespace aquamac {
namespace {

TEST(UphillRouter, OnlyShallowerInRangeCandidates) {
  const std::vector<Vec3> positions{
      {0, 0, 3'000},    // 0: deep
      {0, 0, 2'000},    // 1: above 0, in range
      {0, 0, 1'000},    // 2: above 1, in range of 1, out of range of 0
      {5'000, 0, 100},  // 3: shallow but far from everyone
  };
  const UphillRouter router{positions, 1'500.0};
  EXPECT_EQ(router.candidates(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(router.candidates(1), (std::vector<NodeId>{2}));
  EXPECT_TRUE(router.is_sink(2)) << "nothing shallower in range";
  EXPECT_TRUE(router.is_sink(3));
  EXPECT_EQ(router.source_count(), 2u);
}

TEST(UphillRouter, PickIsAlwaysACandidate) {
  const std::vector<Vec3> positions{
      {0, 0, 2'000}, {500, 0, 1'000}, {0, 500, 1'200}, {200, 200, 900}};
  const UphillRouter router{positions, 1'500.0};
  Rng rng{1};
  for (int i = 0; i < 200; ++i) {
    const auto dst = router.pick_destination(0, rng);
    ASSERT_TRUE(dst.has_value());
    const auto& c = router.candidates(0);
    EXPECT_NE(std::find(c.begin(), c.end(), *dst), c.end());
  }
}

TEST(UphillRouter, SinkPicksNothing) {
  const std::vector<Vec3> positions{{0, 0, 100}, {0, 0, 2'000}};
  const UphillRouter router{positions, 1'500.0};
  Rng rng{1};
  EXPECT_FALSE(router.pick_destination(0, rng).has_value());
}

TEST(PerNodeRate, MatchesAggregateLoad) {
  TrafficConfig config{};
  config.offered_load_kbps = 0.5;        // 500 bits/s network-wide
  config.packet_bits_min = 2'048;
  config.packet_bits_max = 2'048;
  const double rate = per_node_packet_rate(config, 50);
  EXPECT_NEAR(rate * 50.0 * 2'048.0, 500.0, 1e-9);
}

TEST(PerNodeRate, ZeroSources) {
  EXPECT_DOUBLE_EQ(per_node_packet_rate(TrafficConfig{}, 0), 0.0);
}

TEST(PerNodeRate, VariableSizeUsesMean) {
  TrafficConfig config{};
  config.offered_load_kbps = 1.0;
  config.packet_bits_min = 1'024;
  config.packet_bits_max = 4'096;  // mean 2560
  EXPECT_NEAR(per_node_packet_rate(config, 10) * 10.0 * 2'560.0, 1'000.0, 1e-9);
}

TEST(TrafficSource, PoissonRateRealized) {
  Simulator sim;
  TrafficConfig config{};
  config.mode = TrafficMode::kPoisson;
  std::uint64_t emitted = 0;
  TrafficSource source{sim, config, /*node_rate_pps=*/2.0, Rng{42},
                       [&](std::uint32_t bits) {
                         EXPECT_EQ(bits, 2'048u);
                         ++emitted;
                       }};
  source.start(Time::zero(), 0);
  sim.run_until(Time::from_seconds(1'000.0));
  // 2 packets/s over 1000 s => ~2000, Poisson sd ~45.
  EXPECT_NEAR(static_cast<double>(emitted), 2'000.0, 200.0);
  EXPECT_EQ(source.generated(), emitted);
}

TEST(TrafficSource, ZeroRateEmitsNothing) {
  Simulator sim;
  TrafficConfig config{};
  TrafficSource source{sim, config, 0.0, Rng{1}, [](std::uint32_t) { FAIL(); }};
  source.start(Time::zero(), 0);
  sim.run_until(Time::from_seconds(100.0));
}

TEST(TrafficSource, BatchInjectsExactCount) {
  Simulator sim;
  TrafficConfig config{};
  config.mode = TrafficMode::kBatch;
  std::uint64_t emitted = 0;
  TrafficSource source{sim, config, 0.0, Rng{2}, [&](std::uint32_t) { ++emitted; }};
  source.start(Time::from_seconds(5.0), 17);
  sim.run();
  EXPECT_EQ(emitted, 17u);
  // All within the 1 s stagger window after start.
  EXPECT_LE(sim.now().to_seconds(), 6.0);
  EXPECT_GE(sim.now().to_seconds(), 5.0);
}

TEST(TrafficSource, VariableSizesWithinRange) {
  Simulator sim;
  TrafficConfig config{};
  config.mode = TrafficMode::kBatch;
  config.packet_bits_min = 1'024;
  config.packet_bits_max = 4'096;
  bool saw_below_mid = false;
  bool saw_above_mid = false;
  TrafficSource source{sim, config, 0.0, Rng{3}, [&](std::uint32_t bits) {
                         ASSERT_GE(bits, 1'024u);
                         ASSERT_LE(bits, 4'096u);
                         saw_below_mid |= bits < 2'560;
                         saw_above_mid |= bits > 2'560;
                       }};
  source.start(Time::zero(), 200);
  sim.run();
  EXPECT_TRUE(saw_below_mid);
  EXPECT_TRUE(saw_above_mid);
}

}  // namespace
}  // namespace aquamac

#include "channel/reception.hpp"

#include <gtest/gtest.h>

namespace aquamac {
namespace {

ReceptionContext clean_context() {
  ReceptionContext ctx{};
  ctx.rx_level_db = 100.0;
  ctx.noise_level_db = 60.0;
  ctx.bits = 2'048;
  ctx.detection_threshold_db = -1e9;
  return ctx;
}

TEST(DeterministicModel, CleanArrivalSucceeds) {
  Rng rng{1};
  const DeterministicCollisionModel model;
  EXPECT_EQ(model.decide(clean_context(), rng), RxOutcome::kSuccess);
}

TEST(DeterministicModel, AnyOverlapIsCollision) {
  Rng rng{1};
  const DeterministicCollisionModel model;
  ReceptionContext ctx = clean_context();
  ctx.interferer_levels_db.push_back(10.0);  // even a faint interferer kills it (Eq. 1)
  EXPECT_EQ(model.decide(ctx, rng), RxOutcome::kCollision);
}

TEST(DeterministicModel, HalfDuplexLossDominates) {
  Rng rng{1};
  const DeterministicCollisionModel model;
  ReceptionContext ctx = clean_context();
  ctx.receiver_transmitted = true;
  ctx.interferer_levels_db.push_back(90.0);
  EXPECT_EQ(model.decide(ctx, rng), RxOutcome::kHalfDuplexLoss);
}

TEST(DeterministicModel, BelowThresholdIsInvisible) {
  Rng rng{1};
  const DeterministicCollisionModel model;
  ReceptionContext ctx = clean_context();
  ctx.detection_threshold_db = 200.0;
  EXPECT_EQ(model.decide(ctx, rng), RxOutcome::kBelowThreshold);
}

TEST(BitErrorRate, KnownValues) {
  // Noncoherent FSK at snr = 0: 0.5; falls exponentially.
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::kFskNoncoherent, 0.0), 0.5);
  EXPECT_NEAR(bit_error_rate(Modulation::kFskNoncoherent, 10.0), 0.5 * std::exp(-5.0), 1e-12);
  // Coherent BPSK at snr = 0: Q(0)... erfc(0)/2 = 0.5.
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::kBpskCoherent, 0.0), 0.5);
  // Rayleigh FSK: 1/(2+snr).
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::kFskRayleigh, 8.0), 0.1);
}

TEST(BitErrorRate, OrderingAtModerateSnr) {
  const double snr = 10.0;
  EXPECT_LT(bit_error_rate(Modulation::kBpskCoherent, snr),
            bit_error_rate(Modulation::kFskNoncoherent, snr));
  EXPECT_LT(bit_error_rate(Modulation::kFskNoncoherent, snr),
            bit_error_rate(Modulation::kFskRayleigh, snr));
}

TEST(BitErrorRate, NegativeSnrClamped) {
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::kFskNoncoherent, -5.0), 0.5);
}

TEST(PacketErrorRate, Limits) {
  EXPECT_DOUBLE_EQ(packet_error_rate(0.0, 10'000), 0.0);
  EXPECT_DOUBLE_EQ(packet_error_rate(1.0, 1), 1.0);
  EXPECT_NEAR(packet_error_rate(0.5, 1), 0.5, 1e-12);
}

TEST(PacketErrorRate, StableForTinyBer) {
  // 1e-9 BER over 2048 bits: PER ~ 2.048e-6; the naive pow() formulation
  // loses precision here.
  const double per = packet_error_rate(1e-9, 2'048);
  EXPECT_NEAR(per, 2.048e-6, 1e-9);
}

TEST(PacketErrorRate, MonotoneInLength) {
  EXPECT_LT(packet_error_rate(1e-4, 64), packet_error_rate(1e-4, 4'096));
}

TEST(SinrModel, HighSnrAlwaysSucceeds) {
  Rng rng{1};
  const SinrPerModel model{Modulation::kFskNoncoherent};
  ReceptionContext ctx = clean_context();  // 40 dB SNR
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.decide(ctx, rng), RxOutcome::kSuccess);
}

TEST(SinrModel, StrongInterferenceFails) {
  Rng rng{1};
  const SinrPerModel model{Modulation::kFskNoncoherent};
  ReceptionContext ctx = clean_context();
  ctx.interferer_levels_db.push_back(100.0);  // co-channel equal-power
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    if (model.decide(ctx, rng) == RxOutcome::kSuccess) ++successes;
  }
  EXPECT_EQ(successes, 0) << "0 dB SINR over 2048 bits cannot survive";
}

TEST(SinrModel, CaptureEffectUnlikeDeterministic) {
  // 20 dB above the interferer: the SINR model captures; Eq. 1 would not.
  Rng rng{1};
  const SinrPerModel sinr{Modulation::kFskNoncoherent};
  const DeterministicCollisionModel det;
  ReceptionContext ctx = clean_context();
  ctx.interferer_levels_db.push_back(80.0);
  int captures = 0;
  for (int i = 0; i < 200; ++i) {
    if (sinr.decide(ctx, rng) == RxOutcome::kSuccess) ++captures;
  }
  EXPECT_GT(captures, 150);
  EXPECT_EQ(det.decide(ctx, rng), RxOutcome::kCollision);
}

TEST(SinrModel, NoiseLimitedErrors) {
  // SNR = 6 dB (~4x linear) noncoherent FSK: BER = 0.5 exp(-2) ~ 0.068;
  // over 8-bit packets PER ~ 0.43 — a mixed outcome.
  Rng rng{1};
  const SinrPerModel model{Modulation::kFskNoncoherent};
  ReceptionContext ctx = clean_context();
  ctx.rx_level_db = ctx.noise_level_db + 6.0;
  ctx.bits = 8;
  int successes = 0;
  for (int i = 0; i < 2'000; ++i) {
    if (model.decide(ctx, rng) == RxOutcome::kSuccess) ++successes;
  }
  EXPECT_GT(successes, 100);
  EXPECT_LT(successes, 2'000);
}

TEST(SinrModel, HalfDuplexStillDominates) {
  Rng rng{1};
  const SinrPerModel model{};
  ReceptionContext ctx = clean_context();
  ctx.receiver_transmitted = true;
  EXPECT_EQ(model.decide(ctx, rng), RxOutcome::kHalfDuplexLoss);
}

}  // namespace
}  // namespace aquamac

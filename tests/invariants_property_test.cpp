// Property-style invariants checked over whole runs across a
// (protocol x seed x packet-size) grid.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "net/network.hpp"

namespace aquamac {
namespace {

struct GridPoint {
  MacKind mac;
  std::uint64_t seed;
  std::uint32_t packet_bits;
};

void PrintTo(const GridPoint& p, std::ostream* os) {
  *os << to_string(p.mac) << "/seed" << p.seed << "/" << p.packet_bits << "b";
}

class RunInvariants : public ::testing::TestWithParam<GridPoint> {
 protected:
  static ScenarioConfig make_config(const GridPoint& p) {
    ScenarioConfig config = small_test_scenario();
    config.mac = p.mac;
    config.seed = p.seed;
    config.traffic.packet_bits_min = p.packet_bits;
    config.traffic.packet_bits_max = p.packet_bits;
    config.traffic.offered_load_kbps = 0.5;
    return config;
  }
};

TEST_P(RunInvariants, ConservationAndSanity) {
  const ScenarioConfig config = make_config(GetParam());
  Simulator sim;
  Network network{sim, config};
  // The run completing without a std::logic_error is itself the
  // half-duplex / scheduling-correctness invariant: the modem throws on
  // any protocol bug that transmits while transmitting.
  const RunStats stats = network.run();

  // --- delivery conservation -------------------------------------------
  MacCounters total{};
  std::uint64_t still_queued = 0;
  for (NodeId i = 0; i < network.node_count(); ++i) {
    const auto& mac = network.node(i).mac();
    total += mac.counters();
    still_queued += mac.queue_depth();

    // Per-node sender-side conservation: every offered packet is acked,
    // dropped, or still queued.
    const auto& c = mac.counters();
    EXPECT_EQ(c.packets_offered, c.packets_sent_ok + c.packets_dropped + mac.queue_depth())
        << "node " << i;
  }

  // Every delivery corresponds to a received data-class frame, and frames
  // received cannot exceed frames sent.
  const std::uint64_t data_frames_sent =
      total.frames_sent[frame_type_index(FrameType::kData)] +
      total.frames_sent[frame_type_index(FrameType::kExData)];
  EXPECT_LE(total.packets_delivered, data_frames_sent);

  // --- energy bounds ----------------------------------------------------
  const double elapsed_s = stats.elapsed_s;
  const auto n = static_cast<double>(network.node_count());
  EXPECT_GE(stats.total_energy_j, n * 0.05 * elapsed_s * 0.99) << "idle floor";
  EXPECT_LE(stats.total_energy_j, n * 2.0 * elapsed_s) << "all-tx ceiling";

  // --- metric consistency ------------------------------------------------
  EXPECT_NEAR(stats.throughput_kbps,
              static_cast<double>(stats.bits_delivered) / stats.traffic_duration_s / 1'000.0,
              1e-9);
  EXPECT_LE(total.handshake_successes, total.handshake_attempts);
  EXPECT_LE(total.extra_successes, total.extra_attempts);
  (void)still_queued;
}

TEST_P(RunInvariants, ExactCounterReproducibility) {
  const ScenarioConfig config = make_config(GetParam());
  auto run_counters = [&config] {
    Simulator sim;
    Network network{sim, config};
    network.run();
    MacCounters total{};
    for (NodeId i = 0; i < network.node_count(); ++i) {
      total += network.node(i).mac().counters();
    }
    return total;
  };
  const MacCounters a = run_counters();
  const MacCounters b = run_counters();
  for (std::size_t t = 0; t < kFrameTypeCount; ++t) {
    EXPECT_EQ(a.frames_sent[t], b.frames_sent[t]) << "frame type " << t;
    EXPECT_EQ(a.frames_received[t], b.frames_received[t]);
  }
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.rx_collisions, b.rx_collisions);
  EXPECT_EQ(a.total_delivery_latency, b.total_delivery_latency);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RunInvariants,
    ::testing::Values(GridPoint{MacKind::kEwMac, 1, 1'024}, GridPoint{MacKind::kEwMac, 2, 2'048},
                      GridPoint{MacKind::kEwMac, 3, 4'096}, GridPoint{MacKind::kSFama, 1, 2'048},
                      GridPoint{MacKind::kSFama, 4, 4'096}, GridPoint{MacKind::kRopa, 1, 2'048},
                      GridPoint{MacKind::kRopa, 5, 1'024}, GridPoint{MacKind::kCsMac, 1, 2'048},
                      GridPoint{MacKind::kCsMac, 6, 1'024}, GridPoint{MacKind::kCwMac, 1, 2'048},
                      GridPoint{MacKind::kSlottedAloha, 1, 2'048}),
    [](const auto& param_info) {
      std::string name{to_string(param_info.param.mac)};
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(param_info.param.seed) + "_" +
             std::to_string(param_info.param.packet_bits);
    });

// Slot alignment property: every negotiated frame (RTS/CTS/DATA/ACK) of a
// slotted protocol starts exactly on a slot boundary of that protocol's
// slot length; extra-class frames are exempt by design (§4.1).
class SlotAlignment : public ::testing::TestWithParam<MacKind> {};

TEST_P(SlotAlignment, NegotiatedFramesOnBoundaries) {
  ScenarioConfig config = small_test_scenario();
  config.mac = GetParam();
  Simulator sim;
  Network network{sim, config};

  // CS-MAC's physically piggybacked two-hop entries lengthen its control
  // frames and therefore its slot; the other surcharges are accounting-only.
  std::uint32_t control_bits = config.mac_config.control_bits;
  if (GetParam() == MacKind::kCsMac) control_bits += 96;
  const Duration omega = Duration::from_seconds(
      static_cast<double>(control_bits) / config.bit_rate_bps);
  const Duration slot = omega + network.config().mac_config.tau_max;

  std::uint64_t checked = 0;
  network.channel().set_audit([&](const TransmissionAudit& audit) {
    switch (audit.frame.type) {
      case FrameType::kRts:
      case FrameType::kCts:
      case FrameType::kData:
      case FrameType::kAck: {
        const std::int64_t offset =
            (audit.tx_window.begin - Time::zero()).count_ns() % slot.count_ns();
        EXPECT_EQ(offset, 0) << audit.frame.to_string();
        ++checked;
        break;
      }
      default:
        break;
    }
  });
  network.run();
  EXPECT_GT(checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(SlottedProtocols, SlotAlignment,
                         ::testing::Values(MacKind::kEwMac, MacKind::kSFama, MacKind::kRopa,
                                           MacKind::kCsMac, MacKind::kSlottedAloha),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Monotonicity property: offered load up => delivered bits (weakly) up,
// until saturation, for the paper's protocols on a fixed small topology.
TEST(LoadMonotonicity, LowLoadRegimeRoughlyLinear) {
  for (MacKind kind : {MacKind::kEwMac, MacKind::kSFama}) {
    ScenarioConfig config = small_test_scenario();
    config.mac = kind;
    config.sim_time = Duration::seconds(120);
    config.traffic.offered_load_kbps = 0.05;
    const RunStats low = run_scenario(config);
    config.traffic.offered_load_kbps = 0.6;
    const RunStats high = run_scenario(config);
    EXPECT_GT(high.bits_delivered, low.bits_delivered) << to_string(kind);
  }
}

}  // namespace
}  // namespace aquamac

#pragma once
// Shared scripted-topology testbed for protocol tests: hand-placed nodes
// on a deterministic channel, with direct access to MACs and counters.

#include <memory>
#include <vector>

#include "channel/acoustic_channel.hpp"
#include "mac/mac_factory.hpp"
#include "net/node.hpp"

namespace aquamac::testbed {

class TestBed {
 public:
  explicit TestBed(ChannelConfig channel_config = {}, double sound_speed = 1'500.0)
      : propagation_{sound_speed}, channel_{sim_, propagation_, channel_config} {}

  /// Adds a node running `kind` at `position`; returns its id (dense).
  NodeId add_node(MacKind kind, Vec3 position, MacConfig mac_config = MacConfig{}) {
    const auto id = static_cast<NodeId>(nodes_.size());
    auto node = std::make_unique<Node>(sim_, id, position, ModemConfig{}, reception_,
                                       Rng{1'000 + id});
    channel_.attach(node->modem());
    node->set_mac(make_mac(kind, sim_, node->modem(), node->neighbors(), mac_config,
                           Rng{2'000 + id}, Logger::off()));
    nodes_.push_back(std::move(node));
    return id;
  }

  /// Staggered Hello broadcasts so every neighbor table is populated,
  /// then runs until `settle`.
  void hello_and_settle(Time settle = Time::from_seconds(5.0)) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      MacProtocol* mac = &nodes_[i]->mac();
      sim_.at(Time::from_seconds(0.05 * static_cast<double>(i) + 0.01),
              [mac] { mac->broadcast_hello(); });
    }
    for (auto& node : nodes_) node->mac().start();
    sim_.run_until(settle);
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] AcousticChannel& channel() { return channel_; }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] MacProtocol& mac(NodeId id) { return nodes_.at(id)->mac(); }
  [[nodiscard]] const MacCounters& counters(NodeId id) const {
    return nodes_.at(id)->mac().counters();
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Sum of delivered packets across all nodes.
  [[nodiscard]] std::uint64_t total_delivered() const {
    std::uint64_t sum = 0;
    for (const auto& node : nodes_) sum += node->mac().counters().packets_delivered;
    return sum;
  }

 private:
  Simulator sim_;
  StraightLinePropagation propagation_;
  DeterministicCollisionModel reception_;
  AcousticChannel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// Slot helpers matching the default MacConfig (64-bit control, 12 kbps,
/// tau_max = 1 s).
inline Duration default_omega() { return Duration::from_seconds(64.0 / 12'000.0); }
inline Duration default_slot() { return default_omega() + Duration::seconds(1); }
inline Time slot_start(std::int64_t index) { return Time::zero() + default_slot() * index; }

}  // namespace aquamac::testbed

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "mac/dots/dots_mac.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(Dots, SinglePairDeliversWithoutNegotiation) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kDots, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kDots, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));

  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(s).frames_sent[frame_type_index(FrameType::kRts)], 0u)
      << "DOTS never negotiates";
  EXPECT_EQ(bed.counters(s).packets_sent_ok, 1u);
}

TEST(Dots, DeliveryIsFastNoSlotWait) {
  // No slot grid: send + prop + ack round trip only. 1 km pair => well
  // under two seconds, where slotted protocols need >= 4 slots (~4 s).
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kDots, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kDots, Vec3{0, 0, 0});
  bed.hello_and_settle();
  const Time start = bed.sim().now();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  ASSERT_EQ(bed.counters(s).packets_sent_ok, 1u);
  const Duration latency = bed.counters(s).total_delivery_latency;
  EXPECT_LT((latency).to_seconds(), 2.0) << "unslotted latency";
  (void)start;
}

TEST(Dots, DefersAroundOverheardReception) {
  // b is receiving a long DATA from a; c (who overheard the header) must
  // not garble it: c's packet to b arrives only after b's reception ends.
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kDots, Vec3{0, 0, 1'200});
  const NodeId b = bed.add_node(MacKind::kDots, Vec3{0, 0, 0});
  const NodeId c = bed.add_node(MacKind::kDots, Vec3{600, 0, 600});  // hears both
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(b, 12'000);  // 1 s airtime
  // c queues after it has fully overheard a's frame (~0.57 s propagation
  // + 1 s airtime), so its schedule book already predicts b's reception.
  bed.sim().at(bed.sim().now() + Duration::milliseconds(1'700),
               [&] { bed.mac(c).enqueue_packet(b, 2'048); });
  bed.sim().run_until(Time::from_seconds(40.0));

  EXPECT_EQ(bed.counters(b).packets_delivered, 2u) << "both arrive intact";
  EXPECT_EQ(bed.counters(b).rx_collisions, 0u)
      << "delay-aware launch must not collide at the shared receiver";
}

TEST(Dots, CollidingBlindSendersRecover) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kDots, Vec3{0, 0, 0});
  const NodeId a = bed.add_node(MacKind::kDots, Vec3{700, 0, 0});
  const NodeId b = bed.add_node(MacKind::kDots, Vec3{-700, 0, 0});
  // a and b cannot hear each other's headers in time: first data frames
  // collide at r; randomized backoff resolves.
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(r, 2'048);
  bed.mac(b).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
}

TEST(Dots, UnknownDestinationProbesWithHelloThenDrops) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kDots, Vec3{0, 0, 0});
  bed.add_node(MacKind::kDots, Vec3{0, 0, 4'000});  // unreachable
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(1, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));
  EXPECT_EQ(bed.counters(s).packets_dropped, 1u);
  EXPECT_GT(bed.counters(s).frames_sent[frame_type_index(FrameType::kHello)], 1u)
      << "re-probes for the missing neighbor";
}

TEST(Dots, ScheduleBookLearnsFromDataHeaders) {
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kDots, Vec3{0, 0, 1'200});
  const NodeId b = bed.add_node(MacKind::kDots, Vec3{0, 0, 0});
  const NodeId o = bed.add_node(MacKind::kDots, Vec3{600, 0, 600});
  bed.hello_and_settle();
  bed.mac(a).enqueue_packet(b, 2'048);
  bed.sim().run_until(Time::from_seconds(8.0));
  const auto& book = dynamic_cast<const DotsMac&>(bed.mac(o)).schedule_book();
  EXPECT_GE(book.size(), 2u) << "overheard header predicts reception + ack windows";
}

TEST(Dots, SmallNetworkEndToEnd) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kDots;
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.packets_delivered, 0u);
  EXPECT_LE(stats.packets_delivered, stats.packets_offered);
}

}  // namespace
}  // namespace aquamac

// EW-MAC edge cases beyond the happy-path extra communication:
// grant exclusivity, Eq.-5 slots across the Table-2 packet-size range,
// post-extra recovery, and physics-model invariance.

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

// Two losers ask the same granted receiver; §4.2 allows one extra
// exchange at a time — the second EXR is ignored and its sender falls
// back to normal contention.
TEST(EwMacEdge, OnlyFirstAskerIsGranted) {
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});   // winner
  const NodeId i1 = bed.add_node(MacKind::kEwMac, Vec3{-250, 0, 1'000});   // tau 0.167
  const NodeId i2 = bed.add_node(MacKind::kEwMac, Vec3{-450, 0, 1'000});   // tau 0.30
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(5.5), [&] {
    bed.mac(i1).enqueue_packet(j, 2'048);
    bed.mac(i2).enqueue_packet(j, 2'048);
  });
  bed.sim().run_until(Time::from_seconds(200.0));

  EXPECT_EQ(bed.counters(j).frames_sent[frame_type_index(FrameType::kExc)], 1u)
      << "exactly one grant";
  EXPECT_EQ(bed.counters(i1).extra_successes, 1u) << "the earlier-arriving EXR wins";
  EXPECT_EQ(bed.counters(i2).extra_attempts, 1u);
  EXPECT_EQ(bed.counters(i2).extra_successes, 0u);
  EXPECT_EQ(bed.counters(j).packets_delivered, 3u)
      << "the rejected asker still delivers via normal retry";
}

TEST(EwMacEdge, NodeIsReusableAfterExtraExchange) {
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(5.5), [&] { bed.mac(i).enqueue_packet(j, 2'048); });
  bed.sim().run_until(Time::from_seconds(60.0));
  ASSERT_EQ(bed.counters(i).extra_successes, 1u);

  // After the grant was consumed, j must accept fresh negotiations.
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().run_until(Time::from_seconds(120.0));
  EXPECT_EQ(bed.counters(j).packets_delivered, 3u);
  EXPECT_EQ(bed.counters(k).packets_sent_ok, 2u);
}

TEST(EwMacEdge, BackToBackExtrasOnSeparateExchanges) {
  // The same loser can win an extra chance on each of two consecutive
  // negotiated exchanges.
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(5.5), [&] {
    bed.mac(i).enqueue_packet(j, 2'048);
    bed.mac(i).enqueue_packet(j, 2'048);
  });
  bed.sim().run_until(Time::from_seconds(300.0));

  EXPECT_EQ(bed.counters(j).packets_delivered, 4u);
  EXPECT_GE(bed.counters(i).extra_successes, 1u);
  EXPECT_EQ(bed.counters(i).packets_sent_ok, 2u);
}

// Eq. (5) across the Table-2 size range: ts(Ack) - ts(Data) =
// ceil((TD + tau)/|ts|) for every payload.
class Eq5SizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Eq5SizeSweep, AckSlotMatchesForPayload) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'400});  // tau = 0.9333
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  Time data_tx{};
  Time ack_tx{};
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kData) data_tx = audit.tx_window.begin;
    if (audit.frame.type == FrameType::kAck) ack_tx = audit.tx_window.begin;
  });
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, GetParam());
  bed.sim().run_until(Time::from_seconds(60.0));

  ASSERT_NE(data_tx, Time{});
  ASSERT_NE(ack_tx, Time{});
  const Duration slot = testbed::default_slot();
  const Duration airtime = Duration::from_seconds(GetParam() / 12'000.0);
  const Duration tau = Duration::from_seconds(1'400.0 / 1'500.0);
  const std::int64_t expected_slots = (airtime + tau).divide_ceil(slot);
  EXPECT_EQ((ack_tx - data_tx).count_ns(), (slot * expected_slots).count_ns())
      << GetParam() << " bits";
  EXPECT_EQ(bed.counters(r).bits_delivered, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Table2Sizes, Eq5SizeSweep,
                         ::testing::Values(1'024u, 2'048u, 3'072u, 4'096u, 12'000u, 24'000u),
                         [](const auto& param_info) {
                           return "bits_" + std::to_string(param_info.param);
                         });

TEST(EwMacEdge, ExtraPhaseSurvivesSinrPhysics) {
  // Same Fig. 4/5 geometry, but under the SINR/PER reception model: SNR
  // at these ranges is high, so the deterministic episode replays intact.
  Simulator sim;
  StraightLinePropagation propagation{1'500.0};
  SinrPerModel reception{Modulation::kFskNoncoherent};
  AcousticChannel channel{sim, propagation, ChannelConfig{}};
  std::vector<std::unique_ptr<Node>> nodes;
  auto add = [&](Vec3 pos) {
    const auto id = static_cast<NodeId>(nodes.size());
    auto node =
        std::make_unique<Node>(sim, id, pos, ModemConfig{}, reception, Rng{1'000 + id});
    channel.attach(node->modem());
    node->set_mac(make_mac(MacKind::kEwMac, sim, node->modem(), node->neighbors(),
                           MacConfig{}, Rng{2'000 + id}, Logger::off()));
    nodes.push_back(std::move(node));
    return id;
  };
  const NodeId j = add({0, 0, 1'000});
  const NodeId k = add({1'400, 0, 1'000});
  const NodeId i = add({-300, 0, 1'000});
  for (std::size_t x = 0; x < nodes.size(); ++x) {
    MacProtocol* mac = &nodes[x]->mac();
    sim.at(Time::from_seconds(0.05 * static_cast<double>(x) + 0.01),
           [mac] { mac->broadcast_hello(); });
  }
  sim.run_until(Time::from_seconds(5.0));
  nodes[k]->mac().enqueue_packet(j, 2'048);
  sim.at(Time::from_seconds(5.5), [&] { nodes[i]->mac().enqueue_packet(j, 2'048); });
  sim.run_until(Time::from_seconds(40.0));

  EXPECT_EQ(nodes[i]->mac().counters().extra_successes, 1u);
  EXPECT_EQ(nodes[j]->mac().counters().packets_delivered, 2u);
}

TEST(EwMacEdge, LoserWithEmptyNeighborTableStillRecovers) {
  // i never heard a Hello (deployed late): the extra phase may or may not
  // be feasible, but the packet must resolve via normal machinery.
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});
  // No hello phase at all: tables start empty.
  for (NodeId n : {j, k, i}) bed.mac(n).start();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(0.55), [&] { bed.mac(i).enqueue_packet(j, 2'048); });
  bed.sim().run_until(Time::from_seconds(300.0));

  EXPECT_EQ(bed.counters(i).packets_sent_ok, 1u);
  EXPECT_EQ(bed.counters(j).packets_delivered, 2u);
}

}  // namespace
}  // namespace aquamac

#include "net/deployment.hpp"
#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "channel/acoustic_channel.hpp"
#include "channel/reception.hpp"
#include "phy/modem.hpp"
#include "sim/simulator.hpp"

namespace aquamac {
namespace {

TEST(Deployment, UniformBoxStaysInBounds) {
  Rng rng{1};
  DeploymentConfig config{};
  const auto positions = generate_deployment(config, 200, rng);
  ASSERT_EQ(positions.size(), 200u);
  for (const Vec3& p : positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, config.width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, config.length_m);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LE(p.z, config.depth_m);
  }
}

TEST(Deployment, DefaultBoxIsConnectedEnough) {
  Rng rng{7};
  const auto positions = generate_deployment(DeploymentConfig{}, 60, rng);
  EXPECT_GT(mean_degree(positions, 1'500.0), 4.0)
      << "the figure-default region must give real contention";
  EXPECT_GT(uphill_coverage(positions, 1'500.0), 0.7);
}

TEST(Deployment, Table2LiteralBoxIsNearlyDisconnected) {
  // The documented reason the figure default scales the region (DESIGN.md
  // §5): 60 nodes in 1000 km^3 at 1.5 km range have degree < 2.
  Rng rng{7};
  const auto positions = generate_deployment(table2_deployment(), 60, rng);
  EXPECT_LT(mean_degree(positions, 1'500.0), 2.0);
}

TEST(Deployment, DensitySweepIncreasesDegree) {
  Rng rng{3};
  const auto d60 = mean_degree(generate_deployment(DeploymentConfig{}, 60, rng), 1'500.0);
  const auto d140 = mean_degree(generate_deployment(DeploymentConfig{}, 140, rng), 1'500.0);
  EXPECT_GT(d140, d60 * 1.5) << "Fig. 7's density mechanism";
}

TEST(Deployment, LayeredColumnHasLayers) {
  Rng rng{5};
  DeploymentConfig config{};
  config.kind = DeploymentKind::kLayeredColumn;
  config.depth_m = 5'000.0;
  config.layer_spacing_m = 1'000.0;
  config.jitter_m = 50.0;
  const auto positions = generate_deployment(config, 50, rng);
  // Every node sits within jitter of a layer center (k + 0.5) * 1000.
  for (const Vec3& p : positions) {
    const double layer_offset = std::fmod(p.z, 1'000.0);
    const bool near_center = std::abs(layer_offset - 500.0) <= 50.0 + 1e-9;
    EXPECT_TRUE(near_center) << "depth " << p.z;
  }
}

TEST(Deployment, GridIsDeterministicGivenSeed) {
  DeploymentConfig config{};
  config.kind = DeploymentKind::kGrid;
  Rng rng1{11};
  Rng rng2{11};
  const auto a = generate_deployment(config, 27, rng1);
  const auto b = generate_deployment(config, 27, rng2);
  EXPECT_EQ(a, b);
}

TEST(Mobility, StaticNeverMoves) {
  Rng rng{1};
  Mobility mobility{MobilityKind::kStatic, MobilityConfig{}, Vec3{10, 20, 30}, rng};
  mobility.advance(Duration::seconds(1'000));
  EXPECT_EQ(mobility.position(), (Vec3{10, 20, 30}));
}

TEST(Mobility, HorizontalDriftPreservesDepth) {
  Rng rng{2};
  MobilityConfig config{};
  config.speed_mps = 1.0;
  Mobility mobility{MobilityKind::kHorizontalDrift, config, Vec3{2'000, 2'000, 1'234}, rng};
  for (int i = 0; i < 100; ++i) mobility.advance(Duration::seconds(5));
  EXPECT_DOUBLE_EQ(mobility.position().z, 1'234.0);
  EXPECT_NE(mobility.position().x, 2'000.0);
}

TEST(Mobility, VerticalDriftPreservesHorizontal) {
  Rng rng{3};
  MobilityConfig config{};
  config.speed_mps = 1.0;
  Mobility mobility{MobilityKind::kVerticalDrift, config, Vec3{2'000, 2'000, 2'000}, rng};
  for (int i = 0; i < 100; ++i) mobility.advance(Duration::seconds(5));
  EXPECT_DOUBLE_EQ(mobility.position().x, 2'000.0);
  EXPECT_DOUBLE_EQ(mobility.position().y, 2'000.0);
  EXPECT_NE(mobility.position().z, 2'000.0);
}

TEST(Mobility, DriftSpeedMatchesConfig) {
  Rng rng{4};
  MobilityConfig config{};
  config.speed_mps = 0.5;
  Mobility mobility{MobilityKind::kHorizontalDrift, config, Vec3{2'000, 2'000, 100}, rng};
  const Vec3 before = mobility.position();
  mobility.advance(Duration::seconds(10));
  EXPECT_NEAR(before.distance_to(mobility.position()), 5.0, 1e-9);
}

TEST(Mobility, ReflectsAtBounds) {
  Rng rng{5};
  MobilityConfig config{};
  config.speed_mps = 10.0;  // fast, to force reflections
  config.width_m = 100.0;
  config.length_m = 100.0;
  config.depth_m = 100.0;
  Mobility mobility{MobilityKind::kHorizontalDrift, config, Vec3{50, 50, 50}, rng};
  for (int i = 0; i < 1'000; ++i) {
    mobility.advance(Duration::seconds(1));
    EXPECT_GE(mobility.position().x, 0.0);
    EXPECT_LE(mobility.position().x, 100.0);
    EXPECT_GE(mobility.position().y, 0.0);
    EXPECT_LE(mobility.position().y, 100.0);
  }
}

// Regression for the spatial index under mobility: a node that crosses a
// cell boundary mid-simulation must be re-binned before its next
// reception — a stale grid would silently drop in-range receivers (or
// deliver to out-of-range ones).
TEST(Mobility, CellCrossingMoverIsRebinnedBeforeNextReception) {
  struct CountingListener final : ModemListener {
    std::size_t received = 0;
    void on_frame_received(const Frame&, const RxInfo&) override { ++received; }
    void on_tx_done(const Frame&) override {}
  };

  Simulator sim;
  StraightLinePropagation propagation{1'500.0};
  DeterministicCollisionModel reception;
  ChannelConfig config{};  // kRangeBased, 1.5 km range, index on
  AcousticChannel channel{sim, propagation, config};

  AcousticModem sender{sim, 0, ModemConfig{}, reception, Rng{1}};
  AcousticModem mover{sim, 1, ModemConfig{}, reception, Rng{2}};
  CountingListener sender_listener;
  CountingListener mover_listener;
  sender.set_listener(&sender_listener);
  mover.set_listener(&mover_listener);
  sender.set_position(Vec3{0, 0, 0});
  // Far outside the sender's 3x3x3 cell neighbourhood (and its range).
  mover.set_position(Vec3{6'000, 0, 0});
  channel.attach(sender);
  channel.attach(mover);

  Frame frame{};
  frame.type = FrameType::kRts;
  frame.dst = 1;
  frame.size_bits = 64;

  // Out of range: nothing arrives.
  sim.at(Time::from_seconds(1.0), [&] { sender.transmit(frame); });
  // The mover drifts into range (two cells closer) mid-simulation...
  sim.at(Time::from_seconds(10.0), [&] { mover.set_position(Vec3{1'000, 0, 0}); });
  // ...and the very next transmission must reach it.
  sim.at(Time::from_seconds(20.0), [&] { sender.transmit(frame); });
  // Moving back out must make it unreachable again.
  sim.at(Time::from_seconds(30.0), [&] { mover.set_position(Vec3{6'000, 0, 0}); });
  sim.at(Time::from_seconds(40.0), [&] { sender.transmit(frame); });
  sim.run();

  EXPECT_EQ(mover_listener.received, 1u);
  EXPECT_EQ(channel.spatial_rebins(), 2u);
}

TEST(Mobility, RandomKindCoversAllThreeModels) {
  // §5: "the location of each sensor is changed by randomly selecting one
  // of these models".
  Rng rng{6};
  bool saw[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) saw[static_cast<int>(Mobility::random_kind(rng))] = true;
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
  EXPECT_TRUE(saw[2]);
}

}  // namespace
}  // namespace aquamac

#include "net/neighbor_table.hpp"

#include <gtest/gtest.h>

namespace aquamac {
namespace {

TEST(NeighborTable, UpdateAndLookup) {
  NeighborTable table;
  EXPECT_FALSE(table.delay_to(5).has_value());
  table.update(5, Duration::milliseconds(700), Time::from_seconds(1.0));
  ASSERT_TRUE(table.delay_to(5).has_value());
  EXPECT_EQ(*table.delay_to(5), Duration::milliseconds(700));
  EXPECT_TRUE(table.knows(5));
  EXPECT_EQ(table.size(), 1u);
}

TEST(NeighborTable, LatestUpdateWins) {
  // §4.3: delays are refreshed on every received packet (mobile nodes).
  NeighborTable table;
  table.update(5, Duration::milliseconds(700), Time::from_seconds(1.0));
  table.update(5, Duration::milliseconds(750), Time::from_seconds(2.0));
  EXPECT_EQ(*table.delay_to(5), Duration::milliseconds(750));
  EXPECT_EQ(table.size(), 1u);
}

TEST(NeighborTable, MaxKnownDelay) {
  NeighborTable table;
  // An empty table has no delay to report — not a zero delay, which a
  // caller could mistake for "a neighbor at distance 0".
  EXPECT_FALSE(table.max_known_delay().has_value());
  table.update(1, Duration::milliseconds(300), Time::zero());
  table.update(2, Duration::milliseconds(900), Time::zero());
  table.update(3, Duration::milliseconds(500), Time::zero());
  ASSERT_TRUE(table.max_known_delay().has_value());
  EXPECT_EQ(*table.max_known_delay(), Duration::milliseconds(900));
}

TEST(NeighborTable, MaxKnownDelayEmptyAfterExpiry) {
  NeighborTable table;
  table.update(1, Duration::milliseconds(300), Time::from_seconds(1.0));
  table.expire_older_than(Time::from_seconds(10.0));
  EXPECT_FALSE(table.max_known_delay().has_value());
}

TEST(NeighborTable, NeighborIdsSorted) {
  NeighborTable table;
  table.update(9, Duration::milliseconds(1), Time::zero());
  table.update(2, Duration::milliseconds(1), Time::zero());
  table.update(5, Duration::milliseconds(1), Time::zero());
  EXPECT_EQ(table.neighbor_ids(), (std::vector<NodeId>{2, 5, 9}));
}

TEST(NeighborTable, ExpiryDropsStaleEntries) {
  NeighborTable table;
  table.update(1, Duration::milliseconds(1), Time::from_seconds(10.0));
  table.update(2, Duration::milliseconds(1), Time::from_seconds(50.0));
  table.update_two_hop(1, 7, Duration::milliseconds(2), Time::from_seconds(10.0));
  table.update_two_hop(2, 8, Duration::milliseconds(2), Time::from_seconds(50.0));
  table.expire_older_than(Time::from_seconds(30.0));
  EXPECT_FALSE(table.knows(1));
  EXPECT_TRUE(table.knows(2));
  EXPECT_FALSE(table.two_hop_delay(1, 7).has_value());
  EXPECT_TRUE(table.two_hop_delay(2, 8).has_value());
}

TEST(NeighborTable, TwoHopLookup) {
  NeighborTable table;
  EXPECT_FALSE(table.two_hop_delay(1, 2).has_value());
  table.update_two_hop(1, 2, Duration::milliseconds(400), Time::zero());
  ASSERT_TRUE(table.two_hop_delay(1, 2).has_value());
  EXPECT_EQ(*table.two_hop_delay(1, 2), Duration::milliseconds(400));
  EXPECT_FALSE(table.two_hop_delay(2, 1).has_value()) << "directional: keyed by (via, far)";
  EXPECT_EQ(table.two_hop_size(), 1u);
}

TEST(NeighborTable, LastUpdatedTracksRefreshes) {
  NeighborTable table;
  EXPECT_FALSE(table.last_updated(5).has_value());
  table.update(5, Duration::milliseconds(700), Time::from_seconds(1.0));
  ASSERT_TRUE(table.last_updated(5).has_value());
  EXPECT_EQ(*table.last_updated(5), Time::from_seconds(1.0));
  table.update(5, Duration::milliseconds(710), Time::from_seconds(4.0));
  EXPECT_EQ(*table.last_updated(5), Time::from_seconds(4.0));
}

TEST(NeighborTable, EvictOlderThanReturnsSortedVictims) {
  NeighborTable table;
  table.update(9, Duration::milliseconds(1), Time::from_seconds(1.0));
  table.update(2, Duration::milliseconds(1), Time::from_seconds(2.0));
  table.update(5, Duration::milliseconds(1), Time::from_seconds(50.0));
  table.update_two_hop(9, 7, Duration::milliseconds(2), Time::from_seconds(1.0));
  table.update_two_hop(5, 8, Duration::milliseconds(2), Time::from_seconds(50.0));

  // At t=60 with a 30 s max age, entries refreshed before t=30 go.
  const std::vector<NodeId> evicted =
      table.evict_older_than(Duration::seconds(30), Time::from_seconds(60.0));
  EXPECT_EQ(evicted, (std::vector<NodeId>{2, 9}));
  EXPECT_FALSE(table.knows(9));
  EXPECT_FALSE(table.knows(2));
  EXPECT_TRUE(table.knows(5));
  EXPECT_FALSE(table.two_hop_delay(9, 7).has_value()) << "two-hop rides the one-hop eviction";
  EXPECT_TRUE(table.two_hop_delay(5, 8).has_value());
}

TEST(NeighborTable, EvictOlderThanKeepsFreshTableIntact) {
  NeighborTable table;
  table.update(1, Duration::milliseconds(1), Time::from_seconds(10.0));
  EXPECT_TRUE(table.evict_older_than(Duration::seconds(30), Time::from_seconds(20.0)).empty());
  EXPECT_TRUE(table.knows(1));
}

TEST(NeighborTable, InfoBitsScaleWithEntries) {
  // The §5.3 overhead accounting: maintenance payload grows linearly with
  // table size — the mechanism behind Fig. 10's node-count growth.
  NeighborTable table;
  EXPECT_EQ(table.one_hop_info_bits(), 0u);
  for (NodeId i = 0; i < 10; ++i) table.update(i, Duration::milliseconds(1), Time::zero());
  EXPECT_EQ(table.one_hop_info_bits(), 10u * NeighborTable::kBitsPerEntry);
  for (NodeId i = 0; i < 4; ++i) table.update_two_hop(1, 100 + i, Duration::zero(), Time::zero());
  EXPECT_EQ(table.two_hop_info_bits(), 4u * NeighborTable::kBitsPerEntry);
}

}  // namespace
}  // namespace aquamac

// Stress and edge coverage for the modem's arrival ledger: many
// overlapping arrivals, chained collisions, energy watermarking, and the
// half-open boundary cases the Eq.-6 timing depends on.

#include <gtest/gtest.h>

#include <memory>

#include "channel/acoustic_channel.hpp"
#include "phy/modem.hpp"

namespace aquamac {
namespace {

struct CountingListener final : ModemListener {
  int received = 0;
  int failed = 0;
  std::vector<RxOutcome> outcomes;
  void on_frame_received(const Frame&, const RxInfo&) override { ++received; }
  void on_rx_failure(const Frame&, RxOutcome outcome, const RxInfo&) override {
    ++failed;
    outcomes.push_back(outcome);
  }
  void on_tx_done(const Frame&) override {}
};

class ModemLedgerTest : public ::testing::Test {
 protected:
  ModemLedgerTest() : propagation_{1'500.0}, channel_{sim_, propagation_, ChannelConfig{}} {}

  AcousticModem& add(NodeId id, Vec3 pos) {
    auto modem =
        std::make_unique<AcousticModem>(sim_, id, ModemConfig{}, reception_, Rng{id + 1});
    modem->set_position(pos);
    auto listener = std::make_unique<CountingListener>();
    modem->set_listener(listener.get());
    channel_.attach(*modem);
    listeners_.push_back(std::move(listener));
    modems_.push_back(std::move(modem));
    return *modems_.back();
  }

  static Frame data_frame(NodeId dst, std::uint32_t bits) {
    Frame frame{};
    frame.type = FrameType::kData;
    frame.dst = dst;
    frame.size_bits = bits;
    frame.data_bits = bits;
    return frame;
  }

  Simulator sim_;
  StraightLinePropagation propagation_;
  DeterministicCollisionModel reception_;
  AcousticChannel channel_;
  std::vector<std::unique_ptr<AcousticModem>> modems_;
  std::vector<std::unique_ptr<CountingListener>> listeners_;
};

TEST_F(ModemLedgerTest, ChainOfOverlappingArrivalsAllCollide) {
  // Five staggered transmitters whose frames each overlap the next at the
  // receiver: every arrival must be judged a collision, transitively.
  add(0, Vec3{0, 0, 0});  // receiver
  for (NodeId i = 1; i <= 5; ++i) {
    auto& tx = add(i, Vec3{200.0 * i, 0, 0});
    // 2048-bit frames: 170 ms airtime; arrivals offset by 133 ms steps
    // (200 m) so consecutive frames overlap.
    sim_.at(Time::from_seconds(0.0), [&tx, i] {
      Frame frame = data_frame(0, 2'048);
      frame.seq = i;
      tx.transmit(frame);
    });
  }
  sim_.run();
  EXPECT_EQ(listeners_[0]->received, 0);
  EXPECT_EQ(listeners_[0]->failed, 5);
}

TEST_F(ModemLedgerTest, BackToBackArrivalsDoNotCollide) {
  // Half-open windows: a frame ending exactly when the next begins is NOT
  // an overlap — the property EW-MAC's Eq. 6 exploits (EXDATA arriving
  // exactly as the Ack transmission ends).
  add(0, Vec3{0, 0, 0});
  auto& a = add(1, Vec3{750, 0, 0});  // tau = 0.5 s
  auto& b = add(2, Vec3{750, 0, 0});  // same distance
  const Duration airtime = Duration::from_seconds(2'048.0 / 12'000.0);
  sim_.at(Time::zero(), [&] { a.transmit(data_frame(0, 2'048)); });
  sim_.at(Time::zero() + airtime, [&] { b.transmit(data_frame(0, 2'048)); });
  sim_.run();
  EXPECT_EQ(listeners_[0]->received, 2);
  EXPECT_EQ(listeners_[0]->failed, 0);
}

TEST_F(ModemLedgerTest, OneNanosecondEarlierDoesCollide) {
  add(0, Vec3{0, 0, 0});
  auto& a = add(1, Vec3{750, 0, 0});
  auto& b = add(2, Vec3{750, 0, 0});
  const Duration airtime = Duration::from_seconds(2'048.0 / 12'000.0);
  sim_.at(Time::zero(), [&] { a.transmit(data_frame(0, 2'048)); });
  sim_.at(Time::zero() + airtime - Duration::nanoseconds(1),
          [&] { b.transmit(data_frame(0, 2'048)); });
  sim_.run();
  EXPECT_EQ(listeners_[0]->received, 0);
  EXPECT_EQ(listeners_[0]->failed, 2);
}

TEST_F(ModemLedgerTest, LongRunLedgerStaysBounded) {
  // Many sequential transmissions: pruning must keep state small and all
  // frames deliverable (indirectly: no stale-overlap false positives).
  add(0, Vec3{0, 0, 0});
  auto& tx = add(1, Vec3{300, 0, 0});
  for (int k = 0; k < 500; ++k) {
    sim_.at(Time::from_seconds(0.5 * k), [&tx, k] {
      Frame frame = data_frame(0, 1'024);
      frame.seq = static_cast<std::uint64_t>(k);
      tx.transmit(frame);
    });
  }
  sim_.run();
  EXPECT_EQ(listeners_[0]->received, 500);
  EXPECT_EQ(listeners_[0]->failed, 0);
  EXPECT_EQ(modems_[0]->frames_received(), 500u);
}

TEST_F(ModemLedgerTest, RxEnergyWatermarkAvoidsDoubleBilling) {
  // Two fully overlapping arrivals: active-receive time must be billed as
  // the union (one airtime), not the sum.
  add(0, Vec3{0, 0, 0});
  auto& a = add(1, Vec3{600, 0, 0});
  auto& b = add(2, Vec3{600, 0, 0});
  sim_.at(Time::zero(), [&] { a.transmit(data_frame(0, 2'048)); });
  sim_.at(Time::zero(), [&] { b.transmit(data_frame(0, 2'048)); });
  sim_.run();
  const double airtime_s = 2'048.0 / 12'000.0;
  EXPECT_NEAR(modems_[0]->energy().rx_time().to_seconds(), airtime_s, 1e-9);
}

TEST_F(ModemLedgerTest, PartialOverlapBillsUnion) {
  add(0, Vec3{0, 0, 0});
  auto& a = add(1, Vec3{300, 0, 0});   // arrival begins 0.2
  auto& b = add(2, Vec3{450, 0, 0});   // arrival begins 0.3
  sim_.at(Time::zero(), [&] { a.transmit(data_frame(0, 2'048)); });
  sim_.at(Time::zero(), [&] { b.transmit(data_frame(0, 2'048)); });
  sim_.run();
  const double airtime_s = 2'048.0 / 12'000.0;
  // Union = [0.2, 0.3 + airtime) = 0.1 + airtime.
  EXPECT_NEAR(modems_[0]->energy().rx_time().to_seconds(), 0.1 + airtime_s, 1e-9);
}

TEST_F(ModemLedgerTest, TransmitDuringArrivalKillsOnlyThatArrival) {
  add(0, Vec3{0, 0, 0});
  auto& a = add(1, Vec3{600, 0, 0});
  // Receiver transmits a short frame in the middle of a's arrival window.
  sim_.at(Time::zero(), [&] { a.transmit(data_frame(0, 2'048)); });
  sim_.at(Time::from_seconds(0.45), [&] {
    Frame frame{};
    frame.type = FrameType::kAck;
    frame.dst = 1;
    frame.size_bits = 64;
    modems_[0]->transmit(frame);
  });
  // A later clean arrival must still be received.
  sim_.at(Time::from_seconds(2.0), [&] { a.transmit(data_frame(0, 2'048)); });
  sim_.run();
  EXPECT_EQ(listeners_[0]->failed, 1);
  ASSERT_EQ(listeners_[0]->outcomes.size(), 1u);
  EXPECT_EQ(listeners_[0]->outcomes[0], RxOutcome::kHalfDuplexLoss);
  EXPECT_EQ(listeners_[0]->received, 1);
}

TEST_F(ModemLedgerTest, TxWindowJustBeforeArrivalIsHarmless) {
  add(0, Vec3{0, 0, 0});
  auto& a = add(1, Vec3{600, 0, 0});  // arrival begins at 0.4
  sim_.at(Time::zero(), [&] { a.transmit(data_frame(0, 2'048)); });
  // Receiver's 64-bit frame ends exactly at 0.4 - before the arrival's
  // half-open window opens.
  const Duration control_airtime = Duration::from_seconds(64.0 / 12'000.0);
  sim_.at(Time::from_seconds(0.4) - control_airtime, [&] {
    Frame frame{};
    frame.type = FrameType::kAck;
    frame.dst = 1;
    frame.size_bits = 64;
    modems_[0]->transmit(frame);
  });
  sim_.run();
  EXPECT_EQ(listeners_[0]->received, 1);
  EXPECT_EQ(listeners_[0]->failed, 0);
}

TEST_F(ModemLedgerTest, StatsCountersMatchListener) {
  add(0, Vec3{0, 0, 0});
  auto& a = add(1, Vec3{400, 0, 0});
  auto& b = add(2, Vec3{400, 100, 0});
  sim_.at(Time::zero(), [&] { a.transmit(data_frame(0, 2'048)); });        // collides
  sim_.at(Time::zero(), [&] { b.transmit(data_frame(0, 2'048)); });        // collides
  sim_.at(Time::from_seconds(3.0), [&] { a.transmit(data_frame(0, 1'024)); });  // clean
  sim_.run();
  EXPECT_EQ(modems_[0]->frames_received(), static_cast<std::uint64_t>(listeners_[0]->received));
  EXPECT_EQ(modems_[0]->rx_losses(), static_cast<std::uint64_t>(listeners_[0]->failed));
  EXPECT_EQ(modems_[0]->frames_received(), 1u);
  EXPECT_EQ(modems_[0]->rx_losses(), 2u);
  EXPECT_EQ(a.frames_sent(), 2u);
}

}  // namespace
}  // namespace aquamac

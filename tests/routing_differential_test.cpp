// Differential oracle for the distance-vector protocol (docs/routing.md):
// on a static, fault-free deployment the DvRouter tables, once converged,
// must equal the RouteTable shortest-delay tree built from the *final*
// neighbor-table delay estimates — entry for entry: same next hop, same
// hop count, same path cost. Both layers share route_link_cost and the
// (cost, lower-id) tie-break, so this is exact equality, not "close".
// Checked across EW-MAC, CS-MAC and S-FAMA, plus a jobs 1-vs-4 and
// HashTrace digest identity so the DV machinery stays inside the
// determinism wall. The suite name is matched by the CI TSan job.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "net/network.hpp"
#include "net/route_table.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace aquamac {
namespace {

/// A static multi-hop DV scenario: no mobility, no clock skew, no faults,
/// light load — measured delays are constant, so DV has a fixed point.
ScenarioConfig dv_static_scenario(MacKind mac, std::uint64_t seed) {
  ScenarioConfig config = grid3d_scenario(48, seed);
  config.mac = mac;
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.enable_mobility = false;
  config.clock_offset_stddev_s = 0.0;
  config.sim_time = Duration::seconds(120);
  config.traffic.offered_load_kbps = 0.2;
  return config;
}

TEST(RoutingDifferential, ConvergedDvTablesEqualShortestDelayTree) {
  for (const MacKind mac : {MacKind::kEwMac, MacKind::kCsMac, MacKind::kSFama}) {
    SCOPED_TRACE(to_string(mac));
    const ScenarioConfig config = dv_static_scenario(mac, 21);
    Simulator sim{config.logger};
    Network network{sim, config};
    (void)network.run();

    // The oracle tree, built from the delays as the run left them — the
    // same inputs the DV ads carried (static network: delays constant).
    std::vector<std::map<NodeId, Duration>> delays(network.node_count());
    std::vector<bool> sinks(network.node_count(), false);
    for (std::size_t i = 0; i < network.node_count(); ++i) {
      for (const auto& [neighbor, entry] : network.node(static_cast<NodeId>(i)).neighbors().entries()) {
        delays[i][neighbor] = entry.delay;
      }
      sinks[i] = network.relay(static_cast<NodeId>(i))->is_sink();
    }
    const RouteTable tree = RouteTable::build(delays, sinks);

    std::size_t compared = 0;
    for (std::size_t i = 0; i < network.node_count(); ++i) {
      const auto id = static_cast<NodeId>(i);
      const DvRouter* dv = network.dv_router(id);
      ASSERT_NE(dv, nullptr);
      if (sinks[i]) {
        // A sink's best route is itself at cost zero; it relays nothing.
        EXPECT_FALSE(dv->next_hop().has_value());
        continue;
      }
      SCOPED_TRACE("node " + std::to_string(id));
      if (!tree.reachable(id)) {
        EXPECT_EQ(dv->best(), nullptr) << "DV found a route the tree cannot see";
        continue;
      }
      const DvRouter::Entry* best = dv->best();
      ASSERT_NE(best, nullptr) << "tree routes this node but DV never converged";
      EXPECT_EQ(dv->next_hop(), tree.next_hop(id));
      EXPECT_EQ(best->hops, tree.hops(id));
      EXPECT_EQ(best->cost, tree.cost(id));
      compared += 1;
    }
    // Liveness: the grid must actually route the overwhelming majority of
    // nodes, or the equality above is vacuous.
    EXPECT_GE(compared, network.node_count() * 3 / 4);
  }
}

TEST(RoutingDifferential, DvRunsDigestIdenticalAcrossJobs) {
  // The exact same DV scenario replicated with jobs = 1 and jobs = 4 must
  // produce bit-identical per-replication results (harness-level
  // parallelism may not perturb the routing layer).
  ScenarioConfig base = dv_static_scenario(MacKind::kEwMac, 31);
  base.sim_time = Duration::seconds(60);
  const std::vector<RunStats> serial = run_replicated_parallel(base, 3, 1);
  const std::vector<RunStats> parallel = run_replicated_parallel(base, 3, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    SCOPED_TRACE("replication " + std::to_string(k));
    EXPECT_GT(serial[k].e2e_originated, 0u);
    EXPECT_EQ(serial[k].e2e_originated, parallel[k].e2e_originated);
    EXPECT_EQ(serial[k].e2e_arrived_at_sink, parallel[k].e2e_arrived_at_sink);
    EXPECT_EQ(serial[k].e2e_forwarded, parallel[k].e2e_forwarded);
    EXPECT_EQ(serial[k].e2e_dropped_no_route, parallel[k].e2e_dropped_no_route);
    EXPECT_EQ(serial[k].mean_e2e_latency_s, parallel[k].mean_e2e_latency_s);
    EXPECT_EQ(serial[k].hop_stretch, parallel[k].hop_stretch);
    EXPECT_EQ(serial[k].total_energy_j, parallel[k].total_energy_j);
  }
}

TEST(RoutingDifferential, DvTraceDigestIsReproducible) {
  // Same config, two independent runs: the full event stream (now
  // including kRouteUpdate and the relay events) must digest identically.
  auto digest_of = [] {
    ScenarioConfig config = dv_static_scenario(MacKind::kCsMac, 17);
    config.sim_time = Duration::seconds(60);
    HashTrace trace;
    config.trace = &trace;
    const RunStats stats = run_scenario(config);
    EXPECT_GT(stats.e2e_originated, 0u);
    return trace.digest();
  };
  const std::uint64_t first = digest_of();
  EXPECT_NE(first, HashTrace{}.digest());
  EXPECT_EQ(digest_of(), first);
}

}  // namespace
}  // namespace aquamac

// Failure injection: jamming, stale neighbor state, fast drift, queue
// pressure. The protocols must degrade gracefully — retry, drop within
// budget, never violate the modem's half-duplex contract (which throws).

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "stats/trace.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(FailureInjection, PeriodicJammerDoesNotWedgeSFama) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  // The jammer runs slotted ALOHA toward a far-away dst, spraying data
  // frames that collide with the pair's control packets at r.
  const NodeId jammer = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 500, 0});
  const NodeId jam_sink = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 1'900, 0});
  bed.hello_and_settle();
  for (int i = 0; i < 10; ++i) bed.mac(jammer).enqueue_packet(jam_sink, 4'096);
  for (int i = 0; i < 3; ++i) bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));

  const auto& sc = bed.counters(s);
  EXPECT_EQ(sc.packets_sent_ok + sc.packets_dropped, 3u)
      << "every packet resolved one way or the other";
  EXPECT_GT(bed.counters(r).rx_collisions + bed.counters(s).rx_collisions, 0u)
      << "the jammer actually jammed";
}

TEST(FailureInjection, EwMacSurvivesJamming) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  const NodeId jammer = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 700, 500});
  const NodeId jam_sink = bed.add_node(MacKind::kSlottedAloha, Vec3{0, 2'100, 500});
  bed.hello_and_settle();
  for (int i = 0; i < 8; ++i) bed.mac(jammer).enqueue_packet(jam_sink, 4'096);
  for (int i = 0; i < 3; ++i) bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));
  const auto& sc = bed.counters(s);
  EXPECT_EQ(sc.packets_sent_ok + sc.packets_dropped, 3u);
}

TEST(FailureInjection, StaleDelayEstimatesAreRefreshedByTraffic) {
  // Move the receiver between exchanges: the first post-move handshake
  // refreshes the sender's delay estimate via the CTS timestamp (§4.3).
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  ASSERT_EQ(bed.counters(r).packets_delivered, 1u);
  EXPECT_NEAR(bed.node(s).neighbors().delay_to(r)->to_seconds(), 1'000.0 / 1'500.0, 1e-6);

  // Teleport r 300 m closer (an extreme current).
  bed.node(r).modem().set_position(Vec3{0, 0, 300});
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(80.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 2u);
  EXPECT_NEAR(bed.node(s).neighbors().delay_to(r)->to_seconds(), 700.0 / 1'500.0, 1e-6)
      << "delay re-learned from the next exchange";
}

TEST(FailureInjection, NeighborMovesOutOfRangeMidStream) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kSFama, Vec3{0, 0, 1'400});
  const NodeId r = bed.add_node(MacKind::kSFama, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  ASSERT_EQ(bed.counters(s).packets_sent_ok, 1u);

  bed.node(r).modem().set_position(Vec3{0, 0, -400});  // 1.8 km: gone
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(500.0));
  EXPECT_EQ(bed.counters(s).packets_dropped, 1u) << "retry budget exhausts cleanly";
}

TEST(FailureInjection, FastDriftStillDelivers) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.enable_mobility = true;
  config.mobility.speed_mps = 3.0;  // 10x the realistic current
  config.mobility.update_interval = Duration::seconds(2);
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.packets_delivered, 0u)
      << "per-packet delay refresh keeps the protocol alive under drift";
}

TEST(FailureInjection, QueueOverloadShedsAndRecovers) {
  TestBed bed;
  MacConfig config{};
  config.queue_limit = 4;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 800}, config);
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0}, config);
  bed.hello_and_settle();
  for (int i = 0; i < 20; ++i) bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));

  const auto& sc = bed.counters(s);
  EXPECT_EQ(sc.packets_offered, 20u);
  EXPECT_GE(sc.packets_dropped, 16u) << "queue bound sheds the burst";
  EXPECT_EQ(sc.packets_sent_ok, 4u) << "the admitted packets all deliver";
  EXPECT_EQ(bed.counters(r).packets_delivered, 4u);
}

TEST(FailureInjection, SelfAddressedAndUnknownDestinations) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 800});
  bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(s, 2'048);    // to itself: never deliverable
  bed.mac(s).enqueue_packet(42, 2'048);   // nonexistent id
  bed.sim().run_until(Time::from_seconds(500.0));
  EXPECT_EQ(bed.counters(s).packets_dropped, 2u);
  EXPECT_EQ(bed.total_delivered(), 0u);
}

TEST(FailureInjection, SinrPhysicsWithHeavyNoiseStillTerminates) {
  ScenarioConfig config = small_test_scenario();
  config.reception = ReceptionKind::kSinrPer;
  config.channel.mode = DeliveryMode::kRangeBased;
  config.channel.noise.wind_mps = 15.0;   // storm
  config.channel.noise.shipping = 1.0;
  config.channel.source_level_db = 130.0;  // weak transmitter: marginal SNR
  const RunStats stats = run_scenario(config);
  // Degraded, possibly heavily — but conservation still holds.
  EXPECT_LE(stats.packets_delivered, stats.packets_offered);
}

TEST(FailureInjection, DeadNodeGoesSilentAndPeersRecover) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 900});
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));
  ASSERT_EQ(bed.counters(s).packets_sent_ok, 1u);

  bed.node(r).modem().set_operational(false);
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(600.0));
  EXPECT_EQ(bed.counters(s).packets_dropped, 1u) << "retry budget exhausts against a corpse";
  EXPECT_EQ(bed.counters(r).packets_delivered, 1u) << "only the pre-failure delivery";
}

TEST(FailureInjection, MassFailureDegradesButNeverWedges) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.sim_time = Duration::seconds(200);
  const RunStats healthy = run_scenario(config);

  config.node_failure_fraction = 0.5;
  config.node_failure_time = Duration::seconds(20);
  const RunStats wounded = run_scenario(config);

  EXPECT_LT(wounded.bits_delivered, healthy.bits_delivered)
      << "half the network dying must cost throughput";
  EXPECT_GT(wounded.packets_delivered, 0u) << "the surviving half keeps working";
  // Conservation still holds network-wide.
  EXPECT_LE(wounded.packets_delivered, wounded.packets_offered);
}

// Trips the sender's modem the instant the receiver starts radiating the
// first Ack, and revives it after every echo of that Ack has faded
// (> tau_max), so exactly that Ack is lost and the retry handshake can
// complete.
class FirstAckKiller final : public TraceSink {
 public:
  FirstAckKiller(Simulator& sim, AcousticModem& victim) : sim_{sim}, victim_{victim} {}

  void record(const TraceEvent& event) override {
    if (fired_ || event.kind != TraceEventKind::kTxStart ||
        event.frame_type != FrameType::kAck) {
      return;
    }
    fired_ = true;
    victim_.set_operational(false);
    AcousticModem* victim = &victim_;
    sim_.at(event.window_end + Duration::seconds(2),
            [victim] { victim->set_operational(true); });
  }

  [[nodiscard]] bool fired() const { return fired_; }

 private:
  Simulator& sim_;
  AcousticModem& victim_;
  bool fired_{false};
};

TEST(FailureInjection, ForcedAckLossKeepsLatencyAccountingMatched) {
  // Regression for the mean-latency divisor: the latency sum and its
  // sample count are accrued at the same site, so an ACK loss that
  // stretches one packet's delivery over a retry must still leave
  // latency_samples == packets_sent_ok, with the single sample covering
  // the whole retry span.
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  FirstAckKiller killer{bed.sim(), bed.node(s).modem()};
  bed.node(r).modem().set_trace(&killer);
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(300.0));

  // The identical exchange without the kill switch, as a latency baseline.
  TestBed control;
  const NodeId cs = control.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId cr = control.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  control.hello_and_settle();
  control.mac(cs).enqueue_packet(cr, 2'048);
  control.sim().run_until(Time::from_seconds(300.0));
  ASSERT_EQ(control.counters(cs).packets_sent_ok, 1u);
  ASSERT_EQ(control.counters(cs).latency_samples, 1u);

  ASSERT_TRUE(killer.fired()) << "no Ack ever flew";
  const MacCounters& sc = bed.counters(s);
  ASSERT_EQ(sc.packets_sent_ok, 1u) << "the retry must eventually deliver";
  EXPECT_EQ(sc.latency_samples, sc.packets_sent_ok);
  EXPECT_GT(sc.total_delivery_latency,
            control.counters(cs).total_delivery_latency + testbed::default_slot())
      << "the lost Ack must show up in the one packet's latency";
}

TEST(FailureInjection, MultiHopLosesDownstreamOfDeadRelay) {
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.multi_hop = true;
  config.sim_time = Duration::seconds(250);
  const RunStats healthy = run_scenario(config);

  config.node_failure_fraction = 0.4;
  config.node_failure_time = Duration::seconds(30);
  const RunStats wounded = run_scenario(config);
  EXPECT_LE(wounded.e2e_arrived_at_sink, healthy.e2e_arrived_at_sink);
}

}  // namespace
}  // namespace aquamac

// Protocol x physics soak grid: every protocol under every
// (propagation, reception) combination on a mid-size network, verifying
// that the full cross-product works, conserves, and reproduces.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace aquamac {
namespace {

struct SoakPoint {
  MacKind mac;
  PropagationKind propagation;
  ReceptionKind reception;
};

class SoakGrid : public ::testing::TestWithParam<SoakPoint> {};

TEST_P(SoakGrid, RunsConservesDelivers) {
  const SoakPoint point = GetParam();
  ScenarioConfig config = small_test_scenario();
  config.mac = point.mac;
  config.propagation = point.propagation;
  config.reception = point.reception;
  config.node_count = 24;
  config.traffic.offered_load_kbps = 0.4;
  config.enable_mobility = true;
  config.sim_time = Duration::seconds(150);

  Simulator sim;
  Network network{sim, config};
  const RunStats stats = network.run();

  EXPECT_GT(stats.packets_delivered, 0u);
  EXPECT_LE(stats.packets_delivered, stats.packets_offered);
  for (NodeId i = 0; i < network.node_count(); ++i) {
    const auto& mac = network.node(i).mac();
    const auto& c = mac.counters();
    ASSERT_EQ(c.packets_offered, c.packets_sent_ok + c.packets_dropped + mac.queue_depth());
  }
}

std::vector<SoakPoint> grid() {
  std::vector<SoakPoint> points;
  for (MacKind mac : {MacKind::kEwMac, MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac,
                      MacKind::kCwMac, MacKind::kSlottedAloha, MacKind::kDots,
                      MacKind::kMacaU}) {
    for (PropagationKind propagation :
         {PropagationKind::kStraightLine, PropagationKind::kBellhopLite}) {
      for (ReceptionKind reception :
           {ReceptionKind::kDeterministic, ReceptionKind::kSinrPer}) {
        points.push_back({mac, propagation, reception});
      }
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(FullCrossProduct, SoakGrid, ::testing::ValuesIn(grid()),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param.mac)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           name += param_info.param.propagation ==
                                           PropagationKind::kStraightLine
                                       ? "_straight"
                                       : "_bellhop";
                           name += param_info.param.reception == ReceptionKind::kDeterministic
                                       ? "_det"
                                       : "_sinr";
                           return name;
                         });

}  // namespace
}  // namespace aquamac

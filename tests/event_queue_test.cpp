#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace aquamac {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(Time::from_seconds(3.0), [&] { order.push_back(3); });
  queue.push(Time::from_seconds(1.0), [&] { order.push_back(1); });
  queue.push(Time::from_seconds(2.0), [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  const Time t = Time::from_seconds(1.0);
  for (int i = 0; i < 10; ++i) {
    queue.push(t, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue queue;
  bool fired = false;
  const EventHandle handle = queue.push(Time::from_seconds(1.0), [&] { fired = true; });
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventHandle handle = queue.push(Time::from_seconds(1.0), [] {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelNullHandleFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(EventHandle{}));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue queue;
  const EventHandle handle = queue.push(Time::from_seconds(1.0), [] {});
  (void)queue.pop();
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelledEventsAreSkippedOnPop) {
  EventQueue queue;
  std::vector<int> order;
  const EventHandle h1 = queue.push(Time::from_seconds(1.0), [&] { order.push_back(1); });
  queue.push(Time::from_seconds(2.0), [&] { order.push_back(2); });
  const EventHandle h3 = queue.push(Time::from_seconds(3.0), [&] { order.push_back(3); });
  queue.cancel(h1);
  queue.cancel(h3);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.next_time(), Time::from_seconds(2.0));
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, NextTimeSkipsCancelledFront) {
  EventQueue queue;
  const EventHandle front = queue.push(Time::from_seconds(1.0), [] {});
  queue.push(Time::from_seconds(5.0), [] {});
  queue.cancel(front);
  EXPECT_EQ(queue.next_time(), Time::from_seconds(5.0));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue queue;
  for (int i = 0; i < 100; ++i) queue.push(Time::from_ns(i), [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, CompactionBoundsCancelledGarbage) {
  // Cancel-heavy workloads (MAC timer churn) must not leave the heap full
  // of dead entries: after any burst of cancels, stored entries stay
  // within 2x the live count (plus the small compaction floor). The 2x
  // bound is what keeps pop latency flat inside short sharded lookahead
  // windows, where queues are drained front-first many times per
  // simulated second.
  EventQueue queue;
  std::vector<EventHandle> handles;
  constexpr std::size_t kPushed = 50'000;
  handles.reserve(kPushed);
  for (std::size_t i = 0; i < kPushed; ++i) {
    handles.push_back(
        queue.push(Time::from_ns(static_cast<std::int64_t>((i * 7'919) % 1'000'000)), [] {}));
  }
  // Cancel all but every 100th event — 99% garbage without compaction.
  for (std::size_t i = 0; i < kPushed; ++i) {
    if (i % 100 != 0) queue.cancel(handles[i]);
  }
  const std::size_t live = queue.size();
  EXPECT_EQ(live, kPushed / 100);
  EXPECT_LE(queue.heap_entries(),
            std::max<std::size_t>(EventQueue::kCompactionFloor, 2 * live));

  // Compaction must not disturb ordering: the survivors pop in time order.
  Time last = Time::zero();
  std::size_t popped = 0;
  while (!queue.empty()) {
    const auto event = queue.pop();
    EXPECT_GE(event.when, last);
    last = event.when;
    ++popped;
  }
  EXPECT_EQ(popped, live);
}

TEST(EventQueue, CancelledEntriesTracksGarbageAndCompactionResetsIt) {
  EventQueue queue;
  EXPECT_EQ(queue.cancelled_entries(), 0u);

  // Below the compaction floor nothing is reclaimed, so the counter
  // tracks cancels exactly.
  std::vector<EventHandle> handles;
  for (std::int64_t i = 0; i < 32; ++i) {
    handles.push_back(queue.push(Time::from_ns(i), [] {}));
  }
  for (std::size_t i = 0; i < 16; ++i) queue.cancel(handles[i]);
  EXPECT_EQ(queue.cancelled_entries(), 16u);
  EXPECT_EQ(queue.size(), 16u);
  EXPECT_EQ(queue.heap_entries(), queue.size() + queue.cancelled_entries());

  // Popping past cancelled front entries reclaims them.
  const auto event = queue.pop();
  EXPECT_EQ(event.when, Time::from_ns(16));
  EXPECT_EQ(queue.cancelled_entries(), 0u);

  // Past the floor, crossing the >50%-garbage threshold compacts: the
  // counter drops back to zero instead of growing with the cancels.
  EventQueue big;
  handles.clear();
  for (std::int64_t i = 0; i < 1'000; ++i) {
    handles.push_back(big.push(Time::from_ns(i), [] {}));
  }
  for (std::size_t i = 0; i < 900; ++i) big.cancel(handles[i]);
  EXPECT_EQ(big.size(), 100u);
  EXPECT_LE(big.cancelled_entries(), big.size());
  EXPECT_EQ(big.heap_entries(), big.size() + big.cancelled_entries());

  big.clear();
  EXPECT_EQ(big.cancelled_entries(), 0u);
}

TEST(EventQueue, ReserveDoesNotChangeBehaviour) {
  EventQueue queue;
  queue.reserve(1'024);
  std::vector<int> order;
  queue.push(Time::from_seconds(2.0), [&] { order.push_back(2); });
  queue.push(Time::from_seconds(1.0), [&] { order.push_back(1); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LargeInterleavedWorkload) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (std::int64_t i = 0; i < 10'000; ++i) {
    handles.push_back(queue.push(Time::from_ns((i * 7'919) % 100'000), [] {}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) queue.cancel(handles[i]);
  Time last = Time::zero();
  std::size_t popped = 0;
  while (!queue.empty()) {
    const auto event = queue.pop();
    EXPECT_GE(event.when, last);
    last = event.when;
    ++popped;
  }
  EXPECT_EQ(popped, 10'000u - (10'000u + 2) / 3);
}

}  // namespace
}  // namespace aquamac

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "util/table.hpp"

namespace aquamac {
namespace {

MacCounters synthetic_counters() {
  MacCounters c{};
  c.packets_offered = 100;
  c.bits_offered = 100 * 2'048;
  c.packets_delivered = 80;
  c.bits_delivered = 80 * 2'048;
  c.packets_sent_ok = 80;
  c.bits_sent[frame_type_index(FrameType::kRts)] = 90 * 64;
  c.frames_sent[frame_type_index(FrameType::kRts)] = 90;
  c.bits_sent[frame_type_index(FrameType::kCts)] = 85 * 64;
  c.bits_sent[frame_type_index(FrameType::kAck)] = 80 * 64;
  c.bits_sent[frame_type_index(FrameType::kData)] = 85 * 2'048;
  c.bits_sent[frame_type_index(FrameType::kMaint)] = 10 * 500;
  c.bits_sent[frame_type_index(FrameType::kHello)] = 60 * 64;
  c.retransmitted_bits = 5 * 64;
  c.total_delivery_latency = Duration::seconds(160);
  c.latency_samples = 80;
  c.last_delivery_time = Time::from_seconds(250.0);
  return c;
}

TEST(Metrics, ComputeRunStatsEquations) {
  const MacCounters total = synthetic_counters();
  const RunStats stats = compute_run_stats(total, /*total_energy_j=*/600.0,
                                           /*node_count=*/60, Duration::seconds(310),
                                           Duration::seconds(300), Time::from_seconds(10.0));
  // Eq. (3): delivered bits / T.
  EXPECT_NEAR(stats.throughput_kbps, 80.0 * 2'048.0 / 300.0 / 1'000.0, 1e-12);
  EXPECT_NEAR(stats.offered_load_kbps, 100.0 * 2'048.0 / 300.0 / 1'000.0, 1e-12);
  EXPECT_NEAR(stats.delivery_ratio, 0.8, 1e-12);
  // mean power: 600 J over 310 s over 60 nodes.
  EXPECT_NEAR(stats.mean_power_mw, 600.0 / 310.0 / 60.0 * 1'000.0, 1e-9);
  // Overhead classes (Fig. 10): control excludes maintenance/hello.
  EXPECT_EQ(stats.control_bits, (90u + 85u + 80u) * 64u);
  EXPECT_EQ(stats.maintenance_bits, 10u * 500u + 60u * 64u);
  EXPECT_EQ(stats.retransmitted_bits, 5u * 64u);
  // Latency: 160 s over the 80 packets that contributed samples.
  EXPECT_NEAR(stats.mean_latency_s, 2.0, 1e-12);
  // Execution time relative to traffic start.
  EXPECT_NEAR(stats.execution_time_s, 240.0, 1e-12);
  // Eq. (4).
  EXPECT_NEAR(stats.efficiency_raw(), stats.throughput_kbps / stats.mean_power_mw, 1e-15);
}

TEST(Metrics, ZeroDenominatorsAreSafe) {
  const RunStats stats =
      compute_run_stats(MacCounters{}, 0.0, 0, Duration::zero(), Duration::zero(), Time::zero());
  EXPECT_EQ(stats.throughput_kbps, 0.0);
  EXPECT_EQ(stats.mean_power_mw, 0.0);
  EXPECT_EQ(stats.mean_latency_s, 0.0);
  EXPECT_EQ(stats.efficiency_raw(), 0.0);
}

TEST(Metrics, CountersAdditive) {
  MacCounters a = synthetic_counters();
  const MacCounters b = synthetic_counters();
  a += b;
  EXPECT_EQ(a.packets_offered, 200u);
  EXPECT_EQ(a.bits_delivered, 2u * 80u * 2'048u);
  EXPECT_EQ(a.frames_sent[frame_type_index(FrameType::kRts)], 180u);
  EXPECT_EQ(a.last_delivery_time, Time::from_seconds(250.0)) << "max, not sum";
  EXPECT_EQ(a.total_delivery_latency, Duration::seconds(320));
  EXPECT_EQ(a.latency_samples, 160u);
}

TEST(Metrics, MeanLatencyUsesSampleCountNotSentOk) {
  // Regression: mean latency used to divide by packets_sent_ok while the
  // latency sum was accumulated over a different packet set, so any
  // divergence between the two (e.g. ACK losses burning a packet's retry
  // budget after a successful earlier delivery) skewed the mean. The
  // divisor must be the count matched to the summed samples.
  MacCounters c{};
  c.packets_sent_ok = 10;
  c.total_delivery_latency = Duration::seconds(8);
  c.latency_samples = 4;
  const RunStats stats = compute_run_stats(c, 0.0, 1, Duration::seconds(100),
                                           Duration::seconds(100), Time::zero());
  EXPECT_NEAR(stats.mean_latency_s, 2.0, 1e-12);

  // No samples at all: safe zero even though packets_sent_ok is nonzero.
  MacCounters none{};
  none.packets_sent_ok = 10;
  const RunStats empty = compute_run_stats(none, 0.0, 1, Duration::seconds(100),
                                           Duration::seconds(100), Time::zero());
  EXPECT_EQ(empty.mean_latency_s, 0.0);
}

TEST(Harness, MeanOfAverages) {
  RunStats r1{};
  r1.throughput_kbps = 0.2;
  r1.mean_power_mw = 100.0;
  RunStats r2{};
  r2.throughput_kbps = 0.4;
  r2.mean_power_mw = 200.0;
  const MeanStats mean = mean_of({r1, r2});
  EXPECT_NEAR(mean.throughput_kbps, 0.3, 1e-12);
  EXPECT_NEAR(mean.mean_power_mw, 150.0, 1e-12);
}

TEST(Harness, MeanOfEmptyIsZero) {
  const MeanStats mean = mean_of({});
  EXPECT_EQ(mean.throughput_kbps, 0.0);
}

TEST(Harness, ReplicationVariesSeeds) {
  ScenarioConfig config = small_test_scenario();
  config.sim_time = Duration::seconds(30);
  const auto runs = run_replicated(config, 3);
  ASSERT_EQ(runs.size(), 3u);
  // At least two of the three runs must differ in accumulated energy.
  EXPECT_FALSE(runs[0].total_energy_j == runs[1].total_energy_j &&
               runs[1].total_energy_j == runs[2].total_energy_j);
}

TEST(Harness, SweepTableShape) {
  ScenarioConfig base = small_test_scenario();
  base.sim_time = Duration::seconds(20);
  const MacKind kinds[] = {MacKind::kSFama, MacKind::kEwMac};
  const double xs[] = {0.2, 0.4};
  const SweepResult sweep = run_sweep(
      base, kinds, xs,
      [](ScenarioConfig& c, double load) { c.traffic.offered_load_kbps = load; }, 1);

  EXPECT_EQ(sweep.xs.size(), 2u);
  EXPECT_EQ(sweep.series.at(MacKind::kSFama).size(), 2u);
  EXPECT_EQ(sweep.series.at(MacKind::kEwMac).size(), 2u);

  const Table table =
      sweep_table(sweep, "load", [](const MeanStats& m) { return m.throughput_kbps; });
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("S-FAMA"), std::string::npos);
  EXPECT_NE(os.str().find("EW-MAC"), std::string::npos);
}

TEST(Harness, NormalizedTableBaselineIsOne) {
  ScenarioConfig base = small_test_scenario();
  base.sim_time = Duration::seconds(20);
  const MacKind kinds[] = {MacKind::kSFama, MacKind::kEwMac};
  const double xs[] = {0.3};
  const SweepResult sweep = run_sweep(
      base, kinds, xs,
      [](ScenarioConfig& c, double load) { c.traffic.offered_load_kbps = load; }, 1);
  const Table table = sweep_table_normalized(
      sweep, "load", [](const MeanStats& m) { return m.overhead_bits; }, 3);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find(",1.000"), std::string::npos) << "S-FAMA column normalized to 1";
}

TEST(Harness, DescribeScenarioListsTable2Parameters) {
  const std::string sheet = describe_scenario(paper_default_scenario());
  for (const char* needle : {"60", "12 kbps", "1.5 km", "300 s", "64 bits", "2048"}) {
    EXPECT_NE(sheet.find(needle), std::string::npos) << needle;
  }
}

TEST(Harness, TableFormatting) {
  Table table{{"a", "bb"}};
  table.add_row({"1", "2"});
  table.add_row_numeric({3.14159, 2.0}, 2);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("3.14"), std::string::npos);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bb\n1,2\n3.14,2.00\n");
}

TEST(Harness, MacKindRoundTrip) {
  for (MacKind kind : {MacKind::kEwMac, MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac,
                       MacKind::kCwMac, MacKind::kSlottedAloha}) {
    EXPECT_EQ(mac_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)mac_kind_from_string("NOPE"), std::invalid_argument);
}

}  // namespace
}  // namespace aquamac

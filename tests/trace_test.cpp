#include "stats/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/scenario.hpp"
#include "net/network.hpp"

namespace aquamac {
namespace {

TraceEvent sample_event() {
  TraceEvent event{};
  event.kind = TraceEventKind::kRxOk;
  event.at = Time::from_seconds(1.5);
  event.node = 3;
  event.frame_type = FrameType::kData;
  event.src = 2;
  event.dst = 3;
  event.seq = 7;
  event.bits = 2'048;
  return event;
}

TEST(MemoryTrace, RecordsAndCounts) {
  MemoryTrace trace;
  trace.record(sample_event());
  TraceEvent tx = sample_event();
  tx.kind = TraceEventKind::kTxStart;
  tx.frame_type = FrameType::kRts;
  trace.record(tx);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.count(TraceEventKind::kRxOk), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kTxStart), 1u);
  EXPECT_EQ(trace.count_frames(FrameType::kData), 1u);
  EXPECT_EQ(trace.count_frames(FrameType::kRts), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(CsvTrace, HeaderAndRows) {
  std::ostringstream os;
  CsvTrace trace{os};
  trace.record(sample_event());
  const std::string out = os.str();
  EXPECT_NE(out.find("t_ns,event,node,frame"), std::string::npos);
  EXPECT_NE(out.find("1500000000,RX,3,DATA,2,3,7,2048"), std::string::npos);
}

TEST(CsvTrace, LossReasonColumn) {
  std::ostringstream os;
  CsvTrace trace{os};
  TraceEvent lost = sample_event();
  lost.kind = TraceEventKind::kRxLost;
  lost.outcome = RxOutcome::kCollision;
  trace.record(lost);
  EXPECT_NE(os.str().find(",collision"), std::string::npos);
}

TEST(HashTrace, SensitiveToEveryField) {
  const TraceEvent base = sample_event();
  HashTrace reference;
  reference.record(base);

  auto digest_with = [&](auto mutate) {
    TraceEvent event = sample_event();
    mutate(event);
    HashTrace hash;
    hash.record(event);
    return hash.digest();
  };
  EXPECT_NE(digest_with([](TraceEvent& e) { e.at = Time::from_seconds(1.6); }),
            reference.digest());
  EXPECT_NE(digest_with([](TraceEvent& e) { e.seq = 8; }), reference.digest());
  EXPECT_NE(digest_with([](TraceEvent& e) { e.kind = TraceEventKind::kRxLost; }),
            reference.digest());
  EXPECT_NE(digest_with([](TraceEvent& e) { e.bits = 64; }), reference.digest());
}

TEST(TeeTrace, FansOut) {
  MemoryTrace a;
  MemoryTrace b;
  TeeTrace tee{{&a, &b}};
  tee.record(sample_event());
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(NetworkTrace, FullRunIsTimeOrderedAndConsistent) {
  MemoryTrace trace;
  ScenarioConfig config = small_test_scenario();
  config.trace = &trace;
  Simulator sim;
  Network network{sim, config};
  const RunStats stats = network.run();

  EXPECT_GT(trace.size(), 50u);
  EXPECT_TRUE(trace.is_time_ordered());
  // Cross-check against counters: successful DATA receptions in the trace
  // match delivered + duplicates.
  std::size_t data_rx = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEventKind::kRxOk &&
        (e.frame_type == FrameType::kData || e.frame_type == FrameType::kExData) &&
        e.dst == e.node) {
      ++data_rx;
    }
  }
  MacCounters total{};
  for (NodeId i = 0; i < network.node_count(); ++i) total += network.node(i).mac().counters();
  EXPECT_EQ(data_rx, total.packets_delivered + total.duplicate_deliveries);
  (void)stats;
}

TEST(NetworkTrace, IdenticalSeedsProduceIdenticalDigests) {
  auto digest_for = [](std::uint64_t seed) {
    HashTrace hash;
    ScenarioConfig config = small_test_scenario();
    config.seed = seed;
    config.trace = &hash;
    Simulator sim;
    Network network{sim, config};
    network.run();
    return hash.digest();
  };
  EXPECT_EQ(digest_for(42), digest_for(42)) << "bit-identical reruns";
  EXPECT_NE(digest_for(42), digest_for(43));
}

}  // namespace
}  // namespace aquamac

// Hop-by-hop reliability layer (docs/reliability.md): bounded custody
// queues with drop policies, deterministic seeded retry/backoff,
// checkpoint round-trips of custody state mid-backoff, the two custody
// auditor invariants, and a faulted soak with the auditor in hard-fail
// mode. The ReliabilityDeterminism suite name is matched by the CI
// ThreadSanitizer job.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "harness/checkpoint_run.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "net/network.hpp"
#include "net/relay.hpp"
#include "stats/invariant_auditor.hpp"
#include "stats/trace.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

/// Collects every trace event verbatim (custody tests inspect which e2e
/// id a dead-letter names).
class VectorTrace final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events.push_back(event); }
  std::vector<TraceEvent> events;
};

[[nodiscard]] std::vector<TraceEvent> events_of_kind(const std::vector<TraceEvent>& events,
                                                     TraceEventKind kind) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

TEST(RelayDropPolicy, NamesRoundTrip) {
  EXPECT_EQ(to_string(RelayDropPolicy::kTailDrop), "tail-drop");
  EXPECT_EQ(to_string(RelayDropPolicy::kOldestFirst), "oldest-first");
  EXPECT_EQ(relay_drop_policy_from_string("tail-drop"), RelayDropPolicy::kTailDrop);
  EXPECT_EQ(relay_drop_policy_from_string("oldest-first"), RelayDropPolicy::kOldestFirst);
  EXPECT_THROW((void)relay_drop_policy_from_string("newest"), std::invalid_argument);
}

TEST(ReliabilityCounters, AdditiveWithHighwaterMax) {
  RelayCounters a{};
  a.retransmissions = 2;
  a.failovers = 1;
  a.dead_letter_overflow = 3;
  a.queue_highwater = 4;
  RelayCounters b{};
  b.retransmissions = 5;
  b.duplicates_suppressed = 7;
  b.queue_highwater = 9;
  a += b;
  EXPECT_EQ(a.retransmissions, 7u);
  EXPECT_EQ(a.failovers, 1u);
  EXPECT_EQ(a.dead_letter_overflow, 3u);
  EXPECT_EQ(a.duplicates_suppressed, 7u);
  EXPECT_EQ(a.queue_highwater, 9u) << "highwater aggregates as max, not sum";
}

// --- custody queue bound and drop policies -----------------------------

/// One relay node whose next hop is out of range: every MAC attempt
/// exhausts its retries and drops, handing the packet to the custody
/// backoff. The long backoff base parks it there so the test can probe
/// and overflow the queue deterministically.
class CustodyQueue : public ::testing::Test {
 protected:
  void build(RelayDropPolicy policy) {
    a_ = bed_.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
    unreachable_ = bed_.add_node(MacKind::kEwMac, Vec3{0, 0, 4'800});
    ReliabilityConfig rel;
    rel.max_retries = 3;
    rel.queue_limit = 1;
    rel.drop_policy = policy;
    rel.backoff_base = Duration::seconds(300);
    rel.backoff_max = Duration::seconds(600);
    const NodeId hop = unreachable_;
    relay_ = std::make_unique<RelayAgent>(
        bed_.sim(), bed_.mac(a_), a_, /*is_sink=*/false,
        [hop](NodeId) -> std::optional<NodeId> { return hop; },
        /*hop_limit=*/16, rel);
    relay_->set_trace(&trace_);
  }

  TestBed bed_;
  NodeId a_{}, unreachable_{};
  std::unique_ptr<RelayAgent> relay_;
  VectorTrace trace_;
};

TEST_F(CustodyQueue, TailDropRefusesArrivalWhenFull) {
  build(RelayDropPolicy::kTailDrop);
  bed_.hello_and_settle();
  relay_->originate(1'024);  // e2e id (0 << 32) | 1
  bed_.sim().run_until(Time::from_seconds(150.0));
  ASSERT_EQ(relay_->custody_depth(), 1u);
  ASSERT_EQ(relay_->in_backoff_count(), 1u) << "first packet must be parked in backoff";
  EXPECT_FALSE(events_of_kind(trace_.events, TraceEventKind::kRelayRetry).empty());

  relay_->originate(1'024);  // e2e id (0 << 32) | 2 — queue is full
  EXPECT_EQ(relay_->counters().dead_letter_overflow, 1u);
  EXPECT_EQ(relay_->custody_depth(), 1u);
  EXPECT_EQ(relay_->in_backoff_count(), 1u) << "resident custody survives tail drop";
  EXPECT_EQ(relay_->counters().queue_highwater, 1u);
  const auto dead = events_of_kind(trace_.events, TraceEventKind::kRelayDeadLetter);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].seq, 2u) << "tail drop refuses the arriving packet";
}

TEST_F(CustodyQueue, OldestFirstEvictsTheBackedOffResident) {
  build(RelayDropPolicy::kOldestFirst);
  bed_.hello_and_settle();
  relay_->originate(1'024);
  bed_.sim().run_until(Time::from_seconds(150.0));
  ASSERT_EQ(relay_->in_backoff_count(), 1u);

  relay_->originate(1'024);
  EXPECT_EQ(relay_->counters().dead_letter_overflow, 1u);
  EXPECT_EQ(relay_->custody_depth(), 1u);
  EXPECT_EQ(relay_->counters().queue_highwater, 1u);
  const auto dead = events_of_kind(trace_.events, TraceEventKind::kRelayDeadLetter);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].seq, 1u) << "oldest-first evicts the backed-off resident";
}

TEST_F(CustodyQueue, RetryBudgetEndsInExhaustedDeadLetter) {
  build(RelayDropPolicy::kTailDrop);
  bed_.hello_and_settle();
  relay_->originate(1'024);
  // 3 retries x (MAC attempt + <= 600 s backoff) fits comfortably here.
  bed_.sim().run_until(Time::from_seconds(3'600.0));
  EXPECT_EQ(relay_->custody_depth(), 0u);
  EXPECT_EQ(relay_->counters().dead_letter_exhausted, 1u);
  const auto retries = events_of_kind(trace_.events, TraceEventKind::kRelayRetry);
  ASSERT_FALSE(retries.empty());
  for (const TraceEvent& e : retries) EXPECT_LE(e.a, 3) << "retry count within budget";
  const auto requeues = events_of_kind(trace_.events, TraceEventKind::kRelayRequeue);
  EXPECT_EQ(requeues.size(), retries.size()) << "every armed backoff fired a retransmission";
}

// --- determinism across shard and job counts ---------------------------

/// The redundant-sibling corridor under GE burst loss with the ARQ on:
/// every reliability code path (retry, backoff jitter draw, failover,
/// dead letter) runs hot.
[[nodiscard]] ScenarioConfig lossy_arq_scenario(std::uint64_t seed) {
  ScenarioConfig config = small_test_scenario();
  config.seed = seed;
  config.node_count = 10;
  config.deployment.kind = DeploymentKind::kLayeredColumn;
  config.deployment.width_m = 400.0;
  config.deployment.length_m = 400.0;
  config.deployment.depth_m = 5'000.0;
  config.deployment.layer_spacing_m = 1'000.0;
  config.deployment.jitter_m = 50.0;
  config.enable_mobility = false;
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.sim_time = Duration::seconds(400);
  config.traffic.offered_load_kbps = 0.3;
  config.mac_config.max_retries = 2;
  config.mac_config.dead_neighbor_threshold = 3;
  config.fault.ge_p_bad = 0.15;
  config.fault.ge_loss_bad = 0.9;
  config.reliability.max_retries = 3;
  config.reliability.queue_limit = 16;
  return config;
}

struct RunOutput {
  std::uint64_t digest{0};
  RunStats stats{};
};

RunOutput run_with(ScenarioConfig config, unsigned shards, unsigned jobs) {
  HashTrace trace;
  config.trace = &trace;
  config.shards = shards;
  config.jobs = jobs;
  RunOutput out;
  out.stats = run_scenario(config);
  out.digest = trace.digest();
  return out;
}

TEST(ReliabilityDeterminism, DigestInvariantAcrossShardsAndJobs) {
  const ScenarioConfig config = lossy_arq_scenario(21);
  const RunOutput serial = run_with(config, 1, 1);
  EXPECT_NE(serial.digest, HashTrace{}.digest()) << "trace never exercised";
  EXPECT_GT(serial.stats.e2e_retransmissions, 0u) << "ARQ never exercised";
  for (const unsigned shards : {2u, 4u, 8u}) {
    for (const unsigned jobs : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " jobs=" + std::to_string(jobs));
      const RunOutput sharded = run_with(config, shards, jobs);
      EXPECT_EQ(sharded.digest, serial.digest);
      EXPECT_EQ(sharded.stats.e2e_retransmissions, serial.stats.e2e_retransmissions);
      EXPECT_EQ(sharded.stats.e2e_failovers, serial.stats.e2e_failovers);
      EXPECT_EQ(sharded.stats.e2e_duplicates_suppressed,
                serial.stats.e2e_duplicates_suppressed);
      EXPECT_EQ(sharded.stats.relay_queue_highwater, serial.stats.relay_queue_highwater);
    }
  }
}

// --- checkpoint round-trip with custody mid-backoff --------------------

TEST(ReliabilityCheckpoint, CustodyRoundTripsMidBackoff) {
  ScenarioConfig config = lossy_arq_scenario(33);
  config.fault.ge_p_bad = 0.3;  // drops every few frames: backoffs abound
  // Wide backoff windows so some boundary lands inside one.
  config.reliability.backoff_base = Duration::seconds(20);
  config.reliability.backoff_max = Duration::seconds(120);

  HashTrace full_trace;
  config.trace = &full_trace;
  Simulator sim{config.logger};
  Network network{sim, config};

  Checkpoint ckpt;
  bool captured = false;
  std::size_t custody_at_capture = 0;
  RunBoundaryHooks hooks;
  for (double t = 60.0; t < 400.0; t += 10.0) {
    hooks.boundaries.push_back(Time::from_seconds(t));
  }
  hooks.on_boundary = [&](Time boundary) {
    if (captured) return true;
    std::size_t in_backoff = 0;
    std::size_t custody = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(network.node_count()); ++n) {
      const RelayAgent* relay = network.relay(n);
      EXPECT_NE(relay, nullptr);
      if (relay == nullptr) return false;
      in_backoff += relay->in_backoff_count();
      custody += relay->custody_depth();
    }
    if (in_backoff == 0) return true;  // keep scanning boundaries
    ckpt = make_checkpoint(network, config, boundary);
    captured = true;
    custody_at_capture = custody;
    return true;
  };
  const RunStats full_stats = network.run(hooks);

  ASSERT_TRUE(captured) << "no boundary ever saw a relay backoff in flight";
  ASSERT_GT(custody_at_capture, 0u);
  EXPECT_FALSE(ckpt.payload.empty());

  // Digest-verified replay resume, then bit-identical completion.
  HashTrace resumed_trace;
  ScenarioConfig base = lossy_arq_scenario(33);
  base.trace = &resumed_trace;
  const RunStats resumed_stats = resume_scenario(ckpt, base);
  EXPECT_EQ(resumed_trace.digest(), full_trace.digest());
  EXPECT_NE(full_trace.digest(), HashTrace{}.digest());
  EXPECT_EQ(resumed_stats.e2e_retransmissions, full_stats.e2e_retransmissions);
  EXPECT_EQ(resumed_stats.e2e_arrived_at_sink, full_stats.e2e_arrived_at_sink);
  EXPECT_EQ(resumed_stats.e2e_dead_letter_exhausted, full_stats.e2e_dead_letter_exhausted);
  EXPECT_EQ(resumed_stats.relay_queue_highwater, full_stats.relay_queue_highwater);
}

// --- the custody auditor invariants ------------------------------------

InvariantAuditor::Config custody_config() {
  InvariantAuditor::Config config{};
  config.slotted = true;
  config.omega = Duration::milliseconds(100);
  config.tau_max = Duration::milliseconds(900);
  config.slot_length = config.omega + config.tau_max;
  config.sync_tolerance = Duration::zero();
  config.custody_retry_bound = 3;
  return config;
}

TraceEvent relay_event(TraceEventKind kind, double t_s, NodeId node, NodeId origin,
                       std::uint64_t e2e_id, std::int64_t a, std::int64_t b = 0) {
  TraceEvent event{};
  event.kind = kind;
  event.at = Time::from_seconds(t_s);
  event.node = node;
  event.src = origin;
  event.seq = e2e_id;
  event.a = a;
  event.b = b;
  return event;
}

TEST(InvariantAuditorCustody, DuplicateSinkDeliveryFlagged) {
  InvariantAuditor auditor{custody_config()};
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 1.0, /*node=*/9, /*origin=*/2,
                             /*e2e_id=*/77, /*a=*/3));
  EXPECT_TRUE(auditor.violations().empty());
  // The same id at a different sink: a permitted ACK-loss fork.
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 2.0, 8, 2, 77, 3));
  EXPECT_TRUE(auditor.violations().empty());
  // The same sink absorbing the same id twice is the violation.
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 3.0, 9, 2, 77, 3));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kDuplicateSinkDelivery);
}

TEST(InvariantAuditorCustody, DuplicateCheckOffWithoutRetryBound) {
  InvariantAuditor::Config config = custody_config();
  config.custody_retry_bound = 0;  // ARQ off: MAC dedup resets make forks legal
  InvariantAuditor auditor{config};
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 1.0, 9, 2, 77, 3));
  auditor.record(relay_event(TraceEventKind::kRelayArrive, 2.0, 9, 2, 77, 3));
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditorCustody, RetryAboveBoundFlagged) {
  InvariantAuditor auditor{custody_config()};
  auditor.record(relay_event(TraceEventKind::kRelayRetry, 1.0, 4, 2, 51, /*retries=*/3,
                             /*wait_ns=*/5'000'000'000));
  EXPECT_TRUE(auditor.violations().empty()) << "at the bound is legal";
  auditor.record(relay_event(TraceEventKind::kRelayRetry, 2.0, 4, 2, 51, 4, 5'000'000'000));
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kRetryExceedsBound);
}

// --- faulted soak with the auditor in hard-fail mode -------------------

TEST(ReliabilitySoak, AuditsCleanUnderBurstLossOutagesAndStorms) {
  ScenarioConfig config = lossy_arq_scenario(55);
  config.sim_time = Duration::seconds(600);
  config.fault.outage_rate_per_hour = 30.0;
  config.fault.outage_mean_duration = Duration::seconds(45);
  config.fault.storm_rate_per_hour = 6.0;
  config.fault.storm_mean_duration = Duration::seconds(60);
  config.fault.storm_loss_prob = 0.8;

  InvariantAuditor::Config audit = auditor_config_for(config);
  audit.hard_fail = true;
  EXPECT_EQ(audit.custody_retry_bound, config.reliability.max_retries);
  InvariantAuditor auditor{audit};
  config.trace = &auditor;
  const RunStats stats = run_scenario(config);  // hard-fail: violations throw
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_GT(auditor.checks(), 0u);
  EXPECT_GT(stats.e2e_retransmissions, 0u) << "soak never exercised the ARQ";
  EXPECT_GT(stats.e2e_originated, 0u);
}

TEST(ReliabilitySoak, FailoverReroutesAroundOutagesCleanly) {
  // Static tree routing keeps naming the dead hop through an outage (DV
  // re-routes before the custody retry fires), so this is the scenario
  // that actually exercises next-hop failover rather than plain retry.
  ScenarioConfig config = lossy_arq_scenario(2);
  config.routing = RoutingKind::kTree;
  config.sim_time = Duration::seconds(600);
  config.fault.ge_p_bad = 0.0;  // outages alone drive the failovers
  config.fault.outage_rate_per_hour = 30.0;
  config.fault.outage_mean_duration = Duration::seconds(60);

  InvariantAuditor::Config audit = auditor_config_for(config);
  audit.hard_fail = true;
  InvariantAuditor auditor{audit};
  config.trace = &auditor;
  const RunStats stats = run_scenario(config);  // hard-fail: violations throw
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_GT(auditor.checks(), 0u);
  EXPECT_GT(stats.e2e_failovers, 0u) << "soak never exercised failover";
  EXPECT_GT(stats.e2e_arrived_at_sink, 0u);
}

}  // namespace
}  // namespace aquamac

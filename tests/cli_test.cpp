#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace aquamac {
namespace {

CliParser make_parser() {
  return CliParser{"tool",
                   {
                       {"mac", "EW-MAC", "protocol"},
                       {"nodes", "60", "node count"},
                       {"load", "0.5", "offered load"},
                       {"verbose", "false", "debug"},
                       {"trace", "", "trace path"},
                   }};
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"tool"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(Cli, DefaultsApply) {
  CliParser cli = make_parser();
  const auto argv = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get("mac"), "EW-MAC");
  EXPECT_EQ(cli.get_int("nodes"), 60);
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 0.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.has("trace")) << "empty default means 'not provided'";
}

TEST(Cli, EqualsAndSpaceSyntax) {
  CliParser cli = make_parser();
  const auto argv = argv_of({"--mac=S-FAMA", "--nodes", "120", "--load=0.8"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get("mac"), "S-FAMA");
  EXPECT_EQ(cli.get_int("nodes"), 120);
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 0.8);
}

TEST(Cli, BooleanSwitch) {
  CliParser cli = make_parser();
  const auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli = make_parser();
  const auto argv = argv_of({"--help"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.help_text().find("--mac"), std::string::npos);
  EXPECT_NE(cli.help_text().find("default: EW-MAC"), std::string::npos);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli = make_parser();
  const auto argv = argv_of({"--bogus=1"});
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()), std::invalid_argument);
}

TEST(Cli, MalformedNumbersThrow) {
  CliParser cli = make_parser();
  const auto argv = argv_of({"--nodes=sixty"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW((void)cli.get_int("nodes"), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double("nodes"), std::invalid_argument);
}

TEST(Cli, MalformedBoolThrows) {
  CliParser cli = make_parser();
  const auto argv = argv_of({"--verbose=maybe"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW((void)cli.get_bool("verbose"), std::invalid_argument);
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  const auto argv = argv_of({"scenario.json", "--nodes=10", "extra"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"scenario.json", "extra"}));
}

TEST(Cli, BoolAcceptsCommonSpellings) {
  for (const char* spelling : {"true", "1", "yes", "on"}) {
    CliParser cli = make_parser();
    const std::string arg = std::string("--verbose=") + spelling;
    const auto argv = argv_of({arg.c_str()});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.get_bool("verbose")) << spelling;
  }
  for (const char* spelling : {"false", "0", "no", "off"}) {
    CliParser cli = make_parser();
    const std::string arg = std::string("--verbose=") + spelling;
    const auto argv = argv_of({arg.c_str()});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(cli.get_bool("verbose")) << spelling;
  }
}

}  // namespace
}  // namespace aquamac

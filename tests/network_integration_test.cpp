// Full-stack integration: Network assembled from ScenarioConfig, all
// protocols, hello phase, traffic, mobility, both reception and
// propagation models.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace aquamac {
namespace {

class NetworkPerProtocol : public ::testing::TestWithParam<MacKind> {};

TEST_P(NetworkPerProtocol, DeliversTrafficEndToEnd) {
  ScenarioConfig config = small_test_scenario();
  config.mac = GetParam();
  const RunStats stats = run_scenario(config);

  EXPECT_GT(stats.packets_offered, 0u);
  EXPECT_GT(stats.packets_delivered, 0u) << to_string(GetParam());
  EXPECT_GT(stats.throughput_kbps, 0.0);
  EXPECT_GT(stats.total_energy_j, 0.0);
  EXPECT_LE(stats.delivery_ratio, 1.05) << "delivered cannot meaningfully exceed offered";
}

TEST_P(NetworkPerProtocol, ReproducibleFromSeed) {
  ScenarioConfig config = small_test_scenario();
  config.mac = GetParam();
  config.seed = 77;
  const RunStats a = run_scenario(config);
  const RunStats b = run_scenario(config);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.bits_delivered, b.bits_delivered);
  EXPECT_EQ(a.rx_collisions, b.rx_collisions);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
}

TEST_P(NetworkPerProtocol, DifferentSeedsDiverge) {
  ScenarioConfig config = small_test_scenario();
  config.mac = GetParam();
  config.seed = 1;
  const RunStats a = run_scenario(config);
  config.seed = 2;
  const RunStats b = run_scenario(config);
  // Deployments and arrival processes differ; energy (a continuous
  // accumulation over every transmission) is collision-proof evidence.
  EXPECT_TRUE(a.packets_offered != b.packets_offered ||
              a.total_energy_j != b.total_energy_j);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, NetworkPerProtocol,
                         ::testing::Values(MacKind::kEwMac, MacKind::kSFama, MacKind::kRopa,
                                           MacKind::kCsMac, MacKind::kCwMac,
                                           MacKind::kSlottedAloha),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Network, HelloPhasePopulatesNeighborTables) {
  Simulator sim;
  ScenarioConfig config = small_test_scenario();
  Network network{sim, config};
  network.run();
  std::size_t total_entries = 0;
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    total_entries += network.node(static_cast<NodeId>(i)).neighbors().size();
  }
  EXPECT_GT(total_entries, network.node_count())
      << "on average more than one neighbor learned per node";
}

TEST(Network, NeighborDelaysMatchGroundTruth) {
  Simulator sim;
  ScenarioConfig config = small_test_scenario();
  config.enable_mobility = false;
  Network network{sim, config};
  network.run();

  std::size_t checked = 0;
  for (NodeId i = 0; i < network.node_count(); ++i) {
    const auto& table = network.node(i).neighbors();
    for (const auto& [peer, entry] : table.entries()) {
      const auto truth = network.channel().path_between(
          network.node(i).modem().position(), network.node(peer).modem().position());
      EXPECT_NEAR(entry.delay.to_seconds(), truth.delay.to_seconds(), 1e-6)
          << i << " -> " << peer;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Network, TauMaxDerivedFromRangeAndSpeed) {
  Simulator sim;
  ScenarioConfig config = small_test_scenario();
  config.channel.comm_range_m = 900.0;
  config.sound_speed_mps = 1'500.0;
  Network network{sim, config};
  EXPECT_EQ(network.config().mac_config.tau_max, Duration::from_seconds(0.6));
}

TEST(Network, MobilityMovesNodes) {
  Simulator sim;
  ScenarioConfig config = small_test_scenario();
  config.enable_mobility = true;
  config.mobility.speed_mps = 2.0;  // exaggerated drift
  Network network{sim, config};
  std::vector<Vec3> before;
  for (NodeId i = 0; i < network.node_count(); ++i) {
    before.push_back(network.node(i).modem().position());
  }
  network.run();
  std::size_t moved = 0;
  for (NodeId i = 0; i < network.node_count(); ++i) {
    if (before[i].distance_to(network.node(i).modem().position()) > 1.0) ++moved;
  }
  EXPECT_GT(moved, network.node_count() / 4) << "~2/3 of nodes drift (random models)";
}

TEST(Network, SinrReceptionModeRuns) {
  ScenarioConfig config = small_test_scenario();
  config.reception = ReceptionKind::kSinrPer;
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.packets_delivered, 0u);
}

TEST(Network, BellhopLitePropagationRuns) {
  ScenarioConfig config = small_test_scenario();
  config.propagation = PropagationKind::kBellhopLite;
  const RunStats stats = run_scenario(config);
  EXPECT_GT(stats.packets_delivered, 0u);
}

TEST(Network, BatchModeReportsExecutionTime) {
  ScenarioConfig config = small_test_scenario();
  config.traffic.mode = TrafficMode::kBatch;
  config.traffic.batch_packets = 10;
  config.sim_time = Duration::seconds(400);
  const RunStats stats = run_scenario(config);
  EXPECT_EQ(stats.packets_offered, 10u);
  EXPECT_GT(stats.execution_time_s, 0.0);
  EXPECT_LT(stats.execution_time_s, 400.0);
}

TEST(Network, RejectsZeroNodes) {
  Simulator sim;
  ScenarioConfig config = small_test_scenario();
  config.node_count = 0;
  EXPECT_THROW((Network{sim, config}), std::invalid_argument);
}

TEST(Network, StatsAreMonotoneOverTime) {
  Simulator sim;
  ScenarioConfig config = small_test_scenario();
  Network network{sim, config};
  // Drive phases manually: hello + traffic already scheduled by run();
  // here we sample stats mid-run via run_until.
  network.run();  // to horizon
  const RunStats final_stats = network.stats();
  EXPECT_GE(final_stats.packets_offered, final_stats.packets_delivered);
}

}  // namespace
}  // namespace aquamac

#include <gtest/gtest.h>

#include "mac/ewmac/ew_mac.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(EwMac, FourWayHandshakeDeliversOnePacket) {
  TestBed bed;
  const NodeId s = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 500});
  bed.hello_and_settle();
  bed.mac(s).enqueue_packet(r, 2'048);
  bed.sim().run_until(Time::from_seconds(30.0));

  EXPECT_EQ(bed.counters(r).packets_delivered, 1u);
  EXPECT_EQ(bed.counters(s).handshake_successes, 1u);
  EXPECT_EQ(bed.counters(s).extra_attempts, 0u) << "no contention, no extra phase";
}

// The Fig. 4/5 scenario: j receives from contention winner k; loser i
// negotiates EXR/EXC inside period V and delivers EXDATA per Eq. (6),
// interfering with nothing.
class EwMacExtraReceiverCase : public ::testing::Test {
 protected:
  EwMacExtraReceiverCase() {
    j_ = bed_.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
    k_ = bed_.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});   // tau_jk = 0.9333 s
    i_ = bed_.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});    // tau_ij = 0.2 s
    // i and k are out of range of each other (1.7 km) by construction.
  }

  void run() {
    bed_.hello_and_settle();                                       // ends at t = 5 s, slot 4
    bed_.mac(k_).enqueue_packet(j_, 2'048);                        // k RTS at slot 5
    bed_.sim().at(Time::from_seconds(5.5), [&] {                   // i RTS at slot 6,
      bed_.mac(i_).enqueue_packet(j_, 2'048);                      // same slot as j's CTS
    });
    bed_.sim().run_until(Time::from_seconds(40.0));
  }

  TestBed bed_;
  NodeId j_{}, k_{}, i_{};
};

TEST_F(EwMacExtraReceiverCase, LoserDeliversViaExtraCommunication) {
  run();
  const auto& ic = bed_.counters(i_);
  const auto& jc = bed_.counters(j_);
  const auto& kc = bed_.counters(k_);

  EXPECT_EQ(kc.handshake_successes, 1u) << "winner's negotiated exchange completes";
  EXPECT_EQ(ic.contention_losses, 1u);
  EXPECT_EQ(ic.extra_attempts, 1u);
  EXPECT_EQ(ic.extra_successes, 1u) << "loser delivered through EXR/EXC/EXDATA/EXACK";
  EXPECT_EQ(ic.frames_sent[frame_type_index(FrameType::kExr)], 1u);
  EXPECT_EQ(ic.frames_sent[frame_type_index(FrameType::kExData)], 1u);
  EXPECT_EQ(ic.frames_sent[frame_type_index(FrameType::kData)], 0u)
      << "the packet went out as EXDATA, not via a second negotiation";
  EXPECT_EQ(jc.frames_sent[frame_type_index(FrameType::kExc)], 1u);
  EXPECT_EQ(jc.frames_sent[frame_type_index(FrameType::kExAck)], 1u);
  EXPECT_EQ(jc.packets_delivered, 2u) << "negotiated data + extra data";
}

TEST_F(EwMacExtraReceiverCase, ExtraPhaseInterferesWithNothing) {
  run();
  std::uint64_t collisions = 0;
  for (NodeId n : {i_, j_, k_}) collisions += bed_.counters(n).rx_collisions;
  EXPECT_EQ(collisions, 0u) << "Eq.-1 collision-freedom of the whole episode";
}

TEST_F(EwMacExtraReceiverCase, ExtraPacketsAreNotSlotAligned) {
  std::vector<Time> extra_tx;
  bed_.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.extra()) extra_tx.push_back(audit.tx_window.begin);
  });
  run();
  ASSERT_EQ(extra_tx.size(), 4u) << "EXR, EXC, EXDATA, EXACK";
  const Duration slot = testbed::default_slot();
  int off_boundary = 0;
  for (const Time t : extra_tx) {
    if ((t - Time::zero()).count_ns() % slot.count_ns() != 0) ++off_boundary;
  }
  // §4.1: "EXR, EXC, EXData, and EXAck packets are usually not" sent at
  // slot starts. The EXR launches exactly at a boundary (beta = 0); the
  // rest are offset by propagation-derived amounts.
  EXPECT_GE(off_boundary, 3);
}

TEST_F(EwMacExtraReceiverCase, Eq6TimingExact) {
  Time ack_tx{};
  Time exdata_tx{};
  bed_.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kAck) ack_tx = audit.tx_window.begin;
    if (audit.frame.type == FrameType::kExData) exdata_tx = audit.tx_window.begin;
  });
  run();
  ASSERT_NE(ack_tx, Time{});
  ASSERT_NE(exdata_tx, Time{});
  // Eq. (6): t(EXData) = ts(Ack)·|ts| + omega - tau_ij, i.e. the EXDATA
  // leading edge reaches j exactly as j finishes radiating the Ack.
  const Duration omega = testbed::default_omega();
  const Duration tau_ij = Duration::from_seconds(300.0 / 1'500.0);
  EXPECT_EQ(exdata_tx.count_ns(), (ack_tx + omega - tau_ij).count_ns());
}

// The period-III case: the loser's target j is itself a *sender* (i
// overheard RTS(j,k)); EXDATA must arrive after j finishes receiving its
// Ack.
TEST(EwMacExtraSenderCase, LoserDeliversViaExtraCommunication) {
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});
  bed.hello_and_settle();
  // Both j and i transmit an RTS in slot 5: j to k, i to j.
  bed.mac(j).enqueue_packet(k, 2'048);
  bed.mac(i).enqueue_packet(j, 2'048);
  bed.sim().run_until(Time::from_seconds(40.0));

  EXPECT_EQ(bed.counters(j).handshake_successes, 1u);
  EXPECT_EQ(bed.counters(i).contention_losses, 1u);
  EXPECT_EQ(bed.counters(i).extra_successes, 1u);
  EXPECT_EQ(bed.counters(j).packets_delivered, 1u) << "j received i's extra data";
  EXPECT_EQ(bed.counters(k).packets_delivered, 1u) << "k received j's negotiated data";

  std::uint64_t collisions = 0;
  for (NodeId n : {i, j, k}) collisions += bed.counters(n).rx_collisions;
  EXPECT_EQ(collisions, 0u);
}

TEST(EwMac, ExtraInfeasibleFallsBackToBackoff) {
  // Loser is *farther* from j than the winner: tau_ij + omega > tau_jk,
  // so period V cannot host the EXR and i must retry normally.
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{300, 0, 1'000});     // tau_jk = 0.2 s
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{-1'400, 0, 1'000});  // tau_ij = 0.93 s
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(5.5), [&] { bed.mac(i).enqueue_packet(j, 2'048); });
  bed.sim().run_until(Time::from_seconds(120.0));

  const auto& ic = bed.counters(i);
  EXPECT_GE(ic.contention_losses, 1u);
  EXPECT_EQ(ic.extra_attempts, 0u) << "infeasible extra must not be attempted";
  EXPECT_EQ(ic.packets_sent_ok, 1u) << "normal retry eventually succeeds";
  EXPECT_EQ(bed.counters(j).packets_delivered, 2u);
}

TEST(EwMac, AblationDisableExtraUsesPureBackoff) {
  TestBed bed;
  MacConfig no_extra{};
  no_extra.enable_extra = false;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000}, no_extra);
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000}, no_extra);
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000}, no_extra);
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  bed.sim().at(Time::from_seconds(5.5), [&] { bed.mac(i).enqueue_packet(j, 2'048); });
  bed.sim().run_until(Time::from_seconds(120.0));

  EXPECT_GE(bed.counters(i).contention_losses, 1u);
  EXPECT_EQ(bed.counters(i).extra_attempts, 0u);
  EXPECT_EQ(bed.counters(j).packets_delivered, 2u) << "both still delivered, just slower";
}

TEST(EwMac, WaitTimePriorityWinsContention) {
  // rp grows with wait time (§3.1): a sender that waited ~5 slots beats a
  // fresh one deterministically (gap > 1 slot dominates the random term).
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  const NodeId i = bed.add_node(MacKind::kEwMac, Vec3{400, 0, 0});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{0, 700, 0});
  const NodeId l = bed.add_node(MacKind::kEwMac, Vec3{0, 900, 0});
  bed.add_node(MacKind::kEwMac, Vec3{0, 2'390, 0});  // m: only l's peer

  NodeId first_cts_dst = kNoNode;
  bed.channel().set_audit([&](const TransmissionAudit& audit) {
    if (audit.frame.type == FrameType::kCts && audit.sender == j &&
        first_cts_dst == kNoNode) {
      first_cts_dst = audit.frame.dst;
    }
  });

  bed.hello_and_settle();
  // l's exchange with m forces i, k and j quiet until slot 10. i's packet
  // arrives while i is already quiet (it heard l's RTS at ~5.68 s), so
  // its first attempt is deferred to exactly slot 10 — where it meets
  // k's fresh packet in the same contention round.
  bed.mac(l).enqueue_packet(4, 2'048);
  bed.sim().at(Time::from_seconds(5.9), [&] { bed.mac(i).enqueue_packet(j, 2'048); });
  bed.sim().at(Time::from_seconds(9.5), [&] { bed.mac(k).enqueue_packet(j, 2'048); });
  bed.sim().run_until(Time::from_seconds(120.0));

  EXPECT_EQ(first_cts_dst, i) << "the longer-waiting sender must win";
  EXPECT_EQ(bed.counters(j).packets_delivered, 2u);
}

TEST(EwMac, ScheduleBookPopulatedByOverhearing) {
  TestBed bed;
  const NodeId j = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 1'000});
  const NodeId k = bed.add_node(MacKind::kEwMac, Vec3{1'400, 0, 1'000});
  const NodeId o = bed.add_node(MacKind::kEwMac, Vec3{-300, 0, 1'000});  // pure overhearer
  bed.hello_and_settle();
  bed.mac(k).enqueue_packet(j, 2'048);
  // Run until just after o heard j's CTS (slot 6 + 0.2 s).
  bed.sim().run_until(Time::from_seconds(7.5));
  const auto& book = dynamic_cast<const EwMac&>(bed.mac(o)).schedule_book();
  EXPECT_GE(book.size(), 4u) << "CTS overhear predicts data + ack windows for both parties";
}

TEST(EwMac, MultiplePacketsDrainUnderContention) {
  TestBed bed;
  const NodeId r = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 700});
  const NodeId b = bed.add_node(MacKind::kEwMac, Vec3{500, 0, 700});
  bed.hello_and_settle();
  for (int p = 0; p < 3; ++p) {
    bed.mac(a).enqueue_packet(r, 2'048);
    bed.mac(b).enqueue_packet(r, 2'048);
  }
  bed.sim().run_until(Time::from_seconds(300.0));
  EXPECT_EQ(bed.counters(r).packets_delivered, 6u);
  EXPECT_EQ(bed.counters(a).packets_dropped + bed.counters(b).packets_dropped, 0u);
}

}  // namespace
}  // namespace aquamac

// The parallel trace contract: a shared TraceSink handed to
// run_replicated / run_sweep receives the per-run traces merged by
// (sim time, run index, intra-run order) — the identical stream for
// every jobs value, so tracing no longer forces the harness serial.

#include "stats/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "mac/mac_factory.hpp"

namespace aquamac {
namespace {

ScenarioConfig tiny_scenario() {
  ScenarioConfig config = small_test_scenario();
  config.node_count = 8;
  config.sim_time = Duration::seconds(20);
  return config;
}

TraceEvent event_at(double t_s, std::uint64_t seq) {
  TraceEvent event{};
  event.kind = TraceEventKind::kTxStart;
  event.at = Time::from_seconds(t_s);
  event.seq = seq;
  return event;
}

TEST(TraceMerge, OrdersByTimeThenRunThenIntraRunOrder) {
  std::vector<std::unique_ptr<MemoryTrace>> runs;
  const TraceSinkFactory factory = memory_trace_factory();
  runs.push_back(factory(0));
  runs.push_back(factory(1));
  // Run 0 records two events at t=5 (in order), run 1 an earlier event
  // and another t=5 event. Ties break by run index, then record order.
  runs[0]->record(event_at(5.0, 10));
  runs[0]->record(event_at(5.0, 11));
  runs[1]->record(event_at(3.0, 20));
  runs[1]->record(event_at(5.0, 21));

  MemoryTrace merged;
  merge_traces(runs, merged);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.events()[0].seq, 20u);
  EXPECT_EQ(merged.events()[1].seq, 10u);
  EXPECT_EQ(merged.events()[2].seq, 11u);
  EXPECT_EQ(merged.events()[3].seq, 21u);
  EXPECT_TRUE(merged.is_time_ordered());
}

TEST(TraceMerge, SkipsNullBuffers) {
  std::vector<std::unique_ptr<MemoryTrace>> runs;
  runs.push_back(nullptr);
  runs.push_back(std::make_unique<MemoryTrace>());
  runs[1]->record(event_at(1.0, 1));
  MemoryTrace merged;
  merge_traces(runs, merged);
  EXPECT_EQ(merged.size(), 1u);
}

TEST(TraceMerge, ReplicatedTraceIsBitIdenticalAcrossJobCounts) {
  ScenarioConfig base = tiny_scenario();

  HashTrace serial_hash;
  base.trace = &serial_hash;
  (void)run_replicated_parallel(base, 4, 1);

  HashTrace parallel_hash;
  base.trace = &parallel_hash;
  (void)run_replicated_parallel(base, 4, 4);

  EXPECT_NE(serial_hash.digest(), 0u);
  EXPECT_EQ(serial_hash.digest(), parallel_hash.digest());
}

TEST(TraceMerge, SweepTraceIsBitIdenticalAcrossJobCounts) {
  const MacKind protocols[] = {MacKind::kEwMac, MacKind::kSFama};
  const double xs[] = {0.2, 0.5};
  const ConfigSetter setter = [](ScenarioConfig& c, double x) {
    c.traffic.offered_load_kbps = x;
  };

  ScenarioConfig base = tiny_scenario();
  HashTrace serial_hash;
  base.trace = &serial_hash;
  base.jobs = 1;
  const SweepResult serial = run_sweep(base, protocols, xs, setter, 2);

  HashTrace parallel_hash;
  base.trace = &parallel_hash;
  base.jobs = 4;
  const SweepResult parallel = run_sweep(base, protocols, xs, setter, 2);

  // The sweep itself must really have fanned out (the old behavior
  // forced jobs to 1 whenever a trace sink was attached).
  EXPECT_EQ(serial.jobs_used, 1u);
  EXPECT_EQ(parallel.jobs_used, 4u);
  EXPECT_NE(serial_hash.digest(), 0u);
  EXPECT_EQ(serial_hash.digest(), parallel_hash.digest());
}

TEST(TraceMerge, MergedParallelStreamIsTimeOrderedAndCarriesMacEvents) {
  ScenarioConfig base = tiny_scenario();
  MemoryTrace merged;
  base.trace = &merged;
  (void)run_replicated_parallel(base, 3, 3);

  ASSERT_GT(merged.size(), 0u);
  EXPECT_TRUE(merged.is_time_ordered());
  EXPECT_GT(merged.count(TraceEventKind::kTxStart), 0u);
  EXPECT_GT(merged.count(TraceEventKind::kMacState), 0u);
  EXPECT_GT(merged.count(TraceEventKind::kNeighborUpdate), 0u);
}

}  // namespace
}  // namespace aquamac

// Protocol hardening under injected faults: neighbor aging, dead-neighbor
// detection and reinstatement, outage rejoin re-learning, and the
// guard-slack regression that drift below the measured clock uncertainty
// never trips the extra-overlap theorem (hard-fail auditor, fixed seeds).

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "stats/invariant_auditor.hpp"
#include "stats/trace.hpp"
#include "testbed.hpp"

namespace aquamac {
namespace {

using testbed::TestBed;

TEST(FaultRecovery, AgingEvictsStaleNeighbor) {
  MacConfig config{};
  config.neighbor_max_age = Duration::seconds(10);
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0}, config);
  const NodeId b = bed.add_node(MacKind::kEwMac, Vec3{600, 0, 0}, config);
  bed.hello_and_settle();
  ASSERT_TRUE(bed.mac(a).neighbor_table().knows(b));

  // Quiet network: nothing refreshes the entry, so an aging sweep past
  // the max age must drop it (and only then).
  bed.sim().run_until(Time::from_seconds(8.0));
  bed.mac(a).age_neighbors();
  EXPECT_TRUE(bed.mac(a).neighbor_table().knows(b)) << "entry still fresh enough";

  bed.sim().run_until(Time::from_seconds(30.0));
  bed.mac(a).age_neighbors();
  EXPECT_FALSE(bed.mac(a).neighbor_table().knows(b));
}

TEST(FaultRecovery, AgingDisabledByDefault) {
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  const NodeId b = bed.add_node(MacKind::kEwMac, Vec3{600, 0, 0});
  bed.hello_and_settle();
  bed.sim().run_until(Time::from_seconds(500.0));
  bed.mac(a).age_neighbors();  // no-op with the knob at zero
  EXPECT_TRUE(bed.mac(a).neighbor_table().knows(b));
}

TEST(FaultRecovery, DeadNeighborDetectionAndProbe) {
  MacConfig config{};
  config.dead_neighbor_threshold = 2;
  // Longer than the observation window below, so the optimistic probe
  // cannot clear the verdict before the test looks at it.
  config.dead_probe_interval = Duration::seconds(500);
  config.max_retries = 2;
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0}, config);
  const NodeId b = bed.add_node(MacKind::kEwMac, Vec3{600, 0, 0}, config);
  bed.hello_and_settle();
  EXPECT_FALSE(bed.mac(a).neighbor_dead(b));

  // Silence the peer and burn handshakes at it: each exhausted retry
  // budget is one consecutive silent failure.
  bed.node(b).modem().set_operational(false);
  bed.mac(a).enqueue_packet(b, 512);
  bed.sim().run_until(Time::from_seconds(120.0));
  bed.mac(a).enqueue_packet(b, 512);
  bed.sim().run_until(Time::from_seconds(240.0));
  ASSERT_TRUE(bed.mac(a).neighbor_dead(b));

  // While dead, traffic toward the peer fast-drops instead of burning air.
  const std::uint64_t dropped_before = bed.counters(a).packets_dropped;
  bed.mac(a).enqueue_packet(b, 512);
  EXPECT_EQ(bed.counters(a).packets_dropped, dropped_before + 1);
  EXPECT_EQ(bed.mac(a).queue_depth(), 0u);

  // The reinstatement probe clears the verdict and re-offers a Hello.
  bed.node(b).modem().set_operational(true);
  bed.sim().run_until(Time::from_seconds(900.0));
  EXPECT_FALSE(bed.mac(a).neighbor_dead(b));
}

TEST(FaultRecovery, ReceptionIsProofOfLife) {
  MacConfig config{};
  config.dead_neighbor_threshold = 2;
  config.max_retries = 2;
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0}, config);
  const NodeId b = bed.add_node(MacKind::kEwMac, Vec3{600, 0, 0}, config);
  bed.hello_and_settle();

  // One silent handshake (below the threshold)...
  bed.node(b).modem().set_operational(false);
  bed.mac(a).enqueue_packet(b, 512);
  bed.sim().run_until(Time::from_seconds(120.0));
  ASSERT_FALSE(bed.mac(a).neighbor_dead(b));

  // ...then the peer speaks, which must reset the consecutive count: the
  // next single silence may not tip the verdict to dead.
  bed.node(b).modem().set_operational(true);
  bed.sim().at(bed.sim().now() + Duration::seconds(1),
               [&] { bed.mac(b).broadcast_hello(); });
  bed.sim().run_until(bed.sim().now() + Duration::seconds(10));

  bed.node(b).modem().set_operational(false);
  bed.mac(a).enqueue_packet(b, 512);
  bed.sim().run_until(Time::from_seconds(300.0));
  EXPECT_FALSE(bed.mac(a).neighbor_dead(b));
}

TEST(FaultRecovery, ResetMacStateForgetsEverything) {
  TestBed bed;
  const NodeId a = bed.add_node(MacKind::kEwMac, Vec3{0, 0, 0});
  const NodeId b = bed.add_node(MacKind::kEwMac, Vec3{600, 0, 0});
  bed.hello_and_settle();
  ASSERT_TRUE(bed.mac(a).neighbor_table().knows(b));
  bed.mac(a).reset_mac_state();
  EXPECT_FALSE(bed.mac(a).neighbor_table().knows(b));
  EXPECT_EQ(bed.mac(a).neighbor_table().size(), 0u);

  // The wiped node re-learns from the next Hello.
  bed.sim().at(bed.sim().now() + Duration::seconds(1),
               [&] { bed.mac(b).broadcast_hello(); });
  bed.sim().run_until(bed.sim().now() + Duration::seconds(10));
  EXPECT_TRUE(bed.mac(a).neighbor_table().knows(b));
}

TEST(FaultRecovery, RejoinRelearnsBeforeExtraNegotiation) {
  // A node returning from an outage has forgotten every measured delay;
  // it must not schedule extra traffic (Eq. 6 needs delays) until at
  // least one HELLO/piggyback reception refreshed its table. The trace
  // makes this checkable: after kFaultNodeUp at node n, any
  // kExtraScheduled at n must be preceded by a kNeighborUpdate at n.
  ScenarioConfig config = small_test_scenario();
  config.mac = MacKind::kEwMac;
  config.seed = 3;
  config.sim_time = Duration::seconds(120);
  config.traffic.offered_load_kbps = 0.5;
  config.fault.outage_rate_per_hour = 150.0;
  config.fault.outage_mean_duration = Duration::seconds(8);

  MemoryTrace trace;
  config.trace = &trace;
  (void)run_scenario(config);

  ASSERT_GT(trace.count(TraceEventKind::kFaultNodeUp), 0u) << "no rejoins realized";
  ASSERT_GT(trace.count(TraceEventKind::kExtraScheduled), 0u) << "no extras: vacuous";

  std::unordered_map<NodeId, bool> has_delays;  // absent = never wiped
  std::size_t rejoin_extras_checked = 0;
  for (const TraceEvent& event : trace.events()) {
    switch (event.kind) {
      case TraceEventKind::kFaultNodeUp:
        has_delays[event.node] = false;
        break;
      case TraceEventKind::kNeighborUpdate: {
        const auto it = has_delays.find(event.node);
        if (it != has_delays.end()) it->second = true;
        break;
      }
      case TraceEventKind::kExtraScheduled: {
        const auto it = has_delays.find(event.node);
        if (it != has_delays.end()) {
          rejoin_extras_checked += 1;
          EXPECT_TRUE(it->second)
              << "node " << event.node << " scheduled an extra at "
              << event.at.to_string() << " before re-learning any delay";
        }
        break;
      }
      default: break;
    }
  }
  // The assertion above is only meaningful if some rejoined node actually
  // re-entered the extra phase during the run.
  EXPECT_GT(rejoin_extras_checked, 0u);
}

TEST(FaultSoak, EwMacDriftBelowGuardSlackKeepsExtraOverlapClean) {
  // The hardening contract: with guard_slack sized to the realized clock
  // uncertainty, drift cannot trip the extra-overlap theorem. Hard-fail
  // auditor, fixed seeds — any violation aborts the run.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ScenarioConfig config = small_test_scenario();
    config.mac = MacKind::kEwMac;
    config.seed = seed;
    config.fault.drift_ppm_stddev = 2'000.0;
    config.fault.drift_jitter_stddev_s = 0.0005;
    config.mac_config.guard_slack = realized_clock_uncertainty(config);

    InvariantAuditor::Config audit = auditor_config_for(config);
    audit.hard_fail = true;
    InvariantAuditor auditor{audit};
    config.trace = &auditor;
    ASSERT_NO_THROW((void)run_scenario(config)) << "seed " << seed;
    EXPECT_TRUE(auditor.violations().empty()) << "seed " << seed;
    EXPECT_GT(auditor.checks(), 0u) << "seed " << seed;
  }
}

TEST(FaultSoak, AllProtocolsSurviveDriftOutagesAndBursts) {
  // Full fault cocktail, all three protocols, hard-fail auditor scoped to
  // healthy intervals: the run must complete with zero violations while
  // still performing a nontrivial number of checks.
  for (const MacKind mac : {MacKind::kEwMac, MacKind::kSFama, MacKind::kMacaU}) {
    ScenarioConfig config = small_test_scenario();
    config.mac = mac;
    config.seed = 7;
    config.fault.drift_ppm_stddev = 1'000.0;
    config.fault.outage_rate_per_hour = 90.0;
    config.fault.outage_mean_duration = Duration::seconds(6);
    config.fault.ge_p_bad = 0.05;
    config.fault.ge_p_good = 0.3;
    config.fault.ge_loss_bad = 0.9;
    config.mac_config.guard_slack = realized_clock_uncertainty(config);
    config.mac_config.neighbor_max_age = Duration::seconds(45);
    config.mac_config.dead_neighbor_threshold = 4;

    InvariantAuditor::Config audit = auditor_config_for(config);
    audit.hard_fail = true;
    InvariantAuditor auditor{audit};
    config.trace = &auditor;
    RunStats stats{};
    ASSERT_NO_THROW(stats = run_scenario(config)) << to_string(mac);
    EXPECT_TRUE(auditor.violations().empty()) << to_string(mac);
    EXPECT_GT(auditor.checks(), 0u) << to_string(mac);
    EXPECT_GT(stats.packets_delivered, 0u)
        << to_string(mac) << ": the faulted network should still deliver";
  }
}

// --- routing recovery: cut-vertex relay outage (docs/routing.md) -------

/// A five-node vertical chain: one node per 1 km layer in a 50 m-wide
/// column, so with the 1.5 km comm range each node reaches exactly its
/// depth neighbors. Node 0 (shallowest) is the sink; every mid-chain
/// relay is a cut vertex for everything below it.
ScenarioConfig chain_dv_scenario(std::uint64_t seed) {
  ScenarioConfig config = small_test_scenario();
  config.seed = seed;
  config.node_count = 5;
  config.deployment.kind = DeploymentKind::kLayeredColumn;
  config.deployment.width_m = 50.0;
  config.deployment.length_m = 50.0;
  config.deployment.depth_m = 5'000.0;
  config.deployment.layer_spacing_m = 1'000.0;
  config.deployment.jitter_m = 20.0;
  config.enable_mobility = false;
  config.multi_hop = true;
  config.routing = RoutingKind::kDv;
  config.sim_time = Duration::seconds(400);
  config.traffic.offered_load_kbps = 0.5;
  // Threshold 3: low enough that the outage is declared quickly, high
  // enough that ordinary collision streaks on the busy chain don't cause
  // spurious dead declarations (which would bleed dropped_no_route after
  // re-convergence and mask the recovery signal this test asserts on).
  config.mac_config.dead_neighbor_threshold = 3;
  config.mac_config.max_retries = 2;
  config.fault.outage_rate_per_hour = 10.0;
  config.fault.outage_mean_duration = Duration::seconds(60);
  return config;
}

TEST(FaultRecovery, DvReconvergesAfterCutVertexOutage) {
  // Scan seeds for a clean experiment: exactly one outage, hitting a
  // mid-chain relay (never the sink), starting after DV has converged and
  // ending with enough run left to observe recovery. The plan is realized
  // at Network construction, so the scan never runs a simulation.
  ScenarioConfig config;
  TimeInterval outage{};
  NodeId cut_vertex = kNoNode;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    config = chain_dv_scenario(seed);
    Simulator probe_sim{config.logger};
    const Network probe{probe_sim, config};
    ASSERT_NE(probe.fault_plan(), nullptr);
    std::vector<TimeInterval> all;
    NodeId owner = kNoNode;
    for (NodeId id = 0; id < 5; ++id) {
      for (const TimeInterval& iv : probe.fault_plan()->down_intervals(id)) {
        if (iv.begin >= probe.horizon()) continue;
        all.push_back(iv);
        owner = id;
      }
    }
    if (all.size() != 1 || owner == 0 || owner == 4) continue;  // relay outages only
    const Time settle = probe.traffic_start() + Duration::seconds(80);
    if (all[0].begin < settle) continue;
    if (all[0].end + Duration::seconds(150) > probe.horizon()) continue;
    outage = all[0];
    cut_vertex = owner;
    found = true;
  }
  ASSERT_TRUE(found) << "no seed in [1, 40] realizes a clean cut-vertex outage";

  Simulator sim{config.logger};
  Network network{sim, config};

  // Sample the relay counters just before the outage and again after the
  // rejoin plus re-convergence time, via non-perturbing boundary hooks.
  struct Sample {
    std::uint64_t arrived{0};
    std::uint64_t no_route{0};
    std::uint64_t dropped_mac{0};
    bool deep_routed{false};
  };
  const Time pre = outage.begin - Duration::seconds(5);
  const Time post = outage.end + Duration::seconds(90);
  std::vector<Sample> samples;
  RunBoundaryHooks hooks;
  hooks.boundaries = {pre, post};
  hooks.on_boundary = [&](Time) {
    const RunStats now = network.stats();
    Sample s;
    s.arrived = now.e2e_arrived_at_sink;
    s.no_route = now.e2e_dropped_no_route;
    s.dropped_mac = now.e2e_dropped_mac;
    const DvRouter* deep = network.dv_router(4);
    s.deep_routed = deep != nullptr && deep->best() != nullptr;
    samples.push_back(s);
    return true;
  };
  const RunStats final_stats = network.run(hooks);
  ASSERT_EQ(samples.size(), 2u);

  // Before the outage the chain is converged and delivering.
  EXPECT_GT(samples[0].arrived, 0u) << "chain never delivered before the outage";
  EXPECT_TRUE(samples[0].deep_routed) << "deepest node had no route pre-outage";

  // The outage was actually felt at the routing layer: traffic below the
  // cut vertex died on dead-neighbor fast-drops or no-route drops.
  const std::uint64_t outage_drops =
      (samples[1].no_route - samples[0].no_route) +
      (samples[1].dropped_mac - samples[0].dropped_mac);
  EXPECT_GT(outage_drops, 0u) << "cut vertex " << cut_vertex << " outage left no mark";

  // Recovery: routes re-converged after the rejoin...
  EXPECT_TRUE(samples[1].deep_routed)
      << "deepest node still routeless " << (post - outage.end).to_seconds()
      << " s after the rejoin";
  // ...the no-route bleed stopped...
  EXPECT_EQ(final_stats.e2e_dropped_no_route, samples[1].no_route)
      << "dropped_no_route still growing after re-convergence";
  // ...and end-to-end delivery resumed.
  EXPECT_GT(final_stats.e2e_arrived_at_sink, samples[1].arrived)
      << "no deliveries after recovery";
}

TEST(FaultSoak, FaultEventsAppearInTrace) {
  ScenarioConfig config = small_test_scenario();
  config.sim_time = Duration::seconds(60);
  config.fault.outage_rate_per_hour = 200.0;
  config.fault.outage_mean_duration = Duration::seconds(5);
  config.fault.drift_jitter_stddev_s = 0.001;
  config.fault.ge_p_bad = 0.1;
  config.fault.storm_rate_per_hour = 60.0;

  MemoryTrace trace;
  config.trace = &trace;
  (void)run_scenario(config);

  EXPECT_GT(trace.count(TraceEventKind::kFaultNodeDown), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kFaultClockStep), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kFaultBurstBegin), 0u);
  EXPECT_TRUE(trace.is_time_ordered());
}

}  // namespace
}  // namespace aquamac

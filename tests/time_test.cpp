#include "util/time.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace aquamac {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(Duration::milliseconds(1'000), Duration::seconds(1));
  EXPECT_EQ(Duration::microseconds(1'000'000), Duration::seconds(1));
  EXPECT_EQ(Duration::nanoseconds(5), Duration::microseconds(0) + Duration::nanoseconds(5));
}

TEST(Duration, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1.0).count_ns(), 1'000'000'000);
  EXPECT_EQ(Duration::from_seconds(0.5e-9).count_ns(), 1);   // rounds up
  EXPECT_EQ(Duration::from_seconds(0.4e-9).count_ns(), 0);   // rounds down
  EXPECT_EQ(Duration::from_seconds(-1.5).count_ns(), -1'500'000'000);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::seconds(2);
  const Duration b = Duration::milliseconds(500);
  EXPECT_EQ((a + b).count_ns(), 2'500'000'000);
  EXPECT_EQ((a - b).count_ns(), 1'500'000'000);
  EXPECT_EQ((b * 4), a);
  EXPECT_EQ((4 * b), a);
  EXPECT_EQ(-(a - b), b - a);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::milliseconds(1), Duration::milliseconds(2));
  EXPECT_GE(Duration::seconds(1), Duration::milliseconds(1'000));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((Duration::zero() - Duration::nanoseconds(1)).is_negative());
}

TEST(Duration, DivideFloorAndCeil) {
  const Duration slot = Duration::milliseconds(10);
  EXPECT_EQ(Duration::milliseconds(25).divide_floor(slot), 2);
  EXPECT_EQ(Duration::milliseconds(25).divide_ceil(slot), 3);
  EXPECT_EQ(Duration::milliseconds(30).divide_floor(slot), 3);
  EXPECT_EQ(Duration::milliseconds(30).divide_ceil(slot), 3);
  EXPECT_EQ(Duration::zero().divide_ceil(slot), 0);
  // Negative numerators floor/ceil correctly (slot arithmetic before
  // time zero in tests).
  EXPECT_EQ(Duration::milliseconds(-25).divide_floor(slot), -3);
  EXPECT_EQ(Duration::milliseconds(-25).divide_ceil(slot), -2);
}

TEST(Duration, DivideFloorCeilProperties) {
  // Exhaustive sweep over several divisors and numerators straddling
  // zero. For every (x, slot) the defining bracket inequalities must
  // hold, ceil must be floor's mirror (the Eq.-5 implementation relies
  // on divide_ceil(x) == -divide_floor(-x)), and the two must agree
  // exactly on whole multiples and differ by one everywhere else.
  const std::int64_t divisors[] = {1, 3, 7, 1'000, 999'983};
  for (const std::int64_t slot_ns : divisors) {
    const Duration slot = Duration::nanoseconds(slot_ns);
    const std::int64_t step = std::max<std::int64_t>(std::int64_t{1}, slot_ns / 7);
    for (std::int64_t n = -3 * slot_ns - 2; n <= 3 * slot_ns + 2; n += step) {
      const Duration x = Duration::nanoseconds(n);
      const std::int64_t f = x.divide_floor(slot);
      const std::int64_t c = x.divide_ceil(slot);
      ASSERT_LE(slot * f, x) << n << " / " << slot_ns;
      ASSERT_GT(slot * (f + 1), x) << n << " / " << slot_ns;
      ASSERT_GE(slot * c, x) << n << " / " << slot_ns;
      ASSERT_LT(slot * (c - 1), x) << n << " / " << slot_ns;
      ASSERT_EQ(c, -((-x).divide_floor(slot))) << n << " / " << slot_ns;
      ASSERT_EQ(f, -((-x).divide_ceil(slot))) << n << " / " << slot_ns;
      if (n % slot_ns == 0) {
        ASSERT_EQ(f, c) << "exact multiple: " << n << " / " << slot_ns;
      } else {
        ASSERT_EQ(c, f + 1) << n << " / " << slot_ns;
      }
    }
  }
}

TEST(Duration, Eq5SlotCountExample) {
  // Paper Eq. (5) worked example at Table 2 defaults: a 2048-bit data
  // packet at 12 kbps (170.67 ms) plus a 1 s pair delay spans
  // ceil(1.17067 / 1.00533) = 2 slots.
  const Duration omega = Duration::from_seconds(64.0 / 12'000.0);
  const Duration tau_max = Duration::seconds(1);
  const Duration slot = omega + tau_max;
  const Duration data = Duration::from_seconds(2'048.0 / 12'000.0);
  EXPECT_EQ((data + tau_max).divide_ceil(slot), 2);
}

TEST(Time, ArithmeticAndOrdering) {
  const Time t0 = Time::zero();
  const Time t1 = t0 + Duration::seconds(3);
  EXPECT_EQ((t1 - t0), Duration::seconds(3));
  EXPECT_EQ(t1 - Duration::seconds(3), t0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(Time::from_seconds(1.5).count_ns(), 1'500'000'000);
}

TEST(TimeInterval, OverlapSemantics) {
  const TimeInterval a{Time::from_seconds(1.0), Time::from_seconds(2.0)};
  const TimeInterval b{Time::from_seconds(2.0), Time::from_seconds(3.0)};
  const TimeInterval c{Time::from_seconds(1.5), Time::from_seconds(2.5)};
  EXPECT_FALSE(a.overlaps(b)) << "half-open intervals sharing an endpoint do not overlap";
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(a)) << "overlap is symmetric";
  EXPECT_TRUE(a.contains(Time::from_seconds(1.0)));
  EXPECT_FALSE(a.contains(Time::from_seconds(2.0)));
  EXPECT_EQ(a.length(), Duration::seconds(1));
}

TEST(TimeInterval, ZeroLengthNeverOverlaps) {
  const TimeInterval empty{Time::from_seconds(1.0), Time::from_seconds(1.0)};
  const TimeInterval full{Time::zero(), Time::from_seconds(10.0)};
  EXPECT_FALSE(empty.overlaps(full));
  EXPECT_FALSE(full.overlaps(empty));
}

}  // namespace
}  // namespace aquamac

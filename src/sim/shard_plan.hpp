#pragma once
// Spatial shard plan for the conservative-PDES engine.
//
// Nodes are binned into cubic grid cells (the same cell size the channel's
// SpatialReceiverIndex uses — the interference cutoff radius) and whole
// cells are dealt to K shards in lexicographic cell order, producing
// size-balanced, spatially contiguous slabs. Spatial contiguity is what
// makes the conservative lookahead useful: the minimum distance between
// nodes of *different* shards — hence the minimum cross-shard acoustic
// delay — is maximized when each shard owns a compact region.
//
// min_cross_shard_distance() re-derives that minimum under the current
// (possibly drifted) positions with a 27-cell neighbourhood scan: any
// pair closer than one cell side lies in adjacent cells, so the scan is
// exact below the cell size and the cell size itself is a valid lower
// bound otherwise.

#include <cstdint>
#include <vector>

#include "util/vec3.hpp"

namespace aquamac {

class ShardPlan {
 public:
  /// Partitions `positions.size()` nodes into `shards` (>= 1) groups.
  /// `cell_size_m` is clamped below at 1 m.
  static ShardPlan build(const std::vector<Vec3>& positions, unsigned shards,
                         double cell_size_m);

  [[nodiscard]] const std::vector<std::uint32_t>& shard_of_node() const {
    return shard_of_node_;
  }
  [[nodiscard]] unsigned shards() const { return shards_; }
  [[nodiscard]] double cell_size_m() const { return cell_size_m_; }

  /// Minimum Euclidean distance between any two nodes assigned to
  /// different shards, evaluated at `positions` (same node indexing the
  /// plan was built with). Exact when below cell_size_m(); otherwise
  /// returns cell_size_m(), a valid lower bound. Returns +infinity when
  /// fewer than two shards are populated.
  [[nodiscard]] double min_cross_shard_distance(const std::vector<Vec3>& positions) const;

 private:
  std::vector<std::uint32_t> shard_of_node_;
  unsigned shards_{1};
  double cell_size_m_{1.0};
};

}  // namespace aquamac

#pragma once
// Cancellable pending-event queue for the discrete-event engine.
//
// A binary heap keyed by (time, origin lane, per-origin sequence) gives a
// total, deterministic order. The key is *intrinsic* to the scheduling
// action — which lane scheduled the event and how many pushes that lane
// had performed — not to global push interleaving, so the same set of
// scheduling actions yields the same execution order no matter how many
// queues or worker threads the engine spreads them over (the property the
// sharded conservative-PDES engine in Simulator rests on). The legacy
// push(when, fn) overload attributes everything to lane 0 with an
// automatic per-queue sequence, which degenerates to the historical
// (time, insertion order) behaviour for standalone use.
//
// Cancellation is lazy — cancelled entries are skipped on pop — with
// periodic compaction so a cancel-heavy workload (e.g. MAC timers)
// cannot grow the heap unboundedly: whenever dead entries outnumber live
// ones (past a small floor), the heap is rebuilt from the live entries in
// O(n), amortized against the cancels that created the garbage. The 1:1
// threshold (rather than the previous 3:1) keeps pop latency flat inside
// the short lookahead windows of sharded execution, where a queue is
// drained front-first many times per simulated second.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace aquamac {

/// Deterministic total ordering key of a scheduled event: fire time, then
/// the lane (0 = global, node i = lane i+1) whose activity scheduled it,
/// then that lane's running push count. (origin, origin_seq) pairs are
/// unique, so the order is total.
struct EventKey {
  Time when{};
  std::uint32_t origin{0};
  std::uint64_t origin_seq{0};

  constexpr bool operator==(const EventKey&) const = default;
  constexpr bool operator<(const EventKey& o) const {
    if (when != o.when) return when < o.when;
    if (origin != o.origin) return origin < o.origin;
    return origin_seq < o.origin_seq;
  }
};

/// Opaque handle identifying a scheduled event; valid until it fires or is
/// cancelled. Default-constructed handles are null. The id is unrelated to
/// execution order (Simulator encodes the owning queue in the low bits).
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool is_null() const { return id_ == 0; }
  [[nodiscard]] constexpr std::uint64_t id() const { return id_; }
  constexpr bool operator==(const EventHandle&) const = default;

 private:
  friend class EventQueue;
  friend class Simulator;
  constexpr explicit EventHandle(std::uint64_t id) : id_{id} {}
  std::uint64_t id_{0};
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  /// Pre-sizes the heap and callback table for an expected number of
  /// simultaneously pending events (rehash/realloc avoidance only).
  void reserve(std::size_t expected_pending);

  /// Schedules `fn` at absolute time `when`, attributed to lane 0 with an
  /// automatic per-queue sequence (standalone / single-queue use). O(log n).
  EventHandle push(Time when, Callback fn);

  /// Schedules `fn` under an explicit ordering key; `lane` is the lane the
  /// event acts on (it becomes the executing context's current lane) and
  /// `id` the caller-assigned handle id (must be unique and nonzero).
  EventHandle push_keyed(EventKey key, std::uint32_t lane, std::uint64_t id, Callback fn);

  /// Cancels a pending event; returns false if the event already fired,
  /// was already cancelled, or the handle is null. O(1) amortized.
  bool cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Heap entries including not-yet-reclaimed cancelled ones; bounded at
  /// max(kCompactionFloor, 2 * size()) by compaction. Diagnostics/tests.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

  /// Cancelled entries still occupying heap slots (heap_entries() minus
  /// live events). Diagnostics for cancel-heavy MAC workloads.
  [[nodiscard]] std::size_t cancelled_entries() const { return heap_.size() - live_count_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Time next_time();
  /// Full ordering key of the earliest live event. Requires !empty().
  [[nodiscard]] const EventKey& next_key();

  /// Removes and returns the earliest live event. Requires !empty().
  struct PoppedEvent {
    Time when;
    Callback fn;
    EventKey key;
    std::uint32_t lane;
  };
  PoppedEvent pop();

  /// Removes every pending event (used by the sharded engine to scatter a
  /// pre-sharding backlog across per-shard queues). Keys, lanes and handle
  /// ids are preserved verbatim; order is unspecified.
  struct ExtractedEvent {
    EventKey key;
    std::uint32_t lane;
    std::uint64_t id;
    Callback fn;
  };
  std::vector<ExtractedEvent> extract_all();

  /// Ordering keys and lanes of every live (non-cancelled) event, in
  /// unspecified order; checkpointing sorts them by key. Handle ids are
  /// deliberately omitted — they embed the owning queue index, which
  /// differs across shard counts, while the key set does not. O(heap).
  struct LiveEvent {
    EventKey key;
    std::uint32_t lane;
  };
  [[nodiscard]] std::vector<LiveEvent> live_events() const;

  void clear();

  /// Compaction triggers when heap_entries() exceeds both this floor and
  /// 2x the live count (i.e. >50% of the heap is cancelled garbage).
  static constexpr std::size_t kCompactionFloor = 64;

 private:
  struct Entry {
    EventKey key;
    std::uint32_t lane;
    std::uint64_t id;
    // Ordering for max-heap adapted to min-priority: a later key = lower
    // priority.
    bool operator<(const Entry& o) const { return o.key < key; }
  };

  void drop_cancelled_front();
  void maybe_compact();

  std::vector<Entry> heap_;  ///< std::push_heap/pop_heap ordering
  // Callbacks stored out-of-heap so Entry stays trivially movable; keyed
  // by handle id. A cancelled entry's callback is erased eagerly.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::size_t live_count_{0};
  std::uint64_t next_auto_seq_{1};  ///< legacy push(): lane-0 sequence + id
};

}  // namespace aquamac

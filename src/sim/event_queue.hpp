#pragma once
// Cancellable pending-event queue for the discrete-event engine.
//
// A binary heap keyed by (time, insertion sequence) gives a total,
// deterministic order: events scheduled for the same instant fire in the
// order they were scheduled. Cancellation is lazy — cancelled entries are
// skipped on pop — with periodic compaction so a cancel-heavy workload
// (e.g. MAC timers) cannot grow the heap unboundedly: whenever dead
// entries outnumber live ones 3:1 (past a small floor), the heap is
// rebuilt from the live entries in O(n), amortized against the cancels
// that created the garbage.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace aquamac {

/// Opaque handle identifying a scheduled event; valid until it fires or is
/// cancelled. Default-constructed handles are null.
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool is_null() const { return id_ == 0; }
  [[nodiscard]] constexpr std::uint64_t id() const { return id_; }
  constexpr bool operator==(const EventHandle&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventHandle(std::uint64_t id) : id_{id} {}
  std::uint64_t id_{0};
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  /// Pre-sizes the heap and callback table for an expected number of
  /// simultaneously pending events (rehash/realloc avoidance only).
  void reserve(std::size_t expected_pending);

  /// Schedules `fn` at absolute time `when`. O(log n).
  EventHandle push(Time when, Callback fn);

  /// Cancels a pending event; returns false if the event already fired,
  /// was already cancelled, or the handle is null. O(1) amortized.
  bool cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Heap entries including not-yet-reclaimed cancelled ones; bounded at
  /// max(kCompactionFloor, 4 * size()) by compaction. Diagnostics/tests.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// Removes and returns the earliest live event. Requires !empty().
  struct PoppedEvent {
    Time when;
    Callback fn;
  };
  PoppedEvent pop();

  void clear();

  /// Compaction triggers when heap_entries() exceeds both this floor and
  /// 4x the live count (i.e. >75% of the heap is cancelled garbage).
  static constexpr std::size_t kCompactionFloor = 64;

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    // Ordering for max-heap adapted to min-priority: later time = lower
    // priority; ties broken by insertion sequence (earlier first).
    bool operator<(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void drop_cancelled_front();
  void maybe_compact();

  std::vector<Entry> heap_;  ///< std::push_heap/pop_heap ordering
  // Callbacks stored out-of-heap so Entry stays trivially movable; keyed
  // by sequence number. A cancelled entry's callback is erased eagerly.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::size_t live_count_{0};
  std::uint64_t next_seq_{1};
};

}  // namespace aquamac

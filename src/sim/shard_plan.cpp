#include "sim/shard_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace aquamac {

namespace {

struct CellKey {
  std::int64_t x{0};
  std::int64_t y{0};
  std::int64_t z{0};
  bool operator==(const CellKey&) const = default;
  bool operator<(const CellKey& o) const {
    if (x != o.x) return x < o.x;
    if (y != o.y) return y < o.y;
    return z < o.z;
  }
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& key) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::int64_t v : {key.x, key.y, key.z}) {
      h ^= static_cast<std::uint64_t>(v);
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

CellKey key_for(const Vec3& pos, double cell) {
  return CellKey{static_cast<std::int64_t>(std::floor(pos.x / cell)),
                 static_cast<std::int64_t>(std::floor(pos.y / cell)),
                 static_cast<std::int64_t>(std::floor(pos.z / cell))};
}

}  // namespace

ShardPlan ShardPlan::build(const std::vector<Vec3>& positions, unsigned shards,
                           double cell_size_m) {
  if (shards == 0) throw std::invalid_argument("ShardPlan: shards must be >= 1");
  ShardPlan plan;
  plan.cell_size_m_ = std::max(1.0, cell_size_m);
  plan.shards_ = static_cast<unsigned>(
      std::min<std::size_t>(shards, std::max<std::size_t>(1, positions.size())));
  plan.shard_of_node_.assign(positions.size(), 0);
  if (plan.shards_ == 1) return plan;

  // Sort nodes by (cell, node id): lexicographic cell order yields
  // contiguous spatial slabs; the id tiebreak keeps the order a pure
  // function of the positions.
  std::vector<std::size_t> order(positions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<CellKey> cells(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    cells[i] = key_for(positions[i], plan.cell_size_m_);
  }
  std::sort(order.begin(), order.end(), [&cells](std::size_t a, std::size_t b) {
    if (!(cells[a] == cells[b])) return cells[a] < cells[b];
    return a < b;
  });

  // Deal whole cells to shards, advancing once the running count reaches
  // the proportional target; a cell is never split, so co-located nodes
  // always share a shard (they would otherwise pin the lookahead at 0).
  const auto n = positions.size();
  std::uint32_t shard = 0;
  std::size_t assigned = 0;
  for (std::size_t idx = 0; idx < n;) {
    std::size_t end = idx + 1;
    while (end < n && cells[order[end]] == cells[order[idx]]) ++end;
    // Advance to the shard whose quota this cell's start falls into.
    while (shard + 1 < plan.shards_ &&
           assigned * plan.shards_ >= (static_cast<std::size_t>(shard) + 1) * n) {
      ++shard;
    }
    for (std::size_t k = idx; k < end; ++k) plan.shard_of_node_[order[k]] = shard;
    assigned += end - idx;
    idx = end;
  }
  return plan;
}

double ShardPlan::min_cross_shard_distance(const std::vector<Vec3>& positions) const {
  if (positions.size() != shard_of_node_.size()) {
    throw std::invalid_argument("ShardPlan: position count changed since build");
  }
  if (shards_ <= 1) return std::numeric_limits<double>::infinity();

  const double cell = cell_size_m_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> bins;
  bins.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    bins[key_for(positions[i], cell)].push_back(static_cast<std::uint32_t>(i));
  }

  double best_sq = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const CellKey center = key_for(positions[i], cell);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          const auto it = bins.find(CellKey{center.x + dx, center.y + dy, center.z + dz});
          if (it == bins.end()) continue;
          for (const std::uint32_t j : it->second) {
            if (j <= i || shard_of_node_[j] == shard_of_node_[i]) continue;
            best_sq = std::min(best_sq, (positions[i] - positions[j]).norm_sq());
          }
        }
      }
    }
  }
  // Any pair closer than one cell side lies within the scanned
  // neighbourhood, so when the scan found nothing nearer, `cell` itself
  // is a correct lower bound on the true minimum.
  const double best = std::sqrt(best_sq);
  return best < cell ? best : cell;
}

}  // namespace aquamac

#pragma once
// The discrete-event simulator: a clock plus the pending-event queue(s).
//
// One Simulator instance exists per run; every component (channel, modem,
// MAC, traffic source) holds a reference and schedules work through it.
// There is deliberately no global/singleton instance — runs are isolated
// and reproducible from (scenario, seed) alone.
//
// Lanes. Every event belongs to a *lane*: lane 0 is the global lane
// (setup, mobility ticks, other whole-network events) and node i maps to
// lane i + 1. An event's ordering key is (time, origin lane, per-origin
// sequence) — see EventKey — where the origin is the lane whose activity
// scheduled it. Because a lane's own events execute in a deterministic
// order and perform the same pushes in the same order regardless of how
// lanes are spread over threads, the key order is identical for serial
// and sharded execution; it is the foundation of the bit-identity
// contract between the two engines. Code that never calls set_lane_count
// or LaneGuard runs entirely in lane 0, which reproduces the historical
// (time, push order) behaviour exactly.
//
// Sharded execution (enable_sharding) partitions node lanes into K shards,
// each owning an EventQueue, and advances the shards concurrently inside
// conservative lookahead windows [T, T + L): L is a lower bound on the
// acoustic propagation delay between any two nodes in different shards,
// so no cross-shard influence scheduled inside a window can land inside
// it. Cross-shard events travel through per-context outboxes applied at
// the window barrier; lane-0 events run on the coordinator between
// windows, before any equal-time node-lane event (origin 0 sorts first).
// See docs/parallel-des.md for the full protocol and determinism rules.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/logging.hpp"
#include "util/time.hpp"

namespace aquamac {

class StateReader;
class StateWriter;
class ThreadPool;

/// Configuration of the sharded conservative-PDES engine.
struct ShardingOptions {
  /// Node index -> shard index in [0, shards); size = node count.
  std::vector<std::uint32_t> shard_of_node;
  /// Number of shards K (>= 1; 1 exercises the windowed engine serially).
  unsigned shards{1};
  /// Conservative lookahead: a lower bound on the delay of any influence
  /// between nodes of different shards *under current positions*. Called
  /// by the coordinator between windows (re-queried after every global
  /// event batch, which is the only place positions change). Values are
  /// clamped below at 1 ns so windows always make progress.
  std::function<Duration()> lookahead;
  /// Worker threads; 0 = min(shards, default_jobs()).
  unsigned threads{0};
};

class Simulator {
 public:
  explicit Simulator(Logger logger = Logger::off());
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Monotonically non-decreasing. On a shard
  /// worker thread this is the shard-local clock (within the current
  /// conservative window); elsewhere the global clock.
  [[nodiscard]] Time now() const;

  /// Declares the lane id space: lanes [0, lanes). Must cover every lane
  /// later passed to at_lane/LaneGuard when sharding is enabled (serial
  /// execution grows the table on demand). Lane 0 always exists.
  void set_lane_count(std::uint32_t lanes);

  /// The lane new events are attributed to and scheduled onto: the lane
  /// of the event currently executing, or the LaneGuard-selected lane
  /// outside event context (default 0).
  [[nodiscard]] std::uint32_t current_lane() const;

  /// Scopes scheduling outside event context to a lane, so setup code can
  /// attribute per-node events (hello rounds, traffic starts, fault
  /// timelines) to the node's lane. Restores the previous lane on exit.
  class LaneGuard {
   public:
    LaneGuard(Simulator& sim, std::uint32_t lane) : sim_{sim}, saved_{sim.schedule_lane_} {
      sim_.schedule_lane_ = lane;
    }
    ~LaneGuard() { sim_.schedule_lane_ = saved_; }
    LaneGuard(const LaneGuard&) = delete;
    LaneGuard& operator=(const LaneGuard&) = delete;

   private:
    Simulator& sim_;
    std::uint32_t saved_;
  };

  /// Schedules `fn` at absolute time `when` on the current lane; `when`
  /// must not precede now().
  EventHandle at(Time when, EventQueue::Callback fn) {
    return at_lane(current_lane(), when, std::move(fn));
  }

  /// Schedules `fn` on an explicit target lane (the channel uses this to
  /// hand arrivals to the receiver's lane). The ordering key still
  /// carries the *current* lane as origin. Under sharding, only lane-0
  /// context may target lane 0, and a cross-shard target must lie at or
  /// beyond the current window's end (the conservative-horizon guarantee;
  /// violating it throws, as it would silently break determinism).
  EventHandle at_lane(std::uint32_t lane, Time when, EventQueue::Callback fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle in(Duration delay, EventQueue::Callback fn) {
    return at(now() + delay, std::move(fn));
  }

  /// Cancels a pending event; false if it already fired or was cancelled.
  /// Under sharding a worker may only cancel events of its own shard
  /// (MAC timers are node-local, so this is the natural discipline).
  bool cancel(EventHandle handle);

  /// Runs events until the queue drains or `until` is passed; the clock is
  /// left at min(until, last event time). Returns number of events fired.
  std::uint64_t run_until(Time until);

  /// Runs until the queue drains completely.
  std::uint64_t run() { return run_until(Time::max()); }

  /// Requests that the run loop stop after the current event (serial) or
  /// the current window (sharded; honored at the next barrier).
  void stop() { stop_requested_ = true; }

  // --- sharded engine --------------------------------------------------

  /// Switches to sharded windowed execution. Call once, before scheduling
  /// (EventHandles obtained earlier keep firing but can no longer be
  /// cancelled reliably) and after set_lane_count. shard_of_node must
  /// cover every node lane declared.
  void enable_sharding(ShardingOptions options);

  [[nodiscard]] bool sharding_enabled() const { return sharded_; }
  [[nodiscard]] unsigned shard_count() const {
    return sharded_ ? static_cast<unsigned>(queues_.size() - 1) : 1;
  }

  /// Number of execution contexts (1 + shard count); sizes per-context
  /// workspaces (e.g. the channel's candidate buffers).
  [[nodiscard]] std::size_t context_count() const { return queues_.size(); }

  /// Index of the calling thread's execution context: 0 for the
  /// coordinator / serial / harness threads, 1..K on shard workers.
  [[nodiscard]] std::size_t context_index() const;

  /// True on a shard worker thread inside a conservative window — i.e.
  /// when other shards may be executing concurrently and any side effect
  /// on shared state must go through defer_ordered().
  [[nodiscard]] bool in_parallel_region() const;

  /// Defers `fn` to the window barrier, tagged with the executing event's
  /// key and a per-event ordinal. The coordinator replays all deferred
  /// actions of a window sorted by (event key, ordinal) — exactly the
  /// order a serial execution would have performed them — so sinks fed
  /// through this path (traces, audits) see the serial stream verbatim.
  /// Only valid inside a parallel region.
  void defer_ordered(std::function<void()> fn);

  [[nodiscard]] bool has_pending() const {
    for (const EventQueue& q : queues_) {
      if (!q.empty()) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t pending_count() const {
    std::size_t n = 0;
    for (const EventQueue& q : queues_) n += q.size();
    return n;
  }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// Conservative windows executed so far (sharded engine diagnostics).
  [[nodiscard]] std::uint64_t windows_executed() const { return windows_executed_; }

  [[nodiscard]] const Logger& logger() const { return logger_; }

  // --- checkpointing ---------------------------------------------------

  /// Serializes the engine component of a checkpoint: clock, executed
  /// event count, per-lane sequence counters, and the intrinsic (time,
  /// origin, seq, lane) keys of every live pending event, sorted by key.
  /// The encoding is shard-count-invariant: handle ids (which embed the
  /// owning queue index) and windows_executed_ are deliberately excluded,
  /// so a K=4 run snapshots byte-identically to the serial run it mirrors.
  void save_checkpoint(StateWriter& writer) const;

  /// Decodes an engine component and verifies it against current state.
  /// Restore works by replaying the deterministic prefix to the
  /// checkpoint time (callbacks are closures and cannot be serialized),
  /// so after replay the live event set must already match the snapshot
  /// exactly; any mismatch throws CheckpointError naming the component.
  void restore_checkpoint(StateReader& reader) const;

  /// Queue-index bits in a handle id; bounds shards at kMaxQueues - 1.
  static constexpr unsigned kQueueBits = 8;
  static constexpr std::size_t kMaxQueues = 1u << kQueueBits;
  /// Lane bits in a handle id; bounds lanes (nodes + 1) at 65'535.
  static constexpr unsigned kLaneBits = 16;
  static constexpr std::uint32_t kMaxLanes = (1u << kLaneBits) - 1;

  /// Per-worker execution state; defined in simulator.cpp (opaque here,
  /// public only so the implementation's thread-local can name it).
  struct ExecContext;

 private:

  EventHandle push_event(std::uint32_t lane, EventKey key, EventQueue::Callback fn);
  std::uint64_t run_until_serial(Time until);
  std::uint64_t run_until_sharded(Time until);
  std::uint64_t run_global_batch(Time t);
  std::uint64_t run_window(Time window_end);
  void run_shard_window(ExecContext& ctx, Time window_end);
  void drain_outboxes();
  void flush_defers();

  std::vector<EventQueue> queues_;  ///< [0] = global/serial; [1..K] = shards
  Time now_{Time::zero()};
  std::atomic<bool> stop_requested_{false};
  std::uint64_t events_executed_{0};
  std::uint64_t windows_executed_{0};
  Logger logger_;

  /// Per-lane push counters: lane_seq_[l] counts pushes whose origin is l.
  /// A lane's counter is only ever touched by the context executing that
  /// lane, so concurrent shards touch disjoint slots.
  std::vector<std::uint64_t> lane_seq_;
  std::uint32_t schedule_lane_{0};  ///< scheduling lane outside event context

  // Sharded engine state.
  bool sharded_{false};
  std::vector<std::uint32_t> queue_of_lane_;  ///< lane -> owning queue index
  std::vector<std::unique_ptr<ExecContext>> contexts_;  ///< [0] = coordinator
  std::unique_ptr<ThreadPool> pool_;
  std::function<Duration()> lookahead_fn_;
  Duration lookahead_{Duration::nanoseconds(1)};
  bool lookahead_valid_{false};
  std::exception_ptr pending_exception_;
  std::mutex exception_mutex_;
};

}  // namespace aquamac

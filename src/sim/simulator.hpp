#pragma once
// The discrete-event simulator: a clock plus the pending-event queue.
//
// One Simulator instance exists per run; every component (channel, modem,
// MAC, traffic source) holds a reference and schedules work through it.
// There is deliberately no global/singleton instance — runs are isolated
// and reproducible from (scenario, seed) alone.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "util/logging.hpp"
#include "util/time.hpp"

namespace aquamac {

class Simulator {
 public:
  explicit Simulator(Logger logger = Logger::off()) : logger_{std::move(logger)} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when`; `when` must not precede now().
  EventHandle at(Time when, EventQueue::Callback fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle in(Duration delay, EventQueue::Callback fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Runs events until the queue drains or `until` is passed; the clock is
  /// left at min(until, last event time). Returns number of events fired.
  std::uint64_t run_until(Time until);

  /// Runs until the queue drains completely.
  std::uint64_t run() { return run_until(Time::max()); }

  /// Requests that the run loop stop after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending_count() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  [[nodiscard]] const Logger& logger() const { return logger_; }

 private:
  EventQueue queue_;
  Time now_{Time::zero()};
  bool stop_requested_{false};
  std::uint64_t events_executed_{0};
  Logger logger_;
};

}  // namespace aquamac

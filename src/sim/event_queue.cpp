#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aquamac {

EventQueue::EventQueue() { reserve(kCompactionFloor); }

void EventQueue::reserve(std::size_t expected_pending) {
  heap_.reserve(expected_pending);
  callbacks_.reserve(expected_pending);
}

EventHandle EventQueue::push(Time when, Callback fn) {
  const std::uint64_t seq = next_auto_seq_++;
  return push_keyed(EventKey{when, 0, seq}, /*lane=*/0, /*id=*/seq, std::move(fn));
}

EventHandle EventQueue::push_keyed(EventKey key, std::uint32_t lane, std::uint64_t id,
                                   Callback fn) {
  assert(fn && "scheduling a null callback");
  assert(id != 0 && "handle id 0 is reserved for null handles");
  heap_.push_back(Entry{key, lane, id});
  std::push_heap(heap_.begin(), heap_.end());
  [[maybe_unused]] const bool inserted = callbacks_.emplace(id, std::move(fn)).second;
  assert(inserted && "duplicate event handle id");
  ++live_count_;
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle handle) {
  if (handle.is_null()) return false;
  auto it = callbacks_.find(handle.id());
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  // Every heap entry has exactly one callback while live, so the dead
  // fraction is heap_.size() - live_count_. Rebuilding costs O(n) and is
  // only triggered after >= n/2 cancels produced the garbage, keeping
  // cancel O(1) amortized while bounding the dead weight pop() and
  // next_key() wade through to at most one dead entry per live one.
  if (heap_.size() <= kCompactionFloor || heap_.size() <= 2 * live_count_) return;
  std::erase_if(heap_, [this](const Entry& e) { return !callbacks_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end());
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

Time EventQueue::next_time() { return next_key().when; }

const EventKey& EventQueue::next_key() {
  drop_cancelled_front();
  assert(!heap_.empty());
  return heap_.front().key;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end());
  const Entry entry = heap_.back();
  heap_.pop_back();
  auto it = callbacks_.find(entry.id);
  assert(it != callbacks_.end());
  PoppedEvent popped{entry.key.when, std::move(it->second), entry.key, entry.lane};
  callbacks_.erase(it);
  --live_count_;
  return popped;
}

std::vector<EventQueue::ExtractedEvent> EventQueue::extract_all() {
  std::vector<ExtractedEvent> out;
  out.reserve(live_count_);
  for (Entry& entry : heap_) {
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;
    out.push_back(ExtractedEvent{entry.key, entry.lane, entry.id, std::move(it->second)});
  }
  clear();
  return out;
}

std::vector<EventQueue::LiveEvent> EventQueue::live_events() const {
  std::vector<LiveEvent> out;
  out.reserve(live_count_);
  for (const Entry& entry : heap_) {
    if (!callbacks_.contains(entry.id)) continue;
    out.push_back(LiveEvent{entry.key, entry.lane});
  }
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  callbacks_.clear();
  live_count_ = 0;
}

}  // namespace aquamac

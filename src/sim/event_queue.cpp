#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aquamac {

EventQueue::EventQueue() { reserve(kCompactionFloor); }

void EventQueue::reserve(std::size_t expected_pending) {
  heap_.reserve(expected_pending);
  callbacks_.reserve(expected_pending);
}

EventHandle EventQueue::push(Time when, Callback fn) {
  assert(fn && "scheduling a null callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{when, seq});
  std::push_heap(heap_.begin(), heap_.end());
  callbacks_.emplace(seq, std::move(fn));
  ++live_count_;
  return EventHandle{seq};
}

bool EventQueue::cancel(EventHandle handle) {
  if (handle.is_null()) return false;
  auto it = callbacks_.find(handle.id());
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  // Every heap entry has exactly one callback while live, so the dead
  // fraction is heap_.size() - live_count_. Rebuilding costs O(n) and is
  // only triggered after >= 3n/4 cancels produced the garbage, keeping
  // cancel O(1) amortized.
  if (heap_.size() <= kCompactionFloor || heap_.size() <= 4 * live_count_) return;
  std::erase_if(heap_, [this](const Entry& e) { return !callbacks_.contains(e.seq); });
  std::make_heap(heap_.begin(), heap_.end());
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().seq)) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  drop_cancelled_front();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end());
  const Entry entry = heap_.back();
  heap_.pop_back();
  auto it = callbacks_.find(entry.seq);
  assert(it != callbacks_.end());
  PoppedEvent popped{entry.when, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return popped;
}

void EventQueue::clear() {
  heap_.clear();
  callbacks_.clear();
  live_count_ = 0;
}

}  // namespace aquamac

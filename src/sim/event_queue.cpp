#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace aquamac {

EventHandle EventQueue::push(Time when, Callback fn) {
  assert(fn && "scheduling a null callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(fn));
  ++live_count_;
  return EventHandle{seq};
}

bool EventQueue::cancel(EventHandle handle) {
  if (handle.is_null()) return false;
  auto it = callbacks_.find(handle.id());
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().seq)) heap_.pop();
}

Time EventQueue::next_time() {
  drop_cancelled_front();
  assert(!heap_.empty());
  return heap_.top().when;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.seq);
  assert(it != callbacks_.end());
  PoppedEvent popped{entry.when, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return popped;
}

void EventQueue::clear() {
  heap_ = {};
  callbacks_.clear();
  live_count_ = 0;
}

}  // namespace aquamac

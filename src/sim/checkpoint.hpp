#pragma once
// Versioned binary snapshot format for deterministic checkpoint/resume
// (docs/checkpoint.md). A checkpoint file is
//
//   magic "aquamac-ckpt-v1" | scenario text | checkpoint time |
//   state payload | FNV-1a digest over everything before it
//
// all length-prefixed little-endian. The scenario text is the exact
// save_scenario stream (round-trips losslessly since the max_digits10
// fix), so a checkpoint is self-contained: resume rebuilds the network
// from the embedded scenario, replays the deterministic prefix to the
// checkpoint time, and then verifies the replayed state byte-for-byte
// against the payload — any divergence, corruption or version skew is a
// hard CheckpointError, never a silently different run.
//
// The payload itself is a tree of named sections (name + length-framed
// body), written by StateWriter and decoded by StateReader. Sections
// make mismatches diagnosable: describe_payload_difference names the
// first component whose bytes differ instead of "digest mismatch".

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace aquamac {

/// Any checkpoint failure: truncated or corrupted file, version skew,
/// or replayed state diverging from the stored payload.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Format magic; bump the suffix on any incompatible layout change.
inline constexpr std::string_view kCheckpointMagic = "aquamac-ckpt-v1";

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over a byte string (same mix HashTrace uses per event).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t seed = kFnvOffsetBasis);

/// Append-only little-endian encoder for checkpoint payloads.
class StateWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);  ///< exact bit pattern, round-trips NaN/-0.0
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_string(std::string_view v);
  void write_time(Time t);
  void write_duration(Duration d);

  /// Frames everything `body` writes as a named section. Nestable.
  void section(std::string_view name, const std::function<void(StateWriter&)>& body);

  [[nodiscard]] const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a payload produced by StateWriter. Every
/// underflow or section-name mismatch throws CheckpointError.
class StateReader {
 public:
  explicit StateReader(std::string_view bytes) : bytes_{bytes} {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] bool read_bool();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] Time read_time();
  [[nodiscard]] Duration read_duration();

  /// Enters the next section, which must be named `name`; `body` must
  /// consume its bytes exactly (anything else is a layout drift bug).
  void section(std::string_view name, const std::function<void(StateReader&)>& body);

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  [[nodiscard]] std::string_view take(std::size_t n);

  std::string_view bytes_;
  std::size_t pos_{0};
};

/// One snapshot: the exact scenario it was taken from, the simulation
/// time it captures, and the encoded state payload.
struct Checkpoint {
  std::string scenario_text;
  Time at{};
  std::string payload;
};

/// Serializes `ckpt` in the aquamac-ckpt-v1 container format.
void write_checkpoint(std::ostream& os, const Checkpoint& ckpt);
void write_checkpoint_file(const Checkpoint& ckpt, const std::string& path);

/// Parses and digest-verifies a container; throws CheckpointError on
/// version skew, corruption or truncation.
[[nodiscard]] Checkpoint read_checkpoint(std::istream& is);
[[nodiscard]] Checkpoint read_checkpoint_file(const std::string& path);

/// Names the first top-level section whose bytes differ between two
/// payloads (for actionable divergence errors). Empty if identical.
[[nodiscard]] std::string describe_payload_difference(std::string_view expected,
                                                      std::string_view actual);

}  // namespace aquamac

#include "sim/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <iterator>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

namespace aquamac {

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

// --- StateWriter -------------------------------------------------------

void StateWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void StateWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void StateWriter::write_i64(std::int64_t v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

void StateWriter::write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

void StateWriter::write_string(std::string_view v) {
  write_u64(v.size());
  buf_.append(v);
}

void StateWriter::write_time(Time t) { write_i64(t.count_ns()); }

void StateWriter::write_duration(Duration d) { write_i64(d.count_ns()); }

void StateWriter::section(std::string_view name,
                          const std::function<void(StateWriter&)>& body) {
  StateWriter inner;
  body(inner);
  write_string(name);
  write_string(inner.buf_);
}

// --- StateReader -------------------------------------------------------

std::string_view StateReader::take(std::size_t n) {
  if (n > remaining()) {
    throw CheckpointError("checkpoint payload truncated: need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) + ", have " +
                          std::to_string(remaining()));
  }
  const std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t StateReader::read_u8() {
  return static_cast<std::uint8_t>(take(1).front());
}

std::uint32_t StateReader::read_u32() {
  const std::string_view raw = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(raw[static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t StateReader::read_u64() {
  const std::string_view raw = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(raw[static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::int64_t StateReader::read_i64() { return std::bit_cast<std::int64_t>(read_u64()); }

double StateReader::read_f64() { return std::bit_cast<double>(read_u64()); }

bool StateReader::read_bool() { return read_u8() != 0; }

std::string StateReader::read_string() {
  const std::uint64_t len = read_u64();
  return std::string{take(static_cast<std::size_t>(len))};
}

Time StateReader::read_time() { return Time::from_ns(read_i64()); }

Duration StateReader::read_duration() { return Duration::nanoseconds(read_i64()); }

void StateReader::section(std::string_view name,
                          const std::function<void(StateReader&)>& body) {
  const std::string found = read_string();
  if (found != name) {
    throw CheckpointError("checkpoint layout skew: expected section '" + std::string{name} +
                          "', found '" + found + "'");
  }
  const std::uint64_t len = read_u64();
  StateReader inner{take(static_cast<std::size_t>(len))};
  body(inner);
  if (inner.remaining() != 0) {
    throw CheckpointError("checkpoint section '" + std::string{name} + "' has " +
                          std::to_string(inner.remaining()) + " unconsumed bytes");
  }
}

// --- container ---------------------------------------------------------

void write_checkpoint(std::ostream& os, const Checkpoint& ckpt) {
  StateWriter w;
  w.write_string(kCheckpointMagic);
  w.write_string(ckpt.scenario_text);
  w.write_time(ckpt.at);
  w.write_string(ckpt.payload);
  StateWriter tail;
  tail.write_u64(fnv1a(w.bytes()));
  os.write(w.bytes().data(), static_cast<std::streamsize>(w.bytes().size()));
  os.write(tail.bytes().data(), static_cast<std::streamsize>(tail.bytes().size()));
}

void write_checkpoint_file(const Checkpoint& ckpt, const std::string& path) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw CheckpointError("cannot open " + path + " for writing");
  write_checkpoint(os, ckpt);
  if (!os) throw CheckpointError("failed writing checkpoint to " + path);
}

Checkpoint read_checkpoint(std::istream& is) {
  const std::string blob{std::istreambuf_iterator<char>{is}, std::istreambuf_iterator<char>{}};
  if (blob.size() < 8) throw CheckpointError("checkpoint truncated: no digest trailer");
  const std::string_view body_bytes = std::string_view{blob}.substr(0, blob.size() - 8);

  StateReader body{body_bytes};
  Checkpoint out;
  // Magic first: a version-skewed file gets a version error, not a
  // digest error, even though its digest also differs.
  const std::string magic = body.read_string();
  if (magic != kCheckpointMagic) {
    throw CheckpointError("unsupported checkpoint format '" + magic + "' (this build reads '" +
                          std::string{kCheckpointMagic} + "')");
  }
  StateReader tail{std::string_view{blob}.substr(blob.size() - 8)};
  const std::uint64_t stored = tail.read_u64();
  const std::uint64_t actual = fnv1a(body_bytes);
  if (stored != actual) {
    throw CheckpointError("checkpoint digest mismatch: file is corrupt (stored " +
                          std::to_string(stored) + ", computed " + std::to_string(actual) +
                          ")");
  }
  out.scenario_text = body.read_string();
  out.at = body.read_time();
  out.payload = body.read_string();
  if (body.remaining() != 0) {
    throw CheckpointError("checkpoint has " + std::to_string(body.remaining()) +
                          " trailing bytes before the digest");
  }
  return out;
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw CheckpointError("cannot open checkpoint file " + path);
  return read_checkpoint(is);
}

// --- divergence diagnostics -------------------------------------------

namespace {

struct Section {
  std::string name;
  std::string_view body;
};

/// Top-level section table of a payload; nullopt if it does not parse.
std::optional<std::vector<Section>> parse_sections(std::string_view payload) {
  std::vector<Section> out;
  std::size_t pos = 0;
  const auto read_len = [&payload, &pos](std::uint64_t& v) {
    if (payload.size() - pos < 8) return false;
    v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(payload[pos + i])) << (8 * i);
    }
    pos += 8;
    return true;
  };
  while (pos < payload.size()) {
    std::uint64_t name_len = 0;
    if (!read_len(name_len) || name_len > payload.size() - pos) return std::nullopt;
    Section s;
    s.name = std::string{payload.substr(pos, static_cast<std::size_t>(name_len))};
    pos += static_cast<std::size_t>(name_len);
    std::uint64_t body_len = 0;
    if (!read_len(body_len) || body_len > payload.size() - pos) return std::nullopt;
    s.body = payload.substr(pos, static_cast<std::size_t>(body_len));
    pos += static_cast<std::size_t>(body_len);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::string describe_payload_difference(std::string_view expected, std::string_view actual) {
  if (expected == actual) return {};
  const auto exp = parse_sections(expected);
  const auto act = parse_sections(actual);
  if (!exp || !act) return "payloads differ (section table unparseable)";
  const std::size_t n = std::min(exp->size(), act->size());
  for (std::size_t k = 0; k < n; ++k) {
    const Section& e = (*exp)[k];
    const Section& a = (*act)[k];
    if (e.name != a.name) {
      return "section #" + std::to_string(k) + " name differs: '" + e.name + "' vs '" +
             a.name + "'";
    }
    if (e.body != a.body) return "section '" + e.name + "' differs";
  }
  if (exp->size() != act->size()) {
    return "section count differs: " + std::to_string(exp->size()) + " vs " +
           std::to_string(act->size());
  }
  return "payloads differ outside any section";
}

}  // namespace aquamac

#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace aquamac {

EventHandle Simulator::at(Time when, EventQueue::Callback fn) {
  if (when < now_) {
    throw std::logic_error("Simulator::at: scheduling into the past (" + when.to_string() +
                           " < " + now_.to_string() + ")");
  }
  return queue_.push(when, std::move(fn));
}

std::uint64_t Simulator::run_until(Time until) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > until) break;
    auto [when, fn] = queue_.pop();
    assert(when >= now_);
    now_ = when;
    fn();
    ++fired;
    ++events_executed_;
  }
  if (now_ < until && until != Time::max()) now_ = until;
  return fired;
}

}  // namespace aquamac

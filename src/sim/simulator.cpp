#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/checkpoint.hpp"
#include "util/thread_pool.hpp"

namespace aquamac {

/// Per-worker execution state. Exactly one context is active per thread
/// (installed in a thread-local while the thread executes events), so all
/// fields are single-writer; the coordinator reads them only at barriers,
/// after wait_idle() has synchronized with every worker.
struct Simulator::ExecContext {
  std::uint32_t queue_index{0};  ///< 0 = coordinator, k = shard k's queue
  Time now{Time::zero()};        ///< shard-local clock inside a window
  Time window_end{Time::zero()};
  std::uint32_t current_lane{0};
  EventKey exec_key{};
  std::uint32_t defer_ordinal{0};
  std::uint64_t fired{0};

  struct Outbound {
    std::uint32_t queue;
    EventKey key;
    std::uint32_t lane;
    std::uint64_t id;
    EventQueue::Callback fn;
  };
  std::vector<Outbound> outbox;

  struct Deferred {
    EventKey key;
    std::uint32_t ordinal;
    std::function<void()> fn;
  };
  std::vector<Deferred> defers;
};

namespace {
/// The execution context of the calling thread, if it is currently
/// running events for some Simulator. Thread-local rather than a member
/// so nested parallelism (harness jobs x shard workers) cannot confuse
/// contexts: each thread runs events of at most one simulator at a time.
thread_local Simulator::ExecContext* t_exec_context = nullptr;
}  // namespace

Simulator::Simulator(Logger logger) : logger_{std::move(logger)} {
  queues_.resize(1);
  lane_seq_.resize(1, 0);
  queue_of_lane_.resize(1, 0);
}

Simulator::~Simulator() = default;

Time Simulator::now() const {
  const ExecContext* ctx = t_exec_context;
  return ctx != nullptr ? ctx->now : now_;
}

void Simulator::set_lane_count(std::uint32_t lanes) {
  if (lanes > kMaxLanes) throw std::invalid_argument("Simulator: too many lanes");
  if (lane_seq_.size() < lanes) lane_seq_.resize(lanes, 0);
}

std::uint32_t Simulator::current_lane() const {
  const ExecContext* ctx = t_exec_context;
  return ctx != nullptr ? ctx->current_lane : schedule_lane_;
}

std::size_t Simulator::context_index() const {
  const ExecContext* ctx = t_exec_context;
  return ctx != nullptr ? ctx->queue_index : 0;
}

bool Simulator::in_parallel_region() const {
  const ExecContext* ctx = t_exec_context;
  return ctx != nullptr && ctx->queue_index > 0;
}

EventHandle Simulator::at_lane(std::uint32_t lane, Time when, EventQueue::Callback fn) {
  ExecContext* ctx = t_exec_context;
  const Time local_now = ctx != nullptr ? ctx->now : now_;
  if (when < local_now) {
    throw std::logic_error("Simulator::at: scheduling into the past (" + when.to_string() +
                           " < " + local_now.to_string() + ")");
  }
  const std::uint32_t origin = ctx != nullptr ? ctx->current_lane : schedule_lane_;
  if (origin >= lane_seq_.size()) {
    // Serial-only convenience growth; sharded mode pre-sizes via
    // set_lane_count, so workers never reallocate the shared table.
    assert(!sharded_);
    lane_seq_.resize(static_cast<std::size_t>(origin) + 1, 0);
  }
  const EventKey key{when, origin, ++lane_seq_[origin]};
  return push_event(lane, key, std::move(fn));
}

EventHandle Simulator::push_event(std::uint32_t lane, EventKey key, EventQueue::Callback fn) {
  std::uint32_t queue = 0;
  if (sharded_) {
    if (lane >= queue_of_lane_.size()) {
      throw std::logic_error("Simulator: lane beyond the sharded lane space");
    }
    queue = queue_of_lane_[lane];
  }
  // Handle id: (origin seq, origin, queue) — unique without any shared
  // counter, and the low bits route cancel() to the owning queue.
  const std::uint64_t id =
      (key.origin_seq << (kQueueBits + kLaneBits)) |
      (static_cast<std::uint64_t>(key.origin) << kQueueBits) | queue;

  ExecContext* ctx = t_exec_context;
  if (ctx != nullptr && queue != ctx->queue_index) {
    if (ctx->queue_index != 0 && key.when < ctx->window_end) {
      // A cross-shard event inside the conservative window would execute
      // out of order (the target may already have advanced past it):
      // the lookahead bound was violated. Fail loudly — this would
      // otherwise silently break the serial/sharded bit-identity wall.
      throw std::logic_error("Simulator: cross-shard event violates conservative lookahead");
    }
    if (queue == 0 && ctx->queue_index != 0) {
      throw std::logic_error("Simulator: only lane-0 context may schedule lane-0 events");
    }
    ctx->outbox.push_back(ExecContext::Outbound{queue, key, lane, id, std::move(fn)});
    return EventHandle{id};
  }
  return queues_[queue].push_keyed(key, lane, id, std::move(fn));
}

bool Simulator::cancel(EventHandle handle) {
  if (handle.is_null()) return false;
  const auto queue = static_cast<std::uint32_t>(handle.id() & (kMaxQueues - 1));
  if (queue >= queues_.size()) return false;
  assert(!in_parallel_region() || queue == t_exec_context->queue_index);
  return queues_[queue].cancel(handle);
}

void Simulator::defer_ordered(std::function<void()> fn) {
  ExecContext* ctx = t_exec_context;
  if (ctx == nullptr || ctx->queue_index == 0) {
    throw std::logic_error("Simulator::defer_ordered outside a parallel region");
  }
  ctx->defers.push_back(ExecContext::Deferred{ctx->exec_key, ctx->defer_ordinal++, std::move(fn)});
}

std::uint64_t Simulator::run_until(Time until) {
  return sharded_ ? run_until_sharded(until) : run_until_serial(until);
}

std::uint64_t Simulator::run_until_serial(Time until) {
  stop_requested_ = false;
  EventQueue& queue = queues_[0];
  std::uint64_t fired = 0;
  const std::uint32_t saved_lane = schedule_lane_;
  while (!queue.empty() && !stop_requested_) {
    if (queue.next_time() > until) break;
    auto popped = queue.pop();
    assert(popped.when >= now_);
    now_ = popped.when;
    schedule_lane_ = popped.lane;
    popped.fn();
    ++fired;
    ++events_executed_;
  }
  schedule_lane_ = saved_lane;
  if (now_ < until && until != Time::max()) now_ = until;
  return fired;
}

void Simulator::enable_sharding(ShardingOptions options) {
  if (sharded_) throw std::logic_error("Simulator: sharding already enabled");
  if (options.shards == 0) throw std::invalid_argument("Simulator: shards must be >= 1");
  if (options.shards + 1 > kMaxQueues) {
    throw std::invalid_argument("Simulator: too many shards");
  }
  const std::size_t lanes = options.shard_of_node.size() + 1;
  if (lanes > kMaxLanes) throw std::invalid_argument("Simulator: too many lanes");

  queue_of_lane_.assign(lanes, 0);
  for (std::size_t i = 0; i < options.shard_of_node.size(); ++i) {
    const std::uint32_t shard = options.shard_of_node[i];
    if (shard >= options.shards) {
      throw std::invalid_argument("Simulator: shard_of_node entry out of range");
    }
    queue_of_lane_[i + 1] = shard + 1;
  }
  set_lane_count(static_cast<std::uint32_t>(lanes));

  queues_.resize(options.shards + 1);
  contexts_.clear();
  contexts_.reserve(queues_.size());
  for (std::size_t k = 0; k < queues_.size(); ++k) {
    auto ctx = std::make_unique<ExecContext>();
    ctx->queue_index = static_cast<std::uint32_t>(k);
    contexts_.push_back(std::move(ctx));
  }
  unsigned threads = options.threads != 0 ? options.threads : default_jobs();
  threads = std::min(threads, options.shards);
  pool_ = std::make_unique<ThreadPool>(std::max(1u, threads));
  lookahead_fn_ = std::move(options.lookahead);
  lookahead_valid_ = false;
  sharded_ = true;

  // Scatter any pre-sharding backlog to the owning shard queues. Handle
  // ids are re-minted for the new queue (ordering keys are untouched), so
  // handles obtained before enable_sharding can no longer cancel.
  for (auto& event : queues_[0].extract_all()) {
    const std::uint32_t queue = queue_of_lane_.at(event.lane);
    const std::uint64_t id = (event.id & ~static_cast<std::uint64_t>(kMaxQueues - 1)) | queue;
    queues_[queue].push_keyed(event.key, event.lane, id, std::move(event.fn));
  }
}

std::uint64_t Simulator::run_until_sharded(Time until) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  const Time inclusive_cap =
      until == Time::max() ? Time::max() : until + Duration::nanoseconds(1);
  while (!stop_requested_) {
    // Earliest pending event across every queue.
    Time t_next = Time::max();
    bool any = false;
    for (EventQueue& queue : queues_) {
      if (queue.empty()) continue;
      any = true;
      t_next = std::min(t_next, queue.next_time());
    }
    if (!any || t_next > until) break;
    assert(t_next >= now_);
    now_ = t_next;

    // Global (lane-0) events at this instant run first on the
    // coordinator: origin 0 sorts before every node-lane key at equal
    // time, and they may touch cross-shard state (mobility), so every
    // shard must be quiescent — which it is, between windows.
    if (!queues_[0].empty() && queues_[0].next_time() == t_next) {
      fired += run_global_batch(t_next);
      drain_outboxes();
      // Global events are the only place node positions change; the
      // lookahead must be re-derived before the next window.
      lookahead_valid_ = false;
      continue;
    }

    if (!lookahead_valid_) {
      Duration ahead = lookahead_fn_ ? lookahead_fn_() : Duration::nanoseconds(1);
      lookahead_ = std::max(Duration::nanoseconds(1), ahead);
      lookahead_valid_ = true;
    }
    Time window_end = now_ > Time::max() - lookahead_ ? Time::max() : now_ + lookahead_;
    if (!queues_[0].empty()) window_end = std::min(window_end, queues_[0].next_time());
    window_end = std::min(window_end, inclusive_cap);
    fired += run_window(window_end);
    drain_outboxes();
    flush_defers();
    if (pending_exception_ != nullptr) {
      std::exception_ptr e = std::exchange(pending_exception_, nullptr);
      std::rethrow_exception(e);
    }
  }
  if (now_ < until && until != Time::max()) now_ = until;
  return fired;
}

std::uint64_t Simulator::run_global_batch(Time t) {
  ExecContext& ctx = *contexts_[0];
  ctx.now = t;
  ctx.window_end = t;
  t_exec_context = &ctx;
  std::uint64_t fired = 0;
  EventQueue& queue = queues_[0];
  while (!queue.empty() && !stop_requested_ && queue.next_time() == t) {
    auto popped = queue.pop();
    ctx.current_lane = popped.lane;
    ctx.exec_key = popped.key;
    ctx.defer_ordinal = 0;
    popped.fn();
    ++fired;
  }
  t_exec_context = nullptr;
  events_executed_ += fired;
  return fired;
}

std::uint64_t Simulator::run_window(Time window_end) {
  const auto shards = static_cast<std::uint32_t>(queues_.size() - 1);
  unsigned dispatched = 0;
  for (std::uint32_t s = 1; s <= shards; ++s) {
    EventQueue& queue = queues_[s];
    if (queue.empty() || queue.next_time() >= window_end) continue;
    ExecContext* ctx = contexts_[s].get();
    ctx->window_end = window_end;
    pool_->submit([this, ctx, window_end] { run_shard_window(*ctx, window_end); });
    ++dispatched;
  }
  if (dispatched > 0) pool_->wait_idle();
  ++windows_executed_;
  std::uint64_t fired = 0;
  for (std::uint32_t s = 1; s <= shards; ++s) {
    fired += contexts_[s]->fired;
    contexts_[s]->fired = 0;
  }
  events_executed_ += fired;
  return fired;
}

void Simulator::run_shard_window(ExecContext& ctx, Time window_end) {
  t_exec_context = &ctx;
  EventQueue& queue = queues_[ctx.queue_index];
  try {
    while (!queue.empty()) {
      if (queue.next_time() >= window_end) break;
      auto popped = queue.pop();
      ctx.now = popped.when;
      ctx.current_lane = popped.lane;
      ctx.exec_key = popped.key;
      ctx.defer_ordinal = 0;
      popped.fn();
      ++ctx.fired;
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock{exception_mutex_};
    if (pending_exception_ == nullptr) pending_exception_ = std::current_exception();
  }
  t_exec_context = nullptr;
}

void Simulator::drain_outboxes() {
  for (auto& ctx : contexts_) {
    for (auto& out : ctx->outbox) {
      assert(out.key.when >= now_);
      queues_[out.queue].push_keyed(out.key, out.lane, out.id, std::move(out.fn));
    }
    ctx->outbox.clear();
  }
}

void Simulator::flush_defers() {
  std::vector<ExecContext::Deferred> batch;
  std::size_t total = 0;
  for (const auto& ctx : contexts_) total += ctx->defers.size();
  if (total == 0) return;
  batch.reserve(total);
  for (auto& ctx : contexts_) {
    for (auto& deferred : ctx->defers) batch.push_back(std::move(deferred));
    ctx->defers.clear();
  }
  // (event key, ordinal) pairs are unique — each event's deferred actions
  // are numbered by one context — so this order is total and equals the
  // serial execution's action order.
  std::sort(batch.begin(), batch.end(),
            [](const ExecContext::Deferred& a, const ExecContext::Deferred& b) {
              if (!(a.key == b.key)) return a.key < b.key;
              return a.ordinal < b.ordinal;
            });
  for (ExecContext::Deferred& deferred : batch) deferred.fn();
}

namespace {

/// All live events across the queues, sorted by their intrinsic ordering
/// key — the shard-count-invariant view of the pending event set.
std::vector<EventQueue::LiveEvent> sorted_live_events(const std::vector<EventQueue>& queues) {
  std::vector<EventQueue::LiveEvent> live;
  for (const EventQueue& queue : queues) {
    const std::vector<EventQueue::LiveEvent> events = queue.live_events();
    live.insert(live.end(), events.begin(), events.end());
  }
  std::sort(live.begin(), live.end(),
            [](const EventQueue::LiveEvent& a, const EventQueue::LiveEvent& b) {
              return a.key < b.key;
            });
  return live;
}

}  // namespace

void Simulator::save_checkpoint(StateWriter& writer) const {
  writer.write_time(now_);
  writer.write_u64(events_executed_);
  writer.write_u64(lane_seq_.size());
  for (const std::uint64_t seq : lane_seq_) writer.write_u64(seq);
  const std::vector<EventQueue::LiveEvent> live = sorted_live_events(queues_);
  writer.write_u64(live.size());
  for (const EventQueue::LiveEvent& event : live) {
    writer.write_time(event.key.when);
    writer.write_u32(event.key.origin);
    writer.write_u64(event.key.origin_seq);
    writer.write_u32(event.lane);
  }
}

void Simulator::restore_checkpoint(StateReader& reader) const {
  const auto mismatch = [](const std::string& what) {
    throw CheckpointError("engine state diverges from checkpoint: " + what);
  };
  const Time stored_now = reader.read_time();
  if (stored_now != now_) mismatch("clock");
  const std::uint64_t stored_executed = reader.read_u64();
  if (stored_executed != events_executed_) {
    mismatch("executed-event count (checkpoint " + std::to_string(stored_executed) +
             ", replay " + std::to_string(events_executed_) + ")");
  }
  const std::uint64_t lane_count = reader.read_u64();
  if (lane_count != lane_seq_.size()) mismatch("lane count");
  for (std::size_t lane = 0; lane < lane_seq_.size(); ++lane) {
    if (reader.read_u64() != lane_seq_[lane]) {
      mismatch("sequence counter of lane " + std::to_string(lane));
    }
  }
  const std::vector<EventQueue::LiveEvent> live = sorted_live_events(queues_);
  const std::uint64_t stored_live = reader.read_u64();
  if (stored_live != live.size()) {
    mismatch("pending-event count (checkpoint " + std::to_string(stored_live) + ", replay " +
             std::to_string(live.size()) + ")");
  }
  for (std::size_t k = 0; k < live.size(); ++k) {
    const EventKey key{reader.read_time(), reader.read_u32(), reader.read_u64()};
    const std::uint32_t lane = reader.read_u32();
    if (!(key == live[k].key) || lane != live[k].lane) {
      mismatch("pending event #" + std::to_string(k));
    }
  }
}

}  // namespace aquamac

#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/checkpoint.hpp"

namespace aquamac {

namespace {

// Dedicated stream ids, spaced 2^16 apart so plans with up to 65k nodes
// cannot collide with each other or with any Network stream (all of which
// sit below 0x1000000).
constexpr std::uint64_t kDriftStream = 0xFA000000;
constexpr std::uint64_t kJitterStream = 0xFA010000;
constexpr std::uint64_t kOutageStream = 0xFA020000;
constexpr std::uint64_t kDutyStream = 0xFA030000;
constexpr std::uint64_t kGeStream = 0xFA040000;
constexpr std::uint64_t kLossStream = 0xFA050000;
constexpr std::uint64_t kStormStream = 0xFA060000;

/// Poisson on/off process: events at rate `rate_per_hour`, each lasting
/// exponential(`mean_duration`); clipped to [0, horizon).
std::vector<TimeInterval> draw_on_off(double rate_per_hour, Duration mean_duration,
                                      Time horizon, Rng& rng) {
  std::vector<TimeInterval> intervals;
  if (rate_per_hour <= 0.0) return intervals;
  const double mean_gap_s = 3'600.0 / rate_per_hour;
  Time t = Time::zero();
  while (true) {
    t += Duration::from_seconds(rng.exponential(mean_gap_s));
    if (t >= horizon) break;
    const Duration dur = Duration::from_seconds(rng.exponential(mean_duration.to_seconds()));
    Time end = t + dur;
    if (end > horizon) end = horizon;
    if (end > t) intervals.push_back(TimeInterval{t, end});
    t = end;
  }
  return intervals;
}

/// Sorts and merges touching/overlapping intervals into a disjoint set.
std::vector<TimeInterval> normalize(std::vector<TimeInterval> intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeInterval& a, const TimeInterval& b) { return a.begin < b.begin; });
  std::vector<TimeInterval> merged;
  for (const TimeInterval& iv : intervals) {
    if (iv.end <= iv.begin) continue;
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace

bool interval_set_contains(const std::vector<TimeInterval>& intervals, Time t) {
  const auto it = std::upper_bound(
      intervals.begin(), intervals.end(), t,
      [](Time value, const TimeInterval& iv) { return value < iv.begin; });
  return it != intervals.begin() && std::prev(it)->contains(t);
}

FaultPlan::FaultPlan(const FaultConfig& config, std::size_t node_count, Time horizon,
                     const Rng& root)
    : config_{config}, node_count_{node_count}, horizon_{horizon} {
  if (node_count == 0) throw std::invalid_argument("FaultPlan: node_count must be > 0");

  drift_ppm_.assign(node_count, 0.0);
  jitter_steps_.resize(node_count);
  down_.resize(node_count);
  ge_bad_.resize(node_count);
  loss_rng_.reserve(node_count);

  const Duration span = horizon - Time::zero();
  const std::size_t jitter_count =
      config_.drift_jitter_stddev_s > 0.0 && config_.drift_jitter_interval > Duration::zero()
          ? static_cast<std::size_t>(
                std::max<std::int64_t>(0, span.divide_floor(config_.drift_jitter_interval)))
          : 0;
  const std::size_t ge_steps =
      config_.ge_p_bad > 0.0 && config_.ge_step > Duration::zero()
          ? static_cast<std::size_t>(
                std::max<std::int64_t>(0, span.divide_ceil(config_.ge_step)))
          : 0;

  for (std::size_t i = 0; i < node_count; ++i) {
    if (config_.drift_ppm_stddev > 0.0) {
      Rng drift_rng = root.fork(kDriftStream + i);
      drift_ppm_[i] = drift_rng.normal(0.0, config_.drift_ppm_stddev);
    }
    if (jitter_count > 0) {
      Rng jitter_rng = root.fork(kJitterStream + i);
      jitter_steps_[i].reserve(jitter_count);
      for (std::size_t k = 0; k < jitter_count; ++k) {
        jitter_steps_[i].push_back(
            Duration::from_seconds(jitter_rng.normal(0.0, config_.drift_jitter_stddev_s)));
      }
    }

    std::vector<TimeInterval> down;
    if (config_.outage_rate_per_hour > 0.0) {
      Rng outage_rng = root.fork(kOutageStream + i);
      down = draw_on_off(config_.outage_rate_per_hour, config_.outage_mean_duration, horizon,
                         outage_rng);
    }
    if (config_.duty_cycle < 1.0 && config_.duty_cycle >= 0.0 &&
        config_.duty_period > Duration::zero()) {
      Rng duty_rng = root.fork(kDutyStream + i);
      const Duration sleep = Duration::from_seconds(
          (1.0 - config_.duty_cycle) * config_.duty_period.to_seconds());
      const Duration phase =
          Duration::from_seconds(duty_rng.uniform(0.0, config_.duty_period.to_seconds()));
      for (Time t = Time::zero() + phase; t < horizon; t += config_.duty_period) {
        down.push_back(TimeInterval{t, std::min(t + sleep, horizon)});
      }
    }
    down_[i] = normalize(std::move(down));

    if (ge_steps > 0) {
      Rng ge_rng = root.fork(kGeStream + i);
      bool bad = false;
      Time bad_since{};
      std::vector<TimeInterval> bursts;
      for (std::size_t k = 0; k < ge_steps; ++k) {
        const Time step_start = Time::zero() + config_.ge_step * static_cast<std::int64_t>(k);
        const bool flip = ge_rng.bernoulli(bad ? config_.ge_p_good : config_.ge_p_bad);
        if (flip) {
          if (bad) {
            bursts.push_back(TimeInterval{bad_since, step_start});
          } else {
            bad_since = step_start;
          }
          bad = !bad;
        }
      }
      if (bad) bursts.push_back(TimeInterval{bad_since, horizon});
      ge_bad_[i] = normalize(std::move(bursts));
    }

    loss_rng_.push_back(root.fork(kLossStream + i));
  }

  if (config_.storm_rate_per_hour > 0.0) {
    Rng storm_rng = root.fork(kStormStream);
    storms_ = normalize(draw_on_off(config_.storm_rate_per_hour, config_.storm_mean_duration,
                                    horizon, storm_rng));
  }
}

double FaultPlan::drift_ppm(NodeId node) const { return drift_ppm_.at(node); }

const std::vector<Duration>& FaultPlan::jitter_steps(NodeId node) const {
  return jitter_steps_.at(node);
}

const std::vector<TimeInterval>& FaultPlan::down_intervals(NodeId node) const {
  return down_.at(node);
}

const std::vector<TimeInterval>& FaultPlan::ge_bad_intervals(NodeId node) const {
  return ge_bad_.at(node);
}

bool FaultPlan::arrival_lost(NodeId receiver, Time at) {
  Rng& rng = loss_rng_.at(receiver);
  bool lost = false;
  // Always one draw per enabled process, whatever the current state: the
  // stream position stays a pure function of this receiver's arrival
  // count, never of which states the chain happened to visit.
  if (config_.ge_p_bad > 0.0 && config_.ge_step > Duration::zero()) {
    const bool bad = interval_set_contains(ge_bad_[receiver], at);
    const double p = bad ? config_.ge_loss_bad : config_.ge_loss_good;
    if (rng.bernoulli(p)) lost = true;
  }
  if (config_.storm_rate_per_hour > 0.0) {
    const bool in_storm = interval_set_contains(storms_, at);
    const double p = in_storm ? config_.storm_loss_prob : 0.0;
    if (rng.bernoulli(p)) lost = true;
  }
  return lost;
}

std::pair<Duration, Duration> FaultPlan::clock_error_range(NodeId node) const {
  // error(t) = drift_ppm * 1e-6 * t + sum(jitter steps applied by t):
  // piecewise linear, so the extremes sit at segment endpoints. Evaluate
  // with the exact formula/quantization the modem uses.
  const double rate = drift_ppm_.at(node) * 1e-6;
  const auto drift_at = [rate](Time t) {
    return Duration::from_seconds(rate * t.to_seconds());
  };
  const std::vector<Duration>& steps = jitter_steps_.at(node);
  const Duration interval = config_.drift_jitter_interval;

  Duration lo = Duration::zero();
  Duration hi = Duration::zero();
  Duration accumulated = Duration::zero();
  Time segment_begin = Time::zero();
  const auto visit = [&](Time t) {
    const Duration err = accumulated + drift_at(t);
    lo = std::min(lo, err);
    hi = std::max(hi, err);
  };
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const Time segment_end = Time::zero() + interval * static_cast<std::int64_t>(k + 1);
    visit(segment_begin);
    visit(std::min(segment_end, horizon_));
    // A step landing exactly on the horizon still counts: an event at
    // t == horizon can fire before the run ends, so keep the bound
    // conservative and apply it.
    if (segment_end > horizon_) return {lo, hi};
    accumulated += steps[k];
    segment_begin = segment_end;
  }
  visit(segment_begin);
  visit(horizon_);
  return {lo, hi};
}

void FaultPlan::save_state(StateWriter& writer) const {
  writer.write_u64(loss_rng_.size());
  for (const Rng& rng : loss_rng_) {
    for (const std::uint64_t word : rng.state()) writer.write_u64(word);
  }
}

void FaultPlan::restore_state(StateReader& reader) {
  const std::uint64_t count = reader.read_u64();
  if (count != loss_rng_.size()) {
    throw CheckpointError("fault-plan loss-stream count mismatch on restore");
  }
  for (Rng& rng : loss_rng_) {
    Rng::State words{};
    for (std::uint64_t& word : words) word = reader.read_u64();
    rng.set_state(words);
  }
}

}  // namespace aquamac

#pragma once
// Deterministic fault-injection plan.
//
// A FaultPlan is a precomputed, seeded schedule of time-varying faults for
// one run: per-node clock drift (a ppm rate plus a random-walk jitter on
// top of the static offset of ScenarioConfig::clock_offset_stddev_s),
// node outage / duty-cycle windows (the modem refuses TX/RX while down;
// the MAC resets and re-learns on rejoin), and channel impairments
// (per-receiver Gilbert-Elliott burst loss and network-wide noise
// storms). Everything is realized at construction from (FaultConfig,
// node_count, horizon, seed) with dedicated RNG stream ids, so:
//   * the same (config, seed) always yields the same fault timeline,
//   * adding faults never perturbs any other subsystem's random stream,
//   * with every knob at zero the plan is never even constructed and runs
//     are bit-identical to a build without this subsystem, and
//   * the harness (auditor tolerance, guard-slack sizing) can replicate
//     the exact realization the Network will see.
//
// The only mutable call is arrival_lost(): it consumes the receiver's
// loss stream once per query in arrival order, which is deterministic
// because each modem finishes its arrivals in simulation-time order.

#include <cstdint>
#include <utility>
#include <vector>

#include "phy/frame.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace aquamac {

struct FaultConfig {
  // --- clock drift (on top of the static offset) ----------------------
  /// Per-node drift rate ~ normal(0, stddev) in parts per million.
  double drift_ppm_stddev{0.0};
  /// Random-walk jitter: every jitter interval each node's offset takes a
  /// normal(0, stddev) step (oscillator phase noise, temperature).
  double drift_jitter_stddev_s{0.0};
  Duration drift_jitter_interval{Duration::seconds(10)};

  // --- node outages / duty cycling ------------------------------------
  /// Per-node Poisson outage arrivals (battery brownout, fouling).
  double outage_rate_per_hour{0.0};
  Duration outage_mean_duration{Duration::seconds(20)};
  /// Fraction of each duty period the node is awake; 1 = always on. The
  /// sleep window's phase is drawn per node so the fleet never sleeps in
  /// lockstep.
  double duty_cycle{1.0};
  Duration duty_period{Duration::seconds(60)};

  // --- channel impairments --------------------------------------------
  /// Gilbert-Elliott burst loss: a two-state Markov chain per receiver,
  /// stepped every ge_step; decodable arrivals are lost with the state's
  /// loss probability. Stationary bad fraction = p_bad / (p_bad + p_good).
  double ge_p_bad{0.0};   ///< P(good -> bad) per step
  double ge_p_good{0.3};  ///< P(bad -> good) per step
  double ge_loss_bad{0.9};
  double ge_loss_good{0.0};
  Duration ge_step{Duration::milliseconds(100)};
  /// Transient noise storms (trawler pass, rain cell): network-wide
  /// Poisson arrivals with exponential durations; every decodable arrival
  /// during a storm is lost with storm_loss_prob.
  double storm_rate_per_hour{0.0};
  Duration storm_mean_duration{Duration::seconds(5)};
  double storm_loss_prob{1.0};

  [[nodiscard]] bool drift_enabled() const {
    return drift_ppm_stddev > 0.0 || drift_jitter_stddev_s > 0.0;
  }
  [[nodiscard]] bool outages_enabled() const {
    return outage_rate_per_hour > 0.0 ||
           (duty_cycle < 1.0 && duty_cycle >= 0.0 && duty_period > Duration::zero());
  }
  [[nodiscard]] bool channel_enabled() const {
    return (ge_p_bad > 0.0 && ge_loss_bad > 0.0) || storm_rate_per_hour > 0.0;
  }
  /// False for a default-constructed config: the strict no-op guarantee.
  [[nodiscard]] bool enabled() const {
    return drift_enabled() || outages_enabled() || channel_enabled();
  }
};

class FaultPlan {
 public:
  /// Realizes the full fault timeline over [0, horizon). `root` is the
  /// run's root RNG (Rng{seed}); fork() is const, so construction never
  /// advances it.
  FaultPlan(const FaultConfig& config, std::size_t node_count, Time horizon, const Rng& root);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] Time horizon() const { return horizon_; }
  [[nodiscard]] bool channel_impairment_enabled() const {
    return config_.channel_enabled();
  }

  /// Drift rate of `node` in ppm (0 when drift is disabled).
  [[nodiscard]] double drift_ppm(NodeId node) const;
  /// Jitter steps of `node`; step k is applied at (k+1) * jitter interval.
  [[nodiscard]] const std::vector<Duration>& jitter_steps(NodeId node) const;
  /// Merged, sorted down-time (outage + duty sleep) windows of `node`.
  [[nodiscard]] const std::vector<TimeInterval>& down_intervals(NodeId node) const;
  /// Sorted bad-state windows of `node`'s Gilbert-Elliott chain.
  [[nodiscard]] const std::vector<TimeInterval>& ge_bad_intervals(NodeId node) const;
  /// Sorted network-wide storm windows.
  [[nodiscard]] const std::vector<TimeInterval>& storms() const { return storms_; }

  /// Whether the channel impairments kill an otherwise-decodable arrival
  /// beginning at `at` for `receiver`. Consumes the receiver's loss
  /// stream once per query (a fixed number of draws regardless of chain
  /// state, so the stream alignment is a pure function of arrival order).
  [[nodiscard]] bool arrival_lost(NodeId receiver, Time at);

  /// Checkpoint encoding. The realized timeline is a pure function of
  /// (config, node_count, horizon, seed) and is rebuilt by the resume
  /// path; only the per-receiver loss streams advance during a run, so
  /// they are the whole of the mutable state.
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

  /// Exact [min, max] of this node's drift + jitter clock-error over
  /// [0, horizon], in the same quantization the modem applies (static
  /// offsets are the caller's to add). The error is piecewise linear in
  /// time, so the extremes sit on jitter-segment endpoints.
  [[nodiscard]] std::pair<Duration, Duration> clock_error_range(NodeId node) const;

 private:
  // Everything below except loss_rng_ is the precomputed plan: the
  // constructor rebuilds it deterministically from (config, node_count,
  // horizon, seed), so checkpoints carry only the live loss streams.
  FaultConfig config_;       // lint: ckpt-skip(precomputed plan, ctor rebuilds)
  std::size_t node_count_;   // lint: ckpt-skip(precomputed plan, ctor rebuilds)
  Time horizon_;             // lint: ckpt-skip(precomputed plan, ctor rebuilds)

  std::vector<double> drift_ppm_;  // lint: ckpt-skip(precomputed plan, ctor rebuilds)
  std::vector<std::vector<Duration>> jitter_steps_;  // lint: ckpt-skip(precomputed plan)
  std::vector<std::vector<TimeInterval>> down_;      // lint: ckpt-skip(precomputed plan)
  std::vector<std::vector<TimeInterval>> ge_bad_;    // lint: ckpt-skip(precomputed plan)
  std::vector<TimeInterval> storms_;                 // lint: ckpt-skip(precomputed plan)
  std::vector<Rng> loss_rng_;
};

/// True when `t` lies inside one of the sorted, disjoint `intervals`.
[[nodiscard]] bool interval_set_contains(const std::vector<TimeInterval>& intervals, Time t);

}  // namespace aquamac

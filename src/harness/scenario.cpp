#include "harness/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

namespace aquamac {

namespace {

/// Density-preserving region sizing for the scale scenarios: the
/// paper-default region (60 nodes in 2.25^3 km^3, ~5.3 nodes/km^3) packs
/// ~74 neighbours into the 1.5 km interference sphere — contention, not
/// scale, dominates there. The scale sweeps instead fix ~0.85 nodes/km^3
/// (~12 expected neighbours in the comm sphere), so candidate sets stay
/// O(1) while total N grows and the spatial index has something to prune.
constexpr double kScaleDensityPerKm3 = 0.849;

ScenarioConfig scale_scenario_base(std::size_t node_count, std::uint64_t seed) {
  ScenarioConfig config = paper_default_scenario();
  config.node_count = node_count;
  config.seed = seed;
  config.sim_time = Duration::seconds(60);
  config.hello_window = Duration::seconds(10);

  const double volume_km3 = static_cast<double>(node_count) / kScaleDensityPerKm3;
  const double side_m = std::cbrt(volume_km3) * 1'000.0;
  config.deployment.width_m = side_m;
  config.deployment.length_m = side_m;
  config.deployment.depth_m = side_m;

  // Constant per-node offered load (~0.2 kbps each): aggregate load grows
  // with N so large runs are busy, not idle.
  config.traffic.offered_load_kbps = 0.2 * static_cast<double>(node_count);

  // The refracting channel the paper's own evaluation ran on (via
  // Bellhop). Its eigenray solve is the expensive per-pair operation that
  // mobility keeps invalidating, which is what receiver pruning is for.
  config.propagation = PropagationKind::kBellhopLite;

  config.enable_mobility = true;
  return config;
}

}  // namespace

ScenarioConfig paper_default_scenario() {
  ScenarioConfig config{};
  config.mac = MacKind::kEwMac;
  config.node_count = 60;
  config.seed = 1;
  config.sim_time = Duration::seconds(300);
  config.hello_window = Duration::seconds(10);

  config.channel.comm_range_m = 1'500.0;
  config.channel.interference_range_m = 1'500.0;
  config.channel.freq_khz = 10.0;
  config.channel.bandwidth_hz = 12'000.0;
  config.bit_rate_bps = 12'000.0;
  config.sound_speed_mps = 1'500.0;

  // Region scaled from Table 2's 1000 km^3 so that the 1.5 km acoustic
  // range produces the paper's contention regime (S-FAMA saturating near
  // 0.2-0.3 kbps); see DESIGN.md §5 and bench_table2_parameters.
  config.deployment.kind = DeploymentKind::kUniformBox;
  config.deployment.width_m = 2'250.0;
  config.deployment.length_m = 2'250.0;
  config.deployment.depth_m = 2'250.0;

  config.enable_mobility = true;
  config.mobility.speed_mps = 0.3;

  config.mac_config.control_bits = 64;
  // Saturation should be queue-limited, not drop-limited: a generous
  // retry budget keeps backlogged packets alive so throughput plateaus
  // at capacity instead of collapsing (the paper's Fig. 6 curves).
  config.mac_config.max_retries = 15;
  config.mac_config.cw_max_slots = 64;
  config.traffic.mode = TrafficMode::kPoisson;
  config.traffic.offered_load_kbps = 0.5;
  config.traffic.packet_bits_min = 2'048;
  config.traffic.packet_bits_max = 2'048;
  return config;
}

ScenarioConfig table2_literal_scenario() {
  ScenarioConfig config = paper_default_scenario();
  config.deployment = table2_deployment();
  return config;
}

ScenarioConfig small_test_scenario() {
  ScenarioConfig config = paper_default_scenario();
  config.node_count = 12;
  config.sim_time = Duration::seconds(60);
  config.hello_window = Duration::seconds(5);
  config.deployment.kind = DeploymentKind::kGrid;
  config.deployment.width_m = 2'000.0;
  config.deployment.length_m = 2'000.0;
  config.deployment.depth_m = 2'000.0;
  config.deployment.jitter_m = 100.0;
  config.enable_mobility = false;
  config.traffic.offered_load_kbps = 0.3;
  return config;
}

ScenarioConfig grid3d_scenario(std::size_t node_count, std::uint64_t seed) {
  ScenarioConfig config = scale_scenario_base(node_count, seed);
  config.deployment.kind = DeploymentKind::kGrid;
  config.deployment.jitter_m = 100.0;
  return config;
}

ScenarioConfig random_volume_scenario(std::size_t node_count, std::uint64_t seed) {
  ScenarioConfig config = scale_scenario_base(node_count, seed);
  config.deployment.kind = DeploymentKind::kUniformBox;
  return config;
}

InvariantAuditor::Config auditor_config_for(const ScenarioConfig& config) {
  InvariantAuditor::Config audit{};
  // Replicate the Network constructor's tau_max derivation: the MacConfig
  // default (1 s) means "derive from comm range".
  Duration tau_max = config.mac_config.tau_max;
  if (tau_max == Duration::seconds(1)) {
    tau_max = Duration::from_seconds(config.channel.comm_range_m / config.sound_speed_mps);
  }
  audit.tau_max = tau_max;
  // omega is the airtime of a control frame (EW-MAC and S-FAMA ship no
  // physical piggyback, so control_bits alone size the slot).
  audit.omega = Duration::from_seconds(
      static_cast<double>(config.mac_config.control_bits + config.mac_config.piggyback_bits) /
      config.bit_rate_bps);
  audit.slot_length = audit.omega + tau_max;
  audit.slotted = config.mac == MacKind::kEwMac || config.mac == MacKind::kSFama;
  // Perfect synchronization (§3.1) admits exact checks; with clock
  // imperfection enabled, measured delays absorb the *difference* of the
  // two endpoints' errors, so the tolerance is the exact worst-case
  // spread this (seed, fault plan) realizes — not a fixed multiplier
  // that could false-alarm on an unlucky draw or mask a real violation.
  audit.sync_tolerance = realized_clock_uncertainty(config);
  // A node returning from an outage needs about one full exchange to
  // re-learn delays before the invariants apply to it again.
  audit.rejoin_grace = 2 * (audit.slot_length + audit.tau_max);
  // Routing checks stay quiet through a DV re-convergence wave: triggered
  // updates are rate-limited to one per 2 s per node plus up to 1 s of
  // jitter, and packets already in flight need a few hop cycles to drain.
  audit.route_grace = Duration::seconds(5) + 4 * (audit.slot_length + audit.tau_max);
  // Reliability checks (duplicate sink delivery, retry bound) bind only
  // when the scenario runs the custody/ARQ layer.
  audit.custody_retry_bound = config.reliability.max_retries;
  return audit;
}

Duration realized_clock_uncertainty(const ScenarioConfig& config) {
  const bool has_offset = config.clock_offset_stddev_s > 0.0;
  const bool has_drift = config.fault.drift_enabled();
  if (!has_offset && !has_drift) return Duration::zero();

  // Replicate the Network's exact realization: static offsets come from
  // Rng{seed}.fork(0xC10C0 + i) (drawn only when the stddev is positive),
  // drift/jitter from the FaultPlan's dedicated streams. fork() is const,
  // so this replication can never perturb the run it describes.
  // aquamac-lint: allow(rng-root) -- replica of the Network's per-run root stream (same seed)
  const Rng root{config.seed};
  const Time horizon = Time::zero() + config.hello_window + config.sim_time;
  std::optional<FaultPlan> plan;
  if (has_drift) plan.emplace(config.fault, config.node_count, horizon, root);

  Duration lo_all = Duration::zero();
  Duration hi_all = Duration::zero();
  for (std::size_t i = 0; i < config.node_count; ++i) {
    Duration offset{};
    if (has_offset) {
      Rng clock_rng = root.fork(0xC10C0 + i);
      offset = Duration::from_seconds(clock_rng.normal(0.0, config.clock_offset_stddev_s));
    }
    Duration lo = offset;
    Duration hi = offset;
    if (plan) {
      const auto [drift_lo, drift_hi] = plan->clock_error_range(static_cast<NodeId>(i));
      lo += drift_lo;
      hi += drift_hi;
    }
    if (i == 0) {
      lo_all = lo;
      hi_all = hi;
    } else {
      lo_all = std::min(lo_all, lo);
      hi_all = std::max(hi_all, hi);
    }
  }
  // A pair's measured-delay error is bounded by the spread of the two
  // endpoint errors; the microsecond margin absorbs the integer-ns
  // quantization of the replicated arithmetic.
  return (hi_all - lo_all) + Duration::microseconds(1);
}

std::string describe_scenario(const ScenarioConfig& config) {
  std::ostringstream os;
  os << "Parameter                      Value\n";
  os << "-----------------------------------------------\n";
  os << "MAC protocol                   " << to_string(config.mac) << "\n";
  os << "Number of sensors              " << config.node_count << "\n";
  os << "Deployment area                " << config.deployment.width_m / 1000.0 << " x "
     << config.deployment.length_m / 1000.0 << " x " << config.deployment.depth_m / 1000.0
     << " km\n";
  os << "Bandwidth                      " << config.bit_rate_bps / 1000.0 << " kbps\n";
  os << "Communication range            " << config.channel.comm_range_m / 1000.0 << " km\n";
  os << "Acoustic transmission speed    " << config.sound_speed_mps / 1000.0 << " km/s\n";
  os << "Simulation time                " << config.sim_time.to_seconds() << " s\n";
  os << "Control packet size            " << config.mac_config.control_bits << " bits\n";
  os << "Data packet size               " << config.traffic.packet_bits_min;
  if (config.traffic.packet_bits_max != config.traffic.packet_bits_min) {
    os << "-" << config.traffic.packet_bits_max;
  }
  os << " bits\n";
  os << "Offered load                   " << config.traffic.offered_load_kbps << " kbps\n";
  os << "Mobility                       " << (config.enable_mobility ? "on" : "off") << "\n";
  return os.str();
}

}  // namespace aquamac

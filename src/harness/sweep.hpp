#pragma once
// Protocol x parameter sweeps: the engine behind every figure bench.
//
// A sweep takes a base scenario, a list of protocols, a list of x-axis
// values and a setter that applies an x value to a ScenarioConfig; it
// returns one MeanStats per (protocol, x), averaged over seed
// replications. Benches select the metric column and print the same
// series the corresponding paper figure plots.

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "harness/runner.hpp"
#include "util/table.hpp"

namespace aquamac {

using ConfigSetter = std::function<void(ScenarioConfig&, double)>;

struct SweepResult {
  std::vector<double> xs;
  std::vector<MacKind> protocols;
  /// series[protocol][i] corresponds to xs[i].
  std::map<MacKind, std::vector<MeanStats>> series;
  /// Raw replicated runs behind each mean (same indexing), for spread
  /// reporting and custom post-processing.
  std::map<MacKind, std::vector<std::vector<RunStats>>> raw;

  // --- wall-clock accounting (BENCH_*.json) --------------------------
  double wall_s{0.0};         ///< end-to-end sweep wall time
  unsigned jobs_used{1};      ///< resolved worker count the sweep ran with
  unsigned replications{0};   ///< seeds per (protocol, x) cell
  /// Summed per-run wall seconds per (protocol, x) cell (same indexing
  /// as series). Under parallel execution this is compute cost, not
  /// elapsed time; the cells sum to ~wall_s * jobs_used at saturation.
  std::map<MacKind, std::vector<double>> cell_wall_s;

  [[nodiscard]] std::size_t total_runs() const {
    return protocols.size() * xs.size() * replications;
  }
  [[nodiscard]] const MeanStats& at(MacKind kind, std::size_t i) const {
    return series.at(kind).at(i);
  }
  [[nodiscard]] const std::vector<RunStats>& runs_at(MacKind kind, std::size_t i) const {
    return raw.at(kind).at(i);
  }
};

/// Runs the full (protocol, x, seed) cross product, fanned across
/// base.jobs worker threads (every run is an independent Simulator +
/// Network + RNG, so results are bit-identical for any jobs value;
/// jobs = 1 is the plain serial loop). A base carrying a shared
/// TraceSink is fed the per-run traces merged by (sim time, task index)
/// after the join — the same bit-identical stream for every jobs value.
[[nodiscard]] SweepResult run_sweep(const ScenarioConfig& base,
                                    std::span<const MacKind> protocols,
                                    std::span<const double> xs, const ConfigSetter& setter,
                                    unsigned replications);

/// run_sweep with a warm-started prefix (docs/checkpoint.md): one
/// checkpoint per (protocol, seed) is captured 1 ns before traffic
/// starts, and every (protocol, x, seed) run resumes from it — replayed
/// and digest-verified, so the sweep additionally *proves* that all x
/// cells of a (protocol, seed) pair share a byte-identical discovery
/// prefix. Results are bit-identical to run_sweep. Requires the swept
/// knob not to act before traffic start: Poisson traffic knobs qualify
/// (sources draw nothing until their first event); batch-workload knobs
/// do not (arrival staggers are drawn at construction) and fail the
/// resume verification with a CheckpointError rather than skewing data.
[[nodiscard]] SweepResult run_sweep_warm(const ScenarioConfig& base,
                                         std::span<const MacKind> protocols,
                                         std::span<const double> xs, const ConfigSetter& setter,
                                         unsigned replications);

/// Renders one metric of a sweep as a table: first column the x value,
/// one column per protocol.
using MetricFn = std::function<double(const MeanStats&)>;
[[nodiscard]] Table sweep_table(const SweepResult& sweep, const std::string& x_name,
                                const MetricFn& metric, int precision = 4);

/// Same, but each protocol's value is divided by the S-FAMA value at the
/// same x (Figs. 10 and 11 normalize to S-FAMA = 1). Throws
/// std::invalid_argument if the sweep did not include the S-FAMA
/// baseline — normalizing against a missing series would print
/// meaningless numbers.
[[nodiscard]] Table sweep_table_normalized(const SweepResult& sweep, const std::string& x_name,
                                           const MetricFn& metric, int precision = 4);

/// Per-cell "mean +- stddev" across the seed replications, for judging
/// whether a figure's gaps exceed run-to-run noise.
[[nodiscard]] Table sweep_table_with_spread(const SweepResult& sweep,
                                            const std::string& x_name,
                                            const RunMetricFn& metric, int precision = 4);

}  // namespace aquamac

#include "harness/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "stats/trace.hpp"
#include "util/thread_pool.hpp"

namespace aquamac {

Spread spread_of(const std::vector<RunStats>& runs, const RunMetricFn& metric) {
  Spread spread{};
  if (runs.empty()) return spread;
  spread.min = metric(runs.front());
  spread.max = spread.min;
  for (const RunStats& run : runs) {
    const double v = metric(run);
    spread.mean += v;
    spread.min = std::min(spread.min, v);
    spread.max = std::max(spread.max, v);
  }
  spread.mean /= static_cast<double>(runs.size());
  if (runs.size() > 1) {
    double ss = 0.0;
    for (const RunStats& run : runs) {
      const double d = metric(run) - spread.mean;
      ss += d * d;
    }
    spread.stddev = std::sqrt(ss / static_cast<double>(runs.size() - 1));
  }
  return spread;
}

RunStats run_scenario(const ScenarioConfig& config) {
  Simulator sim{config.logger};
  Network network{sim, config};
  return network.run();
}

std::vector<RunStats> run_replicated(const ScenarioConfig& base, unsigned replications) {
  return run_replicated_parallel(base, replications, base.jobs);
}

std::vector<RunStats> run_replicated_parallel(const ScenarioConfig& base,
                                              unsigned replications, unsigned jobs) {
  const unsigned workers = resolve_jobs(jobs);

  // A shared trace sink is the one piece of state the per-run isolation
  // does not cover. Instead of forcing the harness serial, each run
  // records into its own buffer and the buffers are merged after the
  // join — the same path for every jobs value, so the merged stream is
  // bit-identical whether the runs executed serially or in parallel.
  std::vector<std::unique_ptr<MemoryTrace>> buffers;
  if (base.trace != nullptr) {
    const TraceSinkFactory factory = memory_trace_factory();
    buffers.reserve(replications);
    for (unsigned k = 0; k < replications; ++k) buffers.push_back(factory(k));
  }

  std::vector<RunStats> runs(replications);
  parallel_for(workers, replications, [&](std::size_t k) {
    ScenarioConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(k);
    if (!buffers.empty()) config.trace = buffers[k].get();
    runs[k] = run_scenario(config);
  });

  if (base.trace != nullptr) merge_traces(buffers, *base.trace);
  return runs;
}

MeanStats mean_of(const std::vector<RunStats>& runs) {
  MeanStats mean{};
  if (runs.empty()) return mean;
  for (const RunStats& run : runs) {
    mean.throughput_kbps += run.throughput_kbps;
    mean.delivery_ratio += run.delivery_ratio;
    mean.mean_power_mw += run.mean_power_mw;
    mean.total_energy_j += run.total_energy_j;
    mean.bits_delivered += static_cast<double>(run.bits_delivered);
    mean.elapsed_s += run.elapsed_s;
    mean.node_count += static_cast<double>(run.node_count);
    mean.overhead_bits += run.overhead_bits();
    mean.efficiency_raw += run.efficiency_raw();
    mean.execution_time_s += run.execution_time_s;
    mean.mean_latency_s += run.mean_latency_s;
    mean.extra_successes += static_cast<double>(run.extra_successes);
    mean.rx_collisions += static_cast<double>(run.rx_collisions);
    mean.fairness_index += run.fairness_index;
    mean.e2e_delivery_ratio += run.e2e_delivery_ratio;
    mean.mean_hops += run.mean_hops;
    mean.mean_e2e_latency_s += run.mean_e2e_latency_s;
  }
  const double n = static_cast<double>(runs.size());
  mean.throughput_kbps /= n;
  mean.delivery_ratio /= n;
  mean.mean_power_mw /= n;
  mean.total_energy_j /= n;
  mean.bits_delivered /= n;
  mean.elapsed_s /= n;
  mean.node_count /= n;
  mean.overhead_bits /= n;
  mean.efficiency_raw /= n;
  mean.execution_time_s /= n;
  mean.mean_latency_s /= n;
  mean.extra_successes /= n;
  mean.rx_collisions /= n;
  mean.fairness_index /= n;
  mean.e2e_delivery_ratio /= n;
  mean.mean_hops /= n;
  mean.mean_e2e_latency_s /= n;
  return mean;
}

}  // namespace aquamac

#include "harness/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "stats/trace.hpp"
#include "util/thread_pool.hpp"

namespace aquamac {

Spread spread_of(const std::vector<RunStats>& runs, const RunMetricFn& metric) {
  Spread spread{};
  if (runs.empty()) return spread;
  spread.min = metric(runs.front());
  spread.max = spread.min;
  for (const RunStats& run : runs) {
    const double v = metric(run);
    spread.mean += v;
    spread.min = std::min(spread.min, v);
    spread.max = std::max(spread.max, v);
  }
  spread.mean /= static_cast<double>(runs.size());
  if (runs.size() > 1) {
    double ss = 0.0;
    for (const RunStats& run : runs) {
      const double d = metric(run) - spread.mean;
      ss += d * d;
    }
    spread.stddev = std::sqrt(ss / static_cast<double>(runs.size() - 1));
  }
  return spread;
}

RunStats run_scenario(const ScenarioConfig& config) {
  Simulator sim{config.logger};
  Network network{sim, config};
  return network.run();
}

std::vector<RunStats> run_replicated(const ScenarioConfig& base, unsigned replications) {
  return run_replicated_parallel(base, replications, base.jobs);
}

std::vector<RunStats> run_replicated_parallel(const ScenarioConfig& base,
                                              unsigned replications, unsigned jobs) {
  const unsigned workers = resolve_jobs(jobs);

  // A shared trace sink is the one piece of state the per-run isolation
  // does not cover. Instead of forcing the harness serial, each run
  // records into its own buffer and the buffers are merged after the
  // join — the same path for every jobs value, so the merged stream is
  // bit-identical whether the runs executed serially or in parallel.
  std::vector<std::unique_ptr<MemoryTrace>> buffers;
  if (base.trace != nullptr) {
    const TraceSinkFactory factory = memory_trace_factory();
    buffers.reserve(replications);
    for (unsigned k = 0; k < replications; ++k) buffers.push_back(factory(k));
  }

  std::vector<RunStats> runs(replications);
  parallel_for(workers, replications, [&](std::size_t k) {
    ScenarioConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(k);
    if (!buffers.empty()) config.trace = buffers[k].get();
    runs[k] = run_scenario(config);
  });

  if (base.trace != nullptr) merge_traces(buffers, *base.trace);
  return runs;
}

// lint: stats-site(RunStats)
MeanStats mean_of(const std::vector<RunStats>& runs) {
  MeanStats mean{};
  if (runs.empty()) return mean;
  for (const RunStats& run : runs) {
    mean.throughput_kbps += run.throughput_kbps;
    mean.delivery_ratio += run.delivery_ratio;
    mean.mean_power_mw += run.mean_power_mw;
    mean.total_energy_j += run.total_energy_j;
    mean.bits_delivered += static_cast<double>(run.bits_delivered);
    mean.elapsed_s += run.elapsed_s;
    mean.node_count += static_cast<double>(run.node_count);
    mean.overhead_bits += run.overhead_bits();
    mean.efficiency_raw += run.efficiency_raw();
    mean.execution_time_s += run.execution_time_s;
    mean.mean_latency_s += run.mean_latency_s;
    mean.extra_successes += static_cast<double>(run.extra_successes);
    mean.rx_collisions += static_cast<double>(run.rx_collisions);
    mean.fairness_index += run.fairness_index;
    mean.e2e_delivery_ratio += run.e2e_delivery_ratio;
    mean.mean_hops += run.mean_hops;
    mean.mean_e2e_latency_s += run.mean_e2e_latency_s;
    mean.traffic_duration_s += run.traffic_duration_s;
    mean.packets_offered += static_cast<double>(run.packets_offered);
    mean.packets_delivered += static_cast<double>(run.packets_delivered);
    mean.packets_dropped += static_cast<double>(run.packets_dropped);
    mean.duplicate_deliveries += static_cast<double>(run.duplicate_deliveries);
    mean.bits_offered += static_cast<double>(run.bits_offered);
    mean.offered_load_kbps += run.offered_load_kbps;
    mean.control_bits += static_cast<double>(run.control_bits);
    mean.maintenance_bits += static_cast<double>(run.maintenance_bits);
    mean.retransmitted_bits += static_cast<double>(run.retransmitted_bits);
    mean.piggyback_bits += static_cast<double>(run.piggyback_bits);
    mean.total_bits_sent += static_cast<double>(run.total_bits_sent);
    mean.handshake_attempts += static_cast<double>(run.handshake_attempts);
    mean.handshake_successes += static_cast<double>(run.handshake_successes);
    mean.contention_losses += static_cast<double>(run.contention_losses);
    mean.extra_attempts += static_cast<double>(run.extra_attempts);
    mean.e2e_originated += static_cast<double>(run.e2e_originated);
    mean.e2e_arrived_at_sink += static_cast<double>(run.e2e_arrived_at_sink);
    mean.e2e_forwarded += static_cast<double>(run.e2e_forwarded);
    mean.e2e_dropped_no_route += static_cast<double>(run.e2e_dropped_no_route);
    mean.e2e_dropped_hop_limit += static_cast<double>(run.e2e_dropped_hop_limit);
    mean.e2e_dropped_mac += static_cast<double>(run.e2e_dropped_mac);
    mean.hop_stretch += run.hop_stretch;
    mean.mean_per_hop_latency_s += run.mean_per_hop_latency_s;
    mean.e2e_retransmissions += static_cast<double>(run.e2e_retransmissions);
    mean.e2e_failovers += static_cast<double>(run.e2e_failovers);
    mean.e2e_dead_letter_exhausted += static_cast<double>(run.e2e_dead_letter_exhausted);
    mean.e2e_dead_letter_overflow += static_cast<double>(run.e2e_dead_letter_overflow);
    mean.e2e_dead_letter_no_route += static_cast<double>(run.e2e_dead_letter_no_route);
    mean.e2e_duplicates_suppressed += static_cast<double>(run.e2e_duplicates_suppressed);
    mean.relay_queue_highwater += static_cast<double>(run.relay_queue_highwater);
  }
  const double n = static_cast<double>(runs.size());
  mean.throughput_kbps /= n;
  mean.delivery_ratio /= n;
  mean.mean_power_mw /= n;
  mean.total_energy_j /= n;
  mean.bits_delivered /= n;
  mean.elapsed_s /= n;
  mean.node_count /= n;
  mean.overhead_bits /= n;
  mean.efficiency_raw /= n;
  mean.execution_time_s /= n;
  mean.mean_latency_s /= n;
  mean.extra_successes /= n;
  mean.rx_collisions /= n;
  mean.fairness_index /= n;
  mean.e2e_delivery_ratio /= n;
  mean.mean_hops /= n;
  mean.mean_e2e_latency_s /= n;
  mean.traffic_duration_s /= n;
  mean.packets_offered /= n;
  mean.packets_delivered /= n;
  mean.packets_dropped /= n;
  mean.duplicate_deliveries /= n;
  mean.bits_offered /= n;
  mean.offered_load_kbps /= n;
  mean.control_bits /= n;
  mean.maintenance_bits /= n;
  mean.retransmitted_bits /= n;
  mean.piggyback_bits /= n;
  mean.total_bits_sent /= n;
  mean.handshake_attempts /= n;
  mean.handshake_successes /= n;
  mean.contention_losses /= n;
  mean.extra_attempts /= n;
  mean.e2e_originated /= n;
  mean.e2e_arrived_at_sink /= n;
  mean.e2e_forwarded /= n;
  mean.e2e_dropped_no_route /= n;
  mean.e2e_dropped_hop_limit /= n;
  mean.e2e_dropped_mac /= n;
  mean.hop_stretch /= n;
  mean.mean_per_hop_latency_s /= n;
  mean.e2e_retransmissions /= n;
  mean.e2e_failovers /= n;
  mean.e2e_dead_letter_exhausted /= n;
  mean.e2e_dead_letter_overflow /= n;
  mean.e2e_dead_letter_no_route /= n;
  mean.e2e_duplicates_suppressed /= n;
  mean.relay_queue_highwater /= n;
  return mean;
}

}  // namespace aquamac

#include "harness/sweep.hpp"

namespace aquamac {

SweepResult run_sweep(const ScenarioConfig& base, std::span<const MacKind> protocols,
                      std::span<const double> xs, const ConfigSetter& setter,
                      unsigned replications) {
  SweepResult result{};
  result.xs.assign(xs.begin(), xs.end());
  result.protocols.assign(protocols.begin(), protocols.end());
  for (MacKind kind : protocols) {
    auto& series = result.series[kind];
    auto& raw = result.raw[kind];
    series.reserve(xs.size());
    raw.reserve(xs.size());
    for (double x : xs) {
      ScenarioConfig config = base;
      config.mac = kind;
      setter(config, x);
      raw.push_back(run_replicated(config, replications));
      series.push_back(mean_of(raw.back()));
    }
  }
  return result;
}

Table sweep_table(const SweepResult& sweep, const std::string& x_name, const MetricFn& metric,
                  int precision) {
  std::vector<std::string> headers{x_name};
  for (MacKind kind : sweep.protocols) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t i = 0; i < sweep.xs.size(); ++i) {
    std::vector<double> row{sweep.xs[i]};
    for (MacKind kind : sweep.protocols) row.push_back(metric(sweep.at(kind, i)));
    table.add_row_numeric(row, precision);
  }
  return table;
}

Table sweep_table_with_spread(const SweepResult& sweep, const std::string& x_name,
                              const RunMetricFn& metric, int precision) {
  std::vector<std::string> headers{x_name};
  for (MacKind kind : sweep.protocols) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t i = 0; i < sweep.xs.size(); ++i) {
    std::vector<std::string> row{format_double(sweep.xs[i], precision)};
    for (MacKind kind : sweep.protocols) {
      const Spread spread = spread_of(sweep.runs_at(kind, i), metric);
      row.push_back(format_double(spread.mean, precision) + " +- " +
                    format_double(spread.stddev, precision));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table sweep_table_normalized(const SweepResult& sweep, const std::string& x_name,
                             const MetricFn& metric, int precision) {
  std::vector<std::string> headers{x_name};
  for (MacKind kind : sweep.protocols) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t i = 0; i < sweep.xs.size(); ++i) {
    const double baseline = metric(sweep.at(MacKind::kSFama, i));
    std::vector<double> row{sweep.xs[i]};
    for (MacKind kind : sweep.protocols) {
      const double value = metric(sweep.at(kind, i));
      row.push_back(baseline != 0.0 ? value / baseline : 0.0);
    }
    table.add_row_numeric(row, precision);
  }
  return table;
}

}  // namespace aquamac

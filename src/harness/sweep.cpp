#include "harness/sweep.hpp"

// aquamac-lint: allow-file(wall-clock) -- harness wall-timing for BENCH_*.json / cell_wall_s
// Rationale: steady_clock here measures host wall time around whole runs; it is read outside
// every Simulator and never feeds simulation state, schedules or RNG draws.

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "harness/checkpoint_run.hpp"
#include "stats/trace.hpp"
#include "util/thread_pool.hpp"

namespace aquamac {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

SweepResult run_sweep(const ScenarioConfig& base, std::span<const MacKind> protocols,
                      std::span<const double> xs, const ConfigSetter& setter,
                      unsigned replications) {
  const auto sweep_start = std::chrono::steady_clock::now();

  SweepResult result{};
  result.xs.assign(xs.begin(), xs.end());
  result.protocols.assign(protocols.begin(), protocols.end());
  result.replications = replications;

  const unsigned jobs = resolve_jobs(base.jobs);
  result.jobs_used = jobs;

  // Flatten the (protocol, x, seed) cross product so the pool sees every
  // independent run at once — parallelism is not limited by the seed
  // count of a single cell.
  struct Task {
    std::size_t proto;  ///< index into result.protocols
    std::size_t x;      ///< index into result.xs
    unsigned rep;
  };
  std::vector<Task> tasks;
  tasks.reserve(result.protocols.size() * result.xs.size() * replications);
  for (std::size_t p = 0; p < result.protocols.size(); ++p) {
    for (std::size_t i = 0; i < result.xs.size(); ++i) {
      for (unsigned k = 0; k < replications; ++k) tasks.push_back({p, i, k});
    }
  }

  // A shared trace sink records into per-task buffers merged after the
  // join (ordered by sim time, then flat task index), so the stream a
  // sink sees is bit-identical for every jobs value.
  std::vector<std::unique_ptr<MemoryTrace>> buffers;
  if (base.trace != nullptr) {
    const TraceSinkFactory factory = memory_trace_factory();
    buffers.reserve(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) buffers.push_back(factory(t));
  }

  // Workers write disjoint slots of flat arrays; results are scattered
  // into the per-protocol maps after the join.
  std::vector<RunStats> flat_runs(tasks.size());
  std::vector<double> run_wall_s(tasks.size(), 0.0);

  parallel_for(jobs, tasks.size(), [&](std::size_t t) {
    const Task& task = tasks[t];
    ScenarioConfig config = base;
    config.mac = result.protocols[task.proto];
    setter(config, result.xs[task.x]);
    config.seed = config.seed + task.rep;
    if (!buffers.empty()) config.trace = buffers[t].get();
    const auto run_start = std::chrono::steady_clock::now();
    flat_runs[t] = run_scenario(config);
    run_wall_s[t] = seconds_since(run_start);
  });

  if (base.trace != nullptr) merge_traces(buffers, *base.trace);

  for (MacKind kind : result.protocols) {
    result.raw[kind].assign(result.xs.size(), std::vector<RunStats>(replications));
    result.cell_wall_s[kind].assign(result.xs.size(), 0.0);
  }
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const MacKind kind = result.protocols[tasks[t].proto];
    result.raw[kind][tasks[t].x][tasks[t].rep] = std::move(flat_runs[t]);
    result.cell_wall_s[kind][tasks[t].x] += run_wall_s[t];
  }
  for (MacKind kind : result.protocols) {
    auto& series = result.series[kind];
    series.reserve(result.xs.size());
    for (const std::vector<RunStats>& runs : result.raw[kind]) {
      series.push_back(mean_of(runs));
    }
  }

  result.wall_s = seconds_since(sweep_start);
  return result;
}

SweepResult run_sweep_warm(const ScenarioConfig& base, std::span<const MacKind> protocols,
                           std::span<const double> xs, const ConfigSetter& setter,
                           unsigned replications) {
  const auto sweep_start = std::chrono::steady_clock::now();

  SweepResult result{};
  result.xs.assign(xs.begin(), xs.end());
  result.protocols.assign(protocols.begin(), protocols.end());
  result.replications = replications;

  const unsigned jobs = resolve_jobs(base.jobs);
  result.jobs_used = jobs;

  // Phase 1: one warm prefix per (protocol, seed) — run the hello /
  // discovery phase once with the base knobs and snapshot 1 ns before
  // traffic starts. The snapshot is x-invariant whenever the swept knob
  // acts only after traffic start (see the header comment), which is
  // what resume verification enforces per cell in phase 2.
  const std::size_t warm_count = result.protocols.size() * replications;
  std::vector<Checkpoint> warm(warm_count);
  parallel_for(jobs, warm_count, [&](std::size_t t) {
    ScenarioConfig config = base;
    config.mac = result.protocols[t / replications];
    config.seed = base.seed + (t % replications);
    // The capture run must carry a trace iff the resumed runs do, so
    // the payload's trace section matches; its events are discarded.
    MemoryTrace scratch;
    if (base.trace != nullptr) config.trace = &scratch;
    Simulator sim{config.logger};
    Network network{sim, config};
    RunBoundaryHooks hooks;
    hooks.boundaries = {network.traffic_start() - Duration::nanoseconds(1)};
    hooks.on_boundary = [&](Time boundary) {
      warm[t] = make_checkpoint(network, config, boundary);
      return false;  // prefix captured; skip the traffic phase
    };
    static_cast<void>(network.run(hooks));
  });

  // Phase 2: the full (protocol, x, seed) cross product, each run
  // resumed from its warm prefix. Mirrors run_sweep task for task.
  struct Task {
    std::size_t proto;
    std::size_t x;
    unsigned rep;
  };
  std::vector<Task> tasks;
  tasks.reserve(result.protocols.size() * result.xs.size() * replications);
  for (std::size_t p = 0; p < result.protocols.size(); ++p) {
    for (std::size_t i = 0; i < result.xs.size(); ++i) {
      for (unsigned k = 0; k < replications; ++k) tasks.push_back({p, i, k});
    }
  }

  std::vector<std::unique_ptr<MemoryTrace>> buffers;
  if (base.trace != nullptr) {
    const TraceSinkFactory factory = memory_trace_factory();
    buffers.reserve(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) buffers.push_back(factory(t));
  }

  std::vector<RunStats> flat_runs(tasks.size());
  std::vector<double> run_wall_s(tasks.size(), 0.0);

  parallel_for(jobs, tasks.size(), [&](std::size_t t) {
    const Task& task = tasks[t];
    ScenarioConfig config = base;
    config.mac = result.protocols[task.proto];
    setter(config, result.xs[task.x]);
    config.seed = config.seed + task.rep;
    if (!buffers.empty()) config.trace = buffers[t].get();
    const auto run_start = std::chrono::steady_clock::now();
    flat_runs[t] = resume_scenario_as(warm[task.proto * replications + task.rep], config);
    run_wall_s[t] = seconds_since(run_start);
  });

  if (base.trace != nullptr) merge_traces(buffers, *base.trace);

  for (MacKind kind : result.protocols) {
    result.raw[kind].assign(result.xs.size(), std::vector<RunStats>(replications));
    result.cell_wall_s[kind].assign(result.xs.size(), 0.0);
  }
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const MacKind kind = result.protocols[tasks[t].proto];
    result.raw[kind][tasks[t].x][tasks[t].rep] = std::move(flat_runs[t]);
    result.cell_wall_s[kind][tasks[t].x] += run_wall_s[t];
  }
  for (MacKind kind : result.protocols) {
    auto& series = result.series[kind];
    series.reserve(result.xs.size());
    for (const std::vector<RunStats>& runs : result.raw[kind]) {
      series.push_back(mean_of(runs));
    }
  }

  result.wall_s = seconds_since(sweep_start);
  return result;
}

Table sweep_table(const SweepResult& sweep, const std::string& x_name, const MetricFn& metric,
                  int precision) {
  std::vector<std::string> headers{x_name};
  for (MacKind kind : sweep.protocols) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t i = 0; i < sweep.xs.size(); ++i) {
    std::vector<double> row{sweep.xs[i]};
    for (MacKind kind : sweep.protocols) row.push_back(metric(sweep.at(kind, i)));
    table.add_row_numeric(row, precision);
  }
  return table;
}

Table sweep_table_with_spread(const SweepResult& sweep, const std::string& x_name,
                              const RunMetricFn& metric, int precision) {
  std::vector<std::string> headers{x_name};
  for (MacKind kind : sweep.protocols) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t i = 0; i < sweep.xs.size(); ++i) {
    std::vector<std::string> row{format_double(sweep.xs[i], precision)};
    for (MacKind kind : sweep.protocols) {
      const Spread spread = spread_of(sweep.runs_at(kind, i), metric);
      row.push_back(format_double(spread.mean, precision) + " +- " +
                    format_double(spread.stddev, precision));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table sweep_table_normalized(const SweepResult& sweep, const std::string& x_name,
                             const MetricFn& metric, int precision) {
  if (std::find(sweep.protocols.begin(), sweep.protocols.end(), MacKind::kSFama) ==
      sweep.protocols.end()) {
    throw std::invalid_argument(
        "sweep_table_normalized: the sweep did not include the S-FAMA baseline; "
        "normalized (Fig. 10/11 style) tables divide by the S-FAMA series");
  }
  std::vector<std::string> headers{x_name};
  for (MacKind kind : sweep.protocols) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t i = 0; i < sweep.xs.size(); ++i) {
    const double baseline = metric(sweep.at(MacKind::kSFama, i));
    std::vector<double> row{sweep.xs[i]};
    for (MacKind kind : sweep.protocols) {
      const double value = metric(sweep.at(kind, i));
      row.push_back(baseline != 0.0 ? value / baseline : 0.0);
    }
    table.add_row_numeric(row, precision);
  }
  return table;
}

}  // namespace aquamac

#pragma once
// Checkpointed execution of scenarios: pause a live run at a boundary
// time, snapshot its complete state into a Checkpoint container, persist
// it, and later resume it — bit-identical to a run that never stopped.
// Resume is replay-based and digest-verified: the prefix is re-executed
// from the scenario and the replayed state must byte-match the stored
// payload (Network::verify_restore). See docs/checkpoint.md.

#include <string>

#include "harness/runner.hpp"
#include "sim/checkpoint.hpp"

namespace aquamac {

/// Encodes the complete runtime state of `network` as a checkpoint
/// payload (Network::save_state into a fresh StateWriter). Callable only
/// at a boundary between events — run(RunBoundaryHooks) provides those.
[[nodiscard]] std::string encode_network_state(const Network& network);

/// Builds the checkpoint container for `network` paused at `at`: the
/// exact scenario text (save_scenario of `config`), the boundary time,
/// and the state payload.
[[nodiscard]] Checkpoint make_checkpoint(const Network& network, const ScenarioConfig& config,
                                         Time at);

struct CheckpointedRun {
  RunStats stats;
  Checkpoint checkpoint;
};

/// Runs `config` to the horizon, capturing one checkpoint when the run
/// crosses `at`. Throws CheckpointError if the run never reaches `at`
/// (past the horizon).
[[nodiscard]] CheckpointedRun run_scenario_with_checkpoint(const ScenarioConfig& config,
                                                           Time at);

/// run_scenario with config.checkpoint_every / checkpoint_path honored:
/// at every multiple of the interval the current snapshot is written to
/// checkpoint_path, overwriting the previous one. Falls back to a plain
/// run when either knob is unset.
[[nodiscard]] RunStats run_scenario_checkpointing(const ScenarioConfig& config);

/// Resumes `ckpt` under `config`: replays the prefix to ckpt.at,
/// digest-verifies the replayed state against the stored payload (any
/// divergence is a CheckpointError naming the first differing section),
/// then finishes the run and returns its stats. The caller vouches that
/// `config` reproduces the checkpointed prefix — same seed, deployment,
/// hello phase and pre-checkpoint traffic behavior. Knobs that only act
/// after ckpt.at (e.g. the Poisson traffic rate before the first traffic
/// event) may differ; warm-started sweeps exploit exactly that.
[[nodiscard]] RunStats resume_scenario_as(const Checkpoint& ckpt, const ScenarioConfig& config);

/// Resumes `ckpt` using its embedded scenario text loaded over `base`.
/// Pointers (trace, logger) and the execution-surface knobs jobs / shards
/// come from `base`: the engine capture is shard-invariant, so resuming
/// under a different shard count than the capture run is sound and still
/// bit-identical.
[[nodiscard]] RunStats resume_scenario(const Checkpoint& ckpt, const ScenarioConfig& base);

}  // namespace aquamac

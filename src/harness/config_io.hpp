#pragma once
// Scenario (de)serialization: a flat, commented `key = value` text format
// so experiments are shareable and replayable without recompiling.
// Round-trip is lossless for every scalar knob; unknown keys and
// malformed values are hard errors (silent typos would silently change
// an experiment).

#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace aquamac {

/// Every key load_scenario accepts, sorted. Exists so the round-trip
/// exhaustiveness test can prove save_scenario emits exactly this set.
[[nodiscard]] std::vector<std::string> scenario_keys();

/// Writes every scalar field of `config`, grouped and commented.
void save_scenario(const ScenarioConfig& config, std::ostream& os);
void save_scenario_file(const ScenarioConfig& config, const std::string& path);

/// Parses a file produced by save_scenario (or hand-written). Starts from
/// `paper_default_scenario()`-independent defaults: the `base` argument
/// supplies anything the file does not mention.
[[nodiscard]] ScenarioConfig load_scenario(std::istream& is, ScenarioConfig base);
[[nodiscard]] ScenarioConfig load_scenario_file(const std::string& path, ScenarioConfig base);

}  // namespace aquamac

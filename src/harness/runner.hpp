#pragma once
// Single-run and replicated execution of scenarios.

#include <functional>
#include <vector>

#include "net/network.hpp"

namespace aquamac {

/// Builds a Simulator + Network for `config`, runs it to the horizon and
/// returns the aggregate statistics.
[[nodiscard]] RunStats run_scenario(const ScenarioConfig& config);

/// Runs `replications` copies differing only in seed (base.seed + k),
/// fanned across base.jobs worker threads (see ScenarioConfig::jobs).
/// Results are bit-identical to serial execution for any jobs value.
[[nodiscard]] std::vector<RunStats> run_replicated(const ScenarioConfig& base,
                                                   unsigned replications);

/// Same, with the worker count given explicitly (0 = auto). Runs that
/// carry a shared TraceSink are forced serial so the trace stays ordered.
[[nodiscard]] std::vector<RunStats> run_replicated_parallel(const ScenarioConfig& base,
                                                            unsigned replications,
                                                            unsigned jobs);

/// Figure-level summary of a replicated run: the mean of every RunStats
/// metric (the stats-symmetric lint rule keeps mean_of exhaustive, so a
/// new RunStats field cannot silently drop out of replication summaries).
struct MeanStats {
  double throughput_kbps{0.0};
  double delivery_ratio{0.0};
  double mean_power_mw{0.0};
  double total_energy_j{0.0};
  double bits_delivered{0.0};
  double elapsed_s{0.0};
  double node_count{0.0};

  /// Fig. 9 metric: energy to move the workload, expressed as mean
  /// per-node power over the Table-2 300 s reference window.
  [[nodiscard]] double workload_power_mw() const {
    return node_count > 0.0 ? total_energy_j / node_count / 300.0 * 1'000.0 : 0.0;
  }
  double overhead_bits{0.0};
  double efficiency_raw{0.0};
  double execution_time_s{0.0};
  double mean_latency_s{0.0};
  double extra_successes{0.0};
  double rx_collisions{0.0};
  double fairness_index{0.0};
  double e2e_delivery_ratio{0.0};
  double mean_hops{0.0};
  double mean_e2e_latency_s{0.0};
  // --- full-coverage tail (means of the remaining RunStats fields) ----
  double traffic_duration_s{0.0};
  double packets_offered{0.0};
  double packets_delivered{0.0};
  double packets_dropped{0.0};
  double duplicate_deliveries{0.0};
  double bits_offered{0.0};
  double offered_load_kbps{0.0};
  double control_bits{0.0};
  double maintenance_bits{0.0};
  double retransmitted_bits{0.0};
  double piggyback_bits{0.0};
  double total_bits_sent{0.0};
  double handshake_attempts{0.0};
  double handshake_successes{0.0};
  double contention_losses{0.0};
  double extra_attempts{0.0};
  double e2e_originated{0.0};
  double e2e_arrived_at_sink{0.0};
  double e2e_forwarded{0.0};
  double e2e_dropped_no_route{0.0};
  double e2e_dropped_hop_limit{0.0};
  double e2e_dropped_mac{0.0};
  double hop_stretch{0.0};
  double mean_per_hop_latency_s{0.0};
  double e2e_retransmissions{0.0};
  double e2e_failovers{0.0};
  double e2e_dead_letter_exhausted{0.0};
  double e2e_dead_letter_overflow{0.0};
  double e2e_dead_letter_no_route{0.0};
  double e2e_duplicates_suppressed{0.0};
  double relay_queue_highwater{0.0};
};

[[nodiscard]] MeanStats mean_of(const std::vector<RunStats>& runs);

/// Seed-to-seed dispersion of one metric across a replicated run.
struct Spread {
  double mean{0.0};
  double stddev{0.0};  ///< sample standard deviation (n-1)
  double min{0.0};
  double max{0.0};
};

using RunMetricFn = std::function<double(const RunStats&)>;
[[nodiscard]] Spread spread_of(const std::vector<RunStats>& runs, const RunMetricFn& metric);

}  // namespace aquamac

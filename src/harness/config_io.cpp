#include "harness/config_io.hpp"

#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aquamac {

namespace {

std::string_view to_string(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kUniformBox: return "uniform-box";
    case DeploymentKind::kLayeredColumn: return "layered-column";
    case DeploymentKind::kGrid: return "grid";
  }
  return "?";
}

DeploymentKind deployment_from_string(const std::string& name) {
  if (name == "uniform-box") return DeploymentKind::kUniformBox;
  if (name == "layered-column") return DeploymentKind::kLayeredColumn;
  if (name == "grid") return DeploymentKind::kGrid;
  throw std::invalid_argument("unknown deployment kind: " + name);
}

std::string_view to_string(PropagationKind kind) {
  return kind == PropagationKind::kStraightLine ? "straight" : "bellhop";
}

PropagationKind propagation_from_string(const std::string& name) {
  if (name == "straight") return PropagationKind::kStraightLine;
  if (name == "bellhop") return PropagationKind::kBellhopLite;
  throw std::invalid_argument("unknown propagation kind: " + name);
}

std::string_view to_string(ReceptionKind kind) {
  return kind == ReceptionKind::kDeterministic ? "deterministic" : "sinr";
}

ReceptionKind reception_from_string(const std::string& name) {
  if (name == "deterministic") return ReceptionKind::kDeterministic;
  if (name == "sinr") return ReceptionKind::kSinrPer;
  throw std::invalid_argument("unknown reception kind: " + name);
}

std::string_view to_string(Spreading spreading) {
  switch (spreading) {
    case Spreading::kCylindrical: return "cylindrical";
    case Spreading::kPractical: return "practical";
    case Spreading::kSpherical: return "spherical";
  }
  return "?";
}

Spreading spreading_from_string(const std::string& name) {
  if (name == "cylindrical") return Spreading::kCylindrical;
  if (name == "practical") return Spreading::kPractical;
  if (name == "spherical") return Spreading::kSpherical;
  throw std::invalid_argument("unknown spreading: " + name);
}

std::string_view to_string(TrafficMode mode) {
  return mode == TrafficMode::kPoisson ? "poisson" : "batch";
}

TrafficMode traffic_mode_from_string(const std::string& name) {
  if (name == "poisson") return TrafficMode::kPoisson;
  if (name == "batch") return TrafficMode::kBatch;
  throw std::invalid_argument("unknown traffic mode: " + name);
}

double parse_double(const std::string& key, const std::string& raw) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario key '" + key + "': expected a number, got '" + raw +
                                "'");
  }
}

std::uint64_t parse_uint(const std::string& key, const std::string& raw) {
  try {
    // std::stoull accepts a leading '-' by wrapping modulo 2^64, which
    // would turn "node-count = -1" into a 16-EiB allocation request.
    if (!raw.empty() && raw.front() == '-') throw std::invalid_argument("negative");
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario key '" + key + "': expected an integer, got '" +
                                raw + "'");
  }
}

bool parse_bool(const std::string& key, const std::string& raw) {
  if (raw == "true" || raw == "1") return true;
  if (raw == "false" || raw == "0") return false;
  throw std::invalid_argument("scenario key '" + key + "': expected true/false, got '" + raw +
                              "'");
}

}  // namespace

void save_scenario(const ScenarioConfig& config, std::ostream& os) {
  // max_digits10 makes every double exactly round-trippable; the default
  // 6-significant-digit stream precision silently perturbed sim-time-s,
  // freq-khz and the fault rates on save -> load.
  const std::streamsize saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "# aquamac scenario\n";
  os << "mac = " << aquamac::to_string(config.mac) << "\n";
  os << "node-count = " << config.node_count << "\n";
  os << "seed = " << config.seed << "\n";
  os << "jobs = " << config.jobs << "\n";
  os << "shards = " << config.shards << "\n";
  os << "sim-time-s = " << config.sim_time.to_seconds() << "\n";
  os << "hello-window-s = " << config.hello_window.to_seconds() << "\n";
  os << "hello-rounds = " << config.hello_rounds << "\n";
  os << "\n# channel / physics\n";
  os << "freq-khz = " << config.channel.freq_khz << "\n";
  os << "bandwidth-hz = " << config.channel.bandwidth_hz << "\n";
  os << "source-level-db = " << config.channel.source_level_db << "\n";
  os << "comm-range-m = " << config.channel.comm_range_m << "\n";
  os << "interference-range-m = " << config.channel.interference_range_m << "\n";
  os << "bit-rate-bps = " << config.bit_rate_bps << "\n";
  os << "sound-speed-mps = " << config.sound_speed_mps << "\n";
  os << "propagation = " << to_string(config.propagation) << "\n";
  os << "spreading = " << to_string(config.channel.spreading) << "\n";
  os << "reception = " << to_string(config.reception) << "\n";
  os << "shipping = " << config.channel.noise.shipping << "\n";
  os << "wind-mps = " << config.channel.noise.wind_mps << "\n";
  os << "\n# deployment / mobility\n";
  os << "deployment = " << to_string(config.deployment.kind) << "\n";
  os << "width-m = " << config.deployment.width_m << "\n";
  os << "length-m = " << config.deployment.length_m << "\n";
  os << "depth-m = " << config.deployment.depth_m << "\n";
  os << "layer-spacing-m = " << config.deployment.layer_spacing_m << "\n";
  os << "jitter-m = " << config.deployment.jitter_m << "\n";
  os << "mobility = " << (config.enable_mobility ? "true" : "false") << "\n";
  os << "drift-mps = " << config.mobility.speed_mps << "\n";
  os << "clock-skew-s = " << config.clock_offset_stddev_s << "\n";
  os << "\n# MAC\n";
  os << "control-bits = " << config.mac_config.control_bits << "\n";
  os << "max-retries = " << config.mac_config.max_retries << "\n";
  os << "cw-min-slots = " << config.mac_config.cw_min_slots << "\n";
  os << "cw-max-slots = " << config.mac_config.cw_max_slots << "\n";
  os << "queue-limit = " << config.mac_config.queue_limit << "\n";
  os << "enable-extra = " << (config.mac_config.enable_extra ? "true" : "false") << "\n";
  os << "enable-priority = " << (config.mac_config.enable_priority ? "true" : "false") << "\n";
  os << "\n# traffic\n";
  os << "traffic-mode = " << to_string(config.traffic.mode) << "\n";
  os << "offered-load-kbps = " << config.traffic.offered_load_kbps << "\n";
  os << "packet-bits-min = " << config.traffic.packet_bits_min << "\n";
  os << "packet-bits-max = " << config.traffic.packet_bits_max << "\n";
  os << "batch-packets = " << config.traffic.batch_packets << "\n";
  os << "\n# multi-hop\n";
  os << "multi-hop = " << (config.multi_hop ? "true" : "false") << "\n";
  os << "sink-fraction = " << config.sink_fraction << "\n";
  os << "hop-limit = " << static_cast<unsigned>(config.hop_limit) << "\n";
  os << "routing = " << to_string(config.routing) << "\n";
  os << "routing-beacon-s = " << config.routing_beacon.to_seconds() << "\n";
  os << "greedy-blacklist = " << (config.greedy_blacklist ? "true" : "false") << "\n";
  os << "\n# reliability (hop-by-hop custody ARQ; retries 0 = off)\n";
  os << "reliability-retries = " << config.reliability.max_retries << "\n";
  os << "reliability-queue-limit = " << config.reliability.queue_limit << "\n";
  os << "reliability-drop-policy = " << to_string(config.reliability.drop_policy) << "\n";
  os << "reliability-backoff-base-s = " << config.reliability.backoff_base.to_seconds()
     << "\n";
  os << "reliability-backoff-max-s = " << config.reliability.backoff_max.to_seconds() << "\n";
  os << "reliability-failover = " << (config.reliability.failover ? "true" : "false") << "\n";
  os << "\n# failure injection\n";
  os << "node-failure-fraction = " << config.node_failure_fraction << "\n";
  os << "node-failure-time-s = " << config.node_failure_time.to_seconds() << "\n";
  os << "surface-echo = " << (config.channel.enable_surface_echo ? "true" : "false") << "\n";
  os << "reflection-loss-db = " << config.channel.surface_reflection_loss_db << "\n";
  os << "cache-paths = " << (config.channel.cache_paths ? "true" : "false") << "\n";
  os << "spatial-index = " << (config.channel.use_spatial_index ? "true" : "false") << "\n";
  os << "\n# fault injection (all zero = strict no-op)\n";
  os << "fault-drift-ppm = " << config.fault.drift_ppm_stddev << "\n";
  os << "fault-drift-jitter-s = " << config.fault.drift_jitter_stddev_s << "\n";
  os << "fault-jitter-interval-s = " << config.fault.drift_jitter_interval.to_seconds() << "\n";
  os << "fault-outage-per-hour = " << config.fault.outage_rate_per_hour << "\n";
  os << "fault-outage-mean-s = " << config.fault.outage_mean_duration.to_seconds() << "\n";
  os << "fault-duty-cycle = " << config.fault.duty_cycle << "\n";
  os << "fault-duty-period-s = " << config.fault.duty_period.to_seconds() << "\n";
  os << "fault-ge-p-bad = " << config.fault.ge_p_bad << "\n";
  os << "fault-ge-p-good = " << config.fault.ge_p_good << "\n";
  os << "fault-ge-loss-bad = " << config.fault.ge_loss_bad << "\n";
  os << "fault-ge-loss-good = " << config.fault.ge_loss_good << "\n";
  os << "fault-ge-step-s = " << config.fault.ge_step.to_seconds() << "\n";
  os << "fault-storm-per-hour = " << config.fault.storm_rate_per_hour << "\n";
  os << "fault-storm-mean-s = " << config.fault.storm_mean_duration.to_seconds() << "\n";
  os << "fault-storm-loss = " << config.fault.storm_loss_prob << "\n";
  os << "\n# protocol hardening\n";
  os << "neighbor-max-age-s = " << config.mac_config.neighbor_max_age.to_seconds() << "\n";
  os << "dead-neighbor-threshold = " << config.mac_config.dead_neighbor_threshold << "\n";
  os << "dead-probe-interval-s = " << config.mac_config.dead_probe_interval.to_seconds()
     << "\n";
  os << "guard-slack-s = " << config.mac_config.guard_slack.to_seconds() << "\n";
  os << "neighbor-ewma = " << config.mac_config.neighbor_ewma << "\n";
  os << "\n# checkpointing\n";
  os << "checkpoint-every-s = " << config.checkpoint_every.to_seconds() << "\n";
  os << "checkpoint-path = " << config.checkpoint_path << "\n";
  os.precision(saved_precision);
}

void save_scenario_file(const ScenarioConfig& config, const std::string& path) {
  std::ofstream os{path};
  if (!os) throw std::invalid_argument("cannot open " + path + " for writing");
  save_scenario(config, os);
}

namespace {

using Setter = std::function<void(ScenarioConfig&, const std::string&, const std::string&)>;

/// Key -> setter map shared by load_scenario and scenario_keys, so the
/// round-trip exhaustiveness test can diff the accepted keys against
/// whatever save_scenario emits.
const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> kSetters = {
      {"mac", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.mac = mac_kind_from_string(v);
       }},
      {"node-count", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.node_count = static_cast<std::size_t>(parse_uint(k, v));
       }},
      {"seed", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.seed = parse_uint(k, v);
       }},
      {"jobs", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.jobs = static_cast<unsigned>(parse_uint(k, v));
       }},
      {"shards", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.shards = std::max<unsigned>(1, static_cast<unsigned>(parse_uint(k, v)));
       }},
      {"sim-time-s", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.sim_time = Duration::from_seconds(parse_double(k, v));
       }},
      {"hello-window-s", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.hello_window = Duration::from_seconds(parse_double(k, v));
       }},
      {"hello-rounds", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.hello_rounds = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"freq-khz", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.freq_khz = parse_double(k, v);
       }},
      {"bandwidth-hz", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.bandwidth_hz = parse_double(k, v);
       }},
      {"source-level-db", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.source_level_db = parse_double(k, v);
       }},
      {"comm-range-m", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.comm_range_m = parse_double(k, v);
       }},
      {"interference-range-m",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.interference_range_m = parse_double(k, v);
       }},
      {"bit-rate-bps", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.bit_rate_bps = parse_double(k, v);
       }},
      {"sound-speed-mps", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.sound_speed_mps = parse_double(k, v);
       }},
      {"propagation", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.propagation = propagation_from_string(v);
       }},
      {"reception", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.reception = reception_from_string(v);
       }},
      {"shipping", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.noise.shipping = parse_double(k, v);
       }},
      {"wind-mps", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.noise.wind_mps = parse_double(k, v);
       }},
      {"deployment", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.deployment.kind = deployment_from_string(v);
       }},
      {"width-m", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.deployment.width_m = parse_double(k, v);
       }},
      {"length-m", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.deployment.length_m = parse_double(k, v);
       }},
      {"depth-m", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.deployment.depth_m = parse_double(k, v);
       }},
      {"layer-spacing-m", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.deployment.layer_spacing_m = parse_double(k, v);
       }},
      {"jitter-m", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.deployment.jitter_m = parse_double(k, v);
       }},
      {"mobility", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.enable_mobility = parse_bool(k, v);
       }},
      {"drift-mps", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mobility.speed_mps = parse_double(k, v);
       }},
      {"clock-skew-s", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.clock_offset_stddev_s = parse_double(k, v);
       }},
      {"control-bits", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.control_bits = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"max-retries", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.max_retries = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"cw-min-slots", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.cw_min_slots = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"cw-max-slots", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.cw_max_slots = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"queue-limit", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.queue_limit = static_cast<std::size_t>(parse_uint(k, v));
       }},
      {"enable-extra", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.enable_extra = parse_bool(k, v);
       }},
      {"enable-priority", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.enable_priority = parse_bool(k, v);
       }},
      {"traffic-mode", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.traffic.mode = traffic_mode_from_string(v);
       }},
      {"offered-load-kbps", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.traffic.offered_load_kbps = parse_double(k, v);
       }},
      {"packet-bits-min", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.traffic.packet_bits_min = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"packet-bits-max", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.traffic.packet_bits_max = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"batch-packets", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.traffic.batch_packets = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"multi-hop", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.multi_hop = parse_bool(k, v);
       }},
      {"sink-fraction", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.sink_fraction = parse_double(k, v);
       }},
      {"hop-limit", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.hop_limit = static_cast<std::uint8_t>(parse_uint(k, v));
       }},
      {"routing", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.routing = routing_kind_from_string(v);
       }},
      {"routing-beacon-s", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.routing_beacon = Duration::from_seconds(parse_double(k, v));
       }},
      {"greedy-blacklist", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.greedy_blacklist = parse_bool(k, v);
       }},
      {"reliability-retries",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.reliability.max_retries = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"reliability-queue-limit",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.reliability.queue_limit = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"reliability-drop-policy",
       [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.reliability.drop_policy = relay_drop_policy_from_string(v);
       }},
      {"reliability-backoff-base-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.reliability.backoff_base = Duration::from_seconds(parse_double(k, v));
       }},
      {"reliability-backoff-max-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.reliability.backoff_max = Duration::from_seconds(parse_double(k, v));
       }},
      {"reliability-failover",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.reliability.failover = parse_bool(k, v);
       }},
      {"node-failure-fraction",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.node_failure_fraction = parse_double(k, v);
       }},
      {"node-failure-time-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.node_failure_time = Duration::from_seconds(parse_double(k, v));
       }},
      {"surface-echo", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.enable_surface_echo = parse_bool(k, v);
       }},
      {"reflection-loss-db",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.surface_reflection_loss_db = parse_double(k, v);
       }},
      {"cache-paths", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.cache_paths = parse_bool(k, v);
       }},
      {"spreading", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.channel.spreading = spreading_from_string(v);
       }},
      {"spatial-index", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.channel.use_spatial_index = parse_bool(k, v);
       }},
      {"fault-drift-ppm", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.drift_ppm_stddev = parse_double(k, v);
       }},
      {"fault-drift-jitter-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.drift_jitter_stddev_s = parse_double(k, v);
       }},
      {"fault-jitter-interval-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.drift_jitter_interval = Duration::from_seconds(parse_double(k, v));
       }},
      {"fault-outage-per-hour",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.outage_rate_per_hour = parse_double(k, v);
       }},
      {"fault-outage-mean-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.outage_mean_duration = Duration::from_seconds(parse_double(k, v));
       }},
      {"fault-duty-cycle", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.duty_cycle = parse_double(k, v);
       }},
      {"fault-duty-period-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.duty_period = Duration::from_seconds(parse_double(k, v));
       }},
      {"fault-ge-p-bad", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.ge_p_bad = parse_double(k, v);
       }},
      {"fault-ge-p-good", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.ge_p_good = parse_double(k, v);
       }},
      {"fault-ge-loss-bad", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.ge_loss_bad = parse_double(k, v);
       }},
      {"fault-ge-loss-good",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.ge_loss_good = parse_double(k, v);
       }},
      {"fault-ge-step-s", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.ge_step = Duration::from_seconds(parse_double(k, v));
       }},
      {"fault-storm-per-hour",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.storm_rate_per_hour = parse_double(k, v);
       }},
      {"fault-storm-mean-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.storm_mean_duration = Duration::from_seconds(parse_double(k, v));
       }},
      {"fault-storm-loss", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.fault.storm_loss_prob = parse_double(k, v);
       }},
      {"neighbor-max-age-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.neighbor_max_age = Duration::from_seconds(parse_double(k, v));
       }},
      {"dead-neighbor-threshold",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.dead_neighbor_threshold = static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"dead-probe-interval-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.dead_probe_interval = Duration::from_seconds(parse_double(k, v));
       }},
      {"guard-slack-s", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.guard_slack = Duration::from_seconds(parse_double(k, v));
       }},
      {"neighbor-ewma", [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.mac_config.neighbor_ewma = parse_double(k, v);
       }},
      {"checkpoint-every-s",
       [](ScenarioConfig& c, const std::string& k, const std::string& v) {
         c.checkpoint_every = Duration::from_seconds(parse_double(k, v));
       }},
      {"checkpoint-path", [](ScenarioConfig& c, const std::string&, const std::string& v) {
         c.checkpoint_path = v;
       }},
  };
  return kSetters;
}

}  // namespace

std::vector<std::string> scenario_keys() {
  std::vector<std::string> keys;
  keys.reserve(setters().size());
  for (const auto& [key, setter] : setters()) keys.push_back(key);
  return keys;
}

ScenarioConfig load_scenario(std::istream& is, ScenarioConfig base) {
  ScenarioConfig config = base;
  const std::map<std::string, Setter>& kSetters = setters();

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Trim.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                                  ": expected 'key = value', got '" + line + "'");
    }
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto it = kSetters.find(key);
    if (it == kSetters.end()) {
      throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                                  ": unknown key '" + key + "'");
    }
    it->second(config, key, value);
  }
  return config;
}

ScenarioConfig load_scenario_file(const std::string& path, ScenarioConfig base) {
  std::ifstream is{path};
  if (!is) throw std::invalid_argument("cannot open scenario file " + path);
  return load_scenario(is, std::move(base));
}

}  // namespace aquamac

#pragma once
// Scenario presets for the paper's evaluation (§5, Table 2) and for tests.

#include "net/network.hpp"
#include "stats/invariant_auditor.hpp"

namespace aquamac {

/// The Table 2 parameter sheet with the Fig.-1-style scaled region
/// (DESIGN.md §5): 60 nodes, 12 kbps, 1.5 km range, 1.5 km/s, 300 s,
/// 64-bit control packets, 2048-bit data packets, mobility enabled,
/// deterministic Eq.-1 reception over straight-line propagation.
[[nodiscard]] ScenarioConfig paper_default_scenario();

/// Paper-literal Table 2 region (10x10x10 km uniform box) — documented as
/// effectively disconnected at 60 nodes; kept for the parameter-sheet
/// bench and sensitivity tests.
[[nodiscard]] ScenarioConfig table2_literal_scenario();

/// Small, fast, connected scenario for unit/integration tests:
/// 12 nodes in a 2x2x2 km grid, 60 s of traffic, no mobility.
[[nodiscard]] ScenarioConfig small_test_scenario();

/// Large-scale scenario on a cubic lattice with jitter. The region side
/// grows as cbrt(node_count) so node density — and with it the expected
/// neighbour count inside the 1.5 km acoustic sphere (~12) — stays fixed
/// at every N; aggregate offered load scales with N so per-node load is
/// constant. Mobility on. Fully determined by (node_count, seed).
[[nodiscard]] ScenarioConfig grid3d_scenario(std::size_t node_count, std::uint64_t seed);

/// Same density-preserving sizing as grid3d_scenario but with nodes drawn
/// uniformly at random over the volume (seeded), exercising irregular
/// cell occupancy in the spatial index.
[[nodiscard]] ScenarioConfig random_volume_scenario(std::size_t node_count,
                                                    std::uint64_t seed);

/// InvariantAuditor configuration matching a scenario: replicates the
/// Network's tau_max derivation and the slotted MACs' |ts| = omega +
/// tau_max so the auditor checks the same arithmetic the protocols use.
[[nodiscard]] InvariantAuditor::Config auditor_config_for(const ScenarioConfig& config);

/// Worst-case spread of clock error any (sender, receiver) pair can
/// realize under this exact (seed, fault plan): replicates the Network's
/// per-node static offset draws and the FaultPlan's drift/jitter
/// realization, and returns max over nodes of (offset + max drift error)
/// minus min over nodes of (offset + min drift error) — the exact bound
/// on any measured-delay error, so auditor tolerances and guard-slack
/// sizing neither false-alarm nor mask real violations. Zero when the
/// scenario has no clock imperfection at all.
[[nodiscard]] Duration realized_clock_uncertainty(const ScenarioConfig& config);

/// Human-readable parameter sheet (bench_table2_parameters).
[[nodiscard]] std::string describe_scenario(const ScenarioConfig& config);

}  // namespace aquamac

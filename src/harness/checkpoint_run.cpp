#include "harness/checkpoint_run.hpp"

#include <sstream>

#include "harness/config_io.hpp"

namespace aquamac {

std::string encode_network_state(const Network& network) {
  StateWriter writer;
  network.save_state(writer);
  return writer.bytes();
}

Checkpoint make_checkpoint(const Network& network, const ScenarioConfig& config, Time at) {
  Checkpoint ckpt;
  std::ostringstream scenario;
  save_scenario(config, scenario);
  ckpt.scenario_text = scenario.str();
  ckpt.at = at;
  ckpt.payload = encode_network_state(network);
  return ckpt;
}

CheckpointedRun run_scenario_with_checkpoint(const ScenarioConfig& config, Time at) {
  Simulator sim{config.logger};
  Network network{sim, config};
  CheckpointedRun out{};
  bool captured = false;
  RunBoundaryHooks hooks;
  hooks.boundaries = {at};
  hooks.on_boundary = [&](Time boundary) {
    out.checkpoint = make_checkpoint(network, config, boundary);
    captured = true;
    return true;
  };
  out.stats = network.run(hooks);
  if (!captured) {
    throw CheckpointError("checkpoint time " + at.to_string() +
                          " lies past the run horizon; nothing was captured");
  }
  return out;
}

RunStats run_scenario_checkpointing(const ScenarioConfig& config) {
  if (config.checkpoint_every <= Duration::zero() || config.checkpoint_path.empty()) {
    return run_scenario(config);
  }
  Simulator sim{config.logger};
  Network network{sim, config};
  RunBoundaryHooks hooks;
  for (Time t = Time::zero() + config.checkpoint_every; t <= network.horizon();
       t += config.checkpoint_every) {
    hooks.boundaries.push_back(t);
  }
  hooks.on_boundary = [&](Time boundary) {
    write_checkpoint_file(make_checkpoint(network, config, boundary), config.checkpoint_path);
    return true;
  };
  return network.run(hooks);
}

RunStats resume_scenario_as(const Checkpoint& ckpt, const ScenarioConfig& config) {
  Simulator sim{config.logger};
  Network network{sim, config};
  bool verified = false;
  RunBoundaryHooks hooks;
  hooks.boundaries = {ckpt.at};
  hooks.on_boundary = [&](Time) {
    network.verify_restore(ckpt.payload);
    verified = true;
    return true;
  };
  RunStats stats = network.run(hooks);
  if (!verified) {
    throw CheckpointError("checkpoint time " + ckpt.at.to_string() +
                          " was never reached on resume; the scenario horizon is shorter than "
                          "the checkpoint");
  }
  return stats;
}

RunStats resume_scenario(const Checkpoint& ckpt, const ScenarioConfig& base) {
  std::istringstream is{ckpt.scenario_text};
  ScenarioConfig config = load_scenario(is, base);
  // jobs/shards are execution-surface knobs, not physics: the embedded
  // scenario text carries the capture run's values, but the engine
  // capture is shard-invariant, so the caller's values win.
  config.jobs = base.jobs;
  config.shards = base.shards;
  return resume_scenario_as(ckpt, config);
}

}  // namespace aquamac

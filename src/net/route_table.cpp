#include "net/route_table.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace aquamac {

Duration route_link_cost(Duration measured_delay) {
  const Duration floor = Duration::nanoseconds(1);
  return measured_delay > floor ? measured_delay : floor;
}

RouteTable RouteTable::build(const std::vector<std::map<NodeId, Duration>>& delays,
                             const std::vector<bool>& is_sink) {
  if (delays.size() != is_sink.size()) {
    throw std::invalid_argument("RouteTable: delays/is_sink size mismatch");
  }
  const std::size_t n = delays.size();

  RouteTable table;
  table.entries_.assign(n, Entry{});
  table.sink_ = is_sink;

  // Reverse adjacency: who can transmit *to* node u, at what link cost.
  // Dijkstra relaxes from a settled receiver u back to its possible
  // senders v, since convergecast routes point from senders to receivers.
  std::vector<std::vector<std::pair<NodeId, Duration>>> senders_of(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& [u, delay] : delays[v]) {
      if (u >= n || static_cast<std::size_t>(u) == v) continue;
      senders_of[u].emplace_back(static_cast<NodeId>(v), route_link_cost(delay));
    }
  }

  // Multi-source Dijkstra. The frontier is ordered by (cost, id) so the
  // pop sequence — and with it every tie-break — is a pure function of
  // the input graph. Because link costs are floored strictly positive, a
  // node's parent always settles at strictly lower cost, which makes the
  // next-hop chains loop-free by construction.
  std::set<std::pair<Duration, NodeId>> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_sink[i]) continue;
    Entry& e = table.entries_[i];
    e.reachable = true;
    e.cost = Duration::zero();
    e.hops = 0;
    e.next_hop = kNoNode;
    frontier.emplace(Duration::zero(), static_cast<NodeId>(i));
  }
  std::vector<bool> settled(n, false);
  while (!frontier.empty()) {
    const auto [cost, u] = *frontier.begin();
    frontier.erase(frontier.begin());
    if (settled[u]) continue;
    settled[u] = true;
    for (const auto& [v, w] : senders_of[u]) {
      if (is_sink[v] || settled[v]) continue;
      Entry& e = table.entries_[v];
      const Duration candidate = cost + w;
      if (!e.reachable || candidate < e.cost ||
          (candidate == e.cost && u < e.next_hop)) {
        const bool cost_changed = !e.reachable || candidate < e.cost;
        e.reachable = true;
        e.cost = candidate;
        e.hops = table.entries_[u].hops + 1;
        e.next_hop = u;
        if (cost_changed) frontier.emplace(candidate, v);
      }
    }
  }
  return table;
}

std::optional<NodeId> RouteTable::next_hop(NodeId node) const {
  const Entry& e = entries_.at(node);
  if (!e.reachable || e.next_hop == kNoNode) return std::nullopt;
  return e.next_hop;
}

std::size_t RouteTable::routed_count() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!sink_[i] && entries_[i].reachable) ++count;
  }
  return count;
}

}  // namespace aquamac

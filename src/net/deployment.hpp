#pragma once
// Sensor deployment generators.
//
// The paper deploys 60-200 sensors in a 1000 km^3 region (Table 2) with a
// 1.5 km acoustic range, arranged as in Fig. 1: deeper sensors forward to
// shallower ones toward surface sinks. Placing 60 nodes uniformly in
// 10x10x10 km with a 1.5 km range yields a mean degree below one — a
// disconnected network in which no MAC can be exercised — so the figure
// reproductions default to a scaled region that preserves the *density
// sweep* semantics (more nodes in a fixed volume => shorter neighbor
// delays and less exploitable wait time). The paper-literal box remains
// available. See DESIGN.md §5.

#include <vector>

#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace aquamac {

enum class DeploymentKind {
  kUniformBox,     ///< uniform random in width x length x depth
  kLayeredColumn,  ///< Fig.-1-style: depth layers under a sink region
  kGrid,           ///< deterministic jittered 3-D grid (tests)
};

struct DeploymentConfig {
  DeploymentKind kind{DeploymentKind::kUniformBox};
  double width_m{4'000.0};
  double length_m{4'000.0};
  double depth_m{4'000.0};
  /// kLayeredColumn: vertical spacing between layers.
  double layer_spacing_m{1'000.0};
  /// kGrid / kLayeredColumn: random jitter applied to each position.
  double jitter_m{150.0};
};

/// Paper-literal Table 2 region: 10 x 10 x 10 km uniform box.
[[nodiscard]] DeploymentConfig table2_deployment();

/// Generates `count` sensor positions (z = depth, increasing downward).
[[nodiscard]] std::vector<Vec3> generate_deployment(const DeploymentConfig& config,
                                                    std::size_t count, Rng& rng);

/// Mean number of neighbors within `range_m` (diagnostic used by tests
/// and the harness to sanity-check connectivity).
[[nodiscard]] double mean_degree(const std::vector<Vec3>& positions, double range_m);

/// Fraction of nodes having at least one strictly shallower neighbor in
/// range (i.e. able to route upward, Fig. 1).
[[nodiscard]] double uphill_coverage(const std::vector<Vec3>& positions, double range_m);

}  // namespace aquamac

#pragma once
// Workload generation.
//
// kPoisson drives the Fig. 6/7/9/10/11 sweeps: the network-aggregate
// offered load (kbps) is split evenly across traffic-generating nodes and
// each node draws exponential inter-arrival times. kBatch drives Fig. 8
// (execution time): a fixed packet count is enqueued at traffic start and
// the metric is the time until the last one is delivered.
//
// Packet sizes follow Table 2: flexible 1024-4096 bits, default fixed
// 2048 (min == max means fixed size).

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace aquamac {

enum class TrafficMode { kPoisson, kBatch };

struct TrafficConfig {
  TrafficMode mode{TrafficMode::kPoisson};
  /// Network-aggregate offered load in kbps (Poisson mode).
  double offered_load_kbps{0.5};
  /// Payload size range in bits; min == max gives a fixed size.
  std::uint32_t packet_bits_min{2'048};
  std::uint32_t packet_bits_max{2'048};
  /// Batch mode: total packets injected network-wide at traffic start.
  std::uint32_t batch_packets{40};
};

/// Per-node generator; `emit` receives the payload size and is expected to
/// route + enqueue it.
class TrafficSource {
 public:
  using EmitFn = std::function<void(std::uint32_t payload_bits)>;

  TrafficSource(Simulator& sim, TrafficConfig config, double node_rate_pps, Rng rng,
                EmitFn emit);

  /// Begins generation at `start` (Poisson) or injects the node's batch
  /// share immediately at `start` (Batch, `batch_count` packets).
  void start(Time start, std::uint32_t batch_count);

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

  /// Checkpoint encoding: the draw stream and the generated count (the
  /// pending next-arrival event lives in the engine's event capture).
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  void schedule_next();
  [[nodiscard]] std::uint32_t draw_size();

  Simulator& sim_;
  TrafficConfig config_;  // lint: ckpt-skip(scenario-derived, rebuilt by resume)
  double rate_pps_;       // lint: ckpt-skip(derived from config at construction)
  Rng rng_;
  EmitFn emit_;  // lint: ckpt-skip(callback wiring, rebound on construction)
  std::uint64_t generated_{0};
};

/// Packets/s for one node when `sources` nodes share the aggregate load.
[[nodiscard]] double per_node_packet_rate(const TrafficConfig& config, std::size_t sources);

}  // namespace aquamac

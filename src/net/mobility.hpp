#pragma once
// Node mobility. The paper's §5: "the location models include non-moved,
// moved horizontal, or moved vertical. The location of each sensor is
// changed by randomly selecting one of these models" — water currents
// drift sensors slowly while the MAC keeps re-learning propagation delays
// from packet timestamps.

#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace aquamac {

class StateReader;
class StateWriter;

enum class MobilityKind : std::uint8_t {
  kStatic,
  kHorizontalDrift,
  kVerticalDrift,
};

struct MobilityConfig {
  /// Drift speed magnitude (typical UASN current: ~0.3 m/s).
  double speed_mps{0.3};
  /// Region bounds for reflecting drifters.
  double width_m{4'000.0};
  double length_m{4'000.0};
  double depth_m{4'000.0};
  /// Position re-sampling period.
  Duration update_interval{Duration::seconds(5)};
};

/// Per-node kinematic state; advanced by the Network on a fixed cadence.
class Mobility {
 public:
  Mobility() = default;
  Mobility(MobilityKind kind, const MobilityConfig& config, Vec3 initial, Rng& rng);

  /// Picks one of the three paper models uniformly at random.
  [[nodiscard]] static MobilityKind random_kind(Rng& rng);

  [[nodiscard]] MobilityKind kind() const { return kind_; }
  [[nodiscard]] const Vec3& position() const { return position_; }

  /// Advances by dt, reflecting at the region boundary.
  void advance(Duration dt);

  /// Checkpoint encoding: kind, position and velocity (the config is
  /// scenario-derived and rebuilt by the resume path).
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  MobilityKind kind_{MobilityKind::kStatic};
  MobilityConfig config_{};  // lint: ckpt-skip(scenario-derived, rebuilt by resume)
  Vec3 position_{};
  Vec3 velocity_{};
};

}  // namespace aquamac

#include "net/routing.hpp"

#include <stdexcept>
#include <string>

namespace aquamac {

std::string_view to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kGreedy: return "greedy";
    case RoutingKind::kTree: return "tree";
    case RoutingKind::kDv: return "dv";
  }
  return "?";
}

RoutingKind routing_kind_from_string(std::string_view name) {
  if (name == "greedy") return RoutingKind::kGreedy;
  if (name == "tree") return RoutingKind::kTree;
  if (name == "dv") return RoutingKind::kDv;
  throw std::invalid_argument("unknown routing kind: " + std::string(name));
}

UphillRouter::UphillRouter(const std::vector<Vec3>& positions, double range_m) {
  candidates_.resize(positions.size());
  depths_.reserve(positions.size());
  for (const Vec3& p : positions) depths_.push_back(p.z);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (i == j) continue;
      if (positions[j].z < positions[i].z &&
          positions[i].distance_to(positions[j]) <= range_m) {
        candidates_[i].push_back(static_cast<NodeId>(j));
      }
    }
  }
}

std::optional<NodeId> UphillRouter::pick_destination(NodeId src, Rng& rng) const {
  const auto& options = candidates_.at(src);
  if (options.empty()) return std::nullopt;
  return options[rng.below(options.size())];
}

std::optional<NodeId> UphillRouter::shallowest_candidate(NodeId src) const {
  const auto& options = candidates_.at(src);
  if (options.empty()) return std::nullopt;
  NodeId best = options.front();
  for (const NodeId candidate : options) {
    if (depths_[candidate] < depths_[best]) best = candidate;
  }
  return best;
}

std::optional<NodeId> UphillRouter::shallowest_candidate(NodeId src,
                                                         const NodeFilter& blocked) const {
  const auto& options = candidates_.at(src);
  std::optional<NodeId> best;
  for (const NodeId candidate : options) {
    if (blocked && blocked(candidate)) continue;
    if (!best || depths_[candidate] < depths_[*best]) best = candidate;
  }
  return best;
}

std::size_t UphillRouter::source_count() const {
  std::size_t n = 0;
  for (const auto& options : candidates_) {
    if (!options.empty()) ++n;
  }
  return n;
}

}  // namespace aquamac

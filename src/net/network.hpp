#pragma once
// Network: assembles one complete simulated UASN — channel, nodes,
// modems, MACs, mobility, routing and traffic — from a ScenarioConfig,
// runs it, and aggregates statistics. One Network per run; fully
// reproducible from (config, config.seed).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "channel/acoustic_channel.hpp"
#include "channel/propagation.hpp"
#include "channel/reception.hpp"
#include "fault/fault_plan.hpp"
#include "mac/mac_factory.hpp"
#include "net/deployment.hpp"
#include "net/dv_router.hpp"
#include "net/node.hpp"
#include "net/relay.hpp"
#include "net/route_table.hpp"
#include "net/routing.hpp"
#include "net/traffic.hpp"
#include "sim/shard_plan.hpp"
#include "sim/simulator.hpp"
#include "stats/deferred_trace.hpp"
#include "stats/metrics.hpp"
#include "stats/trace.hpp"

namespace aquamac {

enum class PropagationKind { kStraightLine, kBellhopLite };
enum class ReceptionKind { kDeterministic, kSinrPer };

struct ScenarioConfig {
  MacKind mac{MacKind::kEwMac};
  std::size_t node_count{60};
  std::uint64_t seed{1};

  /// Harness-level only (never read inside a run): worker threads used by
  /// run_replicated / run_sweep to fan independent (protocol, x, seed)
  /// runs across cores. 0 = auto (AQUAMAC_JOBS env, else hardware
  /// concurrency); 1 = the serial code path. Results are bit-identical
  /// for every jobs value — each run owns its Simulator/Network/RNG.
  unsigned jobs{0};

  /// Intra-run parallelism: shard the event loop spatially into this many
  /// conservative-PDES shards (see docs/parallel-des.md). 1 = the serial
  /// engine. Results are bit-identical for every shards value — the
  /// sharded engine replays the serial event order exactly — so this is a
  /// pure wall-clock knob, worthwhile from a few thousand nodes up.
  unsigned shards{1};

  /// Table 2: 300 s of offered traffic after a discovery warm-up.
  Duration sim_time{Duration::seconds(300)};
  Duration hello_window{Duration::seconds(10)};
  std::uint32_t hello_rounds{2};

  ChannelConfig channel{};
  double bit_rate_bps{12'000.0};
  PowerProfile power{};

  PropagationKind propagation{PropagationKind::kStraightLine};
  double sound_speed_mps{1'500.0};

  ReceptionKind reception{ReceptionKind::kDeterministic};
  Modulation modulation{Modulation::kFskNoncoherent};

  DeploymentConfig deployment{};
  bool enable_mobility{true};
  MobilityConfig mobility{};
  /// Mobility position re-sampling cadence (applies to all drifters).

  MacConfig mac_config{};
  TrafficConfig traffic{};

  /// Multi-hop mode (§3.1/Fig. 1): traffic is originated toward surface
  /// sinks and relayed hop-by-hop; sinks are the shallowest
  /// `sink_fraction` of nodes (at least one). Off by default — the
  /// paper's figures measure one-hop MAC throughput.
  bool multi_hop{false};
  double sink_fraction{0.1};
  std::uint8_t hop_limit{16};

  /// Which routing layer names next hops in multi-hop mode
  /// (docs/routing.md). The static shortest-delay tree is the default;
  /// kGreedy keeps the original depth-greedy rule as a baseline
  /// comparator; kDv runs the distance-vector protocol with piggybacked
  /// advertisements and route maintenance.
  RoutingKind routing{RoutingKind::kTree};
  /// DV beacon period: every node broadcasts a (route-ad-carrying) HELLO
  /// on this cadence, and sinks bump their sequence number each round —
  /// the mechanism that flushes stale routes after faults.
  Duration routing_beacon{Duration::seconds(10)};

  /// Hop-by-hop reliability layer (docs/reliability.md): bounded custody
  /// queues, seeded retry backoff and next-hop failover in the relay
  /// agents. Disabled by default (max_retries 0) — legacy behavior.
  ReliabilityConfig reliability{};
  /// Greedy-baseline dead-neighbor blacklist (ROADMAP 2c): when on, the
  /// depth rule skips neighbors the MAC currently declares dead (only
  /// meaningful with mac_config.dead_neighbor_threshold > 0, so default
  /// scenarios are unchanged). Off pins the naive always-same-hop greedy
  /// baseline benches compare against.
  bool greedy_blacklist{true};

  /// Hard node failures: at `node_failure_time` after traffic start, a
  /// random `node_failure_fraction` of nodes goes permanently silent.
  double node_failure_fraction{0.0};
  Duration node_failure_time{Duration::seconds(60)};

  /// Clock-synchronization imperfection (§3.1 assumes perfect sync; this
  /// knob exists for the failure-injection studies): each node's clock is
  /// offset by a normal(0, sigma) draw, skewing the timestamps from which
  /// neighbors measure propagation delays.
  double clock_offset_stddev_s{0.0};

  /// Time-varying fault injection (drift, outages, burst loss, storms).
  /// With every knob at zero no FaultPlan is constructed and the run is
  /// bit-identical to a configuration without the subsystem.
  FaultConfig fault{};

  /// Optional structured PHY trace (not owned).
  TraceSink* trace{nullptr};

  /// Periodic checkpointing (docs/checkpoint.md): every multiple of this
  /// interval the harness snapshots the run to checkpoint_path,
  /// overwriting the previous snapshot. Zero disables.
  Duration checkpoint_every{};
  std::string checkpoint_path{};

  Logger logger{Logger::off()};
};

/// Boundary instrumentation for Network::run: the run pauses at each
/// listed time (ascending; entries past the horizon never fire) and calls
/// `on_boundary`; returning false stops the run at that boundary. The
/// pauses are non-perturbing — splitting run_until at a boundary executes
/// the same events in the same order as running straight through.
struct RunBoundaryHooks {
  std::vector<Time> boundaries;
  std::function<bool(Time boundary)> on_boundary;
};

class Network {
 public:
  /// Builds everything. tau_max (slot sizing) is derived from
  /// channel.comm_range_m / sound_speed_mps unless mac_config.tau_max was
  /// explicitly customized away from its default.
  Network(Simulator& sim, const ScenarioConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Schedules hello rounds, mobility updates and traffic, then runs the
  /// simulator to the configured horizon. Batch workloads (Figs. 8/9)
  /// stop early once every offered packet has been acknowledged or
  /// dropped, so completion time and energy are measured exactly.
  RunStats run();

  /// run() with boundary hooks (checkpointing, warm-started sweeps). The
  /// executed event sequence is identical to the hook-free run; stats()
  /// reflects the stop point when a hook ends the run early.
  RunStats run(const RunBoundaryHooks& hooks);

  /// Sender-side completion: every offered packet acked or dropped.
  [[nodiscard]] bool workload_complete() const;

  /// Runs until `until`, without scheduling anything extra (tests drive
  /// phases manually via the accessors below).
  void run_until(Time until) { sim_.run_until(until); }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(id); }
  [[nodiscard]] AcousticChannel& channel() { return *channel_; }
  [[nodiscard]] const UphillRouter& router() const { return *router_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] Time traffic_start() const { return traffic_start_; }
  [[nodiscard]] Time horizon() const { return horizon_; }
  /// Multi-hop mode only; null otherwise.
  [[nodiscard]] const RelayAgent* relay(NodeId id) const {
    return relays_.empty() ? nullptr : relays_.at(id).get();
  }
  /// The static shortest-delay tree (multi-hop mode; built at traffic
  /// start from the NeighborTable estimates, null before then).
  [[nodiscard]] const RouteTable* route_table() const { return route_table_.get(); }
  /// Per-node DV state (routing == kDv only; null otherwise).
  [[nodiscard]] const DvRouter* dv_router(NodeId id) const {
    return dv_routers_.empty() ? nullptr : dv_routers_.at(id).get();
  }

  /// Aggregated statistics at the current simulation time.
  [[nodiscard]] RunStats stats() const;

  /// The realized fault timeline; null when config.fault is all-zero.
  [[nodiscard]] const FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Diagnostic: mean one-hop degree of the as-built deployment.
  [[nodiscard]] double deployed_mean_degree() const;

  /// The spatial shard plan; null when config.shards <= 1.
  [[nodiscard]] const ShardPlan* shard_plan() const { return shard_plan_.get(); }

  /// Encodes the complete runtime state of the run — engine, every node's
  /// modem/MAC/neighbor/mobility state, traffic and route RNG streams,
  /// fault-plan loss streams, channel tally and trace position — as the
  /// checkpoint payload (docs/checkpoint.md). Callable at any boundary
  /// time (i.e. between events).
  void save_state(StateWriter& writer) const;
  /// Decodes a payload produced by save_state, assigning every field.
  void restore_state(StateReader& reader);
  /// Digest-verified restore at the checkpoint time: requires this
  /// (replayed) network's state to byte-match `payload`, then round-trips
  /// it through restore_state + save_state. Throws CheckpointError naming
  /// the first diverging section on any mismatch.
  void verify_restore(const std::string& payload);

 private:
  /// Conservative lookahead under current modem positions (sharded runs).
  [[nodiscard]] Duration shard_lookahead() const;
  void schedule_hello_phase();
  void schedule_mobility();
  void start_traffic();
  void schedule_faults();
  void schedule_aging();
  /// Builds the static shortest-delay tree from the neighbor tables as
  /// they stand now (a lane-0 event at traffic start).
  void rebuild_route_table();
  /// DV periodic beacons: per-node jittered HELLO broadcasts; sinks bump
  /// their sequence number each round.
  void schedule_dv_beacons();
  void schedule_next_beacon(NodeId id);
  /// DvRouter change hook: traces kRouteUpdate and schedules a
  /// rate-limited triggered-update HELLO.
  void on_route_change(NodeId id);
  void trace_fault(TraceEventKind kind, NodeId node, std::int64_t a = 0,
                   std::int64_t b = 0) const;

  Simulator& sim_;
  ScenarioConfig config_;  // lint: ckpt-skip(the checkpoint carries the scenario text)
  Rng rng_;  // lint: ckpt-skip(construction-only stream: topology + forks, never redrawn)

  std::unique_ptr<PropagationModel> propagation_;  // lint: ckpt-skip(stateless model from config)
  std::unique_ptr<ReceptionModel> reception_;      // lint: ckpt-skip(stateless model from config)
  std::unique_ptr<AcousticChannel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<UphillRouter> router_;  // lint: ckpt-skip(immutable candidates from initial positions)
  std::vector<std::unique_ptr<RelayAgent>> relays_;  ///< multi-hop mode only
  /// Static shortest-delay tree (multi-hop; null until traffic start).
  std::unique_ptr<RouteTable> route_table_;  // lint: ckpt-skip(rebuilt deterministically at traffic start)
  std::vector<std::unique_ptr<DvRouter>> dv_routers_;  ///< kDv mode only
  /// Beacon/trigger jitter streams, one per node (kDv mode), heap-held so
  /// scheduling lambdas can reference them and checkpoints can reach them.
  std::vector<std::unique_ptr<Rng>> beacon_rngs_;
  /// Relay backoff jitter streams, one per node (multi-hop mode with the
  /// reliability layer enabled), heap-held for the same reasons.
  std::vector<std::unique_ptr<Rng>> relay_rngs_;
  /// Triggered-update rate limit: no triggered HELLO before this time.
  std::vector<Time> dv_trigger_after_;
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  /// Single-hop routing draw streams, one per traffic source, heap-held
  /// so the emit lambdas can reference them and checkpoints can reach
  /// them (a by-value rng captured in a closure would be unserializable).
  std::vector<std::unique_ptr<Rng>> route_rngs_;
  std::vector<Vec3> initial_positions_;  // lint: ckpt-skip(set once at construction from the scenario)
  std::unique_ptr<FaultPlan> fault_plan_;  ///< null when faults disabled
  std::unique_ptr<ShardPlan> shard_plan_;  // lint: ckpt-skip(derived from config + initial positions)
  /// Wraps config.trace for sharded runs (barrier-ordered replay); the
  /// sink modems/MACs/fault tracing actually write to.
  std::unique_ptr<DeferredTraceSink> deferred_trace_;  // lint: ckpt-skip(trace plumbing, not simulation state)
  /// Counts + digests the event stream ahead of config.trace so
  /// checkpoints can record the trace position; null without a trace.
  std::unique_ptr<TallyTrace> tally_trace_;
  TraceSink* run_trace_{nullptr};

  Time traffic_start_{};  // lint: ckpt-skip(derived from config at construction)
  Time horizon_{};        // lint: ckpt-skip(derived from config at construction)
};

}  // namespace aquamac

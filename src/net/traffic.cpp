#include "net/traffic.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

double per_node_packet_rate(const TrafficConfig& config, std::size_t sources) {
  if (sources == 0) return 0.0;
  const double mean_bits =
      0.5 * (static_cast<double>(config.packet_bits_min) +
             static_cast<double>(config.packet_bits_max));
  const double network_bps = config.offered_load_kbps * 1'000.0;
  return network_bps / mean_bits / static_cast<double>(sources);
}

TrafficSource::TrafficSource(Simulator& sim, TrafficConfig config, double node_rate_pps,
                             Rng rng, EmitFn emit)
    : sim_{sim},
      config_{config},
      rate_pps_{node_rate_pps},
      rng_{rng},
      emit_{std::move(emit)} {}

std::uint32_t TrafficSource::draw_size() {
  if (config_.packet_bits_min >= config_.packet_bits_max) return config_.packet_bits_min;
  return static_cast<std::uint32_t>(
      rng_.uniform_int(config_.packet_bits_min, config_.packet_bits_max));
}

void TrafficSource::start(Time start, std::uint32_t batch_count) {
  switch (config_.mode) {
    case TrafficMode::kPoisson: {
      if (rate_pps_ <= 0.0) return;
      sim_.at(start, [this] { schedule_next(); });
      break;
    }
    case TrafficMode::kBatch: {
      for (std::uint32_t i = 0; i < batch_count; ++i) {
        // Small stagger so a node's batch does not hit one slot en masse.
        const Duration stagger = Duration::from_seconds(rng_.uniform01() * 1.0);
        sim_.at(start + stagger, [this] {
          ++generated_;
          emit_(draw_size());
        });
      }
      break;
    }
  }
}

void TrafficSource::schedule_next() {
  const Duration gap = Duration::from_seconds(rng_.exponential(1.0 / rate_pps_));
  sim_.in(gap, [this] {
    ++generated_;
    emit_(draw_size());
    schedule_next();
  });
}

void TrafficSource::save_state(StateWriter& writer) const {
  for (const std::uint64_t word : rng_.state()) writer.write_u64(word);
  writer.write_u64(generated_);
}

void TrafficSource::restore_state(StateReader& reader) {
  Rng::State words{};
  for (std::uint64_t& word : words) word = reader.read_u64();
  rng_.set_state(words);
  generated_ = reader.read_u64();
}

}  // namespace aquamac

#include "net/neighbor_table.hpp"

#include <algorithm>

namespace aquamac {

void NeighborTable::update(NodeId neighbor, Duration delay, Time now) {
  one_hop_[neighbor] = Entry{delay, now};
}

std::optional<Duration> NeighborTable::delay_to(NodeId neighbor) const {
  const auto it = one_hop_.find(neighbor);
  if (it == one_hop_.end()) return std::nullopt;
  return it->second.delay;
}

std::optional<Duration> NeighborTable::max_known_delay() const {
  if (one_hop_.empty()) return std::nullopt;
  Duration max{};
  for (const auto& [id, entry] : one_hop_) max = std::max(max, entry.delay);
  return max;
}

std::vector<NodeId> NeighborTable::neighbor_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(one_hop_.size());
  // std::map iteration: already ascending NodeId.
  for (const auto& [id, entry] : one_hop_) ids.push_back(id);
  return ids;
}

std::optional<Time> NeighborTable::last_updated(NodeId neighbor) const {
  const auto it = one_hop_.find(neighbor);
  if (it == one_hop_.end()) return std::nullopt;
  return it->second.updated;
}

std::vector<NodeId> NeighborTable::evict_older_than(Duration age, Time now) {
  const Time horizon = now - age;
  std::vector<NodeId> evicted;
  for (const auto& [id, entry] : one_hop_) {
    if (entry.updated < horizon) evicted.push_back(id);
  }
  for (const NodeId id : evicted) one_hop_.erase(id);
  for (auto& [via, fars] : two_hop_) {
    std::erase_if(fars, [horizon](const auto& kv) { return kv.second.updated < horizon; });
  }
  std::erase_if(two_hop_, [](const auto& kv) { return kv.second.empty(); });
  // Already ascending: collected in std::map iteration order.
  return evicted;
}

void NeighborTable::expire_older_than(Time horizon) {
  std::erase_if(one_hop_, [horizon](const auto& kv) { return kv.second.updated < horizon; });
  for (auto& [via, fars] : two_hop_) {
    std::erase_if(fars, [horizon](const auto& kv) { return kv.second.updated < horizon; });
  }
  std::erase_if(two_hop_, [](const auto& kv) { return kv.second.empty(); });
}

void NeighborTable::update_two_hop(NodeId via, NodeId far, Duration delay, Time now) {
  two_hop_[via][far] = Entry{delay, now};
}

std::optional<Duration> NeighborTable::two_hop_delay(NodeId via, NodeId far) const {
  const auto it = two_hop_.find(via);
  if (it == two_hop_.end()) return std::nullopt;
  const auto jt = it->second.find(far);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second.delay;
}

std::size_t NeighborTable::two_hop_size() const {
  std::size_t n = 0;
  for (const auto& [via, fars] : two_hop_) n += fars.size();
  return n;
}

}  // namespace aquamac

#include "net/neighbor_table.hpp"

#include <algorithm>
#include <cmath>

#include "sim/checkpoint.hpp"

namespace aquamac {

void NeighborTable::update(NodeId neighbor, Duration delay, Time now, double alpha) {
  const auto it = one_hop_.find(neighbor);
  if (it == one_hop_.end() || alpha >= 1.0) {
    one_hop_[neighbor] = Entry{delay, now};
    return;
  }
  // EWMA in exact integer nanoseconds: stored += round(alpha * (sample -
  // stored)). One llround per sample keeps the result independent of how
  // a compiler associates floating-point sums across samples.
  const Duration diff = delay - it->second.delay;
  const auto step =
      static_cast<std::int64_t>(std::llround(alpha * static_cast<double>(diff.count_ns())));
  it->second.delay += Duration::nanoseconds(step);
  it->second.updated = now;
}

std::optional<Duration> NeighborTable::delay_to(NodeId neighbor) const {
  const auto it = one_hop_.find(neighbor);
  if (it == one_hop_.end()) return std::nullopt;
  return it->second.delay;
}

std::optional<Duration> NeighborTable::max_known_delay() const {
  if (one_hop_.empty()) return std::nullopt;
  Duration max{};
  for (const auto& [id, entry] : one_hop_) max = std::max(max, entry.delay);
  return max;
}

std::vector<NodeId> NeighborTable::neighbor_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(one_hop_.size());
  // std::map iteration: already ascending NodeId.
  for (const auto& [id, entry] : one_hop_) ids.push_back(id);
  return ids;
}

std::optional<Time> NeighborTable::last_updated(NodeId neighbor) const {
  const auto it = one_hop_.find(neighbor);
  if (it == one_hop_.end()) return std::nullopt;
  return it->second.updated;
}

std::vector<NodeId> NeighborTable::evict_older_than(Duration age, Time now) {
  const Time horizon = now - age;
  std::vector<NodeId> evicted;
  for (const auto& [id, entry] : one_hop_) {
    if (entry.updated < horizon) evicted.push_back(id);
  }
  for (const NodeId id : evicted) one_hop_.erase(id);
  for (auto& [via, fars] : two_hop_) {
    std::erase_if(fars, [horizon](const auto& kv) { return kv.second.updated < horizon; });
  }
  std::erase_if(two_hop_, [](const auto& kv) { return kv.second.empty(); });
  // Already ascending: collected in std::map iteration order.
  return evicted;
}

void NeighborTable::expire_older_than(Time horizon) {
  std::erase_if(one_hop_, [horizon](const auto& kv) { return kv.second.updated < horizon; });
  for (auto& [via, fars] : two_hop_) {
    std::erase_if(fars, [horizon](const auto& kv) { return kv.second.updated < horizon; });
  }
  std::erase_if(two_hop_, [](const auto& kv) { return kv.second.empty(); });
}

void NeighborTable::update_two_hop(NodeId via, NodeId far, Duration delay, Time now) {
  two_hop_[via][far] = Entry{delay, now};
}

std::optional<Duration> NeighborTable::two_hop_delay(NodeId via, NodeId far) const {
  const auto it = two_hop_.find(via);
  if (it == two_hop_.end()) return std::nullopt;
  const auto jt = it->second.find(far);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second.delay;
}

std::size_t NeighborTable::two_hop_size() const {
  std::size_t n = 0;
  for (const auto& [via, fars] : two_hop_) n += fars.size();
  return n;
}

void NeighborTable::save_state(StateWriter& writer) const {
  writer.write_u64(one_hop_.size());
  for (const auto& [neighbor, entry] : one_hop_) {
    writer.write_u32(neighbor);
    writer.write_duration(entry.delay);
    writer.write_time(entry.updated);
  }
  writer.write_u64(two_hop_.size());
  for (const auto& [via, fars] : two_hop_) {
    writer.write_u32(via);
    writer.write_u64(fars.size());
    for (const auto& [far, entry] : fars) {
      writer.write_u32(far);
      writer.write_duration(entry.delay);
      writer.write_time(entry.updated);
    }
  }
}

void NeighborTable::restore_state(StateReader& reader) {
  one_hop_.clear();
  const std::uint64_t one_hop = reader.read_u64();
  for (std::uint64_t k = 0; k < one_hop; ++k) {
    const NodeId neighbor = reader.read_u32();
    Entry entry{};
    entry.delay = reader.read_duration();
    entry.updated = reader.read_time();
    one_hop_[neighbor] = entry;
  }
  two_hop_.clear();
  const std::uint64_t vias = reader.read_u64();
  for (std::uint64_t k = 0; k < vias; ++k) {
    const NodeId via = reader.read_u32();
    std::map<NodeId, Entry>& fars = two_hop_[via];
    const std::uint64_t far_count = reader.read_u64();
    for (std::uint64_t j = 0; j < far_count; ++j) {
      const NodeId far = reader.read_u32();
      Entry entry{};
      entry.delay = reader.read_duration();
      entry.updated = reader.read_time();
      fars[far] = entry;
    }
  }
}

}  // namespace aquamac

#include "net/relay.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

RelayCounters& RelayCounters::operator+=(const RelayCounters& o) {
  originated += o.originated;
  arrived_at_sink += o.arrived_at_sink;
  forwarded += o.forwarded;
  dropped_no_route += o.dropped_no_route;
  dropped_hop_limit += o.dropped_hop_limit;
  dropped_mac += o.dropped_mac;
  total_e2e_latency += o.total_e2e_latency;
  total_hops += o.total_hops;
  total_stretch_hops += o.total_stretch_hops;
  total_tree_hops += o.total_tree_hops;
  return *this;
}

RelayAgent::RelayAgent(Simulator& sim, MacProtocol& mac, NodeId self, bool is_sink,
                       NextHopFn next_hop, std::uint8_t hop_limit)
    : sim_{sim},
      mac_{mac},
      self_{self},
      is_sink_{is_sink},
      next_hop_{std::move(next_hop)},
      hop_limit_{hop_limit} {
  mac_.set_delivery_handler([this](const Frame& frame) { on_delivery(frame); });
  mac_.set_drop_handler([this](NodeId, const E2eHeader& e2e) {
    if (e2e.origin != kNoNode) counters_.dropped_mac += 1;
  });
}

void RelayAgent::trace_relay(TraceEventKind kind, std::uint64_t e2e_id, NodeId origin,
                             std::int64_t a, std::int64_t b) const {
  if (trace_ == nullptr) return;
  TraceEvent event{};
  event.kind = kind;
  event.at = sim_.now();
  event.node = self_;
  event.src = origin;
  event.seq = e2e_id;
  event.a = a;
  event.b = b;
  trace_->record(event);
}

void RelayAgent::originate(std::uint32_t payload_bits) {
  const auto hop = next_hop_(self_);
  if (!hop) {
    counters_.dropped_no_route += 1;
    return;
  }
  E2eHeader e2e{};
  e2e.origin = self_;
  e2e.final_dst = kBroadcast;  // "any sink" — absorbed by the first sink
  e2e.hop_count = 1;
  e2e.e2e_id = (static_cast<std::uint64_t>(self_) << 32) | next_e2e_id_++;
  e2e.created_at = sim_.now();
  counters_.originated += 1;
  trace_relay(TraceEventKind::kRelayOriginate, e2e.e2e_id, self_, 1,
              advertised_hops_ ? advertised_hops_(self_) : 0);
  mac_.enqueue_packet(*hop, payload_bits, e2e);
}

void RelayAgent::on_delivery(const Frame& frame) {
  if (frame.origin == kNoNode) return;  // single-hop traffic: not ours
  if (is_sink_) {
    counters_.arrived_at_sink += 1;
    counters_.total_e2e_latency += sim_.now() - frame.created_at;
    counters_.total_hops += frame.hop_count;
    const std::uint32_t tree = tree_hops_ ? tree_hops_(frame.origin) : 0;
    if (tree > 0) {
      counters_.total_tree_hops += tree;
      counters_.total_stretch_hops += frame.hop_count;
    }
    trace_relay(TraceEventKind::kRelayArrive, frame.e2e_id, frame.origin, frame.hop_count, 0);
    return;
  }
  forward(frame);
}

void RelayAgent::forward(const Frame& frame) {
  if (frame.hop_count >= hop_limit_) {
    counters_.dropped_hop_limit += 1;
    return;
  }
  const auto hop = next_hop_(self_);
  if (!hop) {
    counters_.dropped_no_route += 1;
    return;
  }
  E2eHeader e2e{};
  e2e.origin = frame.origin;
  e2e.final_dst = frame.final_dst;
  e2e.hop_count = static_cast<std::uint8_t>(frame.hop_count + 1);
  e2e.e2e_id = frame.e2e_id;
  e2e.created_at = frame.created_at;
  counters_.forwarded += 1;
  trace_relay(TraceEventKind::kRelayForward, e2e.e2e_id, e2e.origin, e2e.hop_count,
              advertised_hops_ ? advertised_hops_(self_) : 0);
  mac_.enqueue_packet(*hop, frame.data_bits, e2e);
}

void RelayAgent::save_state(StateWriter& writer) const {
  writer.write_u64(next_e2e_id_);
  writer.write_u64(counters_.originated);
  writer.write_u64(counters_.arrived_at_sink);
  writer.write_u64(counters_.forwarded);
  writer.write_u64(counters_.dropped_no_route);
  writer.write_u64(counters_.dropped_hop_limit);
  writer.write_u64(counters_.dropped_mac);
  writer.write_duration(counters_.total_e2e_latency);
  writer.write_u64(counters_.total_hops);
  writer.write_u64(counters_.total_stretch_hops);
  writer.write_u64(counters_.total_tree_hops);
}

void RelayAgent::restore_state(StateReader& reader) {
  next_e2e_id_ = reader.read_u64();
  counters_.originated = reader.read_u64();
  counters_.arrived_at_sink = reader.read_u64();
  counters_.forwarded = reader.read_u64();
  counters_.dropped_no_route = reader.read_u64();
  counters_.dropped_hop_limit = reader.read_u64();
  counters_.dropped_mac = reader.read_u64();
  counters_.total_e2e_latency = reader.read_duration();
  counters_.total_hops = reader.read_u64();
  counters_.total_stretch_hops = reader.read_u64();
  counters_.total_tree_hops = reader.read_u64();
}

}  // namespace aquamac

#include "net/relay.hpp"

namespace aquamac {

RelayCounters& RelayCounters::operator+=(const RelayCounters& o) {
  originated += o.originated;
  arrived_at_sink += o.arrived_at_sink;
  forwarded += o.forwarded;
  dropped_no_route += o.dropped_no_route;
  dropped_hop_limit += o.dropped_hop_limit;
  dropped_mac += o.dropped_mac;
  total_e2e_latency += o.total_e2e_latency;
  total_hops += o.total_hops;
  return *this;
}

RelayAgent::RelayAgent(Simulator& sim, MacProtocol& mac, NodeId self, bool is_sink,
                       NextHopFn next_hop, std::uint8_t hop_limit)
    : sim_{sim},
      mac_{mac},
      self_{self},
      is_sink_{is_sink},
      next_hop_{std::move(next_hop)},
      hop_limit_{hop_limit} {
  mac_.set_delivery_handler([this](const Frame& frame) { on_delivery(frame); });
  mac_.set_drop_handler([this](NodeId, const E2eHeader& e2e) {
    if (e2e.origin != kNoNode) counters_.dropped_mac += 1;
  });
}

void RelayAgent::originate(std::uint32_t payload_bits) {
  const auto hop = next_hop_(self_);
  if (!hop) {
    counters_.dropped_no_route += 1;
    return;
  }
  E2eHeader e2e{};
  e2e.origin = self_;
  e2e.final_dst = kBroadcast;  // "any sink" — absorbed by the first sink
  e2e.hop_count = 1;
  e2e.e2e_id = (static_cast<std::uint64_t>(self_) << 32) | next_e2e_id_++;
  e2e.created_at = sim_.now();
  counters_.originated += 1;
  mac_.enqueue_packet(*hop, payload_bits, e2e);
}

void RelayAgent::on_delivery(const Frame& frame) {
  if (frame.origin == kNoNode) return;  // single-hop traffic: not ours
  if (is_sink_) {
    counters_.arrived_at_sink += 1;
    counters_.total_e2e_latency += sim_.now() - frame.created_at;
    counters_.total_hops += frame.hop_count;
    return;
  }
  forward(frame);
}

void RelayAgent::forward(const Frame& frame) {
  if (frame.hop_count >= hop_limit_) {
    counters_.dropped_hop_limit += 1;
    return;
  }
  const auto hop = next_hop_(self_);
  if (!hop) {
    counters_.dropped_no_route += 1;
    return;
  }
  E2eHeader e2e{};
  e2e.origin = frame.origin;
  e2e.final_dst = frame.final_dst;
  e2e.hop_count = static_cast<std::uint8_t>(frame.hop_count + 1);
  e2e.e2e_id = frame.e2e_id;
  e2e.created_at = frame.created_at;
  counters_.forwarded += 1;
  mac_.enqueue_packet(*hop, frame.data_bits, e2e);
}

}  // namespace aquamac

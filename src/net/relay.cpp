#include "net/relay.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/checkpoint.hpp"

namespace aquamac {

std::string_view to_string(RelayDropPolicy policy) {
  switch (policy) {
    case RelayDropPolicy::kTailDrop: return "tail-drop";
    case RelayDropPolicy::kOldestFirst: return "oldest-first";
  }
  return "?";
}

RelayDropPolicy relay_drop_policy_from_string(std::string_view name) {
  if (name == "tail-drop") return RelayDropPolicy::kTailDrop;
  if (name == "oldest-first") return RelayDropPolicy::kOldestFirst;
  throw std::invalid_argument("unknown relay drop policy: " + std::string(name));
}

// lint: stats-site(RelayCounters)
RelayCounters& RelayCounters::operator+=(const RelayCounters& o) {
  originated += o.originated;
  arrived_at_sink += o.arrived_at_sink;
  forwarded += o.forwarded;
  dropped_no_route += o.dropped_no_route;
  dropped_hop_limit += o.dropped_hop_limit;
  dropped_mac += o.dropped_mac;
  total_e2e_latency += o.total_e2e_latency;
  total_hops += o.total_hops;
  total_stretch_hops += o.total_stretch_hops;
  total_tree_hops += o.total_tree_hops;
  retransmissions += o.retransmissions;
  failovers += o.failovers;
  dead_letter_exhausted += o.dead_letter_exhausted;
  dead_letter_overflow += o.dead_letter_overflow;
  dead_letter_no_route += o.dead_letter_no_route;
  duplicates_suppressed += o.duplicates_suppressed;
  // Aggregated high-water is the worst single node, not a network sum.
  queue_highwater = std::max(queue_highwater, o.queue_highwater);
  return *this;
}

RelayAgent::RelayAgent(Simulator& sim, MacProtocol& mac, NodeId self, bool is_sink,
                       NextHopFn next_hop, std::uint8_t hop_limit, ReliabilityConfig reliability)
    : sim_{sim},
      mac_{mac},
      self_{self},
      is_sink_{is_sink},
      next_hop_{std::move(next_hop)},
      hop_limit_{hop_limit},
      rel_{reliability} {
  mac_.set_delivery_handler([this](const Frame& frame) { on_delivery(frame); });
  mac_.set_drop_handler(
      [this](NodeId dst, const E2eHeader& e2e) { on_mac_drop(dst, e2e); });
  mac_.set_sent_handler([this](NodeId, const E2eHeader& e2e) { on_mac_sent(e2e); });
}

void RelayAgent::trace_relay(TraceEventKind kind, std::uint64_t e2e_id, NodeId origin,
                             std::int64_t a, std::int64_t b, NodeId dst) const {
  if (trace_ == nullptr) return;
  TraceEvent event{};
  event.kind = kind;
  event.at = sim_.now();
  event.node = self_;
  event.src = origin;
  event.dst = dst;
  event.seq = e2e_id;
  event.a = a;
  event.b = b;
  trace_->record(event);
}

std::size_t RelayAgent::in_backoff_count() const {
  std::size_t n = 0;
  for (const auto& [id, custody] : custody_) {
    if (custody.in_backoff) ++n;
  }
  return n;
}

void RelayAgent::originate(std::uint32_t payload_bits) {
  const auto hop = next_hop_(self_);
  if (!hop) {
    counters_.dropped_no_route += 1;
    return;
  }
  E2eHeader e2e{};
  e2e.origin = self_;
  e2e.final_dst = kBroadcast;  // "any sink" — absorbed by the first sink
  e2e.hop_count = 1;
  e2e.e2e_id = (static_cast<std::uint64_t>(self_) << 32) | next_e2e_id_++;
  e2e.created_at = sim_.now();
  counters_.originated += 1;
  trace_relay(TraceEventKind::kRelayOriginate, e2e.e2e_id, self_, 1,
              advertised_hops_ ? advertised_hops_(self_) : 0);
  admit(e2e, payload_bits, *hop);
}

void RelayAgent::on_delivery(const Frame& frame) {
  if (frame.origin == kNoNode) return;  // single-hop traffic: not ours
  if (is_sink_) {
    if (rel_.enabled()) {
      // A retransmission after a lost hop-level ACK forks a duplicate
      // copy downstream; the sink must absorb each e2e id exactly once.
      if (seen_.contains(frame.e2e_id)) {
        counters_.duplicates_suppressed += 1;
        return;
      }
      seen_.insert(frame.e2e_id);
    }
    counters_.arrived_at_sink += 1;
    counters_.total_e2e_latency += sim_.now() - frame.created_at;
    counters_.total_hops += frame.hop_count;
    const std::uint32_t tree = tree_hops_ ? tree_hops_(frame.origin) : 0;
    if (tree > 0) {
      counters_.total_tree_hops += tree;
      counters_.total_stretch_hops += frame.hop_count;
    }
    trace_relay(TraceEventKind::kRelayArrive, frame.e2e_id, frame.origin, frame.hop_count, 0);
    return;
  }
  // Custody semantics: a node carries each e2e id at most once. This both
  // suppresses duplicate forks and keeps ARQ traffic loop-free.
  if (rel_.enabled() && seen_.contains(frame.e2e_id)) {
    counters_.duplicates_suppressed += 1;
    return;
  }
  forward(frame);
}

void RelayAgent::forward(const Frame& frame) {
  if (frame.hop_count >= hop_limit_) {
    counters_.dropped_hop_limit += 1;
    return;
  }
  const auto hop = next_hop_(self_);
  if (!hop) {
    counters_.dropped_no_route += 1;
    return;
  }
  E2eHeader e2e{};
  e2e.origin = frame.origin;
  e2e.final_dst = frame.final_dst;
  e2e.hop_count = static_cast<std::uint8_t>(frame.hop_count + 1);
  e2e.e2e_id = frame.e2e_id;
  e2e.created_at = frame.created_at;
  counters_.forwarded += 1;
  trace_relay(TraceEventKind::kRelayForward, e2e.e2e_id, e2e.origin, e2e.hop_count,
              advertised_hops_ ? advertised_hops_(self_) : 0);
  admit(e2e, frame.data_bits, *hop);
}

void RelayAgent::admit(const E2eHeader& e2e, std::uint32_t bits, NodeId hop) {
  if (!rel_.enabled()) {
    mac_.enqueue_packet(hop, bits, e2e);
    return;
  }
  if (custody_.contains(e2e.e2e_id)) {
    // seen_ filters re-offers before forward(), so this is unreachable in
    // practice; refuse defensively rather than double-book custody.
    counters_.duplicates_suppressed += 1;
    trace_relay(TraceEventKind::kRelayDeadLetter, e2e.e2e_id, e2e.origin, 0, kReasonDuplicate);
    return;
  }
  if (custody_.size() >= rel_.queue_limit) {
    bool evicted = false;
    if (rel_.drop_policy == RelayDropPolicy::kOldestFirst) {
      // Evict the oldest packet waiting out a backoff: its MAC attempt is
      // over, so dropping it strands no in-flight state. Entries whose
      // packet is still inside the MAC are not evictable.
      const std::map<std::uint64_t, Custody>::const_iterator victim = std::min_element(
          custody_.begin(), custody_.end(), [](const auto& a, const auto& b) {
            if (a.second.in_backoff != b.second.in_backoff) return a.second.in_backoff;
            return a.second.admission < b.second.admission;
          });
      if (victim != custody_.end() && victim->second.in_backoff) {
        dead_letter(victim->first, victim->second.retries, kReasonOverflow);
        evicted = true;
      }
    }
    if (!evicted) {
      // Tail drop (or nothing evictable): the arriving packet is refused.
      counters_.dead_letter_overflow += 1;
      trace_relay(TraceEventKind::kRelayDeadLetter, e2e.e2e_id, e2e.origin, 0, kReasonOverflow);
      return;
    }
  }
  Custody custody{};
  custody.e2e = e2e;
  custody.bits = bits;
  custody.last_dst = hop;
  custody.admission = next_admission_++;
  custody_.emplace(e2e.e2e_id, custody);
  seen_.insert(e2e.e2e_id);
  counters_.queue_highwater =
      std::max<std::uint64_t>(counters_.queue_highwater, custody_.size());
  // The MAC may refuse synchronously (full queue / dead neighbor) and
  // re-enter on_mac_drop, so custody is booked before the enqueue and
  // nothing here touches it afterwards.
  mac_.enqueue_packet(hop, bits, e2e);
}

void RelayAgent::on_mac_drop(NodeId dst, const E2eHeader& e2e) {
  if (e2e.origin == kNoNode) return;  // single-hop traffic: not ours
  if (!rel_.enabled()) {
    counters_.dropped_mac += 1;
    return;
  }
  const auto it = custody_.find(e2e.e2e_id);
  if (it == custody_.end()) return;  // evicted while inside the MAC
  Custody& custody = it->second;
  if (custody.in_backoff) return;  // one MAC attempt at a time
  if (custody.retries >= rel_.max_retries) {
    dead_letter(e2e.e2e_id, custody.retries, kReasonExhausted);
    return;
  }
  custody.retries += 1;
  custody.last_dst = dst;
  custody.in_backoff = true;
  const Duration wait = backoff_for(custody.retries);
  trace_relay(TraceEventKind::kRelayRetry, e2e.e2e_id, custody.e2e.origin, custody.retries,
              wait.count_ns(), dst);
  const std::uint64_t id = e2e.e2e_id;
  const std::uint64_t admission = custody.admission;
  // Scheduled from this node's own lane, so the timer inherits it and the
  // retry replays identically for every shard count.
  sim_.in(wait, [this, id, admission] { on_backoff_fire(id, admission); });
}

void RelayAgent::on_mac_sent(const E2eHeader& e2e) {
  if (!rel_.enabled() || e2e.origin == kNoNode) return;
  custody_.erase(e2e.e2e_id);  // hop acknowledged: custody transfers
}

void RelayAgent::on_backoff_fire(std::uint64_t e2e_id, std::uint64_t admission) {
  const auto it = custody_.find(e2e_id);
  // Stale timer: the entry was released, evicted, or superseded.
  if (it == custody_.end() || it->second.admission != admission || !it->second.in_backoff) {
    return;
  }
  Custody& custody = it->second;
  custody.in_backoff = false;
  std::optional<NodeId> hop = next_hop_(self_);
  bool failover = false;
  if (rel_.failover && alt_next_hop_ && (!hop || *hop == custody.last_dst)) {
    // The routing layer still points at the hop that just failed (or at
    // nothing): ask it for the best alternative that avoids the failure.
    if (const auto alt = alt_next_hop_(self_, custody.last_dst);
        alt && *alt != custody.last_dst) {
      hop = alt;
      failover = true;
    }
  }
  if (!hop) {
    dead_letter(e2e_id, custody.retries, kReasonNoRoute);
    return;
  }
  counters_.retransmissions += 1;
  if (failover) counters_.failovers += 1;
  trace_relay(TraceEventKind::kRelayRequeue, e2e_id, custody.e2e.origin, custody.retries,
              failover ? 1 : 0, *hop);
  custody.last_dst = *hop;
  const E2eHeader e2e = custody.e2e;
  const std::uint32_t bits = custody.bits;
  // As in admit(): the enqueue may re-enter on_mac_drop and erase the
  // entry, so it is the last thing this function does.
  mac_.enqueue_packet(*hop, bits, e2e);
}

void RelayAgent::dead_letter(std::uint64_t e2e_id, std::uint32_t retries, std::int64_t reason) {
  switch (reason) {
    case kReasonExhausted: counters_.dead_letter_exhausted += 1; break;
    case kReasonOverflow: counters_.dead_letter_overflow += 1; break;
    case kReasonNoRoute: counters_.dead_letter_no_route += 1; break;
    default: break;
  }
  // The origin is recoverable from the id layout: (origin << 32) | seq.
  const NodeId origin = static_cast<NodeId>(e2e_id >> 32);
  trace_relay(TraceEventKind::kRelayDeadLetter, e2e_id, origin, retries, reason);
  custody_.erase(e2e_id);
}

Duration RelayAgent::backoff_for(std::uint32_t retries) {
  Duration wait = rel_.backoff_base;
  for (std::uint32_t k = 1; k < retries && wait < rel_.backoff_max; ++k) wait = wait * 2;
  wait = std::min(wait, rel_.backoff_max);
  // Seeded jitter desynchronizes neighbors that dropped in the same
  // burst; the stream is forked per node so draws never interleave.
  const double jitter = backoff_rng_ != nullptr ? backoff_rng_->uniform(1.0, 1.5) : 1.0;
  return Duration::from_seconds(wait.to_seconds() * jitter);
}

void RelayAgent::save_state(StateWriter& writer) const {
  writer.write_u64(next_e2e_id_);
  writer.write_u64(counters_.originated);
  writer.write_u64(counters_.arrived_at_sink);
  writer.write_u64(counters_.forwarded);
  writer.write_u64(counters_.dropped_no_route);
  writer.write_u64(counters_.dropped_hop_limit);
  writer.write_u64(counters_.dropped_mac);
  writer.write_duration(counters_.total_e2e_latency);
  writer.write_u64(counters_.total_hops);
  writer.write_u64(counters_.total_stretch_hops);
  writer.write_u64(counters_.total_tree_hops);
  writer.write_u64(counters_.retransmissions);
  writer.write_u64(counters_.failovers);
  writer.write_u64(counters_.dead_letter_exhausted);
  writer.write_u64(counters_.dead_letter_overflow);
  writer.write_u64(counters_.dead_letter_no_route);
  writer.write_u64(counters_.duplicates_suppressed);
  writer.write_u64(counters_.queue_highwater);
  writer.write_bool(rel_.enabled());
  if (!rel_.enabled()) return;
  writer.write_u64(next_admission_);
  writer.write_u64(custody_.size());
  for (const auto& [id, custody] : custody_) {  // ordered map: stable
    writer.write_u64(id);
    writer.write_u32(custody.e2e.origin);
    writer.write_u32(custody.e2e.final_dst);
    writer.write_u8(custody.e2e.hop_count);
    writer.write_time(custody.e2e.created_at);
    writer.write_u32(custody.bits);
    writer.write_u32(custody.retries);
    writer.write_u32(custody.last_dst);
    // Pending backoff timers carry only this bit: resume replays the
    // prefix, so the live EventHandles regenerate on their own.
    writer.write_bool(custody.in_backoff);
    writer.write_u64(custody.admission);
  }
  writer.write_u64(seen_.size());
  for (const std::uint64_t id : seen_) writer.write_u64(id);  // ordered set
}

void RelayAgent::restore_state(StateReader& reader) {
  next_e2e_id_ = reader.read_u64();
  counters_.originated = reader.read_u64();
  counters_.arrived_at_sink = reader.read_u64();
  counters_.forwarded = reader.read_u64();
  counters_.dropped_no_route = reader.read_u64();
  counters_.dropped_hop_limit = reader.read_u64();
  counters_.dropped_mac = reader.read_u64();
  counters_.total_e2e_latency = reader.read_duration();
  counters_.total_hops = reader.read_u64();
  counters_.total_stretch_hops = reader.read_u64();
  counters_.total_tree_hops = reader.read_u64();
  counters_.retransmissions = reader.read_u64();
  counters_.failovers = reader.read_u64();
  counters_.dead_letter_exhausted = reader.read_u64();
  counters_.dead_letter_overflow = reader.read_u64();
  counters_.dead_letter_no_route = reader.read_u64();
  counters_.duplicates_suppressed = reader.read_u64();
  counters_.queue_highwater = reader.read_u64();
  const bool arq = reader.read_bool();
  if (arq != rel_.enabled()) {
    // The payload layout branches on the reliability config; restoring
    // into an agent configured differently would misparse the stream.
    throw CheckpointError("relay restore: reliability-enabled mismatch with config");
  }
  if (!arq) return;
  next_admission_ = reader.read_u64();
  custody_.clear();
  const std::uint64_t custody_count = reader.read_u64();
  for (std::uint64_t k = 0; k < custody_count; ++k) {
    const std::uint64_t id = reader.read_u64();
    Custody custody{};
    custody.e2e.origin = reader.read_u32();
    custody.e2e.final_dst = reader.read_u32();
    custody.e2e.hop_count = reader.read_u8();
    custody.e2e.created_at = reader.read_time();
    custody.e2e.e2e_id = id;
    custody.bits = reader.read_u32();
    custody.retries = reader.read_u32();
    custody.last_dst = reader.read_u32();
    custody.in_backoff = reader.read_bool();
    custody.admission = reader.read_u64();
    custody_.emplace(id, custody);
  }
  seen_.clear();
  const std::uint64_t seen_count = reader.read_u64();
  for (std::uint64_t k = 0; k < seen_count; ++k) seen_.insert(reader.read_u64());
}

}  // namespace aquamac

#pragma once
// Static shortest-delay convergecast tree (docs/routing.md).
//
// RouteTable::build runs a deterministic multi-source Dijkstra from the
// sink set over the measured one-hop delay graph (each node's
// NeighborTable estimates) and records, per node, the next hop toward the
// nearest sink, the total path delay, and the hop count. Ties are broken
// by lower parent id, which is the same rule DvRouter converges to, so
// the two can be compared entry-for-entry (routing_differential_test).
//
// The table is a pure value: building it never touches the simulator, so
// property tests can hammer it on synthetic topologies.

#include <map>
#include <optional>
#include <vector>

#include "phy/frame.hpp"
#include "util/time.hpp"

namespace aquamac {

/// Minimum edge weight used by both RouteTable and DvRouter. Measured
/// delays of exactly zero (co-located nodes, clamped clock skew) would
/// allow zero-cost cycles; flooring every link keeps path cost strictly
/// increasing hop over hop, which is what makes the tree provably
/// loop-free.
[[nodiscard]] Duration route_link_cost(Duration measured_delay);

class RouteTable {
 public:
  struct Entry {
    NodeId next_hop{kNoNode};  ///< kNoNode: sink or unreachable
    Duration cost{};           ///< total path delay to the nearest sink
    std::uint32_t hops{0};
    bool reachable{false};
  };

  /// `delays[i]` is node i's measured one-hop delay map (who i can
  /// transmit to, at what propagation delay); `is_sink[i]` marks the
  /// convergecast roots. Both indexed by dense NodeId.
  [[nodiscard]] static RouteTable build(const std::vector<std::map<NodeId, Duration>>& delays,
                                        const std::vector<bool>& is_sink);

  /// Next hop toward the nearest sink; nullopt for sinks themselves and
  /// for nodes with no path to any sink.
  [[nodiscard]] std::optional<NodeId> next_hop(NodeId node) const;
  [[nodiscard]] bool reachable(NodeId node) const { return entries_.at(node).reachable; }
  [[nodiscard]] bool is_sink(NodeId node) const { return sink_.at(node); }
  [[nodiscard]] Duration cost(NodeId node) const { return entries_.at(node).cost; }
  [[nodiscard]] std::uint32_t hops(NodeId node) const { return entries_.at(node).hops; }
  [[nodiscard]] const Entry& entry(NodeId node) const { return entries_.at(node); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Number of non-sink nodes with a route (bench/test coverage metric).
  [[nodiscard]] std::size_t routed_count() const;

 private:
  std::vector<Entry> entries_;
  std::vector<bool> sink_;
};

}  // namespace aquamac

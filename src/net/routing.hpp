#pragma once
// Upward next-hop selection (Fig. 1): sensors at greater depth transmit
// to sensors closer to the surface. Candidate sets are computed from the
// deployment ground truth once at build time; per-packet destinations are
// drawn uniformly from a node's uphill candidates, spreading contention
// the way the paper's many-senders evaluation requires. Nodes with no
// shallower in-range neighbor act as sinks and generate no traffic.

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "phy/frame.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace aquamac {

/// Which routing layer feeds next hops to the relay agents in multi-hop
/// mode (docs/routing.md):
///   kGreedy — the original depth-greedy shallowest-neighbor rule,
///             computed from deployment ground truth (baseline);
///   kTree   — static shortest-delay spanning tree built from the
///             NeighborTable delay estimates at traffic start (default);
///   kDv     — the DvRouter distance-vector protocol with piggybacked
///             advertisements and route maintenance under faults.
enum class RoutingKind : std::uint8_t { kGreedy, kTree, kDv };

[[nodiscard]] std::string_view to_string(RoutingKind kind);
/// Parses "greedy" / "tree" / "dv"; throws std::invalid_argument.
[[nodiscard]] RoutingKind routing_kind_from_string(std::string_view name);

class UphillRouter {
 public:
  UphillRouter(const std::vector<Vec3>& positions, double range_m);

  /// Uniformly random uphill candidate; nullopt for sink nodes.
  [[nodiscard]] std::optional<NodeId> pick_destination(NodeId src, Rng& rng) const;

  /// Deterministic greedy next hop: the shallowest in-range neighbor
  /// (multi-hop forwarding toward the surface, Fig. 1).
  [[nodiscard]] std::optional<NodeId> shallowest_candidate(NodeId src) const;

  /// Nodes the filter returns true for are skipped (dead-neighbor
  /// blacklist, ROADMAP 2c, or retry failover exclusion). Greedy routes
  /// stay acyclic under any filter: every hop still strictly decreases
  /// depth. Nullopt when every candidate is blocked.
  using NodeFilter = std::function<bool(NodeId node)>;
  [[nodiscard]] std::optional<NodeId> shallowest_candidate(NodeId src,
                                                           const NodeFilter& blocked) const;

  [[nodiscard]] const std::vector<NodeId>& candidates(NodeId src) const {
    return candidates_.at(src);
  }
  [[nodiscard]] bool is_sink(NodeId node) const { return candidates_.at(node).empty(); }
  [[nodiscard]] std::size_t source_count() const;

 private:
  std::vector<std::vector<NodeId>> candidates_;
  std::vector<double> depths_;
};

}  // namespace aquamac

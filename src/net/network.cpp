#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/sound_speed.hpp"
#include "sim/checkpoint.hpp"
#include "util/logging.hpp"

namespace aquamac {

namespace {

std::unique_ptr<PropagationModel> make_propagation(const ScenarioConfig& config) {
  // channel.spreading is threaded into the model so the channel's cutoff
  // derivation inverts the same law the model applies.
  switch (config.propagation) {
    case PropagationKind::kStraightLine:
      return std::make_unique<StraightLinePropagation>(config.sound_speed_mps,
                                                       config.channel.spreading);
    case PropagationKind::kBellhopLite:
      // Mild downward-refracting gradient (0.017 1/s is the canonical
      // deep-isothermal value) anchored at the configured surface speed.
      return std::make_unique<BellhopLitePropagation>(
          std::make_shared<LinearProfile>(config.sound_speed_mps, 0.017),
          config.channel.spreading);
  }
  throw std::invalid_argument("unhandled PropagationKind");
}

std::unique_ptr<ReceptionModel> make_reception(const ScenarioConfig& config) {
  switch (config.reception) {
    case ReceptionKind::kDeterministic:
      return std::make_unique<DeterministicCollisionModel>();
    case ReceptionKind::kSinrPer:
      return std::make_unique<SinrPerModel>(config.modulation);
  }
  throw std::invalid_argument("unhandled ReceptionKind");
}

}  // namespace

Network::Network(Simulator& sim, const ScenarioConfig& config)
    : sim_{sim}, config_{config}, rng_{config.seed} {
  if (config_.node_count == 0) throw std::invalid_argument("node_count must be > 0");

  propagation_ = make_propagation(config_);
  reception_ = make_reception(config_);
  channel_ = std::make_unique<AcousticChannel>(sim_, *propagation_, config_.channel);
  AQUAMAC_LOG(config_.logger, LogLevel::kInfo)
      << "channel: interference cutoff " << channel_->interference_cutoff_m()
      << " m, effective floor " << channel_->effective_interference_floor_db()
      << " dB, spatial index " << (config_.channel.use_spatial_index ? "on" : "off");

  // Slot sizing: tau_max is the max-range propagation delay (§4.1) unless
  // the caller overrode the MacConfig default.
  if (config_.mac_config.tau_max == Duration::seconds(1)) {
    config_.mac_config.tau_max =
        Duration::from_seconds(config_.channel.comm_range_m / config_.sound_speed_mps);
  }

  Rng deployment_rng = rng_.fork(0xDE9107);
  initial_positions_ =
      generate_deployment(config_.deployment, config_.node_count, deployment_rng);

  // Lanes are declared unconditionally (node i -> lane i + 1): serial and
  // sharded runs must attribute events to the same lanes for their
  // ordering keys — hence their digests — to be bit-identical.
  if (config_.node_count + 1 > Simulator::kMaxLanes) {
    throw std::invalid_argument("node_count exceeds the simulator's lane space");
  }
  sim_.set_lane_count(static_cast<std::uint32_t>(config_.node_count) + 1);

  // The tally sits between producers and config.trace so checkpoints can
  // record the trace position; it forwards every event verbatim.
  if (config_.trace != nullptr) {
    tally_trace_ = std::make_unique<TallyTrace>(*config_.trace);
    run_trace_ = tally_trace_.get();
  }
  if (config_.shards > 1) {
    // Shard cells are the channel's interference cutoff: co-located or
    // near nodes share a cell (hence a shard), and the cross-shard
    // minimum distance the lookahead derives from stays macroscopic.
    shard_plan_ = std::make_unique<ShardPlan>(ShardPlan::build(
        initial_positions_, config_.shards, channel_->interference_cutoff_m()));
    ShardingOptions sharding{};
    sharding.shard_of_node = shard_plan_->shard_of_node();
    sharding.shards = shard_plan_->shards();
    sharding.lookahead = [this] { return shard_lookahead(); };
    sim_.enable_sharding(std::move(sharding));
    channel_->prepare_parallel();
    if (tally_trace_ != nullptr) {
      // The tally must sit *inside* the deferral so it sees events in
      // barrier-ordered (serial-identical) order.
      deferred_trace_ = std::make_unique<DeferredTraceSink>(sim_, *tally_trace_);
      run_trace_ = deferred_trace_.get();
    }
    AQUAMAC_LOG(config_.logger, LogLevel::kInfo)
        << "sharded engine: " << shard_plan_->shards() << " shards, cell "
        << shard_plan_->cell_size_m() << " m";
  }

  ModemConfig modem_config{};
  modem_config.bit_rate_bps = config_.bit_rate_bps;
  modem_config.power = config_.power;

  nodes_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const auto id = static_cast<NodeId>(i);
    // Anything a node's construction schedules belongs to the node's lane.
    const Simulator::LaneGuard lane{sim_, id + 1};
    auto node = std::make_unique<Node>(sim_, id, initial_positions_[i], modem_config,
                                       *reception_, rng_.fork(0x40DE00 + i));
    channel_->attach(node->modem());
    if (run_trace_ != nullptr) node->modem().set_trace(run_trace_);
    if (config_.clock_offset_stddev_s > 0.0) {
      Rng clock_rng = rng_.fork(0xC10C0 + i);
      node->modem().set_clock_offset(
          Duration::from_seconds(clock_rng.normal(0.0, config_.clock_offset_stddev_s)));
    }

    std::string tag{"n"};
    tag += std::to_string(i);
    auto mac = make_mac(config_.mac, sim_, node->modem(), node->neighbors(),
                        config_.mac_config, rng_.fork(0x3AC000 + i),
                        config_.logger.with_tag(tag));
    node->set_mac(std::move(mac));
    if (run_trace_ != nullptr) node->mac().set_trace(run_trace_);

    if (config_.enable_mobility) {
      Rng mobility_rng = rng_.fork(0x30B000 + i);
      MobilityConfig mobility_config = config_.mobility;
      mobility_config.width_m = config_.deployment.width_m;
      mobility_config.length_m = config_.deployment.length_m;
      mobility_config.depth_m = config_.deployment.depth_m;
      node->set_mobility(Mobility(Mobility::random_kind(mobility_rng), mobility_config,
                                  initial_positions_[i], mobility_rng));
    }
    nodes_.push_back(std::move(node));
  }

  router_ = std::make_unique<UphillRouter>(initial_positions_, config_.channel.comm_range_m);

  if (config_.multi_hop) {
    // Sinks: the shallowest sink_fraction of nodes (at least one).
    std::vector<NodeId> by_depth(config_.node_count);
    for (std::size_t i = 0; i < config_.node_count; ++i) by_depth[i] = static_cast<NodeId>(i);
    std::sort(by_depth.begin(), by_depth.end(), [this](NodeId a, NodeId b) {
      return initial_positions_[a].z < initial_positions_[b].z;
    });
    const auto sink_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.sink_fraction *
                                    static_cast<double>(config_.node_count)));
    std::vector<bool> is_sink(config_.node_count, false);
    for (std::size_t i = 0; i < sink_count; ++i) is_sink[by_depth[i]] = true;

    if (config_.routing == RoutingKind::kDv) {
      // Per-node DV state plus the MAC piggyback hooks: every outgoing
      // frame is stamped with the node's best route, every decodable
      // reception is ingested, and dead/evicted neighbors invalidate the
      // routes that ran through them (docs/routing.md).
      dv_routers_.reserve(config_.node_count);
      beacon_rngs_.reserve(config_.node_count);
      dv_trigger_after_.assign(config_.node_count, Time::zero());
      for (std::size_t i = 0; i < config_.node_count; ++i) {
        const auto id = static_cast<NodeId>(i);
        dv_routers_.push_back(std::make_unique<DvRouter>(id, is_sink[id]));
        beacon_rngs_.push_back(std::make_unique<Rng>(rng_.fork(0xBEAC00 + i)));
        DvRouter* dv = dv_routers_.back().get();
        MacProtocol* mac = &nodes_[i]->mac();
        mac->set_frame_stamp_hook([dv](Frame& frame) { dv->stamp(frame); });
        mac->set_frame_observe_hook([this, dv](const Frame& frame, Duration measured_delay) {
          dv->observe(frame, measured_delay, sim_.now());
        });
        mac->set_neighbor_down_hook([dv](NodeId neighbor) { dv->neighbor_down(neighbor); });
        dv->set_route_change_hook([this, id] { on_route_change(id); });
      }
    }

    relays_.reserve(config_.node_count);
    if (config_.reliability.enabled()) relay_rngs_.reserve(config_.node_count);
    for (std::size_t i = 0; i < config_.node_count; ++i) {
      const auto id = static_cast<NodeId>(i);
      RelayAgent::NextHopFn next_hop;
      switch (config_.routing) {
        case RoutingKind::kGreedy: {
          const UphillRouter* router = router_.get();
          if (config_.greedy_blacklist && config_.mac_config.dead_neighbor_threshold > 0) {
            // ROADMAP 2c: the depth rule learns from the PR 4 probe
            // signal — neighbors the MAC currently declares dead are
            // skipped, so greedy stops feeding a relay through its
            // outages. Reinstatement probes clear the blacklist entry.
            const MacProtocol* mac = &nodes_[i]->mac();
            next_hop = [router, mac](NodeId self) {
              return router->shallowest_candidate(
                  self, [mac](NodeId n) { return mac->neighbor_dead(n); });
            };
          } else {
            next_hop = [router](NodeId self) { return router->shallowest_candidate(self); };
          }
          break;
        }
        case RoutingKind::kTree:
          next_hop = [this](NodeId self) -> std::optional<NodeId> {
            if (route_table_ == nullptr) return std::nullopt;
            return route_table_->next_hop(self);
          };
          break;
        case RoutingKind::kDv: {
          DvRouter* dv = dv_routers_[i].get();
          next_hop = [dv](NodeId) { return dv->next_hop(); };
          break;
        }
      }
      relays_.push_back(std::make_unique<RelayAgent>(sim_, nodes_[i]->mac(), id, is_sink[id],
                                                     std::move(next_hop), config_.hop_limit,
                                                     config_.reliability));
      RelayAgent* relay_agent = relays_.back().get();
      if (run_trace_ != nullptr) relay_agent->set_trace(run_trace_);
      if (config_.reliability.enabled()) {
        relay_rngs_.push_back(std::make_unique<Rng>(rng_.fork(0xBACC00 + i)));
        relay_agent->set_backoff_rng(relay_rngs_.back().get());
        const MacProtocol* mac = &nodes_[i]->mac();
        const UphillRouter* router = router_.get();
        switch (config_.routing) {
          case RoutingKind::kDv: {
            DvRouter* dv = dv_routers_[i].get();
            relay_agent->set_alt_next_hop([dv](NodeId, NodeId exclude) {
              return dv->next_hop_excluding(exclude);
            });
            break;
          }
          case RoutingKind::kGreedy:
          case RoutingKind::kTree:
            // Alternate = best depth-rule candidate avoiding the failed
            // hop (and dead neighbors): still strictly uphill, so the
            // failover path cannot loop even off the tree.
            relay_agent->set_alt_next_hop([router, mac](NodeId self, NodeId exclude) {
              return router->shallowest_candidate(self, [mac, exclude](NodeId n) {
                return n == exclude || mac->neighbor_dead(n);
              });
            });
            break;
        }
      }
      // The static tree is every mode's hop-stretch yardstick.
      relay_agent->set_tree_hops([this](NodeId node) -> std::uint32_t {
        if (route_table_ == nullptr || !route_table_->reachable(node)) return 0;
        return route_table_->hops(node);
      });
      if (config_.routing == RoutingKind::kTree) {
        relay_agent->set_advertised_hops([this](NodeId node) -> std::uint32_t {
          if (route_table_ == nullptr || !route_table_->reachable(node)) return 0;
          return route_table_->hops(node);
        });
      } else if (config_.routing == RoutingKind::kDv) {
        DvRouter* dv = dv_routers_[i].get();
        relay_agent->set_advertised_hops([dv](NodeId) -> std::uint32_t {
          const DvRouter::Entry* best = dv->best();
          return best != nullptr ? best->hops : 0;
        });
      }
    }
  }

  traffic_start_ = Time::zero() + config_.hello_window;
  horizon_ = traffic_start_ + config_.sim_time;

  if (config_.multi_hop) {
    // The tree is built once discovery has run: a global (lane-0) event
    // at traffic start, so sharded runs read every neighbor table at a
    // barrier. Lane 0 sorts ahead of node lanes at the same timestamp, so
    // the first originations already see the routes.
    const Simulator::LaneGuard lane{sim_, 0};
    sim_.at(traffic_start_, [this] { rebuild_route_table(); });
  }

  if (config_.fault.enabled()) {
    // The plan forks dedicated streams off the root RNG (fork is const),
    // so its construction never perturbs any stream drawn above.
    fault_plan_ = std::make_unique<FaultPlan>(config_.fault, config_.node_count, horizon_, rng_);
    for (std::size_t i = 0; i < config_.node_count; ++i) {
      const auto id = static_cast<NodeId>(i);
      if (config_.fault.drift_enabled()) {
        nodes_[i]->modem().set_clock_drift_ppm(fault_plan_->drift_ppm(id));
      }
    }
    if (fault_plan_->channel_impairment_enabled()) {
      FaultPlan* plan = fault_plan_.get();
      for (auto& node : nodes_) {
        node->modem().set_impairment(
            [plan](NodeId receiver, Time at) { return plan->arrival_lost(receiver, at); });
      }
    }
  }

  // Traffic sources: the aggregate offered load is split across nodes
  // that have at least one uphill neighbor (Fig. 1 semantics).
  const double node_rate = per_node_packet_rate(config_.traffic, router_->source_count());
  const std::size_t sources = router_->source_count();
  std::uint32_t batch_per_source = 0;
  std::uint32_t batch_remainder = 0;
  if (sources > 0) {
    batch_per_source = config_.traffic.batch_packets / static_cast<std::uint32_t>(sources);
    batch_remainder = config_.traffic.batch_packets % static_cast<std::uint32_t>(sources);
  }

  std::uint32_t assigned_extra = 0;
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const auto id = static_cast<NodeId>(i);
    if (router_->is_sink(id)) continue;
    if (config_.multi_hop && relays_[i]->is_sink()) continue;
    Rng traffic_rng = rng_.fork(0x7AFF00 + i);
    MacProtocol* mac = &nodes_[i]->mac();
    const UphillRouter* router = router_.get();
    TrafficSource::EmitFn emit;
    if (config_.multi_hop) {
      RelayAgent* relay_agent = relays_[i].get();
      emit = [relay_agent](std::uint32_t bits) { relay_agent->originate(bits); };
    } else {
      // The route stream lives on the Network (not by value in the
      // closure) so checkpoints can serialize it; route_rngs_[k] pairs
      // with sources_[k].
      route_rngs_.push_back(std::make_unique<Rng>(rng_.fork(0x90E700 + i)));
      Rng* route_rng = route_rngs_.back().get();
      emit = [mac, router, id, route_rng](std::uint32_t bits) {
        if (const auto dst = router->pick_destination(id, *route_rng)) {
          mac->enqueue_packet(*dst, bits);
        }
      };
    }
    auto source = std::make_unique<TrafficSource>(sim_, config_.traffic, node_rate,
                                                  traffic_rng, std::move(emit));
    std::uint32_t batch = batch_per_source;
    if (assigned_extra < batch_remainder) {
      ++batch;
      ++assigned_extra;
    }
    {
      const Simulator::LaneGuard lane{sim_, id + 1};
      source->start(traffic_start_, batch);
    }
    sources_.push_back(std::move(source));
  }
}

void Network::schedule_hello_phase() {
  // §4.3: each deployed sensor broadcasts a Hello with its timestamp.
  // Rounds are spread uniformly over the hello window; later rounds fill
  // entries whose first Hello collided.
  Rng hello_rng = rng_.fork(0x4E110);
  const double window_s = config_.hello_window.to_seconds();
  const std::uint32_t rounds = std::max<std::uint32_t>(config_.hello_rounds, 1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Simulator::LaneGuard lane{sim_, static_cast<std::uint32_t>(i) + 1};
    for (std::uint32_t round = 0; round < rounds; ++round) {
      const double lo = window_s * round / rounds;
      const double hi = window_s * (round + 1) / rounds - 0.05;
      const Time when = Time::from_seconds(hello_rng.uniform(lo, std::max(lo, hi)));
      MacProtocol* mac = &nodes_[i]->mac();
      sim_.at(when, [mac] { mac->broadcast_hello(); });
    }
  }
}

void Network::schedule_mobility() {
  if (!config_.enable_mobility) return;
  const Duration step = config_.mobility.update_interval;
  sim_.in(step, [this, step] {
    for (auto& node : nodes_) node->advance_position(step);
    if (sim_.now() + step <= horizon_) schedule_mobility();
  });
}

void Network::start_traffic() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Simulator::LaneGuard lane{sim_, static_cast<std::uint32_t>(i) + 1};
    nodes_[i]->mac().start();
  }
}

void Network::trace_fault(TraceEventKind kind, NodeId node, std::int64_t a,
                          std::int64_t b) const {
  if (run_trace_ == nullptr) return;
  TraceEvent event{};
  event.kind = kind;
  event.at = sim_.now();
  event.node = node;
  event.a = a;
  event.b = b;
  run_trace_->record(event);
}

void Network::schedule_faults() {
  if (fault_plan_ == nullptr) return;
  const FaultConfig& fc = fault_plan_->config();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const Simulator::LaneGuard lane{sim_, id + 1};
    AcousticModem* modem = &nodes_[i]->modem();
    MacProtocol* mac = &nodes_[i]->mac();
    DvRouter* dv = dv_routers_.empty() ? nullptr : dv_routers_[i].get();

    for (const TimeInterval& iv : fault_plan_->down_intervals(id)) {
      if (iv.begin >= horizon_) break;
      sim_.at(iv.begin, [this, id, modem] {
        trace_fault(TraceEventKind::kFaultNodeDown, id);
        modem->set_operational(false);
      });
      if (iv.end >= horizon_) continue;  // never rejoins within this run
      sim_.at(iv.end, [this, id, modem, mac, dv] {
        modem->set_operational(true);
        mac->reset_mac_state();
        // Routing amnesia rides along: stale routes through neighbors
        // whose state moved on during the outage must not survive; a
        // rejoining sink bumps its sequence so the network re-learns it
        // as fresh state (docs/routing.md).
        if (dv != nullptr) dv->reset_routes();
        trace_fault(TraceEventKind::kFaultNodeUp, id);
        // Re-announce so neighbors refresh their delay to us and we start
        // re-learning theirs from whatever we overhear.
        mac->broadcast_hello();
      });
    }

    const std::vector<Duration>& steps = fault_plan_->jitter_steps(id);
    for (std::size_t k = 0; k < steps.size(); ++k) {
      const Time when = Time::zero() + fc.drift_jitter_interval * static_cast<std::int64_t>(k + 1);
      if (when >= horizon_) break;
      const Duration step = steps[k];
      sim_.at(when, [this, id, modem, step] {
        modem->add_clock_jitter(step);
        trace_fault(TraceEventKind::kFaultClockStep, id, step.count_ns(),
                    modem->clock_offset().count_ns());
      });
    }

    if (config_.trace != nullptr) {
      for (const TimeInterval& iv : fault_plan_->ge_bad_intervals(id)) {
        if (iv.begin >= horizon_) break;
        sim_.at(iv.begin, [this, id] { trace_fault(TraceEventKind::kFaultBurstBegin, id); });
        if (iv.end < horizon_) {
          sim_.at(iv.end, [this, id] { trace_fault(TraceEventKind::kFaultBurstEnd, id); });
        }
      }
    }
  }

  if (config_.trace != nullptr) {
    for (const TimeInterval& iv : fault_plan_->storms()) {
      if (iv.begin >= horizon_) break;
      sim_.at(iv.begin, [this] { trace_fault(TraceEventKind::kFaultStormBegin, kNoNode); });
      if (iv.end < horizon_) {
        sim_.at(iv.end, [this] { trace_fault(TraceEventKind::kFaultStormEnd, kNoNode); });
      }
    }
  }
}

void Network::rebuild_route_table() {
  std::vector<std::map<NodeId, Duration>> delays(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& [neighbor, entry] : nodes_[i]->neighbors().entries()) {
      delays[i][neighbor] = entry.delay;
    }
  }
  std::vector<bool> sinks(nodes_.size(), false);
  for (std::size_t i = 0; i < nodes_.size(); ++i) sinks[i] = relays_[i]->is_sink();
  route_table_ = std::make_unique<RouteTable>(RouteTable::build(delays, sinks));
  AQUAMAC_LOG(config_.logger, LogLevel::kInfo)
      << "route table: " << route_table_->routed_count() << "/"
      << (nodes_.size() -
          static_cast<std::size_t>(std::count(sinks.begin(), sinks.end(), true)))
      << " non-sink nodes routed";
}

void Network::schedule_dv_beacons() {
  if (dv_routers_.empty()) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const Simulator::LaneGuard lane{sim_, id + 1};
    schedule_next_beacon(id);
  }
}

void Network::schedule_next_beacon(NodeId id) {
  // Each round waits beacon * uniform(0.75, 1.25): periodic enough to
  // carry the sinks' sequence waves, jittered enough that the network's
  // beacons never synchronize into collision bursts.
  const Duration wait = Duration::from_seconds(config_.routing_beacon.to_seconds() *
                                               beacon_rngs_[id]->uniform(0.75, 1.25));
  sim_.in(wait, [this, id] {
    DvRouter& dv = *dv_routers_[id];
    if (dv.is_sink()) dv.bump_own_seq();
    // A route whose via carried no ad for ~3.5 beacon rounds is stale: on
    // settled paths the via's sequence wave re-stamps the entry every
    // round, so only silently-partitioned (or routeless) vias expire.
    const Duration ttl = Duration::from_seconds(config_.routing_beacon.to_seconds() * 3.5);
    if (sim_.now() > Time::zero() + ttl) dv.expire_stale(sim_.now() - ttl);
    nodes_[id]->mac().broadcast_hello();
    if (sim_.now() < horizon_) schedule_next_beacon(id);
  });
}

void Network::on_route_change(NodeId id) {
  const DvRouter& dv = *dv_routers_[id];
  if (run_trace_ != nullptr) {
    TraceEvent event{};
    event.kind = TraceEventKind::kRouteUpdate;
    event.at = sim_.now();
    event.node = id;
    const DvRouter::Entry* best = dv.best();
    if (best != nullptr) {
      event.src = best->via;
      event.dst = dv.best_sink();
      event.a = best->cost.count_ns();
      event.b = best->hops;
    } else {
      event.b = -1;  // route lost
    }
    run_trace_->record(event);
  }
  // DSDV triggered update: re-advertise the change soon so convergence
  // runs at per-hop frame latency, not at the beacon period. Rate-limited
  // per node so convergence waves cannot storm the contention MAC.
  if (sim_.now() < dv_trigger_after_[id]) return;
  dv_trigger_after_[id] = sim_.now() + Duration::seconds(2);
  MacProtocol* mac = &nodes_[id]->mac();
  const Duration delay = Duration::from_seconds(beacon_rngs_[id]->uniform(0.2, 1.0));
  sim_.in(delay, [mac] { mac->broadcast_hello(); });
}

void Network::schedule_aging() {
  const Duration age = config_.mac_config.neighbor_max_age;
  if (age.is_zero()) return;
  const Duration step =
      std::max(Duration::nanoseconds(age.count_ns() / 2), Duration::seconds(1));
  sim_.in(step, [this, step] {
    for (auto& node : nodes_) node->mac().age_neighbors();
    if (sim_.now() + step <= horizon_) schedule_aging();
  });
}

RunStats Network::run() { return run(RunBoundaryHooks{}); }

RunStats Network::run(const RunBoundaryHooks& hooks) {
  schedule_hello_phase();
  schedule_mobility();
  start_traffic();
  schedule_faults();
  schedule_aging();
  schedule_dv_beacons();
  if (config_.node_failure_fraction > 0.0) {
    Rng failure_rng = rng_.fork(0xDEAD);
    const auto casualties = static_cast<std::size_t>(
        config_.node_failure_fraction * static_cast<double>(config_.node_count));
    // Fisher-Yates prefix over node ids.
    std::vector<NodeId> ids(config_.node_count);
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i);
    for (std::size_t i = 0; i < casualties && i + 1 < ids.size(); ++i) {
      const std::size_t j = i + failure_rng.below(ids.size() - i);
      std::swap(ids[i], ids[j]);
    }
    const Time when = traffic_start_ + config_.node_failure_time;
    for (std::size_t i = 0; i < casualties; ++i) {
      const Simulator::LaneGuard lane{sim_, ids[i] + 1};
      AcousticModem* modem = &nodes_[ids[i]]->modem();
      sim_.at(when, [modem] { modem->set_operational(false); });
    }
  }

  // Advances to `target`, pausing at each pending hook boundary on the
  // way (splitting run_until at boundary times is non-perturbing; the
  // batch polling below relies on the same property). Returns false when
  // a hook asked to stop the run.
  std::size_t next_boundary = 0;
  const auto run_to = [this, &hooks, &next_boundary](Time target) {
    while (next_boundary < hooks.boundaries.size() &&
           hooks.boundaries[next_boundary] <= target) {
      const Time boundary = hooks.boundaries[next_boundary];
      sim_.run_until(boundary);
      ++next_boundary;
      if (hooks.on_boundary && !hooks.on_boundary(boundary)) return false;
    }
    sim_.run_until(target);
    return true;
  };

  if (config_.traffic.mode == TrafficMode::kBatch) {
    // Poll in coarse steps; the step only bounds how late we notice
    // completion, not any protocol timing.
    const Duration step = Duration::seconds(5);
    Time poll = traffic_start_ + Duration::seconds(2);
    bool keep_going = true;
    while (poll < horizon_) {
      keep_going = run_to(poll);
      if (!keep_going || workload_complete()) break;
      poll += step;
    }
    if (keep_going && !workload_complete()) run_to(horizon_);
  } else {
    run_to(horizon_);
  }
  return stats();
}

bool Network::workload_complete() const {
  for (const auto& node : nodes_) {
    const MacCounters& c = node->mac().counters();
    if (c.packets_sent_ok + c.packets_dropped < c.packets_offered) return false;
  }
  return true;
}

// lint: stats-site(RelayCounters)
RunStats Network::stats() const {
  MacCounters total{};
  double energy_j = 0.0;
  std::vector<double> per_source_acked;
  const Duration elapsed = sim_.now() - Time::zero();
  for (const auto& node : nodes_) {
    const MacCounters& c = node->mac().counters();
    total += c;
    energy_j += node->modem().energy().energy_joules(elapsed);
    if (c.packets_offered > 0) {
      per_source_acked.push_back(static_cast<double>(c.packets_sent_ok));
    }
  }
  RunStats stats = compute_run_stats(total, energy_j, nodes_.size(), elapsed,
                                     config_.sim_time, traffic_start_);
  stats.fairness_index = jain_fairness(per_source_acked);

  if (!relays_.empty()) {
    RelayCounters relay_total{};
    for (const auto& relay_agent : relays_) relay_total += relay_agent->counters();
    stats.e2e_originated = relay_total.originated;
    stats.e2e_arrived_at_sink = relay_total.arrived_at_sink;
    if (relay_total.originated > 0) {
      stats.e2e_delivery_ratio = static_cast<double>(relay_total.arrived_at_sink) /
                                 static_cast<double>(relay_total.originated);
    }
    if (relay_total.arrived_at_sink > 0) {
      const auto arrived = static_cast<double>(relay_total.arrived_at_sink);
      stats.mean_hops = static_cast<double>(relay_total.total_hops) / arrived;
      stats.mean_e2e_latency_s = relay_total.total_e2e_latency.to_seconds() / arrived;
    }
    stats.e2e_forwarded = relay_total.forwarded;
    stats.e2e_dropped_no_route = relay_total.dropped_no_route;
    stats.e2e_dropped_hop_limit = relay_total.dropped_hop_limit;
    stats.e2e_dropped_mac = relay_total.dropped_mac;
    if (relay_total.total_tree_hops > 0) {
      stats.hop_stretch = static_cast<double>(relay_total.total_stretch_hops) /
                          static_cast<double>(relay_total.total_tree_hops);
    }
    if (relay_total.total_hops > 0) {
      stats.mean_per_hop_latency_s = relay_total.total_e2e_latency.to_seconds() /
                                     static_cast<double>(relay_total.total_hops);
    }
    stats.e2e_retransmissions = relay_total.retransmissions;
    stats.e2e_failovers = relay_total.failovers;
    stats.e2e_dead_letter_exhausted = relay_total.dead_letter_exhausted;
    stats.e2e_dead_letter_overflow = relay_total.dead_letter_overflow;
    stats.e2e_dead_letter_no_route = relay_total.dead_letter_no_route;
    stats.e2e_duplicates_suppressed = relay_total.duplicates_suppressed;
    stats.relay_queue_highwater = relay_total.queue_highwater;
  }
  return stats;
}

double Network::deployed_mean_degree() const {
  return mean_degree(initial_positions_, config_.channel.comm_range_m);
}

void Network::save_state(StateWriter& writer) const {
  writer.section("engine", [this](StateWriter& w) { sim_.save_checkpoint(w); });
  writer.section("nodes", [this](StateWriter& w) {
    w.write_u64(nodes_.size());
    for (const auto& node : nodes_) {
      node->modem().save_state(w);
      node->mac().save_state(w);
      node->neighbors().save_state(w);
      node->mobility().save_state(w);
    }
  });
  writer.section("traffic", [this](StateWriter& w) {
    w.write_u64(sources_.size());
    for (const auto& source : sources_) source->save_state(w);
    w.write_u64(route_rngs_.size());
    for (const auto& route_rng : route_rngs_) {
      for (const std::uint64_t word : route_rng->state()) w.write_u64(word);
    }
  });
  writer.section("faults", [this](StateWriter& w) {
    w.write_bool(fault_plan_ != nullptr);
    if (fault_plan_ != nullptr) fault_plan_->save_state(w);
  });
  writer.section("routing", [this](StateWriter& w) {
    w.write_bool(!relays_.empty());
    if (!relays_.empty()) {
      for (const auto& relay_agent : relays_) relay_agent->save_state(w);
    }
    w.write_bool(!relay_rngs_.empty());
    for (const auto& relay_rng : relay_rngs_) {
      for (const std::uint64_t word : relay_rng->state()) w.write_u64(word);
    }
    w.write_bool(!dv_routers_.empty());
    if (!dv_routers_.empty()) {
      for (const auto& dv : dv_routers_) dv->save_state(w);
      for (const auto& beacon_rng : beacon_rngs_) {
        for (const std::uint64_t word : beacon_rng->state()) w.write_u64(word);
      }
      for (const Time after : dv_trigger_after_) w.write_time(after);
    }
  });
  writer.section("channel", [this](StateWriter& w) {
    w.write_u64(channel_->transmissions());
  });
  writer.section("trace", [this](StateWriter& w) {
    w.write_bool(tally_trace_ != nullptr);
    if (tally_trace_ != nullptr) {
      w.write_u64(tally_trace_->count());
      w.write_u64(tally_trace_->digest());
    }
  });
}

void Network::restore_state(StateReader& reader) {
  reader.section("engine", [this](StateReader& r) { sim_.restore_checkpoint(r); });
  reader.section("nodes", [this](StateReader& r) {
    if (r.read_u64() != nodes_.size()) {
      throw CheckpointError("checkpoint node count differs from the scenario's");
    }
    for (const auto& node : nodes_) {
      node->modem().restore_state(r);
      node->mac().restore_state(r);
      node->neighbors().restore_state(r);
      node->mobility().restore_state(r);
    }
  });
  reader.section("traffic", [this](StateReader& r) {
    if (r.read_u64() != sources_.size()) {
      throw CheckpointError("checkpoint traffic-source count differs from the scenario's");
    }
    for (const auto& source : sources_) source->restore_state(r);
    if (r.read_u64() != route_rngs_.size()) {
      throw CheckpointError("checkpoint route-stream count differs from the scenario's");
    }
    for (const auto& route_rng : route_rngs_) {
      Rng::State words{};
      for (std::uint64_t& word : words) word = r.read_u64();
      route_rng->set_state(words);
    }
  });
  reader.section("faults", [this](StateReader& r) {
    const bool had_plan = r.read_bool();
    if (had_plan != (fault_plan_ != nullptr)) {
      throw CheckpointError("checkpoint fault-plan presence differs from the scenario's");
    }
    if (fault_plan_ != nullptr) fault_plan_->restore_state(r);
  });
  reader.section("routing", [this](StateReader& r) {
    if (r.read_bool() != !relays_.empty()) {
      throw CheckpointError("checkpoint relay presence differs from the scenario's");
    }
    for (const auto& relay_agent : relays_) relay_agent->restore_state(r);
    if (r.read_bool() != !relay_rngs_.empty()) {
      throw CheckpointError("checkpoint relay-rng presence differs from the scenario's");
    }
    for (const auto& relay_rng : relay_rngs_) {
      Rng::State words{};
      for (std::uint64_t& word : words) word = r.read_u64();
      relay_rng->set_state(words);
    }
    if (r.read_bool() != !dv_routers_.empty()) {
      throw CheckpointError("checkpoint DV-router presence differs from the scenario's");
    }
    for (const auto& dv : dv_routers_) dv->restore_state(r);
    for (const auto& beacon_rng : beacon_rngs_) {
      Rng::State words{};
      for (std::uint64_t& word : words) word = r.read_u64();
      beacon_rng->set_state(words);
    }
    for (Time& after : dv_trigger_after_) after = r.read_time();
  });
  reader.section("channel", [this](StateReader& r) {
    channel_->set_transmissions(r.read_u64());
  });
  reader.section("trace", [this](StateReader& r) {
    const bool had_trace = r.read_bool();
    if (had_trace != (tally_trace_ != nullptr)) {
      throw CheckpointError("checkpoint trace presence differs from this run's");
    }
    if (tally_trace_ != nullptr) {
      const std::uint64_t count = r.read_u64();
      const std::uint64_t digest = r.read_u64();
      tally_trace_->set_state(count, digest);
    }
  });
}

void Network::verify_restore(const std::string& payload) {
  StateWriter replayed;
  save_state(replayed);
  if (replayed.bytes() != payload) {
    throw CheckpointError("replayed state diverges from checkpoint: " +
                          describe_payload_difference(payload, replayed.bytes()));
  }
  // The byte match proves equality; the decode + re-encode round trip
  // additionally exercises every restore_state path, so a field a
  // decoder forgot to assign (or assigns wrongly) cannot hide.
  StateReader reader{payload};
  restore_state(reader);
  if (reader.remaining() != 0) {
    throw CheckpointError("checkpoint payload has trailing bytes after restore");
  }
  StateWriter round_trip;
  save_state(round_trip);
  if (round_trip.bytes() != payload) {
    throw CheckpointError("checkpoint decode/re-encode drift: " +
                          describe_payload_difference(payload, round_trip.bytes()));
  }
}

Duration Network::shard_lookahead() const {
  std::vector<Vec3> positions;
  positions.reserve(nodes_.size());
  for (const auto& node : nodes_) positions.push_back(node->modem().position());
  const double dist = shard_plan_->min_cross_shard_distance(positions);
  if (!std::isfinite(dist)) {
    // A single populated shard: no cross-shard influence exists at all,
    // so any horizon is conservative. One hour keeps windows finite.
    return Duration::seconds(3600);
  }
  // Positions are frozen inside a window (mobility is a global, hence
  // barrier-time, event and the engine re-queries this after every global
  // batch), so the model's delay bound applies verbatim; the microsecond
  // guard just absorbs any residual floating-point slack on top of the
  // bound's own safety margins.
  const Duration bound =
      propagation_->min_delay(dist, config_.deployment.depth_m);
  const Duration guard = Duration::microseconds(1);
  return bound > guard ? bound - guard : Duration::nanoseconds(1);
}

}  // namespace aquamac

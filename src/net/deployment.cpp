#include "net/deployment.hpp"

#include <algorithm>
#include <cmath>

namespace aquamac {

DeploymentConfig table2_deployment() {
  DeploymentConfig config{};
  config.kind = DeploymentKind::kUniformBox;
  config.width_m = 10'000.0;
  config.length_m = 10'000.0;
  config.depth_m = 10'000.0;
  return config;
}

namespace {

std::vector<Vec3> uniform_box(const DeploymentConfig& config, std::size_t count, Rng& rng) {
  std::vector<Vec3> positions;
  positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    positions.push_back(Vec3{rng.uniform(0.0, config.width_m), rng.uniform(0.0, config.length_m),
                             rng.uniform(0.0, config.depth_m)});
  }
  return positions;
}

std::vector<Vec3> layered_column(const DeploymentConfig& config, std::size_t count, Rng& rng) {
  const auto layers =
      static_cast<std::size_t>(std::max(1.0, config.depth_m / config.layer_spacing_m));
  std::vector<Vec3> positions;
  positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t layer = i % layers;
    const double depth = (static_cast<double>(layer) + 0.5) * config.layer_spacing_m +
                         rng.uniform(-config.jitter_m, config.jitter_m);
    positions.push_back(Vec3{rng.uniform(0.0, config.width_m), rng.uniform(0.0, config.length_m),
                             std::max(0.0, depth)});
  }
  return positions;
}

std::vector<Vec3> jittered_grid(const DeploymentConfig& config, std::size_t count, Rng& rng) {
  const auto side = static_cast<std::size_t>(std::ceil(std::cbrt(static_cast<double>(count))));
  const double dx = config.width_m / static_cast<double>(side);
  const double dy = config.length_m / static_cast<double>(side);
  const double dz = config.depth_m / static_cast<double>(side);
  std::vector<Vec3> positions;
  positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t ix = i % side;
    const std::size_t iy = (i / side) % side;
    const std::size_t iz = i / (side * side);
    positions.push_back(
        Vec3{(static_cast<double>(ix) + 0.5) * dx + rng.uniform(-config.jitter_m, config.jitter_m),
             (static_cast<double>(iy) + 0.5) * dy + rng.uniform(-config.jitter_m, config.jitter_m),
             std::max(0.0, (static_cast<double>(iz) + 0.5) * dz +
                               rng.uniform(-config.jitter_m, config.jitter_m))});
  }
  return positions;
}

}  // namespace

std::vector<Vec3> generate_deployment(const DeploymentConfig& config, std::size_t count,
                                      Rng& rng) {
  switch (config.kind) {
    case DeploymentKind::kUniformBox: return uniform_box(config, count, rng);
    case DeploymentKind::kLayeredColumn: return layered_column(config, count, rng);
    case DeploymentKind::kGrid: return jittered_grid(config, count, rng);
  }
  return {};
}

double mean_degree(const std::vector<Vec3>& positions, double range_m) {
  if (positions.size() < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (positions[i].distance_to(positions[j]) <= range_m) links += 2;
    }
  }
  return static_cast<double>(links) / static_cast<double>(positions.size());
}

double uphill_coverage(const std::vector<Vec3>& positions, double range_m) {
  if (positions.empty()) return 0.0;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (i == j) continue;
      if (positions[j].z < positions[i].z &&
          positions[i].distance_to(positions[j]) <= range_m) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(positions.size());
}

}  // namespace aquamac

#pragma once
// Deterministic distance-vector convergecast routing (docs/routing.md).
//
// One DvRouter per node keeps a per-sink table of sequence-numbered
// routes, DSDV-style. Advertisements are not separate packets: every
// outgoing frame is stamped with the node's current best route
// (MacProtocol's frame-stamp hook), so HELLOs, handshake control frames,
// data and the PR 4 dead-neighbor probes all carry routing state for
// free. Receivers ingest the ad together with the measured one-hop delay
// of the frame that carried it.
//
// Determinism: state lives in ordered maps, all updates happen inside
// the owning node's simulation lane, and the adoption rule is a pure
// function of the observed ad stream. An ad is adopted when its sequence
// is current or newer AND it either improves the route (strictly lower
// cost; equal cost and lower advertiser id) or refreshes it in place
// from the current next hop. Rejecting newer-but-worse ads from other
// neighbors is the damping that makes convergence monotone (classic DSDV
// adopts them and oscillates while a sequence wave spreads); the via
// refresh still carries each sequence wave down every settled path, and
// expire_stale reclaims routes whose via went silent, so staleness still
// drains in partitioned components. On a static fault-free deployment the
// converged tables therefore equal the RouteTable tree entry-for-entry
// (routing_differential_test).

#include <functional>
#include <map>
#include <optional>

#include "net/route_table.hpp"
#include "phy/frame.hpp"
#include "util/time.hpp"

namespace aquamac {

class StateReader;
class StateWriter;

class DvRouter {
 public:
  /// One sequence-numbered route toward `sink` (the map key).
  struct Entry {
    std::uint32_t seq{0};
    Duration cost{};
    std::uint32_t hops{0};
    NodeId via{kNoNode};  ///< next hop (self for a sink's own entry)
    bool valid{false};    ///< false: invalidated, awaiting a fresher ad
    Time updated{};       ///< last adoption/refresh (staleness expiry)
  };

  DvRouter(NodeId self, bool is_sink);

  /// Fired whenever the best route changes (validity, sink, via or cost):
  /// the Network wires this to the kRouteUpdate trace event and to the
  /// DSDV triggered-update broadcast.
  using RouteChangeHook = std::function<void()>;
  void set_route_change_hook(RouteChangeHook hook) { on_change_ = std::move(hook); }

  /// Stamps the outgoing frame's route-ad fields with the current best
  /// route (sinks advertise themselves at cost zero). Frames keep
  /// route_valid = false when the node has no route to advertise.
  void stamp(Frame& frame) const;

  /// Ingests the ad piggybacked on a received frame; `measured_delay` is
  /// the receiver's (clamped) one-hop delay estimate to frame.src.
  void observe(const Frame& frame, Duration measured_delay, Time now);

  /// Invalidates every route through a neighbor declared dead or evicted.
  void neighbor_down(NodeId neighbor);

  /// Invalidates routes not refreshed since `cutoff` (run per beacon
  /// round): a via that stopped advertising — silently partitioned, or
  /// itself routeless — must not be trusted forever. On settled paths the
  /// via's sequence-wave refresh re-stamps the entry every round, so
  /// healthy routes never expire.
  void expire_stale(Time cutoff);

  /// Outage-recovery amnesia (paired with MacProtocol::reset_mac_state):
  /// forgets every learned route; a sink re-installs its own entry under
  /// a bumped sequence number so rejoining is advertised as fresh state.
  void reset_routes();

  /// Sinks bump their sequence each beacon round; the rising number is
  /// what flushes stale routes out of the network after faults.
  void bump_own_seq();

  /// Next hop of the best route; nullopt for sinks and routeless nodes.
  [[nodiscard]] std::optional<NodeId> next_hop() const;
  /// Best next hop whose route does not go through `exclude` (the relay
  /// failover alternate after MAC drops toward `exclude`); nullopt when
  /// every valid route uses it.
  [[nodiscard]] std::optional<NodeId> next_hop_excluding(NodeId exclude) const;
  /// The best route itself; nullptr when no valid route exists.
  [[nodiscard]] const Entry* best() const;
  [[nodiscard]] NodeId best_sink() const { return best_sink_; }
  [[nodiscard]] bool is_sink() const { return is_sink_; }
  [[nodiscard]] const std::map<NodeId, Entry>& entries() const { return entries_; }

  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  void install_own_entry();
  void refresh_best(bool notify);

  NodeId self_;    // lint: ckpt-skip(config, fixed per node)
  bool is_sink_;   // lint: ckpt-skip(config, fixed per node)
  std::uint32_t own_seq_{1};
  std::map<NodeId, Entry> entries_;  ///< sink id -> route
  NodeId best_sink_{kNoNode};        ///< cached selection; kNoNode = none
  Entry last_best_{};                ///< change detection baseline
  RouteChangeHook on_change_{};  // lint: ckpt-skip(callback wiring, rebound on construction)
};

}  // namespace aquamac

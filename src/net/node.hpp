#pragma once
// A sensor node: modem + neighbor table + MAC + mobility, wired together.

#include <memory>

#include "mac/mac_protocol.hpp"
#include "net/mobility.hpp"
#include "net/neighbor_table.hpp"
#include "phy/modem.hpp"

namespace aquamac {

class Node {
 public:
  Node(Simulator& sim, NodeId id, const Vec3& position, ModemConfig modem_config,
       const ReceptionModel& reception, Rng modem_rng)
      : modem_{sim, id, modem_config, reception, modem_rng} {
    modem_.set_position(position);
  }

  [[nodiscard]] NodeId id() const { return modem_.id(); }
  [[nodiscard]] AcousticModem& modem() { return modem_; }
  [[nodiscard]] const AcousticModem& modem() const { return modem_; }
  [[nodiscard]] NeighborTable& neighbors() { return neighbors_; }
  [[nodiscard]] const NeighborTable& neighbors() const { return neighbors_; }

  void set_mac(std::unique_ptr<MacProtocol> mac) { mac_ = std::move(mac); }
  [[nodiscard]] MacProtocol& mac() { return *mac_; }
  [[nodiscard]] const MacProtocol& mac() const { return *mac_; }
  [[nodiscard]] bool has_mac() const { return mac_ != nullptr; }

  void set_mobility(Mobility mobility) { mobility_ = mobility; }
  [[nodiscard]] Mobility& mobility() { return mobility_; }
  [[nodiscard]] const Mobility& mobility() const { return mobility_; }

  /// Advances the drift model and pushes the new position to the modem.
  void advance_position(Duration dt) {
    mobility_.advance(dt);
    modem_.set_position(mobility_.position());
  }

 private:
  AcousticModem modem_;
  NeighborTable neighbors_;
  std::unique_ptr<MacProtocol> mac_;
  Mobility mobility_;
};

}  // namespace aquamac

#pragma once
// Multi-hop relay layer (§3.1/Fig. 1: "sensors must transmit sensing
// information to surface sinks via multi-hop transmission").
//
// One RelayAgent sits above each node's MAC. Origins stamp an E2eHeader;
// every intermediate delivery re-enqueues the packet toward the next hop
// named by the routing layer (greedy, static tree or DvRouter —
// docs/routing.md); sinks absorb and account. The MAC below stays exactly
// the paper's one-hop protocol — relaying is pure composition through the
// MAC's delivery/drop handlers.

#include <cstdint>
#include <functional>

#include "mac/mac_protocol.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace aquamac {

/// Network-layer counters, aggregated by Network::stats in multi-hop mode.
struct RelayCounters {
  std::uint64_t originated{0};       ///< packets stamped at this origin
  std::uint64_t arrived_at_sink{0};  ///< packets absorbed here as sink
  std::uint64_t forwarded{0};        ///< intermediate re-enqueues
  std::uint64_t dropped_no_route{0}; ///< routing layer named no next hop
  std::uint64_t dropped_hop_limit{0};
  std::uint64_t dropped_mac{0};      ///< MAC exhausted retries on a hop
  Duration total_e2e_latency{};      ///< summed over sink arrivals
  std::uint64_t total_hops{0};       ///< summed over sink arrivals
  /// Hop-stretch accumulators, summed only over arrivals whose origin the
  /// static tree can route, so the ratio compares like with like:
  /// realized hops (numerator) over tree hops (denominator).
  std::uint64_t total_stretch_hops{0};
  std::uint64_t total_tree_hops{0};

  RelayCounters& operator+=(const RelayCounters& o);
};

class RelayAgent {
 public:
  /// Routing-layer next hop for this node; nullopt when no route exists.
  using NextHopFn = std::function<std::optional<NodeId>(NodeId self)>;
  /// Hop count the routing layer currently advertises for `node` (0 when
  /// unknown): the static-tree depth for stretch accounting and the
  /// auditor's advertised-route-length bound.
  using RouteHopsFn = std::function<std::uint32_t(NodeId node)>;

  RelayAgent(Simulator& sim, MacProtocol& mac, NodeId self, bool is_sink, NextHopFn next_hop,
             std::uint8_t hop_limit = 16);

  /// Origin-side entry: stamps the header and enqueues the first hop.
  void originate(std::uint32_t payload_bits);

  /// Optional structured trace of relay events (kRelayOriginate /
  /// kRelayForward / kRelayArrive), feeding the routing invariants.
  void set_trace(TraceSink* trace) { trace_ = trace; }
  /// Static-tree hop counts, for the hop-stretch numerator at sinks.
  void set_tree_hops(RouteHopsFn fn) { tree_hops_ = std::move(fn); }
  /// Currently advertised route length at a node (auditor bound).
  void set_advertised_hops(RouteHopsFn fn) { advertised_hops_ = std::move(fn); }

  [[nodiscard]] const RelayCounters& counters() const { return counters_; }
  [[nodiscard]] bool is_sink() const { return is_sink_; }

  /// Checkpoint encoding of the relay bookkeeping (counters + the origin
  /// id allocator); part of the Network's "routing" section.
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  void on_delivery(const Frame& frame);
  void forward(const Frame& frame);
  void trace_relay(TraceEventKind kind, std::uint64_t e2e_id, NodeId origin, std::int64_t a,
                   std::int64_t b) const;

  Simulator& sim_;
  MacProtocol& mac_;
  NodeId self_;
  bool is_sink_;
  NextHopFn next_hop_;
  std::uint8_t hop_limit_;
  std::uint64_t next_e2e_id_{1};
  RelayCounters counters_;
  TraceSink* trace_{nullptr};
  RouteHopsFn tree_hops_{};
  RouteHopsFn advertised_hops_{};
};

}  // namespace aquamac

#pragma once
// Multi-hop relay layer (§3.1/Fig. 1: "sensors must transmit sensing
// information to surface sinks via multi-hop transmission").
//
// One RelayAgent sits above each node's MAC. Origins stamp an E2eHeader;
// every intermediate delivery re-enqueues the packet toward the next
// shallower hop; sinks absorb and account. The MAC below stays exactly
// the paper's one-hop protocol — relaying is pure composition through the
// MAC's delivery/drop handlers.

#include <cstdint>
#include <functional>

#include "mac/mac_protocol.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace aquamac {

/// Network-layer counters, aggregated by Network::stats in multi-hop mode.
struct RelayCounters {
  std::uint64_t originated{0};       ///< packets stamped at this origin
  std::uint64_t arrived_at_sink{0};  ///< packets absorbed here as sink
  std::uint64_t forwarded{0};        ///< intermediate re-enqueues
  std::uint64_t dropped_no_route{0}; ///< no shallower neighbor available
  std::uint64_t dropped_hop_limit{0};
  std::uint64_t dropped_mac{0};      ///< MAC exhausted retries on a hop
  Duration total_e2e_latency{};      ///< summed over sink arrivals
  std::uint64_t total_hops{0};       ///< summed over sink arrivals

  RelayCounters& operator+=(const RelayCounters& o);
};

class RelayAgent {
 public:
  /// `is_sink`: this node absorbs packets. `next_hop`: shallowest-first
  /// forwarding choice, nullopt when no shallower neighbor exists.
  using NextHopFn = std::function<std::optional<NodeId>(NodeId self)>;

  RelayAgent(Simulator& sim, MacProtocol& mac, NodeId self, bool is_sink, NextHopFn next_hop,
             std::uint8_t hop_limit = 16);

  /// Origin-side entry: stamps the header and enqueues the first hop.
  void originate(std::uint32_t payload_bits);

  [[nodiscard]] const RelayCounters& counters() const { return counters_; }
  [[nodiscard]] bool is_sink() const { return is_sink_; }

 private:
  void on_delivery(const Frame& frame);
  void forward(const Frame& frame);

  Simulator& sim_;
  MacProtocol& mac_;
  NodeId self_;
  bool is_sink_;
  NextHopFn next_hop_;
  std::uint8_t hop_limit_;
  std::uint64_t next_e2e_id_{1};
  RelayCounters counters_;
};

}  // namespace aquamac

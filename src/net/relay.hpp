#pragma once
// Multi-hop relay layer (§3.1/Fig. 1: "sensors must transmit sensing
// information to surface sinks via multi-hop transmission").
//
// One RelayAgent sits above each node's MAC. Origins stamp an E2eHeader;
// every intermediate delivery re-enqueues the packet toward the next hop
// named by the routing layer (greedy, static tree or DvRouter —
// docs/routing.md); sinks absorb and account. The MAC below stays exactly
// the paper's one-hop protocol — relaying is pure composition through the
// MAC's delivery/drop handlers.
//
// With ReliabilityConfig::enabled() the agent additionally runs a
// hop-by-hop custody/ARQ layer (docs/reliability.md): a bounded custody
// queue above the MAC, seeded exponential backoff + jitter after MAC
// drops, bounded retransmissions with next-hop failover through the
// routing layer, and e2e-id dedup so a packet is taken into custody (and
// delivered at a sink) at most once per node.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string_view>

#include "mac/mac_protocol.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace aquamac {

/// What a full custody queue does with the overflow (docs/reliability.md):
///   kTailDrop    — the arriving packet is refused (dead letter);
///   kOldestFirst — the oldest packet waiting in backoff is evicted to
///                  make room; the arriving packet is admitted. Falls back
///                  to tail-drop when nothing is evictable (everything in
///                  custody is currently inside the MAC).
enum class RelayDropPolicy : std::uint8_t { kTailDrop, kOldestFirst };

[[nodiscard]] std::string_view to_string(RelayDropPolicy policy);
/// Parses "tail-drop" / "oldest-first"; throws std::invalid_argument.
[[nodiscard]] RelayDropPolicy relay_drop_policy_from_string(std::string_view name);

/// Hop-by-hop reliability knobs (`reliability.*` scenario keys). The
/// defaults keep the ARQ off — max_retries 0 reproduces the legacy relay
/// bit-for-bit — so existing scenarios and digests are unchanged.
struct ReliabilityConfig {
  /// Custody retransmission budget per packet per node; 0 disables the
  /// whole reliability layer (legacy drop-on-MAC-failure relay).
  std::uint32_t max_retries{0};
  /// Bound on packets in custody at one node (the relay queue).
  std::uint32_t queue_limit{32};
  RelayDropPolicy drop_policy{RelayDropPolicy::kTailDrop};
  /// Backoff before retry r is base * 2^(r-1), capped at backoff_max,
  /// then stretched by a seeded uniform [1, 1.5) jitter factor.
  Duration backoff_base{Duration::seconds(5)};
  Duration backoff_max{Duration::seconds(60)};
  /// Consult the routing layer for an alternate neighbor (DV second-best
  /// entry / filtered greedy candidate) when retrying toward the failed
  /// hop again would be the only option.
  bool failover{true};

  [[nodiscard]] bool enabled() const { return max_retries > 0; }
};

/// Network-layer counters, aggregated by Network::stats in multi-hop mode.
// lint: stats-class(merged by operator+=, folded into RunStats by Network::stats)
struct RelayCounters {
  std::uint64_t originated{0};       ///< packets stamped at this origin
  std::uint64_t arrived_at_sink{0};  ///< packets absorbed here as sink
  std::uint64_t forwarded{0};        ///< intermediate re-enqueues
  std::uint64_t dropped_no_route{0}; ///< routing layer named no next hop
  std::uint64_t dropped_hop_limit{0};
  std::uint64_t dropped_mac{0};      ///< MAC exhausted retries on a hop
  Duration total_e2e_latency{};      ///< summed over sink arrivals
  std::uint64_t total_hops{0};       ///< summed over sink arrivals
  /// Hop-stretch accumulators, summed only over arrivals whose origin the
  /// static tree can route, so the ratio compares like with like:
  /// realized hops (numerator) over tree hops (denominator).
  std::uint64_t total_stretch_hops{0};
  std::uint64_t total_tree_hops{0};

  // --- reliability layer (all zero with the ARQ off) -------------------
  std::uint64_t retransmissions{0};  ///< custody re-enqueues after backoff
  std::uint64_t failovers{0};        ///< retransmissions via an alternate hop
  std::uint64_t dead_letter_exhausted{0};  ///< custody retry budget spent
  std::uint64_t dead_letter_overflow{0};   ///< custody queue overflow drops
  std::uint64_t dead_letter_no_route{0};   ///< no hop left at retry time
  std::uint64_t duplicates_suppressed{0};  ///< e2e-id dedup hits
  std::uint64_t queue_highwater{0};        ///< max custody occupancy seen

  RelayCounters& operator+=(const RelayCounters& o);
};

class RelayAgent {
 public:
  /// Routing-layer next hop for this node; nullopt when no route exists.
  using NextHopFn = std::function<std::optional<NodeId>(NodeId self)>;
  /// Alternate next hop avoiding `exclude` (reliability failover);
  /// nullopt when the routing layer has no alternative.
  using AltHopFn = std::function<std::optional<NodeId>(NodeId self, NodeId exclude)>;
  /// Hop count the routing layer currently advertises for `node` (0 when
  /// unknown): the static-tree depth for stretch accounting and the
  /// auditor's advertised-route-length bound.
  using RouteHopsFn = std::function<std::uint32_t(NodeId node)>;

  RelayAgent(Simulator& sim, MacProtocol& mac, NodeId self, bool is_sink, NextHopFn next_hop,
             std::uint8_t hop_limit = 16, ReliabilityConfig reliability = {});

  /// Origin-side entry: stamps the header and enqueues the first hop.
  void originate(std::uint32_t payload_bits);

  /// Optional structured trace of relay events (kRelayOriginate /
  /// kRelayForward / kRelayArrive and the reliability kinds kRelayRetry /
  /// kRelayRequeue / kRelayDeadLetter), feeding the routing invariants.
  void set_trace(TraceSink* trace) { trace_ = trace; }
  /// Static-tree hop counts, for the hop-stretch numerator at sinks.
  void set_tree_hops(RouteHopsFn fn) { tree_hops_ = std::move(fn); }
  /// Currently advertised route length at a node (auditor bound).
  void set_advertised_hops(RouteHopsFn fn) { advertised_hops_ = std::move(fn); }
  /// Failover route source; unset = no failover even when configured.
  void set_alt_next_hop(AltHopFn fn) { alt_next_hop_ = std::move(fn); }
  /// Seeded backoff jitter stream (Network forks 0xBACC00 + id); must be
  /// set before traffic when the reliability layer is enabled.
  void set_backoff_rng(Rng* rng) { backoff_rng_ = rng; }

  [[nodiscard]] const RelayCounters& counters() const { return counters_; }
  [[nodiscard]] bool is_sink() const { return is_sink_; }
  /// Packets currently in custody at this node (tests / introspection).
  [[nodiscard]] std::size_t custody_depth() const { return custody_.size(); }
  /// How many of those are waiting out a retry backoff.
  [[nodiscard]] std::size_t in_backoff_count() const;

  /// Checkpoint encoding of the relay bookkeeping (counters, the origin
  /// id allocator and — with the ARQ on — the custody queue and dedup
  /// set); part of the Network's "routing" section.
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  /// One packet this node holds custody of until the MAC confirms the
  /// hop, the retry budget is spent, or the queue evicts it.
  struct Custody {
    E2eHeader e2e{};
    std::uint32_t bits{0};
    std::uint32_t retries{0};
    NodeId last_dst{kNoNode};  ///< hop of the most recent MAC attempt
    bool in_backoff{false};    ///< a retry timer is pending
    std::uint64_t admission{0};  ///< FIFO age + stale-timer guard
  };

  /// Dead-letter reason codes (kRelayDeadLetter's `b` field).
  static constexpr std::int64_t kReasonExhausted = 0;
  static constexpr std::int64_t kReasonOverflow = 1;
  static constexpr std::int64_t kReasonNoRoute = 2;
  static constexpr std::int64_t kReasonDuplicate = 3;

  void on_delivery(const Frame& frame);
  void forward(const Frame& frame);
  /// Takes custody of (or, ARQ off, directly enqueues) one packet toward
  /// `hop`. Applies the queue bound and drop policy.
  void admit(const E2eHeader& e2e, std::uint32_t bits, NodeId hop);
  void on_mac_drop(NodeId dst, const E2eHeader& e2e);
  void on_mac_sent(const E2eHeader& e2e);
  void on_backoff_fire(std::uint64_t e2e_id, std::uint64_t admission);
  /// Abandons custody entry `id` with a reason code (counters + trace).
  void dead_letter(std::uint64_t e2e_id, std::uint32_t retries, std::int64_t reason);
  [[nodiscard]] Duration backoff_for(std::uint32_t retries);
  void trace_relay(TraceEventKind kind, std::uint64_t e2e_id, NodeId origin, std::int64_t a,
                   std::int64_t b, NodeId dst = kNoNode) const;

  Simulator& sim_;
  MacProtocol& mac_;
  NodeId self_;     // lint: ckpt-skip(config, fixed per node)
  bool is_sink_;    // lint: ckpt-skip(config, fixed per node)
  NextHopFn next_hop_;  // lint: ckpt-skip(callback wiring, rebound on construction)
  std::uint8_t hop_limit_;  // lint: ckpt-skip(config, fixed per scenario)
  ReliabilityConfig rel_;   ///< restore cross-checks the enabled bit
  std::uint64_t next_e2e_id_{1};
  RelayCounters counters_;
  TraceSink* trace_{nullptr};
  RouteHopsFn tree_hops_{};  // lint: ckpt-skip(callback wiring, rebound on construction)
  RouteHopsFn advertised_hops_{};  // lint: ckpt-skip(callback wiring)
  AltHopFn alt_next_hop_{};        // lint: ckpt-skip(callback wiring)
  Rng* backoff_rng_{nullptr};

  // --- custody state (ordered: serialized and iterated for eviction) ---
  std::map<std::uint64_t, Custody> custody_;  ///< e2e id -> custody
  /// Every e2e id this node ever took custody of (or absorbed as sink):
  /// re-offers are suppressed, which both prevents duplicate sink
  /// deliveries after an ACK-loss retransmission fork and keeps ARQ
  /// traffic loop-free (a node never re-carries the same packet).
  std::set<std::uint64_t> seen_;
  std::uint64_t next_admission_{1};
};

}  // namespace aquamac

#pragma once
// One-hop (and, for ROPA/CS-MAC, two-hop) neighbor propagation-delay
// tables (§4.3).
//
// EW-MAC's rule: every received packet carries a sending timestamp; the
// synchronized receiver computes the propagation delay as arrival minus
// timestamp and refreshes the entry. Two-hop state is NOT kept by EW-MAC;
// it exists here because the ROPA and CS-MAC baselines require it, and
// the paper charges them for maintaining and transmitting it (§5.2, §5.3).

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "phy/frame.hpp"
#include "util/time.hpp"

namespace aquamac {

class NeighborTable {
 public:
  struct Entry {
    Duration delay{};
    Time updated{};
  };

  /// Bits to encode one (id, delay) pair in a maintenance broadcast:
  /// 16-bit id + 32-bit delay, the granularity the 64-bit control frames
  /// of Table 2 imply.
  static constexpr std::uint32_t kBitsPerEntry = 48;

  /// Refreshes `neighbor`'s one-hop delay. `alpha` is an EWMA smoothing
  /// factor: the stored delay moves by `alpha * (delay - stored)`, in
  /// exact integer nanoseconds so the result is order-of-evaluation and
  /// platform independent. `alpha >= 1.0` (default) or a first
  /// observation overwrites with the raw sample — legacy behavior.
  void update(NodeId neighbor, Duration delay, Time now, double alpha = 1.0);

  [[nodiscard]] std::optional<Duration> delay_to(NodeId neighbor) const;

  [[nodiscard]] std::size_t size() const { return one_hop_.size(); }
  [[nodiscard]] bool knows(NodeId neighbor) const { return one_hop_.contains(neighbor); }

  /// Largest known one-hop delay; nullopt when the table is empty, so a
  /// caller using it as a tau fallback cannot silently collapse the slot
  /// length to omega.
  [[nodiscard]] std::optional<Duration> max_known_delay() const;

  [[nodiscard]] std::vector<NodeId> neighbor_ids() const;
  /// Iteration order is ascending NodeId — a determinism contract, not an
  /// accident: CS-MAC ships a prefix of this table in its frames, so
  /// which entries ride along must not depend on hash-bucket layout.
  [[nodiscard]] const std::map<NodeId, Entry>& entries() const { return one_hop_; }

  /// When the entry for `neighbor` was last refreshed; nullopt if unknown.
  [[nodiscard]] std::optional<Time> last_updated(NodeId neighbor) const;

  /// Drops entries not refreshed since `horizon` (mobile networks).
  void expire_older_than(Time horizon);

  /// Ages out one-hop entries older than `age` at `now` (and sweeps the
  /// two-hop map the same way); returns the evicted one-hop ids, sorted,
  /// so the MAC can trace each eviction. Unlike expire_older_than this
  /// reports *what* was dropped — a long-dead neighbor's delay must not
  /// be trusted forever, but its eviction must be observable.
  std::vector<NodeId> evict_older_than(Duration age, Time now);

  /// Payload size of a full one-hop table broadcast.
  [[nodiscard]] std::uint32_t one_hop_info_bits() const {
    return static_cast<std::uint32_t>(one_hop_.size()) * kBitsPerEntry;
  }

  /// Checkpoint encoding: both maps in their (already deterministic)
  /// ascending-id order.
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

  // --- two-hop state (ROPA / CS-MAC only) ----------------------------
  void update_two_hop(NodeId via, NodeId far, Duration delay, Time now);
  [[nodiscard]] std::optional<Duration> two_hop_delay(NodeId via, NodeId far) const;
  [[nodiscard]] std::size_t two_hop_size() const;
  [[nodiscard]] std::uint32_t two_hop_info_bits() const {
    return static_cast<std::uint32_t>(two_hop_size()) * kBitsPerEntry;
  }

 private:
  // Ordered maps: every iteration over these feeds frames (CS-MAC
  // neighbor shipping), traces (eviction events) or scheduling, so the
  // order must be deterministic and platform-independent. The tables are
  // small (~12 entries at paper density); the tree overhead is noise.
  std::map<NodeId, Entry> one_hop_;
  std::map<NodeId, std::map<NodeId, Entry>> two_hop_;
};

}  // namespace aquamac

#include "net/dv_router.hpp"

#include <utility>

#include "sim/checkpoint.hpp"

namespace aquamac {

DvRouter::DvRouter(NodeId self, bool is_sink) : self_{self}, is_sink_{is_sink} {
  if (is_sink_) {
    install_own_entry();
    refresh_best(false);
  }
}

void DvRouter::install_own_entry() {
  Entry own{};
  own.seq = own_seq_;
  own.cost = Duration::zero();
  own.hops = 0;
  own.via = self_;
  own.valid = true;
  entries_[self_] = own;
}

void DvRouter::bump_own_seq() {
  if (!is_sink_) return;
  own_seq_ += 1;
  install_own_entry();
  // The best route (self at cost zero) is unchanged; no notification.
}

void DvRouter::stamp(Frame& frame) const {
  const Entry* route = best();
  if (route == nullptr) return;  // nothing to advertise
  frame.route_valid = true;
  frame.route_sink = best_sink_;
  frame.route_seq = route->seq;
  frame.route_cost = route->cost;
  frame.route_hops = route->hops;
  frame.route_next_hop = route->via;
}

void DvRouter::observe(const Frame& frame, Duration measured_delay, Time now) {
  if (!frame.route_valid) return;
  const NodeId advertiser = frame.src;
  if (advertiser == self_ || advertiser == kNoNode || advertiser == kBroadcast) return;
  // Split horizon: an ad whose route already runs through us describes a
  // path we are on; adopting it would be an instant two-hop loop.
  if (frame.route_next_hop == self_) return;
  if (frame.route_sink == self_) return;

  const Duration cost = frame.route_cost + route_link_cost(measured_delay);
  const std::uint32_t hops = frame.route_hops + 1;

  Entry& e = entries_[frame.route_sink];
  // Adoption (see the header): current-or-newer sequence AND (improves
  // the route, or refreshes it from the current via). Classic DSDV lets
  // any newer sequence displace the route; damping that to improvements
  // keeps convergence monotone, while the via refresh still carries each
  // sequence wave along settled paths and re-stamps `updated`.
  if (frame.route_seq < e.seq) return;
  const bool refresh = e.valid && e.via == advertiser;
  const bool better = !e.valid || cost < e.cost || (cost == e.cost && advertiser < e.via);
  if (!(better || refresh)) return;

  e.seq = frame.route_seq;
  e.cost = cost;
  e.hops = hops;
  e.via = advertiser;
  e.valid = true;
  e.updated = now;
  refresh_best(true);
}

void DvRouter::neighbor_down(NodeId neighbor) {
  bool touched = false;
  for (auto& [sink, entry] : entries_) {
    if (entry.valid && entry.via == neighbor && sink != self_) {
      entry.valid = false;
      touched = true;
    }
  }
  if (touched) refresh_best(true);
}

void DvRouter::expire_stale(Time cutoff) {
  bool touched = false;
  for (auto& [sink, entry] : entries_) {
    if (sink == self_) continue;
    if (entry.valid && entry.updated < cutoff) {
      entry.valid = false;
      touched = true;
    }
  }
  if (touched) refresh_best(true);
}

void DvRouter::reset_routes() {
  entries_.clear();
  if (is_sink_) {
    own_seq_ += 1;  // rejoin is advertised as strictly fresher state
    install_own_entry();
  }
  refresh_best(false);
}

std::optional<NodeId> DvRouter::next_hop() const {
  if (is_sink_) return std::nullopt;
  const Entry* route = best();
  if (route == nullptr) return std::nullopt;
  return route->via;
}

std::optional<NodeId> DvRouter::next_hop_excluding(NodeId exclude) const {
  if (is_sink_) return std::nullopt;
  // Same (cost, via, sink) tie-break as refresh_best, restricted to
  // routes that do not go through `exclude` — the failover second-best.
  NodeId chosen = kNoNode;
  for (const auto& [sink, entry] : entries_) {
    if (!entry.valid || entry.via == exclude) continue;
    if (chosen == kNoNode) {
      chosen = sink;
      continue;
    }
    const Entry& incumbent = entries_.at(chosen);
    if (entry.cost < incumbent.cost ||
        (entry.cost == incumbent.cost &&
         (entry.via < incumbent.via || (entry.via == incumbent.via && sink < chosen)))) {
      chosen = sink;
    }
  }
  if (chosen == kNoNode) return std::nullopt;
  return entries_.at(chosen).via;
}

const DvRouter::Entry* DvRouter::best() const {
  if (best_sink_ == kNoNode) return nullptr;
  return &entries_.at(best_sink_);
}

void DvRouter::refresh_best(bool notify) {
  // Minimum over valid entries by (cost, via, sink): the same tie-break
  // order RouteTable's Dijkstra realizes, so converged selections match.
  NodeId chosen = kNoNode;
  for (const auto& [sink, entry] : entries_) {
    if (!entry.valid) continue;
    if (chosen == kNoNode) {
      chosen = sink;
      continue;
    }
    const Entry& incumbent = entries_.at(chosen);
    if (entry.cost < incumbent.cost ||
        (entry.cost == incumbent.cost &&
         (entry.via < incumbent.via || (entry.via == incumbent.via && sink < chosen)))) {
      chosen = sink;
    }
  }
  // A pure sequence-number refresh of an otherwise identical route is
  // NOT a change: seq waves propagate on the periodic beacons, while the
  // change hook drives triggered updates (and would storm on every wave
  // otherwise).
  const bool changed =
      chosen != best_sink_ ||
      (chosen != kNoNode && (entries_.at(chosen).via != last_best_.via ||
                             entries_.at(chosen).cost != last_best_.cost ||
                             entries_.at(chosen).hops != last_best_.hops));
  best_sink_ = chosen;
  last_best_ = chosen != kNoNode ? entries_.at(chosen) : Entry{};
  if (changed && notify && on_change_) on_change_();
}

namespace {

void write_entry(StateWriter& writer, const DvRouter::Entry& entry) {
  writer.write_u32(entry.seq);
  writer.write_duration(entry.cost);
  writer.write_u32(entry.hops);
  writer.write_u32(entry.via);
  writer.write_bool(entry.valid);
  writer.write_time(entry.updated);
}

DvRouter::Entry read_entry(StateReader& reader) {
  DvRouter::Entry entry{};
  entry.seq = reader.read_u32();
  entry.cost = reader.read_duration();
  entry.hops = reader.read_u32();
  entry.via = reader.read_u32();
  entry.valid = reader.read_bool();
  entry.updated = reader.read_time();
  return entry;
}

}  // namespace

void DvRouter::save_state(StateWriter& writer) const {
  writer.write_u32(own_seq_);
  writer.write_u32(best_sink_);
  writer.write_u64(entries_.size());
  for (const auto& [sink, entry] : entries_) {
    writer.write_u32(sink);
    write_entry(writer, entry);
  }
  // The change-detection baseline is serialized explicitly: it equals
  // entries_[best_sink_] only when refresh_best ran after the last entry
  // mutation, and a resume must not depend on that invariant.
  write_entry(writer, last_best_);
}

void DvRouter::restore_state(StateReader& reader) {
  own_seq_ = reader.read_u32();
  best_sink_ = reader.read_u32();
  entries_.clear();
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t k = 0; k < count; ++k) {
    const NodeId sink = reader.read_u32();
    entries_[sink] = read_entry(reader);
  }
  last_best_ = read_entry(reader);
}

}  // namespace aquamac

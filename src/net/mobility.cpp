#include "net/mobility.hpp"

#include <cmath>
#include <numbers>

#include "sim/checkpoint.hpp"

namespace aquamac {

MobilityKind Mobility::random_kind(Rng& rng) {
  switch (rng.below(3)) {
    case 0: return MobilityKind::kStatic;
    case 1: return MobilityKind::kHorizontalDrift;
    default: return MobilityKind::kVerticalDrift;
  }
}

Mobility::Mobility(MobilityKind kind, const MobilityConfig& config, Vec3 initial, Rng& rng)
    : kind_{kind}, config_{config}, position_{initial} {
  switch (kind_) {
    case MobilityKind::kStatic:
      break;
    case MobilityKind::kHorizontalDrift: {
      const double heading = rng.uniform(0.0, 2.0 * std::numbers::pi);
      velocity_ = Vec3{config_.speed_mps * std::cos(heading),
                       config_.speed_mps * std::sin(heading), 0.0};
      break;
    }
    case MobilityKind::kVerticalDrift:
      velocity_ = Vec3{0.0, 0.0, rng.bernoulli(0.5) ? config_.speed_mps : -config_.speed_mps};
      break;
  }
}

namespace {
/// Reflects `value` (and flips `velocity`) off [0, bound].
void reflect(double& value, double& velocity, double bound) {
  if (value < 0.0) {
    value = -value;
    velocity = -velocity;
  } else if (value > bound) {
    value = 2.0 * bound - value;
    velocity = -velocity;
  }
}
}  // namespace

void Mobility::advance(Duration dt) {
  if (kind_ == MobilityKind::kStatic) return;
  position_ += velocity_ * dt.to_seconds();
  reflect(position_.x, velocity_.x, config_.width_m);
  reflect(position_.y, velocity_.y, config_.length_m);
  reflect(position_.z, velocity_.z, config_.depth_m);
}

void Mobility::save_state(StateWriter& writer) const {
  writer.write_u8(static_cast<std::uint8_t>(kind_));
  writer.write_f64(position_.x);
  writer.write_f64(position_.y);
  writer.write_f64(position_.z);
  writer.write_f64(velocity_.x);
  writer.write_f64(velocity_.y);
  writer.write_f64(velocity_.z);
}

void Mobility::restore_state(StateReader& reader) {
  kind_ = static_cast<MobilityKind>(reader.read_u8());
  position_.x = reader.read_f64();
  position_.y = reader.read_f64();
  position_.z = reader.read_f64();
  velocity_.x = reader.read_f64();
  velocity_.y = reader.read_f64();
  velocity_.z = reader.read_f64();
}

}  // namespace aquamac

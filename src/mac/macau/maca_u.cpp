#include "mac/macau/maca_u.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void MacaU::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("maca-u", [this](StateWriter& w) {
    w.write_u32(static_cast<std::uint32_t>(state_));
    write_handle(w, attempt_event_);
    write_handle(w, timeout_event_);
    w.write_u32(expected_data_from_);
    w.write_u64(expected_seq_);
  });
}

void MacaU::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("maca-u", [this](StateReader& r) {
    state_ = static_cast<State>(r.read_u32());
    read_handle(r, attempt_event_);
    read_handle(r, timeout_event_);
    expected_data_from_ = r.read_u32();
    expected_seq_ = r.read_u64();
  });
}

void MacaU::start() {}

void MacaU::set_state(State next) {
  if (next != state_) trace_state(static_cast<int>(state_), static_cast<int>(next));
  state_ = next;
}

void MacaU::handle_packet_enqueued() {
  if (state_ == State::kIdle) {
    schedule_attempt(Duration::from_seconds(rng_.uniform(0.0, 0.1)));
  }
}

void MacaU::schedule_attempt(Duration delay) {
  if (!attempt_event_.is_null()) return;
  attempt_event_ = sim_.in(delay, [this] {
    attempt_event_ = EventHandle{};
    attempt_rts();
  });
}

void MacaU::attempt_rts() {
  const Packet* packet = head();
  if (packet == nullptr || state_ != State::kIdle) return;
  if (quiet_now() || modem_.transmitting()) {
    const Duration wait = std::max(quiet_until() - sim_.now(), omega()) + config_.guard;
    schedule_attempt(wait + Duration::from_seconds(rng_.uniform(0.0, 0.2)));
    return;
  }

  Frame rts = make_control(FrameType::kRts, packet->dst);
  rts.seq = packet->id;
  rts.data_duration = data_airtime(packet->bits);
  if (const auto delay = neighbors_.delay_to(packet->dst)) rts.pair_delay = *delay;
  if (packet->retries > 0) {
    counters_.retransmitted_frames += 1;
    counters_.retransmitted_bits += rts.size_bits;
  }
  counters_.handshake_attempts += 1;
  transmit(rts);
  set_state(State::kWaitCts);

  // CTS deadline: one worst-case round trip plus both airtimes.
  const Time deadline = sim_.now() + 2 * config_.tau_max + 2 * omega() + 4 * config_.guard;
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitCts) {
      counters_.contention_losses += 1;
      if (trace_ != nullptr) {
        TraceEvent ev{};
        ev.kind = TraceEventKind::kContentionLoss;
        if (const Packet* p = head()) {
          ev.dst = p->dst;
          ev.seq = p->id;
        }
        trace_mac(ev);
      }
      fail_and_backoff();
    }
  });
}

void MacaU::fail_and_backoff() {
  set_state(State::kIdle);
  Packet* packet = head_mutable();
  if (packet == nullptr) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
    if (head() != nullptr) schedule_attempt(config_.guard);
    return;
  }
  const double window_s =
      static_cast<double>(backoff_slots(packet->retries)) * config_.tau_max.to_seconds();
  schedule_attempt(Duration::from_seconds(rng_.uniform(0.0, window_s)));
}

void MacaU::handle_frame(const Frame& frame, const RxInfo& info) {
  if (frame.dst != id()) {
    overhear(frame, info);
    return;
  }

  switch (frame.type) {
    case FrameType::kRts: {
      if (state_ != State::kIdle || quiet_now() || modem_.transmitting()) break;
      if (trace_ != nullptr) {
        // Unslotted: the first decodable RTS wins the receiver outright.
        TraceEvent win{};
        win.kind = TraceEventKind::kContentionWin;
        win.src = frame.src;
        win.dst = id();
        win.seq = frame.seq;
        trace_mac(win);
      }
      Frame cts = make_control(FrameType::kCts, frame.src);
      cts.seq = frame.seq;
      cts.data_duration = frame.data_duration;
      cts.pair_delay = info.measured_delay;
      transmit(cts);
      set_state(State::kWaitData);
      expected_data_from_ = frame.src;
      expected_seq_ = frame.seq;
      const Time deadline = sim_.now() + 2 * config_.tau_max + frame.data_duration +
                            2 * omega() + 4 * config_.guard;
      timeout_event_ = sim_.at(deadline, [this] {
        timeout_event_ = EventHandle{};
        if (state_ == State::kWaitData) {
          set_state(State::kIdle);
          expected_data_from_ = kNoNode;
          if (head() != nullptr) schedule_attempt(config_.guard);
        }
      });
      break;
    }
    case FrameType::kCts: {
      const Packet* packet = head();
      if (state_ != State::kWaitCts || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      set_state(State::kWaitAck);
      if (modem_.transmitting()) {
        fail_and_backoff();
        break;
      }
      Frame data = make_data_for(FrameType::kData, *packet);
      data.pair_delay = info.measured_delay;
      transmit(data);
      const Time deadline = sim_.now() + data_airtime(packet->bits) + 2 * config_.tau_max +
                            omega() + 4 * config_.guard;
      timeout_event_ = sim_.at(deadline, [this] {
        timeout_event_ = EventHandle{};
        if (state_ == State::kWaitAck) fail_and_backoff();
      });
      break;
    }
    case FrameType::kData: {
      if (state_ != State::kWaitData || frame.src != expected_data_from_ ||
          frame.seq != expected_seq_) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      deliver_data(frame);
      set_state(State::kIdle);
      expected_data_from_ = kNoNode;
      if (!modem_.transmitting()) {
        Frame ack = make_control(FrameType::kAck, frame.src);
        ack.seq = frame.seq;
        transmit(ack);
      }
      if (head() != nullptr) schedule_attempt(config_.guard);
      break;
    }
    case FrameType::kAck: {
      const Packet* packet = head();
      if (state_ != State::kWaitAck || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      counters_.handshake_successes += 1;
      complete_head_packet(/*via_extra=*/false);
      set_state(State::kIdle);
      if (head() != nullptr) schedule_attempt(config_.guard);
      break;
    }
    default:
      break;
  }
}

void MacaU::overhear(const Frame& frame, const RxInfo& info) {
  switch (frame.type) {
    case FrameType::kRts:
      // Enough for the CTS to clear the neighborhood.
      set_quiet_until(info.arrival_end + 2 * config_.tau_max + omega());
      break;
    case FrameType::kCts:
      // The data and its ack follow.
      set_quiet_until(info.arrival_end + 2 * config_.tau_max + frame.data_duration + omega());
      break;
    case FrameType::kData:
      set_quiet_until(info.arrival_end + 2 * config_.tau_max + omega());
      break;
    default:
      break;
  }
}

}  // namespace aquamac

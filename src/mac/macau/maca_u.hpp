#pragma once
// MACA-U — "MACA for Underwater" (Ng, Soh & Motani, GLOBECOM 2008), the
// paper's reference [10]: the classic unslotted RTS/CTS handshake with
// every timer stretched to survive long acoustic propagation. Included as
// an additional baseline below the paper's comparison set: it shows what
// the handshake costs *without* the slot structure S-FAMA adds and
// without any reuse of waiting periods.
//
// Clean-room sketch: a sender launches RTS immediately (small jitter),
// waits up to one round trip for the CTS, and sends DATA on its arrival;
// the receiver answers CTS at once and Acks the data. Overhearers defer
// by the worst-case remainder of the exchange they can infer from the
// packet type (the control packets carry the announced data airtime).

#include "mac/slotted_mac.hpp"

namespace aquamac {

class MacaU final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "MACA-U"; }
  void start() override;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_packet_enqueued() override;

 private:
  enum class State { kIdle, kWaitCts, kWaitData, kWaitAck };

  void schedule_attempt(Duration delay);
  void attempt_rts();
  void fail_and_backoff();
  void overhear(const Frame& frame, const RxInfo& info);
  /// All FSM transitions funnel through here (kMacState trace edges).
  void set_state(State next);

  State state_{State::kIdle};
  EventHandle attempt_event_{};
  EventHandle timeout_event_{};
  NodeId expected_data_from_{kNoNode};
  std::uint64_t expected_seq_{0};
};

}  // namespace aquamac

#include "mac/mac_protocol.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/checkpoint.hpp"

namespace aquamac {

MacProtocol::MacProtocol(Simulator& sim, AcousticModem& modem, NeighborTable& neighbors,
                         MacConfig config, Rng rng, Logger log)
    : sim_{sim},
      modem_{modem},
      neighbors_{neighbors},
      config_{config},
      rng_{rng},
      log_{std::move(log)} {
  modem_.set_listener(this);
}

void MacProtocol::enqueue_packet(NodeId dst, std::uint32_t payload_bits, E2eHeader e2e) {
  counters_.packets_offered += 1;
  counters_.bits_offered += payload_bits;
  // Fast-drop toward a neighbor currently declared dead: burning the full
  // retry budget on a node that cannot answer starves live traffic.
  if (queue_.size() >= config_.queue_limit || neighbor_dead(dst)) {
    counters_.packets_dropped += 1;
    if (drop_handler_) drop_handler_(dst, e2e);
    return;
  }
  queue_.push_back(Packet{next_packet_id_++, dst, payload_bits, sim_.now(), 0, e2e});
  handle_packet_enqueued();
}

bool MacProtocol::neighbor_dead(NodeId node) const {
  if (config_.dead_neighbor_threshold == 0) return false;
  const auto it = peer_health_.find(node);
  return it != peer_health_.end() && it->second.dead;
}

void MacProtocol::record_handshake_silence(NodeId dst) {
  if (config_.dead_neighbor_threshold == 0 || dst == kBroadcast || dst == kNoNode) return;
  PeerHealth& health = peer_health_[dst];
  if (health.dead) return;
  health.silent_failures += 1;
  if (health.silent_failures < config_.dead_neighbor_threshold) return;
  health.dead = true;
  if (trace_ != nullptr) {
    TraceEvent event{};
    event.kind = TraceEventKind::kNeighborDead;
    event.src = dst;
    event.a = config_.dead_neighbor_threshold;
    trace_mac(event);
  }
  if (neighbor_down_hook_) neighbor_down_hook_(dst);
  // Reinstatement probe: after the interval, give the neighbor another
  // chance and re-announce ourselves. If it is still silent the next K
  // handshakes re-declare it dead, so probing is periodic until it talks.
  const std::uint64_t generation = health_generation_;
  const NodeId probed = dst;
  sim_.in(config_.dead_probe_interval, [this, probed, generation] {
    if (generation != health_generation_) return;  // reset_mac_state() ran
    const auto it = peer_health_.find(probed);
    if (it == peer_health_.end() || !it->second.dead) return;
    it->second.dead = false;
    it->second.silent_failures = 0;
    if (trace_ != nullptr) {
      TraceEvent event{};
      event.kind = TraceEventKind::kNeighborProbe;
      event.src = probed;
      trace_mac(event);
    }
    broadcast_hello();
  });
}

void MacProtocol::age_neighbors() {
  if (config_.neighbor_max_age.is_zero()) return;
  const std::vector<NodeId> evicted =
      neighbors_.evict_older_than(config_.neighbor_max_age, sim_.now());
  for (const NodeId neighbor : evicted) {
    peer_health_.erase(neighbor);
    if (trace_ != nullptr) {
      TraceEvent event{};
      event.kind = TraceEventKind::kNeighborEvicted;
      event.src = neighbor;
      event.a = config_.neighbor_max_age.count_ns();
      trace_mac(event);
    }
    if (neighbor_down_hook_) neighbor_down_hook_(neighbor);
  }
}

void MacProtocol::reset_mac_state() {
  neighbors_ = NeighborTable{};
  peer_health_.clear();
  health_generation_ += 1;
  handle_reset();
}

void MacProtocol::broadcast_hello() {
  if (modem_.transmitting()) return;
  Frame hello{};
  hello.type = FrameType::kHello;
  hello.dst = kBroadcast;
  hello.size_bits = config_.control_bits;
  transmit(hello);
}

Frame MacProtocol::make_control(FrameType type, NodeId dst) const {
  Frame frame{};
  frame.type = type;
  frame.dst = dst;
  frame.size_bits = control_frame_bits();
  return frame;
}

Frame MacProtocol::make_data(FrameType type, NodeId dst, std::uint32_t payload_bits) const {
  Frame frame{};
  frame.type = type;
  frame.dst = dst;
  frame.size_bits = payload_bits;
  frame.data_bits = payload_bits;
  return frame;
}

Frame MacProtocol::make_data_for(FrameType type, const Packet& packet) const {
  Frame frame = make_data(type, packet.dst, packet.bits);
  frame.seq = packet.id;
  frame.origin = packet.e2e.origin;
  frame.final_dst = packet.e2e.final_dst;
  frame.hop_count = packet.e2e.hop_count;
  frame.e2e_id = packet.e2e.e2e_id;
  frame.created_at = packet.e2e.created_at;
  return frame;
}

void MacProtocol::transmit(Frame frame) {
  if (stamp_hook_) stamp_hook_(frame);
  counters_.count_sent(frame);
  // The DV route ad is real piggybacked payload on every carrying frame;
  // charge it to the overhead ledger (ROADMAP 2a) instead of idealizing
  // the control plane as free bits.
  if (frame.route_valid) counters_.piggyback_info_bits += kRouteAdBits;
  if (frame.control() && frame.type != FrameType::kHello) {
    const auto entries = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(neighbors_.size()), config_.control_info_cap);
    counters_.piggyback_info_bits +=
        config_.control_info_base_bits + config_.control_info_per_entry_bits * entries;
  }
  AQUAMAC_LOG(log_, LogLevel::kDebug) << "tx " << frame.to_string();
  modem_.transmit(frame);
}

void MacProtocol::complete_head_packet(bool via_extra) {
  if (queue_.empty()) return;
  counters_.packets_sent_ok += 1;
  if (via_extra) counters_.extra_successes += 1;
  // Latency accounting lives here so the sum and its sample count can
  // never diverge (mean = total_delivery_latency / latency_samples).
  counters_.total_delivery_latency += sim_.now() - queue_.front().enqueued;
  counters_.latency_samples += 1;
  const NodeId dst = queue_.front().dst;
  const E2eHeader e2e = queue_.front().e2e;
  queue_.pop_front();
  // Custody release fires after the pop so the handler sees fresh state.
  if (sent_handler_) sent_handler_(dst, e2e);
}

void MacProtocol::drop_head_packet() {
  if (queue_.empty()) return;
  counters_.packets_dropped += 1;
  const Packet packet = queue_.front();
  queue_.pop_front();
  if (drop_handler_) drop_handler_(packet.dst, packet.e2e);
  // Exhausting a whole retry budget without one answer is the strongest
  // silence signal every protocol shares.
  record_handshake_silence(packet.dst);
}

bool MacProtocol::deliver_data(const Frame& frame) {
  const auto it = delivered_seq_high_.find(frame.src);
  if (it != delivered_seq_high_.end() && frame.seq <= it->second) {
    counters_.duplicate_deliveries += 1;
    return false;
  }
  delivered_seq_high_[frame.src] = frame.seq;
  counters_.packets_delivered += 1;
  counters_.bits_delivered += frame.data_bits;
  counters_.last_delivery_time = sim_.now();
  if (delivery_handler_) delivery_handler_(frame);
  return true;
}

void MacProtocol::on_frame_received(const Frame& frame, const RxInfo& raw_info) {
  // Clock skew (or any timestamp corruption) can make the measured delay
  // negative or larger than the physical maximum; a robust MAC clamps the
  // reading to its physical range before trusting it anywhere.
  RxInfo info = raw_info;
  info.measured_delay = std::clamp(info.measured_delay, Duration::zero(), config_.tau_max);

  // §4.3: every packet carries its sending timestamp; refresh the one-hop
  // delay for the sender regardless of destination.
  neighbors_.update(frame.src, info.measured_delay, sim_.now(), config_.neighbor_ewma);
  // Proof of life: any decodable frame from a node clears its silence
  // count and any standing death sentence.
  if (config_.dead_neighbor_threshold > 0) {
    const auto it = peer_health_.find(frame.src);
    if (it != peer_health_.end()) it->second = PeerHealth{};
  }
  if (trace_ != nullptr) {
    TraceEvent event{};
    event.kind = TraceEventKind::kNeighborUpdate;
    event.frame_type = frame.type;
    event.src = frame.src;
    event.dst = frame.dst;
    event.seq = frame.seq;
    event.a = info.measured_delay.count_ns();
    trace_mac(event);
  }
  // Route-ad ingestion rides on the same reception the delay table uses,
  // and sees the *smoothed* table entry so DV costs inherit the EWMA.
  if (observe_hook_) {
    observe_hook_(frame, neighbors_.delay_to(frame.src).value_or(info.measured_delay));
  }
  // Frames shipping neighbor info (CS-MAC negotiation packets) feed the
  // two-hop table of everyone who hears them.
  if (frame.neighbor_info) {
    for (const NeighborInfo& entry : *frame.neighbor_info) {
      if (entry.id != id()) {
        neighbors_.update_two_hop(frame.src, entry.id, entry.delay, sim_.now());
      }
    }
  }
  counters_.count_received(frame);
  AQUAMAC_LOG(log_, LogLevel::kDebug) << "rx " << frame.to_string();
  handle_frame(frame, info);
}

void MacProtocol::on_rx_failure(const Frame& frame, RxOutcome outcome, const RxInfo& info) {
  counters_.rx_collisions += 1;
  handle_rx_failure(frame, outcome, info);
}

void MacProtocol::on_tx_done(const Frame& frame) { handle_tx_done(frame); }

void MacProtocol::save_state(StateWriter& writer) const {
  writer.section("mac-base", [this](StateWriter& w) {
    for (const std::uint64_t word : rng_.state()) w.write_u64(word);
    w.write_u64(queue_.size());
    for (const Packet& packet : queue_) {
      w.write_u64(packet.id);
      w.write_u32(packet.dst);
      w.write_u32(packet.bits);
      w.write_time(packet.enqueued);
      w.write_u32(packet.retries);
      w.write_u32(packet.e2e.origin);
      w.write_u32(packet.e2e.final_dst);
      w.write_u8(packet.e2e.hop_count);
      w.write_u64(packet.e2e.e2e_id);
      w.write_time(packet.e2e.created_at);
    }
    w.write_u64(next_packet_id_);
    // Unordered maps serialize sorted by node id (determinism wall).
    std::vector<std::pair<NodeId, std::uint64_t>> delivered{delivered_seq_high_.begin(),
                                                            delivered_seq_high_.end()};
    std::sort(delivered.begin(), delivered.end());
    w.write_u64(delivered.size());
    for (const auto& [node, seq] : delivered) {
      w.write_u32(node);
      w.write_u64(seq);
    }
    std::vector<std::pair<NodeId, PeerHealth>> health{peer_health_.begin(),
                                                      peer_health_.end()};
    std::sort(health.begin(), health.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.write_u64(health.size());
    for (const auto& [node, state] : health) {
      w.write_u32(node);
      w.write_u32(state.silent_failures);
      w.write_bool(state.dead);
    }
    w.write_u64(health_generation_);
    counters_.save_state(w);
  });
}

void MacProtocol::restore_state(StateReader& reader) {
  reader.section("mac-base", [this](StateReader& r) {
    Rng::State words{};
    for (std::uint64_t& word : words) word = r.read_u64();
    rng_.set_state(words);
    queue_.clear();
    const std::uint64_t depth = r.read_u64();
    for (std::uint64_t k = 0; k < depth; ++k) {
      Packet packet{};
      packet.id = r.read_u64();
      packet.dst = r.read_u32();
      packet.bits = r.read_u32();
      packet.enqueued = r.read_time();
      packet.retries = r.read_u32();
      packet.e2e.origin = r.read_u32();
      packet.e2e.final_dst = r.read_u32();
      packet.e2e.hop_count = r.read_u8();
      packet.e2e.e2e_id = r.read_u64();
      packet.e2e.created_at = r.read_time();
      queue_.push_back(packet);
    }
    next_packet_id_ = r.read_u64();
    delivered_seq_high_.clear();
    const std::uint64_t delivered = r.read_u64();
    for (std::uint64_t k = 0; k < delivered; ++k) {
      const NodeId node = r.read_u32();
      delivered_seq_high_[node] = r.read_u64();
    }
    peer_health_.clear();
    const std::uint64_t health = r.read_u64();
    for (std::uint64_t k = 0; k < health; ++k) {
      const NodeId node = r.read_u32();
      PeerHealth state{};
      state.silent_failures = r.read_u32();
      state.dead = r.read_bool();
      peer_health_[node] = state;
    }
    health_generation_ = r.read_u64();
    counters_.restore_state(r);
  });
}

void MacProtocol::write_handle(StateWriter& writer, const EventHandle& handle) {
  writer.write_bool(!handle.is_null());
}

void MacProtocol::read_handle(StateReader& reader, const EventHandle& handle) {
  const bool armed = reader.read_bool();
  if (armed != !handle.is_null()) {
    throw CheckpointError("mac restore: event-handle armed bit diverges from replayed schedule");
  }
}

void MacProtocol::trace_mac(TraceEvent event) const {
  if (trace_ == nullptr) return;
  event.at = sim_.now();
  event.node = id();
  trace_->record(event);
}

void MacProtocol::trace_state(int from, int to) const {
  if (trace_ == nullptr) return;
  TraceEvent event{};
  event.kind = TraceEventKind::kMacState;
  event.a = from;
  event.b = to;
  trace_mac(event);
}

}  // namespace aquamac

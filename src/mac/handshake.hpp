#pragma once
// ScheduleBook: a node's prediction of when its neighbors will be busy.
//
// EW-MAC's extra communications are legal only when they "will not
// interfere with negotiated transmissions" (§4.2). A node builds that
// knowledge from overheard negotiation packets: an overheard RTS/CTS
// announces the pair delay and data airtime, from which the Eq.-5
// timeline of the whole exchange is predictable. The ScheduleBook stores
// the resulting busy windows per neighbor; the extra-phase feasibility
// checks query it before choosing EXR / EXDATA launch times.

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/frame.hpp"
#include "util/time.hpp"

namespace aquamac {

class StateReader;
class StateWriter;

/// What the neighbor is predicted to be doing in the window.
enum class BusyKind : std::uint8_t {
  kReceiving,     ///< a negotiated packet arrives at the neighbor
  kTransmitting,  ///< the neighbor radiates a negotiated packet
};

class ScheduleBook {
 public:
  struct Window {
    NodeId neighbor;
    TimeInterval interval;
    BusyKind kind;
  };

  void add(NodeId neighbor, TimeInterval interval, BusyKind kind) {
    windows_.push_back(Window{neighbor, interval, kind});
  }

  /// Drops windows that ended before `now`.
  void prune(Time now) {
    std::erase_if(windows_, [now](const Window& w) { return w.interval.end <= now; });
  }

  /// Would a packet occupying `arrival` at `neighbor` overlap a window in
  /// which that neighbor is predicted busy (either direction)? A neighbor
  /// receiving must not be hit (it garbles the negotiated packet); a
  /// neighbor transmitting cannot hear us anyway, and our arrival there
  /// is harmless, so only kReceiving windows conflict by default.
  [[nodiscard]] bool conflicts(NodeId neighbor, TimeInterval arrival,
                               bool include_tx_windows = false) const {
    for (const Window& w : windows_) {
      if (w.neighbor != neighbor) continue;
      if (!include_tx_windows && w.kind == BusyKind::kTransmitting) continue;
      if (w.interval.overlaps(arrival)) return true;
    }
    return false;
  }

  /// Latest predicted busy end for `neighbor` (nullopt when none).
  [[nodiscard]] std::optional<Time> busy_until(NodeId neighbor) const {
    std::optional<Time> latest;
    for (const Window& w : windows_) {
      if (w.neighbor != neighbor) continue;
      if (!latest || w.interval.end > *latest) latest = w.interval.end;
    }
    return latest;
  }

  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }
  [[nodiscard]] bool empty() const { return windows_.empty(); }
  [[nodiscard]] std::size_t size() const { return windows_.size(); }
  void clear() { windows_.clear(); }

  /// Checkpoint encoding: windows verbatim, in vector order (the order is
  /// part of the deterministic state — conflicts() scans front to back).
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  std::vector<Window> windows_;
};

}  // namespace aquamac

#include "mac/sfama/s_fama.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void SFama::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("s-fama", [this](StateWriter& w) {
    w.write_u32(static_cast<std::uint32_t>(state_));
    write_handle(w, attempt_event_);
    write_handle(w, timeout_event_);
    write_handle(w, decide_event_);
    w.write_bool(pending_rts_.has_value());
    if (pending_rts_) {
      w.write_u32(pending_rts_->src);
      w.write_u64(pending_rts_->seq);
      w.write_duration(pending_rts_->data_duration);
      w.write_duration(pending_rts_->delay_to_src);
    }
    w.write_u32(expected_data_from_);
    w.write_u64(expected_seq_);
  });
}

void SFama::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("s-fama", [this](StateReader& r) {
    state_ = static_cast<State>(r.read_u32());
    read_handle(r, attempt_event_);
    read_handle(r, timeout_event_);
    read_handle(r, decide_event_);
    pending_rts_.reset();
    if (r.read_bool()) {
      PendingRts rts{};
      rts.src = r.read_u32();
      rts.seq = r.read_u64();
      rts.data_duration = r.read_duration();
      rts.delay_to_src = r.read_duration();
      pending_rts_ = rts;
    }
    expected_data_from_ = r.read_u32();
    expected_seq_ = r.read_u64();
  });
}

void SFama::start() {}

void SFama::set_state(State next) {
  if (next != state_) trace_state(static_cast<int>(state_), static_cast<int>(next));
  state_ = next;
}

void SFama::handle_packet_enqueued() {
  if (state_ == State::kIdle) schedule_attempt(0);
}

void SFama::schedule_attempt(std::int64_t extra_slots) {
  if (!attempt_event_.is_null()) return;
  const Time when = next_slot_boundary(sim_.now()) + slot_length() * extra_slots;
  attempt_event_ = sim_.at(when, [this] {
    attempt_event_ = EventHandle{};
    attempt_rts();
  });
}

void SFama::attempt_rts() {
  const Packet* packet = head();
  if (packet == nullptr || state_ != State::kIdle) return;
  if (quiet_now() || modem_.transmitting() || pending_rts_.has_value()) {
    // Deferred: retry at the first boundary after the quiet period.
    const Time resume = std::max(quiet_until(), sim_.now() + slot_length());
    attempt_event_ = sim_.at(next_slot_boundary(resume), [this] {
      attempt_event_ = EventHandle{};
      attempt_rts();
    });
    return;
  }

  Frame rts = make_control(FrameType::kRts, packet->dst);
  rts.seq = packet->id;
  rts.data_duration = data_airtime(packet->bits);
  if (const auto delay = neighbors_.delay_to(packet->dst)) rts.pair_delay = *delay;
  if (packet->retries > 0) {
    counters_.retransmitted_frames += 1;
    counters_.retransmitted_bits += rts.size_bits;
  }
  counters_.handshake_attempts += 1;
  if (trace_ != nullptr) {
    TraceEvent ev{};
    ev.kind = TraceEventKind::kSlotBoundary;
    ev.frame_type = FrameType::kRts;
    ev.a = slot_index(sim_.now());
    trace_mac(ev);
  }
  transmit(rts);
  set_state(State::kWaitCts);

  // CTS is sent at slot t+1 and arrives within it; give one slot slack.
  const Time deadline = slot_start(slot_index(sim_.now()) + 3);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitCts) {
      counters_.contention_losses += 1;
      if (trace_ != nullptr) {
        TraceEvent ev{};
        ev.kind = TraceEventKind::kContentionLoss;
        if (const Packet* p = head()) {
          ev.dst = p->dst;
          ev.seq = p->id;
        }
        trace_mac(ev);
      }
      fail_and_backoff();
    }
  });
}

void SFama::fail_and_backoff() {
  set_state(State::kIdle);
  Packet* packet = head_mutable();
  if (packet == nullptr) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
    if (head() != nullptr) schedule_attempt(0);
    return;
  }
  schedule_attempt(backoff_slots(packet->retries));
}

void SFama::handle_frame(const Frame& frame, const RxInfo& info) {
  if (frame.dst != id()) {
    overhear(frame, info);
    return;
  }

  switch (frame.type) {
    case FrameType::kRts: {
      // Receiver: answer at the next slot boundary if free.
      if (state_ != State::kIdle || quiet_now()) break;
      if (!pending_rts_.has_value()) {
        pending_rts_ = PendingRts{frame.src, frame.seq, frame.data_duration,
                                  info.measured_delay};
        decide_event_ = sim_.at(next_slot_boundary(sim_.now()), [this] {
          decide_event_ = EventHandle{};
          decide_cts();
        });
      }
      break;
    }
    case FrameType::kCts: {
      const Packet* packet = head();
      if (state_ != State::kWaitCts || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      set_state(State::kWaitAck);
      const Duration tau_sr = info.measured_delay;
      const Packet packet_copy = *packet;
      sim_.at(next_slot_boundary(sim_.now()), [this, packet_copy, tau_sr] {
        if (state_ != State::kWaitAck) return;
        if (modem_.transmitting()) {
          // Rare, but abandoning beats wedging in WaitAck with no timeout.
          fail_and_backoff();
          return;
        }
        Frame data = make_data_for(FrameType::kData, packet_copy);
        data.pair_delay = tau_sr;
        transmit(data);
        // Eq. (5): Ack slot = data slot + ceil((TD + tau) / |ts|).
        const std::int64_t ack_slot =
            slot_index(sim_.now()) + data_slots(data_airtime(packet_copy.bits), tau_sr);
        const Time deadline = slot_start(ack_slot + 3);
        timeout_event_ = sim_.at(deadline, [this] {
          timeout_event_ = EventHandle{};
          if (state_ == State::kWaitAck) fail_and_backoff();
        });
      });
      break;
    }
    case FrameType::kData: {
      if (state_ != State::kWaitData || frame.src != expected_data_from_ ||
          frame.seq != expected_seq_) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      deliver_data(frame);
      set_state(State::kIdle);
      expected_data_from_ = kNoNode;
      send_ack(frame.src, frame.seq);
      if (head() != nullptr) schedule_attempt(0);
      break;
    }
    case FrameType::kAck: {
      const Packet* packet = head();
      if (state_ != State::kWaitAck || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      counters_.handshake_successes += 1;
      complete_head_packet(/*via_extra=*/false);
      set_state(State::kIdle);
      if (head() != nullptr) schedule_attempt(0);
      break;
    }
    default:
      break;
  }
}

void SFama::decide_cts() {
  if (!pending_rts_.has_value()) return;
  const PendingRts rts = *pending_rts_;
  pending_rts_.reset();
  if (state_ != State::kIdle || quiet_now() || modem_.transmitting()) return;

  if (trace_ != nullptr) {
    TraceEvent boundary{};
    boundary.kind = TraceEventKind::kSlotBoundary;
    boundary.frame_type = FrameType::kCts;
    boundary.a = slot_index(sim_.now());
    trace_mac(boundary);
    // S-FAMA grants the first RTS of the slot; rp is not used (value 0).
    TraceEvent win{};
    win.kind = TraceEventKind::kContentionWin;
    win.src = rts.src;
    win.dst = id();
    win.seq = rts.seq;
    trace_mac(win);
  }
  Frame cts = make_control(FrameType::kCts, rts.src);
  cts.seq = rts.seq;
  cts.data_duration = rts.data_duration;
  cts.pair_delay = rts.delay_to_src;
  transmit(cts);
  set_state(State::kWaitData);
  expected_data_from_ = rts.src;
  expected_seq_ = rts.seq;

  // DATA is sent in the next slot and takes data_slots to arrive in full.
  const std::int64_t occupancy = data_slots(rts.data_duration, rts.delay_to_src);
  const Time deadline = slot_start(slot_index(sim_.now()) + 1 + occupancy + 2);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitData) {
      set_state(State::kIdle);
      expected_data_from_ = kNoNode;
      if (head() != nullptr) schedule_attempt(0);
    }
  });
}

void SFama::send_ack(NodeId dst, std::uint64_t seq) {
  Frame ack = make_control(FrameType::kAck, dst);
  ack.seq = seq;
  sim_.at(next_slot_boundary(sim_.now()), [this, ack] {
    if (!modem_.transmitting()) transmit(ack);
  });
}

void SFama::overhear(const Frame& frame, const RxInfo& info) {
  // S-FAMA reserves a *maximal* propagation delay for every stage, so an
  // overhearer computes the conservative end of the whole exchange.
  const std::int64_t heard_slot = slot_index(info.arrival_begin);
  switch (frame.type) {
    case FrameType::kRts: {
      const std::int64_t occupancy = data_slots(frame.data_duration, config_.tau_max);
      set_quiet_until(slot_start(heard_slot + 3 + occupancy));
      break;
    }
    case FrameType::kCts: {
      const std::int64_t occupancy = data_slots(frame.data_duration, config_.tau_max);
      set_quiet_until(slot_start(heard_slot + 2 + occupancy));
      break;
    }
    case FrameType::kData: {
      // Remain quiet through the Ack that follows the data.
      set_quiet_until(info.arrival_end + slot_length() + slot_length());
      break;
    }
    default:
      break;
  }
}

}  // namespace aquamac

#pragma once
// Slotted FAMA (Molins & Stojanovic 2006), as described in the paper's §5:
// time is slotted; RTS, CTS, DATA and Ack all start on slot boundaries; a
// node overhearing a control packet in slot t or t+1 keeps quiet for the
// whole (conservatively sized, tau_max-based) exchange. No reuse of idle
// waiting periods — this is the baseline every figure normalizes against.

#include "mac/slotted_mac.hpp"

namespace aquamac {

class SFama final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "S-FAMA"; }
  void start() override;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_packet_enqueued() override;

 private:
  enum class State { kIdle, kWaitCts, kWaitData, kWaitAck };

  // --- sender side ----------------------------------------------------
  void schedule_attempt(std::int64_t extra_slots);
  void attempt_rts();
  void fail_and_backoff();

  // --- receiver side ----------------------------------------------------
  void decide_cts();
  void send_ack(NodeId dst, std::uint64_t seq);

  // --- overhearing -------------------------------------------------------
  void overhear(const Frame& frame, const RxInfo& info);

  /// All FSM transitions funnel through here (kMacState trace edges).
  void set_state(State next);

  State state_{State::kIdle};
  EventHandle attempt_event_{};
  EventHandle timeout_event_{};
  EventHandle decide_event_{};

  /// Receiver-side: first RTS of the current slot addressed to us.
  struct PendingRts {
    NodeId src;
    std::uint64_t seq;
    Duration data_duration;
    Duration delay_to_src;
  };
  std::optional<PendingRts> pending_rts_;
  NodeId expected_data_from_{kNoNode};
  std::uint64_t expected_seq_{0};
};

}  // namespace aquamac

#include "mac/ewmac/wait_periods.hpp"

namespace aquamac {

WaitPeriods compute_wait_periods(const WaitPeriodInputs& in) {
  const auto slot_start = [&in](std::int64_t index) {
    return Time::zero() + in.slot_length * index;
  };

  const std::int64_t t = in.rts_slot;
  const Time rts_tx_end = slot_start(t) + in.omega;
  const Time cts_tx_begin = slot_start(t + 1);
  const Time cts_tx_end = cts_tx_begin + in.omega;
  const Time cts_at_sender = cts_tx_begin + in.tau_pair;  // leading edge
  const Time data_tx_begin = slot_start(t + 2);
  const Time data_tx_end = data_tx_begin + in.data_airtime;
  const Time data_at_receiver = data_tx_begin + in.tau_pair;

  WaitPeriods periods{};
  // Eq. (5): ack slot = data slot + ceil((TD + tau)/|ts|).
  periods.ack_slot = t + 2 + (in.data_airtime + in.tau_pair).divide_ceil(in.slot_length);
  periods.ack_tx_begin = slot_start(periods.ack_slot);
  periods.ack_tx_end = periods.ack_tx_begin + in.omega;

  periods.sender_rts_to_cts = TimeInterval{rts_tx_end, cts_at_sender};
  periods.sender_cts_to_data = TimeInterval{cts_at_sender + in.omega, data_tx_begin};
  periods.sender_post_data =
      TimeInterval{data_tx_end, periods.ack_tx_begin + in.tau_pair};
  periods.receiver_cts_to_data = TimeInterval{cts_tx_end, data_at_receiver};
  periods.receiver_free_from = periods.ack_tx_end;
  return periods;
}

}  // namespace aquamac

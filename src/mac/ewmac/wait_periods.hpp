#pragma once
// The paper's Figure 2, computably: the idle "wait periods" (blocks
// I-VII) that a negotiated four-way exchange leaves around itself, from
// the perspective of the negotiating sender k, the receiver j, and a
// loser/overhearer i. EW-MAC's §4.2 rules are statements about these
// periods — "the extra request exploits time periods V of sensor j and
// VII of sensor i", "EXData ... exploit time periods VI of sensor j" —
// so making them first-class lets tests assert the implementation sends
// each extra packet inside the period the paper names.
//
// Timeline of the negotiated exchange (all slot-aligned, §4.1):
//   slot t   : k sends RTS(k, j)
//   slot t+1 : j sends CTS(j, k)
//   slot t+2 : k sends DATA, arriving at j over [S(t+2)+tau, +TD]
//   slot a   : j sends ACK, a = t+2 + ceil((TD + tau)/|ts|)   (Eq. 5)
//
// Periods (as they appear in Fig. 2):
//   III : k idle between finishing its RTS and the CTS arriving at k.
//   IV  : k idle after the CTS until it must transmit DATA at S(t+2) —
//         and again after DATA until the ACK arrives (the tail we expose
//         as `sender_post_data`).
//   V   : j idle between finishing its CTS and the DATA arriving at j.
//   VI  : j idle after finishing its ACK (the exchange no longer needs j).
//   I/II/VII : the corresponding idle stretches of a third sensor i that
//         overheard the negotiation; they are i's whole wait, bounded by
//         the packets i itself can hear, and are exposed through the
//         ScheduleBook rather than here (i's geometry varies per node).

#include "util/time.hpp"

namespace aquamac {

struct WaitPeriodInputs {
  std::int64_t rts_slot{0};   ///< t: the slot the RTS went out in
  Duration slot_length{};     ///< |ts| = omega + tau_max
  Duration omega{};           ///< control-packet airtime
  Duration tau_pair{};        ///< tau between the negotiating pair
  Duration data_airtime{};    ///< TD
};

struct WaitPeriods {
  /// Period III: sender idle, RTS sent -> CTS arrives.
  TimeInterval sender_rts_to_cts;
  /// Period IV (head): sender idle, CTS received -> DATA slot.
  TimeInterval sender_cts_to_data;
  /// Period IV (tail): sender idle, DATA finished -> ACK arrives.
  TimeInterval sender_post_data;
  /// Period V: receiver idle, CTS sent -> DATA arrives.
  TimeInterval receiver_cts_to_data;
  /// Period VI begins when the receiver finishes its ACK.
  Time receiver_free_from;

  /// Eq.-5 ACK slot index.
  std::int64_t ack_slot{0};
  Time ack_tx_begin;
  Time ack_tx_end;
};

/// Computes the Fig.-2 periods for one negotiated exchange.
[[nodiscard]] WaitPeriods compute_wait_periods(const WaitPeriodInputs& in);

}  // namespace aquamac
